(* zkqac: command-line front end for the authenticated query system.

     zkqac setup   -- data-owner side: sign a database into an ADS file
     zkqac inspect -- show what an ADS file contains
     zkqac query   -- service-provider side: answer a range query with a VO
     zkqac verify  -- user side: check soundness + completeness of a VO
     zkqac attack  -- fault-injection harness: tamper VOs, assert rejection
     zkqac metrics -- run an instrumented workload, print the metrics registry
     zkqac bench   -- BENCH.json tooling (regression diff)
     zkqac serve   -- long-lived SP daemon: deadlines, shedding, graceful drain
     zkqac client  -- verifying client with transient-fault retry/backoff
     zkqac chaos   -- socket-level fault-injection proxy
     zkqac loadgen -- replay the TPC-H query mix against a running server
     zkqac demo    -- self-contained end-to-end run

   Records are read from a simple line format:  k1,k2,...|value|policy
   e.g.  3,5|secret payload|RoleA & (RoleB | RoleC)                      *)

open Cmdliner
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Vo = Zkqac_core.Vo.Make (Backend)
module Ads_io = Zkqac_core.Ads_io.Make (Backend)

module Flight = Zkqac_telemetry.Flight
module Rte = Zkqac_telemetry.Rte
module Audit = Zkqac_audit.Audit
module Json = Zkqac_telemetry.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("zkqac: " ^ s); exit 1) fmt

(* Verification failures exit with the error's own code (10..21, one per
   Verify_error constructor) so scripts can tell a completeness gap from a
   bad signature without parsing stderr. *)
let die_verify (e : Zkqac_util.Verify_error.t) =
  Flight.trip ~reason:("verify-error:" ^ Zkqac_util.Verify_error.code e);
  prerr_endline
    (Printf.sprintf "zkqac: verification FAILED [%s]: %s"
       (Zkqac_util.Verify_error.code e)
       (Zkqac_util.Verify_error.to_string e));
  exit (Zkqac_util.Verify_error.exit_code e)

(* SIGTERM/SIGINT land here for every subcommand. By default they flush the
   flight recorder and the audit tail and exit with the conventional
   128+signal code; long-running subcommands (serve, chaos) install a
   graceful teardown instead, and a second signal forces the default. *)
let graceful_terminate : (string -> unit) option ref = ref None

let terminate name code _ =
  match !graceful_terminate with
  | Some drain ->
    graceful_terminate := None;
    drain name
  | None ->
    Flight.emergency ~reason:name;
    Zkqac_audit.Audit.disable ();
    exit code

(* The flight recorder's last-resort dump paths: SIGUSR1 asks a live process
   for its recent history; an uncaught exception dumps on the way down.
   SIGTERM/SIGINT flush both the flight recorder and the audit tail so an
   interrupted run still leaves its evidence behind. *)
let () =
  (match Sys.os_type with
  | "Unix" ->
    (try
       Sys.set_signal Sys.sigusr1
         (Sys.Signal_handle (fun _ -> Flight.emergency ~reason:"sigusr1"));
       Sys.set_signal Sys.sigterm (Sys.Signal_handle (terminate "sigterm" 143));
       Sys.set_signal Sys.sigint (Sys.Signal_handle (terminate "sigint" 130));
       Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())
  | _ -> ());
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      Flight.emergency ~reason:("uncaught:" ^ Printexc.to_string exn);
      Printf.eprintf "Fatal error: exception %s\n%s%!" (Printexc.to_string exn)
        (Printexc.raw_backtrace_to_string bt))

(* Observability flags, shared by every subcommand:
     --stats       print op counts + stage timings on exit
     --trace FILE  record a hierarchical trace, write Chrome trace-event
                   JSON (open in https://ui.perfetto.dev)
     --trace-tree  print the span tree to stdout on exit *)

module Trace = Zkqac_telemetry.Trace
module Pool = Zkqac_parallel.Pool

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print telemetry (group-operation counts and stage timings) on exit.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a hierarchical trace and write it to $(docv) as Chrome \
                 trace-event JSON, viewable in Perfetto (ui.perfetto.dev).")

let trace_tree_arg =
  Arg.(value & flag
       & info [ "trace-tree" ]
           ~doc:"Record a hierarchical trace and print the span tree on exit.")

let audit_arg =
  Arg.(value & opt (some string) None
       & info [ "audit" ] ~docv:"FILE"
           ~doc:"Append every verification decision to a hash-chained audit \
                 log at $(docv) (created if missing; an existing log is \
                 re-verified and extended). Check it later with $(b,zkqac \
                 audit verify).")

let durability_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Audit.durability_of_string s) in
  let print ppf d = Format.pp_print_string ppf (Audit.durability_to_string d) in
  Arg.conv (parse, print)

let audit_durability_arg =
  Arg.(value & opt durability_conv Audit.Always
       & info [ "audit-durability" ] ~docv:"MODE"
           ~doc:"fsync policy for the audit log: $(b,always) (fsync each \
                 append, the default), $(b,interval)[:SECONDS] (group \
                 commit, bounding how much acknowledged history a power cut \
                 can drop), or $(b,never) (flush only). The mode is recorded \
                 in every entry.")

let audit_recover_arg =
  Arg.(value & flag
       & info [ "audit-recover" ]
           ~doc:"Before opening the audit log, truncate a torn tail line \
                 left by a crash (at most one line; damage anywhere earlier \
                 still refuses). What a restarting server wants; off by \
                 default so an unexpected torn log is loud.")

type obs = {
  stats : bool;
  trace : string option;
  trace_tree : bool;
  audit : string option;
  audit_durability : Audit.durability;
  audit_recover : bool;
}

let with_obs { stats; trace; trace_tree; audit; audit_durability; audit_recover } f =
  let module T = Zkqac_telemetry.Telemetry in
  if stats then T.enable ();
  if trace <> None || trace_tree then Trace.enable ();
  (* GC pause attribution wants the runtime-events monitor; it only runs
     when some observer (stats, trace) will report what it collects. *)
  if stats || trace <> None || trace_tree then Rte.start ();
  (match audit with
  | Some path ->
    if audit_recover then begin
      match Audit.recover ~path with
      | Ok { Audit.kept; dropped = Some line } ->
        Printf.eprintf
          "zkqac: audit recover: dropped torn tail line (%d bytes), %d \
           entr%s kept\n%!"
          (String.length line) kept
          (if kept = 1 then "y" else "ies")
      | Ok _ -> ()
      | Error b -> die "audit recover: entry %d: %s" b.Audit.entry b.Audit.reason
    end;
    (match Audit.enable ~durability:audit_durability ~path () with
    | Ok () -> ()
    | Error e -> die "%s" e)
  | None -> ());
  let before = if stats then Some (T.snapshot ()) else None in
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Rte.stop ();
      Audit.disable ();
      (match trace with
       | Some path ->
         Trace.write_chrome path;
         Printf.printf "trace written to %s: %d span(s)%s\n" path
           (Trace.span_count ())
           (if Trace.dropped () > 0 then
              Printf.sprintf " (%d dropped)" (Trace.dropped ())
            else "")
       | None -> ());
      if trace_tree then Trace.print_tree stdout;
      (match before with
      | Some before -> T.print stdout (T.diff ~earlier:before ~later:(T.snapshot ()))
      | None -> ());
      if stats then
        Printf.printf
          "flight recorder: %d event(s) recorded, %d dropped, %d trip(s)\n"
          (Flight.recorded ()) (Flight.dropped ()) (Flight.trips ()))
    f

let obs_term =
  Term.(const (fun stats trace trace_tree audit audit_durability audit_recover ->
            { stats; trace; trace_tree; audit; audit_durability; audit_recover })
        $ stats_arg $ trace_arg $ trace_tree_arg $ audit_arg
        $ audit_durability_arg $ audit_recover_arg)

let parse_record line =
  (* Split on the first two '|' only: the policy itself may contain '|'. *)
  match String.index_opt line '|' with
  | None -> die "bad record line (expected k1,k2|value|policy): %s" line
  | Some i ->
    (match String.index_from_opt line (i + 1) '|' with
     | None -> die "bad record line (expected k1,k2|value|policy): %s" line
     | Some j ->
       let keys = String.sub line 0 i in
       let value = String.sub line (i + 1) (j - i - 1) in
       let policy = String.sub line (j + 1) (String.length line - j - 1) in
       let key =
         keys |> String.split_on_char ','
         |> List.map (fun s -> int_of_string (String.trim s))
         |> Array.of_list
       in
       Record.make ~key ~value ~policy:(Expr.of_string policy))

let read_records path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc else go (parse_record line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let parse_roles s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")

let parse_range ~dims s =
  match String.split_on_char ':' s with
  | [ a; b ] ->
    let point p =
      p |> String.split_on_char ','
      |> List.map (fun x -> int_of_string (String.trim x))
      |> Array.of_list
    in
    let alpha = point a and beta = point b in
    if Array.length alpha <> dims || Array.length beta <> dims then
      die "range has %d dims, ADS has %d" (Array.length alpha) dims;
    Box.of_range ~alpha ~beta
  | _ -> die "bad range (expected a1,a2:b1,b2): %s" s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  data

(* --- setup --- *)

let setup records_file roles dims depth seed out =
  let records = read_records records_file in
  let drbg = Drbg.create ~seed:("zkqac-cli:" ^ seed) in
  let msk, mvk = Abs.setup drbg in
  let universe = Universe.create (parse_roles roles) in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  let space = Keyspace.create ~dims ~depth in
  let tree =
    Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:("cli:" ^ seed) records
  in
  Ads_io.save ~path:out ~mvk tree;
  let st = Ap2g.stats tree in
  Printf.printf
    "ADS written to %s: %d records over a %d^%d space, %d signatures (%d KB)\n" out
    (Ap2g.num_records tree) (Keyspace.side space) dims
    (st.Ap2g.leaf_signatures + st.Ap2g.node_signatures)
    ((st.Ap2g.structure_bytes + st.Ap2g.signature_bytes) / 1024)

let setup_cmd =
  let records =
    Arg.(required & opt (some file) None & info [ "records" ] ~docv:"FILE"
           ~doc:"Record file, one 'k1,k2|value|policy' per line.")
  in
  let roles =
    Arg.(required & opt (some string) None & info [ "roles" ] ~docv:"R1,R2,..."
           ~doc:"The access role universe (the pseudo role is implicit).")
  in
  let dims = Arg.(value & opt int 2 & info [ "dims" ] ~doc:"Key dimensions.") in
  let depth = Arg.(value & opt int 3 & info [ "depth" ] ~doc:"Grid depth (side = 2^depth).") in
  let seed = Arg.(value & opt string "default" & info [ "seed" ] ~doc:"Deterministic key seed.") in
  let out = Arg.(value & opt string "ads.zkqac" & info [ "o"; "out" ] ~doc:"Output ADS file.") in
  Cmd.v
    (Cmd.info "setup" ~doc:"Data-owner setup: sign a database into an ADS file.")
    Term.(const (fun obs records roles dims depth seed out ->
              with_obs obs (fun () ->
                  setup records roles dims depth seed out))
          $ obs_term
          $ records $ roles $ dims $ depth $ seed $ out)

(* --- inspect --- *)

let inspect path =
  match Ads_io.load ~path with
  | Error e -> die "%s" e
  | Ok (_mvk, tree) ->
    let st = Ap2g.stats tree in
    let space = Ap2g.space tree in
    Printf.printf "space: %d dims, depth %d (%d cells)\n" (Keyspace.dims space)
      (Keyspace.depth space) (Keyspace.num_leaves space);
    Printf.printf "records: %d real, %d leaves total\n" (Ap2g.num_records tree)
      st.Ap2g.leaf_signatures;
    Printf.printf "signatures: %d leaf + %d internal (%d KB)\n"
      st.Ap2g.leaf_signatures st.Ap2g.node_signatures (st.Ap2g.signature_bytes / 1024);
    Printf.printf "roles: %s\n"
      (String.concat ", " (Universe.to_list (Ap2g.universe tree)))

let inspect_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"ADS") in
  Cmd.v (Cmd.info "inspect" ~doc:"Describe an ADS file.")
    Term.(const (fun obs path ->
              with_obs obs (fun () -> inspect path))
          $ obs_term $ path)

(* --- query (SP side) --- *)

let query path roles range out =
  match Ads_io.load ~path with
  | Error e -> die "%s" e
  | Ok (mvk, tree) ->
    let user = Attr.set_of_list (parse_roles roles) in
    let space = Ap2g.space tree in
    let box = parse_range ~dims:(Keyspace.dims space) range in
    let drbg = Drbg.create ~seed:"zkqac-sp" in
    (* Fan the relax jobs out over worker domains, like a real SP would
       (domain count from ZKQAC_DOMAINS, default the machine's cores). *)
    let pmap = Pool.map ~threads:(Pool.size ()) in
    let vo, st = Ap2g.range_vo ~pmap drbg ~mvk tree ~user box in
    write_file out (Vo.to_bytes vo);
    Printf.printf "VO written to %s: %d entries, %d bytes, %d relaxations, %.1f ms\n"
      out (List.length vo) (Vo.size vo) st.Ap2g.relax_calls (st.Ap2g.sp_time *. 1000.)

let query_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"ADS") in
  let roles =
    Arg.(required & opt (some string) None & info [ "user" ] ~docv:"R1,R2"
           ~doc:"The querying user's claimed roles.")
  in
  let range =
    Arg.(required & opt (some string) None & info [ "range" ] ~docv:"a1,a2:b1,b2"
           ~doc:"Inclusive query range corners.")
  in
  let out = Arg.(value & opt string "vo.zkqac" & info [ "o"; "out" ] ~doc:"Output VO file.") in
  Cmd.v
    (Cmd.info "query" ~doc:"Service-provider side: answer a range query with a VO.")
    Term.(const (fun obs path roles range out ->
              with_obs obs (fun () ->
                  query path roles range out))
          $ obs_term $ path $ roles
          $ range $ out)

(* --- verify (user side) --- *)

let verify ?(batch = true) path vo_path roles range =
  match Ads_io.load ~path with
  | Error e -> die "%s" e
  | Ok (mvk, tree) ->
    let user = Attr.set_of_list (parse_roles roles) in
    let space = Ap2g.space tree in
    let box = parse_range ~dims:(Keyspace.dims space) range in
    let vo_bytes = read_file vo_path in
    let fallbacks0 = Zkqac_telemetry.Metrics.batch_fallbacks () in
    (* Mirrors the audit entry System.open_and_verify writes: the CLI path
       verifies raw VO bytes without an envelope, but an auditor still gets
       query, digest, path and outcome for every decision. *)
    let record_audit ~outcome ~rows =
      if Audit.enabled () then
        Audit.record ~kind:"verify"
          (Json.Obj
             [ ("query", Json.Str (Box.to_string box));
               ("vo_digest", Json.Str (Zkqac_hashing.Sha256.hex vo_bytes));
               ("vo_bytes", Json.Int (String.length vo_bytes));
               ( "path",
                 Json.Str
                   (if not batch then "sequential"
                    else if Zkqac_telemetry.Metrics.batch_fallbacks () > fallbacks0
                    then "batch-fallback"
                    else "batch") );
               ("outcome", Json.Str outcome);
               ("rows", Json.Int rows) ])
    in
    let fail e =
      record_audit ~outcome:(Zkqac_util.Verify_error.code e) ~rows:0;
      die_verify e
    in
    (* Batch weights derived from the VO bytes: whoever produced the VO
       committed to it before the weights existed. *)
    let batch_drbg =
      if batch then
        Some (Zkqac_hashing.Drbg.create ~seed:("zkqac-cli-batch:" ^ vo_bytes))
      else None
    in
    (match Vo.decode vo_bytes with
     | Error e -> fail e
     | Ok vo ->
       (match
          Ap2g.verify ?batch:batch_drbg ~mvk ~t_universe:(Ap2g.universe tree)
            ?hierarchy:(Ap2g.hierarchy tree) ~user ~query:box vo
        with
        | Error e -> fail e
        | Ok results ->
          record_audit ~outcome:"ok" ~rows:(List.length results);
          Printf.printf "verification OK: %d accessible record(s)\n" (List.length results);
          List.iter
            (fun (r : Record.t) ->
              Printf.printf "  %s | %s | %s\n"
                (String.concat ","
                   (Array.to_list (Array.map string_of_int r.Record.key)))
                r.Record.value
                (Expr.to_string r.Record.policy))
            results))

let verify_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"ADS") in
  let vo = Arg.(required & opt (some file) None & info [ "vo" ] ~doc:"VO file to check.") in
  let roles = Arg.(required & opt (some string) None & info [ "user" ] ~docv:"R1,R2") in
  let range = Arg.(required & opt (some string) None & info [ "range" ] ~docv:"a1,a2:b1,b2") in
  let batch =
    Arg.(
      value
      & vflag true
          [ (true, info [ "batch" ] ~doc:"Batch signature verification (default).");
            ( false,
              info [ "no-batch" ]
                ~doc:"Verify every signature individually (one pairing equation at a time)." ) ])
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"User side: check a VO for soundness and completeness.")
    Term.(const (fun obs batch path vo roles range ->
              with_obs obs (fun () ->
                  verify ~batch path vo roles range))
          $ obs_term $ batch $ path
          $ vo $ roles $ range)

(* --- attack (fault-injection harness) --- *)

module Harness = Zkqac_adversary.Harness.Make (Backend)

let attack seed scenario out =
  let report =
    try Harness.run ?scenario ~seed ()
    with Invalid_argument msg -> die "%s" msg
  in
  let matrix = Harness.render report in
  print_string matrix;
  (match out with
   | Some path ->
     write_file path matrix;
     Printf.printf "matrix written to %s\n" path
   | None -> ());
  if not report.Harness.ok then exit 1

let attack_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"PRNG seed; the same seed reproduces the same tampers.")
  in
  let scenario =
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Run a single scenario instead of the full registry. Known \
                 scenarios: $(b,zkqac attack --scenario help) lists them on \
                 error.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Also write the rejection matrix to $(docv).")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Simulate a malicious service provider: apply every registered \
             tamper scenario to equality, range, kd and join query responses \
             and assert the client rejects each with the expected typed \
             error. Exits non-zero if any attack survives.")
    Term.(const (fun obs seed scenario out ->
              with_obs obs (fun () ->
                  attack seed scenario out))
          $ obs_term $ seed $ scenario
          $ out)

(* --- metrics --- *)

let metrics fmt seed out =
  let module T = Zkqac_telemetry.Telemetry in
  let module Metrics = Zkqac_telemetry.Metrics in
  T.enable ();
  Rte.start ();
  (* One adversarial sweep touches every metric family: PAIRING-boundary op
     counts, per-stage latency and allocation attribution, and typed
     verifier rejections. *)
  let (_ : Harness.report) =
    try Harness.run ~seed () with Invalid_argument msg -> die "%s" msg
  in
  (* Quiesce the runtime-events monitor so the exposition includes every GC
     pause the sweep caused. *)
  Rte.stop ();
  let text =
    match fmt with
    | `Prometheus -> Metrics.to_prometheus ()
    | `Json -> Zkqac_telemetry.Json.to_string (Metrics.to_json ()) ^ "\n"
  in
  match out with
  | None -> print_string text
  | Some path ->
    write_file path text;
    Printf.printf "metrics written to %s\n" path

let metrics_cmd =
  let fmt =
    Arg.(value
         & opt (enum [ ("prometheus", `Prometheus); ("json", `Json) ]) `Prometheus
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,prometheus) text exposition or $(b,json).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the instrumented workload.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the exposition to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run an instrumented workload (the fault-injection sweep) and \
             print the full metrics registry: operation counts, per-stage \
             latency summaries, GC/allocation attribution, trace health and \
             verifier rejection counts.")
    Term.(const metrics $ fmt $ seed $ out)

(* --- audit (hash-chained log tooling) --- *)

let audit_verify path quiet repair =
  if repair then begin
    match Audit.recover ~path with
    | Ok { Audit.kept = _; dropped = Some line } ->
      Printf.printf "repaired: dropped torn tail line (%d bytes): %s\n"
        (String.length line) line
    | Ok _ -> ()
    | Error b ->
      prerr_endline
        (Printf.sprintf
           "zkqac: audit repair refused at entry %d: %s" b.Audit.entry
           b.Audit.reason);
      exit 1
  end;
  match Audit.verify_file path with
  | Error b ->
    prerr_endline
      (Printf.sprintf "zkqac: audit chain BROKEN at entry %d: %s" b.Audit.entry
         b.Audit.reason);
    exit 1
  | Ok entries ->
    let n = List.length entries in
    let kinds = Hashtbl.create 8 in
    List.iter
      (fun (e : Audit.entry) ->
        Hashtbl.replace kinds e.Audit.kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt kinds e.Audit.kind)))
      entries;
    let head =
      match List.rev entries with
      | e :: _ -> String.sub e.Audit.hash 0 12
      | [] -> "(empty)"
    in
    Printf.printf "audit chain OK: %d entr%s, head %s\n" n
      (if n = 1 then "y" else "ies")
      head;
    if not quiet then
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
      |> List.sort compare
      |> List.iter (fun (k, v) -> Printf.printf "  %-16s %d\n" k v)

let audit_show path =
  match Audit.verify_file path with
  | Error b ->
    prerr_endline
      (Printf.sprintf "zkqac: audit chain BROKEN at entry %d: %s" b.Audit.entry
         b.Audit.reason);
    exit 1
  | Ok entries ->
    List.iter
      (fun (e : Audit.entry) ->
        Printf.printf "#%-5d %s  %-14s %s  %s\n" e.Audit.seq
          (Audit.pp_time e.Audit.time) e.Audit.kind
          (String.sub e.Audit.hash 0 12)
          (Json.to_string e.Audit.body))
      entries

let audit_path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG"
         ~doc:"Audit log produced with --audit.")

let audit_verify_cmd =
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the verdict line.")
  in
  let repair =
    Arg.(value & flag
         & info [ "repair" ]
             ~doc:"First truncate a torn tail line left by a crash, printing \
                   what was dropped. At most the final line is ever removed; \
                   a chain broken anywhere earlier is tampering and the \
                   repair is refused.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Re-derive every hash link of an audit log from the bytes on \
             disk. Exits 1 naming the first broken entry if any byte of the \
             log was altered.")
    Term.(const audit_verify $ audit_path_arg $ quiet $ repair)

let audit_show_cmd =
  Cmd.v
    (Cmd.info "show"
       ~doc:"Verify the chain, then print every entry (sequence, UTC time, \
             kind, chain-hash prefix, body).")
    Term.(const audit_show $ audit_path_arg)

let audit_cmd =
  Cmd.group
    (Cmd.info "audit"
       ~doc:"Tamper-evident audit-log tooling: every entry is hash-chained \
             to its predecessor, so any modification of a recorded log is \
             detectable offline.")
    [ audit_show_cmd; audit_verify_cmd ]

(* --- bench (BENCH.json tooling) --- *)

let bench_diff baseline current threshold latency_threshold alloc_threshold all
    markdown =
  let module Diff = Zkqac_bench.Diff in
  let load path =
    match Zkqac_bench.Report.load_bench path with
    | Ok j -> j
    | Error e ->
      prerr_endline ("zkqac: " ^ e);
      exit 2
  in
  let b = load baseline and c = load current in
  let r =
    Diff.run ~threshold ~latency_threshold ~alloc_threshold ~baseline:b
      ~current:c ()
  in
  if markdown then Diff.print_markdown r else Diff.print ~all r;
  if r.Diff.regressions > 0 then exit 1

let bench_diff_cmd =
  let baseline =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE"
           ~doc:"Baseline BENCH.json.")
  in
  let current =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW"
           ~doc:"New BENCH.json to compare against the baseline.")
  in
  let threshold =
    Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT"
           ~doc:"Relative change (percent) past which a deterministic metric \
                 (op counts, VO bytes) counts as significant.")
  in
  let latency_threshold =
    Arg.(value & opt float 25.0 & info [ "latency-threshold" ] ~docv:"PCT"
           ~doc:"Threshold for latency metrics; a stage only regresses when \
                 the whole bootstrap 95% confidence interval of its mean \
                 delta clears this.")
  in
  let alloc_threshold =
    Arg.(value & opt float 50.0 & info [ "alloc-threshold" ] ~docv:"PCT"
           ~doc:"Threshold for per-stage allocation (minor words).")
  in
  let all =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Show every comparison, not only significant changes.")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ]
           ~doc:"Emit a Markdown table (for CI job summaries).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two BENCH.json files. Deterministic metrics (pairing \
             and group-operation counts, VO bytes, allocation words) diff \
             directly; latency distributions diff with bootstrap confidence \
             intervals so noise does not flag. Exits 1 when a significant \
             regression is found, 2 when a file cannot be read or has an \
             unsupported schema.")
    Term.(const bench_diff $ baseline $ current $ threshold $ latency_threshold
          $ alloc_threshold $ all $ markdown)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench" ~doc:"Benchmark-result tooling (regression diffing).")
    [ bench_diff_cmd ]

(* --- serve / client / chaos / loadgen (the resilience layer) --- *)

module Server = Zkqac_server.Server.Make (Backend)
module Client = Zkqac_server.Client
module Cl = Zkqac_server.Client.Make (Backend)
module Chaos = Zkqac_server.Chaos
module Loadgen = Zkqac_server.Loadgen
module Lg = Zkqac_server.Loadgen.Make (Backend)
module Metrics_http = Zkqac_server.Metrics_http

let serve ads host port metrics_port threads max_in_flight read_dl write_dl
    query_dl drain_dl checkpoint_every slow_threshold_ms slowlog_cap =
  let cfg =
    {
      Zkqac_server.Server.host;
      port;
      metrics_port;
      threads;
      max_in_flight;
      read_deadline = read_dl;
      write_deadline = write_dl;
      query_deadline = query_dl;
      drain_deadline = drain_dl;
      checkpoint_every;
      slow_threshold_ms;
      slowlog_cap;
      slow_inject = Zkqac_server.Server.slow_inject_of_env ();
    }
  in
  match Server.start cfg ~ads with
  | Error e -> die "%s" e
  | Ok t ->
    Printf.printf "serving %s on %s:%d (pool=%d, max_in_flight=%d, epoch=%d)\n%!"
      ads host (Server.port t) threads max_in_flight (Server.recovered_epoch t);
    (match Server.metrics_port t with
    | Some p ->
      Printf.printf "metrics on http://%s:%d/metrics, slowlog on http://%s:%d/slowlog\n%!"
        host p host p
    | None -> ());
    (* SIGUSR1 on the daemon dumps the slowlog (JSON + per-incident
       Perfetto files) next to the flight recorder's emergency dump, into
       ZKQAC_FLIGHT_DIR — one signal, one joined forensic snapshot. *)
    (try
       Sys.set_signal Sys.sigusr1
         (Sys.Signal_handle
            (fun _ ->
              Flight.emergency ~reason:"sigusr1";
              ignore (Server.dump_slowlog t : int)))
     with Invalid_argument _ | Sys_error _ -> ());
    (* First SIGTERM/SIGINT: graceful drain — stop accepting, finish
       in-flight queries within their deadlines, flush audit + flight.
       A second signal falls back to the flush-and-exit default. *)
    graceful_terminate :=
      Some
        (fun name ->
          Printf.eprintf "zkqac: %s received, draining\n%!" name;
          Server.begin_drain t);
    Server.wait t;
    Printf.printf "drained: %d quer(ies) served over %d connection(s)\n"
      (Server.served t) (Server.connections t)

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind or connect to.")

let port_arg ~doc default = Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let ads = Arg.(required & pos 0 (some file) None & info [] ~docv:"ADS") in
  let metrics_port =
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Also expose GET /metrics (Prometheus text) on $(docv).")
  in
  let threads =
    Arg.(value & opt int Zkqac_server.Server.default_config.Zkqac_server.Server.threads
         & info [ "threads" ] ~docv:"N" ~doc:"Worker domains in the persistent query pool.")
  in
  let max_in_flight =
    Arg.(value & opt int Zkqac_server.Server.default_config.Zkqac_server.Server.max_in_flight
         & info [ "max-in-flight" ] ~docv:"N"
             ~doc:"Concurrent connections before load shedding answers \
                   Overloaded instead of queueing without bound.")
  in
  let deadline names default doc =
    Arg.(value & opt float default & info names ~docv:"SECONDS" ~doc)
  in
  let slow_threshold_ms =
    Arg.(value & opt float 0.0 & info [ "slow-threshold-ms" ] ~docv:"MS"
           ~doc:"Tail-sampling slow threshold: requests slower than $(docv) \
                 milliseconds keep their full span tree in /slowlog. 0 \
                 (default) tracks the live p99 instead.")
  in
  let slowlog_cap =
    Arg.(value & opt int 64 & info [ "slowlog-cap" ] ~docv:"N"
           ~doc:"Incidents retained by the tail sampler (oldest evicted).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Service-provider daemon: answer range queries over TCP with \
             per-connection deadlines, bounded in-flight load shedding, a \
             persistent worker-domain pool, tail-sampled request tracing \
             (GET /slowlog next to /metrics; SIGUSR1 dumps it with \
             per-incident Perfetto files), and graceful drain on SIGTERM.")
    Term.(const (fun obs ads host port metrics_port
                     threads max_in_flight read_dl write_dl query_dl drain_dl
                     checkpoint_every slow_threshold_ms slowlog_cap ->
              with_obs obs (fun () ->
                  serve ads host port metrics_port threads max_in_flight
                    read_dl write_dl query_dl drain_dl checkpoint_every
                    slow_threshold_ms slowlog_cap))
          $ obs_term $ ads $ host_arg
          $ port_arg ~doc:"Port to listen on (0 picks one)." 7499
          $ metrics_port $ threads $ max_in_flight
          $ deadline [ "read-deadline" ] 5.0 "Budget for reading one request frame."
          $ deadline [ "write-deadline" ] 5.0 "Budget for writing one response frame."
          $ deadline [ "query-deadline" ] 30.0 "Budget for executing one query."
          $ deadline [ "drain-deadline" ] 45.0 "Budget for the whole graceful drain."
          $ deadline [ "checkpoint-every" ] 0.0
              "Write an epoch-stamped checkpoint sibling of the ADS file \
               every $(docv) seconds (atomic replace; the newest two epochs \
               are kept). 0 disables."
          $ slow_threshold_ms $ slowlog_cap)

(* --- supervise (restart loop around serve) --- *)

module Supervise = Zkqac_server.Supervise

let supervise max_restarts base_backoff max_backoff pid_file serve_args =
  let argv =
    Array.of_list (Sys.executable_name :: "serve" :: serve_args)
  in
  let sup =
    Supervise.create
      { Supervise.max_restarts; base_backoff; max_backoff; pid_file }
  in
  (* First SIGTERM/SIGINT forwards to the child so it drains; the
     supervisor then ends with the child's clean exit. *)
  graceful_terminate :=
    Some
      (fun name ->
        Printf.eprintf "zkqac: %s received, stopping supervised child\n%!" name;
        Supervise.stop sup);
  let code = Supervise.run sup ~argv in
  Printf.printf "supervise: done after %d restart(s)\n" (Supervise.restarts sup);
  exit code

let supervise_cmd =
  let max_restarts =
    Arg.(value & opt int Supervise.default_config.Supervise.max_restarts
         & info [ "max-restarts" ] ~docv:"N"
             ~doc:"Give up (exit non-zero) after $(docv) restarts.")
  in
  let base_backoff =
    Arg.(value & opt float Supervise.default_config.Supervise.base_backoff
         & info [ "base-backoff" ] ~docv:"SECONDS"
             ~doc:"Delay before the first restart; doubles each crash.")
  in
  let max_backoff =
    Arg.(value & opt float Supervise.default_config.Supervise.max_backoff
         & info [ "max-backoff" ] ~docv:"SECONDS" ~doc:"Backoff ceiling.")
  in
  let pid_file =
    Arg.(value & opt (some string) None & info [ "pid-file" ] ~docv:"FILE"
           ~doc:"Publish the child server pid to $(docv) (written \
                 atomically) after each (re)start, so a harness can kill \
                 the server rather than the supervisor.")
  in
  let serve_args =
    Arg.(value & pos_all string [] & info [] ~docv:"SERVE_ARG"
           ~doc:"Arguments passed to $(b,zkqac serve), after $(b,--).")
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:"Run $(b,zkqac serve) under a restart loop: when the server \
             dies without being asked to (crash, SIGKILL), restart it with \
             exponential backoff and count it in \
             zkqac_supervisor_restarts_total. The restarted server recovers \
             its newest valid checkpoint epoch and repairs the audit tail \
             before flipping /readyz. Example: $(b,zkqac supervise \
             --pid-file srv.pid -- ads.zkqac --port 7499 --audit a.log \
             --audit-recover).")
    Term.(const supervise $ max_restarts $ base_backoff $ max_backoff
          $ pid_file $ serve_args)

let client ads host port roles range retries batch =
  match Ads_io.load ~path:ads with
  | Error e -> die "%s" e
  | Ok (mvk, tree) ->
    let user = Attr.set_of_list (parse_roles roles) in
    let space = Ap2g.space tree in
    let box = parse_range ~dims:(Keyspace.dims space) range in
    let cfg = { Client.default_config with Client.host; port; retries; batch } in
    (match
       Cl.query cfg ~mvk ~universe:(Ap2g.universe tree)
         ?hierarchy:(Ap2g.hierarchy tree) ~user ~query:box ()
     with
    | Ok s ->
      Printf.printf
        "verification OK: %d accessible record(s), %d VO bytes, %d attempt(s)\n"
        (List.length s.Cl.records) s.Cl.vo_bytes s.Cl.attempts;
      (* The correlation line: this id greps into the server's audit log,
         /slowlog, and flight dump. The split separates who to blame. *)
      (match s.Cl.server with
      | Some tm ->
        let ms us = float_of_int us /. 1e3 in
        let server_ms = ms tm.Zkqac_server.Proto.total_us in
        Printf.printf
          "req %s: server %.2f ms (queue %.2f, relax %.2f, prove %.2f, \
           encode %.2f), network %.2f ms, verify %.2f ms\n"
          (Zkqac_server.Proto.req_id_hex s.Cl.req_id)
          server_ms
          (ms tm.Zkqac_server.Proto.queue_us)
          (ms tm.Zkqac_server.Proto.relax_us)
          (ms tm.Zkqac_server.Proto.prove_us)
          (ms tm.Zkqac_server.Proto.encode_us)
          (Float.max 0.0 (s.Cl.attempt_ms -. server_ms))
          s.Cl.verify_ms
      | None ->
        Printf.printf "req %s: v1 responder (no server timing), verify %.2f ms\n"
          (Zkqac_server.Proto.req_id_hex s.Cl.req_id)
          s.Cl.verify_ms);
      List.iter
        (fun (r : Record.t) ->
          Printf.printf "  %s | %s | %s\n"
            (String.concat ","
               (Array.to_list (Array.map string_of_int r.Record.key)))
            r.Record.value
            (Expr.to_string r.Record.policy))
        s.Cl.records
    | Error (Client.Rejected e) -> die_verify e
    | Error f -> die "%s" (Client.failure_to_string f))

let client_cmd =
  let ads =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ADS"
           ~doc:"The client's trusted copy of the ADS checkpoint (public key \
                 and role universe); the VO is verified against it locally.")
  in
  let roles = Arg.(required & opt (some string) None & info [ "user" ] ~docv:"R1,R2") in
  let range = Arg.(required & opt (some string) None & info [ "range" ] ~docv:"a1,a2:b1,b2") in
  let retries =
    Arg.(value & opt int Client.default_config.Client.retries
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry budget for transient faults (transport errors, \
                   Overloaded, Deadline). Typed verification rejections are \
                   never retried.")
  in
  let batch =
    Arg.(value & vflag true
           [ (true, info [ "batch" ] ~doc:"Batch signature verification (default).");
             (false, info [ "no-batch" ] ~doc:"Verify signatures individually.") ])
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Query a running server and verify the returned VO locally, \
             retrying transient faults with full-jitter backoff. Exits with \
             the typed verification code on rejection.")
    Term.(const (fun obs ads host port roles range
                     retries batch ->
              with_obs obs (fun () ->
                  client ads host port roles range retries batch))
          $ obs_term $ ads $ host_arg
          $ port_arg ~doc:"Server port." 7499 $ roles $ range $ retries $ batch)

let chaos listen_port upstream_host upstream_port scenario faults stall
    trickle_delay cut_after seed =
  let cfg =
    {
      Chaos.listen_host = "127.0.0.1";
      listen_port;
      upstream_host;
      upstream_port;
      scenario;
      faults;
      stall;
      trickle_delay;
      cut_after;
      seed;
    }
  in
  match Chaos.start cfg with
  | Error e -> die "%s" e
  | Ok t ->
    Printf.printf "chaos proxy on 127.0.0.1:%d -> %s:%d, scenario %s, first %d connection(s)\n%!"
      (Chaos.port t) upstream_host upstream_port scenario faults;
    let stop = Atomic.make false in
    graceful_terminate := Some (fun _ -> Atomic.set stop true);
    while not (Atomic.get stop) do
      (try Thread.delay 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    Chaos.stop t;
    Printf.printf "chaos proxy stopped: %d connection(s), %d fault(s) injected\n"
      (Chaos.connections t) (Chaos.injected t)

let chaos_cmd =
  let scenario =
    Arg.(value & opt string "net-corrupt" & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Network fault to inject: net-stall, net-slowloris, \
                 net-truncate, net-disconnect, net-corrupt or net-refuse.")
  in
  let upstream_host =
    Arg.(value & opt string "127.0.0.1" & info [ "upstream-host" ] ~docv:"ADDR")
  in
  let upstream_port =
    Arg.(value & opt int 7499 & info [ "upstream-port" ] ~docv:"PORT")
  in
  let faults =
    Arg.(value & opt int 1 & info [ "faults" ] ~docv:"N"
           ~doc:"Fault the first $(docv) connections, then forward clean — \
                 so a client with enough retry budget always recovers.")
  in
  let stall = Arg.(value & opt float 30.0 & info [ "stall" ] ~docv:"SECONDS") in
  let trickle =
    Arg.(value & opt float 0.25 & info [ "trickle-delay" ] ~docv:"SECONDS")
  in
  let cut = Arg.(value & opt int 12 & info [ "cut-after" ] ~docv:"BYTES") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Socket-level fault-injection proxy: the adversary registry \
             extended to the network boundary. Every injected fault must \
             surface as a typed client error or a successful retry.")
    Term.(const chaos
          $ port_arg ~doc:"Port to listen on (0 picks one)." 0
          $ upstream_host $ upstream_port $ scenario $ faults $ stall $ trickle
          $ cut $ seed)

let loadgen ads host port users qps duration max_queries frac roles
    metrics_port seed json_out =
  let cfg =
    {
      Loadgen.client = { Client.default_config with Client.host; port };
      users;
      qps;
      duration;
      max_queries;
      frac;
      roles = (match roles with None -> [] | Some r -> parse_roles r);
      seed;
    }
  in
  let mh =
    match metrics_port with
    | None -> None
    | Some p -> (
      match Metrics_http.start ~host:"127.0.0.1" ~port:p () with
      | Error e -> die "%s" e
      | Ok t ->
        Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
          (Metrics_http.port t);
        Some t)
  in
  let finish () = Option.iter Metrics_http.stop mh in
  Fun.protect ~finally:finish @@ fun () ->
  match Lg.run cfg ~ads with
  | Error e -> die "%s" e
  | Ok r ->
    let module H = Zkqac_telemetry.Histogram in
    let q p = H.quantile r.Loadgen.latency p /. 1e6 in
    Printf.printf
      "loadgen: %d sent in %.1fs (%.1f qps) | ok %d, rejected %d, \
       bad-request %d, exhausted %d | %d retr%s, %d record(s)\n"
      r.Loadgen.sent r.Loadgen.wall
      (float_of_int r.Loadgen.sent /. Float.max 1e-9 r.Loadgen.wall)
      r.Loadgen.ok r.Loadgen.rejected r.Loadgen.bad_request r.Loadgen.exhausted
      r.Loadgen.retries
      (if r.Loadgen.retries = 1 then "y" else "ies")
      r.Loadgen.records;
    Printf.printf "latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"
      (q 0.5) (q 0.95) (q 0.99)
      (H.max_ns r.Loadgen.latency /. 1e6);
    (* The split only exists when the server answered v2 footers. *)
    if H.count r.Loadgen.server_lat > 0 then begin
      let qh h p = H.quantile h p /. 1e6 in
      Printf.printf
        "  server  ms: p50 %.2f  p99 %.2f | network ms: p50 %.2f  p99 %.2f \
         | verify ms: p50 %.2f  p99 %.2f\n"
        (qh r.Loadgen.server_lat 0.5) (qh r.Loadgen.server_lat 0.99)
        (qh r.Loadgen.network_lat 0.5) (qh r.Loadgen.network_lat 0.99)
        (qh r.Loadgen.verify_lat 0.5) (qh r.Loadgen.verify_lat 0.99)
    end;
    if r.Loadgen.slowest <> [] then begin
      Printf.printf "worst queries (grep the req id in /slowlog and the audit log):\n";
      List.iter
        (fun (s : Loadgen.slow_query) ->
          Printf.printf "  req %s  %-11s  total %8.2f ms%s%s  attempts %d\n"
            (Zkqac_server.Proto.req_id_hex s.Loadgen.s_req_id)
            s.Loadgen.s_outcome s.Loadgen.s_total_ms
            (match s.Loadgen.s_server_ms with
            | Some v -> Printf.sprintf "  server %8.2f ms" v
            | None -> "")
            (match s.Loadgen.s_network_ms with
            | Some v -> Printf.sprintf "  network %8.2f ms" v
            | None -> "")
            s.Loadgen.s_attempts)
        r.Loadgen.slowest
    end;
    (match json_out with
    | Some path ->
      Json.to_file path (Loadgen.report_to_json r);
      Printf.printf "report written to %s\n" path
    | None -> ());
    (* Rejections against an honest server mean an accepted-tamper class
       bug somewhere; make the run fail loudly. *)
    if r.Loadgen.rejected > 0 then exit 1

let loadgen_cmd =
  let ads =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ADS"
           ~doc:"Trusted ADS checkpoint used to verify every response.")
  in
  let users =
    Arg.(value & opt int 4 & info [ "users" ] ~docv:"N" ~doc:"Concurrent simulated users.")
  in
  let qps =
    Arg.(value & opt (some float) None & info [ "qps" ] ~docv:"Q"
           ~doc:"Total offered rate (open loop, exponential interarrivals). \
                 Omit for closed loop: each user fires as soon as the \
                 previous query completes.")
  in
  let duration =
    Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"SECONDS")
  in
  let max_queries =
    Arg.(value & opt int 0 & info [ "queries" ] ~docv:"N"
           ~doc:"Stop after $(docv) queries (0 = duration only).")
  in
  let frac =
    Arg.(value & opt float 0.001 & info [ "frac" ] ~docv:"F"
           ~doc:"Query box covers about this fraction of the keyspace.")
  in
  let roles =
    Arg.(value & opt (some string) None & info [ "user" ] ~docv:"R1,R2"
           ~doc:"Claimed roles (default: every role in the universe).")
  in
  let metrics_port =
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Expose GET /metrics live during the run.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let json_out =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the report (counters + latency histogram) as JSON.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Replay the TPC-H range-query mix against a running server \
             through the retrying, verifying client; report latency \
             quantiles and shed/timeout/retry accounting. Exits 1 if any \
             response fails verification.")
    Term.(const loadgen $ ads $ host_arg
          $ port_arg ~doc:"Server port." 7499
          $ users $ qps $ duration $ max_queries $ frac $ roles $ metrics_port
          $ seed $ json_out)

(* --- demo --- *)

let demo () =
  let dir = Filename.temp_file "zkqac" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let records_file = Filename.concat dir "records.txt" in
  write_file records_file
    "1,2|alpha|RoleA\n3,4|bravo|RoleA & RoleB\n5,1|charlie|RoleB\n6,6|delta|RoleA | RoleC\n";
  let ads = Filename.concat dir "ads.zkqac" in
  let vo = Filename.concat dir "vo.zkqac" in
  setup records_file "RoleA,RoleB,RoleC" 2 3 "demo" ads;
  inspect ads;
  query ads "RoleA" "0,0:7,7" vo;
  verify ads vo "RoleA" "0,0:7,7";
  print_endline "demo OK"

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Self-contained end-to-end demonstration.")
    Term.(const (fun obs ->
              with_obs obs demo)
          $ obs_term)

let () =
  let info =
    Cmd.info "zkqac" ~version:"1.0"
      ~doc:"Zero-knowledge query authentication with fine-grained access control"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ setup_cmd; inspect_cmd; query_cmd; verify_cmd; attack_cmd;
            audit_cmd; metrics_cmd; bench_cmd; serve_cmd; supervise_cmd;
            client_cmd; chaos_cmd; loadgen_cmd; demo_cmd ]))
