(* Statistical comparison of two BENCH.json files.

   Deterministic cost metrics (op counts at the PAIRING boundary, VO bytes,
   allocation words) move only when the code's behaviour moves, so they are
   compared directly against a percentage threshold. Latency is noisy, so
   per-stage distributions (the sparse histogram buckets BENCH.json carries)
   are compared with a bootstrap: resample both distributions, take the 95%
   confidence interval of the relative mean delta, and only call a
   regression when the whole interval clears the threshold. A rerun on the
   same code should diff within noise; a synthetic slowdown should not. *)

module Json = Zkqac_telemetry.Json
module Histogram = Zkqac_telemetry.Histogram

type verdict = Regression | Improvement | Within_noise

type finding = {
  experiment : string;
  metric : string;
  older : string; (* rendered baseline value *)
  newer : string; (* rendered current value *)
  delta_pct : float option; (* None when the baseline value was zero *)
  ci : (float * float) option; (* bootstrap 95% CI of the relative delta *)
  verdict : verdict;
}

type result = {
  findings : finding list;
  regressions : int;
  improvements : int;
  missing : string list; (* experiments in the baseline but not the new run *)
  added : string list; (* experiments in the new run but not the baseline *)
}

(* --- JSON accessors --- *)

let mem name = Report.obj_mem name

let to_num = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let num_field name j = Option.bind (mem name j) to_num

let str_field name j =
  match mem name j with Some (Json.Str s) -> Some s | _ -> None

(* Recursive sum of every field called [name] — how VO bytes are pulled out
   of the per-experiment series rows regardless of series shape. *)
let rec sum_field name j =
  match j with
  | Json.Obj kvs ->
    List.fold_left
      (fun acc (k, v) ->
        acc
        +.
        if k = name then match to_num v with Some f -> f | None -> 0.0
        else sum_field name v)
      0.0 kvs
  | Json.Arr items -> List.fold_left (fun acc v -> acc +. sum_field name v) 0.0 items
  | _ -> 0.0

let histogram_of_json j =
  match mem "buckets" j with
  | Some (Json.Arr pairs) -> (
    try
      Some
        (Histogram.of_buckets
           (List.map
              (function
                | Json.Arr [ Json.Int b; Json.Int c ] -> (b, c)
                | _ -> raise Exit)
              pairs))
    with Exit | Invalid_argument _ -> None)
  | _ -> None

(* --- deterministic bootstrap --- *)

(* splitmix64, fixed seed: the diff of the same two files is the same
   every run. *)
let rng_state = ref 0x9e3779b97f4a7c15L

let rng_seed () = rng_state := 0x9e3779b97f4a7c15L

let rng_next () =
  let open Int64 in
  rng_state := add !rng_state 0x9e3779b97f4a7c15L;
  let z = !rng_state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let rng_int bound =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (rng_next ()) 1)
                  (Int64.of_int bound))

(* A histogram as a weighted sample of bucket midpoints. *)
type dist = { mids : float array; cums : int array; total : int }

let dist_of_histogram h =
  let sparse = Histogram.buckets h in
  let n = List.length sparse in
  let mids = Array.make n 0.0 and cums = Array.make n 0 in
  let acc = ref 0 in
  List.iteri
    (fun i (b, c) ->
      let lo, hi = Histogram.bucket_bounds b in
      mids.(i) <- (lo +. hi) /. 2.0;
      acc := !acc + c;
      cums.(i) <- !acc)
    sparse;
  { mids; cums; total = !acc }

let draw d =
  let u = rng_int d.total in
  (* first bucket with cumulative count > u *)
  let lo = ref 0 and hi = ref (Array.length d.cums - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.cums.(mid) > u then hi := mid else lo := mid + 1
  done;
  d.mids.(!lo)

let resample_mean d n =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. draw d
  done;
  !acc /. float_of_int n

let bootstrap_rounds = 300
let resample_cap = 10_000
let min_bootstrap_count = 5

(* 95% CI of the relative (%) delta of means between two histograms, or
   None when either side has too few observations to resample honestly. *)
let bootstrap_ci ~baseline ~current =
  let nb = Histogram.count baseline and nc = Histogram.count current in
  if nb < min_bootstrap_count || nc < min_bootstrap_count then None
  else begin
    rng_seed ();
    let db = dist_of_histogram baseline and dc = dist_of_histogram current in
    let nb = min nb resample_cap and nc = min nc resample_cap in
    let deltas =
      Array.init bootstrap_rounds (fun _ ->
          let mb = resample_mean db nb and mc = resample_mean dc nc in
          if mb <= 0.0 then 0.0 else (mc -. mb) /. mb *. 100.0)
    in
    Array.sort compare deltas;
    let pick q =
      deltas.(int_of_float (Float.round (q *. float_of_int (bootstrap_rounds - 1))))
    in
    Some (pick 0.025, pick 0.975)
  end

(* --- comparisons --- *)

let pct ~older ~newer =
  if older = 0.0 then None else Some ((newer -. older) /. older *. 100.0)

(* Deterministic metric: the sign of the delta decides which way, the
   threshold decides whether it matters. A metric appearing out of nowhere
   (baseline 0) is always a regression-grade event. *)
let direct_verdict ~threshold ~older ~newer =
  match pct ~older ~newer with
  | Some d when d > threshold -> Regression
  | Some d when d < -.threshold -> Improvement
  | Some _ -> Within_noise
  | None -> if newer > 0.0 then Regression else Within_noise

let fmt_count v =
  if Float.is_integer v then Printf.sprintf "%.0f" v else Printf.sprintf "%.1f" v

let direct_finding ~experiment ~metric ~threshold ?(fmt = fmt_count) ~older ~newer () =
  if older = 0.0 && newer = 0.0 then None
  else
    Some
      {
        experiment;
        metric;
        older = fmt older;
        newer = fmt newer;
        delta_pct = pct ~older ~newer;
        ci = None;
        verdict = direct_verdict ~threshold ~older ~newer;
      }

let ops_findings ~threshold ~experiment bj nj =
  let ops j = match mem "ops" j with Some (Json.Obj kvs) -> kvs | _ -> [] in
  let older = ops bj and newer = ops nj in
  let keys =
    List.sort_uniq compare (List.map fst older @ List.map fst newer)
  in
  List.filter_map
    (fun op ->
      let v kvs = match List.assoc_opt op kvs with
        | Some j -> Option.value (to_num j) ~default:0.0
        | None -> 0.0
      in
      direct_finding ~experiment ~metric:("ops." ^ op) ~threshold
        ~older:(v older) ~newer:(v newer) ())
    keys

let vo_finding ~threshold ~experiment bj nj =
  let vo j =
    match mem "series" j with Some s -> sum_field "vo_bytes" s | None -> 0.0
  in
  direct_finding ~experiment ~metric:"vo_bytes" ~threshold ~older:(vo bj)
    ~newer:(vo nj) ()

let wall_finding ~latency_threshold ~experiment bj nj =
  let w j = Option.value (num_field "wall_s" j) ~default:0.0 in
  direct_finding ~experiment ~metric:"wall_s" ~threshold:latency_threshold
    ~fmt:(Printf.sprintf "%.2fs") ~older:(w bj) ~newer:(w nj) ()

(* Per-stage latency: render with the histogram accessors (count, mean,
   min, max) and judge with the bootstrap CI when both sides carry enough
   observations. *)
let latency_findings ~latency_threshold ~experiment bj nj =
  let hists j =
    match mem "histograms" j with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  let older = hists bj and newer = hists nj in
  List.filter_map
    (fun (stage, nh_json) ->
      match (List.assoc_opt stage older, histogram_of_json nh_json) with
      | Some oh_json, Some nh -> (
        match histogram_of_json oh_json with
        | None -> None
        | Some oh ->
          let render h =
            Printf.sprintf "%.2fms n=%d [%.2f..%.2f]"
              (Histogram.mean_ns h /. 1e6)
              (Histogram.count h)
              (Histogram.min_ns h /. 1e6)
              (Histogram.max_ns h /. 1e6)
          in
          let older_mean = Histogram.mean_ns oh
          and newer_mean = Histogram.mean_ns nh in
          let ci = bootstrap_ci ~baseline:oh ~current:nh in
          let verdict =
            match ci with
            | Some (lo, _) when lo > latency_threshold -> Regression
            | Some (_, hi) when hi < -.latency_threshold -> Improvement
            | Some _ -> Within_noise
            | None ->
              (* Too few observations to resample: direct mean comparison. *)
              direct_verdict ~threshold:latency_threshold ~older:older_mean
                ~newer:newer_mean
          in
          Some
            {
              experiment;
              metric = "latency." ^ stage;
              older = render oh;
              newer = render nh;
              delta_pct = pct ~older:older_mean ~newer:newer_mean;
              ci;
              verdict;
            })
      | _ -> None)
    newer

(* Allocation attribution (schema 3): minor words per stage. Absent on
   schema-2 files, in which case there is nothing to compare. *)
let alloc_findings ~alloc_threshold ~experiment bj nj =
  let stages j = match mem "alloc" j with Some (Json.Obj kvs) -> kvs | _ -> [] in
  let older = stages bj and newer = stages nj in
  if older = [] || newer = [] then []
  else
    List.filter_map
      (fun (stage, cell) ->
        match List.assoc_opt stage older with
        | None -> None
        | Some ocell ->
          let minor c = Option.value (num_field "minor_words" c) ~default:0.0 in
          direct_finding ~experiment ~metric:("alloc." ^ stage)
            ~threshold:alloc_threshold
            ~fmt:(fun w -> Printf.sprintf "%.0fw" w)
            ~older:(minor ocell) ~newer:(minor cell) ())
      newer

(* --- driving --- *)

let experiments j =
  match mem "experiments" j with
  | Some (Json.Arr items) ->
    List.filter_map
      (fun e -> Option.map (fun n -> (n, e)) (str_field "name" e))
      items
  | _ -> []

let run ?(threshold = 10.0) ?(latency_threshold = 25.0) ?(alloc_threshold = 50.0)
    ~baseline ~current () =
  let older = experiments baseline and newer = experiments current in
  let missing =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n newer then None else Some n)
      older
  in
  let added =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n older then None else Some n)
      newer
  in
  let findings =
    List.concat_map
      (fun (name, nj) ->
        match List.assoc_opt name older with
        | None -> []
        | Some bj ->
          List.filter_map Fun.id
            [ wall_finding ~latency_threshold ~experiment:name bj nj;
              vo_finding ~threshold ~experiment:name bj nj ]
          @ ops_findings ~threshold ~experiment:name bj nj
          @ latency_findings ~latency_threshold ~experiment:name bj nj
          @ alloc_findings ~alloc_threshold ~experiment:name bj nj)
      newer
  in
  let count v = List.length (List.filter (fun f -> f.verdict = v) findings) in
  {
    findings;
    regressions = count Regression;
    improvements = count Improvement;
    missing;
    added;
  }

(* --- rendering --- *)

let verdict_text = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Within_noise -> "ok"

let delta_text f =
  match f.delta_pct with
  | None -> if f.verdict = Regression then "new" else "-"
  | Some d -> Printf.sprintf "%+.1f%%" d

let ci_text f =
  match f.ci with
  | None -> "-"
  | Some (lo, hi) -> Printf.sprintf "[%+.1f%%, %+.1f%%]" lo hi

let print ?(all = false) r =
  let shown =
    if all then r.findings
    else List.filter (fun f -> f.verdict <> Within_noise) r.findings
  in
  if shown = [] then print_endline "\nbench diff: no significant changes"
  else
    Report.print_table
      ~title:(if all then "bench diff (all comparisons)" else "bench diff (significant changes)")
      ~header:[ "experiment"; "metric"; "baseline"; "new"; "delta"; "ci95"; "verdict" ]
      (List.map
         (fun f ->
           [ f.experiment; f.metric; f.older; f.newer; delta_text f;
             ci_text f; verdict_text f.verdict ])
         shown);
  List.iter
    (fun n -> Printf.printf "note: experiment %s is new (no baseline)\n" n)
    r.added;
  List.iter
    (fun n -> Printf.printf "WARNING: experiment %s disappeared from the new run\n" n)
    r.missing;
  Printf.printf "\n%d comparison(s): %d regression(s), %d improvement(s), %d within noise\n"
    (List.length r.findings) r.regressions r.improvements
    (List.length r.findings - r.regressions - r.improvements)

(* Markdown flavour of the same table, for CI job summaries. *)
let print_markdown r =
  print_endline "### Benchmark diff";
  print_endline "";
  if r.findings = [] then print_endline "_no comparable experiments_"
  else begin
    print_endline "| experiment | metric | baseline | new | delta | ci95 | verdict |";
    print_endline "|---|---|---|---|---|---|---|";
    List.iter
      (fun f ->
        if f.verdict <> Within_noise then
          Printf.printf "| %s | %s | %s | %s | %s | %s | **%s** |\n" f.experiment
            f.metric f.older f.newer (delta_text f) (ci_text f)
            (verdict_text f.verdict))
      r.findings;
    Printf.printf "\n%d comparison(s): %d regression(s), %d improvement(s).\n"
      (List.length r.findings) r.regressions r.improvements
  end
