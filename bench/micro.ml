(* Bechamel micro-benchmarks of the cryptographic primitives: one Test.make
   per operation, per backend. These underpin every table: e.g. Table 2 is a
   direct consequence of how Sign/Verify/Relax scale with predicate size. *)

open Bechamel
open Toolkit
module Report = Zkqac_bench.Report
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)

  let tests () =
    let drbg = Drbg.create ~seed:("micro:" ^ P.name) in
    let msk, mvk = Abs.setup drbg in
    let roles = Universe.roles ~prefix:"R" 10 in
    let universe = Universe.create roles in
    let sk = Abs.keygen drbg msk (Universe.attrs universe) in
    let policy = Expr.of_string "(R0 & R1) | (R2 & R3) | (R4 & R5)" in
    let msg = "micro-benchmark message" in
    let sigma = Abs.sign drbg mvk sk ~msg ~policy in
    let user = Attr.set_of_list [ "R8"; "R9" ] in
    let keep = Universe.missing universe ~user in
    let g1 = P.rand_g drbg and g2 = P.rand_g drbg in
    let k = P.rand_scalar drbg in
    [
      Test.make ~name:(P.name ^ "/pairing") (Staged.stage (fun () -> P.e g1 g2));
      Test.make ~name:(P.name ^ "/g-exp") (Staged.stage (fun () -> P.G.pow g1 k));
      Test.make ~name:(P.name ^ "/abs-sign")
        (Staged.stage (fun () -> Abs.sign drbg mvk sk ~msg ~policy));
      Test.make ~name:(P.name ^ "/abs-verify")
        (Staged.stage (fun () -> Abs.verify mvk ~msg ~policy sigma));
      Test.make ~name:(P.name ^ "/abs-relax")
        (Staged.stage (fun () -> Abs.relax drbg mvk sigma ~msg ~policy ~keep));
    ]
end

let run_tests tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.fold
        (fun name raw acc ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> (name, ns) :: acc
          | Some _ | None -> (name, nan) :: acc)
        results [])
    tests

(* Overhead of the telemetry wrapper when collection is disabled: the
   instrumented backend adds one atomic load + branch per group op, which
   must stay in the noise (target <= 2% on mock ABS.Verify). Raw and
   wrapped variants run interleaved blocks and we keep the best of each,
   so frequency drift hits both alike. *)
let telemetry_overhead () =
  let module Telemetry = Zkqac_telemetry.Telemetry in
  let module Json = Zkqac_telemetry.Json in
  let was_on = Telemetry.enabled () in
  Telemetry.disable ();
  Fun.protect ~finally:(fun () -> if was_on then Telemetry.enable ())
  @@ fun () ->
  let runner (module P : Zkqac_group.Pairing_intf.PAIRING) =
    let module Abs = Zkqac_abs.Abs.Make (P) in
    let drbg = Drbg.create ~seed:"micro:overhead" in
    let msk, mvk = Abs.setup drbg in
    let universe = Universe.create (Universe.roles ~prefix:"R" 10) in
    let sk = Abs.keygen drbg msk (Universe.attrs universe) in
    let policy = Expr.of_string "(R0 & R1) | (R2 & R3) | (R4 & R5)" in
    let msg = "telemetry-overhead message" in
    let sigma = Abs.sign drbg mvk sk ~msg ~policy in
    fun iters ->
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        assert (Abs.verify mvk ~msg ~policy sigma)
      done;
      Unix.gettimeofday () -. t0
  in
  let module R = (val Zkqac_group.Backend.instantiate_raw Zkqac_group.Backend.Mock)
  in
  let module I = Zkqac_group.Instrumented.Make (R) in
  let raw = runner (module R) and inst = runner (module I) in
  let iters = 400 and blocks = 5 in
  (* Warm-up. *)
  ignore (raw 100);
  ignore (inst 100);
  let best_raw = ref infinity and best_inst = ref infinity in
  for _ = 1 to blocks do
    best_raw := Float.min !best_raw (raw iters);
    best_inst := Float.min !best_inst (inst iters)
  done;
  let per v = v /. float_of_int iters *. 1e6 in
  let overhead = (!best_inst -. !best_raw) /. !best_raw *. 100. in
  Report.print_table
    ~title:"Telemetry wrapper overhead (mock ABS.Verify, telemetry disabled)"
    ~header:[ "variant"; "us/verify"; "overhead" ]
    [
      [ "raw backend"; Printf.sprintf "%.2f" (per !best_raw); "-" ];
      [ "instrumented, disabled"; Printf.sprintf "%.2f" (per !best_inst);
        Printf.sprintf "%+.2f%%" overhead ];
    ];
  Report.emit ~series:"telemetry_overhead"
    (Json.Obj
       [ ("iters_per_block", Json.Int iters);
         ("blocks", Json.Int blocks);
         ("raw_us_per_verify", Json.Float (per !best_raw));
         ("instrumented_us_per_verify", Json.Float (per !best_inst));
         ("overhead_percent", Json.Float overhead) ])

(* Overhead of the always-on flight recorder: unlike the telemetry wrapper
   above, [Flight] records by default, so its cost per instrumented span is
   what every production run pays. The span fast path with flight enabled
   does one enabled-load plus a ring write; with flight disabled it is a
   single branch. Both variants run with telemetry and tracing off, so the
   difference isolates the recorder itself (target <= 2%). *)
let flight_overhead () =
  let module Telemetry = Zkqac_telemetry.Telemetry in
  let module Trace = Zkqac_telemetry.Trace in
  let module Flight = Zkqac_telemetry.Flight in
  let module Json = Zkqac_telemetry.Json in
  let was_on = Flight.enabled () in
  let tel_on = Telemetry.enabled () in
  Telemetry.disable ();
  Fun.protect
    ~finally:(fun () ->
      if was_on then Flight.enable () else Flight.disable ();
      if tel_on then Telemetry.enable ())
  @@ fun () ->
  let module P =
    (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
  in
  let module Abs = Zkqac_abs.Abs.Make (P) in
  let drbg = Drbg.create ~seed:"micro:flight-overhead" in
  let msk, mvk = Abs.setup drbg in
  let universe = Universe.create (Universe.roles ~prefix:"R" 10) in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  let policy = Expr.of_string "(R0 & R1) | (R2 & R3) | (R4 & R5)" in
  let msg = "flight-overhead message" in
  let sigma = Abs.sign drbg mvk sk ~msg ~policy in
  let run iters =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Trace.with_span "flight.overhead" ~parent:Trace.none @@ fun _ ->
      assert (Abs.verify mvk ~msg ~policy sigma)
    done;
    Unix.gettimeofday () -. t0
  in
  let iters = 400 and blocks = 5 in
  Flight.disable ();
  ignore (run 100);
  Flight.enable ();
  ignore (run 100);
  let best_off = ref infinity and best_on = ref infinity in
  for _ = 1 to blocks do
    Flight.disable ();
    best_off := Float.min !best_off (run iters);
    Flight.enable ();
    best_on := Float.min !best_on (run iters)
  done;
  let per v = v /. float_of_int iters *. 1e6 in
  let overhead = (!best_on -. !best_off) /. !best_off *. 100. in
  Report.print_table
    ~title:"Flight recorder overhead (mock ABS.Verify inside a span)"
    ~header:[ "variant"; "us/verify"; "overhead" ]
    [
      [ "flight disabled"; Printf.sprintf "%.2f" (per !best_off); "-" ];
      [ "flight enabled"; Printf.sprintf "%.2f" (per !best_on);
        Printf.sprintf "%+.2f%%" overhead ];
    ];
  Report.emit ~series:"flight_overhead"
    (Json.Obj
       [ ("iters_per_block", Json.Int iters);
         ("blocks", Json.Int blocks);
         ("disabled_us_per_verify", Json.Float (per !best_off));
         ("enabled_us_per_verify", Json.Float (per !best_on));
         ("overhead_percent", Json.Float overhead) ])

let micro backends =
  let rows =
    List.concat_map
      (fun (m : (module Zkqac_group.Pairing_intf.PAIRING)) ->
        let module B = (val m) in
        let module M = Make (B) in
        run_tests (M.tests ()))
      backends
  in
  Report.print_table ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
    ~header:[ "operation"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let pretty =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; pretty ])
       (List.sort compare rows));
  telemetry_overhead ();
  flight_overhead ()
