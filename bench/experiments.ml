(* One function per paper table/figure. Sizes are scaled down from the
   paper's testbed (6M-row TPC-H, 512-bit PBC pairings, 24 hyper-threads) to
   laptop-scale runs; EXPERIMENTS.md records the mapping and the expected
   shapes. Every experiment prints the same rows/series the paper reports. *)

module Report = Zkqac_bench.Report
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Workload = Zkqac_tpch.Workload
module Pool = Zkqac_parallel.Pool
module Telemetry = Zkqac_telemetry.Telemetry
module Json = Zkqac_telemetry.Json

(* Run [f], returning its result plus the telemetry cost (op counts) of the
   region as a JSON object — the per-row "ops" field of BENCH.json. *)
let with_ops f =
  let before = Telemetry.snapshot () in
  let v = f () in
  let cost = Telemetry.diff ~earlier:before ~later:(Telemetry.snapshot ()) in
  (v, Telemetry.ops_json cost)

type scale_cfg = { full : bool }

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Ap2g = Zkqac_core.Ap2g.Make (P)
  module Ap2kd = Zkqac_core.Ap2kd.Make (P)
  module Equality = Zkqac_core.Equality.Make (P)
  module Join = Zkqac_core.Join.Make (P)
  module Vo = Zkqac_core.Vo.Make (P)
  module Dup = Zkqac_core.Duplicates.Make (P)

  let drbg = Drbg.create ~seed:("bench:" ^ P.name)
  let msk, mvk = Abs.setup drbg

  let keygen_for universe = Abs.keygen drbg msk (Universe.attrs universe)

  (* A standard workload instance: policies, universe, records, tree. *)
  type instance = {
    roles : Attr.t list;
    policies : Expr.t array;
    universe : Universe.t;
    sk : Abs.signing_key;
    space : Keyspace.t;
    records : Record.t list;
    tree : Ap2g.t;
  }

  let make_instance ?(policy_cfg = Workload.default_policies) ~seed ~depth ~rows () =
    let rng = Prng.create seed in
    let roles, policies = Workload.gen_policies rng policy_cfg in
    let universe = Universe.create roles in
    let sk = keygen_for universe in
    let space = Keyspace.create ~dims:3 ~depth in
    let records = Workload.lineitem_records rng ~space ~rows ~policies in
    let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"b" records in
    { roles; policies; universe; sk; space; records; tree }

  let user_20pct ~seed inst =
    let rng = Prng.create (seed + 7919) in
    Workload.user_for_fraction rng ~roles:inst.roles ~policies:inst.policies ~frac:0.2

  (* Run a range query on both approaches and verify; returns per-approach
     (sp_time, user_time, vo_kb). *)
  let run_range ?(runs = 3) inst flat ~user query =
    let (vo_g, st_g), _ =
      Report.avg_time 1 (fun () -> Ap2g.range_vo drbg ~mvk inst.tree ~user query)
    in
    let _, sp_g = Report.avg_time runs (fun () -> Ap2g.range_vo drbg ~mvk inst.tree ~user query) in
    ignore sp_g;
    let sp_g = st_g.Ap2g.sp_time in
    let res_g, user_g =
      Report.avg_time runs (fun () ->
          Ap2g.verify ~mvk ~t_universe:inst.universe ~user ~query vo_g)
    in
    (match res_g with
     | Ok _ -> ()
     | Error e -> failwith ("bench: AP2G verify failed: " ^ Vo.error_to_string e));
    let vo_b, st_b = Equality.range_vo drbg ~mvk flat ~user query in
    let res_b, user_b =
      Report.avg_time runs (fun () ->
          Equality.verify_range ~mvk ~t_universe:inst.universe ~user ~query vo_b)
    in
    (match res_b with
     | Ok _ -> ()
     | Error e -> failwith ("bench: basic verify failed: " ^ Vo.error_to_string e));
    ( (sp_g, user_g, Vo.size vo_g, st_g.Ap2g.relax_calls),
      (st_b.Ap2g.sp_time, user_b, Vo.size vo_b, st_b.Ap2g.relax_calls) )

  (* ------------------------------------------------------------------ *)
  (* Table 1: DO setup overhead vs database scale.                        *)

  let table1 { full } =
    let depth = if full then 4 else 3 in
    let scales = [ (0.1, 2_000); (0.3, 6_000); (1.0, 20_000); (3.0, 60_000) ] in
    let rows =
      List.map
        (fun (scale, rows) ->
          let inst = make_instance ~seed:1 ~depth ~rows () in
          let st = Ap2g.stats inst.tree in
          [ Printf.sprintf "%.1f" scale;
            string_of_int rows;
            string_of_int (List.length inst.records);
            Report.s st.Ap2g.sign_time;
            Report.s (st.Ap2g.sign_time *. float_of_int st.Ap2g.node_signatures
                      /. float_of_int (st.Ap2g.leaf_signatures + st.Ap2g.node_signatures));
            Report.mb (st.Ap2g.structure_bytes + st.Ap2g.signature_bytes);
            Report.mb st.Ap2g.structure_bytes;
            Report.mb st.Ap2g.signature_bytes ])
        scales
    in
    Report.print_table
      ~title:"Table 1: DO setup overhead (paper: time/size sublinear in scale; index dominated by the fixed grid)"
      ~header:
        [ "scale"; "rows"; "records"; "sign APPs (s)"; "~build idx (s)";
          "index (MB)"; "tree (MB)"; "sigs (MB)" ]
      rows

  (* ------------------------------------------------------------------ *)
  (* Table 2: equality query performance.                                 *)

  let table2 { full } =
    let runs = if full then 20 else 5 in
    (* Accessible record: cost grows with the record's policy length. *)
    let acc_rows =
      List.map
        (fun (or_f, and_f) ->
          let len = or_f * and_f in
          let rng = Prng.create (100 + len) in
          let n_roles = max 10 (2 * and_f) in
          let roles, _ = Workload.gen_policies rng
              { Workload.num_policies = 1; num_roles = n_roles; or_fanin = 1; and_fanin = 1 } in
          let universe = Universe.create roles in
          let sk = keygen_for universe in
          let role_arr = Array.of_list roles in
          (* An exact-length policy: OR of or_f AND-clauses of and_f roles. *)
          let clause () =
            Expr.of_attrs_and
              (List.init and_f (fun i -> role_arr.(i mod Array.length role_arr)))
          in
          let policy = Expr.disj (List.init or_f (fun _ -> clause ())) in
          let record = Record.make ~key:[| 1 |] ~value:"v" ~policy in
          let sigma =
            Abs.sign drbg mvk sk ~msg:(Record.message_of record) ~policy
          in
          let user = Attr.set_of_list roles in
          let (_, verify_t), ops =
            with_ops (fun () ->
                Report.avg_time runs (fun () ->
                    assert (Abs.verify mvk ~msg:(Record.message_of record) ~policy sigma)))
          in
          ignore user;
          Report.emit ~series:"equality_accessible"
            (Json.Obj
               [ ("policy_len", Json.Int len);
                 ("user_verify_ms", Json.Float (verify_t *. 1000.));
                 ("vo_bytes", Json.Int (Abs.size sigma));
                 ("runs", Json.Int runs);
                 ("ops", ops) ]);
          [ string_of_int len; Report.ms verify_t; Report.kb (Abs.size sigma) ])
        [ (3, 2); (6, 4); (12, 8); (24, 16) ]
    in
    Report.print_table
      ~title:"Table 2a: equality query, accessible record (paper: costs proportional to policy length)"
      ~header:[ "max policy len"; "user CPU (ms)"; "VO size (KB)" ]
      acc_rows;
    (* Inaccessible record: cost grows with the super-policy length. *)
    let inacc_rows =
      List.map
        (fun pred_len ->
          let roles = Universe.roles ~prefix:"R" pred_len in
          let universe = Universe.create roles in
          let sk = keygen_for universe in
          (* User holds one role; the record requires a role the user lacks;
             the super policy has pred_len roles (incl. the pseudo role). *)
          let user = Attr.Set.singleton (List.hd roles) in
          let policy = Expr.leaf (List.nth roles 1) in
          let record = Record.make ~key:[| 1 |] ~value:"v" ~policy in
          let sigma = Abs.sign drbg mvk sk ~msg:(Record.message_of record) ~policy in
          let keep = Universe.missing universe ~user in
          let relaxed = ref None in
          let ((), sp_t), sp_ops =
            with_ops (fun () ->
                Report.avg_time runs (fun () ->
                    relaxed :=
                      Abs.relax drbg mvk sigma ~msg:(Record.message_of record) ~policy
                        ~keep))
          in
          let aps = Option.get !relaxed in
          let super = Abs.relaxed_policy keep in
          let (_, user_t), user_ops =
            with_ops (fun () ->
                Report.avg_time runs (fun () ->
                    assert (Abs.verify mvk ~msg:(Record.message_of record) ~policy:super aps)))
          in
          Report.emit ~series:"equality_inaccessible"
            (Json.Obj
               [ ("predicate_len", Json.Int (Attr.Set.cardinal keep));
                 ("sp_relax_ms", Json.Float (sp_t *. 1000.));
                 ("user_verify_ms", Json.Float (user_t *. 1000.));
                 ("vo_bytes", Json.Int (Abs.size aps));
                 ("runs", Json.Int runs);
                 ("sp_ops", sp_ops);
                 ("user_ops", user_ops) ]);
          [ string_of_int (Attr.Set.cardinal keep); Report.ms sp_t;
            Report.ms user_t; Report.kb (Abs.size aps) ])
        [ 10; 20; 40; 80 ]
    in
    Report.print_table
      ~title:"Table 2b: equality query, inaccessible record (paper: costs proportional to predicate length)"
      ~header:[ "predicate len"; "SP CPU (ms)"; "user CPU (ms)"; "VO size (KB)" ]
      inacc_rows

  (* ------------------------------------------------------------------ *)
  (* Figure 7: range query vs query range size, Basic vs AP2G.            *)

  let fig_range_sweep title fracs inst =
    let flat = Equality.of_ap2g inst.tree in
    let user = user_20pct ~seed:2 inst in
    let rng = Prng.create 4242 in
    let rows =
      List.map
        (fun frac ->
          let query = Workload.range_query rng ~space:inst.space ~frac in
          let ((g_sp, g_u, g_vo, g_rx), (b_sp, b_u, b_vo, b_rx)), ops =
            with_ops (fun () -> run_range inst flat ~user query)
          in
          Report.emit ~series:"range_query"
            (Json.Obj
               [ ("range_frac", Json.Float frac);
                 ( "ap2g",
                   Json.Obj
                     [ ("sp_ms", Json.Float (g_sp *. 1000.));
                       ("user_ms", Json.Float (g_u *. 1000.));
                       ("vo_bytes", Json.Int g_vo);
                       ("relax_calls", Json.Int g_rx) ] );
                 ( "basic",
                   Json.Obj
                     [ ("sp_ms", Json.Float (b_sp *. 1000.));
                       ("user_ms", Json.Float (b_u *. 1000.));
                       ("vo_bytes", Json.Int b_vo);
                       ("relax_calls", Json.Int b_rx) ] );
                 ("ops", ops) ]);
          [ Printf.sprintf "%.2f%%" (frac *. 100.);
            Report.ms g_sp; Report.ms b_sp;
            Report.ms g_u; Report.ms b_u;
            Report.kb g_vo; Report.kb b_vo;
            string_of_int g_rx; string_of_int b_rx ])
        fracs
    in
    Report.print_table ~title
      ~header:
        [ "range"; "SP ap2g (ms)"; "SP basic (ms)"; "user ap2g (ms)";
          "user basic (ms)"; "VO ap2g (KB)"; "VO basic (KB)"; "relax ap2g";
          "relax basic" ]
      rows

  let fig7 { full } =
    let depth = if full then 5 else 4 in
    let inst = make_instance ~seed:7 ~depth ~rows:(if full then 20_000 else 2_000) () in
    fig_range_sweep
      "Figure 7: range query vs query range (paper: AP2G wins everywhere, gap grows with range)"
      [ 0.003; 0.01; 0.03; 0.1; 0.3 ]
      inst

  (* Figure 8: vs database scale, range fixed. *)
  let fig8 { full } =
    let depth = if full then 5 else 4 in
    let rows =
      List.map
        (fun (scale, rows) ->
          let inst = make_instance ~seed:8 ~depth ~rows () in
          let flat = Equality.of_ap2g inst.tree in
          let user = user_20pct ~seed:8 inst in
          let rng = Prng.create 88 in
          let query = Workload.range_query rng ~space:inst.space ~frac:0.05 in
          let (g_sp, g_u, g_vo, _), (b_sp, b_u, b_vo, _) =
            run_range inst flat ~user query
          in
          [ Printf.sprintf "%.1f" scale;
            Report.ms g_sp; Report.ms b_sp; Report.ms g_u; Report.ms b_u;
            Report.kb g_vo; Report.kb b_vo ])
        [ (0.1, 600); (0.3, 1_800); (1.0, 6_000); (3.0, 18_000) ]
    in
    Report.print_table
      ~title:"Figure 8: range query vs database scale (paper: AP2G grows steadily; basic fluctuates)"
      ~header:
        [ "scale"; "SP ap2g (ms)"; "SP basic (ms)"; "user ap2g (ms)";
          "user basic (ms)"; "VO ap2g (KB)"; "VO basic (KB)" ]
      rows

  (* Figure 9: vs number of distinct policies. *)
  let fig9 { full } =
    let depth = if full then 5 else 4 in
    let rows =
      List.map
        (fun num_policies ->
          let cfg = { Workload.default_policies with Workload.num_policies } in
          let inst = make_instance ~policy_cfg:cfg ~seed:9 ~depth ~rows:2_000 () in
          let flat = Equality.of_ap2g inst.tree in
          let user = user_20pct ~seed:9 inst in
          let rng = Prng.create 99 in
          let query = Workload.range_query rng ~space:inst.space ~frac:0.05 in
          let (g_sp, g_u, g_vo, _), (b_sp, b_u, b_vo, _) =
            run_range inst flat ~user query
          in
          [ string_of_int num_policies;
            Report.ms g_sp; Report.ms b_sp; Report.ms g_u; Report.ms b_u;
            Report.kb g_vo; Report.kb b_vo ])
        [ 2; 5; 10; 20; 50 ]
    in
    Report.print_table
      ~title:"Figure 9: range query vs #distinct policies (paper: roughly flat)"
      ~header:
        [ "#policies"; "SP ap2g (ms)"; "SP basic (ms)"; "user ap2g (ms)";
          "user basic (ms)"; "VO ap2g (KB)"; "VO basic (KB)" ]
      rows

  (* Figure 10: vs role-universe size and max policy length. *)
  let fig10 { full } =
    let depth = if full then 5 else 4 in
    let sweep name values mk_cfg =
      let rows =
        List.map
          (fun v ->
            let cfg = mk_cfg v in
            let inst = make_instance ~policy_cfg:cfg ~seed:(10 + v) ~depth ~rows:2_000 () in
            let flat = Equality.of_ap2g inst.tree in
            let user = user_20pct ~seed:(10 + v) inst in
            let rng = Prng.create (1000 + v) in
            let query = Workload.range_query rng ~space:inst.space ~frac:0.05 in
            let (g_sp, g_u, g_vo, _), (b_sp, b_u, b_vo, _) =
              run_range inst flat ~user query
            in
            [ string_of_int v;
              Report.ms g_sp; Report.ms b_sp; Report.ms g_u; Report.ms b_u;
              Report.kb g_vo; Report.kb b_vo ])
          values
      in
      Report.print_table
        ~title:("Figure 10" ^ name)
        ~header:
          [ "value"; "SP ap2g (ms)"; "SP basic (ms)"; "user ap2g (ms)";
            "user basic (ms)"; "VO ap2g (KB)"; "VO basic (KB)" ]
        rows
    in
    sweep "a: vs #roles (paper: larger role space -> higher cost)"
      [ 5; 10; 20; 40 ]
      (fun n -> { Workload.default_policies with Workload.num_roles = n });
    sweep "b: vs max policy length (paper: longer policies -> higher cost)"
      [ 2; 4; 6; 9 ]
      (fun len ->
        let and_fanin = max 1 (len / 3) in
        { Workload.default_policies with Workload.or_fanin = 3; and_fanin })

  (* ------------------------------------------------------------------ *)
  (* Figure 11: join query vs range, Basic vs AP2G.                       *)

  let fig11 { full } =
    let depth = if full then 9 else 7 in
    let rng = Prng.create 11 in
    let roles, policies = Workload.gen_policies rng Workload.default_policies in
    let universe = Universe.create roles in
    let sk = keygen_for universe in
    let space = Keyspace.create ~dims:1 ~depth in
    let side = Keyspace.side space in
    let li, ord =
      Workload.orderkey_tables rng ~space ~lineitem_rows:(side * 2)
        ~order_rows:(side / 2) ~policies
    in
    let r_tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"jr" li in
    let s_tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"js" ord in
    let r_flat = Equality.of_ap2g r_tree in
    let s_flat = Equality.of_ap2g s_tree in
    let user = Workload.user_for_fraction rng ~roles ~policies ~frac:0.2 in
    let rows =
      List.map
        (fun frac ->
          let extent = max 1 (int_of_float (frac *. float_of_int side)) in
          let lo = Prng.int rng (side - extent + 1) in
          let query = Box.of_range ~alpha:[| lo |] ~beta:[| lo + extent - 1 |] in
          let (jvo, jst), _ = Report.time (fun () ->
              Join.join_vo drbg ~mvk ~r:r_tree ~s:s_tree ~user query) in
          let res, j_user = Report.time (fun () ->
              Join.verify ~mvk ~t_universe:universe ~user ~query jvo) in
          (match res with
           | Ok _ -> ()
           | Error e -> failwith ("join verify: " ^ Vo.error_to_string e));
          (* Basic join: an equality proof per key on both tables. *)
          let (vo_r, st_r) = Equality.range_vo drbg ~mvk r_flat ~user query in
          let (vo_s, st_s) = Equality.range_vo drbg ~mvk s_flat ~user query in
          let b_sp = st_r.Ap2g.sp_time +. st_s.Ap2g.sp_time in
          let _, b_user = Report.time (fun () ->
              ignore (Equality.verify_range ~mvk ~t_universe:universe ~user ~query vo_r);
              ignore (Equality.verify_range ~mvk ~t_universe:universe ~user ~query vo_s)) in
          [ Printf.sprintf "%.0f%%" (frac *. 100.);
            Report.ms jst.Join.sp_time; Report.ms b_sp;
            Report.ms j_user; Report.ms b_user;
            Report.kb (Join.size jvo); Report.kb (Vo.size vo_r + Vo.size vo_s) ])
        [ 0.05; 0.1; 0.25; 0.5; 1.0 ]
    in
    Report.print_table
      ~title:"Figure 11: join query vs range (paper: AP2G substantially below basic)"
      ~header:
        [ "range"; "SP ap2g (ms)"; "SP basic (ms)"; "user ap2g (ms)";
          "user basic (ms)"; "VO ap2g (KB)"; "VO basic (KB)" ]
      rows

  (* ------------------------------------------------------------------ *)
  (* Figure 12: hierarchical role assignment.                             *)

  let fig12 { full } =
    let depth = if full then 4 else 3 in
    let rng = Prng.create 12 in
    (* Two-level hierarchy: parents H0, H1; every AND clause gets a random
       hierarchical child role attached, as in the paper's setup. *)
    let base_roles = Universe.roles ~prefix:"Role" 8 in
    let child_roles = [ "H0.a"; "H0.b"; "H1.a"; "H1.b" ] in
    let hierarchy =
      Hierarchy.create
        [ ("H0.a", "H0"); ("H0.b", "H0"); ("H1.a", "H1"); ("H1.b", "H1") ]
    in
    let all_roles = base_roles @ [ "H0"; "H1" ] @ child_roles in
    let universe = Universe.create all_roles in
    let sk = keygen_for universe in
    let base_arr = Array.of_list base_roles in
    let child_arr = Array.of_list child_roles in
    let policies =
      Array.init 10 (fun _ ->
          let clause () =
            Expr.conj
              [ Expr.leaf (Prng.pick rng base_arr); Expr.leaf (Prng.pick rng child_arr) ]
          in
          Expr.disj (List.init (1 + Prng.int rng 3) (fun _ -> clause ())))
    in
    let space = Keyspace.create ~dims:3 ~depth in
    let records = Workload.lineitem_records rng ~space ~rows:4_000 ~policies in
    (* One fixed query and user for both modes, so the only variable is the
       hierarchy. *)
    let shared_query = Workload.range_query rng ~space ~frac:0.2 in
    let run with_hierarchy =
      let hierarchy = if with_hierarchy then Some hierarchy else None in
      let tree =
        Ap2g.build drbg ~mvk ~sk ~space ~universe ?hierarchy ~pseudo_seed:"h" records
      in
      let user = Attr.set_of_list [ List.hd base_roles; "H0.a" ] in
      let query = shared_query in
      let vo, st = Ap2g.range_vo drbg ~mvk tree ~user query in
      let res, user_t =
        Report.time (fun () ->
            Ap2g.verify ~mvk ~t_universe:universe ?hierarchy ~user ~query vo)
      in
      (match res with
       | Ok _ -> ()
       | Error e -> failwith ("fig12 verify: " ^ Vo.error_to_string e));
      let pred_len = Expr.num_leaves (Ap2g.super_policy_for tree ~user) in
      [ (if with_hierarchy then "hierarchical" else "flat");
        string_of_int pred_len; Report.ms st.Ap2g.sp_time; Report.ms user_t;
        Report.kb (Vo.size vo) ]
    in
    Report.print_table
      ~title:"Figure 12: hierarchical role assignment (paper: smaller predicate -> all costs drop)"
      ~header:[ "mode"; "pred len"; "SP (ms)"; "user (ms)"; "VO (KB)" ]
      [ run false; run true ]

  (* ------------------------------------------------------------------ *)
  (* Figure 13: parallel speedup of the ABS.Relax fan-out.                *)

  let fig13 { full } =
    let depth = if full then 5 else 4 in
    let inst = make_instance ~seed:13 ~depth ~rows:2_000 () in
    (* A 20%-access user over the whole space: the tree cannot collapse the
       query into one subtree proof, so hundreds of independent ABS.Relax
       jobs fan out (the Section 8.2 workload). *)
    let user = user_20pct ~seed:13 inst in
    let query = Keyspace.whole inst.space in
    let threads = [ 1; 2; 4; 8; 16 ] in
    let base = ref 0.0 in
    let rows =
      List.map
        (fun t ->
          let (_, st), wall =
            Report.time (fun () ->
                Ap2g.range_vo ~pmap:(Pool.map ~threads:t) drbg ~mvk inst.tree ~user
                  query)
          in
          if t = 1 then base := wall;
          [ string_of_int t; string_of_int st.Ap2g.relax_calls; Report.ms wall;
            Printf.sprintf "%.2fx" (!base /. wall) ])
        threads
    in
    Report.print_table
      ~title:
        (Printf.sprintf
           "Figure 13: parallel ABS.Relax, %d core(s) available (paper: near-linear to the core count, tapering after; on a 1-core host the sweep degenerates to ~1.0x)"
           (Pool.available_cores ()))
      ~header:[ "threads"; "relax jobs"; "SP wall (ms)"; "speedup" ]
      rows

  (* ------------------------------------------------------------------ *)
  (* Figure 14: AP2kd-tree vs AP2G-tree under the relaxed model.          *)

  let fig14 { full } =
    let depth = if full then 4 else 3 in
    let rng = Prng.create 14 in
    let roles, policies = Workload.gen_policies rng Workload.default_policies in
    let universe = Universe.create roles in
    let sk = keygen_for universe in
    let space = Keyspace.create ~dims:2 ~depth in
    let side = Keyspace.side space in
    (* Spatially clustered policies (as in the paper's Figure 6 narrative):
       records in the same quadrant share a policy, so a good split isolates
       whole quadrants. *)
    let records =
      List.concat_map
        (fun x ->
          List.filter_map
            (fun y ->
              if Prng.float rng 1.0 < 0.4 then begin
                let quadrant = (2 * (2 * x / side)) + (2 * y / side) in
                Some
                  (Record.make ~key:[| x; y |]
                     ~value:(Printf.sprintf "r%d-%d" x y)
                     ~policy:policies.(quadrant mod Array.length policies))
              end
              else None)
            (List.init side Fun.id))
        (List.init side Fun.id)
    in
    let g_tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"g" records in
    let kd_tree = Ap2kd.build drbg ~mvk ~sk ~space ~universe records in
    let kd_mid = Ap2kd.build drbg ~mvk ~sk ~space ~universe ~split:`Midpoint records in
    let user =
      Workload.user_for_fraction rng ~roles ~policies ~frac:0.25
    in
    let rows =
      List.map
        (fun frac ->
          let query = Workload.range_query rng ~space ~frac in
          let vo_g, st_g = Ap2g.range_vo drbg ~mvk g_tree ~user query in
          let res_g, u_g = Report.time (fun () ->
              Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo_g) in
          let vo_k, st_k = Ap2kd.range_vo drbg ~mvk kd_tree ~user query in
          let res_k, u_k = Report.time (fun () ->
              Ap2kd.verify ~mvk ~t_universe:universe ~user ~query vo_k) in
          let vo_m, st_m = Ap2kd.range_vo drbg ~mvk kd_mid ~user query in
          let res_m, _ = Report.time (fun () ->
              Ap2kd.verify ~mvk ~t_universe:universe ~user ~query vo_m) in
          (match (res_g, res_k, res_m) with
           | Ok a, Ok b, Ok c ->
             assert (List.length a = List.length b && List.length b = List.length c)
           | _ -> failwith "fig14 verify failed");
          [ Printf.sprintf "%.1f%%" (frac *. 100.);
            Report.ms st_g.Ap2g.sp_time; Report.ms st_k.Ap2kd.sp_time;
            Report.ms st_m.Ap2kd.sp_time;
            Report.ms u_g; Report.ms u_k;
            Report.kb (Vo.size vo_g); Report.kb (Vo.size vo_k); Report.kb (Vo.size vo_m) ])
        [ 0.01; 0.05; 0.1; 0.3 ]
    in
    Report.print_table
      ~title:"Figure 14: AP2kd vs AP2G, relaxed model (paper: kd with clause-objective split wins; midpoint split is the ablation)"
      ~header:
        [ "range"; "SP g (ms)"; "SP kd (ms)"; "SP kd-mid (ms)"; "user g (ms)";
          "user kd (ms)"; "VO g (KB)"; "VO kd (KB)"; "VO kd-mid (KB)" ]
      rows

  (* ------------------------------------------------------------------ *)
  (* Ablation: batched vs one-by-one APS verification (extension).        *)

  let ablation_batch { full } =
    let depth = if full then 5 else 4 in
    let inst = make_instance ~seed:77 ~depth ~rows:2_000 () in
    let user = user_20pct ~seed:77 inst in
    let rng = Prng.create 770 in
    (* ZKQAC_BENCH_BATCH=off|on restricts the run to a single arm so that
       two --json artifacts can be compared arm-against-arm with
       [zkqac bench diff]: the client.verify histogram of each artifact
       then holds only that arm's spans. Default: both arms, one table. *)
    let arm =
      match Sys.getenv_opt "ZKQAC_BENCH_BATCH" with
      | Some "off" -> `Plain
      | Some "on" -> `Batched
      | _ -> `Both
    in
    let rows =
      List.map
        (fun frac ->
          let query = Workload.range_query rng ~space:inst.space ~frac in
          let vo, _ = Ap2g.range_vo drbg ~mvk inst.tree ~user query in
          let aps_count =
            List.length
              (List.filter (function Vo.Accessible _ -> false | _ -> true) vo)
          in
          let plain () =
            Report.time (fun () ->
                Ap2g.verify ~mvk ~t_universe:inst.universe ~user ~query vo)
          in
          let batched () =
            Report.time (fun () ->
                Ap2g.verify ~batch:drbg ~mvk ~t_universe:inst.universe ~user
                  ~query vo)
          in
          let check res =
            match res with
            | Ok r -> List.length r
            | Error _ -> failwith "ablation verify failed"
          in
          let plain_c, batch_c, speedup =
            match arm with
            | `Plain ->
              let res_p, plain_t = plain () in
              ignore (check res_p);
              (Report.ms plain_t, "-", "-")
            | `Batched ->
              let res_b, batch_t = batched () in
              ignore (check res_b);
              ("-", Report.ms batch_t, "-")
            | `Both ->
              let res_p, plain_t = plain () in
              let res_b, batch_t = batched () in
              assert (check res_p = check res_b);
              ( Report.ms plain_t, Report.ms batch_t,
                Printf.sprintf "%.2fx" (plain_t /. batch_t) )
          in
          [ Printf.sprintf "%.1f%%" (frac *. 100.); string_of_int aps_count;
            plain_c; batch_c; speedup ])
        [ 0.01; 0.05; 0.2 ]
    in
    Report.print_table
      ~title:"Ablation: small-exponent batch verification of APS entries (extension beyond the paper)"
      ~header:[ "range"; "APS entries"; "plain (ms)"; "batched (ms)"; "speedup" ]
      rows

  (* ------------------------------------------------------------------ *)
  (* Figure 15: duplicate handling.                                       *)

  let fig15 { full } =
    let depth = if full then 3 else 2 in
    let rng = Prng.create 15 in
    let roles, policies = Workload.gen_policies rng Workload.default_policies in
    let universe = Universe.create roles in
    let sk = keygen_for universe in
    let space = Keyspace.create ~dims:2 ~depth in
    let side = Keyspace.side space in
    (* Records with duplicates: every cell holds 0..3 records with random
       policies. *)
    let records =
      List.concat_map
        (fun x ->
          List.concat_map
            (fun y ->
              List.init (Prng.int rng 4) (fun i ->
                  Record.make ~key:[| x; y |]
                    ~value:(Printf.sprintf "v%d-%d-%d" x y i)
                    ~policy:policies.(Prng.int rng (Array.length policies))))
            (List.init side Fun.id))
        (List.init side Fun.id)
    in
    let user = Workload.user_for_fraction rng ~roles ~policies ~frac:0.2 in
    let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| side - 1; side - 1 |] in
    (* ZK: virtual dimension + ordinary AP2G tree. *)
    let lifted_space, lifted = Dup.lift ~space records in
    let z_tree, z_build =
      Report.time (fun () ->
          Ap2g.build drbg ~mvk ~sk ~space:lifted_space ~universe ~pseudo_seed:"z"
            lifted)
    in
    let z_query = Dup.lift_query ~lifted_space query in
    let vo_z, st_z = Ap2g.range_vo drbg ~mvk z_tree ~user z_query in
    let res_z, u_z = Report.time (fun () ->
        Ap2g.verify ~mvk ~t_universe:universe ~user ~query:z_query vo_z) in
    (* non-ZK: embedded dup counts. *)
    let n_tree, n_build =
      Report.time (fun () ->
          Dup.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"n" records)
    in
    let vo_n, st_n = Dup.range_vo drbg ~mvk n_tree ~user query in
    let res_n, u_n = Report.time (fun () ->
        Dup.verify ~mvk ~t_universe:universe ~user ~query vo_n) in
    (* Basic on the lifted space. *)
    let flat = Equality.of_ap2g z_tree in
    let vo_b, st_b = Equality.range_vo drbg ~mvk flat ~user z_query in
    let res_b, u_b = Report.time (fun () ->
        Equality.verify_range ~mvk ~t_universe:universe ~user ~query:z_query vo_b) in
    (match (res_z, res_n, res_b) with
     | Ok a, Ok b, Ok c ->
       assert (List.length a = List.length c);
       ignore b
     | _ -> failwith "fig15 verify failed");
    let z_stats = Ap2g.stats z_tree in
    Report.print_table
      ~title:"Figure 15: duplicate records (paper: ZK costs <= 3x non-ZK; AP2G about half of basic)"
      ~header:[ "approach"; "build (s)"; "index (MB)"; "SP (ms)"; "user (ms)"; "VO (KB)" ]
      [
        [ "AP2G (ZK, virtual dim)"; Report.s z_build;
          Report.mb (z_stats.Ap2g.structure_bytes + z_stats.Ap2g.signature_bytes);
          Report.ms st_z.Ap2g.sp_time; Report.ms u_z; Report.kb (Vo.size vo_z) ];
        [ "AP2G (non-ZK, embedded)"; Report.s n_build; "-";
          Report.ms st_n.Ap2g.sp_time; Report.ms u_n; Report.kb (Dup.size vo_n) ];
        [ "Basic (ZK)"; Report.s z_build; "-";
          Report.ms st_b.Ap2g.sp_time; Report.ms u_b; Report.kb (Vo.size vo_b) ];
      ]
end
