(* Plain-text table rendering for the experiment harness, plus the
   structured-result sink behind `--json`. *)

module Json = Zkqac_telemetry.Json

(* Experiments push named series of JSON rows here; main drains them into
   the per-experiment record of BENCH.json. Off (a no-op) unless --json. *)
let collecting = ref false

let series_acc : (string * Json.t list ref) list ref = ref []

let emit ~series row =
  if !collecting then begin
    match List.assoc_opt series !series_acc with
    | Some rows -> rows := row :: !rows
    | None -> series_acc := !series_acc @ [ (series, ref [ row ]) ]
  end

let take_series () =
  let out = List.map (fun (n, rows) -> (n, Json.Arr (List.rev !rows))) !series_acc in
  series_acc := [];
  out

let hr width = String.make width '-'

let print_table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let render row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%*s" (List.nth widths c) cell)
         row)
  in
  let total = List.fold_left ( + ) (2 * (cols - 1)) widths in
  Printf.printf "\n%s\n%s\n%s\n%s\n" title (hr total) (render header) (hr total);
  List.iter (fun row -> print_endline (render row)) rows;
  print_endline (hr total)

let ms t = Printf.sprintf "%.1f" (t *. 1000.)
let s t = Printf.sprintf "%.2f" t
let kb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1024.)
let mb bytes = Printf.sprintf "%.2f" (float_of_int bytes /. 1048576.)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Average wall time of [f] over [n] runs (n >= 1). *)
let avg_time n f =
  let acc = ref 0.0 in
  let last = ref None in
  for _ = 1 to n do
    let v, t = time f in
    acc := !acc +. t;
    last := Some v
  done;
  (Option.get !last, !acc /. float_of_int n)

(* --- BENCH.json loading --- *)

(* Schema versions this build knows how to read. Readers hard-fail on
   anything else: silently misreading a future layout as zeros would make
   a regression diff vacuously green. *)
let supported_schemas = [ "zkqac-bench/2"; "zkqac-bench/3" ]

let obj_mem name = function
  | Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let load_bench path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read %s: %s" path e)
  | raw -> (
    match Json.of_string raw with
    | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" path e)
    | Ok j -> (
      match obj_mem "schema" j with
      | Some (Json.Str s) when List.mem s supported_schemas -> Ok j
      | Some (Json.Str s) ->
        Error
          (Printf.sprintf "%s: unsupported schema %S (this build reads: %s)"
             path s
             (String.concat ", " supported_schemas))
      | Some _ -> Error (Printf.sprintf "%s: \"schema\" is not a string" path)
      | None -> Error (Printf.sprintf "%s: missing \"schema\" field" path)))

(* Dropped spans silently truncate traces and undercount histograms — any
   report built on them must say so, loudly. *)
let warn_dropped_spans () =
  let d = Zkqac_telemetry.Trace.dropped () in
  if d > 0 then
    Printf.eprintf
      "WARNING: %d trace span(s) dropped (trace capacity reached).\n\
      \         Per-stage histograms, allocation attribution and trace files\n\
      \         undercount this run; raise the capacity or trace fewer \
       experiments.\n\
       %!"
      d

(* Per-stage latency percentiles from the histogram registry, fed by every
   span close since the last reset. *)
let print_histograms () =
  let module H = Zkqac_telemetry.Histogram in
  let snap = H.snapshot () in
  if snap <> [] then begin
    let q h p = Printf.sprintf "%.3f" (H.quantile h p /. 1e6) in
    print_table ~title:"per-stage latency percentiles (ms)"
      ~header:[ "stage"; "count"; "mean"; "p50"; "p95"; "p99" ]
      (List.map
         (fun (name, h) ->
           [ name;
             string_of_int (H.count h);
             Printf.sprintf "%.3f" (H.mean_ns h /. 1e6);
             q h 0.50; q h 0.95; q h 0.99 ])
         snap)
  end
