(* The benchmark harness: one section per table/figure of the paper's
   evaluation (Section 10 + Appendix E).

   Usage:
     dune exec bench/main.exe                 -- every experiment, smoke sizes
     dune exec bench/main.exe -- table1 fig7  -- selected experiments
     dune exec bench/main.exe -- --full all   -- larger (paper-shaped) sizes
     dune exec bench/main.exe -- --backend typea-tiny fig7
                                              -- real pairing backend *)

module Backend = Zkqac_group.Backend
module Telemetry = Zkqac_telemetry.Telemetry
module Trace = Zkqac_telemetry.Trace
module Histogram = Zkqac_telemetry.Histogram
module Alloc = Zkqac_telemetry.Alloc
module Metrics = Zkqac_telemetry.Metrics
module Flight = Zkqac_telemetry.Flight
module Rte = Zkqac_telemetry.Rte
module Json = Zkqac_telemetry.Json
module Pool = Zkqac_parallel.Pool
module Report = Zkqac_bench.Report

let experiments =
  [ "table1"; "table2"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12";
    "fig13"; "fig14"; "fig15"; "batch"; "micro" ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--full] [--backend %s] [--json PATH] [--trace DIR] [all | %s]...\n"
    (String.concat "|" (List.map Backend.to_string Backend.all))
    (String.concat " | " experiments);
  exit 2

let () =
  (* A crashing experiment should leave its last moments on disk (or at
     least on stderr) before the process dies. *)
  Printexc.set_uncaught_exception_handler (fun e bt ->
    Flight.emergency ~reason:("uncaught:" ^ Printexc.to_string e);
    Printf.eprintf "bench: fatal: %s\n%s%!" (Printexc.to_string e)
      (Printexc.raw_backtrace_to_string bt);
    exit 125);
  let args = List.tl (Array.to_list Sys.argv) in
  let full = ref false in
  let backend = ref Backend.Mock in
  let json_path = ref None in
  let trace_dir = ref None in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      parse rest
    | "--backend" :: b :: rest ->
      (match Backend.of_string b with
       | Some k -> backend := k
       | None -> usage ());
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--trace" :: dir :: rest ->
      trace_dir := Some dir;
      parse rest
    | "all" :: rest ->
      selected := !selected @ experiments;
      parse rest
    | exp :: rest when List.mem exp experiments ->
      selected := !selected @ [ exp ];
      parse rest
    | _ -> usage ()
  in
  parse args;
  let selected = if !selected = [] then experiments else !selected in
  let cfg = { Experiments.full = !full } in
  let backend_mod = Backend.instantiate !backend in
  let module B = (val backend_mod) in
  let module E = Experiments.Make (B) in
  Printf.printf
    "zkqac benchmark harness -- backend: %s, %s sizes\n"
    B.name
    (if !full then "full" else "smoke");
  (match !json_path with
   | None -> ()
   | Some path ->
     (* Fail fast on an unwritable path rather than after the experiments. *)
     (try close_out (open_out path)
      with Sys_error e ->
        Printf.eprintf "cannot write %s: %s\n" path e;
        exit 2);
     Report.collecting := true;
     Telemetry.enable ());
  (match !trace_dir with
   | None -> ()
   | Some dir ->
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
     else if not (Sys.is_directory dir) then begin
       Printf.eprintf "--trace %s: not a directory\n" dir;
       exit 2
     end;
     Trace.enable ());
  (* GC-pause attribution rides along whenever an output consumer exists:
     Perfetto GC tracks for --trace, gc-pause metrics for --json. *)
  if !json_path <> None || !trace_dir <> None then Rte.start ();
  let records = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun exp ->
      let run () =
        match exp with
        | "table1" -> E.table1 cfg
        | "table2" -> E.table2 cfg
        | "fig7" -> E.fig7 cfg
        | "fig8" -> E.fig8 cfg
        | "fig9" -> E.fig9 cfg
        | "fig10" -> E.fig10 cfg
        | "fig11" -> E.fig11 cfg
        | "fig12" -> E.fig12 cfg
        | "fig13" -> E.fig13 cfg
        | "fig14" -> E.fig14 cfg
        | "fig15" -> E.fig15 cfg
        | "batch" -> E.ablation_batch cfg
        | "micro" ->
          Micro.micro
            (backend_mod
             :: (if !backend = Backend.Mock then
                   [ Backend.instantiate Backend.Typea_tiny ]
                 else []))
        | _ -> assert false
      in
      let before = Telemetry.snapshot () in
      let hist_before = Histogram.snapshot () in
      let alloc_before = Alloc.snapshot () in
      let _, t = Report.time run in
      if !json_path <> None then begin
        let cost = Telemetry.diff ~earlier:before ~later:(Telemetry.snapshot ()) in
        let hists =
          Histogram.diff ~earlier:hist_before ~later:(Histogram.snapshot ())
        in
        let allocs =
          Alloc.diff ~earlier:alloc_before ~later:(Alloc.snapshot ())
        in
        let series = Report.take_series () in
        records :=
          Json.Obj
            ([ ("name", Json.Str exp);
               ("wall_s", Json.Float t);
               ("ops", Telemetry.ops_json cost);
               ("spans", Telemetry.spans_json cost) ]
             @ (if hists = [] then []
                else [ ("histograms", Histogram.snapshot_json hists) ])
             @ (if allocs = [] then []
                else [ ("alloc", Alloc.snapshot_json allocs) ])
             @ (if series = [] then [] else [ ("series", Json.Obj series) ]))
          :: !records
      end;
      (match !trace_dir with
       | None -> ()
       | Some dir ->
         (* One Perfetto-loadable trace per experiment; reset so each file
            holds only its own spans. *)
         let path = Filename.concat dir (exp ^ ".trace.json") in
         Trace.write_chrome path;
         Printf.printf "[%s trace: %s, %d span(s)%s]\n%!" exp path
           (Trace.span_count ())
           (if Trace.dropped () > 0 then
              Printf.sprintf ", %d dropped" (Trace.dropped ())
            else "");
         Trace.reset ());
      Printf.printf "[%s done in %.1fs]\n%!" exp t)
    selected;
  Rte.stop ();
  if Telemetry.enabled () || !trace_dir <> None then Report.print_histograms ();
  Report.warn_dropped_spans ();
  Printf.printf "\ntotal: %.1fs\n" (Unix.gettimeofday () -. t0);
  match !json_path with
  | None -> ()
  | Some path ->
    Json.to_file path
      (Json.Obj
         [ ("schema", Json.Str "zkqac-bench/3");
           ("backend", Json.Str (Backend.to_string !backend));
           ("full", Json.Bool !full);
           ("domains", Json.Int (Pool.size ()));
           ("total_wall_s", Json.Float (Unix.gettimeofday () -. t0));
           ("histograms", Histogram.snapshot_json (Histogram.snapshot ()));
           ("alloc", Alloc.snapshot_json (Alloc.snapshot ()));
           ("metrics", Metrics.to_json ());
           ("experiments", Json.Arr (List.rev !records)) ]);
    Printf.printf "wrote %s\n" path
