(* Failure propagation in the domain pool: the first (lowest-index) job
   failure must be reported deterministically, wrapped in Job_failed, even
   when several jobs on different domains fail. *)

module Pool = Zkqac_parallel.Pool

let expect_failure name expected f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Job_failed" name
  | exception Pool.Job_failed (Failure msg) ->
    Alcotest.(check string) name expected msg
  | exception e ->
    Alcotest.failf "%s: expected Job_failed (Failure _), got %s" name
      (Printexc.to_string e)

let ok v () = v
let fail msg () = failwith msg

let test_single_failure () =
  (* The original exception is preserved inside Job_failed. *)
  expect_failure "inline single" "solo" (fun () ->
      Pool.map ~threads:1 [ ok 1; fail "solo"; ok 3 ]);
  expect_failure "parallel single" "solo" (fun () ->
      Pool.map ~threads:2 [ ok 1; fail "solo"; ok 3; ok 4 ])

let test_multi_failure_deterministic () =
  (* Two failing jobs land on different domains (static block partition of
     4 jobs over 2 domains puts job 1 on domain 0 and job 3 on domain 1).
     The lowest job index must win every time, regardless of which domain
     finishes first. *)
  for _ = 1 to 50 do
    expect_failure "two failures, two domains" "boom-1" (fun () ->
        Pool.map ~threads:2 [ ok 0; fail "boom-1"; ok 2; fail "boom-3" ])
  done;
  (* Same with every job failing, across more domains. *)
  for _ = 1 to 20 do
    expect_failure "all failing" "boom-0" (fun () ->
        Pool.map ~threads:4
          (List.init 8 (fun i -> fail (Printf.sprintf "boom-%d" i))))
  done

let test_not_found_is_wrapped () =
  (* A job raising Not_found must surface as Job_failed Not_found, not be
     confused with any internal lookup. *)
  match Pool.map ~threads:2 [ ok 1; (fun () -> raise Not_found); ok 3; ok 4 ] with
  | _ -> Alcotest.fail "expected Job_failed Not_found"
  | exception Pool.Job_failed Not_found -> ()
  | exception e ->
    Alcotest.failf "expected Job_failed Not_found, got %s" (Printexc.to_string e)

let test_success_order () =
  let jobs = List.init 17 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "results in input order"
    (List.init 17 (fun i -> i * i))
    (Pool.map ~threads:4 jobs)

let suite =
  [ ( "pool",
      [ Alcotest.test_case "single failure" `Quick test_single_failure;
        Alcotest.test_case "multi failure deterministic" `Quick
          test_multi_failure_deterministic;
        Alcotest.test_case "Not_found wrapped" `Quick test_not_found_is_wrapped;
        Alcotest.test_case "success order" `Quick test_success_order ] ) ]
