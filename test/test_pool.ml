(* Failure propagation in the domain pool: the first (lowest-index) job
   failure must be reported deterministically, wrapped in Job_failed, even
   when several jobs on different domains fail. *)

module Pool = Zkqac_parallel.Pool

let expect_failure name expected f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Job_failed" name
  | exception Pool.Job_failed (Failure msg) ->
    Alcotest.(check string) name expected msg
  | exception e ->
    Alcotest.failf "%s: expected Job_failed (Failure _), got %s" name
      (Printexc.to_string e)

let ok v () = v
let fail msg () = failwith msg

let test_single_failure () =
  (* The original exception is preserved inside Job_failed. *)
  expect_failure "inline single" "solo" (fun () ->
      Pool.map ~threads:1 [ ok 1; fail "solo"; ok 3 ]);
  expect_failure "parallel single" "solo" (fun () ->
      Pool.map ~threads:2 [ ok 1; fail "solo"; ok 3; ok 4 ])

let test_multi_failure_deterministic () =
  (* Two failing jobs land on different domains (static block partition of
     4 jobs over 2 domains puts job 1 on domain 0 and job 3 on domain 1).
     The lowest job index must win every time, regardless of which domain
     finishes first. *)
  for _ = 1 to 50 do
    expect_failure "two failures, two domains" "boom-1" (fun () ->
        Pool.map ~threads:2 [ ok 0; fail "boom-1"; ok 2; fail "boom-3" ])
  done;
  (* Same with every job failing, across more domains. *)
  for _ = 1 to 20 do
    expect_failure "all failing" "boom-0" (fun () ->
        Pool.map ~threads:4
          (List.init 8 (fun i -> fail (Printf.sprintf "boom-%d" i))))
  done

let test_not_found_is_wrapped () =
  (* A job raising Not_found must surface as Job_failed Not_found, not be
     confused with any internal lookup. *)
  match Pool.map ~threads:2 [ ok 1; (fun () -> raise Not_found); ok 3; ok 4 ] with
  | _ -> Alcotest.fail "expected Job_failed Not_found"
  | exception Pool.Job_failed Not_found -> ()
  | exception e ->
    Alcotest.failf "expected Job_failed Not_found, got %s" (Printexc.to_string e)

let test_success_order () =
  let jobs = List.init 17 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "results in input order"
    (List.init 17 (fun i -> i * i))
    (Pool.map ~threads:4 jobs)

(* --- persistent pool: futures, respawn-on-exception, shutdown --- *)

let test_persistent_basic () =
  let pool = Pool.create ~threads:2 () in
  Alcotest.(check int) "size" 2 (Pool.pool_size pool);
  (match Pool.run pool (fun () -> 21 * 2) with
  | Ok 42 -> ()
  | Ok v -> Alcotest.failf "got %d" v
  | Error (e, _) -> Alcotest.failf "job failed: %s" (Printexc.to_string e));
  Alcotest.(check int) "no respawns" 0 (Pool.respawns pool);
  Pool.shutdown pool

let test_persistent_storm () =
  (* A worker-exception storm across >= 2 domains: every raising job must
     retire its worker (counted), every future must be fulfilled with a
     deterministic result, and the pool must still answer afterwards. *)
  let pool = Pool.create ~threads:3 () in
  let futs =
    List.init 24 (fun i ->
        ( i,
          Pool.submit pool (fun () ->
              if i mod 2 = 1 then failwith (Printf.sprintf "storm-%d" i)
              else i * 10) ))
  in
  List.iter
    (fun (i, fut) ->
      match Pool.await fut with
      | Ok v ->
        if i mod 2 = 1 then Alcotest.failf "job %d should have failed" i;
        Alcotest.(check int) (Printf.sprintf "job %d value" i) (i * 10) v
      | Error (Failure msg, _) ->
        if i mod 2 = 0 then Alcotest.failf "job %d should have succeeded" i;
        Alcotest.(check string)
          (Printf.sprintf "job %d message" i)
          (Printf.sprintf "storm-%d" i)
          msg
      | Error (e, _) ->
        Alcotest.failf "job %d: unexpected %s" i (Printexc.to_string e))
    futs;
  (* The pool survived the storm at full strength. *)
  (match Pool.run pool (fun () -> "alive") with
  | Ok "alive" -> ()
  | _ -> Alcotest.fail "pool dead after storm");
  (* A retirement is counted by the dying worker after it fulfills the
     job's future, so only the post-shutdown count (every domain joined)
     is exact. *)
  Pool.shutdown pool;
  Alcotest.(check int) "one respawn per raising job" 12 (Pool.respawns pool)

let test_persistent_await_timeout () =
  let pool = Pool.create ~threads:1 () in
  let slow = Pool.submit pool (fun () -> Thread.delay 0.4; 7) in
  (match Pool.await_timeout slow 0.02 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected deadline expiry");
  (* The job was not cancelled; it still completes. *)
  (match Pool.await slow with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "slow job lost after timeout");
  Pool.shutdown pool

let test_persistent_shutdown () =
  let pool = Pool.create ~threads:1 () in
  let futs =
    List.init 8 (fun i -> Pool.submit pool (fun () -> Thread.delay 0.005; i))
  in
  Pool.shutdown pool;
  (* Every future submitted before shutdown is fulfilled... *)
  List.iteri
    (fun i fut ->
      match Pool.peek fut with
      | Some (Ok v) -> Alcotest.(check int) "queued job ran" i v
      | Some (Error (e, _)) ->
        Alcotest.failf "queued job failed: %s" (Printexc.to_string e)
      | None -> Alcotest.fail "future unfulfilled after shutdown")
    futs;
  (* ...and later submits are refused, not silently dropped. *)
  (match Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ());
  (* Idempotent. *)
  Pool.shutdown pool

let test_submit_ctx_span () =
  (* A job submitted with the caller's trace context must show up as a
     pool.worker span inside the caller's tree — same root, explicit
     parent link across the domain boundary — carrying the given attrs. *)
  let module Trace = Zkqac_telemetry.Trace in
  Trace.enable ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
  @@ fun () ->
  let pool = Pool.create ~threads:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool)
  @@ fun () ->
  let result =
    Trace.with_span "request.root" (fun root ->
        Pool.await
          (Pool.submit ~ctx:root
             ~attrs:[ ("req_id", Trace.Str "00000000000000ab") ]
             pool
             (fun () -> 6 * 7)))
  in
  (match result with
  | Ok 42 -> ()
  | Ok v -> Alcotest.failf "job returned %d" v
  | Error (e, _) -> Alcotest.failf "job failed: %s" (Printexc.to_string e));
  Trace.disable ();
  let spans = Trace.spans () in
  let root =
    match
      List.filter (fun s -> s.Trace.span_name = "request.root") spans
    with
    | [ r ] -> r
    | l -> Alcotest.failf "expected one request.root, got %d" (List.length l)
  in
  match List.filter (fun s -> s.Trace.span_name = "pool.worker") spans with
  | [ w ] ->
    Alcotest.(check int) "worker's parent is the caller's span"
      root.Trace.span_id w.Trace.span_parent;
    Alcotest.(check int) "worker joins the caller's tree root"
      root.Trace.span_id w.Trace.span_root;
    Alcotest.(check bool) "worker ran on a different domain" true
      (w.Trace.span_tid <> root.Trace.span_tid);
    Alcotest.(check bool) "attrs carried across the boundary" true
      (List.assoc_opt "req_id" w.Trace.span_attrs
      = Some (Trace.Str "00000000000000ab"))
  | l -> Alcotest.failf "expected one pool.worker span, got %d" (List.length l)

let suite =
  [ ( "pool",
      [ Alcotest.test_case "single failure" `Quick test_single_failure;
        Alcotest.test_case "multi failure deterministic" `Quick
          test_multi_failure_deterministic;
        Alcotest.test_case "Not_found wrapped" `Quick test_not_found_is_wrapped;
        Alcotest.test_case "success order" `Quick test_success_order;
        Alcotest.test_case "persistent basic" `Quick test_persistent_basic;
        Alcotest.test_case "persistent exception storm" `Quick
          test_persistent_storm;
        Alcotest.test_case "persistent await timeout" `Quick
          test_persistent_await_timeout;
        Alcotest.test_case "persistent shutdown fulfills queue" `Quick
          test_persistent_shutdown;
        Alcotest.test_case "submit carries trace context" `Quick
          test_submit_ctx_span ] ) ]
