(* Wire-format hardening: u32 range checks, malformed-input rejection, and
   fuzzing of the VO codec. A corrupted VO must decode to None or fail
   verification — never crash, loop, or verify with different records. *)

module Wire = Zkqac_util.Wire
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

module Mock_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Mock_backend)
module Ap2g = Zkqac_core.Ap2g.Make (Mock_backend)
module Vo = Zkqac_core.Vo.Make (Mock_backend)

(* --- u32 range checking --- *)

let roundtrip_u32 v =
  let w = Wire.writer () in
  Wire.u32 w v;
  let r = Wire.reader (Wire.contents w) in
  let v' = Wire.ru32 r in
  Alcotest.(check int) (Printf.sprintf "u32 %#x" v) v v';
  Alcotest.(check bool) "consumed" true (Wire.at_end r)

let test_u32_roundtrip () =
  List.iter roundtrip_u32 [ 0; 1; 0xff; 0x1_0000; 0xffff_ffff ]

let test_u32_out_of_range () =
  let rejects v =
    match Wire.u32 (Wire.writer ()) v with
    | () -> Alcotest.failf "u32 %#x: expected Invalid_argument" v
    | exception Invalid_argument _ -> ()
  in
  rejects (-1);
  rejects 0x1_0000_0000;
  rejects max_int

(* --- malformed reader input --- *)

let test_malformed_reads () =
  let raises_malformed name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Wire.Malformed" name
    | exception Wire.Malformed -> ()
  in
  raises_malformed "ru32 truncated" (fun () -> Wire.ru32 (Wire.reader "\x00\x01"));
  raises_malformed "ru8 empty" (fun () -> Wire.ru8 (Wire.reader ""));
  (* Length prefix claims more bytes than the payload holds. *)
  raises_malformed "rbytes inflated" (fun () ->
      Wire.rbytes (Wire.reader "\x00\x00\x00\x10abc"));
  (* Huge length prefix must not attempt a giant allocation-and-crash. *)
  raises_malformed "rbytes huge" (fun () ->
      Wire.rbytes (Wire.reader "\xff\xff\xff\xffabc"))

(* --- VO codec fuzzing --- *)

let drbg = Drbg.create ~seed:"wire-fuzz"
let msk, mvk = Abs.setup drbg
let universe = Universe.create [ "RoleA"; "RoleB" ]
let sk = Abs.keygen drbg msk (Universe.attrs universe)
let space = Keyspace.create ~dims:2 ~depth:2

let tree =
  let rec_ k v p = Record.make ~key:k ~value:v ~policy:(Expr.of_string p) in
  Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"fuzz"
    [ rec_ [| 0; 0 |] "a" "RoleA";
      rec_ [| 1; 2 |] "b" "RoleA & RoleB";
      rec_ [| 3; 3 |] "c" "RoleB" ]

let user = Attr.set_of_list [ "RoleA" ]
let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 3; 3 |]

let baseline_vo, baseline_records =
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo with
  | Ok records -> (Vo.to_bytes vo, records)
  | Error e -> Alcotest.failf "baseline VO must verify: %s" (Vo.error_to_string e)

let same_records rs =
  List.length rs = List.length baseline_records
  && List.for_all2
       (fun (a : Record.t) (b : Record.t) ->
         a.Record.key = b.Record.key && a.Record.value = b.Record.value)
       rs baseline_records

(* The fuzz property: a mutated byte string either fails to decode, fails
   verification, or (if the mutation landed in ignored padding) verifies to
   exactly the baseline records. Anything else — an exception escaping, or a
   verified answer with different records — is a bug. *)
let check_mutated name bytes =
  match Vo.of_bytes bytes with
  | None -> ()
  | Some vo -> (
    match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo with
    | Error _ -> ()
    | Ok records ->
      if not (same_records records) then
        Alcotest.failf "%s: corrupted VO verified with different records" name)
  | exception e ->
    Alcotest.failf "%s: decode raised %s (must return None)" name
      (Printexc.to_string e)

let test_vo_truncation () =
  let n = String.length baseline_vo in
  (* Every prefix would be slow on a multi-KB VO; stride through them and
     always include the boundary cases. *)
  let stride = max 1 (n / 97) in
  let cut = ref 0 in
  while !cut < n do
    check_mutated
      (Printf.sprintf "truncate@%d" !cut)
      (String.sub baseline_vo 0 !cut);
    cut := !cut + stride
  done;
  check_mutated "truncate@n-1" (String.sub baseline_vo 0 (n - 1))

let test_vo_bitflips () =
  let n = String.length baseline_vo in
  (* Deterministic sample of positions so failures reproduce. *)
  let prng = ref 0x2545F491 in
  let next () =
    prng := (!prng * 1103515245 + 12345) land 0x3FFFFFFF;
    !prng
  in
  for _ = 1 to 120 do
    let pos = next () mod n in
    let bit = next () mod 8 in
    let b = Bytes.of_string baseline_vo in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    check_mutated
      (Printf.sprintf "bitflip@%d.%d" pos bit)
      (Bytes.to_string b)
  done

let test_vo_inflation () =
  (* Trailing garbage after a well-formed VO must be rejected. *)
  check_mutated "append garbage" (baseline_vo ^ "garbage");
  check_mutated "append zeros" (baseline_vo ^ String.make 64 '\x00');
  (* Inflate the leading entry count so the decoder wants more entries than
     the payload provides. *)
  let b = Bytes.of_string baseline_vo in
  Bytes.set b 3 (Char.chr ((Char.code (Bytes.get b 3) + 1) land 0xff));
  check_mutated "inflated count" (Bytes.to_string b)

let test_env_limits () =
  (* ZKQAC_WIRE_MAX_* overrides are validated like ZKQAC_DOMAINS: a valid
     value takes effect, junk and out-of-range values are loud errors, and
     blank/absent falls back to the default. *)
  let with_env value f =
    Unix.putenv "ZKQAC_WIRE_MAX_BYTES" value;
    Fun.protect ~finally:(fun () -> Unix.putenv "ZKQAC_WIRE_MAX_BYTES" "") f
  in
  with_env "4096" (fun () ->
      Alcotest.(check int)
        "valid override" 4096
        (Wire.limits_of_env ()).Wire.max_bytes);
  with_env " 8192 " (fun () ->
      Alcotest.(check int)
        "whitespace trimmed" 8192
        (Wire.limits_of_env ()).Wire.max_bytes);
  with_env "" (fun () ->
      Alcotest.(check int)
        "blank falls back" (1 lsl 30)
        (Wire.limits_of_env ()).Wire.max_bytes);
  List.iter
    (fun bad ->
      with_env bad (fun () ->
          match Wire.limits_of_env () with
          | _ -> Alcotest.failf "accepted ZKQAC_WIRE_MAX_BYTES=%S" bad
          | exception Invalid_argument msg ->
            Alcotest.(check bool)
              (Printf.sprintf "%S names the variable" bad)
              true
              (String.length msg >= 20
              && String.sub msg 0 20 = "ZKQAC_WIRE_MAX_BYTES")))
    [ "banana"; "0"; "-3"; "1.5" ];
  (* The other two knobs share the same validator; spot-check one. *)
  Unix.putenv "ZKQAC_WIRE_MAX_DEPTH" "7";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "ZKQAC_WIRE_MAX_DEPTH" "")
    (fun () ->
      Alcotest.(check int)
        "depth override" 7
        (Wire.limits_of_env ()).Wire.max_depth)

let suite =
  [ ( "wire",
      [ Alcotest.test_case "u32 round-trip" `Quick test_u32_roundtrip;
        Alcotest.test_case "u32 out of range" `Quick test_u32_out_of_range;
        Alcotest.test_case "malformed reads" `Quick test_malformed_reads;
        Alcotest.test_case "vo truncation" `Quick test_vo_truncation;
        Alcotest.test_case "vo bit flips" `Quick test_vo_bitflips;
        Alcotest.test_case "vo inflation" `Quick test_vo_inflation;
        Alcotest.test_case "env limit overrides" `Quick test_env_limits ] ) ]
