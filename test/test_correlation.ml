(* Property tests for the correlation plane's wire contracts: the canonical
   hex id form round-trips, a request id survives the envelope byte-exactly,
   the response footer preserves id + timing split, and version selection is
   exactly the presence of the id (None = byte-identical v1). *)

module Proto = Zkqac_server.Proto
module Box = Zkqac_core.Box
module Wire = Zkqac_util.Wire

let qprop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let gen_req_id =
  (* Any id the client could mint: non-zero (0 is "no id" everywhere). *)
  QCheck2.Gen.(map (function 0L -> 1L | id -> id) int64)

let gen_box =
  QCheck2.Gen.(
    int_range 1 4 >>= fun dims ->
    let corner = array_size (return dims) (int_range 0 1000) in
    map2
      (fun lo ext ->
        Box.make ~lo ~hi:(Array.map2 (fun l e -> l + e) lo ext))
      corner corner)

let gen_roles =
  QCheck2.Gen.(
    map (fun n -> List.init n (Printf.sprintf "role-%d")) (int_range 0 6))

let gen_request =
  QCheck2.Gen.(
    map3
      (fun req_id roles query -> { Proto.req_id; roles; query })
      (option gen_req_id) gen_roles gen_box)

let gen_timing =
  (* Each field independently anywhere in the encodable u32 range. *)
  let field = QCheck2.Gen.int_range 0 Wire.max_u32 in
  QCheck2.Gen.(
    map3
      (fun (queue_us, relax_us) (prove_us, encode_us) total_us ->
        { Proto.queue_us; relax_us; prove_us; encode_us; total_us })
      (pair field field) (pair field field) field)

let prop_hex_roundtrip =
  qprop "req_id_hex round-trips" QCheck2.Gen.int64 (fun id ->
      Proto.req_id_of_hex (Proto.req_id_hex id) = Some id)

let prop_hex_canonical =
  qprop "req_id_hex is 16 lowercase hex digits" QCheck2.Gen.int64 (fun id ->
      let h = Proto.req_id_hex id in
      String.length h = 16
      && String.for_all
           (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
           h)

let prop_request_roundtrip =
  qprop "request envelope round-trips" gen_request (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok d ->
        d.Proto.req_id = r.Proto.req_id
        && d.Proto.roles = r.Proto.roles
        && Box.equal d.Proto.query r.Proto.query
      | Error _ -> false)

let prop_request_version_is_id_presence =
  (* The version split is precisely "does the request carry an id": None
     encodes the v1 magic (old servers keep decoding new id-less clients),
     Some encodes v2 — and the id is never silently dropped or remapped. *)
  qprop "magic selection tracks req_id presence" gen_request (fun r ->
      let frame = Proto.encode_request r in
      (* Wire frames open with a u32 length prefix; the magic follows. *)
      let magic_at m = String.sub frame 4 (String.length m) = m in
      match r.Proto.req_id with
      | None -> magic_at Proto.request_magic_v1
      | Some _ -> magic_at Proto.request_magic)

let prop_footer_roundtrip =
  qprop "response footer round-trips"
    QCheck2.Gen.(triple gen_req_id gen_timing (string_size (int_range 0 64)))
    (fun (f_req_id, f_timing, payload) ->
      let footer = { Proto.f_req_id; f_timing } in
      match Proto.decode_response (Proto.encode_response ~footer (Proto.Vo payload)) with
      | Ok (Proto.Vo p, Some f) ->
        p = payload
        && f.Proto.f_req_id = f_req_id
        && f.Proto.f_timing = f_timing
      | _ -> false)

let prop_footerless_is_v1 =
  qprop "footerless responses decode with no footer"
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun payload ->
      let frame = Proto.encode_response (Proto.Vo payload) in
      String.sub frame 4 (String.length Proto.response_magic_v1)
      = Proto.response_magic_v1
      &&
      match Proto.decode_response frame with
      | Ok (Proto.Vo p, None) -> p = payload
      | _ -> false)

let suite =
  [ ( "correlation",
      [ prop_hex_roundtrip;
        prop_hex_canonical;
        prop_request_roundtrip;
        prop_request_version_is_id_presence;
        prop_footer_roundtrip;
        prop_footerless_is_v1 ] ) ]
