module B = Zkqac_bigint.Bigint
module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

let attrs = Attr.set_of_list

(* --- plain geometry tests --- *)

let test_box_basics () =
  let b = Box.make ~lo:[| 0; 0 |] ~hi:[| 4; 4 |] in
  Alcotest.(check int) "volume" 16 (Box.volume b);
  Alcotest.(check bool) "contains" true (Box.contains_point b [| 3; 3 |]);
  Alcotest.(check bool) "not contains" false (Box.contains_point b [| 4; 0 |]);
  let q = Box.of_range ~alpha:[| 1; 1 |] ~beta:[| 2; 2 |] in
  Alcotest.(check int) "range volume" 4 (Box.volume q);
  Alcotest.(check bool) "intersects" true (Box.intersects b q);
  Alcotest.(check bool) "contains box" true (Box.contains_box b q)

let test_box_cover () =
  let target = Box.make ~lo:[| 0; 0 |] ~hi:[| 4; 2 |] in
  let a = Box.make ~lo:[| 0; 0 |] ~hi:[| 2; 2 |] in
  let b = Box.make ~lo:[| 2; 0 |] ~hi:[| 4; 2 |] in
  Alcotest.(check bool) "tiles" true (Box.covers_exactly target [ a; b ]);
  Alcotest.(check bool) "gap" false (Box.covers_exactly target [ a ]);
  Alcotest.(check bool) "overlap" false (Box.covers_exactly target [ a; b; a ]);
  Alcotest.(check bool) "union allows overlap" true (Box.covers_union target [ a; b; a ]);
  Alcotest.(check bool) "union gap" false (Box.covers_union target [ a ]);
  (* subtract *)
  let rest = Box.subtract target a in
  Alcotest.(check int) "subtract volume" (Box.volume target - Box.volume a)
    (List.fold_left (fun acc p -> acc + Box.volume p) 0 rest)

let test_keyspace () =
  let space = Keyspace.create ~dims:2 ~depth:3 in
  Alcotest.(check int) "side" 8 (Keyspace.side space);
  Alcotest.(check int) "leaves" 64 (Keyspace.num_leaves space);
  let whole = Keyspace.whole space in
  let children = Keyspace.children_boxes space whole in
  Alcotest.(check int) "quad children" 4 (List.length children);
  Alcotest.(check bool) "children tile" true (Box.covers_exactly whole children);
  let unit = Box.of_point [| 3; 5 |] in
  Alcotest.(check bool) "unit" true (Keyspace.is_unit unit);
  Alcotest.(check (list int)) "key of unit" [ 3; 5 ]
    (Array.to_list (Keyspace.key_of_unit unit))

(* --- fixture: a small 2D database with mixed policies --- *)

module Mock_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)

module Make_core_tests (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Zkqac_core.Vo.Make (P)
  module Ap2g = Zkqac_core.Ap2g.Make (P)
  module Ap2kd = Zkqac_core.Ap2kd.Make (P)
  module Equality = Zkqac_core.Equality.Make (P)
  module Join = Zkqac_core.Join.Make (P)
  module System = Zkqac_core.System.Make (P)

  let drbg = Drbg.create ~seed:("core:" ^ P.name)
  let msk, mvk = Abs.setup drbg
  let roles = [ "RoleA"; "RoleB"; "RoleC" ]
  let universe = Universe.create roles
  let sk = Abs.keygen drbg msk (Universe.attrs universe)
  let space = Keyspace.create ~dims:2 ~depth:3

  (* Records scattered over the 8x8 grid with various policies. *)
  let records =
    [
      ([| 1; 1 |], "v11", "RoleA");
      ([| 2; 5 |], "v25", "RoleB");
      ([| 3; 3 |], "v33", "RoleA & RoleB");
      ([| 4; 6 |], "v46", "RoleA | RoleC");
      ([| 5; 2 |], "v52", "RoleC");
      ([| 6; 6 |], "v66", "RoleB | (RoleA & RoleC)");
      ([| 7; 0 |], "v70", "RoleA");
      ([| 0; 7 |], "v07", "RoleB & RoleC");
    ]
    |> List.map (fun (key, value, p) ->
           Record.make ~key ~value ~policy:(Expr.of_string p))

  let tree =
    Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"seed" records

  let users =
    [ attrs [ "RoleA" ]; attrs [ "RoleB" ]; attrs [ "RoleC" ];
      attrs [ "RoleA"; "RoleB" ]; attrs [ "RoleA"; "RoleC" ]; attrs []; ]

  let queries rng n =
    List.init n (fun _ ->
        let x1 = Prng.int rng 8 and y1 = Prng.int rng 8 in
        let x2 = x1 + Prng.int rng (8 - x1) and y2 = y1 + Prng.int rng (8 - y1) in
        Box.of_range ~alpha:[| x1; y1 |] ~beta:[| x2; y2 |])

  let expected_results user query =
    List.filter
      (fun (r : Record.t) ->
        Box.contains_point query r.Record.key && Expr.eval r.Record.policy user)
      records

  let test_tree_build () =
    let stats = Ap2g.stats tree in
    Alcotest.(check int) "leaf signatures = all cells" 64 stats.Ap2g.leaf_signatures;
    (* Complete 4-ary tree over 64 leaves: 16 + 4 + 1 internal nodes. *)
    Alcotest.(check int) "node signatures" 21 stats.Ap2g.node_signatures;
    Alcotest.(check int) "records" 8 (Ap2g.num_records tree)

  let test_range_correct_results () =
    let rng = Prng.create 5 in
    let qs = queries rng 12 in
    List.iter
      (fun user ->
        List.iter
          (fun query ->
            let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
            match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo with
            | Error e -> Alcotest.failf "verify failed: %s" (Vo.error_to_string e)
            | Ok results ->
              let expected = expected_results user query in
              let sort = List.sort (fun (a : Record.t) b -> compare a.Record.key b.Record.key) in
              Alcotest.(check int)
                (Printf.sprintf "result count for %s" (Box.to_string query))
                (List.length expected) (List.length results);
              List.iter2
                (fun (e : Record.t) (g : Record.t) ->
                  Alcotest.(check bool) "same record" true (e.Record.key = g.Record.key && e.Record.value = g.Record.value))
                (sort expected) (sort results))
          qs)
      users

  let test_vo_roundtrip () =
    let user = attrs [ "RoleA" ] in
    let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
    let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
    let bytes = Vo.to_bytes vo in
    (match Vo.of_bytes bytes with
     | None -> Alcotest.fail "VO roundtrip failed"
     | Some vo' ->
       Alcotest.(check int) "entries" (List.length vo) (List.length vo');
       (match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo' with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "decoded VO fails: %s" (Vo.error_to_string e)));
    Alcotest.(check bool) "garbage rejected" true (Vo.of_bytes "junk" = None);
    Alcotest.(check int) "size" (String.length bytes) (Vo.size vo)

  (* Unforgeability (Definition 7.4) case 3: dropping an accessible result
     must be caught by the coverage check. *)
  let test_omission_detected () =
    let user = attrs [ "RoleA" ] in
    let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
    let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
    let dropped =
      List.filter (function Vo.Accessible _ -> false | _ -> true) vo
    in
    (match Ap2g.verify ~mvk ~t_universe:universe ~user ~query dropped with
     | Error Vo.Completeness_gap -> ()
     | Error e -> Alcotest.failf "unexpected error: %s" (Vo.error_to_string e)
     | Ok _ -> Alcotest.fail "omission must be detected")

  (* Definition 7.4 case 1: tampering with a returned value breaks the APP
     signature. *)
  let test_tampered_value_detected () =
    let user = attrs [ "RoleA" ] in
    let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
    let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
    let tampered =
      List.map
        (function
          | Vo.Accessible { region; record; app } ->
            Vo.Accessible
              { region; record = { record with Record.value = record.Record.value ^ "!" }; app }
          | e -> e)
        vo
    in
    (match Ap2g.verify ~mvk ~t_universe:universe ~user ~query tampered with
     | Error (Vo.(Bad_abs_signature _ | Bad_aps_signature _)) -> ()
     | Error e -> Alcotest.failf "unexpected error: %s" (Vo.error_to_string e)
     | Ok _ -> Alcotest.fail "tampering must be detected")

  (* Definition 7.4 case 2: returning an inaccessible record as a result. *)
  let test_inaccessible_returned_detected () =
    let user = attrs [ "RoleA" ] in
    (* RoleC-only record 5,2: craft a VO that claims it accessible, reusing
       the DO's real APP signature for it (the strongest attack). *)
    let query = Box.of_point [| 5; 2 |] in
    let vo_honest, _ = Ap2g.range_vo drbg ~mvk tree ~user:(attrs [ "RoleC" ]) query in
    (match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo_honest with
     | Error (Vo.Policy_not_satisfied _) -> ()
     | Error (Vo.(Bad_abs_signature _ | Bad_aps_signature _)) -> ()
     | Error e -> Alcotest.failf "unexpected error: %s" (Vo.error_to_string e)
     | Ok results ->
       Alcotest.(check bool) "no result leaks" true (results = []))

  (* Zero-knowledge (Definition 7.5): the real VO and the VO built from the
     simulator's database (inaccessible records replaced by pseudo records)
     must be indistinguishable in structure: same entry kinds, same regions,
     same sizes. *)
  let test_zero_knowledge_game () =
    let user = attrs [ "RoleA" ] in
    let simulated_records =
      List.filter (fun (r : Record.t) -> Expr.eval r.Record.policy user) records
    in
    let sim_tree =
      Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"other-seed"
        simulated_records
    in
    let rng = Prng.create 77 in
    List.iter
      (fun query ->
        let vo_real, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
        let vo_sim, _ = Ap2g.range_vo drbg ~mvk sim_tree ~user query in
        let shape vo =
          List.map
            (function
              | Vo.Accessible { region; record; _ } ->
                ("acc", Box.to_string region, record.Record.value)
              | Vo.Inaccessible_leaf { region; _ } -> ("leaf", Box.to_string region, "")
              | Vo.Inaccessible_node { region; _ } -> ("node", Box.to_string region, ""))
            vo
          |> List.sort compare
        in
        Alcotest.(check bool)
          (Printf.sprintf "shape identical for %s" (Box.to_string query))
          true
          (shape vo_real = shape vo_sim))
      (queries rng 10)

  (* Equality queries: all three outcomes of Section 5. *)
  let test_equality () =
    let flat = Equality.of_ap2g tree in
    let user = attrs [ "RoleA" ] in
    (* accessible *)
    let e1 = Equality.query_vo drbg ~mvk flat ~user [| 1; 1 |] in
    (match Equality.verify_equality ~mvk ~t_universe:universe ~user ~key:[| 1; 1 |] e1 with
     | Ok (Equality.Result r) -> Alcotest.(check string) "value" "v11" r.Record.value
     | Ok Equality.Denied -> Alcotest.fail "should be accessible"
     | Error e -> Alcotest.failf "verify: %s" (Vo.error_to_string e));
    (* inaccessible *)
    let e2 = Equality.query_vo drbg ~mvk flat ~user [| 5; 2 |] in
    (match Equality.verify_equality ~mvk ~t_universe:universe ~user ~key:[| 5; 2 |] e2 with
     | Ok Equality.Denied -> ()
     | Ok (Equality.Result _) -> Alcotest.fail "should be denied"
     | Error e -> Alcotest.failf "verify: %s" (Vo.error_to_string e));
    (* non-existent: same outcome as inaccessible *)
    let e3 = Equality.query_vo drbg ~mvk flat ~user [| 0; 0 |] in
    (match Equality.verify_equality ~mvk ~t_universe:universe ~user ~key:[| 0; 0 |] e3 with
     | Ok Equality.Denied -> ()
     | Ok (Equality.Result _) -> Alcotest.fail "should be denied"
     | Error e -> Alcotest.failf "verify: %s" (Vo.error_to_string e))

  (* The Basic baseline returns the same verified results as the tree. *)
  let test_basic_matches_tree () =
    let flat = Equality.of_ap2g tree in
    let rng = Prng.create 11 in
    List.iter
      (fun query ->
        List.iter
          (fun user ->
            let vo_b, _ = Equality.range_vo drbg ~mvk flat ~user query in
            match Equality.verify_range ~mvk ~t_universe:universe ~user ~query vo_b with
            | Error e -> Alcotest.failf "basic verify: %s" (Vo.error_to_string e)
            | Ok results ->
              Alcotest.(check int) "same results as expected"
                (List.length (expected_results user query))
                (List.length results))
          users)
      (queries rng 4)

  (* Basic VO is strictly larger than the tree VO on big inaccessible
     ranges: the headline claim of Figure 7. *)
  let test_tree_beats_basic () =
    let flat = Equality.of_ap2g tree in
    let user = attrs [ "RoleC" ] in
    let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
    let vo_tree, st_tree = Ap2g.range_vo drbg ~mvk tree ~user query in
    let vo_basic, st_basic = Equality.range_vo drbg ~mvk flat ~user query in
    Alcotest.(check bool) "fewer entries" true
      (List.length vo_tree < List.length vo_basic);
    Alcotest.(check bool) "smaller VO" true (Vo.size vo_tree < Vo.size vo_basic);
    Alcotest.(check bool) "fewer relax calls" true
      (st_tree.Ap2g.relax_calls < st_basic.Ap2g.relax_calls)

  (* --- AP2kd tree --- *)

  let kd_tree = Ap2kd.build drbg ~mvk ~sk ~space ~universe records

  let test_kd_range () =
    let rng = Prng.create 21 in
    List.iter
      (fun query ->
        List.iter
          (fun user ->
            let vo, _ = Ap2kd.range_vo drbg ~mvk kd_tree ~user query in
            match Ap2kd.verify ~mvk ~t_universe:universe ~user ~query vo with
            | Error e -> Alcotest.failf "kd verify: %s" (Vo.error_to_string e)
            | Ok results ->
              Alcotest.(check int)
                (Printf.sprintf "kd results for %s" (Box.to_string query))
                (List.length (expected_results user query))
                (List.length results))
          users)
      (queries rng 8)

  let test_kd_fewer_nodes_than_grid () =
    let st = Ap2kd.stats kd_tree in
    let gst = Ap2g.stats tree in
    Alcotest.(check bool) "kd signs fewer leaves" true
      (st.Ap2kd.leaf_signatures + st.Ap2kd.pseudo_regions
       < gst.Ap2g.leaf_signatures);
    Alcotest.(check int) "one leaf per record" (List.length records)
      st.Ap2kd.leaf_signatures

  (* --- join --- *)

  let space1 = Keyspace.create ~dims:1 ~depth:4

  let make_1d specs =
    List.map
      (fun (k, v, p) -> Record.make ~key:[| k |] ~value:v ~policy:(Expr.of_string p))
      specs

  let r_tree =
    Ap2g.build drbg ~mvk ~sk ~space:space1 ~universe ~pseudo_seed:"r"
      (make_1d
         [ (1, "r1", "RoleA"); (3, "r3", "RoleB"); (5, "r5", "RoleA");
           (8, "r8", "RoleC"); (12, "r12", "RoleA & RoleB") ])

  let s_tree =
    Ap2g.build drbg ~mvk ~sk ~space:space1 ~universe ~pseudo_seed:"s"
      (make_1d
         [ (1, "s1", "RoleA"); (5, "s5", "RoleC"); (8, "s8", "RoleC");
           (12, "s12", "RoleA") ])

  let test_join () =
    let check user alpha beta expected_keys =
      let query = Box.of_range ~alpha:[| alpha |] ~beta:[| beta |] in
      let vo, _ = Join.join_vo drbg ~mvk ~r:r_tree ~s:s_tree ~user query in
      match Join.verify ~mvk ~t_universe:universe ~user ~query vo with
      | Error e -> Alcotest.failf "join verify: %s" (Vo.error_to_string e)
      | Ok pairs ->
        let keys =
          List.sort compare (List.map (fun ((r : Record.t), _) -> r.Record.key.(0)) pairs)
        in
        Alcotest.(check (list int))
          (Printf.sprintf "join results [%d,%d]" alpha beta)
          expected_keys keys
    in
    (* RoleA user: R accessible at 1,5,12(needs B too -> no); S accessible at 1,12.
       Pairs where both sides accessible: key 1 (r1,s1) and key 12? r12 needs
       RoleA & RoleB -> no. So just 1. *)
    check (attrs [ "RoleA" ]) 0 15 [ 1 ];
    check (attrs [ "RoleA"; "RoleB" ]) 0 15 [ 1; 12 ];
    check (attrs [ "RoleC" ]) 0 15 [ 8 ];
    check (attrs []) 0 15 [];
    check (attrs [ "RoleA" ]) 2 9 []

  let test_join_omission_detected () =
    let user = attrs [ "RoleA" ] in
    let query = Box.of_range ~alpha:[| 0 |] ~beta:[| 15 |] in
    let vo, _ = Join.join_vo drbg ~mvk ~r:r_tree ~s:s_tree ~user query in
    let dropped = List.filter (function Join.Pair _ -> false | _ -> true) vo in
    (match Join.verify ~mvk ~t_universe:universe ~user ~query dropped with
     | Error Vo.Completeness_gap -> ()
     | Error e -> Alcotest.failf "unexpected: %s" (Vo.error_to_string e)
     | Ok _ -> Alcotest.fail "join omission must be detected")

  (* --- hierarchy end to end --- *)

  let test_hierarchical_tree () =
    let h = Hierarchy.create [ ("RoleA.P", "RoleA"); ("RoleA.S", "RoleA") ] in
    let roles_h = [ "RoleA"; "RoleA.P"; "RoleA.S"; "RoleB" ] in
    let universe_h = Universe.create roles_h in
    let sk_h = Abs.keygen drbg msk (Universe.attrs universe_h) in
    let recs =
      [ Record.make ~key:[| 0; 0 |] ~value:"prof" ~policy:(Expr.of_string "RoleA.P");
        Record.make ~key:[| 3; 3 |] ~value:"any" ~policy:(Expr.of_string "RoleB") ]
    in
    let tree_h =
      Ap2g.build drbg ~mvk ~sk:sk_h ~space ~universe:universe_h ~hierarchy:h
        ~pseudo_seed:"h" recs
    in
    let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
    List.iter
      (fun (user, expected) ->
        let vo, _ = Ap2g.range_vo drbg ~mvk tree_h ~user query in
        match
          Ap2g.verify ~mvk ~t_universe:universe_h ~hierarchy:h ~user ~query vo
        with
        | Error e -> Alcotest.failf "hier verify: %s" (Vo.error_to_string e)
        | Ok results -> Alcotest.(check int) "hier results" expected (List.length results))
      [ (attrs [ "RoleA.P" ], 1); (attrs [ "RoleB" ], 1); (attrs [ "RoleA.S" ], 0) ];
    (* The reduced predicate is smaller than the flat one. *)
    let sp = Ap2g.super_policy_for tree_h ~user:(attrs [ "RoleB" ]) in
    Alcotest.(check bool) "reduced size" true
      (Expr.num_leaves sp < Attr.Set.cardinal (Universe.attrs universe_h))

  (* --- full protocol --- *)

  let test_system_end_to_end () =
    let plain =
      List.map
        (fun (r : Record.t) ->
          { System.key = r.Record.key; content = "secret:" ^ r.Record.value;
            policy = r.Record.policy })
        records
    in
    let owner, server = System.setup ~seed:"e2e" ~space ~roles plain in
    let alice = System.register_user owner (attrs [ "RoleA" ]) in
    let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
    let resp = System.range_query server ~claimed_roles:(attrs [ "RoleA" ]) query in
    (match System.open_and_verify alice ~query resp with
     | Error e -> Alcotest.failf "system verify: %s" e
     | Ok v ->
       (* RoleA accessible: v11, v46 (RoleA|RoleC), v70 -> 3 records. *)
       Alcotest.(check int) "decrypted results" 3 (List.length v.System.results);
       List.iter
         (fun (_, content) ->
           Alcotest.(check bool) "content decrypted" true
             (String.length content > 7 && String.sub content 0 7 = "secret:"))
         v.System.results);
    (* An impostor claiming RoleA without holding it cannot open the
       response. *)
    let mallory = System.register_user owner (attrs [ "RoleC" ]) in
    (match System.open_and_verify mallory ~query resp with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "impostor must not open the response")

  let suite name =
    [
      Alcotest.test_case (name ^ " tree build") `Quick test_tree_build;
      Alcotest.test_case (name ^ " range correct") `Quick test_range_correct_results;
      Alcotest.test_case (name ^ " vo roundtrip") `Quick test_vo_roundtrip;
      Alcotest.test_case (name ^ " omission detected") `Quick test_omission_detected;
      Alcotest.test_case (name ^ " tamper detected") `Quick test_tampered_value_detected;
      Alcotest.test_case (name ^ " inaccessible-as-result detected") `Quick
        test_inaccessible_returned_detected;
      Alcotest.test_case (name ^ " zero-knowledge game") `Quick test_zero_knowledge_game;
      Alcotest.test_case (name ^ " equality outcomes") `Quick test_equality;
      Alcotest.test_case (name ^ " basic matches tree") `Quick test_basic_matches_tree;
      Alcotest.test_case (name ^ " tree beats basic") `Quick test_tree_beats_basic;
      Alcotest.test_case (name ^ " kd range") `Quick test_kd_range;
      Alcotest.test_case (name ^ " kd compactness") `Quick test_kd_fewer_nodes_than_grid;
      Alcotest.test_case (name ^ " join") `Quick test_join;
      Alcotest.test_case (name ^ " join omission detected") `Quick test_join_omission_detected;
      Alcotest.test_case (name ^ " hierarchy end-to-end") `Quick test_hierarchical_tree;
      Alcotest.test_case (name ^ " system end-to-end") `Quick test_system_end_to_end;
    ]
end

module Core_mock = Make_core_tests (Mock_backend)

let suite =
  [
    ( "core-geometry",
      [
        Alcotest.test_case "box basics" `Quick test_box_basics;
        Alcotest.test_case "box cover" `Quick test_box_cover;
        Alcotest.test_case "keyspace" `Quick test_keyspace;
      ] );
    ("core", Core_mock.suite "mock");
  ]
