(* Runtime-events bridge: with the monitor running, a >= 2-domain allocation
   storm must surface minor-GC pauses in all three views — per-domain
   totals (and their Metrics gauges), per-stage attribution, and raw slices
   that the Perfetto export renders as extra "gc" tracks.

   Attribution is asynchronous (the monitor polls the runtime-events ring),
   so the workload repeats until pauses show up or a generous deadline
   passes; the assertions themselves are deterministic once data exists. *)

module Rte = Zkqac_telemetry.Rte
module Trace = Zkqac_telemetry.Trace
module Metrics = Zkqac_telemetry.Metrics
module Json = Zkqac_telemetry.Json
module Pool = Zkqac_parallel.Pool

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Enough short-lived allocation to force several minor collections. *)
let churn () =
  for _ = 1 to 50 do
    let acc = ref [] in
    for i = 1 to 20_000 do
      acc := (i, string_of_int i) :: !acc
    done;
    ignore (Sys.opaque_identity !acc);
    Gc.minor ()
  done

let job () =
  Rte.announce ();
  Trace.with_span "rte.job" ~parent:Trace.none @@ fun _ -> churn ()

let minor_domains () =
  List.length
    (List.filter (fun d -> d.Rte.minor_n > 0) (Rte.domain_snapshot ()))

let test_gc_attribution () =
  Rte.reset ();
  Rte.start ();
  Alcotest.(check bool) "started" true (Rte.started ());
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ();
      Rte.stop ();
      Rte.reset ())
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec drive () =
    ignore (Pool.map ~threads:2 (List.init 2 (fun _ -> job)));
    (* Let the monitor's poll loop catch up with the ring. *)
    Unix.sleepf 0.05;
    if
      (minor_domains () < 2 || Rte.stage_snapshot () = [])
      && Unix.gettimeofday () < deadline
    then drive ()
  in
  drive ();
  (* Per-domain view: both workers took minor pauses. *)
  let doms = Rte.domain_snapshot () in
  Alcotest.(check bool)
    (Printf.sprintf "saw %d domain(s) with minor pauses, want >= 2"
       (minor_domains ()))
    true
    (minor_domains () >= 2);
  List.iter
    (fun (d : Rte.dom_stats) ->
      if d.Rte.minor_n > 0 then begin
        Alcotest.(check bool) "pause total positive" true (d.Rte.minor_s > 0.0);
        Alcotest.(check bool) "max <= total" true
          (d.Rte.minor_max_s <= d.Rte.minor_s +. 1e-12)
      end)
    doms;
  (* Per-stage view: the span around the churn absorbed pause time. *)
  (match List.assoc_opt "rte.job" (Rte.stage_snapshot ()) with
   | None -> Alcotest.fail "rte.job missing from stage snapshot"
   | Some (n, minor_s, _major_s) ->
     Alcotest.(check bool) "stage saw pauses" true (n > 0 && minor_s > 0.0));
  (* Raw slices: bounded, typed, and time-ordered per ring. *)
  let slices = Rte.slices () in
  Alcotest.(check bool) "slices observed" true (slices <> []);
  List.iter
    (fun (s : Rte.slice) ->
      Alcotest.(check bool) "slice kind" true
        (s.Rte.sl_gc = "minor" || s.Rte.sl_gc = "major");
      Alcotest.(check bool) "slice extent" true (s.Rte.sl_t1 >= s.Rte.sl_t0))
    slices;
  (* Perfetto export: GC slices become their own tracks. *)
  let chrome = Json.to_string (Trace.chrome_json ()) in
  Alcotest.(check bool) "gc.minor track event" true
    (contains chrome "gc.minor");
  Alcotest.(check bool) "gc thread metadata" true (contains chrome "\"gc (tid");
  (* Metrics: domain gauges and stage counters both sample. *)
  let text = Metrics.to_prometheus () in
  Alcotest.(check bool) "domain pause metric" true
    (contains text "zkqac_gc_pause_seconds_total{domain=");
  Alcotest.(check bool) "domain pause max metric" true
    (contains text "zkqac_gc_pause_seconds_max{domain=");
  Alcotest.(check bool) "stage pause metric" true
    (contains text "zkqac_stage_gc_pause_seconds_total{stage=\"rte.job\",gc=\"minor\"}")

let test_stopped_is_inert () =
  Rte.reset ();
  Alcotest.(check bool) "not started" false (Rte.started ());
  (* All of these must be safe no-ops without a monitor. *)
  Rte.announce ();
  let mark = Rte.pause_mark () in
  Alcotest.(check bool) "zero mark" true (mark = (0L, 0L));
  Rte.note_stage "inert.stage" mark;
  Alcotest.(check (list (pair string (triple int (float 0.0) (float 0.0)))))
    "no stage rows" []
    (Rte.stage_snapshot ());
  Alcotest.(check int) "no dropped slices" 0 (Rte.slices_dropped ())

let suite =
  [ ( "rte",
      [ Alcotest.test_case "gc pause attribution across domains" `Quick
          test_gc_attribution;
        Alcotest.test_case "inert when stopped" `Quick test_stopped_is_inert ] ) ]
