(* Hash-chained audit log: write/verify round-trip, resumed appends, and —
   the property the chain exists for — an exhaustive single-byte tamper
   sweep: flipping ANY byte of a recorded log must break verification. *)

module Audit = Zkqac_audit.Audit
module Json = Zkqac_telemetry.Json

let temp_log () =
  let p = Filename.temp_file "zkqac-audit" ".log" in
  Sys.remove p;
  p

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let with_sink path f =
  (match Audit.enable ~path with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("enable: " ^ e));
  Fun.protect ~finally:Audit.disable f

let sample_entries =
  [ ("verify", Json.Obj [ ("query", Json.Str "(0,0)-(8,8)"); ("outcome", Json.Str "ok") ]);
    ("verify", Json.Obj [ ("outcome", Json.Str "bad-abs-signature") ]);
    ("attack", Json.Obj [ ("scenario", Json.Str "gt-subgroup"); ("n", Json.Int 3) ]);
    ("attack", Json.Obj [ ("detail", Json.Str "quote \" slash \\ done") ]);
    ("attack-summary", Json.Obj [ ("cells", Json.Int 80) ]) ]

let record_all () =
  List.iteri
    (fun i (kind, body) -> Audit.record ~time:(1000.0 +. float_of_int i) ~kind body)
    sample_entries

let test_roundtrip () =
  let path = temp_log () in
  with_sink path (fun () ->
      Alcotest.(check bool) "enabled" true (Audit.enabled ());
      Alcotest.(check (option string)) "path" (Some path) (Audit.path ());
      record_all ());
  Alcotest.(check bool) "disabled after" false (Audit.enabled ());
  match Audit.verify_file path with
  | Error b -> Alcotest.fail (Printf.sprintf "broken at %d: %s" b.Audit.entry b.Audit.reason)
  | Ok entries ->
    Alcotest.(check int) "entry count" (List.length sample_entries)
      (List.length entries);
    List.iteri
      (fun i (e : Audit.entry) ->
        Alcotest.(check int) "seq" i e.Audit.seq;
        Alcotest.(check string) "kind" (fst (List.nth sample_entries i)) e.Audit.kind;
        Alcotest.(check int) "hash length" 64 (String.length e.Audit.hash))
      entries

(* Re-enabling an existing log resumes the chain from its tail: the combined
   file still verifies as one unbroken chain. *)
let test_resume_append () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  with_sink path (fun () ->
      Audit.record ~time:2000.0 ~kind:"verify"
        (Json.Obj [ ("outcome", Json.Str "second-session") ]));
  (match Audit.verify_file path with
   | Error b -> Alcotest.fail (Printf.sprintf "broken at %d: %s" b.Audit.entry b.Audit.reason)
   | Ok entries ->
     Alcotest.(check int) "combined count" (List.length sample_entries + 1)
       (List.length entries);
     let last = List.nth entries (List.length entries - 1) in
     Alcotest.(check int) "resumed seq" (List.length sample_entries)
       last.Audit.seq)

(* The tamper sweep: for every byte position in the log, flip one bit and
   demand that verification fails. This covers hashes, payload bytes, the
   separator spaces, newlines and the header alike. *)
let test_tamper_sweep () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let original = read_file path in
  let n = String.length original in
  let tampered = temp_log () in
  let survived = ref [] in
  for i = 0 to n - 1 do
    let b = Bytes.of_string original in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    write_file tampered (Bytes.to_string b);
    match Audit.verify_file tampered with
    | Error _ -> ()
    | Ok _ -> survived := i :: !survived
  done;
  Sys.remove tampered;
  Alcotest.(check (list int))
    (Printf.sprintf "every one of %d byte flips detected" n)
    [] (List.rev !survived)

(* A corrupted log must be refused at enable time, not silently extended. *)
let test_enable_refuses_corrupt () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let original = read_file path in
  let b = Bytes.of_string original in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x01));
  write_file path (Bytes.to_string b);
  match Audit.enable ~path with
  | Ok () ->
    Audit.disable ();
    Alcotest.fail "enable accepted a corrupted log"
  | Error _ -> Alcotest.(check bool) "stays disabled" false (Audit.enabled ())

let test_verify_missing_header () =
  let path = temp_log () in
  write_file path "not an audit log\n";
  match Audit.verify_file path with
  | Ok _ -> Alcotest.fail "verified a non-audit file"
  | Error b -> Alcotest.(check int) "blames the header" 0 b.Audit.entry

let suite =
  [ ( "audit",
      [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "resume append" `Quick test_resume_append;
        Alcotest.test_case "single-byte tamper sweep" `Quick test_tamper_sweep;
        Alcotest.test_case "enable refuses corrupt log" `Quick
          test_enable_refuses_corrupt;
        Alcotest.test_case "missing header" `Quick test_verify_missing_header ] ) ]
