(* Hash-chained audit log: write/verify round-trip, resumed appends, and —
   the property the chain exists for — an exhaustive single-byte tamper
   sweep: flipping ANY byte of a recorded log must break verification. *)

module Audit = Zkqac_audit.Audit
module Json = Zkqac_telemetry.Json

let temp_log () =
  let p = Filename.temp_file "zkqac-audit" ".log" in
  Sys.remove p;
  p

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let with_sink path f =
  (match Audit.enable ~path () with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("enable: " ^ e));
  Fun.protect ~finally:Audit.disable f

let sample_entries =
  [ ("verify", Json.Obj [ ("query", Json.Str "(0,0)-(8,8)"); ("outcome", Json.Str "ok") ]);
    ("verify", Json.Obj [ ("outcome", Json.Str "bad-abs-signature") ]);
    ("attack", Json.Obj [ ("scenario", Json.Str "gt-subgroup"); ("n", Json.Int 3) ]);
    ("attack", Json.Obj [ ("detail", Json.Str "quote \" slash \\ done") ]);
    ("attack-summary", Json.Obj [ ("cells", Json.Int 80) ]) ]

let record_all () =
  List.iteri
    (fun i (kind, body) -> Audit.record ~time:(1000.0 +. float_of_int i) ~kind body)
    sample_entries

let test_roundtrip () =
  let path = temp_log () in
  with_sink path (fun () ->
      Alcotest.(check bool) "enabled" true (Audit.enabled ());
      Alcotest.(check (option string)) "path" (Some path) (Audit.path ());
      record_all ());
  Alcotest.(check bool) "disabled after" false (Audit.enabled ());
  match Audit.verify_file path with
  | Error b -> Alcotest.fail (Printf.sprintf "broken at %d: %s" b.Audit.entry b.Audit.reason)
  | Ok entries ->
    Alcotest.(check int) "entry count" (List.length sample_entries)
      (List.length entries);
    List.iteri
      (fun i (e : Audit.entry) ->
        Alcotest.(check int) "seq" i e.Audit.seq;
        Alcotest.(check string) "kind" (fst (List.nth sample_entries i)) e.Audit.kind;
        Alcotest.(check int) "hash length" 64 (String.length e.Audit.hash))
      entries

(* Re-enabling an existing log resumes the chain from its tail: the combined
   file still verifies as one unbroken chain. *)
let test_resume_append () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  with_sink path (fun () ->
      Audit.record ~time:2000.0 ~kind:"verify"
        (Json.Obj [ ("outcome", Json.Str "second-session") ]));
  (match Audit.verify_file path with
   | Error b -> Alcotest.fail (Printf.sprintf "broken at %d: %s" b.Audit.entry b.Audit.reason)
   | Ok entries ->
     Alcotest.(check int) "combined count" (List.length sample_entries + 1)
       (List.length entries);
     let last = List.nth entries (List.length entries - 1) in
     Alcotest.(check int) "resumed seq" (List.length sample_entries)
       last.Audit.seq)

(* The tamper sweep: for every byte position in the log, flip one bit and
   demand that verification fails. This covers hashes, payload bytes, the
   separator spaces, newlines and the header alike. *)
let test_tamper_sweep () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let original = read_file path in
  let n = String.length original in
  let tampered = temp_log () in
  let survived = ref [] in
  for i = 0 to n - 1 do
    let b = Bytes.of_string original in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    write_file tampered (Bytes.to_string b);
    match Audit.verify_file tampered with
    | Error _ -> ()
    | Ok _ -> survived := i :: !survived
  done;
  Sys.remove tampered;
  Alcotest.(check (list int))
    (Printf.sprintf "every one of %d byte flips detected" n)
    [] (List.rev !survived)

(* A corrupted log must be refused at enable time, not silently extended. *)
let test_enable_refuses_corrupt () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let original = read_file path in
  let b = Bytes.of_string original in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x01));
  write_file path (Bytes.to_string b);
  match Audit.enable ~path () with
  | Ok () ->
    Audit.disable ();
    Alcotest.fail "enable accepted a corrupted log"
  | Error _ -> Alcotest.(check bool) "stays disabled" false (Audit.enabled ())

let test_verify_missing_header () =
  let path = temp_log () in
  write_file path "not an audit log\n";
  match Audit.verify_file path with
  | Ok _ -> Alcotest.fail "verified a non-audit file"
  | Error b -> Alcotest.(check int) "blames the header" 0 b.Audit.entry

(* --- crash recovery (Audit.recover) --- *)

(* A crash mid-append leaves a prefix of the final line with no newline:
   recover must drop exactly that line, nothing else, and the repaired log
   must verify. *)
let test_recover_truncates_torn_tail () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let original = read_file path in
  (* Tear the final line: keep everything up to its midpoint. *)
  let last_nl = String.rindex_from original (String.length original - 2) '\n' in
  let tail_len = String.length original - last_nl - 1 in
  let torn = String.sub original 0 (last_nl + 1 + (tail_len / 2)) in
  write_file path torn;
  (match Audit.recover ~path with
  | Error b -> Alcotest.failf "refused torn tail at %d: %s" b.Audit.entry b.Audit.reason
  | Ok { Audit.kept; dropped } ->
    Alcotest.(check int) "kept all complete entries" (List.length sample_entries - 1) kept;
    Alcotest.(check bool) "reports the dropped line" true (dropped <> None));
  match Audit.verify_file path with
  | Error b -> Alcotest.failf "repaired log broken at %d: %s" b.Audit.entry b.Audit.reason
  | Ok entries ->
    Alcotest.(check int) "one entry dropped" (List.length sample_entries - 1)
      (List.length entries)

(* A final line that is complete and valid but lost only its newline is not
   dropped: recover re-terminates it. *)
let test_recover_reappends_missing_newline () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let original = read_file path in
  write_file path (String.sub original 0 (String.length original - 1));
  (match Audit.recover ~path with
  | Error b -> Alcotest.failf "refused at %d: %s" b.Audit.entry b.Audit.reason
  | Ok { Audit.kept; dropped } ->
    Alcotest.(check int) "kept everything" (List.length sample_entries) kept;
    Alcotest.(check (option string)) "nothing dropped" None dropped);
  match Audit.verify_file path with
  | Error b -> Alcotest.failf "broken at %d: %s" b.Audit.entry b.Audit.reason
  | Ok entries ->
    Alcotest.(check int) "all entries survive" (List.length sample_entries)
      (List.length entries)

(* Damage before the final line is tampering, not a crash artifact: recover
   must refuse, naming the broken entry like verify_file does. *)
let test_recover_refuses_midlog_damage () =
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let original = read_file path in
  let b = Bytes.of_string original in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x01));
  write_file path (Bytes.to_string b);
  match Audit.recover ~path with
  | Ok _ -> Alcotest.fail "repaired mid-log damage"
  | Error _ ->
    (* The file must be untouched by the refused repair. *)
    Alcotest.(check string) "log untouched" (Bytes.to_string b) (read_file path)

let test_recover_missing_file () =
  let path = temp_log () in
  match Audit.recover ~path with
  | Ok { Audit.kept = 0; dropped = None } -> ()
  | Ok _ -> Alcotest.fail "phantom entries recovered from a missing file"
  | Error b -> Alcotest.failf "refused at %d: %s" b.Audit.entry b.Audit.reason

(* --- durability modes --- *)

let test_durability_parse () =
  let ok s d =
    match Audit.durability_of_string s with
    | Ok got ->
      Alcotest.(check string) s (Audit.durability_to_string d)
        (Audit.durability_to_string got)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "always" Audit.Always;
  ok "never" Audit.Never;
  ok "interval" (Audit.Interval 0.05);
  ok "interval:0.5" (Audit.Interval 0.5);
  (match Audit.durability_of_string "sometimes" with
  | Ok _ -> Alcotest.fail "parsed nonsense durability"
  | Error _ -> ());
  match Audit.durability_of_string "interval:banana" with
  | Ok _ -> Alcotest.fail "parsed non-numeric interval"
  | Error _ -> ()

(* The writer's durability mode lands in each entry's "dur" field, so an
   auditor reading the log offline knows how much a power cut could have
   dropped at each point. *)
let test_dur_field_recorded () =
  let path = temp_log () in
  (match Audit.enable ~durability:Audit.Never ~path () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "mode reported" (Some "never")
    (Option.map Audit.durability_to_string (Audit.durability ()));
  Audit.record ~time:1.0 ~kind:"verify" (Json.Obj []);
  Audit.disable ();
  (match Audit.enable ~durability:(Audit.Interval 0.2) ~path () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Audit.record ~time:2.0 ~kind:"verify" (Json.Obj []);
  Audit.disable ();
  match Audit.verify_file path with
  | Error b -> Alcotest.failf "broken at %d: %s" b.Audit.entry b.Audit.reason
  | Ok entries ->
    Alcotest.(check (list string)) "dur per entry" [ "never"; "interval" ]
      (List.map (fun (e : Audit.entry) -> e.Audit.dur) entries)

(* fsync time spent on the audit log is accounted in a float counter — an
   int-seconds cell would round every call to zero. *)
let test_fsync_metric () =
  let module Metrics = Zkqac_telemetry.Metrics in
  Metrics.reset ();
  let path = temp_log () in
  with_sink path (fun () -> record_all ());
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "fsync seconds exported" true
    (contains (Metrics.to_prometheus ()) "zkqac_audit_fsync_seconds_total");
  Metrics.reset ()

let suite =
  [ ( "audit",
      [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "resume append" `Quick test_resume_append;
        Alcotest.test_case "single-byte tamper sweep" `Quick test_tamper_sweep;
        Alcotest.test_case "enable refuses corrupt log" `Quick
          test_enable_refuses_corrupt;
        Alcotest.test_case "missing header" `Quick test_verify_missing_header;
        Alcotest.test_case "recover truncates torn tail" `Quick
          test_recover_truncates_torn_tail;
        Alcotest.test_case "recover re-appends missing newline" `Quick
          test_recover_reappends_missing_newline;
        Alcotest.test_case "recover refuses mid-log damage" `Quick
          test_recover_refuses_midlog_damage;
        Alcotest.test_case "recover missing file" `Quick test_recover_missing_file;
        Alcotest.test_case "durability parse" `Quick test_durability_parse;
        Alcotest.test_case "dur field recorded" `Quick test_dur_field_recorded;
        Alcotest.test_case "fsync seconds metric" `Quick test_fsync_metric ] ) ]
