(* The crash-injection harness: a real server in a separate process,
   SIGKILLed at randomized points and restarted, many times.

   Four scenario families (Scenario.crash):

   - crash-mid-checkpoint: ZKQAC_CRASH_POINT=durable-{mid-write,pre-rename,
     post-rename} makes the child SIGKILL itself inside Durable.replace
     while writing an epoch checkpoint;
   - crash-torn-audit: ZKQAC_CRASH_POINT=audit-torn:N makes it die after
     flushing half of its Nth audit line, leaving a torn tail;
   - crash-mid-request: ZKQAC_CRASH_POINT=serve-request:N makes it die
     between decoding a request and answering it;
   - crash-random: the harness SIGKILLs it from outside at a uniformly
     random moment under client load.

   State (the ADS file, its epoch siblings, the audit log) is deliberately
   REUSED across a scenario's iterations: every spawn is a real recovery of
   whatever the previous kill left behind. After every kill the harness
   asserts the recovery invariants in-process — the audit chain repairs to
   a verifying log (at most the final line dropped), and checkpoint-epoch
   selection yields a valid tree — and any client that got [Ok] during the
   kill window holds a VO that verified; faults are typed, never an
   accepted tamper. Each scenario ends with a clean child that serves one
   verified query and drains to exit 0.

   ~200 kills total (4 scenarios x iters); override with ZKQAC_CRASH_ITERS. *)

module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Prng = Zkqac_rng.Prng
module Audit = Zkqac_audit.Audit
module Scenario = Zkqac_adversary.Scenario

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Ads_io = Zkqac_core.Ads_io.Make (Backend)
module Client = Zkqac_server.Client
module Cl = Zkqac_server.Client.Make (Backend)

let iters_per_scenario =
  match Sys.getenv_opt "ZKQAC_CRASH_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 50)
  | None -> 50

(* --- fixture: a small signed database, saved once, copied per scenario --- *)

let fixture =
  lazy
    (let drbg = Drbg.create ~seed:"test-crash" in
     let msk, mvk = Abs.setup drbg in
     let universe = Universe.create [ "RoleA"; "RoleB" ] in
     let sk = Abs.keygen drbg msk (Universe.attrs universe) in
     let space = Keyspace.create ~dims:2 ~depth:2 in
     let records =
       [
         Record.make ~key:[| 0; 1 |] ~value:"a" ~policy:(Expr.of_string "RoleA");
         Record.make ~key:[| 2; 3 |] ~value:"b" ~policy:(Expr.of_string "RoleB");
         Record.make ~key:[| 3; 0 |] ~value:"c"
           ~policy:(Expr.of_string "RoleA & RoleB");
       ]
     in
     let tree =
       Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"crash" records
     in
     let path = Filename.temp_file "zkqac-crash-fixture" ".zkqac" in
     Ads_io.save ~path ~mvk tree;
     (path, mvk, tree))

let whole_box = Box.make ~lo:[| 0; 0 |] ~hi:[| 3; 3 |]
let user_a = Attr.set_of_list [ "RoleA" ]

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- child process management --- *)

(* Built beside this test binary (see test/dune's deps). Resolving against
   the executable works both under `dune runtest` (cwd = build dir) and
   `dune exec` (cwd = workspace root). *)
let child_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "crash_child.exe"

type dirs = { ads : string; port_file : string; audit : string }

let fresh_dirs name =
  let dir = Filename.temp_file ("zkqac-crash-" ^ name) "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let ads = Filename.concat dir "ads.zkqac" in
  let src, _, _ = Lazy.force fixture in
  write_all ads (read_all src);
  {
    ads;
    port_file = Filename.concat dir "port";
    audit = Filename.concat dir "audit.log";
  }

let spawn ?crash_point d =
  if Sys.file_exists d.port_file then Sys.remove d.port_file;
  let env =
    match crash_point with
    | None -> Unix.environment ()
    | Some p ->
      Array.append (Unix.environment ()) [| "ZKQAC_CRASH_POINT=" ^ p |]
  in
  Unix.create_process_env child_exe
    [| child_exe; d.ads; d.port_file; d.audit; "0.02" |]
    env Unix.stdin Unix.stdout Unix.stderr

(* NB: a non-blocking waitpid that learns of the death also reaps it, so a
   later call sees ECHILD — treat both as "dead"; [reap] tolerates the
   already-reaped case the same way. *)
let alive pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false

(* Wait until the child has published its port, or died first (a crash
   point can fire before the listener is up — that is a valid kill too). *)
let await_port d pid =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if Sys.file_exists d.port_file then
      Some (int_of_string (String.trim (read_all d.port_file)))
    else if not (alive pid) then None
    else if Unix.gettimeofday () > deadline then None
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let rec reap pid =
  match Unix.waitpid [] pid with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
  | _, status -> status

(* Block until the self-armed crash point fires; if it never does (the
   randomized count overshot what the run produced), kill from outside so
   the iteration still ends in a SIGKILL. *)
let await_death pid =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if not (alive pid) then ()
    else if Unix.gettimeofday () > deadline then
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ();
  reap pid

(* --- the per-kill invariants --- *)

let client_cfg port =
  {
    Client.default_config with
    Client.host = "127.0.0.1";
    port;
    connect_timeout = 2.0;
    read_deadline = 2.0;
    write_deadline = 2.0;
    retries = 0;
  }

let fixture_mvk =
  lazy
    (let _, mvk, _ = Lazy.force fixture in
     mvk)

let fixture_tree =
  lazy
    (let _, _, tree = Lazy.force fixture in
     tree)

(* One client query against a possibly-dying server. [Ok] means the VO
   verified locally; any transport fault is fine (the server may die under
   us); a typed verification rejection means the crash made the server emit
   bytes that parse as a VO but fail the checks — the one outcome a crash
   must never produce. *)
let query_once port =
  let mvk = Lazy.force fixture_mvk in
  let tree = Lazy.force fixture_tree in
  match
    Cl.query (client_cfg port) ~mvk ~universe:(Ap2g.universe tree)
      ?hierarchy:(Ap2g.hierarchy tree) ~user:user_a ~query:whole_box ()
  with
  | Ok _ -> `Verified
  | Error (Client.Exhausted _) -> `Fault
  | Error (Client.Bad_request m) -> Alcotest.failf "server refused request: %s" m
  | Error (Client.Rejected e) ->
    Alcotest.failf "crashing server produced a VO that FAILED verification: %s"
      (Zkqac_util.Verify_error.to_string e)

let assert_recovers d =
  (* The audit chain must repair: at most the torn final line dropped,
     everything kept verifying. This is the same code path the restarting
     child runs. *)
  let dropped =
    match Audit.recover ~path:d.audit with
    | Ok { Audit.dropped; _ } -> dropped <> None
    | Error b ->
      Alcotest.failf "audit recover refused after kill (entry %d): %s"
        b.Audit.entry b.Audit.reason
  in
  (if Sys.file_exists d.audit then
     match Audit.verify_file d.audit with
     | Ok _ -> ()
     | Error b ->
       Alcotest.failf "audit chain broken after recovery (entry %d): %s"
         b.Audit.entry b.Audit.reason);
  (* Checkpoint-epoch selection must yield a valid tree whatever torn
     siblings the kill left behind. *)
  match Ads_io.load_recover ~path:d.ads with
  | Error e -> Alcotest.failf "checkpoint recovery failed after kill: %s" e
  | Ok r -> (r.Ads_io.r_epoch, dropped)

(* End a scenario with a clean child: recovery must reach a serving state
   that answers one verified query and drains to exit 0. *)
let assert_clean_restart d =
  let pid = spawn d in
  match await_port d pid with
  | None ->
    ignore (reap pid);
    Alcotest.fail "clean restart never published a port"
  | Some port ->
    let rec settled tries =
      match query_once port with
      | `Verified -> ()
      | `Fault when tries > 0 ->
        Thread.delay 0.05;
        settled (tries - 1)
      | `Fault -> Alcotest.fail "clean restart refused to serve"
    in
    settled 20;
    Unix.kill pid Sys.sigterm;
    (match reap pid with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED n -> Alcotest.failf "clean child exited %d" n
    | Unix.WSIGNALED s -> Alcotest.failf "clean child killed by signal %d" s
    | Unix.WSTOPPED s -> Alcotest.failf "clean child stopped by signal %d" s)

(* --- the scenarios --- *)

type driver =
  | Self_kill of (Prng.t -> string)  (** ZKQAC_CRASH_POINT armed in the child *)
  | External_kill  (** harness SIGKILLs at a random moment under load *)

let run_scenario name driver () =
  let d = fresh_dirs name in
  let prng = Prng.create (Hashtbl.hash name) in
  let torn_tails = ref 0 in
  let max_epoch = ref 0 in
  for i = 1 to iters_per_scenario do
    let crash_point =
      match driver with
      | Self_kill pick -> Some (pick prng)
      | External_kill -> None
    in
    let pid = spawn ?crash_point d in
    (match await_port d pid with
    | None ->
      (* Died before the listener was up — a valid early kill. *)
      ignore (reap pid)
    | Some port -> (
      match driver with
      | Self_kill _ ->
        (* Poke it with queries while the armed point counts down; dying
           mid-request must surface as a typed fault, never a rejection. *)
        let rec poke n =
          if n > 0 && alive pid then begin
            ignore (query_once port);
            poke (n - 1)
          end
        in
        poke 10;
        ignore (await_death pid)
      | External_kill ->
        (* Kill from outside at a uniformly random moment under load. *)
        let kill_after = 0.005 +. (float_of_int (Prng.bits prng 6) /. 1000.0) in
        let killer =
          Thread.create
            (fun () ->
              Thread.delay kill_after;
              try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            ()
        in
        let rec poke n =
          if n > 0 && alive pid then begin
            ignore (query_once port);
            poke (n - 1)
          end
        in
        poke 50;
        Thread.join killer;
        ignore (reap pid)));
    let epoch, dropped = assert_recovers d in
    if dropped then incr torn_tails;
    if epoch > !max_epoch then max_epoch := epoch;
    ignore i
  done;
  assert_clean_restart d;
  (* The scenario must have actually exercised its failure mode. *)
  (match name with
  | "crash-torn-audit" ->
    if !torn_tails = 0 then
      Alcotest.fail "no kill ever left a torn audit tail — points not firing"
  | "crash-mid-checkpoint" ->
    if !max_epoch = 0 then
      Alcotest.fail "no checkpoint epoch ever committed across the kills"
  | _ -> ());
  Printf.printf "%s: %d kills, %d torn tails repaired, max epoch %d\n%!" name
    iters_per_scenario !torn_tails !max_epoch

let pick_checkpoint_point prng =
  match Prng.int prng 4 with
  | 0 -> "durable-mid-write"
  | 1 -> "durable-pre-rename"
  | 2 -> "durable-post-rename"
  | _ -> Printf.sprintf "durable-pre-rename:%d" (2 + Prng.int prng 2)

let pick_torn_audit_point prng =
  Printf.sprintf "audit-torn:%d" (1 + Prng.bits prng 2)

let pick_mid_request_point prng =
  Printf.sprintf "serve-request:%d" (1 + Prng.bits prng 2)

let registry_is_complete () =
  let names = List.map (fun s -> s.Scenario.name) Scenario.crash in
  Alcotest.(check (list string))
    "crash scenario registry"
    [
      "crash-mid-checkpoint"; "crash-torn-audit"; "crash-mid-request";
      "crash-random";
    ]
    names;
  List.iter
    (fun n ->
      match Scenario.find n with
      | Some s ->
        Alcotest.(check string)
          "category" "crash"
          (Scenario.category_name s.Scenario.category)
      | None -> Alcotest.failf "Scenario.find %s = None" n)
    names

let suite =
  [
    ( "crash",
      [
        Alcotest.test_case "scenario registry" `Quick registry_is_complete;
        Alcotest.test_case "crash-mid-checkpoint" `Slow
          (run_scenario "crash-mid-checkpoint"
             (Self_kill pick_checkpoint_point));
        Alcotest.test_case "crash-torn-audit" `Slow
          (run_scenario "crash-torn-audit" (Self_kill pick_torn_audit_point));
        Alcotest.test_case "crash-mid-request" `Slow
          (run_scenario "crash-mid-request" (Self_kill pick_mid_request_point));
        Alcotest.test_case "crash-random" `Slow
          (run_scenario "crash-random" External_kill);
      ] );
  ]
