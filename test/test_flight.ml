(* Flight recorder: dump shape, multi-domain ring wraparound under a record
   storm, the dropped-events metric, trip/dump-file behaviour and the
   enable/disable switch. Every test starts and ends with [Flight.reset] so
   the global sequence/drop counters never leak across suites. *)

module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics
module Json = Zkqac_telemetry.Json

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let temp_dir () =
  let d = Filename.temp_file "zkqac-flight" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* The JSON dump is the forensic artifact: its shape (top-level keys,
   event fields, ordering by sequence number) is part of the contract. *)
let test_dump_shape () =
  Flight.reset ();
  Flight.record ~cat:"verdict" ~detail:"ok" ~v:7 "system.open_and_verify";
  Flight.record ~cat:"wire" ~detail:"nesting depth" ~v:96 "wire.limit";
  let j = Flight.to_json ~reason:"unit-test" () in
  (match j with
   | Json.Obj fields ->
     let str k =
       match List.assoc_opt k fields with Some (Json.Str s) -> s | _ -> "?"
     in
     let int k =
       match List.assoc_opt k fields with Some (Json.Int n) -> n | _ -> -1
     in
     Alcotest.(check int) "format tag" 1 (int "flight");
     Alcotest.(check string) "reason" "unit-test" (str "reason");
     Alcotest.(check int) "recorded" 2 (int "recorded");
     Alcotest.(check int) "dropped" 0 (int "dropped");
     Alcotest.(check int) "trips" 0 (int "trips");
     (match List.assoc_opt "events" fields with
      | Some (Json.Arr [ Json.Obj e1; Json.Obj e2 ]) ->
        let get e k = List.assoc_opt k e in
        Alcotest.(check bool) "seq order" true
          (get e1 "seq" = Some (Json.Int 1) && get e2 "seq" = Some (Json.Int 2));
        Alcotest.(check bool) "first event fields" true
          (get e1 "cat" = Some (Json.Str "verdict")
           && get e1 "name" = Some (Json.Str "system.open_and_verify")
           && get e1 "detail" = Some (Json.Str "ok")
           && get e1 "v" = Some (Json.Int 7));
        Alcotest.(check bool) "second event fields" true
          (get e2 "cat" = Some (Json.Str "wire")
           && get e2 "v" = Some (Json.Int 96))
      | _ -> Alcotest.fail "events: expected a 2-element array of objects")
   | _ -> Alcotest.fail "dump is not a JSON object");
  (* The dump also serializes: round-trip through the printer. *)
  (match Json.of_string (Json.to_string j) with
   | Ok _ -> ()
   | Error e -> Alcotest.fail ("dump does not re-parse: " ^ e));
  Flight.reset ()

(* Four domains each overflow their ring by 500 events. Retention is
   per-domain (newest [capacity] events each), the drop counter accounts for
   every overwritten slot, and the merged view stays sequence-sorted. *)
let test_multi_domain_wraparound () =
  Flight.reset ();
  let cap = Flight.capacity () in
  let domains = 4 and extra = 500 in
  let storm () =
    for i = 1 to cap + extra do
      Flight.record ~cat:"storm" ~v:i "storm.event"
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn storm) in
  List.iter Domain.join ds;
  let evs = Flight.events () in
  Alcotest.(check int) "retained = domains * capacity" (domains * cap)
    (List.length evs);
  Alcotest.(check int) "recorded" (domains * (cap + extra)) (Flight.recorded ());
  Alcotest.(check int) "dropped" (domains * extra) (Flight.dropped ());
  let seqs = List.map (fun e -> e.Flight.seq) evs in
  Alcotest.(check bool) "sequence-sorted" true
    (List.for_all2 ( <= ) seqs (List.tl seqs @ [ max_int ]));
  Alcotest.(check bool) "newest event retained" true
    (List.exists (fun s -> s = Flight.recorded ()) seqs);
  (* All four domains contributed to the merged view. *)
  let doms = List.sort_uniq compare (List.map (fun e -> e.Flight.domain) evs) in
  Alcotest.(check int) "distinct domains" domains (List.length doms);
  (* The wraparound shows up on the metrics endpoint. *)
  let text = Metrics.to_prometheus () in
  Alcotest.(check bool) "dropped metric exported" true
    (contains text
       (Printf.sprintf "zkqac_flight_dropped_events_total %d" (domains * extra)));
  Alcotest.(check bool) "events metric exported" true
    (contains text
       (Printf.sprintf "zkqac_flight_events_total %d" (domains * (cap + extra))));
  Flight.reset ()

(* Trips write at most ZKQAC_FLIGHT_MAX_DUMPS dump pairs, each a parseable
   JSON file plus a text rendering that names the trip reason. *)
let test_trip_dumps () =
  Flight.reset ();
  let dir = temp_dir () in
  let saved = Flight.dump_dir () in
  Flight.set_dir (Some dir);
  Fun.protect ~finally:(fun () -> Flight.set_dir saved)
  @@ fun () ->
  Flight.record ~cat:"verdict" ~detail:"bad-abs-signature" "vo.verify";
  for i = 1 to 6 do
    Flight.trip ~reason:(Printf.sprintf "test-trip-%d" i)
  done;
  Alcotest.(check int) "trips counted" 6 (Flight.trips ());
  Alcotest.(check bool) "dump files capped" true (Flight.dumps_written () <= 4);
  Alcotest.(check bool) "at least one dump" true (Flight.dumps_written () >= 1);
  let files = Sys.readdir dir in
  let json_files =
    List.filter
      (fun f -> Filename.check_suffix f ".json")
      (Array.to_list files)
  in
  Alcotest.(check int) "one json per dump" (Flight.dumps_written ())
    (List.length json_files);
  List.iter
    (fun f ->
      let ic = open_in (Filename.concat dir f) in
      let n = in_channel_length ic in
      let body = really_input_string ic n in
      close_in ic;
      match Json.of_string body with
      | Ok (Json.Obj fields) ->
        Alcotest.(check bool)
          (f ^ " carries a reason") true
          (match List.assoc_opt "reason" fields with
           | Some (Json.Str r) -> contains r "test-trip-"
           | _ -> false)
      | Ok _ -> Alcotest.fail (f ^ ": expected a JSON object")
      | Error e -> Alcotest.fail (f ^ ": " ^ e))
    json_files;
  Flight.reset ()

(* Request-scoped events carry the correlation id into both dump formats;
   events without one stay exactly as before (no "req_id" key at all). *)
let test_req_id_field () =
  Flight.reset ();
  Flight.record ~cat:"serve" ~req_id:0x00c0ffee00c0ffeeL ~detail:"ok"
    "server.request";
  Flight.record ~cat:"serve" ~detail:"ok" "server.request";
  (match Flight.to_json ~reason:"unit-test" () with
   | Json.Obj fields ->
     (match List.assoc_opt "events" fields with
      | Some (Json.Arr [ Json.Obj e1; Json.Obj e2 ]) ->
        Alcotest.(check bool) "req_id emitted as 16-hex-digit string" true
          (List.assoc_opt "req_id" e1 = Some (Json.Str "00c0ffee00c0ffee"));
        Alcotest.(check bool) "id-less event has no req_id key" true
          (List.assoc_opt "req_id" e2 = None)
      | _ -> Alcotest.fail "events: expected a 2-element array of objects")
   | _ -> Alcotest.fail "dump is not a JSON object");
  (* The text rendering greps the same way: req=<hex> on tagged lines. *)
  let path = Filename.temp_file "zkqac-flight" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
  @@ fun () ->
  let oc = open_out path in
  Flight.print oc;
  close_out oc;
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Alcotest.(check bool) "text dump carries req=<hex>" true
    (contains text "req=00c0ffee00c0ffee");
  Flight.reset ()

let test_disable () =
  Flight.reset ();
  Flight.disable ();
  Flight.record ~cat:"test" "should.not.appear";
  Alcotest.(check int) "disabled record is a no-op" 0 (Flight.recorded ());
  Alcotest.(check int) "no events retained" 0 (List.length (Flight.events ()));
  Flight.enable ();
  Flight.record ~cat:"test" "appears";
  Alcotest.(check int) "re-enabled record lands" 1 (Flight.recorded ());
  Flight.reset ()

let suite =
  [ ( "flight",
      [ Alcotest.test_case "dump shape" `Quick test_dump_shape;
        Alcotest.test_case "multi-domain wraparound storm" `Quick
          test_multi_domain_wraparound;
        Alcotest.test_case "trip dump files" `Quick test_trip_dumps;
        Alcotest.test_case "req_id in dumps" `Quick test_req_id_field;
        Alcotest.test_case "enable/disable" `Quick test_disable ] ) ]
