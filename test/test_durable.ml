(* Durable.replace under injected syscall faults.

   The atomic-replace protocol claims one invariant above all: the final
   path NEVER holds a partial file — before the rename the old bytes are
   intact, after it the new bytes are complete. Real filesystems cannot
   produce short writes, ENOSPC, or fsync failure on demand, so these tests
   inject them through the syscall shim and check the invariant after every
   fault. The last group is the regression for the original hazard: a
   failing [Ads_io.save] used to leave a truncated checkpoint at the final
   path; now it must leave the old checkpoint byte-identical. *)

module Durable = Zkqac_durable.Durable
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Ads_io = Zkqac_core.Ads_io.Make (Backend)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let in_temp_dir f =
  let dir = Filename.temp_file "zkqac-durable" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  f dir

(* The invariant every fault case asserts: whatever the fault, the final
   path holds either the complete old contents or the complete new ones. *)
let check_intact ~what path ~old_data =
  Alcotest.(check string) (what ^ ": old contents intact") old_data (read_all path)

let no_tmp_left dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         let rec has_sub i =
           i + 4 <= String.length f
           && (String.sub f i 4 = ".tmp" || has_sub (i + 1))
         in
         has_sub 0)
  |> fun leftovers ->
  Alcotest.(check (list string)) "no temp files left behind" [] leftovers

(* --- plain success --- *)

let replace_success () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_all path "old";
      (match Durable.replace ~path "new contents" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Durable.error_to_string e));
      Alcotest.(check string) "replaced" "new contents" (read_all path);
      no_tmp_left dir)

let replace_creates_fresh () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "fresh" in
      (match Durable.replace ~path "born atomic" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Durable.error_to_string e));
      Alcotest.(check string) "created" "born atomic" (read_all path))

(* --- injected faults --- *)

(* Short writes: the kernel may accept any prefix of a write. The loop must
   keep pushing and the final file must still be complete. *)
let short_writes_still_complete () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_all path "old";
      let dribble =
        { Durable.real with Durable.write = (fun fd b off len -> Unix.write fd b off (min 3 len)) }
      in
      (match Durable.with_syscalls dribble (fun () -> Durable.replace ~path "0123456789abcdef") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Durable.error_to_string e));
      Alcotest.(check string) "complete despite short writes" "0123456789abcdef"
        (read_all path))

(* ENOSPC mid-write: the target must keep its old contents and the torn
   temporary must be cleaned up. *)
let enospc_mid_write () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_all path "the old checkpoint";
      let wrote = ref 0 in
      let disk_full =
        {
          Durable.real with
          Durable.write =
            (fun fd b off len ->
              if !wrote >= 4 then raise (Unix.Unix_error (Unix.ENOSPC, "write", ""))
              else begin
                let k = Unix.write fd b off (min 4 len) in
                wrote := !wrote + k;
                k
              end);
        }
      in
      (match
         Durable.with_syscalls disk_full (fun () ->
             Durable.replace ~path "this write will not fit on the disk")
       with
      | Ok () -> Alcotest.fail "ENOSPC write reported success"
      | Error e ->
        Alcotest.(check string) "typed op" "write" e.Durable.op);
      check_intact ~what:"enospc" path ~old_data:"the old checkpoint";
      no_tmp_left dir)

(* fsync failure: data may not be on the platter; the replace must fail and
   leave the old file. *)
let fsync_failure () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_all path "old";
      let bad_fsync =
        {
          Durable.real with
          Durable.fsync = (fun _ -> raise (Unix.Unix_error (Unix.EIO, "fsync", "")));
        }
      in
      (match
         Durable.with_syscalls bad_fsync (fun () -> Durable.replace ~path "new")
       with
      | Ok () -> Alcotest.fail "EIO fsync reported success"
      | Error e -> Alcotest.(check string) "typed op" "fsync" e.Durable.op);
      check_intact ~what:"fsync-eio" path ~old_data:"old";
      no_tmp_left dir)

(* Deferred write error surfacing at close (NFS semantics): must fail. *)
let close_failure_after_fsync () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_all path "old";
      let bad_close =
        {
          Durable.real with
          Durable.close =
            (fun fd ->
              Unix.close fd;
              raise (Unix.Unix_error (Unix.EIO, "close", "")));
        }
      in
      (match
         Durable.with_syscalls bad_close (fun () -> Durable.replace ~path "new")
       with
      | Ok () -> Alcotest.fail "EIO close reported success"
      | Error e -> Alcotest.(check string) "typed op" "close" e.Durable.op);
      check_intact ~what:"close-eio" path ~old_data:"old")

(* Rename failure: both files written, but the swap never happened — old
   contents must win and the temp must be gone. *)
let rename_failure () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_all path "old";
      let bad_rename =
        {
          Durable.real with
          Durable.rename =
            (fun _ _ -> raise (Unix.Unix_error (Unix.EXDEV, "rename", "")));
        }
      in
      (match
         Durable.with_syscalls bad_rename (fun () -> Durable.replace ~path "new")
       with
      | Ok () -> Alcotest.fail "EXDEV rename reported success"
      | Error e -> Alcotest.(check string) "typed op" "rename" e.Durable.op);
      check_intact ~what:"rename-exdev" path ~old_data:"old";
      no_tmp_left dir)

(* A zero-byte write loop would spin forever on a real kernel bug; the loop
   converts it into a typed error instead. *)
let zero_write_is_error () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_all path "old";
      let stuck = { Durable.real with Durable.write = (fun _ _ _ _ -> 0) } in
      (match
         Durable.with_syscalls stuck (fun () -> Durable.replace ~path "new")
       with
      | Ok () -> Alcotest.fail "zero-byte write loop reported success"
      | Error e -> Alcotest.(check string) "typed op" "write" e.Durable.op);
      check_intact ~what:"zero-write" path ~old_data:"old")

(* Property: across randomized fault points (fail the Nth syscall of any
   kind), the final path never holds anything but the complete old or the
   complete new contents. *)
let randomized_fault_points () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      let old_data = "OLD-OLD-OLD-OLD-OLD" in
      let new_data = String.init 100 (fun i -> Char.chr (33 + (i mod 90))) in
      for fail_at = 1 to 12 do
        write_all path old_data;
        let calls = ref 0 in
        let arm name k =
          incr calls;
          if !calls = fail_at then raise (Unix.Unix_error (Unix.EIO, name, ""))
          else k ()
        in
        let flaky =
          {
            Durable.openfile = (fun p f m -> arm "open" (fun () -> Unix.openfile p f m));
            Durable.write =
              (fun fd b off len -> arm "write" (fun () -> Unix.write fd b off (min 7 len)));
            Durable.fsync = (fun fd -> arm "fsync" (fun () -> Unix.fsync fd));
            Durable.close = (fun fd -> arm "close" (fun () -> Unix.close fd));
            Durable.rename = (fun a b -> arm "rename" (fun () -> Unix.rename a b));
            Durable.unlink = (fun p -> arm "unlink" (fun () -> Unix.unlink p));
          }
        in
        let res =
          Durable.with_syscalls flaky (fun () -> Durable.replace ~path new_data)
        in
        let on_disk = read_all path in
        if on_disk <> old_data && on_disk <> new_data then
          Alcotest.failf
            "fault at syscall %d exposed a partial file (%d bytes: %S)" fail_at
            (String.length on_disk)
            (String.sub on_disk 0 (min 20 (String.length on_disk)));
        match res with
        | Ok () ->
          Alcotest.(check string)
            (Printf.sprintf "fault %d: success means new contents" fail_at)
            new_data on_disk
        | Error _ -> ()
      done)

(* --- the Ads_io regression (satellite: partial-checkpoint hazard) --- *)

let small_tree () =
  let drbg = Drbg.create ~seed:"test-durable" in
  let msk, mvk = Abs.setup drbg in
  let universe = Universe.create [ "RoleA" ] in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  let space = Keyspace.create ~dims:1 ~depth:2 in
  let records =
    [ Record.make ~key:[| 1 |] ~value:"v" ~policy:(Expr.of_string "RoleA") ]
  in
  let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"d" records in
  (mvk, tree)

(* A crashing/failing writer must leave the previous checkpoint loadable and
   byte-identical — the exact hazard the old truncate-then-write save had. *)
let failing_save_leaves_old_checkpoint () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "ads.zkqac" in
      let mvk, tree = small_tree () in
      Ads_io.save ~path ~mvk tree;
      let good = read_all path in
      let wrote = ref 0 in
      let disk_full =
        {
          Durable.real with
          Durable.write =
            (fun fd b off len ->
              if !wrote >= 64 then raise (Unix.Unix_error (Unix.ENOSPC, "write", ""))
              else begin
                let k = Unix.write fd b off (min 64 len) in
                wrote := !wrote + k;
                k
              end);
        }
      in
      (match
         Durable.with_syscalls disk_full (fun () ->
             Ads_io.save ~path ~epoch:7 ~mvk tree)
       with
      | exception Sys_error _ -> ()
      | () -> Alcotest.fail "save over a full disk did not raise");
      Alcotest.(check string) "old checkpoint byte-identical" good (read_all path);
      (match Ads_io.load ~path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "old checkpoint no longer loads: %s" e);
      no_tmp_left dir)

(* The recovery paths feed the exposition: epoch gauge and outcome counter. *)
let recovery_metrics_exported () =
  let module Metrics = Zkqac_telemetry.Metrics in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  in_temp_dir (fun dir ->
      Metrics.reset ();
      Zkqac_core.Ads_io.reset_epoch_gauge ();
      let path = Filename.concat dir "ads.zkqac" in
      let mvk, tree = small_tree () in
      Ads_io.save ~path ~mvk tree;
      Ads_io.save_epoch ~path ~mvk ~epoch:5 tree;
      (match Ads_io.load_recover ~path with
      | Ok r -> Alcotest.(check int) "newest epoch wins" 5 r.Ads_io.r_epoch
      | Error e -> Alcotest.failf "load_recover: %s" e);
      let text = Metrics.to_prometheus () in
      Alcotest.(check bool) "epoch gauge exported" true
        (contains text "zkqac_checkpoint_epoch 5");
      Alcotest.(check bool) "recovery outcome counted" true
        (contains text "zkqac_recoveries_total{outcome=\"checkpoint-ok\"} 1");
      Metrics.reset ();
      Zkqac_core.Ads_io.reset_epoch_gauge ())

let successful_save_roundtrips () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "ads.zkqac" in
      let mvk, tree = small_tree () in
      Ads_io.save ~path ~epoch:3 ~mvk tree;
      match Ads_io.load_typed ~path with
      | Ok (_, _, epoch) -> Alcotest.(check int) "epoch stamped" 3 epoch
      | Error (`Io m) -> Alcotest.failf "reload failed: %s" m
      | Error (`Bad e) ->
        Alcotest.failf "reload failed: %s" (Zkqac_util.Verify_error.to_string e))

let suite =
  [
    ( "durable",
      [
        Alcotest.test_case "replace success" `Quick replace_success;
        Alcotest.test_case "replace creates fresh file" `Quick replace_creates_fresh;
        Alcotest.test_case "short writes still complete" `Quick
          short_writes_still_complete;
        Alcotest.test_case "ENOSPC mid-write keeps old file" `Quick enospc_mid_write;
        Alcotest.test_case "fsync failure keeps old file" `Quick fsync_failure;
        Alcotest.test_case "close failure after fsync fails" `Quick
          close_failure_after_fsync;
        Alcotest.test_case "rename failure keeps old file" `Quick rename_failure;
        Alcotest.test_case "zero-byte write is a typed error" `Quick
          zero_write_is_error;
        Alcotest.test_case "randomized fault points never expose a partial file"
          `Quick randomized_fault_points;
        Alcotest.test_case "failing Ads_io.save leaves old checkpoint" `Quick
          failing_save_leaves_old_checkpoint;
        Alcotest.test_case "recovery metrics exported" `Quick
          recovery_metrics_exported;
        Alcotest.test_case "Ads_io.save epoch roundtrips" `Quick
          successful_save_roundtrips;
      ] );
  ]
