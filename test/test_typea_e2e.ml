(* End-to-end protocol smoke tests on the *real* Tate-pairing backend: the
   full mock-backend core suite is exercised at scale elsewhere; here a small
   database goes through ADS generation, range query, relaxation and
   verification with genuine 95-bit-field pairings, validating that nothing
   in the system depends on mock-specific behaviour. *)

module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

let attrs = Attr.set_of_list

module Typea_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Typea_tiny)
module Abs = Zkqac_abs.Abs.Make (Typea_backend)
module Ap2g = Zkqac_core.Ap2g.Make (Typea_backend)
module Vo = Zkqac_core.Vo.Make (Typea_backend)

let drbg = Drbg.create ~seed:"typea-e2e"
let msk, mvk = Abs.setup drbg
let roles = [ "RoleA"; "RoleB" ]
let universe = Universe.create roles
let sk = Abs.keygen drbg msk (Universe.attrs universe)
let space = Keyspace.create ~dims:1 ~depth:2 (* 4 cells: 7 signatures *)

let records =
  [ Record.make ~key:[| 0 |] ~value:"va" ~policy:(Expr.of_string "RoleA");
    Record.make ~key:[| 2 |] ~value:"vb" ~policy:(Expr.of_string "RoleA & RoleB") ]

let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"te" records

let run_query user query =
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  (vo, Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo)

let test_real_pairing_range () =
  let query = Box.of_range ~alpha:[| 0 |] ~beta:[| 3 |] in
  (match run_query (attrs [ "RoleA" ]) query with
   | _, Ok results -> Alcotest.(check int) "RoleA sees 1" 1 (List.length results)
   | _, Error e -> Alcotest.failf "verify: %s" (Vo.error_to_string e));
  (match run_query (attrs [ "RoleA"; "RoleB" ]) query with
   | _, Ok results -> Alcotest.(check int) "RoleA+B sees 2" 2 (List.length results)
   | _, Error e -> Alcotest.failf "verify: %s" (Vo.error_to_string e));
  match run_query (attrs []) query with
  | vo, Ok results ->
    Alcotest.(check int) "no roles sees 0" 0 (List.length results);
    (* Everything collapses into aggregate proofs. *)
    Alcotest.(check bool) "only inaccessibility proofs" true
      (List.for_all (function Vo.Accessible _ -> false | _ -> true) vo)
  | _, Error e -> Alcotest.failf "verify: %s" (Vo.error_to_string e)

let test_real_pairing_tamper () =
  let query = Box.of_range ~alpha:[| 0 |] ~beta:[| 3 |] in
  let user = attrs [ "RoleA" ] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  let tampered =
    List.map
      (function
        | Vo.Accessible { region; record; app } ->
          Vo.Accessible
            { region; record = { record with Record.value = "forged" }; app }
        | e -> e)
      vo
  in
  match Ap2g.verify ~mvk ~t_universe:universe ~user ~query tampered with
  | Error (Vo.(Bad_abs_signature _ | Bad_aps_signature _)) -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Vo.error_to_string e)
  | Ok _ -> Alcotest.fail "tampering must fail on the real pairing too"

let test_real_pairing_batched () =
  let query = Box.of_range ~alpha:[| 0 |] ~beta:[| 3 |] in
  let user = attrs [ "RoleA" ] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  match Ap2g.verify ~batch:drbg ~mvk ~t_universe:universe ~user ~query vo with
  | Ok results -> Alcotest.(check int) "batched on typea" 1 (List.length results)
  | Error e -> Alcotest.failf "batched verify: %s" (Vo.error_to_string e)

let suite =
  [
    ( "typea-e2e",
      [
        Alcotest.test_case "range on real pairing" `Slow test_real_pairing_range;
        Alcotest.test_case "tamper on real pairing" `Slow test_real_pairing_tamper;
        Alcotest.test_case "batched verify on real pairing" `Slow test_real_pairing_batched;
      ] );
  ]
