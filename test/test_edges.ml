(* Edge cases and failure-path coverage: invalid inputs must be rejected
   loudly, degenerate shapes must still verify, and boundary geometry must
   behave. *)

module B = Zkqac_bigint.Bigint
module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Curve = Zkqac_group.Curve
module Fp = Zkqac_group.Fp

let attrs = Attr.set_of_list

module Mock_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Mock_backend)
module Ap2g = Zkqac_core.Ap2g.Make (Mock_backend)
module Join = Zkqac_core.Join.Make (Mock_backend)
module Vo = Zkqac_core.Vo.Make (Mock_backend)
module Cont = Zkqac_core.Continuous.Make (Mock_backend)

let drbg = Drbg.create ~seed:"edges"
let msk, mvk = Abs.setup drbg
let universe = Universe.create [ "RoleA"; "RoleB" ]
let sk = Abs.keygen drbg msk (Universe.attrs universe)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* --- constructor validation --- *)

let test_invalid_inputs () =
  expect_invalid "box inverted" (fun () -> Box.make ~lo:[| 3 |] ~hi:[| 1 |]);
  expect_invalid "box mismatched dims" (fun () -> Box.make ~lo:[| 0; 0 |] ~hi:[| 1 |]);
  expect_invalid "keyspace dims 0" (fun () -> Keyspace.create ~dims:0 ~depth:3);
  expect_invalid "keyspace too large" (fun () -> Keyspace.create ~dims:8 ~depth:10);
  expect_invalid "bad attr" (fun () -> Expr.leaf "a b");
  expect_invalid "empty conj" (fun () -> Expr.conj []);
  expect_invalid "threshold k=0" (fun () -> Expr.threshold 0 [ Expr.leaf "A" ]);
  expect_invalid "threshold k>n" (fun () ->
      Expr.threshold 3 [ Expr.leaf "A"; Expr.leaf "B" ]);
  expect_invalid "universe with pseudo" (fun () -> Universe.create [ Attr.pseudo_role ]);
  expect_invalid "negative scalar mul" (fun () ->
      let params = Lazy.force Zkqac_group.Typea_params.tiny in
      ignore (Curve.mul params.Zkqac_group.Typea_params.fp (B.of_int (-1)) params.Zkqac_group.Typea_params.g))

let space = Keyspace.create ~dims:2 ~depth:2

let test_build_validation () =
  let r k = Record.make ~key:k ~value:"v" ~policy:(Expr.of_string "RoleA") in
  expect_invalid "key outside space" (fun () ->
      Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"x" [ r [| 9; 0 |] ]);
  expect_invalid "duplicate keys" (fun () ->
      Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"x"
        [ r [| 1; 1 |]; r [| 1; 1 |] ]);
  expect_invalid "wrong dims" (fun () ->
      Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"x" [ r [| 1 |] ]);
  expect_invalid "continuous duplicate" (fun () ->
      ignore
        (Cont.build drbg ~mvk ~sk ~universe [ r [| 1 |]; r [| 1 |] ]))

(* --- degenerate queries --- *)

let tree =
  Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"e"
    [ Record.make ~key:[| 0; 0 |] ~value:"corner" ~policy:(Expr.of_string "RoleA") ]

let verify user query vo = Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo

let test_degenerate_queries () =
  (* Single-cell query on the corner record. *)
  let q1 = Box.of_point [| 0; 0 |] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user:(attrs [ "RoleA" ]) q1 in
  (match verify (attrs [ "RoleA" ]) q1 vo with
   | Ok [ r ] -> Alcotest.(check string) "corner" "corner" r.Record.value
   | Ok _ -> Alcotest.fail "expected one result"
   | Error e -> Alcotest.failf "corner: %s" (Vo.error_to_string e));
  (* Whole-space query for a role with nothing: single root-level proof. *)
  let q2 = Keyspace.whole space in
  let vo2, st = Ap2g.range_vo drbg ~mvk tree ~user:(attrs [ "RoleB" ]) q2 in
  Alcotest.(check int) "collapses to one entry" 1 (List.length vo2);
  Alcotest.(check int) "one relaxation" 1 st.Ap2g.relax_calls;
  (match verify (attrs [ "RoleB" ]) q2 vo2 with
   | Ok [] -> ()
   | Ok _ -> Alcotest.fail "no results expected"
   | Error e -> Alcotest.failf "whole: %s" (Vo.error_to_string e));
  (* Empty VO only verifies for an empty query... there is no empty box, so
     an empty VO must fail coverage for any real query. *)
  match verify (attrs [ "RoleA" ]) q1 [] with
  | Error Vo.Completeness_gap -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Vo.error_to_string e)
  | Ok _ -> Alcotest.fail "empty VO must fail"

(* A VO cannot be replayed against a different query box. *)
let test_vo_not_transferable () =
  let q_small = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 1; 1 |] in
  let q_big = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 3; 3 |] in
  let user = attrs [ "RoleA" ] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user q_small in
  (match verify user q_big vo with
   | Error Vo.Completeness_gap -> ()
   | Error e -> Alcotest.failf "unexpected: %s" (Vo.error_to_string e)
   | Ok _ -> Alcotest.fail "small VO must not satisfy big query");
  let vo_big, _ = Ap2g.range_vo drbg ~mvk tree ~user q_big in
  match verify user q_small vo_big with
  | Error Vo.Completeness_gap -> ()
  | Error (Vo.Record_outside_query _) -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Vo.error_to_string e)
  | Ok _ -> Alcotest.fail "big VO must not satisfy small query"

(* A VO for user X must not verify for user Y (APS predicates differ). *)
let test_vo_user_bound () =
  let universe3 = Universe.create [ "RoleA"; "RoleB"; "RoleC" ] in
  let sk3 = Abs.keygen drbg msk (Universe.attrs universe3) in
  let tree3 =
    Ap2g.build drbg ~mvk ~sk:sk3 ~space ~universe:universe3 ~pseudo_seed:"u"
      [ Record.make ~key:[| 2; 2 |] ~value:"x" ~policy:(Expr.of_string "RoleC") ]
  in
  let q = Keyspace.whole space in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree3 ~user:(attrs [ "RoleA" ]) q in
  (* Fine for RoleA... *)
  (match Ap2g.verify ~mvk ~t_universe:universe3 ~user:(attrs [ "RoleA" ]) ~query:q vo with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "own user: %s" (Vo.error_to_string e));
  (* ...but RoleB's super policy differs, so the APS signatures mismatch. *)
  match Ap2g.verify ~mvk ~t_universe:universe3 ~user:(attrs [ "RoleB" ]) ~query:q vo with
  | Error (Vo.(Bad_abs_signature _ | Bad_aps_signature _)) -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Vo.error_to_string e)
  | Ok _ -> Alcotest.fail "another user's VO must not verify"

(* --- curve edge cases (real group) --- *)

let test_curve_edges () =
  let params = Lazy.force Zkqac_group.Typea_params.tiny in
  let fp = params.Zkqac_group.Typea_params.fp in
  let g = params.Zkqac_group.Typea_params.g in
  let r = params.Zkqac_group.Typea_params.r in
  (* Infinity identities. *)
  Alcotest.(check bool) "O + O" true (Curve.is_infinity (Curve.add fp Curve.Infinity Curve.Infinity));
  Alcotest.(check bool) "g + O" true (Curve.equal g (Curve.add fp g Curve.Infinity));
  Alcotest.(check bool) "g - g" true (Curve.is_infinity (Curve.add fp g (Curve.neg fp g)));
  Alcotest.(check bool) "0 * g" true (Curve.is_infinity (Curve.mul fp B.zero g));
  Alcotest.(check bool) "(r-1)g = -g" true
    (Curve.equal (Curve.mul fp (B.sub r B.one) g) (Curve.neg fp g));
  (* Windowed vs naive multiplication agreement on assorted scalars. *)
  let naive k p =
    let acc = ref Curve.Infinity in
    for _ = 1 to k do
      acc := Curve.add fp !acc p
    done;
    !acc
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "mul %d" k)
        true
        (Curve.equal (Curve.mul fp (B.of_int k) g) (naive k g)))
    [ 1; 2; 3; 7; 16; 17; 255; 256; 1000 ]

let test_fp_edges () =
  let p = B.of_int 23 in
  let fp = Fp.create p in
  Alcotest.(check bool) "neg zero" true (B.is_zero (Fp.neg fp B.zero));
  Alcotest.(check bool) "add wraps" true (B.is_zero (Fp.add fp (B.of_int 22) B.one));
  Alcotest.(check bool) "sub wraps" true
    (B.equal (B.of_int 22) (Fp.sub fp B.zero B.one));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Fp.inv fp B.zero));
  (* sqrt of a non-residue is None: 5 is a non-residue mod 23. *)
  Alcotest.(check bool) "non-residue" true (Fp.sqrt fp (B.of_int 5) = None);
  match Fp.sqrt fp (B.of_int 2) with
  | Some r -> Alcotest.(check bool) "sqrt 2 mod 23" true (B.equal (Fp.sqr fp r) (B.of_int 2))
  | None -> Alcotest.fail "2 is a QR mod 23"

(* Tonelli-Shanks branch: p = 1 (mod 4). *)
let test_tonelli_shanks () =
  let p = B.of_int 1000033 in
  Alcotest.(check bool) "p = 1 mod 4" true
    (B.equal (B.erem p (B.of_int 4)) B.one);
  Alcotest.(check bool) "prime" true (Zkqac_numth.Primes.is_probable_prime p);
  let fp = Fp.create p in
  let found = ref 0 in
  for a = 2 to 60 do
    match Fp.sqrt fp (B.of_int a) with
    | Some r ->
      incr found;
      Alcotest.(check bool) "squares back" true (B.equal (Fp.sqr fp r) (B.of_int a))
    | None -> ()
  done;
  Alcotest.(check bool) "roughly half are QRs" true (!found > 20 && !found < 40)

let suite =
  [
    ( "edges",
      [
        Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
        Alcotest.test_case "build validation" `Quick test_build_validation;
        Alcotest.test_case "degenerate queries" `Quick test_degenerate_queries;
        Alcotest.test_case "vo not transferable" `Quick test_vo_not_transferable;
        Alcotest.test_case "vo user bound" `Quick test_vo_user_bound;
        Alcotest.test_case "curve edges" `Quick test_curve_edges;
        Alcotest.test_case "fp edges" `Quick test_fp_edges;
        Alcotest.test_case "tonelli-shanks" `Quick test_tonelli_shanks;
      ] );
  ]
