(* Metrics registry: counter families, the golden Prometheus exposition
   (byte-stable given fixed inputs), histogram min/max accessors and the
   bucket roundtrip, and GC/allocation attribution across worker domains. *)

module T = Zkqac_telemetry.Telemetry
module Metrics = Zkqac_telemetry.Metrics
module Histogram = Zkqac_telemetry.Histogram
module Alloc = Zkqac_telemetry.Alloc
module Trace = Zkqac_telemetry.Trace
module Pool = Zkqac_parallel.Pool

let test_counter_family () =
  let f = Metrics.counter ~name:"test_family_total" ~help:"test" in
  Alcotest.(check int) "fresh cell" 0 (Metrics.get f [ ("k", "a") ]);
  Metrics.inc f [ ("k", "a") ];
  Metrics.inc f ~by:4 [ ("k", "a") ];
  Metrics.inc f [ ("k", "b") ];
  Alcotest.(check int) "a" 5 (Metrics.get f [ ("k", "a") ]);
  Alcotest.(check int) "b" 1 (Metrics.get f [ ("k", "b") ]);
  (* Label order must not matter: the cell key is sorted. *)
  let g = Metrics.counter ~name:"test_family2_total" ~help:"test" in
  Metrics.inc g [ ("x", "1"); ("y", "2") ];
  Metrics.inc g [ ("y", "2"); ("x", "1") ];
  Alcotest.(check int) "sorted key" 2 (Metrics.get g [ ("x", "1"); ("y", "2") ])

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Float counter families (fsync seconds and friends): fractional increments
   accumulate, and the family is exported — but only once it has cells, so
   registering one never perturbs the golden exposition. *)
let test_float_counter_family () =
  let before = Metrics.to_prometheus () in
  let f = Metrics.fcounter ~name:"test_fseconds_total" ~help:"test" in
  Alcotest.(check bool) "empty family invisible" false
    (contains (Metrics.to_prometheus ()) "test_fseconds_total");
  Alcotest.(check string) "registration alone changes nothing" before
    (Metrics.to_prometheus ());
  Alcotest.(check (float 1e-9)) "fresh cell" 0.0 (Metrics.fget f [ ("k", "a") ]);
  Metrics.finc f ~by:0.25 [ ("k", "a") ];
  Metrics.finc f ~by:0.5 [ ("k", "a") ];
  Alcotest.(check (float 1e-9)) "accumulated" 0.75 (Metrics.fget f [ ("k", "a") ]);
  Alcotest.(check bool) "exported once non-empty" true
    (contains (Metrics.to_prometheus ()) "test_fseconds_total{k=\"a\"} 0.75");
  Metrics.reset ();
  Alcotest.(check (float 1e-9)) "reset clears cells" 0.0
    (Metrics.fget f [ ("k", "a") ])

(* The recovery-outcome counter exported by the crash-recovery paths. *)
let test_recovery_counter () =
  Metrics.reset ();
  Metrics.recovery "checkpoint-ok";
  Metrics.recovery "checkpoint-ok";
  Metrics.recovery "audit-truncated";
  let text = Metrics.to_prometheus () in
  Alcotest.(check bool) "checkpoint-ok cell" true
    (contains text "zkqac_recoveries_total{outcome=\"checkpoint-ok\"} 2");
  Alcotest.(check bool) "audit-truncated cell" true
    (contains text "zkqac_recoveries_total{outcome=\"audit-truncated\"} 1");
  Metrics.reset ()

let golden =
  "# HELP zkqac_verify_rejections_total Client-side verification rejections \
   by typed Verify_error code.\n\
   # TYPE zkqac_verify_rejections_total counter\n\
   zkqac_verify_rejections_total{code=\"bad-abs-signature\"} 2\n\
   zkqac_verify_rejections_total{code=\"malformed\"} 1\n\
   # HELP zkqac_ops_total Cryptographic operation counts at the PAIRING \
   boundary.\n\
   # TYPE zkqac_ops_total counter\n\
   zkqac_ops_total{op=\"pairing\"} 3\n\
   zkqac_ops_total{op=\"g_exp\"} 2\n\
   zkqac_ops_total{op=\"g_mul\"} 0\n\
   zkqac_ops_total{op=\"gt_exp\"} 0\n\
   zkqac_ops_total{op=\"gt_mul\"} 0\n\
   zkqac_ops_total{op=\"sha256_compress\"} 0\n\
   zkqac_ops_total{op=\"abs_sign\"} 0\n\
   zkqac_ops_total{op=\"abs_verify\"} 0\n\
   zkqac_ops_total{op=\"abs_relax\"} 0\n\
   zkqac_ops_total{op=\"cpabe_encrypt\"} 0\n\
   zkqac_ops_total{op=\"cpabe_decrypt\"} 0\n\
   zkqac_ops_total{op=\"multi_pairings\"} 0\n\
   zkqac_ops_total{op=\"multi_pairing_terms\"} 0\n\
   # HELP zkqac_stage_latency_seconds Latency of every closed span, by stage \
   name.\n\
   # TYPE zkqac_stage_latency_seconds summary\n\
   zkqac_stage_latency_seconds{stage=\"golden.stage\",quantile=\"0.5\"} \
   2.048e-06\n\
   zkqac_stage_latency_seconds{stage=\"golden.stage\",quantile=\"0.95\"} \
   4.096e-06\n\
   zkqac_stage_latency_seconds{stage=\"golden.stage\",quantile=\"0.99\"} \
   4.096e-06\n\
   zkqac_stage_latency_seconds_count{stage=\"golden.stage\"} 4\n\
   zkqac_stage_latency_seconds_sum{stage=\"golden.stage\"} 1.5e-05\n\
   # HELP zkqac_stage_alloc_words_total GC words attributed to closed spans, \
   by stage and heap.\n\
   # TYPE zkqac_stage_alloc_words_total counter\n\
   zkqac_stage_alloc_words_total{stage=\"golden.stage\",heap=\"minor\"} 1024\n\
   zkqac_stage_alloc_words_total{stage=\"golden.stage\",heap=\"promoted\"} 64\n\
   zkqac_stage_alloc_words_total{stage=\"golden.stage\",heap=\"major\"} 32\n\
   # HELP zkqac_domain_alloc_words_total GC words attributed to spans, by \
   recording domain and heap.\n\
   # TYPE zkqac_domain_alloc_words_total counter\n\
   zkqac_domain_alloc_words_total{domain=\"0\",heap=\"minor\"} 1024\n\
   zkqac_domain_alloc_words_total{domain=\"0\",heap=\"major\"} 32\n\
   # HELP zkqac_trace_dropped_spans Spans discarded because the trace \
   capacity bound was hit.\n\
   # TYPE zkqac_trace_dropped_spans gauge\n\
   zkqac_trace_dropped_spans 0\n\
   # HELP zkqac_flight_events_total Structured events recorded by the \
   always-on flight recorder.\n\
   # TYPE zkqac_flight_events_total counter\n\
   zkqac_flight_events_total 0\n\
   # HELP zkqac_flight_dropped_events_total Flight-recorder events \
   overwritten by ring-buffer wraparound.\n\
   # TYPE zkqac_flight_dropped_events_total counter\n\
   zkqac_flight_dropped_events_total 0\n\
   # HELP zkqac_flight_trips_total Flight-recorder dump triggers (verify \
   errors, pool failures, signals).\n\
   # TYPE zkqac_flight_trips_total counter\n\
   zkqac_flight_trips_total 0\n\
   # HELP zkqac_worker_domains Worker domains a parallel fan-out would use \
   (ZKQAC_DOMAINS or the scheduler's recommendation).\n\
   # TYPE zkqac_worker_domains gauge\n\
   zkqac_worker_domains 3\n"

let test_prometheus_golden () =
  Unix.putenv "ZKQAC_DOMAINS" "3";
  T.reset ();
  Metrics.reset ();
  Trace.reset ();
  (* Earlier suites leave flight events, possibly GC-pause totals, and a
     checkpoint-epoch gauge behind; the golden exposition expects all of
     them at their pristine state. *)
  Zkqac_telemetry.Flight.reset ();
  Zkqac_telemetry.Rte.reset ();
  Zkqac_core.Ads_io.reset_epoch_gauge ();
  T.with_enabled (fun () ->
      T.bump_n T.Pairing 3;
      T.bump_n T.G_exp 2);
  List.iter (Histogram.note "golden.stage") [ 1000; 2000; 4000; 8000 ];
  Alloc.note "golden.stage" ~minor:1024.0 ~promoted:64.0 ~major:32.0;
  Metrics.rejection "bad-abs-signature";
  Metrics.rejection "bad-abs-signature";
  Metrics.rejection "malformed";
  Alcotest.(check string) "exposition" golden (Metrics.to_prometheus ());
  (* Collecting is read-only: a second scrape is identical. *)
  Alcotest.(check string) "stable" golden (Metrics.to_prometheus ());
  Unix.putenv "ZKQAC_DOMAINS" "";
  T.reset ();
  Metrics.reset ()

let test_label_escaping () =
  let f = Metrics.counter ~name:"test_escape_total" ~help:"test" in
  Metrics.inc f [ ("k", "a\"b\\c\nd") ];
  let text = Metrics.to_prometheus () in
  let line = {|test_escape_total{k="a\"b\\c\nd"} 1|} in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped line present" true (contains text line);
  Metrics.reset ()

let test_histogram_min_max () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Histogram.min_ns h);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Histogram.max_ns h);
  List.iter (Histogram.record h) [ 100; 5_000; 1_000_000 ];
  let within v target = Float.abs (v -. target) /. target < 0.08 in
  Alcotest.(check bool) "min ~100" true (within (Histogram.min_ns h) 100.0);
  Alcotest.(check bool) "max ~1ms" true (within (Histogram.max_ns h) 1e6);
  Alcotest.(check int) "count" 3 (Histogram.count h)

let test_histogram_bucket_roundtrip () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 3; 3; 700; 90_000; 90_001; 12_345_678 ];
  let h' = Histogram.of_buckets (Histogram.buckets h) in
  Alcotest.(check int) "count" (Histogram.count h) (Histogram.count h');
  Alcotest.(check (list (pair int int)))
    "buckets" (Histogram.buckets h) (Histogram.buckets h');
  let rel a b = if b = 0.0 then Float.abs a else Float.abs (a -. b) /. b in
  Alcotest.(check bool) "mean within bucket resolution" true
    (rel (Histogram.mean_ns h') (Histogram.mean_ns h) < 0.08);
  Alcotest.(check bool) "out-of-range bucket rejected" true
    (try
       ignore (Histogram.of_buckets [ (100_000, 1) ]);
       false
     with Invalid_argument _ -> true)

(* Allocation attribution across >= 2 worker domains: every job's words
   land in some domain's table, and the per-domain breakdown sees at least
   the two workers. *)
let test_alloc_multi_domain () =
  T.reset ();
  let allocate () =
    Trace.with_span "alloc.job" @@ fun _ ->
    let acc = ref [] in
    for i = 1 to 1000 do
      acc := (i, string_of_int i) :: !acc
    done;
    ignore (Sys.opaque_identity !acc)
  in
  T.with_enabled (fun () ->
      ignore (Pool.map ~threads:2 (List.init 4 (fun _ -> allocate))));
  let snap = Alloc.snapshot () in
  (match List.assoc_opt "alloc.job" snap with
   | None -> Alcotest.fail "alloc.job not attributed"
   | Some c ->
     Alcotest.(check int) "4 spans" 4 c.Alloc.count;
     Alcotest.(check bool) "allocated minor words" true (c.Alloc.minor > 0.0));
  let doms = Alloc.by_domain () in
  Alcotest.(check bool)
    (Printf.sprintf "saw %d domain(s), want >= 2" (List.length doms))
    true
    (List.length doms >= 2);
  List.iter
    (fun (_, (c : Alloc.cell)) ->
      Alcotest.(check bool) "domain allocated" true (c.Alloc.minor > 0.0))
    doms;
  T.reset ()

let test_alloc_diff () =
  T.reset ();
  Alloc.note "diff.stage" ~minor:100.0 ~promoted:10.0 ~major:1.0;
  let earlier = Alloc.snapshot () in
  Alloc.note "diff.stage" ~minor:50.0 ~promoted:5.0 ~major:2.0;
  let d = Alloc.diff ~earlier ~later:(Alloc.snapshot ()) in
  (match List.assoc_opt "diff.stage" d with
   | None -> Alcotest.fail "stage missing from diff"
   | Some c ->
     Alcotest.(check int) "count delta" 1 c.Alloc.count;
     Alcotest.(check (float 1e-9)) "minor delta" 50.0 c.Alloc.minor;
     Alcotest.(check (float 1e-9)) "major delta" 2.0 c.Alloc.major);
  T.reset ()

let suite =
  [ ( "metrics",
      [ Alcotest.test_case "counter family" `Quick test_counter_family;
        Alcotest.test_case "float counter family" `Quick test_float_counter_family;
        Alcotest.test_case "recovery outcome counter" `Quick test_recovery_counter;
        Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
        Alcotest.test_case "label escaping" `Quick test_label_escaping;
        Alcotest.test_case "histogram min/max" `Quick test_histogram_min_max;
        Alcotest.test_case "histogram bucket roundtrip" `Quick
          test_histogram_bucket_roundtrip;
        Alcotest.test_case "alloc attribution across domains" `Quick
          test_alloc_multi_domain;
        Alcotest.test_case "alloc snapshot diff" `Quick test_alloc_diff ] ) ]
