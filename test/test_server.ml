(* The serving stack end to end: protocol round-trips, the daemon's typed
   failure modes (shed, deadline, bad request, drain), the full network
   chaos sweep through the fault-injection proxy, and the checkpoint
   loader's behaviour on truncated and bit-flipped ADS files.

   Everything runs in-process against ephemeral ports: Server.Make and the
   chaos proxy are plain values here, so the tests assert on typed results
   rather than parsing CLI output. *)

module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Scenario = Zkqac_adversary.Scenario
module VE = Zkqac_util.Verify_error

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Ads_io = Zkqac_core.Ads_io.Make (Backend)
module S = Zkqac_server.Server
module Server = Zkqac_server.Server.Make (Backend)
module Proto = Zkqac_server.Proto
module Sockio = Zkqac_server.Sockio
module Client = Zkqac_server.Client
module Cl = Zkqac_server.Client.Make (Backend)
module Chaos = Zkqac_server.Chaos

(* --- fixture: a small signed database saved to a temp checkpoint --- *)

let fixture =
  lazy
    (let drbg = Drbg.create ~seed:"test-server" in
     let msk, mvk = Abs.setup drbg in
     let universe = Universe.create [ "RoleA"; "RoleB" ] in
     let sk = Abs.keygen drbg msk (Universe.attrs universe) in
     let space = Keyspace.create ~dims:2 ~depth:2 in
     let records =
       [
         Record.make ~key:[| 0; 1 |] ~value:"a" ~policy:(Expr.of_string "RoleA");
         Record.make ~key:[| 2; 3 |] ~value:"b" ~policy:(Expr.of_string "RoleB");
         Record.make ~key:[| 3; 0 |] ~value:"c"
           ~policy:(Expr.of_string "RoleA & RoleB");
       ]
     in
     let tree =
       Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"test" records
     in
     let path = Filename.temp_file "zkqac-test-ads" ".zkqac" in
     Ads_io.save ~path ~mvk tree;
     (path, mvk, tree))

let ads_path () =
  let p, _, _ = Lazy.force fixture in
  p

let whole_box = Box.make ~lo:[| 0; 0 |] ~hi:[| 3; 3 |]
let user_a = Attr.set_of_list [ "RoleA" ]

let base_server_cfg =
  {
    S.default_config with
    S.port = 0;
    metrics_port = None;
    threads = 2;
    max_in_flight = 8;
    read_deadline = 1.0;
    write_deadline = 2.0;
    query_deadline = 10.0;
    drain_deadline = 10.0;
  }

let with_server cfg f =
  match Server.start cfg ~ads:(ads_path ()) with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok t ->
    Fun.protect
      ~finally:(fun () ->
        Server.begin_drain t;
        Server.wait t)
      (fun () -> f t)

let client_cfg port =
  {
    Client.default_config with
    Client.port;
    connect_timeout = 2.0;
    read_deadline = 1.0;
    write_deadline = 2.0;
    retries = 5;
    base_backoff = 0.01;
    max_backoff = 0.05;
  }

let query_server ?(cfg_of = client_cfg) ?rid port =
  let _, mvk, tree = Lazy.force fixture in
  Cl.query ?req_id:rid (cfg_of port) ~mvk ~universe:(Ap2g.universe tree)
    ?hierarchy:(Ap2g.hierarchy tree) ~user:user_a ~query:whole_box ()

(* --- protocol round-trips --- *)

let test_proto_roundtrip () =
  (* Both envelope versions round-trip; req_id = None is the v1 wire form. *)
  List.iter
    (fun req_id ->
      let req =
        { Proto.req_id; roles = [ "RoleA"; "RoleB" ]; query = whole_box }
      in
      match Proto.decode_request (Proto.encode_request req) with
      | Ok r ->
        Alcotest.(check (list string)) "roles" req.Proto.roles r.Proto.roles;
        Alcotest.(check bool) "query" true
          (Box.equal req.Proto.query r.Proto.query);
        Alcotest.(check bool) "req_id" true (r.Proto.req_id = req_id)
      | Error e -> Alcotest.failf "request decode: %s" (VE.to_string e))
    [ None; Some 0xdeadbeefcafef00dL ];
  let responses =
    [
      Proto.Vo "some vo bytes";
      Proto.Overloaded;
      Proto.Deadline;
      Proto.Bad_request "nope";
      Proto.Server_error "kaput";
    ]
  in
  let footer =
    {
      Proto.f_req_id = 0x0123456789abcdefL;
      f_timing =
        {
          Proto.queue_us = 12;
          relax_us = 34;
          prove_us = 56;
          encode_us = 78;
          total_us = 190;
        };
    }
  in
  List.iter
    (fun resp ->
      (match Proto.decode_response (Proto.encode_response resp) with
      | Ok (r, f) ->
        Alcotest.(check string)
          ("round-trip " ^ Proto.response_code resp)
          (Proto.response_code resp) (Proto.response_code r);
        Alcotest.(check bool) "v1 has no footer" true (f = None)
      | Error e ->
        Alcotest.failf "response decode [%s]: %s" (Proto.response_code resp)
          (VE.to_string e));
      match Proto.decode_response (Proto.encode_response ~footer resp) with
      | Ok (r, Some f) ->
        Alcotest.(check string)
          ("v2 round-trip " ^ Proto.response_code resp)
          (Proto.response_code resp) (Proto.response_code r);
        Alcotest.(check bool) "footer survives" true (f = footer)
      | Ok (_, None) -> Alcotest.fail "v2 footer dropped"
      | Error e ->
        Alcotest.failf "v2 response decode [%s]: %s" (Proto.response_code resp)
          (VE.to_string e))
    responses;
  (* Garbage and truncations decode to typed errors, never exceptions. *)
  List.iter
    (fun junk ->
      match Proto.decode_request junk with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "junk request %S decoded" junk)
    [ ""; "x"; "ZKQAC-RSP-1"; String.make 64 '\xff' ];
  List.iter
    (fun junk ->
      match Proto.decode_response junk with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "junk response %S decoded" junk)
    [ ""; "x"; "ZKQAC-REQ-1"; String.make 64 '\x00' ]

(* --- serve round-trip and typed failure modes --- *)

let test_serve_roundtrip () =
  with_server base_server_cfg @@ fun t ->
  (match query_server (Server.port t) with
  | Ok s ->
    Alcotest.(check int) "one attempt" 1 s.Cl.attempts;
    Alcotest.(check int) "RoleA records" 1 (List.length s.Cl.records)
  | Error f -> Alcotest.failf "round-trip: %s" (Client.failure_to_string f));
  Alcotest.(check int) "served" 1 (Server.served t)

let test_serve_shed () =
  (* max_in_flight = 0 sheds every connection: the client must see typed
     Overloaded transients and exhaust its budget — never a hang. *)
  with_server { base_server_cfg with S.max_in_flight = 0 } @@ fun t ->
  match query_server (Server.port t) with
  | Error (Client.Exhausted { last = "overloaded"; attempts }) ->
    Alcotest.(check int) "budget spent" 6 attempts
  | Error f -> Alcotest.failf "expected overloaded, got %s" (Client.failure_to_string f)
  | Ok _ -> Alcotest.fail "query succeeded through a zero-capacity server"

let test_serve_query_deadline () =
  (* A zero query deadline expires before any worker can answer: typed
     Deadline response, and the client treats it as transient. *)
  with_server { base_server_cfg with S.query_deadline = 0.0 } @@ fun t ->
  match query_server (Server.port t) with
  | Error (Client.Exhausted { last = "server-deadline"; _ }) -> ()
  | Error f ->
    Alcotest.failf "expected server-deadline, got %s" (Client.failure_to_string f)
  | Ok _ -> Alcotest.fail "query beat a zero deadline"

let test_serve_read_deadline () =
  (* A mute client is disconnected once the read deadline passes — the
     server never waits forever on a stalled request. *)
  with_server base_server_cfg @@ fun t ->
  let fd =
    Sockio.connect ~host:"127.0.0.1" ~port:(Server.port t) ~timeout:2.0
  in
  Fun.protect
    ~finally:(fun () -> Sockio.close_noerr fd)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      (match Sockio.read_frame fd ~deadline:(Sockio.deadline_after 5.0)
               ~max_bytes:1024 with
      | _ -> Alcotest.fail "server answered an empty request"
      | exception Sockio.Fault _ -> ());
      Alcotest.(check bool) "dropped within ~read_deadline" true
        (Unix.gettimeofday () -. t0 < 4.0))

let test_serve_bad_request () =
  with_server base_server_cfg @@ fun t ->
  let exchange payload =
    let fd =
      Sockio.connect ~host:"127.0.0.1" ~port:(Server.port t) ~timeout:2.0
    in
    Fun.protect
      ~finally:(fun () -> Sockio.close_noerr fd)
      (fun () ->
        match
          let dl = Sockio.deadline_after 5.0 in
          Sockio.write_frame fd ~deadline:dl payload;
          Sockio.read_frame fd ~deadline:dl ~max_bytes:(1 lsl 20)
        with
        | frame -> (
          match Proto.decode_response frame with
          | Ok (r, _) -> `Resp r
          | Error e -> Alcotest.failf "undecodable response: %s" (VE.to_string e))
        | exception Sockio.Fault f -> `Fault f)
  in
  (* Undecodable request: typed Bad_request, connection still served. *)
  (match exchange "complete garbage" with
  | `Resp (Proto.Bad_request _) -> ()
  | `Resp r -> Alcotest.failf "garbage got %s" (Proto.response_code r)
  | `Fault f -> Alcotest.failf "garbage: %s" (Sockio.fault_to_string f));
  (* Oversized frame: refused before the payload is even read. The refusal
     may close the connection while we are still writing our 64K, so a
     typed transport fault is as acceptable as reading the Bad_request. *)
  (match exchange (String.make (Proto.max_request_bytes + 1) 'x') with
  | `Resp (Proto.Bad_request _) | `Fault _ -> ()
  | `Resp r -> Alcotest.failf "oversized got %s" (Proto.response_code r));
  (* A query outside the keyspace is terminal, not a retry loop. *)
  let outside = Box.make ~lo:[| 10; 10 |] ~hi:[| 11; 11 |] in
  match
    exchange
      (Proto.encode_request
         { Proto.req_id = None; roles = [ "RoleA" ]; query = outside })
  with
  | `Resp (Proto.Bad_request d) ->
    Alcotest.(check string) "reason" "query-outside-space" d
  | `Resp r -> Alcotest.failf "outside-space got %s" (Proto.response_code r)
  | `Fault f -> Alcotest.failf "outside-space: %s" (Sockio.fault_to_string f)

let test_serve_drain () =
  let cfg = base_server_cfg in
  match Server.start cfg ~ads:(ads_path ()) with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok t ->
    (match query_server (Server.port t) with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "pre-drain query: %s" (Client.failure_to_string f));
    let port = Server.port t in
    Server.begin_drain t;
    Server.wait t;
    Alcotest.(check int) "served across drain" 1 (Server.served t);
    (* The listener is gone: a new connection must fail fast. *)
    (match Sockio.connect ~host:"127.0.0.1" ~port ~timeout:1.0 with
    | fd ->
      (* Accepted by a lingering backlog at worst — it must still be dead. *)
      Fun.protect
        ~finally:(fun () -> Sockio.close_noerr fd)
        (fun () ->
          match
            Sockio.read_frame fd ~deadline:(Sockio.deadline_after 1.0)
              ~max_bytes:1024
          with
          | _ -> Alcotest.fail "drained server answered"
          | exception Sockio.Fault _ -> ())
    | exception Sockio.Fault _ -> ())

(* --- the chaos sweep: every network scenario, typed error or retry --- *)

let run_chaos_scenario (sc : Scenario.t) =
  with_server base_server_cfg @@ fun t ->
  let chaos_cfg =
    {
      Chaos.default_config with
      Chaos.listen_port = 0;
      upstream_port = Server.port t;
      scenario = sc.Scenario.name;
      faults = 1;
      (* Short enough to keep the sweep fast, long enough to overrun the
         client's 1s read deadline. *)
      stall = 2.0;
      trickle_delay = 0.3;
      cut_after = 10;
      seed = 99;
    }
  in
  match Chaos.start chaos_cfg with
  | Error e -> Alcotest.failf "%s: chaos start: %s" sc.Scenario.name e
  | Ok proxy ->
    Fun.protect
      ~finally:(fun () -> Chaos.stop proxy)
      (fun () ->
        let outcome = query_server (Chaos.port proxy) in
        Alcotest.(check int)
          (sc.Scenario.name ^ " injected once")
          1 (Chaos.injected proxy);
        match (sc.Scenario.name, outcome) with
        | "net-corrupt", Error (Client.Rejected _) ->
          (* A complete-but-lying frame must die as a typed verification
             rejection — and must never be retried. *)
          ()
        | "net-corrupt", Ok s ->
          (* Corruption that garbles the envelope itself is transport: the
             retry reached the clean upstream and verified. *)
          Alcotest.(check bool)
            "corrupt retried" true (s.Cl.attempts > 1)
        | _, Ok s ->
          (* Every pure-transport fault: first attempt burned by the
             injector, retry reaches the clean upstream, VO verifies. *)
          Alcotest.(check bool)
            (sc.Scenario.name ^ " retried")
            true (s.Cl.attempts > 1)
        | name, Error f ->
          Alcotest.failf "%s: %s" name (Client.failure_to_string f))

let test_chaos_sweep () =
  Alcotest.(check bool)
    "network scenarios registered" true
    (List.length Scenario.network >= 6);
  List.iter run_chaos_scenario Scenario.network

let test_chaos_registry () =
  (* Transport scenarios are findable but stay out of the VO-tamper list:
     the attack matrix over VO fixtures is unchanged. *)
  List.iter
    (fun name ->
      match Scenario.find name with
      | Some sc ->
        Alcotest.(check string)
          (name ^ " category") "transport"
          (Scenario.category_name sc.Scenario.category)
      | None -> Alcotest.failf "%s not found" name)
    Scenario.network_names;
  List.iter
    (fun (sc : Scenario.t) ->
      Alcotest.(check bool)
        (sc.Scenario.name ^ " not in VO list")
        false
        (List.mem sc.Scenario.name Scenario.names))
    Scenario.network

(* --- checkpoint robustness: truncation and byte flips --- *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  data

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let load_mutant data =
  let path = Filename.temp_file "zkqac-test-mutant" ".zkqac" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_file path data;
      Ads_io.load ~path)

let test_ads_truncation () =
  let whole = read_file (ads_path ()) in
  let n = String.length whole in
  List.iter
    (fun keep ->
      match load_mutant (String.sub whole 0 keep) with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "truncation at %d names the file" keep)
          true
          (contains_sub msg "zkqac-test-mutant")
      | Ok _ -> Alcotest.failf "truncation at %d bytes loaded" keep)
    [ 0; 1; 4; n / 4; n / 2; n - 1 ]

let test_ads_byte_flips () =
  let whole = read_file (ads_path ()) in
  let n = String.length whole in
  (* A flip anywhere must surface as a typed error with a stable code —
     never an escaped exception, and never a silently-accepted checkpoint
     (the body checksum covers every byte after the header). *)
  List.iter
    (fun off ->
      let b = Bytes.of_string whole in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x41));
      match load_mutant (Bytes.to_string b) with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "flip at %d carries a typed code" off)
          true
          (contains_sub msg "[")
      | Ok _ -> Alcotest.failf "flip at %d accepted" off)
    [ 0; 1; 7; 16; n / 3; n / 2; (2 * n) / 3; n - 2; n - 1 ]

let test_ads_typed_decode () =
  (* Raw garbage never parses a length-prefixed field: the Wire reader
     raises before the magic comparison, and the catch-all types it. *)
  (match Ads_io.decode_typed "not an ads file at all" with
  | Error e -> Alcotest.(check string) "raw garbage" "malformed" (VE.code e)
  | Ok _ -> Alcotest.fail "garbage decoded");
  (* A well-formed bytes field holding the wrong magic reaches the explicit
     not-an-ADS-file branch. *)
  let wrong_magic =
    let w = Zkqac_util.Wire.writer () in
    Zkqac_util.Wire.bytes w "NOT-A-ZKQAC-FILE";
    Zkqac_util.Wire.contents w
  in
  (match Ads_io.decode_typed wrong_magic with
  | Error e -> Alcotest.(check string) "wrong magic" "invalid-shape" (VE.code e)
  | Ok _ -> Alcotest.fail "wrong magic decoded");
  let whole = read_file (ads_path ()) in
  match Ads_io.decode_typed (String.sub whole 0 (String.length whole / 2)) with
  | Error e ->
    Alcotest.(check bool)
      "truncation is typed" true
      (List.mem (VE.code e)
         [ "malformed"; "malformed-vo"; "digest-mismatch"; "limit-exceeded" ])
  | Ok _ -> Alcotest.fail "truncated body decoded"

(* --- already-expired Sockio deadlines (fail fast, never block) --- *)

let test_sockio_expired_deadline () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Sockio.close_noerr a;
      Sockio.close_noerr b)
    (fun () ->
      List.iter
        (fun budget ->
          let t0 = Unix.gettimeofday () in
          (match
             Sockio.read_frame a
               ~deadline:(Sockio.deadline_after budget)
               ~max_bytes:1024
           with
          | _ -> Alcotest.fail "read succeeded past an expired deadline"
          | exception Sockio.Fault Sockio.Timeout -> ()
          | exception Sockio.Fault f ->
            Alcotest.failf "expected Timeout, got %s" (Sockio.fault_to_string f));
          (match
             Sockio.write_frame a
               ~deadline:(Sockio.deadline_after budget)
               "payload"
           with
          | () -> Alcotest.fail "write succeeded past an expired deadline"
          | exception Sockio.Fault Sockio.Timeout -> ()
          | exception Sockio.Fault f ->
            Alcotest.failf "expected Timeout, got %s" (Sockio.fault_to_string f));
          Alcotest.(check bool)
            (Printf.sprintf "budget %g fails fast" budget)
            true
            (Unix.gettimeofday () -. t0 < 0.5))
        [ 0.0; -1.0; -3600.0 ])

(* --- the drain audit entry survives a drain whose own budget expires --- *)

module Audit = Zkqac_audit.Audit

let test_drain_audit_entry () =
  let log = Filename.temp_file "zkqac-drain-audit" ".log" in
  Sys.remove log;
  (match Audit.enable ~path:log () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Audit.disable (fun () ->
      (* query_deadline 0 abandons the worker mid-query; drain_deadline 0
         makes the drain's own Pool.await_timeout expire immediately. The
         final [drain] audit entry must be written regardless. *)
      match
        Server.start
          { base_server_cfg with S.query_deadline = 0.0; drain_deadline = 0.0 }
          ~ads:(ads_path ())
      with
      | Error e -> Alcotest.failf "server start: %s" e
      | Ok t ->
        (match query_server (Server.port t) with
        | Ok _ -> Alcotest.fail "query beat a zero deadline"
        | Error _ -> ());
        Server.begin_drain t;
        Server.wait t);
  match Audit.verify_file log with
  | Error b ->
    Alcotest.failf "audit log broken at %d: %s" b.Audit.entry b.Audit.reason
  | Ok entries ->
    let kinds = List.map (fun (e : Audit.entry) -> e.Audit.kind) entries in
    Alcotest.(check bool) "recovered entry first" true
      (List.mem "recovered" kinds);
    Alcotest.(check bool) "drain entry written despite expired drain budget"
      true
      (List.mem "drain" kinds)

(* --- /healthz + /readyz --- *)

module Mh = Zkqac_server.Metrics_http

let http_get port path =
  let fd = Sockio.connect ~host:"127.0.0.1" ~port ~timeout:2.0 in
  Fun.protect
    ~finally:(fun () -> Sockio.close_noerr fd)
    (fun () ->
      let req = "GET " ^ path ^ " HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> ()
      in
      go ();
      Buffer.contents buf)

let test_readyz_flip () =
  let ready = ref false in
  match Mh.start ~ready:(fun () -> !ready) ~port:0 () with
  | Error e -> Alcotest.failf "endpoint start: %s" e
  | Ok h ->
    Fun.protect
      ~finally:(fun () -> Mh.stop h)
      (fun () ->
        let p = Mh.port h in
        Alcotest.(check bool) "503 while starting" true
          (contains_sub (http_get p "/readyz") "503");
        Alcotest.(check bool) "healthz alive regardless" true
          (contains_sub (http_get p "/healthz") "200 OK");
        ready := true;
        Alcotest.(check bool) "200 once ready" true
          (contains_sub (http_get p "/readyz") "ready");
        Alcotest.(check bool) "unknown path 404" true
          (contains_sub (http_get p "/nope") "404"))

(* --- the supervisor's restart loop, with throwaway shell children --- *)

module Supervise = Zkqac_server.Supervise

let test_supervise_restart_loop () =
  let pid_file = Filename.temp_file "zkqac-sup" ".pid" in
  let cfg =
    {
      Supervise.max_restarts = 2;
      base_backoff = 0.005;
      max_backoff = 0.01;
      pid_file = Some pid_file;
    }
  in
  (* A child that always crashes: the budget is spent, the supervisor gives
     up with exit 1, and every restart is counted and metered. *)
  let sup = Supervise.create cfg in
  let code = Supervise.run sup ~argv:[| "/bin/sh"; "-c"; "exit 7" |] in
  Alcotest.(check int) "budget exhausted exits 1" 1 code;
  Alcotest.(check int) "restarts counted" 2 (Supervise.restarts sup);
  Alcotest.(check bool) "pid published" true
    (String.length (String.trim (read_file pid_file)) > 0);
  Alcotest.(check bool) "restart metric exported" true
    (contains_sub
       (Zkqac_telemetry.Metrics.to_prometheus ())
       "zkqac_supervisor_restarts_total{cause=\"exit-7\"} 2");
  (* A child that completes its drain: supervision ends quietly with it. *)
  let clean = Supervise.create { cfg with Supervise.pid_file = None } in
  Alcotest.(check int) "clean exit passes through" 0
    (Supervise.run clean ~argv:[| "/bin/sh"; "-c"; "exit 0" |]);
  Alcotest.(check int) "no restart for a clean exit" 0 (Supervise.restarts clean)

let test_server_health_endpoints () =
  with_server { base_server_cfg with S.metrics_port = Some 0 } @@ fun t ->
  Alcotest.(check bool) "ready after start" true (Server.ready t);
  Alcotest.(check int) "fresh checkpoint epoch" 0 (Server.recovered_epoch t);
  match Server.metrics_port t with
  | None -> Alcotest.fail "metrics endpoint missing"
  | Some p ->
    Alcotest.(check bool) "readyz after recovery" true
      (contains_sub (http_get p "/readyz") "ready");
    Alcotest.(check bool) "exposition served" true
      (contains_sub (http_get p "/metrics") "zkqac_")

(* --- request correlation: envelope compatibility across versions --- *)

module Slowlog = Zkqac_server.Slowlog

let test_compat_v1_request () =
  (* An old peer's request (no req_id: the v1 wire form) against the new
     server: answered correctly, and answered in v1 — no footer bytes an old
     decoder would reject. The server mints an id for its own logs. *)
  with_server base_server_cfg @@ fun t ->
  let fd =
    Sockio.connect ~host:"127.0.0.1" ~port:(Server.port t) ~timeout:2.0
  in
  Fun.protect
    ~finally:(fun () -> Sockio.close_noerr fd)
    (fun () ->
      let dl = Sockio.deadline_after 5.0 in
      Sockio.write_frame fd ~deadline:dl
        (Proto.encode_request
           { Proto.req_id = None; roles = [ "RoleA" ]; query = whole_box });
      let frame = Sockio.read_frame fd ~deadline:dl ~max_bytes:(1 lsl 24) in
      Alcotest.(check bool) "response is v1 bytes" true
        (String.length frame > String.length Proto.response_magic_v1
        && String.sub frame 4 (String.length Proto.response_magic_v1)
           = Proto.response_magic_v1);
      match Proto.decode_response frame with
      | Ok (Proto.Vo _, None) -> ()
      | Ok (r, Some _) ->
        Alcotest.failf "v1 request got a v2 footer (%s)" (Proto.response_code r)
      | Ok (r, None) -> Alcotest.failf "expected Vo, got %s" (Proto.response_code r)
      | Error e -> Alcotest.failf "response decode: %s" (VE.to_string e));
  (* The minted id is in the audit-visible incident stream: every request
     is observed, whatever its envelope version. *)
  Alcotest.(check int) "observed by the sampler" 1
    (Slowlog.observed (Server.slowlog t))

let test_compat_v1_responder () =
  (* A new client against an old responder: a fake v1 server answers without
     a footer. The client must accept it — success with [server = None]. *)
  let _, mvk, tree = Lazy.force fixture in
  let drbg = Drbg.create ~seed:"v1-responder" in
  let user = user_a in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user whole_box in
  let payload =
    let module V = Zkqac_core.Vo.Make (Backend) in
    V.to_bytes vo
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen_fd 4;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  let responder =
    Thread.create
      (fun () ->
        match Unix.accept listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          Fun.protect
            ~finally:(fun () -> Sockio.close_noerr fd)
            (fun () ->
              let dl = Sockio.deadline_after 5.0 in
              let frame = Sockio.read_frame fd ~deadline:dl ~max_bytes:(1 lsl 20) in
              (* An old responder decodes the v2 request (the decoder in this
                 tree accepts both) but answers with v1 bytes: no footer. *)
              (match Proto.decode_request frame with
              | Ok r ->
                Alcotest.(check bool) "v2 request carried an id" true
                  (r.Proto.req_id <> None)
              | Error e -> Alcotest.failf "request decode: %s" (VE.to_string e));
              Sockio.write_frame fd ~deadline:dl
                (Proto.encode_response (Proto.Vo payload))))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Thread.join responder)
    (fun () ->
      match
        Cl.query (client_cfg port) ~mvk ~universe:(Ap2g.universe tree)
          ?hierarchy:(Ap2g.hierarchy tree) ~user ~query:whole_box ()
      with
      | Ok s ->
        Alcotest.(check bool) "no server timing from a v1 responder" true
          (s.Cl.server = None);
        Alcotest.(check bool) "client still knows its own id" true
          (s.Cl.req_id <> 0L)
      | Error f -> Alcotest.failf "v1 responder: %s" (Client.failure_to_string f))

(* --- tail sampling: forced-slow and forced-error determinism --- *)

let find_incident slowlog rid =
  List.filter
    (fun (i : Slowlog.incident) -> i.Slowlog.i_req_id = rid)
    (Slowlog.incidents slowlog)

let span_names (i : Slowlog.incident) =
  List.map
    (fun (s : Zkqac_telemetry.Trace.info) -> s.Zkqac_telemetry.Trace.span_name)
    i.Slowlog.i_spans

let test_slowlog_forced_slow () =
  (* A fixed 40ms threshold plus a 120ms injected delay on the first decoded
     request: exactly that request is sampled, with a complete span tree
     (root, the injected stall, the pool worker), and a fast follow-up stays
     out. Determinism is the point — no quantile warm-up in this mode. *)
  let rid = 0x5105105105105105L in
  with_server
    {
      base_server_cfg with
      S.slow_threshold_ms = 40.0;
      slow_inject = Some (0.12, 1);
    }
  @@ fun t ->
  (match query_server ~rid (Server.port t) with
  | Ok s -> Alcotest.(check bool) "slow query still verifies" true (s.Cl.req_id = rid)
  | Error f -> Alcotest.failf "forced-slow query: %s" (Client.failure_to_string f));
  (match query_server (Server.port t) with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "fast query: %s" (Client.failure_to_string f));
  let slowlog = Server.slowlog t in
  Alcotest.(check int) "both observed" 2 (Slowlog.observed slowlog);
  Alcotest.(check int) "exactly the slow one sampled" 1 (Slowlog.sampled slowlog);
  match find_incident slowlog rid with
  | [ inc ] ->
    Alcotest.(check string) "kept as slow" "slow" inc.Slowlog.i_reason;
    Alcotest.(check string) "outcome ok" "ok" inc.Slowlog.i_outcome;
    Alcotest.(check bool) "client id, not minted" false inc.Slowlog.i_minted;
    Alcotest.(check bool) "slower than the injection" true
      (inc.Slowlog.i_total_ms >= 120.0);
    let names = span_names inc in
    List.iter
      (fun expected ->
        Alcotest.(check bool) (expected ^ " span present") true
          (List.mem expected names))
      [ "server.request"; "server.slow_inject"; "pool.worker" ];
    (* Every collected span belongs to this request's tree. *)
    let root_id =
      (List.hd inc.Slowlog.i_spans).Zkqac_telemetry.Trace.span_root
    in
    List.iter
      (fun (s : Zkqac_telemetry.Trace.info) ->
        Alcotest.(check int) "span in tree" root_id
          s.Zkqac_telemetry.Trace.span_root)
      inc.Slowlog.i_spans;
    (match inc.Slowlog.i_timing with
    | Some tm ->
      Alcotest.(check bool) "server total covers the stall" true
        (tm.Proto.total_us >= 120_000)
    | None -> Alcotest.fail "slow incident lost its timing split")
  | l -> Alcotest.failf "expected exactly one incident for the id, got %d"
           (List.length l)

let test_slowlog_forced_error () =
  (* A known id on a query outside the keyspace: the typed error is sampled
     under that id exactly once; the fast success before it is not. *)
  let rid = 0x0badc0ffee000001L in
  with_server base_server_cfg @@ fun t ->
  (match query_server (Server.port t) with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "fast query: %s" (Client.failure_to_string f));
  let outside = Box.make ~lo:[| 10; 10 |] ~hi:[| 11; 11 |] in
  let fd =
    Sockio.connect ~host:"127.0.0.1" ~port:(Server.port t) ~timeout:2.0
  in
  Fun.protect
    ~finally:(fun () -> Sockio.close_noerr fd)
    (fun () ->
      let dl = Sockio.deadline_after 5.0 in
      Sockio.write_frame fd ~deadline:dl
        (Proto.encode_request
           { Proto.req_id = Some rid; roles = [ "RoleA" ]; query = outside });
      match Sockio.read_frame fd ~deadline:dl ~max_bytes:(1 lsl 20) with
      | frame -> (
        match Proto.decode_response frame with
        | Ok (Proto.Bad_request _, Some f) ->
          Alcotest.(check bool) "footer echoes the id" true
            (f.Proto.f_req_id = rid)
        | Ok (r, _) -> Alcotest.failf "expected Bad_request, got %s"
                         (Proto.response_code r)
        | Error e -> Alcotest.failf "response decode: %s" (VE.to_string e)));
  let slowlog = Server.slowlog t in
  Alcotest.(check int) "only the error sampled" 1 (Slowlog.sampled slowlog);
  match find_incident slowlog rid with
  | [ inc ] ->
    Alcotest.(check string) "kept as error" "error" inc.Slowlog.i_reason;
    Alcotest.(check string) "typed outcome" "bad-request" inc.Slowlog.i_outcome;
    Alcotest.(check bool) "root span collected" true
      (List.mem "server.request" (span_names inc))
  | l -> Alcotest.failf "expected exactly one error incident, got %d"
           (List.length l)

(* --- the correlation join: one id, all planes --- *)

let test_req_id_join () =
  (* One client-minted id, retrieved from the audit log, the /slowlog HTTP
     endpoint, and the client's own success — byte-identical hex in all. *)
  let rid = 0xfeedfacecafebeefL in
  let hex = Proto.req_id_hex rid in
  let log = Filename.temp_file "zkqac-join-audit" ".log" in
  Sys.remove log;
  (match Audit.enable ~path:log () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Audit.disable (fun () ->
      with_server
        {
          base_server_cfg with
          S.metrics_port = Some 0;
          slow_threshold_ms = 0.000001;
          (* everything is "slow": the join test wants the incident kept *)
        }
      @@ fun t ->
      (match query_server ~rid (Server.port t) with
      | Ok s ->
        Alcotest.(check bool) "success carries the id" true (s.Cl.req_id = rid);
        Alcotest.(check bool) "footer timing arrived" true (s.Cl.server <> None)
      | Error f -> Alcotest.failf "query: %s" (Client.failure_to_string f));
      (* Plane 2: the live /slowlog endpoint, as a client would fetch it. *)
      match Server.metrics_port t with
      | None -> Alcotest.fail "metrics endpoint missing"
      | Some p ->
        let body = http_get p "/slowlog" in
        Alcotest.(check bool) "slowlog endpoint serves JSON" true
          (contains_sub body "\"slowlog\"");
        Alcotest.(check bool) "slowlog names the request" true
          (contains_sub body hex);
        Alcotest.(check bool) "slowlog carries the span tree" true
          (contains_sub body "server.request"));
  (* Plane 3: the hash-chained audit log. *)
  match Audit.verify_file log with
  | Error b ->
    Alcotest.failf "audit log broken at %d: %s" b.Audit.entry b.Audit.reason
  | Ok entries ->
    let serve_bodies =
      List.filter_map
        (fun (e : Audit.entry) ->
          if e.Audit.kind = "serve" then
            Some (Zkqac_telemetry.Json.to_string e.Audit.body)
          else None)
        entries
    in
    Alcotest.(check bool) "audit entry carries the same hex id" true
      (List.exists (fun b -> contains_sub b hex) serve_bodies)

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "proto round-trip" `Quick test_proto_roundtrip;
        Alcotest.test_case "serve round-trip" `Quick test_serve_roundtrip;
        Alcotest.test_case "shed under zero capacity" `Quick test_serve_shed;
        Alcotest.test_case "query deadline" `Quick test_serve_query_deadline;
        Alcotest.test_case "read deadline" `Quick test_serve_read_deadline;
        Alcotest.test_case "bad request" `Quick test_serve_bad_request;
        Alcotest.test_case "graceful drain" `Quick test_serve_drain;
        Alcotest.test_case "chaos registry" `Quick test_chaos_registry;
        Alcotest.test_case "chaos sweep" `Slow test_chaos_sweep;
        Alcotest.test_case "ads truncation" `Quick test_ads_truncation;
        Alcotest.test_case "ads byte flips" `Quick test_ads_byte_flips;
        Alcotest.test_case "ads typed decode" `Quick test_ads_typed_decode;
        Alcotest.test_case "expired sockio deadlines fail fast" `Quick
          test_sockio_expired_deadline;
        Alcotest.test_case "drain audit entry despite expired budget" `Quick
          test_drain_audit_entry;
        Alcotest.test_case "readyz flips with readiness" `Quick test_readyz_flip;
        Alcotest.test_case "supervise restart loop" `Quick
          test_supervise_restart_loop;
        Alcotest.test_case "server health endpoints" `Quick
          test_server_health_endpoints;
        Alcotest.test_case "v1 request against new server" `Quick
          test_compat_v1_request;
        Alcotest.test_case "new client against v1 responder" `Quick
          test_compat_v1_responder;
        Alcotest.test_case "tail sampler keeps the forced-slow request" `Quick
          test_slowlog_forced_slow;
        Alcotest.test_case "tail sampler keeps the forced error" `Quick
          test_slowlog_forced_error;
        Alcotest.test_case "one req id joins audit, slowlog, client" `Quick
          test_req_id_join;
      ] );
  ]
