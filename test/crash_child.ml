(* The victim process of the crash harness (test_crash.ml).

   A real zkqac server in its own process: recovers the audit tail, loads
   the newest valid checkpoint epoch, serves queries, and periodically
   writes epoch checkpoints — exactly what `zkqac serve --audit-recover`
   does, minus the CLI. The harness forks it, lets ZKQAC_CRASH_POINT
   SIGKILL it from inside (or kills it from outside), restarts it, and
   asserts that every restart recovers.

   argv: ADS PORT_FILE AUDIT_LOG CHECKPOINT_EVERY *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Server = Zkqac_server.Server.Make (Backend)
module S = Zkqac_server.Server
module Audit = Zkqac_audit.Audit

let () =
  if Array.length Sys.argv <> 5 then begin
    prerr_endline "usage: crash_child ADS PORT_FILE AUDIT_LOG CHECKPOINT_EVERY";
    exit 2
  end;
  let ads = Sys.argv.(1) in
  let port_file = Sys.argv.(2) in
  let audit = Sys.argv.(3) in
  let checkpoint_every = float_of_string Sys.argv.(4) in
  (match Audit.recover ~path:audit with
  | Ok _ -> ()
  | Error b ->
    Printf.eprintf "crash_child: audit recover refused at entry %d: %s\n%!"
      b.Audit.entry b.Audit.reason;
    exit 3);
  (match Audit.enable ~path:audit () with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "crash_child: %s\n%!" e;
    exit 3);
  let cfg =
    {
      S.default_config with
      S.port = 0;
      metrics_port = None;
      threads = 2;
      max_in_flight = 8;
      read_deadline = 2.0;
      write_deadline = 2.0;
      query_deadline = 10.0;
      drain_deadline = 10.0;
      checkpoint_every;
    }
  in
  match Server.start cfg ~ads with
  | Error e ->
    Printf.eprintf "crash_child: %s\n%!" e;
    exit 4
  | Ok t ->
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Server.begin_drain t));
    (* Publish the bound port atomically, but NOT through Durable.replace:
       the harness arms durable-* crash points that must count checkpoint
       writes, not this write. *)
    let tmp = port_file ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (string_of_int (Server.port t) ^ "\n");
    close_out oc;
    Sys.rename tmp port_file;
    Server.wait t;
    Audit.disable ();
    exit 0
