(* Telemetry subsystem: counters are inert while disabled, count while
   enabled, snapshot/diff isolates a region, spans accumulate, and the
   instrumented backend wrapper attributes group ops correctly. *)

module T = Zkqac_telemetry.Telemetry
module Json = Zkqac_telemetry.Json
module Drbg = Zkqac_hashing.Drbg

let test_disabled_noop () =
  T.disable ();
  let before = T.get T.Pairing in
  T.bump T.Pairing;
  T.bump_n T.Pairing 5;
  Alcotest.(check int) "disabled bump is a no-op" before (T.get T.Pairing)

let test_enabled_counts () =
  T.with_enabled (fun () ->
      let before = T.snapshot () in
      T.bump T.G_exp;
      T.bump T.G_exp;
      T.bump_n T.Pairing 3;
      let cost = T.diff ~earlier:before ~later:(T.snapshot ()) in
      let count c = List.assoc c (T.ops cost) in
      Alcotest.(check int) "g_exp" 2 (count T.G_exp);
      Alcotest.(check int) "pairing" 3 (count T.Pairing);
      Alcotest.(check int) "untouched" 0 (count T.Cpabe_decrypt))

let test_span_accumulates () =
  T.with_enabled (fun () ->
      let before = T.snapshot () in
      for _ = 1 to 4 do
        T.span "test.stage" (fun () -> ignore (Sys.opaque_identity 42))
      done;
      let cost = T.diff ~earlier:before ~later:(T.snapshot ()) in
      match List.assoc_opt "test.stage" (T.spans cost) with
      | None -> Alcotest.fail "span not recorded"
      | Some st ->
        Alcotest.(check int) "calls" 4 st.T.calls;
        Alcotest.(check bool) "time >= 0" true (st.T.seconds >= 0.))

let test_span_on_exception () =
  T.with_enabled (fun () ->
      let before = T.snapshot () in
      (try T.span "test.raise" (fun () -> failwith "x") with Failure _ -> ());
      let cost = T.diff ~earlier:before ~later:(T.snapshot ()) in
      match List.assoc_opt "test.raise" (T.spans cost) with
      | None -> Alcotest.fail "span lost on exception"
      | Some st -> Alcotest.(check int) "calls" 1 st.T.calls)

let test_instrumented_backend () =
  let module P =
    (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
  in
  let drbg = Drbg.create ~seed:"telemetry-test" in
  let a = P.rand_g drbg and b = P.rand_g drbg in
  let k = P.rand_scalar drbg in
  T.with_enabled (fun () ->
      let before = T.snapshot () in
      ignore (P.e a b);
      ignore (P.G.pow a k);
      ignore (P.G.mul a b);
      let cost = T.diff ~earlier:before ~later:(T.snapshot ()) in
      let count c = List.assoc c (T.ops cost) in
      Alcotest.(check int) "pairing counted" 1 (count T.Pairing);
      (* pow may internally multiply; at least the op itself is counted. *)
      Alcotest.(check bool) "g_exp counted" true (count T.G_exp >= 1);
      Alcotest.(check bool) "g_mul counted" true (count T.G_mul >= 1))

let test_json_shape () =
  T.with_enabled (fun () ->
      let before = T.snapshot () in
      T.bump T.Abs_sign;
      T.span "test.json" (fun () -> ());
      let cost = T.diff ~earlier:before ~later:(T.snapshot ()) in
      match T.to_json cost with
      | Json.Obj [ ("ops", Json.Obj ops); ("spans", Json.Obj spans) ] ->
        Alcotest.(check bool) "ops has abs_sign" true
          (List.mem_assoc "abs_sign" ops);
        Alcotest.(check bool) "spans has test.json" true
          (List.mem_assoc "test.json" spans)
      | _ -> Alcotest.fail "unexpected to_json shape")

let test_json_encoding () =
  let j =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\n\t\x01");
        ("i", Json.Int (-3));
        ("f", Json.Float 1.5);
        ("nan", Json.Float Float.nan);
        ("arr", Json.Arr [ Json.Bool true; Json.Null ]) ]
  in
  Alcotest.(check string) "rfc8259 escaping"
    "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\",\"i\":-3,\"f\":1.5,\"nan\":null,\"arr\":[true,null]}"
    (Json.to_string j)

let test_float_roundtrip () =
  (* Floats print in shortest exact form: parsing the text recovers the
     identical bits, and simple decimals stay human-readable. *)
  Alcotest.(check string) "0.1 stays short" "0.1" (Json.to_string (Json.Float 0.1));
  Alcotest.(check string) "integral float" "2" (Json.to_string (Json.Float 2.0));
  List.iter
    (fun f ->
      let printed = Json.to_string (Json.Float f) in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s parses back exactly" printed)
        f (float_of_string printed))
    [ 0.1; 1. /. 3.; 1e-300; 1.7976931348623157e308; 4.9e-324;
      3.141592653589793; -0.0; 6.02214076e23 ]

let suite =
  [ ( "telemetry",
      [ Alcotest.test_case "disabled is no-op" `Quick test_disabled_noop;
        Alcotest.test_case "enabled counts" `Quick test_enabled_counts;
        Alcotest.test_case "span accumulates" `Quick test_span_accumulates;
        Alcotest.test_case "span survives exception" `Quick test_span_on_exception;
        Alcotest.test_case "instrumented backend" `Quick test_instrumented_backend;
        Alcotest.test_case "to_json shape" `Quick test_json_shape;
        Alcotest.test_case "json encoding" `Quick test_json_encoding;
        Alcotest.test_case "float round-trip" `Quick test_float_roundtrip ] ) ]
