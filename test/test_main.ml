let () =
  (* [~and_exit:false] so a failing run trips the flight recorder first: in
     CI, ZKQAC_FLIGHT_DIR is set and the dump is uploaded as an artifact. *)
  try
    Alcotest.run ~and_exit:false "zkqac"
      (Test_bigint.suite @ Test_hashing.suite @ Test_group.suite
      @ Test_policy.suite @ Test_abs.suite @ Test_cpabe.suite
      @ Test_core.suite @ Test_extensions.suite @ Test_features.suite
      @ Test_properties.suite @ Test_typea_e2e.suite @ Test_edges.suite
      @ Test_wire.suite @ Test_pool.suite @ Test_telemetry.suite
      @ Test_trace.suite @ Test_adversary.suite @ Test_metrics.suite
      @ Test_bench_diff.suite @ Test_flight.suite @ Test_audit.suite
      @ Test_rte.suite @ Test_server.suite @ Test_durable.suite
      @ Test_crash.suite @ Test_correlation.suite)
  with Alcotest.Test_error ->
    Zkqac_telemetry.Flight.trip ~reason:"test-failure";
    exit 1
