module B = Zkqac_bigint.Bigint
module Group = Zkqac_group
module Drbg = Zkqac_hashing.Drbg

let backends () =
  [ ("mock", Group.Backend.instantiate Group.Backend.Mock);
    ("typea-tiny", Group.Backend.instantiate Group.Backend.Typea_tiny) ]

let test_group_laws (name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let drbg = Drbg.create ~seed:("laws" ^ name) in
  for _ = 1 to 10 do
    let a = P.rand_g drbg and b = P.rand_g drbg and c = P.rand_g drbg in
    Alcotest.(check bool) "assoc" true
      (P.G.equal (P.G.mul (P.G.mul a b) c) (P.G.mul a (P.G.mul b c)));
    Alcotest.(check bool) "comm" true (P.G.equal (P.G.mul a b) (P.G.mul b a));
    Alcotest.(check bool) "id" true (P.G.equal (P.G.mul a P.G.one) a);
    Alcotest.(check bool) "inv" true (P.G.is_one (P.G.mul a (P.G.inv a)));
    Alcotest.(check bool) "order" true (P.G.is_one (P.G.pow a P.order))
  done

let test_pow_laws (name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let drbg = Drbg.create ~seed:("pow" ^ name) in
  for _ = 1 to 5 do
    let a = P.rand_g drbg in
    let x = P.rand_scalar drbg and y = P.rand_scalar drbg in
    Alcotest.(check bool) "pow add" true
      (P.G.equal (P.G.pow a (B.erem (B.add x y) P.order)) (P.G.mul (P.G.pow a x) (P.G.pow a y)));
    Alcotest.(check bool) "pow mul" true
      (P.G.equal (P.G.pow (P.G.pow a x) y) (P.G.pow a (B.erem (B.mul x y) P.order)))
  done

let test_bilinearity (name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let drbg = Drbg.create ~seed:("bilin" ^ name) in
  (* Non-degeneracy on the generator. *)
  Alcotest.(check bool) "non-degenerate" false (P.Gt.is_one (P.e P.G.g P.G.g));
  for _ = 1 to 5 do
    let a = P.rand_scalar drbg and b = P.rand_scalar drbg in
    let ga = P.G.pow P.G.g a and gb = P.G.pow P.G.g b in
    let lhs = P.e ga gb in
    let rhs = P.Gt.pow (P.e P.G.g P.G.g) (B.erem (B.mul a b) P.order) in
    Alcotest.(check bool) "e(g^a,g^b) = e(g,g)^(ab)" true (P.Gt.equal lhs rhs);
    (* Bilinearity in each slot. *)
    let u = P.rand_g drbg and v = P.rand_g drbg and w = P.rand_g drbg in
    Alcotest.(check bool) "left linear" true
      (P.Gt.equal (P.e (P.G.mul u v) w) (P.Gt.mul (P.e u w) (P.e v w)));
    Alcotest.(check bool) "right linear" true
      (P.Gt.equal (P.e u (P.G.mul v w)) (P.Gt.mul (P.e u v) (P.e u w)));
    (* Symmetry (type-1 pairing). *)
    Alcotest.(check bool) "symmetric" true (P.Gt.equal (P.e u v) (P.e v u))
  done

let test_gt_order (name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let drbg = Drbg.create ~seed:("gt" ^ name) in
  let u = P.rand_g drbg and v = P.rand_g drbg in
  let z = P.e u v in
  Alcotest.(check bool) "gt order" true (P.Gt.is_one (P.Gt.pow z P.order));
  Alcotest.(check bool) "gt inv" true (P.Gt.is_one (P.Gt.mul z (P.Gt.inv z)))

let test_serialization (name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let drbg = Drbg.create ~seed:("ser" ^ name) in
  for _ = 1 to 10 do
    let a = P.rand_g drbg in
    let s = P.G.to_bytes a in
    (match P.G.of_bytes s with
     | Some a' -> Alcotest.(check bool) "roundtrip" true (P.G.equal a a')
     | None -> Alcotest.fail "of_bytes failed");
    Alcotest.(check int) "fixed width" (String.length (P.G.to_bytes P.G.g)) (String.length s)
  done;
  Alcotest.(check bool) "garbage rejected" true (P.G.of_bytes "garbage" = None)

let test_hash_to_group (_name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let a = P.G.hash_to "hello" in
  let a' = P.G.hash_to "hello" in
  let b = P.G.hash_to "world" in
  Alcotest.(check bool) "deterministic" true (P.G.equal a a');
  Alcotest.(check bool) "distinct" false (P.G.equal a b);
  Alcotest.(check bool) "in subgroup" true (P.G.is_one (P.G.pow a P.order));
  Alcotest.(check bool) "not identity" false (P.G.is_one a)

(* e_prod must agree with the naive product of individual pairings —
   including pairs with an identity argument (they contribute nothing) and
   the empty product. *)
let test_multi_pairing (name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let drbg = Drbg.create ~seed:("eprod" ^ name) in
  Alcotest.(check bool) "empty product" true (P.Gt.is_one (P.e_prod []));
  let naive ps =
    List.fold_left (fun acc (p, q) -> P.Gt.mul acc (P.e p q)) P.Gt.one ps
  in
  for n = 1 to 6 do
    let ps = List.init n (fun _ -> (P.rand_g drbg, P.rand_g drbg)) in
    Alcotest.(check bool)
      (Printf.sprintf "%d pairs" n)
      true
      (P.Gt.equal (P.e_prod ps) (naive ps))
  done;
  (* Identity in either slot: the pair must drop out, even mixed in with
     non-trivial pairs. *)
  let a = P.rand_g drbg and b = P.rand_g drbg in
  let inf = P.G.one in
  List.iter
    (fun ps ->
      Alcotest.(check bool) "identity pairs drop out" true
        (P.Gt.equal (P.e_prod ps) (naive ps)))
    [ [ (inf, a) ]; [ (a, inf) ];
      [ (a, b); (inf, b); (b, a) ];
      [ (inf, inf); (a, b) ] ];
  (* A pair and its inverse cancel to one. *)
  Alcotest.(check bool) "cancellation" true
    (P.Gt.is_one (P.e_prod [ (a, b); (P.G.inv a, b) ]))

(* Regression: Gt.of_bytes must reject encodings outside the order-r
   subgroup (a raw field element that parses but has x^r <> 1 would let a
   malicious SP smuggle structure into a c_tilde). *)
let test_gt_subgroup_membership (name, m) () =
  let module P = (val m : Group.Pairing_intf.PAIRING) in
  let drbg = Drbg.create ~seed:("gtsub" ^ name) in
  let z = P.e (P.rand_g drbg) (P.rand_g drbg) in
  let len = String.length (P.Gt.to_bytes z) in
  (match P.Gt.of_bytes (P.Gt.to_bytes z) with
   | Some z' -> Alcotest.(check bool) "honest roundtrip" true (P.Gt.equal z z')
   | None -> Alcotest.fail "honest Gt encoding rejected");
  (* A tiny non-identity element: in range for the raw field parser, but
     of multiplicative order dividing p^2 - 1, not r. *)
  let tiny =
    let b = Bytes.make len '\x00' in
    Bytes.set b (len - 1) '\x02';
    Bytes.to_string b
  in
  Alcotest.(check bool) "non-subgroup element rejected" true
    (P.Gt.of_bytes tiny = None);
  Alcotest.(check bool) "out-of-range bytes rejected" true
    (P.Gt.of_bytes (String.make len '\xff') = None)

let test_curve_basics () =
  let params = Lazy.force Zkqac_group.Typea_params.tiny in
  let fp = params.fp in
  Alcotest.(check bool) "generator on curve" true (Curve_check.on_curve fp params.g);
  (* p = 3 (mod 4) *)
  Alcotest.(check bool) "p mod 4" true (B.testbit params.p 0 && B.testbit params.p 1);
  Alcotest.(check bool) "r prime" true (Zkqac_numth.Primes.is_probable_prime params.r);
  Alcotest.(check bool) "p prime" true (Zkqac_numth.Primes.is_probable_prime params.p);
  Alcotest.(check bool) "p+1 = c*r" true
    (B.equal (B.add params.p B.one) (B.mul params.cofactor params.r))

let suite =
  let per_backend =
    List.concat_map
      (fun (name, m) ->
        [ Alcotest.test_case (name ^ " group laws") `Quick (test_group_laws (name, m));
          Alcotest.test_case (name ^ " pow laws") `Quick (test_pow_laws (name, m));
          Alcotest.test_case (name ^ " bilinearity") `Quick (test_bilinearity (name, m));
          Alcotest.test_case (name ^ " gt order") `Quick (test_gt_order (name, m));
          Alcotest.test_case (name ^ " serialization") `Quick (test_serialization (name, m));
          Alcotest.test_case (name ^ " multi-pairing e_prod") `Quick
            (test_multi_pairing (name, m));
          Alcotest.test_case (name ^ " gt subgroup membership") `Quick
            (test_gt_subgroup_membership (name, m));
          Alcotest.test_case (name ^ " hash to group") `Quick (test_hash_to_group (name, m)) ])
      (backends ())
  in
  [ ("group", Alcotest.test_case "typea params" `Quick test_curve_basics :: per_backend) ]
