(* The benchmark regression observatory: schema validation on load, and the
   diff engine's three verdicts on synthetic baselines — a clean rerun
   diffs within noise, an injected slowdown flags as a regression, a
   speedup as an improvement. *)

module Json = Zkqac_telemetry.Json
module Histogram = Zkqac_telemetry.Histogram
module Report = Zkqac_bench.Report
module Diff = Zkqac_bench.Diff

(* A synthetic BENCH.json tree with one experiment. Latency buckets come
   from a real histogram so the shapes match what bench/main.exe writes. *)
let bench ?(schema = "zkqac-bench/3") ~pairing ~vo_bytes ~latencies
    ~minor_words () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) latencies;
  Json.Obj
    [ ("schema", Json.Str schema);
      ("backend", Json.Str "mock");
      ("full", Json.Bool false);
      ( "experiments",
        Json.Arr
          [ Json.Obj
              [ ("name", Json.Str "synthetic");
                ("wall_s", Json.Float 1.0);
                ("ops", Json.Obj [ ("pairing", Json.Int pairing) ]);
                ( "histograms",
                  Json.Obj [ ("sp.query", Histogram.to_json h) ] );
                ( "alloc",
                  Json.Obj
                    [ ( "sp.query",
                        Json.Obj
                          [ ("count", Json.Int (List.length latencies));
                            ("minor_words", Json.Float minor_words);
                            ("promoted_words", Json.Float 0.0);
                            ("major_words", Json.Float 0.0) ] ) ] );
                ( "series",
                  Json.Obj
                    [ ( "rows",
                        Json.Arr
                          [ Json.Obj [ ("vo_bytes", Json.Int vo_bytes) ] ] ) ] )
              ] ] ) ]

(* 40 observations around 1ms with mild spread. *)
let base_lat = List.init 40 (fun i -> 1_000_000 + (i * 9_000))

let baseline =
  bench ~pairing:1000 ~vo_bytes:4096 ~latencies:base_lat ~minor_words:100_000.0
    ()

let verdict_t =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Diff.verdict_text v))
    ( = )

let verdicts r metric =
  List.filter_map
    (fun (f : Diff.finding) ->
      if f.Diff.metric = metric then Some f.Diff.verdict else None)
    r.Diff.findings

let test_within_noise () =
  (* Same code, slightly different measurements: jitter every latency by
     ~2% and the VO by a few bytes. *)
  let current =
    bench ~pairing:1000 ~vo_bytes:4140
      ~latencies:(List.map (fun ns -> ns + (ns / 50)) base_lat)
      ~minor_words:101_000.0 ()
  in
  let r = Diff.run ~baseline ~current () in
  Alcotest.(check int) "no regressions" 0 r.Diff.regressions;
  Alcotest.(check int) "no improvements" 0 r.Diff.improvements;
  Alcotest.(check bool) "compared something" true (r.Diff.findings <> [])

let test_regression () =
  (* 2x pairings, 4x latency, 3x allocation, 50% larger VO. *)
  let current =
    bench ~pairing:2000 ~vo_bytes:6144
      ~latencies:(List.map (fun ns -> ns * 4) base_lat)
      ~minor_words:300_000.0 ()
  in
  let r = Diff.run ~baseline ~current () in
  Alcotest.(check (list verdict_t))
    "pairing regression" [ Diff.Regression ] (verdicts r "ops.pairing");
  Alcotest.(check (list verdict_t))
    "latency regression" [ Diff.Regression ] (verdicts r "latency.sp.query");
  Alcotest.(check (list verdict_t))
    "vo regression" [ Diff.Regression ] (verdicts r "vo_bytes");
  Alcotest.(check (list verdict_t))
    "alloc regression" [ Diff.Regression ] (verdicts r "alloc.sp.query");
  (* The latency verdict must come with a bootstrap CI that clears zero. *)
  (match
     List.find_opt
       (fun (f : Diff.finding) -> f.Diff.metric = "latency.sp.query")
       r.Diff.findings
   with
   | Some { Diff.ci = Some (lo, hi); _ } ->
     Alcotest.(check bool) "ci low > 0" true (lo > 0.0);
     Alcotest.(check bool) "ci ordered" true (lo <= hi)
   | _ -> Alcotest.fail "latency finding lost its confidence interval");
  Alcotest.(check bool) "regressions counted" true (r.Diff.regressions >= 4)

let test_improvement () =
  let current =
    bench ~pairing:500 ~vo_bytes:4096
      ~latencies:(List.map (fun ns -> ns / 4) base_lat)
      ~minor_words:100_000.0 ()
  in
  let r = Diff.run ~baseline ~current () in
  Alcotest.(check (list verdict_t))
    "pairing improvement" [ Diff.Improvement ] (verdicts r "ops.pairing");
  Alcotest.(check (list verdict_t))
    "latency improvement" [ Diff.Improvement ] (verdicts r "latency.sp.query");
  Alcotest.(check int) "no regressions" 0 r.Diff.regressions

let test_deterministic () =
  let current =
    bench ~pairing:1000 ~vo_bytes:4096
      ~latencies:(List.map (fun ns -> ns * 2) base_lat)
      ~minor_words:100_000.0 ()
  in
  let r1 = Diff.run ~baseline ~current () in
  let r2 = Diff.run ~baseline ~current () in
  let cis r =
    List.map (fun (f : Diff.finding) -> f.Diff.ci) r.Diff.findings
  in
  Alcotest.(check bool) "same CIs both runs" true (cis r1 = cis r2)

let test_missing_experiment () =
  let current =
    Json.Obj
      [ ("schema", Json.Str "zkqac-bench/3"); ("experiments", Json.Arr []) ]
  in
  let r = Diff.run ~baseline ~current () in
  Alcotest.(check (list string)) "missing flagged" [ "synthetic" ] r.Diff.missing;
  Alcotest.(check int) "nothing compared" 0 (List.length r.Diff.findings)

let write_tmp json =
  let path = Filename.temp_file "zkqac-bench" ".json" in
  Json.to_file path json;
  path

let test_load_schema_validation () =
  let ok_path = write_tmp baseline in
  (match Report.load_bench ok_path with
   | Ok _ -> ()
   | Error e -> Alcotest.fail ("valid file rejected: " ^ e));
  let old_path =
    write_tmp
      (Json.Obj
         [ ("schema", Json.Str "zkqac-bench/2"); ("experiments", Json.Arr []) ])
  in
  (match Report.load_bench old_path with
   | Ok _ -> ()
   | Error e -> Alcotest.fail ("schema 2 must stay readable: " ^ e));
  let reject json msg =
    let path = write_tmp json in
    match Report.load_bench path with
    | Ok _ -> Alcotest.fail ("accepted " ^ msg)
    | Error _ -> Sys.remove path
  in
  reject
    (Json.Obj [ ("schema", Json.Str "zkqac-bench/99") ])
    "unknown schema version";
  reject (Json.Obj [ ("schema", Json.Int 3) ]) "non-string schema";
  reject (Json.Obj [ ("experiments", Json.Arr []) ]) "missing schema";
  (match Report.load_bench "/nonexistent/bench.json" with
   | Ok _ -> Alcotest.fail "accepted unreadable path"
   | Error _ -> ());
  Sys.remove ok_path;
  Sys.remove old_path

let suite =
  [ ( "bench-diff",
      [ Alcotest.test_case "rerun within noise" `Quick test_within_noise;
        Alcotest.test_case "synthetic regression flags" `Quick test_regression;
        Alcotest.test_case "improvement flags" `Quick test_improvement;
        Alcotest.test_case "bootstrap is deterministic" `Quick
          test_deterministic;
        Alcotest.test_case "missing experiment warned" `Quick
          test_missing_experiment;
        Alcotest.test_case "schema validation on load" `Quick
          test_load_schema_validation ] ) ]
