(* Tests for the Appendix E / Section 9.2 extensions, the parallel pool, the
   TPC-H workload generator and the wire format. *)

module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Pool = Zkqac_parallel.Pool
module Workload = Zkqac_tpch.Workload
module Rows = Zkqac_tpch.Rows
module Wire = Zkqac_util.Wire

let attrs = Attr.set_of_list

module Mock_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Mock_backend)
module Ap2g = Zkqac_core.Ap2g.Make (Mock_backend)
module Vo = Zkqac_core.Vo.Make (Mock_backend)
module Dup = Zkqac_core.Duplicates.Make (Mock_backend)
module Cont = Zkqac_core.Continuous.Make (Mock_backend)

let drbg = Drbg.create ~seed:"extensions"
let msk, mvk = Abs.setup drbg
let roles = [ "RoleA"; "RoleB"; "RoleC" ]
let universe = Universe.create roles
let sk = Abs.keygen drbg msk (Universe.attrs universe)

(* --- duplicates: ZK lifting --- *)

let dup_records =
  [
    ([| 1; 1 |], "a0", "RoleA");
    ([| 1; 1 |], "a1", "RoleA");    (* same key, same policy: merged *)
    ([| 1; 1 |], "b0", "RoleB");    (* same key, new policy: virtual axis *)
    ([| 2; 3 |], "c0", "RoleC");
    ([| 2; 3 |], "c1", "RoleA & RoleB");
    ([| 5; 5 |], "d0", "RoleA");
  ]
  |> List.map (fun (key, v, p) -> Record.make ~key ~value:v ~policy:(Expr.of_string p))

let test_dup_merge () =
  let merged = Dup.merge_same_policy dup_records in
  Alcotest.(check int) "merged count" 5 (List.length merged);
  let r11 =
    List.find
      (fun (r : Record.t) ->
        r.Record.key = [| 1; 1 |] && Expr.equal r.Record.policy (Expr.of_string "RoleA"))
      merged
  in
  Alcotest.(check string) "values concatenated" "a0\na1" r11.Record.value

let test_dup_lift_roundtrip () =
  let space = Keyspace.create ~dims:2 ~depth:3 in
  let lifted_space, lifted = Dup.lift ~space dup_records in
  Alcotest.(check int) "one more dim" 3 (Keyspace.dims lifted_space);
  (* All lifted keys distinct. *)
  let keys = List.map (fun (r : Record.t) -> Array.to_list r.Record.key) lifted in
  Alcotest.(check int) "distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  (* Build the ordinary tree over the lifted records and query. *)
  let tree =
    Ap2g.build drbg ~mvk ~sk ~space:lifted_space ~universe ~pseudo_seed:"dup" lifted
  in
  let base_query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
  let query = Dup.lift_query ~lifted_space base_query in
  let user = attrs [ "RoleA" ] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo with
  | Error e -> Alcotest.failf "lifted verify: %s" (Vo.error_to_string e)
  | Ok results ->
    (* RoleA can read: merged a0a1 record, and d0 -> 2 records. *)
    Alcotest.(check int) "lifted results" 2 (List.length results);
    List.iter
      (fun (r : Record.t) ->
        Alcotest.(check int) "stripped key dims" 2
          (Array.length (Dup.strip_key r.Record.key)))
      results

(* --- duplicates: non-ZK embedded counts --- *)

let test_dup_nonzk () =
  let space = Keyspace.create ~dims:2 ~depth:3 in
  let t = Dup.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"dup2" dup_records in
  let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
  List.iter
    (fun (user, expected) ->
      let vo, _ = Dup.range_vo drbg ~mvk t ~user query in
      match Dup.verify ~mvk ~t_universe:universe ~user ~query vo with
      | Error e -> Alcotest.failf "dup verify: %s" (Vo.error_to_string e)
      | Ok results -> Alcotest.(check int) "dup results" expected (List.length results))
    [ (attrs [ "RoleA" ], 3) (* a0, a1, d0 *); (attrs [ "RoleB" ], 1);
      (attrs [ "RoleC" ], 1); (attrs [], 0) ];
  Alcotest.(check bool) "vo size positive" true
    (Dup.size (fst (Dup.range_vo drbg ~mvk t ~user:(attrs [ "RoleA" ]) query)) > 0)

let test_dup_nonzk_omission () =
  let space = Keyspace.create ~dims:2 ~depth:3 in
  let t = Dup.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"dup3" dup_records in
  let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
  let user = attrs [ "RoleA" ] in
  let vo, _ = Dup.range_vo drbg ~mvk t ~user query in
  (* Dropping one duplicate of a group must break the id-completeness. *)
  let dropped = ref false in
  let vo' =
    List.filter
      (fun e ->
        match e with
        | Dup.Dup_accessible { dup_num; _ } when dup_num > 1 && not !dropped ->
          dropped := true;
          false
        | Dup.Dup_accessible _ | Dup.Dup_inaccessible _ | Dup.Cell_inaccessible _ ->
          true)
      vo
  in
  Alcotest.(check bool) "something dropped" true !dropped;
  (match Dup.verify ~mvk ~t_universe:universe ~user ~query vo' with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate omission must be detected")

(* --- continuous attributes --- *)

let cont_records =
  [ (10, "x10", "RoleA"); (25, "x25", "RoleB"); (30, "x30", "RoleA & RoleC");
    (47, "x47", "RoleC"); (100, "x100", "RoleA") ]
  |> List.map (fun (k, v, p) -> Record.make ~key:[| k |] ~value:v ~policy:(Expr.of_string p))

let cont = Cont.build drbg ~mvk ~sk ~universe cont_records

let test_continuous_build () =
  (* n records + (n+1) gaps. *)
  Alcotest.(check int) "signatures" 11 (Cont.num_signatures cont)

let test_continuous_range () =
  List.iter
    (fun (user, lo, hi, expected) ->
      let vo = Cont.range_vo drbg ~mvk cont ~user ~lo ~hi in
      match Cont.verify_range ~mvk ~t_universe:universe ~user ~lo ~hi vo with
      | Error e -> Alcotest.failf "cont verify [%d,%d]: %s" lo hi (Vo.error_to_string e)
      | Ok results ->
        Alcotest.(check int)
          (Printf.sprintf "cont results [%d,%d]" lo hi)
          expected (List.length results))
    [ (attrs [ "RoleA" ], 0, 200, 2); (attrs [ "RoleA" ], 11, 24, 0);
      (attrs [ "RoleB" ], 20, 30, 1); (attrs [], 0, 200, 0);
      (attrs [ "RoleA"; "RoleC" ], 25, 50, 2); (attrs [ "RoleA" ], 101, 500, 0) ]

let test_continuous_omission () =
  let user = attrs [ "RoleA" ] in
  let vo = Cont.range_vo drbg ~mvk cont ~user ~lo:0 ~hi:200 in
  let dropped = List.filter (function Cont.Rec_accessible _ -> false | _ -> true) vo in
  (match Cont.verify_range ~mvk ~t_universe:universe ~user ~lo:0 ~hi:200 dropped with
   | Error Vo.Completeness_gap -> ()
   | Error e -> Alcotest.failf "unexpected: %s" (Vo.error_to_string e)
   | Ok _ -> Alcotest.fail "continuous omission must be detected")

let test_continuous_equality () =
  let user = attrs [ "RoleA" ] in
  (match Cont.equality_vo drbg ~mvk cont ~user 10 with
   | Cont.Rec_accessible { record; _ } ->
     Alcotest.(check string) "value" "x10" record.Record.value
   | _ -> Alcotest.fail "expected accessible");
  (match Cont.equality_vo drbg ~mvk cont ~user 25 with
   | Cont.Rec_inaccessible _ -> ()
   | _ -> Alcotest.fail "expected inaccessible");
  (match Cont.equality_vo drbg ~mvk cont ~user 26 with
   | Cont.Gap { lo = Some 25; hi = Some 30; _ } -> ()
   | _ -> Alcotest.fail "expected the (25,30) gap");
  match Cont.equality_vo drbg ~mvk cont ~user 1000 with
  | Cont.Gap { lo = Some 100; hi = None; _ } -> ()
  | _ -> Alcotest.fail "expected the trailing gap"

(* --- parallel pool --- *)

let test_pool_matches_sequential () =
  let jobs = List.init 100 (fun i () -> i * i) in
  let seq = Pool.map ~threads:1 jobs in
  List.iter
    (fun threads ->
      Alcotest.(check (list int))
        (Printf.sprintf "threads=%d" threads)
        seq
        (Pool.map ~threads jobs))
    [ 2; 3; 4; 8 ]

let test_pool_parallel_relax () =
  (* The actual Section 8.2 usage: parallel VO construction must agree with
     sequential on the verified result. *)
  let space = Keyspace.create ~dims:2 ~depth:3 in
  let records =
    List.init 8 (fun i ->
        Record.make ~key:[| i; (i * 3) mod 8 |] ~value:(string_of_int i)
          ~policy:(Expr.of_string (if i mod 2 = 0 then "RoleA" else "RoleB")))
  in
  let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"par" records in
  let user = attrs [ "RoleA" ] in
  let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
  let vo_seq, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  let vo_par, _ =
    Ap2g.range_vo ~pmap:(Pool.map ~threads:4) drbg ~mvk tree ~user query
  in
  Alcotest.(check int) "same entries" (List.length vo_seq) (List.length vo_par);
  match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo_par with
  | Ok results -> Alcotest.(check int) "parallel results" 4 (List.length results)
  | Error e -> Alcotest.failf "parallel verify: %s" (Vo.error_to_string e)

(* --- TPC-H workload --- *)

let test_workload_policies () =
  let rng = Prng.create 3 in
  let roles, policies = Workload.gen_policies rng Workload.default_policies in
  Alcotest.(check int) "roles" 10 (List.length roles);
  Alcotest.(check int) "policies" 10 (Array.length policies);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "policy length <= 6" true (Expr.num_leaves p <= 6))
    policies

let test_workload_lineitem () =
  let rng = Prng.create 4 in
  let _, policies = Workload.gen_policies rng Workload.default_policies in
  let space = Keyspace.create ~dims:3 ~depth:3 in
  let records = Workload.lineitem_records rng ~space ~rows:500 ~policies in
  Alcotest.(check bool) "non-empty" true (List.length records > 0);
  Alcotest.(check bool) "merged below rows" true (List.length records <= 500);
  let keys = List.map (fun (r : Record.t) -> Array.to_list r.Record.key) records in
  Alcotest.(check int) "distinct keys" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun (r : Record.t) ->
      Alcotest.(check bool) "valid key" true (Keyspace.valid_key space r.Record.key))
    records

let test_workload_query_fraction () =
  let rng = Prng.create 5 in
  let space = Keyspace.create ~dims:3 ~depth:4 in
  List.iter
    (fun frac ->
      let q = Workload.range_query rng ~space ~frac in
      let ratio =
        float_of_int (Box.volume q) /. float_of_int (Keyspace.num_leaves space)
      in
      Alcotest.(check bool)
        (Printf.sprintf "frac %.4f -> %.4f" frac ratio)
        true
        (ratio >= frac /. 8.0 && ratio <= frac *. 8.0 +. 0.01))
    [ 0.001; 0.01; 0.1; 0.5 ]

let test_workload_user_fraction () =
  let rng = Prng.create 6 in
  let roles, policies = Workload.gen_policies rng Workload.default_policies in
  let user = Workload.user_for_fraction rng ~roles ~policies ~frac:0.2 in
  let sat =
    Array.fold_left (fun a p -> if Expr.eval p user then a + 1 else a) 0 policies
  in
  Alcotest.(check bool) "close to 20%" true (sat >= 0 && sat <= 5)

let test_rows () =
  let rng = Prng.create 7 in
  let ls = Rows.lineitems rng ~n:100 ~max_orderkey:25 in
  Alcotest.(check int) "count" 100 (List.length ls);
  List.iter
    (fun (l : Rows.lineitem) ->
      Alcotest.(check bool) "quantity" true (l.Rows.l_quantity >= 1 && l.Rows.l_quantity <= 50);
      Alcotest.(check bool) "discount" true (l.Rows.l_discount >= 0 && l.Rows.l_discount <= 10);
      Alcotest.(check bool) "shipdate" true
        (l.Rows.l_shipdate >= 0 && l.Rows.l_shipdate < Rows.shipdate_days);
      Alcotest.(check bool) "payload has pipes" true
        (String.contains (Rows.lineitem_payload l) '|'))
    ls;
  let os = Rows.orders rng ~n:30 ~max_orderkey:25 in
  Alcotest.(check int) "orders capped by keys" 25 (List.length os);
  let keys = List.map (fun (o : Rows.order) -> o.Rows.o_orderkey) os in
  Alcotest.(check int) "distinct orderkeys" 25 (List.length (List.sort_uniq compare keys))

(* --- wire format --- *)

let test_wire_roundtrip () =
  let w = Wire.writer () in
  Wire.u8 w 42;
  Wire.u32 w 123456;
  Wire.bytes w "hello";
  Wire.int_array w [| 1; 2; 3 |];
  let data = Wire.contents w in
  let r = Wire.reader data in
  Alcotest.(check int) "u8" 42 (Wire.ru8 r);
  Alcotest.(check int) "u32" 123456 (Wire.ru32 r);
  Alcotest.(check string) "bytes" "hello" (Wire.rbytes r);
  Alcotest.(check (list int)) "array" [ 1; 2; 3 ] (Array.to_list (Wire.rint_array r));
  Alcotest.(check bool) "at end" true (Wire.at_end r);
  Alcotest.check_raises "truncated" Wire.Malformed (fun () ->
      ignore (Wire.ru32 (Wire.reader "ab")))

let test_prng_determinism () =
  let a = Prng.create 9 and b = Prng.create 9 in
  Alcotest.(check bool) "same stream" true
    (List.init 50 (fun _ -> Prng.int a 1000) = List.init 50 (fun _ -> Prng.int b 1000));
  let c = Prng.create 10 in
  Alcotest.(check bool) "different seed" false
    (List.init 50 (fun _ -> Prng.int a 1000) = List.init 50 (fun _ -> Prng.int c 1000))

let suite =
  [
    ( "extensions",
      [
        Alcotest.test_case "dup merge" `Quick test_dup_merge;
        Alcotest.test_case "dup lift (ZK)" `Quick test_dup_lift_roundtrip;
        Alcotest.test_case "dup non-ZK" `Quick test_dup_nonzk;
        Alcotest.test_case "dup non-ZK omission" `Quick test_dup_nonzk_omission;
        Alcotest.test_case "continuous build" `Quick test_continuous_build;
        Alcotest.test_case "continuous range" `Quick test_continuous_range;
        Alcotest.test_case "continuous omission" `Quick test_continuous_omission;
        Alcotest.test_case "continuous equality" `Quick test_continuous_equality;
        Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
        Alcotest.test_case "pool parallel relax" `Quick test_pool_parallel_relax;
        Alcotest.test_case "workload policies" `Quick test_workload_policies;
        Alcotest.test_case "workload lineitem" `Quick test_workload_lineitem;
        Alcotest.test_case "workload query fraction" `Quick test_workload_query_fraction;
        Alcotest.test_case "workload user fraction" `Quick test_workload_user_fraction;
        Alcotest.test_case "tpch rows" `Quick test_rows;
        Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
        Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
      ] );
  ]
