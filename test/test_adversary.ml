(* Adversarial robustness: the fault-injection matrix must reject every
   applicable tampered response with the typed error its attack class
   predicts; every single-byte mutation of an honest response must be
   rejected (exhaustive sweep); reader limits must stop hostile inputs
   before they allocate; and the error taxonomy must round-trip into
   telemetry attributes and distinct CLI exit codes. *)

module VE = Zkqac_util.Verify_error
module Wire = Zkqac_util.Wire
module Trace = Zkqac_telemetry.Trace
module Pool = Zkqac_parallel.Pool
module Monotonic_clock = Zkqac_parallel.Monotonic_clock
module Scenario = Zkqac_adversary.Scenario

module Mock_backend =
  (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)

module Harness = Zkqac_adversary.Harness.Make (Mock_backend)
module Vo = Zkqac_core.Vo.Make (Mock_backend)

(* --- the full attack matrix --- *)

let cell_label (c : Harness.cell) =
  Printf.sprintf "%s x %s" c.scenario.Scenario.name
    (Harness.kind_name c.kind)

let test_attack_matrix () =
  let report = Harness.run ~seed:7 () in
  List.iter
    (fun (c : Harness.cell) ->
      match c.outcome with
      | Harness.Rejected _ | Harness.Not_applicable -> ()
      | Harness.Misclassified e ->
        Alcotest.failf "%s: rejected by unrelated check %s" (cell_label c)
          (VE.code e)
      | Harness.Accepted ->
        Alcotest.failf "%s: tampered response ACCEPTED" (cell_label c))
    report.cells;
  Alcotest.(check bool) "report.ok" true report.ok;
  (* The registry must exercise well more than the 12-scenario floor, and
     every query type must face at least 12 applicable scenarios. *)
  let rejected_names kind =
    List.filter_map
      (fun (c : Harness.cell) ->
        match c.outcome with
        | Harness.Rejected _ when c.kind = kind ->
          Some c.scenario.Scenario.name
        | _ -> None)
      report.cells
    |> List.sort_uniq compare
  in
  List.iter
    (fun kind ->
      (* The envelope fixture is a single sealed blob, not a VO: only the
         Gt-subgroup and wire-format scenarios have a target in it. *)
      let floor = if kind = Harness.Envelope_q then 1 else 12 in
      let n = List.length (rejected_names kind) in
      if n < floor then
        Alcotest.failf "%s: only %d applicable scenarios (need >= %d)"
          (Harness.kind_name kind) n floor)
    Harness.all_kinds;
  (* Regression for the Gt subgroup-membership fix: the non-subgroup
     c_tilde substitution must actually land (not Not_applicable) and be
     caught by the decoder. *)
  match
    List.find_opt
      (fun (c : Harness.cell) ->
        c.kind = Harness.Envelope_q && c.scenario.Scenario.name = "gt-subgroup")
      report.cells
  with
  | Some { outcome = Harness.Rejected _; _ } -> ()
  | Some _ -> Alcotest.fail "gt-subgroup x envelope: not rejected as expected"
  | None -> Alcotest.fail "gt-subgroup x envelope cell missing"

let digest (r : Harness.report) =
  List.map
    (fun (c : Harness.cell) ->
      ( cell_label c,
        match c.outcome with
        | Harness.Rejected e -> "ok:" ^ VE.code e
        | Harness.Misclassified e -> "wrong:" ^ VE.code e
        | Harness.Accepted -> "accepted"
        | Harness.Not_applicable -> "n/a" ))
    r.cells

let test_attack_matrix_deterministic () =
  let a = digest (Harness.run ~seed:42 ()) in
  let b = digest (Harness.run ~seed:42 ()) in
  Alcotest.(check (list (pair string string))) "same seed, same matrix" a b

(* Batched and sequential verification must reach identical verdicts —
   typed error included — on every cell of the matrix: the batched path's
   contract is "same accept set, same errors" (any batch rejection falls
   back to a full sequential pass). Honest fixtures are covered too, via
   the harness self-check, which also runs batched here. *)
let test_batch_sequential_equivalence () =
  let sequential = Harness.run ~seed:23 () in
  let batched = Harness.run ~batched:true ~seed:23 () in
  Alcotest.(check (list (pair string string)))
    "batched matrix == sequential matrix" (digest sequential) (digest batched);
  Alcotest.(check bool) "batched report ok" true batched.ok

let test_single_scenario_filter () =
  let report = Harness.run ~scenario:"truncate" ~seed:1 () in
  Alcotest.(check int)
    "one row only" (List.length Harness.all_kinds)
    (List.length report.cells);
  Alcotest.(check bool) "row ok" true report.ok;
  (match Harness.run ~scenario:"no-such-attack" ~seed:1 () with
  | _ -> Alcotest.fail "unknown scenario must be rejected"
  | exception Invalid_argument _ -> ())

(* --- exhaustive single-byte mutation sweep --- *)

let test_every_byte_mutation_rejected () =
  List.iter
    (fun (kind, bytes, verify) ->
      let name = Harness.kind_name kind in
      (match verify bytes with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s: honest response rejected: %s" name (VE.code e));
      let b = Bytes.of_string bytes in
      for i = 0 to Bytes.length b - 1 do
        let orig = Char.code (Bytes.get b i) in
        List.iter
          (fun m ->
            if m <> orig then begin
              Bytes.set b i (Char.chr m);
              match verify (Bytes.to_string b) with
              | Error _ -> ()
              | Ok () ->
                Alcotest.failf "%s: byte %d set to %#x still verifies" name
                  i m
            end)
          [ orig lxor 0x01; orig lxor 0x80; 0x00; 0xff ];
        Bytes.set b i (Char.chr orig)
      done)
    (Harness.fixtures ())

(* --- reader limits on hostile input --- *)

let expect_verify_error label want = function
  | Error e when want e -> ()
  | Error e -> Alcotest.failf "%s: wrong error %s" label (VE.code e)
  | Ok _ -> Alcotest.failf "%s: accepted" label

let test_limit_input_bytes () =
  let limits = { Wire.default_limits with max_bytes = 64 } in
  expect_verify_error "oversized input"
    (function VE.Limit_exceeded _ -> true | _ -> false)
    (Vo.decode ~limits (String.make 1024 '\x00'))

let test_limit_collection_count () =
  (* A hostile count field must be rejected up front — before the decoder
     allocates anything of that size. Both the huge-count attack (4G
     entries against default limits) and a modest count against a small
     limit go through the same guard. *)
  let patch_count bytes n =
    let b = Bytes.of_string bytes in
    for i = 0 to 3 do
      Bytes.set b i (Char.chr ((n lsr (8 * (3 - i))) land 0xff))
    done;
    Bytes.to_string b
  in
  let _, bytes, _ =
    List.find (fun (k, _, _) -> k = Harness.Range_q) (Harness.fixtures ())
  in
  expect_verify_error "4G-entry count"
    (function VE.Limit_exceeded _ -> true | _ -> false)
    (Vo.decode (patch_count bytes 0xffff_ffff));
  let limits = { Wire.default_limits with max_collection = 4 } in
  expect_verify_error "count above small limit"
    (function VE.Limit_exceeded _ -> true | _ -> false)
    (Vo.decode ~limits (patch_count bytes 1000));
  (* A count that passes the collection bound but exceeds the remaining
     input must fail as malformed, again before allocation. *)
  expect_verify_error "count above remaining input"
    (function VE.Malformed _ -> true | _ -> false)
    (Vo.decode (patch_count bytes 0x000f_ffff))

let test_limit_nesting_depth () =
  let limits = { Wire.default_limits with max_depth = 8 } in
  let r = Wire.reader ~limits "" in
  let rec go n = if n = 0 then () else Wire.nested r (fun () -> go (n - 1)) in
  go 8;
  match go 9 with
  | () -> Alcotest.fail "nesting beyond max_depth must raise"
  | exception Wire.Limit { what; limit } ->
    Alcotest.(check string) "what" "nesting depth" what;
    Alcotest.(check int) "limit" 8 limit

(* --- Verify_error taxonomy: codes, exit codes, telemetry --- *)

let all_errors =
  [
    VE.Completeness_gap;
    VE.Bad_abs_signature "w";
    VE.Bad_aps_signature "w";
    VE.Bad_aps_policy "w";
    VE.Record_outside_query [| 1 |];
    VE.Policy_not_satisfied [| 1 |];
    VE.Malformed { offset = 3 };
    VE.Limit_exceeded { what = "x"; limit = 1 };
    VE.Digest_mismatch "d";
    VE.Envelope_open_failed "e";
    VE.Query_mismatch;
    VE.Invalid_shape "s";
  ]

let test_codes_distinct_and_complete () =
  let codes = List.map VE.code all_errors in
  Alcotest.(check int)
    "codes are distinct" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  Alcotest.(check (list string))
    "all_codes lists every constructor"
    (List.sort compare codes)
    (List.sort compare VE.all_codes)

let test_exit_codes_distinct () =
  let exits = List.map VE.exit_code all_errors in
  Alcotest.(check int)
    "exit codes are distinct"
    (List.length exits)
    (List.length (List.sort_uniq compare exits));
  List.iter
    (fun c ->
      if c < 10 || c > 21 then
        Alcotest.failf "exit code %d outside the reserved [10, 21] band" c)
    exits

let test_as_aps () =
  Alcotest.(check string)
    "abs failure reattributed" "bad-aps-signature"
    (VE.code (VE.as_aps (VE.Bad_abs_signature "w")));
  Alcotest.(check string)
    "other errors pass through" "completeness-gap"
    (VE.code (VE.as_aps VE.Completeness_gap))

let test_verify_error_telemetry_attr () =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
  @@ fun () ->
  let report = Harness.run ~scenario:"flip-value" ~seed:3 () in
  Alcotest.(check bool) "flip-value row ok" true report.ok;
  let recorded =
    List.concat_map (fun (i : Trace.info) -> i.Trace.span_attrs) (Trace.spans ())
    |> List.filter_map (function
         | "verify_error", Trace.Str s -> Some s
         | _ -> None)
  in
  Alcotest.(check bool)
    "rejection recorded as verify_error span attribute" true
    (List.mem "bad-abs-signature" recorded)

(* --- Pool.map_results and the monotonic clock --- *)

let test_map_results_collects_all () =
  let jobs =
    [
      (fun () -> 10);
      (fun () -> failwith "boom-1");
      (fun () -> 30);
      (fun () -> failwith "boom-3");
      (fun () -> 50);
    ]
  in
  let describe = function
    | Ok v -> Printf.sprintf "ok:%d" v
    | Error (Failure msg, _) -> "err:" ^ msg
    | Error (e, _) -> "err:" ^ Printexc.to_string e
  in
  let expected = [ "ok:10"; "err:boom-1"; "ok:30"; "err:boom-3"; "ok:50" ] in
  List.iter
    (fun threads ->
      Alcotest.(check (list string))
        (Printf.sprintf "threads=%d" threads)
        expected
        (List.map describe (Pool.map_results ~threads jobs)))
    [ 1; 2; 4 ]

let test_map_still_raises_lowest () =
  (* The wrapper keeps the old contract: lowest-index failure wins even
     though every job now runs to an outcome. *)
  match
    Pool.map ~threads:2
      [ (fun () -> 1); (fun () -> failwith "first"); (fun () -> failwith "second") ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Pool.Job_failed (Failure msg) ->
    Alcotest.(check string) "lowest index re-raised" "first" msg

let test_monotonic_clock () =
  let t0 = Monotonic_clock.now_ns () in
  let t1 = Monotonic_clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare t1 t0 >= 0);
  Alcotest.(check bool)
    "elapsed_since non-negative" true
    (Monotonic_clock.elapsed_since t0 >= 0.0);
  let v, dt = Pool.time (fun () -> 6 * 7) in
  Alcotest.(check int) "Pool.time result" 42 v;
  Alcotest.(check bool) "Pool.time duration non-negative" true (dt >= 0.0)

let suite =
  [
    ( "adversary",
      [
        Alcotest.test_case "attack matrix all rejected" `Quick
          test_attack_matrix;
        Alcotest.test_case "matrix deterministic in seed" `Quick
          test_attack_matrix_deterministic;
        Alcotest.test_case "batched verdicts match sequential" `Quick
          test_batch_sequential_equivalence;
        Alcotest.test_case "single-scenario filter" `Quick
          test_single_scenario_filter;
        Alcotest.test_case "every single-byte mutation rejected" `Slow
          test_every_byte_mutation_rejected;
        Alcotest.test_case "limit: input bytes" `Quick test_limit_input_bytes;
        Alcotest.test_case "limit: collection count" `Quick
          test_limit_collection_count;
        Alcotest.test_case "limit: nesting depth" `Quick
          test_limit_nesting_depth;
        Alcotest.test_case "error codes distinct and complete" `Quick
          test_codes_distinct_and_complete;
        Alcotest.test_case "exit codes distinct in [10,21]" `Quick
          test_exit_codes_distinct;
        Alcotest.test_case "as_aps reattribution" `Quick test_as_aps;
        Alcotest.test_case "verify_error telemetry attribute" `Quick
          test_verify_error_telemetry_attr;
        Alcotest.test_case "map_results collects every outcome" `Quick
          test_map_results_collects_all;
        Alcotest.test_case "map re-raises lowest index" `Quick
          test_map_still_raises_lowest;
        Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
      ] );
  ]
