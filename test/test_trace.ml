(* The observability layer: histogram bucketing and quantiles, cross-domain
   merging, the JSON parser round-trip, ZKQAC_DOMAINS validation, and a
   golden end-to-end trace — a parallel range query must export valid
   Chrome trace-event JSON with properly nested spans on every domain and
   relax work attributed to at least two worker domains. *)

module Json = Zkqac_telemetry.Json
module Histogram = Zkqac_telemetry.Histogram
module Trace = Zkqac_telemetry.Trace
module Pool = Zkqac_parallel.Pool
module Drbg = Zkqac_hashing.Drbg
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

(* --- histogram buckets --- *)

let test_bucket_boundaries () =
  (* Below 2^sub_bits the mapping is the identity (exact buckets). *)
  for ns = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "small bucket %d" ns)
      ns (Histogram.bucket_of_ns ns)
  done;
  (* Octave boundaries: 16 sub-buckets per power of two. *)
  Alcotest.(check int) "16" 16 (Histogram.bucket_of_ns 16);
  Alcotest.(check int) "31" 31 (Histogram.bucket_of_ns 31);
  Alcotest.(check int) "32" 32 (Histogram.bucket_of_ns 32);
  Alcotest.(check int) "33 shares bucket with 32" 32 (Histogram.bucket_of_ns 33);
  (* Every value must fall inside its bucket's bounds, and the bucket index
     must be monotone in the value. *)
  let prev = ref (-1) in
  List.iter
    (fun ns ->
      let b = Histogram.bucket_of_ns ns in
      let lo, hi = Histogram.bucket_bounds b in
      let v = float_of_int ns in
      if not (lo <= v && v < hi) then
        Alcotest.failf "ns=%d in bucket %d but bounds are [%g, %g)" ns b lo hi;
      if b < !prev then Alcotest.failf "bucket index not monotone at ns=%d" ns;
      prev := b)
    (* Values above 2^53 round when converted to float, so stay below it
       for the exact containment check. *)
    [ 0; 1; 15; 16; 17; 31; 32; 63; 64; 100; 1_000; 12_345; 1_000_000;
      999_999_937; 1 lsl 50 ]

let test_quantiles () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.quantile h 0.5);
  (* Uniform 1..1000 microseconds: quantiles must land within the ~6%
     bucket resolution of the true values. *)
  for i = 1 to 1000 do
    Histogram.record h (i * 1000)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let check_q q expected =
    let v = Histogram.quantile h q in
    let err = Float.abs (v -. expected) /. expected in
    if err > 0.07 then
      Alcotest.failf "p%.0f = %g, expected ~%g (err %.1f%%)" (q *. 100.) v
        expected (err *. 100.)
  in
  check_q 0.5 500_000.;
  check_q 0.95 950_000.;
  check_q 0.99 990_000.;
  let lo = Histogram.quantile h 0.0 and hi = Histogram.quantile h 1.0 in
  if lo > 2_000. then Alcotest.failf "p0 = %g, expected ~1000" lo;
  if Float.abs (hi -. 1_000_000.) /. 1_000_000. > 0.07 then
    Alcotest.failf "p100 = %g, expected ~1000000" hi;
  (* A constant distribution: every quantile inside that value's bucket. *)
  let c = Histogram.create () in
  for _ = 1 to 50 do
    Histogram.record c 5_000
  done;
  let b_lo, b_hi = Histogram.bucket_bounds (Histogram.bucket_of_ns 5_000) in
  List.iter
    (fun q ->
      let v = Histogram.quantile c q in
      if not (b_lo <= v && v <= b_hi) then
        Alcotest.failf "constant q=%g gave %g outside [%g, %g]" q v b_lo b_hi)
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ]

let test_merge_and_diff () =
  let a = Histogram.create () and b = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record a (i * 10)
  done;
  for i = 1 to 50 do
    Histogram.record b (i * 1000)
  done;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 150 (Histogram.count m);
  let sum_ab = (Histogram.mean_ns a *. 100.) +. (Histogram.mean_ns b *. 50.) in
  Alcotest.(check (float 1.0)) "merged mean"
    (sum_ab /. 150.) (Histogram.mean_ns m)

let test_cross_domain_registry () =
  let stage = "test.xdom" in
  let before = Histogram.snapshot () in
  let worker () =
    for i = 1 to 100 do
      Histogram.note stage (i * 100)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  worker ();
  let d = Histogram.diff ~earlier:before ~later:(Histogram.snapshot ()) in
  match List.assoc_opt stage d with
  | None -> Alcotest.fail "stage missing after cross-domain recording"
  | Some h ->
    (* 4 worker domains + the main domain, 100 observations each. *)
    Alcotest.(check int) "cross-domain count" 500 (Histogram.count h)

(* --- JSON parser --- *)

let json = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Json.to_string j)) ( = )

let parse_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_parse () =
  Alcotest.(check json) "null" Json.Null (parse_ok " null ");
  Alcotest.(check json) "int" (Json.Int (-42)) (parse_ok "-42");
  Alcotest.(check json) "float" (Json.Float 1.5) (parse_ok "1.5");
  Alcotest.(check json) "exp is float" (Json.Float 100.) (parse_ok "1e2");
  Alcotest.(check json) "escapes" (Json.Str "a\"b\\c\nd")
    (parse_ok {|"a\"b\\c\nd"|});
  Alcotest.(check json) "unicode escape" (Json.Str "A") (parse_ok {|"A"|});
  Alcotest.(check json) "surrogate pair" (Json.Str "\xf0\x9f\x98\x80")
    (parse_ok {|"😀"|});
  Alcotest.(check json) "nested"
    (Json.Obj [ ("a", Json.Arr [ Json.Int 1; Json.Bool true ]); ("b", Json.Obj []) ])
    (parse_ok {| {"a": [1, true], "b": {}} |});
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error on %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "nul"; {|"unterminated|}; "1 2"; {|{"a" 1}|}; "--3" ]

let test_json_roundtrip () =
  let samples =
    [ Json.Null;
      Json.Bool false;
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float 1.5;
      Json.Float (1. /. 3.);
      Json.Float 1e-300;
      Json.Float 6.02214076e23;
      Json.Str "sp\u{00e9}cial \"chars\" \t\n";
      Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Str "x" ];
      Json.Obj
        [ ("nested", Json.Obj [ ("deep", Json.Arr [ Json.Null ]) ]);
          ("f", Json.Float 3.141592653589793) ] ]
  in
  List.iter
    (fun j ->
      Alcotest.(check json)
        (Printf.sprintf "round-trip %s" (Json.to_string j))
        j
        (parse_ok (Json.to_string j)))
    samples

(* --- ZKQAC_DOMAINS --- *)

let test_pool_size_env () =
  let set v = Unix.putenv "ZKQAC_DOMAINS" v in
  Fun.protect ~finally:(fun () -> set "")
  @@ fun () ->
  set "";
  Alcotest.(check int) "blank means default" (Pool.available_cores ())
    (Pool.size ());
  set "8";
  Alcotest.(check int) "explicit" 8 (Pool.size ());
  set " 3 ";
  Alcotest.(check int) "trimmed" 3 (Pool.size ());
  List.iter
    (fun bad ->
      set bad;
      match Pool.size () with
      | n -> Alcotest.failf "ZKQAC_DOMAINS=%S accepted as %d" bad n
      | exception Invalid_argument _ -> ())
    [ "0"; "-2"; "1025"; "four"; "3.5" ]

(* --- golden trace: parallel range query --- *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)

let test_query_trace () =
  let drbg = Drbg.create ~seed:"trace-test" in
  let msk, mvk = Abs.setup drbg in
  let universe = Universe.create [ "RoleA"; "RoleB" ] in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  let space = Keyspace.create ~dims:2 ~depth:2 in
  let records =
    [ ([| 0; 0 |], "RoleA"); ([| 1; 2 |], "RoleB"); ([| 2; 1 |], "RoleB");
      ([| 3; 3 |], "RoleA & RoleB") ]
    |> List.map (fun (key, p) ->
           Record.make ~key ~value:"v" ~policy:(Expr.of_string p))
  in
  let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"s" records in
  let user = Attr.set_of_list [ "RoleA" ] in
  let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 3; 3 |] in
  Trace.enable ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
  @@ fun () ->
  let vo, st =
    Ap2g.range_vo ~pmap:(Pool.map ~threads:4) drbg ~mvk tree ~user query
  in
  Alcotest.(check bool) "query relaxed something" true (st.Ap2g.relax_calls > 1);
  ignore vo;
  Trace.disable ();
  let spans = Trace.spans () in
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : Trace.info) -> Hashtbl.replace by_id s.span_id s) spans;
  (* The query root exists and relax spans reach it through parent links. *)
  let root =
    match List.filter (fun (s : Trace.info) -> s.Trace.span_name = "sp.query") spans with
    | [ r ] -> r
    | l -> Alcotest.failf "expected one sp.query root, got %d" (List.length l)
  in
  Alcotest.(check int) "root is a root" 0 root.Trace.span_parent;
  let relaxes =
    List.filter (fun (s : Trace.info) -> s.Trace.span_name = "abs.relax") spans
  in
  Alcotest.(check int) "one abs.relax per relax call" st.Ap2g.relax_calls
    (List.length relaxes);
  let rec root_of (s : Trace.info) =
    if s.Trace.span_parent = 0 then s
    else root_of (Hashtbl.find by_id s.Trace.span_parent)
  in
  List.iter
    (fun (s : Trace.info) ->
      Alcotest.(check int) "relax chains up to the query root"
        root.Trace.span_id (root_of s).Trace.span_id)
    relaxes;
  (* Relax work is attributed to at least two distinct worker domains. *)
  let relax_tids =
    List.sort_uniq compare (List.map (fun (s : Trace.info) -> s.Trace.span_tid) relaxes)
  in
  if List.length relax_tids < 2 then
    Alcotest.failf "relax spans on %d domain(s), expected >= 2"
      (List.length relax_tids);
  (* Spans on one domain must nest properly: no partial overlap. *)
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (s : Trace.info) ->
      Hashtbl.replace by_tid s.Trace.span_tid
        (s :: (try Hashtbl.find by_tid s.Trace.span_tid with Not_found -> [])))
    spans;
  Hashtbl.iter
    (fun tid ss ->
      let ss =
        List.sort
          (fun (a : Trace.info) b -> Int64.compare a.Trace.start_ns b.Trace.start_ns)
          ss
      in
      let stack = ref [] in
      List.iter
        (fun (s : Trace.info) ->
          let e = Int64.add s.Trace.start_ns s.Trace.dur_ns in
          while !stack <> [] && Int64.compare (List.hd !stack) s.Trace.start_ns <= 0 do
            stack := List.tl !stack
          done;
          (match !stack with
           | top :: _ when Int64.compare e top > 0 ->
             Alcotest.failf "tid %d: span %s overlaps its enclosing span" tid
               s.Trace.span_name
           | _ -> ());
          stack := e :: !stack)
        ss)
    by_tid;
  (* The Chrome export is valid JSON with well-formed complete events. *)
  let exported = parse_ok (Json.to_string (Trace.chrome_json ())) in
  let events =
    match exported with
    | Json.Obj fields ->
      (match List.assoc_opt "traceEvents" fields with
       | Some (Json.Arr evs) -> evs
       | _ -> Alcotest.fail "traceEvents missing")
    | _ -> Alcotest.fail "chrome trace is not an object"
  in
  let x_events =
    List.filter
      (fun e ->
        match e with
        | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.Str "X")
        | _ -> false)
      events
  in
  Alcotest.(check int) "one X event per span" (List.length spans)
    (List.length x_events);
  List.iter
    (fun e ->
      match e with
      | Json.Obj f ->
        let has k = List.mem_assoc k f in
        if not (has "name" && has "ts" && has "dur" && has "pid" && has "tid")
        then Alcotest.fail "X event missing a required field";
        (match List.assoc "ts" f with
         | Json.Float ts when ts >= 0.0 -> ()
         | Json.Int ts when ts >= 0 -> ()
         | _ -> Alcotest.fail "X event ts is not a non-negative number")
      | _ -> Alcotest.fail "X event is not an object")
    x_events

let test_trace_capacity () =
  Trace.enable ~capacity:10 ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
  @@ fun () ->
  for _ = 1 to 25 do
    Trace.with_span "cap.test" (fun _ -> ())
  done;
  Alcotest.(check int) "capacity respected" 10 (Trace.span_count ());
  Alcotest.(check int) "overflow counted" 15 (Trace.dropped ());
  (match Trace.enable ~capacity:0 () with
   | () -> Alcotest.fail "capacity 0 accepted"
   | exception Invalid_argument _ -> ());
  Trace.enable ~capacity:10 ();
  Alcotest.(check int) "reset clears" 0 (Trace.span_count ())

(* The tail sampler's two load-bearing guarantees: every span knows its
   tree's root id without walking parent links, and the close hook sees
   every close even after the export ring's retention budget is spent. *)
let test_root_and_close_hook () =
  Trace.enable ~capacity:4 ();
  let closed = ref [] in
  Trace.set_close_hook (Some (fun info -> closed := info :: !closed));
  Fun.protect ~finally:(fun () ->
      Trace.set_close_hook None;
      Trace.disable ();
      Trace.reset ())
  @@ fun () ->
  for _ = 1 to 3 do
    Trace.with_span "outer" (fun outer ->
        Trace.with_span ~parent:outer "inner" (fun _ -> ()))
  done;
  Trace.disable ();
  (* Retention saturated at 4 spans, but the hook saw all 6 closes. *)
  Alcotest.(check int) "retention budget respected" 4 (Trace.span_count ());
  Alcotest.(check int) "close hook fired past the budget" 6
    (List.length !closed);
  let outers =
    List.filter (fun s -> s.Trace.span_name = "outer") !closed
  and inners =
    List.filter (fun s -> s.Trace.span_name = "inner") !closed
  in
  Alcotest.(check int) "three outer closes" 3 (List.length outers);
  Alcotest.(check int) "three inner closes" 3 (List.length inners);
  List.iter
    (fun (o : Trace.info) ->
      Alcotest.(check int) "a root's span_root is itself" o.Trace.span_id
        o.Trace.span_root)
    outers;
  List.iter
    (fun (i : Trace.info) ->
      (* Each inner's root is its own outer — join by parent id. *)
      let o =
        List.find (fun o -> o.Trace.span_id = i.Trace.span_parent) outers
      in
      Alcotest.(check int) "child inherits its tree's root id"
        o.Trace.span_id i.Trace.span_root)
    inners

let suite =
  [ ( "trace",
      [ Alcotest.test_case "histogram bucket boundaries" `Quick
          test_bucket_boundaries;
        Alcotest.test_case "histogram quantiles" `Quick test_quantiles;
        Alcotest.test_case "histogram merge/diff" `Quick test_merge_and_diff;
        Alcotest.test_case "cross-domain histogram registry" `Quick
          test_cross_domain_registry;
        Alcotest.test_case "json parser" `Quick test_json_parse;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "ZKQAC_DOMAINS validation" `Quick test_pool_size_env;
        Alcotest.test_case "golden query trace" `Quick test_query_trace;
        Alcotest.test_case "trace capacity bound" `Quick test_trace_capacity;
        Alcotest.test_case "span_root and close hook" `Quick
          test_root_and_close_hook ] )
  ]
