module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module VE = Zkqac_util.Verify_error
module Wire = Zkqac_util.Wire
module Audit = Zkqac_audit.Audit
module Json = Zkqac_telemetry.Json
module Flight = Zkqac_telemetry.Flight
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Zkqac_core.Vo.Make (P)
  module Equality = Zkqac_core.Equality.Make (P)
  module Ap2g = Zkqac_core.Ap2g.Make (P)
  module Ap2kd = Zkqac_core.Ap2kd.Make (P)
  module Join = Zkqac_core.Join.Make (P)
  module Envelope = Zkqac_cpabe.Envelope.Make (P)

  type kind = Equality_q | Range_q | Kd_q | Join_q | Envelope_q

  let all_kinds = [ Equality_q; Range_q; Kd_q; Join_q; Envelope_q ]

  let kind_name = function
    | Equality_q -> "equality"
    | Range_q -> "range"
    | Kd_q -> "kd"
    | Join_q -> "join"
    | Envelope_q -> "envelope"

  type outcome =
    | Rejected of VE.t
    | Misclassified of VE.t
    | Accepted
    | Not_applicable

  type cell = { scenario : Scenario.t; kind : kind; outcome : outcome }
  type report = { seed : int; cells : cell list; ok : bool }

  (* A target bundles one honest query exchange: the encoded VO, the
     decode-and-verify closure the client would run, and the typed-level
     tamper function (tampers are applied to the decoded structure and
     re-encoded; format tampers work on the bytes directly). *)
  type target = {
    kind : kind;
    bytes : string;
    verify : string -> (unit, VE.t) result;
    verify_batched : string -> (unit, VE.t) result;
        (* same check, but through the batched verification path (weights
           derived from the bytes under test, like the CLI does) — must
           reach the same verdict on every input, tampered or honest *)
    tamper : Prng.t -> string -> string option;
  }

  (* --- shared tamper helpers --- *)

  let flip_string prng s =
    if String.length s = 0 then "?"
    else begin
      let b = Bytes.of_string s in
      let i = Prng.int prng (Bytes.length b) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      Bytes.to_string b
    end

  let shrink_box box =
    let dims = Array.length box.Box.lo in
    let rec find d =
      if d = dims then None
      else if box.Box.hi.(d) - box.Box.lo.(d) >= 2 then Some d
      else find (d + 1)
    in
    match find 0 with
    | None -> None
    | Some d ->
      let extent = box.Box.hi.(d) - box.Box.lo.(d) in
      let hi =
        Array.mapi
          (fun i h -> if i = d then h - (extent / 2) else h)
          box.Box.hi
      in
      Some (Box.make ~lo:box.Box.lo ~hi)

  let indices p arr =
    let out = ref [] in
    Array.iteri (fun i e -> if p e then out := i :: !out) arr;
    Array.of_list (List.rev !out)

  (* Drop every element of [entries] whose sort key falls in the upper half
     of the sorted order — the "prune a subtree and pretend it was never
     there" move. Keeps at least one entry and drops at least one. *)
  let drop_upper_half ~key entries =
    let n = List.length entries in
    if n < 2 then None
    else begin
      let sorted = List.stable_sort (fun a b -> compare (key a) (key b)) entries in
      let kept = List.filteri (fun i _ -> i < (n + 1) / 2) sorted in
      Some (List.filter (fun e -> List.memq e kept) entries)
    end

  (* --- typed tampers over a plain Vo.t (equality / range / kd) --- *)

  let vo_tamper ~alt_policy prng name (vo : Vo.t) : Vo.t option =
    let arr = Array.of_list vo in
    let n = Array.length arr in
    let acc = indices (function Vo.Accessible _ -> true | _ -> false) arr in
    let inacc =
      indices
        (function
          | Vo.Inaccessible_leaf _ | Vo.Inaccessible_node _ -> true
          | Vo.Accessible _ -> false)
        arr
    in
    let inleaf = indices (function Vo.Inaccessible_leaf _ -> true | _ -> false) arr in
    let result () = Some (Array.to_list arr) in
    match name with
    | "flip-value" ->
      if Array.length acc = 0 then None
      else begin
        let i = Prng.pick prng acc in
        (match arr.(i) with
         | Vo.Accessible { region; record; app } ->
           let record =
             Record.make ~key:record.Record.key
               ~value:(flip_string prng record.Record.value)
               ~policy:record.Record.policy
           in
           arr.(i) <- Vo.Accessible { region; record; app }
         | _ -> assert false);
        result ()
      end
    | "swap-app" ->
      if Array.length acc < 2 then None
      else begin
        let i = acc.(0) and j = acc.(1) in
        (match (arr.(i), arr.(j)) with
         | ( Vo.Accessible ({ app = a; _ } as ea),
             Vo.Accessible ({ app = b; _ } as eb) ) ->
           arr.(i) <- Vo.Accessible { ea with app = b };
           arr.(j) <- Vo.Accessible { eb with app = a }
         | _ -> assert false);
        result ()
      end
    | "forge-pseudo" ->
      if Array.length acc = 0 then None
      else begin
        let i = Prng.pick prng acc in
        (match arr.(i) with
         | Vo.Accessible { region; record; app } ->
           arr.(i) <-
             Vo.Inaccessible_leaf
               {
                 region;
                 key = record.Record.key;
                 value_hash = Record.value_hash record.Record.value;
                 aps = app;
               }
         | _ -> assert false);
        result ()
      end
    | "replay-aps" ->
      if Array.length inacc < 2 then None
      else begin
        let i = inacc.(0) and j = inacc.(1) in
        let aps_of = function
          | Vo.Inaccessible_leaf { aps; _ } | Vo.Inaccessible_node { aps; _ } ->
            aps
          | Vo.Accessible _ -> assert false
        in
        let with_aps e aps =
          match e with
          | Vo.Inaccessible_leaf l -> Vo.Inaccessible_leaf { l with aps }
          | Vo.Inaccessible_node nd -> Vo.Inaccessible_node { nd with aps }
          | Vo.Accessible _ -> assert false
        in
        let ai = aps_of arr.(i) and aj = aps_of arr.(j) in
        arr.(i) <- with_aps arr.(i) aj;
        arr.(j) <- with_aps arr.(j) ai;
        result ()
      end
    | "value-hash-lie" ->
      if Array.length inleaf = 0 then None
      else begin
        let i = Prng.pick prng inleaf in
        (match arr.(i) with
         | Vo.Inaccessible_leaf l ->
           arr.(i) <-
             Vo.Inaccessible_leaf
               { l with value_hash = flip_string prng l.value_hash }
         | _ -> assert false);
        result ()
      end
    | "tamper-policy" ->
      if Array.length acc = 0 then None
      else begin
        let i = Prng.pick prng acc in
        (match arr.(i) with
         | Vo.Accessible { region; record; app } ->
           let record =
             Record.make ~key:record.Record.key ~value:record.Record.value
               ~policy:alt_policy
           in
           arr.(i) <- Vo.Accessible { region; record; app }
         | _ -> assert false);
        result ()
      end
    | "drop-entry" ->
      if n < 2 then None
      else begin
        let i = Prng.int prng n in
        Some (List.filteri (fun j _ -> j <> i) (Array.to_list arr))
      end
    | "prune-subtree" ->
      drop_upper_half
        ~key:(fun e -> Array.to_list (Vo.entry_region e).Box.lo)
        (Array.to_list arr)
    | "shrink-boundary" ->
      let shrinkable = ref [] in
      Array.iteri
        (fun i e ->
          match e with
          | Vo.Inaccessible_leaf { region; _ } | Vo.Inaccessible_node { region; _ }
            -> (
              match shrink_box region with
              | Some b -> shrinkable := (i, b) :: !shrinkable
              | None -> ())
          | Vo.Accessible _ -> ())
        arr;
      (match !shrinkable with
       | [] -> None
       | candidates ->
         let i, box = Prng.pick prng (Array.of_list candidates) in
         (match arr.(i) with
          | Vo.Inaccessible_leaf l ->
            arr.(i) <- Vo.Inaccessible_leaf { l with region = box }
          | Vo.Inaccessible_node nd ->
            arr.(i) <- Vo.Inaccessible_node { nd with region = box }
          | Vo.Accessible _ -> assert false);
         result ())
    | "duplicate-entry" ->
      if n = 0 then None
      else begin
        let i = Prng.int prng n in
        Some (Array.to_list arr @ [ arr.(i) ])
      end
    | _ -> None

  (* --- typed tampers over a Join.t --- *)

  let join_tamper ~alt_policy prng name (vo : Join.t) : Join.t option =
    let arr = Array.of_list vo in
    let n = Array.length arr in
    let pairs = indices (function Join.Pair _ -> true | _ -> false) arr in
    let sides =
      indices (function Join.R_side _ | Join.S_side _ -> true | _ -> false) arr
    in
    let side_entry = function
      | Join.R_side e | Join.S_side e -> e
      | Join.Pair _ -> assert false
    in
    let rewrap original e =
      match original with
      | Join.R_side _ -> Join.R_side e
      | Join.S_side _ -> Join.S_side e
      | Join.Pair _ -> assert false
    in
    let entry_region = function
      | Join.Pair { r_record; _ } -> Box.of_point r_record.Record.key
      | Join.R_side e | Join.S_side e -> Vo.entry_region e
    in
    let result () = Some (Array.to_list arr) in
    match name with
    | "flip-value" ->
      if Array.length pairs = 0 then None
      else begin
        let i = Prng.pick prng pairs in
        (match arr.(i) with
         | Join.Pair p ->
           let r_record =
             Record.make ~key:p.r_record.Record.key
               ~value:(flip_string prng p.r_record.Record.value)
               ~policy:p.r_record.Record.policy
           in
           arr.(i) <- Join.Pair { p with r_record }
         | _ -> assert false);
        result ()
      end
    | "swap-app" ->
      if Array.length pairs = 0 then None
      else begin
        let i = Prng.pick prng pairs in
        (match arr.(i) with
         | Join.Pair p ->
           arr.(i) <- Join.Pair { p with r_app = p.s_app; s_app = p.r_app }
         | _ -> assert false);
        result ()
      end
    | "forge-pseudo" ->
      if Array.length pairs = 0 then None
      else begin
        let i = Prng.pick prng pairs in
        (match arr.(i) with
         | Join.Pair { r_record; r_app; _ } ->
           arr.(i) <-
             Join.R_side
               (Vo.Inaccessible_leaf
                  {
                    region = Box.of_point r_record.Record.key;
                    key = r_record.Record.key;
                    value_hash = Record.value_hash r_record.Record.value;
                    aps = r_app;
                  })
         | _ -> assert false);
        result ()
      end
    | "replay-aps" ->
      if Array.length sides < 2 then None
      else begin
        let i = sides.(0) and j = sides.(1) in
        let aps_of e =
          match side_entry e with
          | Vo.Inaccessible_leaf { aps; _ } | Vo.Inaccessible_node { aps; _ } ->
            aps
          | Vo.Accessible _ -> assert false
        in
        let with_aps e aps =
          let inner =
            match side_entry e with
            | Vo.Inaccessible_leaf l -> Vo.Inaccessible_leaf { l with aps }
            | Vo.Inaccessible_node nd -> Vo.Inaccessible_node { nd with aps }
            | Vo.Accessible _ -> assert false
          in
          rewrap e inner
        in
        let ai = aps_of arr.(i) and aj = aps_of arr.(j) in
        arr.(i) <- with_aps arr.(i) aj;
        arr.(j) <- with_aps arr.(j) ai;
        result ()
      end
    | "value-hash-lie" ->
      let leaves =
        indices
          (function
            | (Join.R_side (Vo.Inaccessible_leaf _) |
               Join.S_side (Vo.Inaccessible_leaf _)) ->
              true
            | _ -> false)
          arr
      in
      if Array.length leaves = 0 then None
      else begin
        let i = Prng.pick prng leaves in
        let inner =
          match side_entry arr.(i) with
          | Vo.Inaccessible_leaf l ->
            Vo.Inaccessible_leaf
              { l with value_hash = flip_string prng l.value_hash }
          | _ -> assert false
        in
        arr.(i) <- rewrap arr.(i) inner;
        result ()
      end
    | "tamper-policy" ->
      if Array.length pairs = 0 then None
      else begin
        let i = Prng.pick prng pairs in
        (match arr.(i) with
         | Join.Pair p ->
           let r_record =
             Record.make ~key:p.r_record.Record.key
               ~value:p.r_record.Record.value ~policy:alt_policy
           in
           arr.(i) <- Join.Pair { p with r_record }
         | _ -> assert false);
        result ()
      end
    | "drop-entry" ->
      if n < 2 then None
      else begin
        let i = Prng.int prng n in
        Some (List.filteri (fun j _ -> j <> i) (Array.to_list arr))
      end
    | "prune-subtree" ->
      drop_upper_half
        ~key:(fun e -> Array.to_list (entry_region e).Box.lo)
        (Array.to_list arr)
    | "shrink-boundary" ->
      let shrinkable = ref [] in
      Array.iteri
        (fun i e ->
          match e with
          | Join.R_side _ | Join.S_side _ -> (
            match side_entry e with
            | Vo.Inaccessible_node { region; _ }
            | Vo.Inaccessible_leaf { region; _ } -> (
              match shrink_box region with
              | Some b -> shrinkable := (i, b) :: !shrinkable
              | None -> ())
            | Vo.Accessible _ -> ())
          | Join.Pair _ -> ())
        arr;
      (match !shrinkable with
       | [] -> None
       | candidates ->
         let i, box = Prng.pick prng (Array.of_list candidates) in
         let inner =
           match side_entry arr.(i) with
           | Vo.Inaccessible_leaf l -> Vo.Inaccessible_leaf { l with region = box }
           | Vo.Inaccessible_node nd ->
             Vo.Inaccessible_node { nd with region = box }
           | Vo.Accessible _ -> assert false
         in
         arr.(i) <- rewrap arr.(i) inner;
         result ())
    | "duplicate-entry" ->
      (* Duplicating an APS entry would pass: union coverage is insensitive
         to repetition. Duplicating a Pair smuggles a result row in twice —
         exactly what the distinct-pair-keys check exists to stop. *)
      if Array.length pairs = 0 then None
      else begin
        let i = Prng.pick prng pairs in
        Some (Array.to_list arr @ [ arr.(i) ])
      end
    | _ -> None

  (* --- wire-level tampers, uniform over every query type --- *)

  let patch_count bytes f =
    let n =
      (Char.code bytes.[0] lsl 24)
      lor (Char.code bytes.[1] lsl 16)
      lor (Char.code bytes.[2] lsl 8)
      lor Char.code bytes.[3]
    in
    let n' = f n in
    let b = Bytes.of_string bytes in
    Bytes.set b 0 (Char.chr ((n' lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((n' lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((n' lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (n' land 0xff));
    Bytes.to_string b

  let format_tamper prng name bytes =
    let len = String.length bytes in
    if len < 5 then None
    else begin
      match name with
      | "bit-flip" ->
        let i = Prng.int prng len in
        let bit = 1 lsl Prng.int prng 8 in
        let b = Bytes.of_string bytes in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
        Some (Bytes.to_string b)
      | "truncate" ->
        let k = 1 + Prng.int prng (min 16 (len - 1)) in
        Some (String.sub bytes 0 (len - k))
      | "length-inflate" -> Some (patch_count bytes (fun n -> n + 1))
      | "huge-count" -> Some (patch_count bytes (fun _ -> 0xffff_ffff))
      | "trailing-garbage" ->
        Some (bytes ^ Prng.bytes prng (1 + Prng.int prng 8))
      | _ -> None
    end

  (* --- fixtures: one small honest exchange per query type --- *)

  let role_a = "RoleA"
  let role_b = "RoleB"
  let alt_policy = Expr.of_string "RoleA | RoleB"
  let user = Attr.set_of_list [ role_a ]

  let keys ~seed universe =
    let drbg = Drbg.create ~seed in
    let msk, mvk = Abs.setup drbg in
    let sk = Abs.keygen drbg msk (Universe.attrs universe) in
    (drbg, mvk, sk)

  let rec_ key value policy =
    Record.make ~key ~value ~policy:(Expr.of_string policy)

  let batch_drbg bytes = Drbg.create ~seed:("zkqac-attack-batch:" ^ bytes)

  let vo_target ~kind ~verify_vo vo =
    let check batch bytes =
      match Vo.decode bytes with
      | Error e -> Error e
      | Ok vo -> (
        match verify_vo ?batch vo with Error e -> Error e | Ok _ -> Ok ())
    in
    {
      kind;
      bytes = Vo.to_bytes vo;
      verify = check None;
      verify_batched = (fun bytes -> check (Some (batch_drbg bytes)) bytes);
      tamper =
        (fun prng name ->
          Option.map Vo.to_bytes (vo_tamper ~alt_policy prng name vo));
    }

  let make_equality () =
    let space = Keyspace.create ~dims:1 ~depth:2 in
    let universe = Universe.create [ role_a; role_b ] in
    let drbg, mvk, sk = keys ~seed:"zkqac-attack:eq" universe in
    let records =
      [
        rec_ [| 0 |] "pub-0" "RoleA";
        rec_ [| 1 |] "pub-1" "RoleA";
        rec_ [| 2 |] "sec-2" "RoleB";
        rec_ [| 3 |] "sec-3" "RoleB";
      ]
    in
    let t =
      Equality.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"eq-pseudo"
        records
    in
    let query = Keyspace.whole space in
    let vo, _ = Equality.range_vo drbg ~mvk t ~user query in
    vo_target ~kind:Equality_q
      ~verify_vo:(Equality.verify_range ~mvk ~t_universe:universe ~user ~query)
      vo

  let make_range () =
    let space = Keyspace.create ~dims:2 ~depth:2 in
    let universe = Universe.create [ role_a; role_b ] in
    let drbg, mvk, sk = keys ~seed:"zkqac-attack:rg" universe in
    let records =
      [
        rec_ [| 0; 0 |] "pub-00" "RoleA";
        rec_ [| 0; 1 |] "pub-01" "RoleA";
        rec_ [| 1; 0 |] "sec-10" "RoleB";
        rec_ [| 3; 3 |] "sec-33" "RoleB";
      ]
    in
    let t =
      Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"rg-pseudo" records
    in
    let query = Keyspace.whole space in
    let vo, _ = Ap2g.range_vo drbg ~mvk t ~user query in
    vo_target ~kind:Range_q
      ~verify_vo:(fun ?batch vo ->
        Ap2g.verify ?batch ~mvk ~t_universe:universe ~user ~query vo)
      vo

  let make_kd () =
    let space = Keyspace.create ~dims:2 ~depth:2 in
    let universe = Universe.create [ role_a; role_b ] in
    let drbg, mvk, sk = keys ~seed:"zkqac-attack:kd" universe in
    (* RoleB records in opposite corners, each paired with a nearby RoleA
       record, so the kd tree cannot merge the inaccessible area into one
       subtree: the VO then carries two inaccessible leaf regions, giving
       the APS-replay and value-hash scenarios targets in the kd matrix
       column. *)
    let records =
      [
        rec_ [| 0; 0 |] "pub-00" "RoleA";
        rec_ [| 0; 1 |] "sec-01" "RoleB";
        rec_ [| 3; 3 |] "pub-33" "RoleA";
        rec_ [| 3; 2 |] "sec-32" "RoleB";
      ]
    in
    let t = Ap2kd.build drbg ~mvk ~sk ~space ~universe records in
    let query = Keyspace.whole space in
    let vo, _ = Ap2kd.range_vo drbg ~mvk t ~user query in
    vo_target ~kind:Kd_q
      ~verify_vo:(Ap2kd.verify ~mvk ~t_universe:universe ~user ~query)
      vo

  let make_join () =
    let space = Keyspace.create ~dims:1 ~depth:2 in
    let universe = Universe.create [ role_a; role_b ] in
    let drbg, mvk, sk = keys ~seed:"zkqac-attack:jn" universe in
    let r_records =
      [
        rec_ [| 0 |] "r-0" "RoleA";
        rec_ [| 1 |] "r-1" "RoleA";
        rec_ [| 2 |] "r-2" "RoleB";
      ]
    in
    let s_records = [ rec_ [| 0 |] "s-0" "RoleA"; rec_ [| 2 |] "s-2" "RoleB" ] in
    let r =
      Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"jn-r" r_records
    in
    let s =
      Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"jn-s" s_records
    in
    let query = Keyspace.whole space in
    let vo, _ = Join.join_vo drbg ~mvk ~r ~s ~user query in
    let check batch bytes =
      match Join.decode bytes with
      | Error e -> Error e
      | Ok vo -> (
        match Join.verify ?batch ~mvk ~t_universe:universe ~user ~query vo with
        | Error e -> Error e
        | Ok _ -> Ok ())
    in
    {
      kind = Join_q;
      bytes = Join.to_bytes vo;
      verify = check None;
      verify_batched = (fun bytes -> check (Some (batch_drbg bytes)) bytes);
      tamper =
        (fun prng name ->
          Option.map Join.to_bytes (join_tamper ~alt_policy prng name vo));
    }

  (* A Gt encoding the backend must refuse to decode. The first candidate
     (a tiny nonzero field element) is accepted by the raw F_p2 parser but
     lies outside the order-r subgroup on the real backend — exactly the
     class of input the subgroup membership check exists to reject; on the
     mock backend the same bytes violate encoding canonicity. The all-0xff
     fallback is out of range on every backend. *)
  let non_subgroup_gt_bytes len =
    let tiny =
      let b = Bytes.make len '\x00' in
      Bytes.set b (len - 1) '\x02';
      Bytes.to_string b
    in
    List.find_opt
      (fun s -> Option.is_none (P.Gt.of_bytes s))
      [ tiny; String.make len '\xff' ]

  (* Wire surgery on a sealed response: split the envelope, split the KEM
     ciphertext inside it, substitute c_tilde, and re-assemble byte-exactly
     around the substitution. *)
  let envelope_tamper name bytes =
    if not (String.equal name "gt-subgroup") then None
    else begin
      match
        let r = Wire.reader bytes in
        let kem = Wire.rbytes r in
        let nonce = Wire.rbytes r in
        let body = Wire.rbytes r in
        let tag = Wire.rbytes r in
        if not (Wire.at_end r) then raise Wire.Malformed;
        let kr = Wire.reader kem in
        let policy = Wire.rbytes kr in
        let c_tilde = Wire.rbytes kr in
        let rest =
          String.sub kem (Wire.pos kr) (String.length kem - Wire.pos kr)
        in
        (policy, c_tilde, rest, nonce, body, tag)
      with
      | exception (Wire.Malformed | Wire.Limit _) -> None
      | policy, c_tilde, rest, nonce, body, tag ->
        (match non_subgroup_gt_bytes (String.length c_tilde) with
         | None -> None
         | Some bad ->
           let kw = Wire.writer () in
           Wire.bytes kw policy;
           Wire.bytes kw bad;
           Buffer.add_string kw rest;
           let w = Wire.writer () in
           Wire.bytes w (Wire.contents kw);
           Wire.bytes w nonce;
           Wire.bytes w body;
           Wire.bytes w tag;
           Some (Wire.contents w))
    end

  let envelope_payload = "zkqac-attack: envelope payload"

  let make_envelope () =
    let drbg = Drbg.create ~seed:"zkqac-attack:env" in
    let mk, pp = Envelope.C.setup drbg in
    let sk = Envelope.C.keygen drbg mk pp user in
    let sealed =
      Envelope.seal drbg pp ~policy:(Expr.of_string role_a) envelope_payload
    in
    let bytes = Envelope.to_bytes sealed in
    (* There is no ABS batching inside an envelope open: the batched path
       is the sequential one. *)
    let check bytes =
      match Envelope.decode bytes with
      | Error e -> Error e
      | Ok sealed ->
        (match Envelope.open_result pp sk sealed with
         | Error e -> Error e
         | Ok payload ->
           if String.equal payload envelope_payload then Ok ()
           else Error (VE.Digest_mismatch "envelope payload"))
    in
    {
      kind = Envelope_q;
      bytes;
      verify = check;
      verify_batched = check;
      tamper = (fun _prng name -> envelope_tamper name bytes);
    }

  let targets () =
    [ make_equality (); make_range (); make_kd (); make_join (); make_envelope () ]

  let fixtures () =
    List.map (fun (t : target) -> (t.kind, t.bytes, t.verify)) (targets ())

  (* --- driver --- *)

  let run ?scenario ?(batched = false) ~seed () =
    let targets = targets () in
    let check t = if batched then t.verify_batched else t.verify in
    List.iter
      (fun t ->
        match (check t) t.bytes with
        | Ok () -> ()
        | Error e ->
          invalid_arg
            (Printf.sprintf "adversary harness: honest %s VO rejected: %s"
               (kind_name t.kind) (VE.to_string e)))
      targets;
    let scenarios =
      match scenario with
      | None -> Scenario.all
      | Some name -> (
        match Scenario.find name with
        | Some s -> [ s ]
        | None ->
          invalid_arg
            (Printf.sprintf "unknown scenario %S (have: %s)" name
               (String.concat ", " Scenario.names)))
    in
    let cells =
      List.concat_map
        (fun (sc : Scenario.t) ->
          List.map
            (fun tgt ->
              (* Deterministic per-cell stream: the same seed always attacks
                 the same bytes the same way, independent of cell order. *)
              let prng =
                Prng.create
                  (seed lxor Hashtbl.hash (sc.Scenario.name, kind_name tgt.kind))
              in
              let tampered =
                match sc.Scenario.category with
                (* Transport faults live on the socket and crash faults on
                   the process, not in VO bytes; the chaos proxy and the
                   crash harness inject them against a live daemon. *)
                | Scenario.Transport | Scenario.Crash -> None
                | Scenario.Format -> format_tamper prng sc.Scenario.name tgt.bytes
                | Scenario.Soundness | Scenario.Completeness ->
                  tgt.tamper prng sc.Scenario.name
              in
              let outcome =
                match tampered with
                | None -> Not_applicable
                | Some bytes -> (
                  match (check tgt) bytes with
                  | Ok () -> Accepted
                  | Error e ->
                    Zkqac_telemetry.Metrics.rejection (VE.code e);
                    if Scenario.expected sc.Scenario.name e then Rejected e
                    else Misclassified e)
              in
              (match outcome with
              | Rejected e | Misclassified e ->
                Flight.record ~cat:"verdict" ~detail:(VE.code e)
                  ("attack:" ^ sc.Scenario.name)
              | Accepted | Not_applicable -> ());
              (* Expected rejections are the sweep working as designed; only
                 a survivor or a wrong classification is a forensic event
                 worth a flight dump. *)
              (match outcome with
              | Accepted ->
                Flight.trip ~reason:("attack-accepted:" ^ sc.Scenario.name)
              | Misclassified e ->
                Flight.trip
                  ~reason:
                    ("attack-misclassified:" ^ sc.Scenario.name ^ ":" ^ VE.code e)
              | Rejected _ | Not_applicable -> ());
              { scenario = sc; kind = tgt.kind; outcome })
            targets)
        scenarios
    in
    let ok =
      List.for_all
        (fun c ->
          match c.outcome with
          | Rejected _ | Not_applicable -> true
          | Accepted | Misclassified _ -> false)
        cells
    in
    (* With an audit sink enabled, every cell becomes one chained entry and
       the sweep closes with a summary whose counts must reconcile with the
       rendered matrix footer — CI cross-checks exactly that. *)
    if Audit.enabled () then begin
      let outcome_name = function
        | Rejected _ -> "rejected"
        | Misclassified _ -> "misclassified"
        | Accepted -> "accepted"
        | Not_applicable -> "not-applicable"
      in
      List.iter
        (fun c ->
          let error =
            match c.outcome with
            | Rejected e | Misclassified e -> VE.code e
            | Accepted | Not_applicable -> ""
          in
          Audit.record ~kind:"attack"
            (Json.Obj
               [ ("scenario", Json.Str c.scenario.Scenario.name);
                 ("query", Json.Str (kind_name c.kind));
                 ("batched", Json.Bool batched);
                 ("outcome", Json.Str (outcome_name c.outcome));
                 ("error", Json.Str error) ]))
        cells;
      let count p = List.length (List.filter (fun c -> p c.outcome) cells) in
      Audit.record ~kind:"attack-summary"
        (Json.Obj
           [ ("seed", Json.Int seed);
             ("batched", Json.Bool batched);
             ("cells", Json.Int (List.length cells));
             ( "applied",
               Json.Int (count (function Not_applicable -> false | _ -> true)) );
             ("rejected", Json.Int (count (function Rejected _ -> true | _ -> false)));
             ("accepted", Json.Int (count (function Accepted -> true | _ -> false)));
             ( "misclassified",
               Json.Int (count (function Misclassified _ -> true | _ -> false)) );
             ("ok", Json.Bool ok) ])
    end;
    { seed; cells; ok }

  (* --- matrix rendering --- *)

  let cell_text = function
    | Rejected e -> VE.code e
    | Misclassified e -> "WRONG:" ^ VE.code e
    | Accepted -> "ACCEPTED!"
    | Not_applicable -> "-"

  let render report =
    let buf = Buffer.create 4096 in
    (* Rows in registry order, restricted to scenarios actually run. *)
    let present name =
      List.exists (fun (c : cell) -> c.scenario.Scenario.name = name) report.cells
    in
    let scenarios =
      List.filter (fun (s : Scenario.t) -> present s.name) Scenario.all
    in
    let cell sc kind =
      match
        List.find_opt
          (fun (c : cell) -> c.kind = kind && c.scenario.Scenario.name = sc)
          report.cells
      with
      | Some c -> cell_text c.outcome
      | None -> ""
    in
    let w0 = 18 and w = 22 in
    let pad width s =
      if String.length s >= width then s
      else s ^ String.make (width - String.length s) ' '
    in
    Buffer.add_string buf
      (Printf.sprintf "attack matrix (seed %d)\n\n" report.seed);
    Buffer.add_string buf (pad w0 "scenario");
    List.iter (fun k -> Buffer.add_string buf (pad w (kind_name k))) all_kinds;
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (String.make (w0 + (w * List.length all_kinds)) '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun (sc : Scenario.t) ->
        Buffer.add_string buf (pad w0 sc.name);
        List.iter
          (fun k -> Buffer.add_string buf (pad w (cell sc.name k)))
          all_kinds;
        Buffer.add_char buf '\n')
      scenarios;
    let applied, rejected =
      List.fold_left
        (fun (a, r) c ->
          match c.outcome with
          | Not_applicable -> (a, r)
          | Rejected _ -> (a + 1, r + 1)
          | Accepted | Misclassified _ -> (a + 1, r))
        (0, 0) report.cells
    in
    Buffer.add_string buf
      (Printf.sprintf
         "\n%d/%d tampered responses rejected with the expected error; %s\n"
         rejected applied
         (if report.ok then "all attacks defeated."
          else "ATTACKS SURVIVED VERIFICATION."));
    Buffer.contents buf
end
