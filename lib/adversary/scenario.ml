type category = Soundness | Completeness | Format | Transport | Crash

let category_name = function
  | Soundness -> "soundness"
  | Completeness -> "completeness"
  | Format -> "format"
  | Transport -> "transport"
  | Crash -> "crash"

type t = { name : string; category : category; description : string }

let all =
  [
    (* Soundness game (Theorem 7.1): forge a result or an inaccessibility
       proof the DO never authorized. *)
    { name = "flip-value";
      category = Soundness;
      description = "flip a byte of an accessible record's value" };
    { name = "swap-app";
      category = Soundness;
      description = "swap the APP signatures of two accessible records" };
    { name = "forge-pseudo";
      category = Soundness;
      description =
        "present an accessible record as inaccessible, replaying its APP as \
         the APS" };
    { name = "replay-aps";
      category = Soundness;
      description = "swap the APS signatures of two inaccessible entries" };
    { name = "value-hash-lie";
      category = Soundness;
      description = "flip a byte of an inaccessible leaf's value hash" };
    { name = "tamper-policy";
      category = Soundness;
      description =
        "rewrite an accessible record's policy to one the user still \
         satisfies" };
    { name = "gt-subgroup";
      category = Soundness;
      description =
        "replace the CP-ABE c_tilde of a sealed response with a Gt encoding \
         outside the order-r subgroup" };
    (* Completeness game (Theorem 7.2): omit results the user is entitled
       to. *)
    { name = "drop-entry";
      category = Completeness;
      description = "silently drop one VO entry" };
    { name = "prune-subtree";
      category = Completeness;
      description = "drop every VO entry in the upper half of the range" };
    { name = "shrink-boundary";
      category = Completeness;
      description = "shrink the region box of a pruned-subtree APS entry" };
    { name = "duplicate-entry";
      category = Completeness;
      description = "present the same VO entry twice" };
    (* Wire-format attacks against the decoder itself. *)
    { name = "bit-flip";
      category = Format;
      description = "flip one random bit of the encoded VO" };
    { name = "truncate";
      category = Format;
      description = "cut trailing bytes off the encoded VO" };
    { name = "length-inflate";
      category = Format;
      description = "increment the top-level entry count field" };
    { name = "huge-count";
      category = Format;
      description = "set the top-level entry count to 2^32 - 1" };
    { name = "trailing-garbage";
      category = Format;
      description = "append random bytes after a valid encoding" };
  ]

(* Network-boundary faults, injected by the chaos proxy ([zkqac chaos])
   between a client and a live SP daemon rather than on decoded VOs. They
   attack availability and framing, not signatures, so the acceptable
   outcomes differ in kind: a fault must end in a typed transport error or a
   successful retry, and must never yield an accepted tamper, a crash, or a
   hang past the client's deadline. Kept out of {!all} because the VO-level
   harness has no socket to cut. *)
let network =
  [
    { name = "net-stall";
      category = Transport;
      description = "accept the connection, read the request, never respond" };
    { name = "net-slowloris";
      category = Transport;
      description = "dribble the response out slower than the read deadline" };
    { name = "net-truncate";
      category = Transport;
      description = "forward the response but close mid-VO after N bytes" };
    { name = "net-disconnect";
      category = Transport;
      description = "close the connection after N bytes of the request" };
    { name = "net-corrupt";
      category = Transport;
      description = "flip bytes of the forwarded response frame" };
    { name = "net-refuse";
      category = Transport;
      description = "refuse to accept connections for a burst" };
  ]

(* Process-death faults, injected by the crash harness: a real server is
   SIGKILLed at a randomized point and restarted. They attack durability,
   not signatures — the acceptable outcome is that the restarted server
   recovers a valid checkpoint epoch and an intact (or tail-truncated)
   audit chain, and that every client either got a correct VO, a typed
   fault, or a successful retry. Never an accepted tamper, never a
   half-written state file taken for the truth. Kept out of {!all} because
   the VO-level harness has no process to kill. *)
let crash =
  [
    { name = "crash-mid-checkpoint";
      category = Crash;
      description =
        "SIGKILL the server while it is writing an epoch checkpoint (before \
         the atomic rename commits it)" };
    { name = "crash-torn-audit";
      category = Crash;
      description =
        "SIGKILL the server after it wrote half of an audit line, leaving a \
         torn tail" };
    { name = "crash-mid-request";
      category = Crash;
      description = "SIGKILL the server between decoding a request and answering" };
    { name = "crash-random";
      category = Crash;
      description =
        "SIGKILL the server from outside at a uniformly random moment under \
         load" };
  ]

let find name =
  List.find_opt (fun s -> String.equal s.name name) (all @ network @ crash)

let names = List.map (fun s -> s.name) all
let network_names = List.map (fun s -> s.name) network
let crash_names = List.map (fun s -> s.name) crash

(* Which error classes count as the *right* rejection: a tamper that is
   refused for an unrelated reason (a "generic catch-all") would not witness
   the security property the scenario encodes. *)
let expected name (e : Zkqac_util.Verify_error.t) =
  match (name, e) with
  | ("flip-value" | "swap-app" | "tamper-policy"), Bad_abs_signature _ -> true
  | ("forge-pseudo" | "replay-aps" | "value-hash-lie"), Bad_aps_signature _ ->
    true
  | ("drop-entry" | "prune-subtree" | "shrink-boundary"), Completeness_gap ->
    true
  | "duplicate-entry", (Completeness_gap | Invalid_shape _) -> true
  | "gt-subgroup", Malformed _ -> true
  | "bit-flip", _ -> true (* any typed rejection: the flip lands anywhere *)
  | ("truncate" | "length-inflate" | "trailing-garbage"), Malformed _ -> true
  | "huge-count", (Limit_exceeded _ | Malformed _) -> true
  | _ -> false
