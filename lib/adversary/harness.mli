(** Deterministic, seeded fault-injection harness simulating a malicious SP.

    Five small honest exchanges — equality, AP²G range, AP²kd range, join,
    and a sealed CP-ABE envelope — are built once; each registered
    {!Scenario} is then applied to each of them (structural tampers on the
    decoded VO before re-encoding, format tampers on the wire bytes, wire
    surgery on the envelope) and the tampered response is pushed through
    the client's decode-and-verify path. Every cell must be rejected with
    the error class the scenario attacks. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  type kind = Equality_q | Range_q | Kd_q | Join_q | Envelope_q

  val all_kinds : kind list
  val kind_name : kind -> string

  type outcome =
    | Rejected of Zkqac_util.Verify_error.t
        (** rejected, with the error class the scenario expects *)
    | Misclassified of Zkqac_util.Verify_error.t
        (** rejected, but by an unrelated check *)
    | Accepted  (** the attack went through — a security failure *)
    | Not_applicable
        (** the scenario has no target in this query type's VO *)

  type cell = { scenario : Scenario.t; kind : kind; outcome : outcome }

  type report = { seed : int; cells : cell list; ok : bool }
  (** [ok] iff every applicable cell was [Rejected]. *)

  val fixtures :
    unit ->
    (kind * string * (string -> (unit, Zkqac_util.Verify_error.t) result)) list
  (** The honest encoded response and client decode-and-verify function of
      each query-type fixture, for external property tests (e.g. the
      exhaustive single-byte-mutation sweep in the test suite). *)

  val run : ?scenario:string -> ?batched:bool -> seed:int -> unit -> report
  (** Run every scenario (or just [?scenario]) against every fixture.
      Deterministic in [seed]. With [~batched:true] every client check runs
      through the batched verification path (random-linear-combination
      weights derived from the bytes under test, as the CLI derives them
      from the VO file); its batch-reject-then-sequential-fallback contract
      means the matrix must be identical to the sequential one.
      @raise Invalid_argument on an unknown scenario name, or if an
      *untampered* fixture fails verification (harness self-check). *)

  val render : report -> string
  (** The scenario × query-type rejection matrix as a printable table. *)
end
