(** The tamper-scenario registry of the fault-injection harness.

    Each scenario is one move a malicious SP could make in the paper's
    security games: soundness tampers forge results or inaccessibility
    proofs (Theorem 7.1), completeness tampers omit or double-count entitled
    results (Theorem 7.2), and format tampers attack the wire decoder
    directly. *)

type category = Soundness | Completeness | Format

val category_name : category -> string

type t = { name : string; category : category; description : string }

val all : t list
val names : string list
val find : string -> t option

val expected : string -> Zkqac_util.Verify_error.t -> bool
(** [expected name e] is whether rejecting scenario [name] with error [e]
    witnesses the property the scenario attacks (rather than tripping an
    unrelated check). *)
