(** The tamper-scenario registry of the fault-injection harness.

    Each scenario is one move a malicious SP could make in the paper's
    security games: soundness tampers forge results or inaccessibility
    proofs (Theorem 7.1), completeness tampers omit or double-count entitled
    results (Theorem 7.2), and format tampers attack the wire decoder
    directly. *)

type category = Soundness | Completeness | Format | Transport

val category_name : category -> string

type t = { name : string; category : category; description : string }

val all : t list
(** The VO-level registry driven by the fault-injection harness. *)

val network : t list
(** Network-boundary faults ([Transport] category) injected by the chaos
    proxy ([zkqac chaos]) on live connections: stall, slowloris, mid-VO
    truncation, early disconnect, byte corruption, connection refusal.
    Every one must end in a typed error or a successful retry at the
    client — never an accepted tamper, a crash, or an unbounded hang. *)

val names : string list
val network_names : string list

val find : string -> t option
(** Look up a scenario in {!all} or {!network}. *)

val expected : string -> Zkqac_util.Verify_error.t -> bool
(** [expected name e] is whether rejecting scenario [name] with error [e]
    witnesses the property the scenario attacks (rather than tripping an
    unrelated check). *)
