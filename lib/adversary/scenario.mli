(** The tamper-scenario registry of the fault-injection harness.

    Each scenario is one move a malicious SP could make in the paper's
    security games: soundness tampers forge results or inaccessibility
    proofs (Theorem 7.1), completeness tampers omit or double-count entitled
    results (Theorem 7.2), and format tampers attack the wire decoder
    directly. *)

type category = Soundness | Completeness | Format | Transport | Crash

val category_name : category -> string

type t = { name : string; category : category; description : string }

val all : t list
(** The VO-level registry driven by the fault-injection harness. *)

val network : t list
(** Network-boundary faults ([Transport] category) injected by the chaos
    proxy ([zkqac chaos]) on live connections: stall, slowloris, mid-VO
    truncation, early disconnect, byte corruption, connection refusal.
    Every one must end in a typed error or a successful retry at the
    client — never an accepted tamper, a crash, or an unbounded hang. *)

val crash : t list
(** Process-death faults ([Crash] category) injected by the crash harness:
    a real server is SIGKILLed mid-checkpoint-write, mid-audit-append,
    mid-request, or at a random moment under load, then restarted. Each
    must end with the restart recovering a valid checkpoint epoch and an
    intact (at worst tail-truncated) audit chain, and with every client
    holding a correct VO, a typed fault, or a retried success — never an
    accepted tamper. Kept out of {!all} because the VO-level harness has
    no process to kill. *)

val names : string list
val network_names : string list
val crash_names : string list

val find : string -> t option
(** Look up a scenario in {!all}, {!network} or {!crash}. *)

val expected : string -> Zkqac_util.Verify_error.t -> bool
(** [expected name e] is whether rejecting scenario [name] with error [e]
    witnesses the property the scenario attacks (rather than tripping an
    unrelated check). *)
