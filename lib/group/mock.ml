(* Generic-group ("mock") pairing backend.

   Elements are wrapped discrete logarithms modulo a 255-bit prime group
   order; e(g^a, g^b) = gt^(a*b). This is literally the generic group model
   in which the paper proves its ABS unforgeable (Appendix B): every group
   and pairing equation of the protocols holds identically, so protocol
   behaviour, VO structure and operation counts are faithful, while each
   operation costs a single modular multiplication. Encodings are padded to
   the sizes of the real type-A backend at its default (512-bit) parameters
   so that VO-size measurements remain comparable.

   It is *not* hiding: serialized elements expose their logs. The real
   backend exists for cryptographic validity; this one exists for running
   paper-scale benchmarks in reasonable time. *)

module B = Zkqac_bigint.Bigint

(* 2^255 - 19 (the Curve25519 field prime): a convenient large prime order. *)
let default_order =
  B.of_string "57896044618658097711785492504343953926634992332820282019728792003956564819949"

let g_encoded_size = 65 (* 512-bit x-coordinate + tag byte, as in type-A *)
let gt_encoded_size = 128 (* F_p2 element at 512-bit p *)

let create ?(order = default_order) () : (module Pairing_intf.PAIRING) =
  (module struct
    let name = Printf.sprintf "mock(order=%d bits)" (B.num_bits order)
    let order = order

    module G = struct
      type t = B.t (* the discrete log; the group is written multiplicatively *)

      let one = B.zero
      let g = B.one
      let mul a b = B.erem (B.add a b) order
      let inv a = B.erem (B.neg a) order
      let pow a k = B.erem (B.mul a k) order
      let equal = B.equal
      let is_one = B.is_zero

      let to_bytes a =
        B.to_bytes_be_pad 32 a ^ String.make (g_encoded_size - 32) '\000'

      (* Encodings must be canonical: the padding bytes are part of the
         encoding, so a non-zero byte there is a distinct bit string that
         must not decode to the same element (signatures would otherwise be
         malleable at the wire level). *)
      let of_bytes s =
        if String.length s <> g_encoded_size then None
        else if not (String.for_all (Char.equal '\000') (String.sub s 32 (g_encoded_size - 32)))
        then None
        else begin
          let v = B.of_bytes_be (String.sub s 0 32) in
          if B.compare v order < 0 then Some v else None
        end

      let hash_to msg =
        let v = Zkqac_hashing.Hash_to_field.to_zp ~domain:"mock-g" ~p:order msg in
        if B.is_zero v then B.one else v
    end

    module Gt = struct
      type t = B.t

      let one = B.zero
      let mul a b = B.erem (B.add a b) order
      let inv a = B.erem (B.neg a) order
      let pow a k = B.erem (B.mul a k) order
      let equal = B.equal
      let is_one = B.is_zero

      let to_bytes a =
        B.to_bytes_be_pad 32 a ^ String.make (gt_encoded_size - 32) '\000'

      (* Canonical encodings only, as in {!G.of_bytes}. *)
      let of_bytes s =
        if String.length s <> gt_encoded_size then None
        else if not (String.for_all (Char.equal '\000') (String.sub s 32 (gt_encoded_size - 32)))
        then None
        else begin
          let v = B.of_bytes_be (String.sub s 0 32) in
          if B.compare v order < 0 then Some v else None
        end
    end

    let e a b = B.erem (B.mul a b) order

    (* In the discrete-log model a product of pairings is a sum of
       products of logs. *)
    let e_prod ps =
      List.fold_left (fun acc (a, b) -> B.erem (B.add acc (B.mul a b)) order) B.zero ps
    let rand_scalar drbg = Zkqac_hashing.Drbg.nonzero_bigint drbg order
    let rand_g drbg = rand_scalar drbg
  end)
