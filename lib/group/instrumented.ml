(* Telemetry-counting wrapper over a PAIRING backend.

   Wraps every expensive operation crossing the PAIRING interface boundary
   with a Zkqac_telemetry counter bump; cheap structural operations
   (equality, encoding, constants) pass through untouched. Applied by
   Backend.instantiate, so all protocol code is counted without the
   backends themselves knowing about telemetry. When telemetry is disabled
   (the default) each wrapped call costs one load-and-branch. *)

module T = Zkqac_telemetry.Telemetry

module Make (P : Pairing_intf.PAIRING) : Pairing_intf.PAIRING = struct
  let name = P.name
  let order = P.order

  module G = struct
    type t = P.G.t

    let one = P.G.one
    let g = P.G.g

    let mul a b =
      T.bump T.G_mul;
      P.G.mul a b

    let inv a =
      T.bump T.G_mul;
      P.G.inv a

    let pow a k =
      T.bump T.G_exp;
      P.G.pow a k

    let equal = P.G.equal
    let is_one = P.G.is_one
    let to_bytes = P.G.to_bytes
    let of_bytes = P.G.of_bytes
    let hash_to = P.G.hash_to
  end

  module Gt = struct
    type t = P.Gt.t

    let one = P.Gt.one

    let mul a b =
      T.bump T.Gt_mul;
      P.Gt.mul a b

    let inv a =
      T.bump T.Gt_mul;
      P.Gt.inv a

    let pow a k =
      T.bump T.Gt_exp;
      P.Gt.pow a k

    let equal = P.Gt.equal
    let is_one = P.Gt.is_one
    let to_bytes = P.Gt.to_bytes
    let of_bytes = P.Gt.of_bytes
  end

  let e a b =
    T.bump T.Pairing;
    P.e a b

  let e_prod ps =
    T.bump T.Multi_pairing;
    T.bump_n T.Multi_pairing_terms (List.length ps);
    P.e_prod ps

  let rand_scalar = P.rand_scalar
  let rand_g = P.rand_g
end
