(** Backend selection by name, for CLIs and benches. *)

type kind = Mock | Typea_tiny | Typea_small | Typea_default

let of_string = function
  | "mock" -> Some Mock
  | "typea" | "typea-default" -> Some Typea_default
  | "typea-small" -> Some Typea_small
  | "typea-tiny" -> Some Typea_tiny
  | _ -> None

let to_string = function
  | Mock -> "mock"
  | Typea_tiny -> "typea-tiny"
  | Typea_small -> "typea-small"
  | Typea_default -> "typea"

let all = [ Mock; Typea_tiny; Typea_small; Typea_default ]

let instantiate_raw = function
  | Mock -> Mock.create ()
  | Typea_tiny -> Typea.create (Lazy.force Typea_params.tiny)
  | Typea_small -> Typea.create (Lazy.force Typea_params.small)
  | Typea_default -> Typea.create (Lazy.force Typea_params.default)

(* All backends are handed out behind the telemetry-counting wrapper; the
   raw module exists for overhead micro-benchmarks. *)
let instantiate kind =
  let module P = (val instantiate_raw kind) in
  (module Instrumented.Make (P) : Pairing_intf.PAIRING)
