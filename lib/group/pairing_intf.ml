(** The symmetric bilinear-pairing abstraction the whole system is built on.

    The paper (like the PBC library its authors used) works with a symmetric
    ("type-1") pairing e : G x G -> Gt on groups of prime order [order]. Two
    implementations are provided:

    - {!Typea}: a real supersingular-curve Tate pairing, the same curve family
      as PBC's default "type a" parameters;
    - {!Mock}: the generic-group model of the paper's own security proof
      (Appendix B), where elements are opaque discrete logs. It satisfies
      every equation of the protocols at a fraction of the cost, and is the
      default backend for large benchmarks. *)

module type PAIRING = sig
  val name : string

  val order : Zkqac_bigint.Bigint.t
  (** Prime order of G and Gt; scalars live in Z_order. *)

  module G : sig
    type t

    val one : t
    (** Identity element. *)

    val g : t
    (** Fixed generator. *)

    val mul : t -> t -> t
    val inv : t -> t
    val pow : t -> Zkqac_bigint.Bigint.t -> t
    val equal : t -> t -> bool
    val is_one : t -> bool

    val to_bytes : t -> string
    (** Fixed-width canonical encoding (used for VO sizing and hashing). *)

    val of_bytes : string -> t option

    val hash_to : string -> t
    (** Hash arbitrary bytes to a group element of full order. *)
  end

  module Gt : sig
    type t

    val one : t
    val mul : t -> t -> t
    val inv : t -> t
    val pow : t -> Zkqac_bigint.Bigint.t -> t
    val equal : t -> t -> bool
    val is_one : t -> bool
    val to_bytes : t -> string
    val of_bytes : string -> t option
  end

  val e : G.t -> G.t -> Gt.t
  (** The bilinear map. *)

  val e_prod : (G.t * G.t) list -> Gt.t
  (** [e_prod [(p1,q1); ...; (pn,qn)]] is the product ∏ e(pi, qi).

      Semantically equivalent to folding {!Gt.mul} over individual {!e}
      calls, but implementations share work across the terms: the type-A
      backend runs one accumulated Miller loop over all pairs and performs
      a single final exponentiation, so n-term products cost roughly one
      pairing plus (n-1) Miller loops instead of n full pairings. The
      empty product is {!Gt.one}; identity arguments contribute nothing. *)

  val rand_scalar : Zkqac_hashing.Drbg.t -> Zkqac_bigint.Bigint.t
  (** Uniform in [1, order). *)

  val rand_g : Zkqac_hashing.Drbg.t -> G.t
  (** Uniform non-identity group element. *)
end

type t = (module PAIRING)
