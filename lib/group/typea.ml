(* The type-A symmetric pairing: Tate pairing on the supersingular curve
   E : y^2 = x^3 + x over F_p, embedding degree 2, with the distortion map
   psi(x, y) = (-x, i*y) providing symmetry.

   Denominator elimination applies throughout: psi maps x-coordinates into
   F_p, so every vertical-line value lies in F_p* and is annihilated by the
   (p - 1) factor of the final exponentiation (p^2 - 1)/r = (p-1) * cofactor.
   The Miller loop therefore only accumulates the tangent/chord lines. *)

module B = Zkqac_bigint.Bigint

let create (params : Typea_params.t) : (module Pairing_intf.PAIRING) =
  let { Typea_params.r; p; cofactor; fp; g = gen } = params in
  (module struct
    let name = Printf.sprintf "typea(r=%d bits, p=%d bits)" (B.num_bits r) (B.num_bits p)
    let order = r

    module G = struct
      type t = Curve.point

      let one = Curve.Infinity
      let g = gen
      let mul = Curve.add fp
      let inv = Curve.neg fp
      let pow pt k = Curve.mul fp (B.erem k r) pt
      let equal = Curve.equal
      let is_one = Curve.is_infinity
      let to_bytes = Curve.to_bytes fp

      let of_bytes s =
        match Curve.of_bytes fp s with
        | Some pt when Curve.is_infinity pt || Curve.is_infinity (Curve.mul fp r pt) ->
          Some pt
        | Some _ | None -> None

      let hash_to msg =
        let rec go ctr =
          let pt = Curve.hash_to_point fp ~domain:"typea-g" (msg ^ "#" ^ string_of_int ctr) in
          let pt = Curve.mul fp cofactor pt in
          if Curve.is_infinity pt then go (ctr + 1) else pt
        in
        go 0
    end

    module Gt = struct
      type t = Fp2.t

      let one = Fp2.one
      let mul = Fp2.mul fp
      let inv = Fp2.inv fp
      let pow a k = Fp2.pow fp a (B.erem k r)
      let equal = Fp2.equal
      let is_one = Fp2.is_one
      let to_bytes = Fp2.to_bytes fp

      (* Membership in the order-r subgroup of F_p2* must be checked on
         decode, mirroring [G.of_bytes]'s r*P = infinity check: pairing
         outputs satisfy x^r = 1, and untrusted inputs (the CP-ABE
         [c_tilde] component decodes through here) must not smuggle in
         arbitrary in-range field elements. *)
      let of_bytes s =
        match Fp2.of_bytes fp s with
        | Some x when Fp2.is_one (Fp2.pow fp x r) -> Some x
        | Some _ | None -> None
    end

    (* Miller loop computing f_{r,P}(psi(Q)) for affine P, Q. The evaluation
       point psi(Q) = (-xq, yq*i) has F_p real coordinate and purely
       imaginary y, so each line value is (re, yq) in F_p2. *)
    let miller xp yp xq yq =
      let xq' = Fp.neg fp xq in
      let eval_line lambda xv yv =
        (* y_psi - yv - lambda * (x_psi - xv), with y_psi = yq * i. *)
        let re = Fp.sub fp (Fp.neg fp yv) (Fp.mul fp lambda (Fp.sub fp xq' xv)) in
        Fp2.make re yq
      in
      let f = ref Fp2.one in
      let v = ref (Curve.Affine (xp, yp)) in
      let nb = B.num_bits r in
      for i = nb - 2 downto 0 do
        f := Fp2.sqr fp !f;
        (match !v with
         | Curve.Infinity -> ()
         | Curve.Affine (xv, yv) ->
           if Fp.is_zero yv then v := Curve.Infinity
           else begin
             let lambda =
               Fp.div fp
                 (Fp.add fp (Fp.mul fp (Fp.of_int fp 3) (Fp.sqr fp xv)) Fp.one)
                 (Fp.add fp yv yv)
             in
             f := Fp2.mul fp !f (eval_line lambda xv yv);
             v := Curve.double fp !v
           end);
        if B.testbit r i then begin
          match !v with
          | Curve.Infinity -> ()
          | Curve.Affine (xv, yv) ->
            if B.equal xv xp then begin
              (* Vertical chord (V = -P or V = P with doubling handled
                 above): the line value lies in F_p and is eliminated. *)
              if B.equal yv yp then begin
                let lambda =
                  Fp.div fp
                    (Fp.add fp (Fp.mul fp (Fp.of_int fp 3) (Fp.sqr fp xv)) Fp.one)
                    (Fp.add fp yv yv)
                in
                f := Fp2.mul fp !f (eval_line lambda xv yv);
                v := Curve.double fp !v
              end
              else v := Curve.Infinity
            end
            else begin
              let lambda = Fp.div fp (Fp.sub fp yp yv) (Fp.sub fp xp xv) in
              f := Fp2.mul fp !f (eval_line lambda xv yv);
              v := Curve.add fp !v (Curve.Affine (xp, yp))
            end
        end
      done;
      !f

    let e a b =
      match (a, b) with
      | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one
      | Curve.Affine (xp, yp), Curve.Affine (xq, yq) ->
        let f = miller xp yp xq yq in
        (* Final exponentiation: f^(p-1) via Frobenius (conjugation), then
           raise to the cofactor (p+1)/r. *)
        let f1 = Fp2.mul fp (Fp2.conj fp f) (Fp2.inv fp f) in
        Fp2.pow fp f1 cofactor

    (* Multi-pairing ∏ e(Pi, Qi): because squaring distributes over the
       product, a single Miller accumulator [f] is squared once per bit of r
       while every pair contributes its own tangent/chord line values, and
       one final exponentiation covers all terms. An n-term product thus
       costs n Miller line computations but only one shared squaring chain
       and one final exponentiation, instead of n of each. *)
    let e_prod pairs =
      let pairs =
        List.filter_map
          (fun pair ->
            match pair with
            | Curve.Infinity, _ | _, Curve.Infinity -> None
            | Curve.Affine (xp, yp), Curve.Affine (xq, yq) ->
              Some (xp, yp, Fp.neg fp xq, yq, ref (Curve.Affine (xp, yp))))
          pairs
      in
      if pairs = [] then Fp2.one
      else begin
        let eval_line lambda xv yv xq' yq =
          let re = Fp.sub fp (Fp.neg fp yv) (Fp.mul fp lambda (Fp.sub fp xq' xv)) in
          Fp2.make re yq
        in
        let tangent xv yv =
          Fp.div fp
            (Fp.add fp (Fp.mul fp (Fp.of_int fp 3) (Fp.sqr fp xv)) Fp.one)
            (Fp.add fp yv yv)
        in
        let f = ref Fp2.one in
        let nb = B.num_bits r in
        for i = nb - 2 downto 0 do
          f := Fp2.sqr fp !f;
          List.iter
            (fun (xp, yp, xq', yq, v) ->
              (match !v with
               | Curve.Infinity -> ()
               | Curve.Affine (xv, yv) ->
                 if Fp.is_zero yv then v := Curve.Infinity
                 else begin
                   f := Fp2.mul fp !f (eval_line (tangent xv yv) xv yv xq' yq);
                   v := Curve.double fp !v
                 end);
              if B.testbit r i then begin
                match !v with
                | Curve.Infinity -> ()
                | Curve.Affine (xv, yv) ->
                  if B.equal xv xp then begin
                    if B.equal yv yp then begin
                      f := Fp2.mul fp !f (eval_line (tangent xv yv) xv yv xq' yq);
                      v := Curve.double fp !v
                    end
                    else v := Curve.Infinity
                  end
                  else begin
                    let lambda = Fp.div fp (Fp.sub fp yp yv) (Fp.sub fp xp xv) in
                    f := Fp2.mul fp !f (eval_line lambda xv yv xq' yq);
                    v := Curve.add fp !v (Curve.Affine (xp, yp))
                  end
              end)
            pairs
        done;
        let f1 = Fp2.mul fp (Fp2.conj fp !f) (Fp2.inv fp !f) in
        Fp2.pow fp f1 cofactor
      end

    let rand_scalar drbg = Zkqac_hashing.Drbg.nonzero_bigint drbg r

    let rand_g drbg =
      let k = rand_scalar drbg in
      G.pow gen k
  end)
