module B = Zkqac_bigint.Bigint

type point = Infinity | Affine of B.t * B.t

let equal a b =
  match (a, b) with
  | Infinity, Infinity -> true
  | Affine (x1, y1), Affine (x2, y2) -> B.equal x1 x2 && B.equal y1 y2
  | Infinity, Affine _ | Affine _, Infinity -> false

let is_infinity = function Infinity -> true | Affine _ -> false

let neg c = function
  | Infinity -> Infinity
  | Affine (x, y) -> Affine (x, Fp.neg c y)

let is_on_curve c = function
  | Infinity -> true
  | Affine (x, y) ->
    let lhs = Fp.sqr c y in
    let rhs = Fp.add c (Fp.mul c (Fp.sqr c x) x) x in
    Fp.equal lhs rhs

let double c p =
  match p with
  | Infinity -> Infinity
  | Affine (x, y) ->
    if Fp.is_zero y then Infinity
    else begin
      (* lambda = (3x^2 + 1) / 2y  for y^2 = x^3 + x. *)
      let three_x2 = Fp.mul c (Fp.of_int c 3) (Fp.sqr c x) in
      let num = Fp.add c three_x2 Fp.one in
      let lambda = Fp.div c num (Fp.add c y y) in
      let x3 = Fp.sub c (Fp.sqr c lambda) (Fp.add c x x) in
      let y3 = Fp.sub c (Fp.mul c lambda (Fp.sub c x x3)) y in
      Affine (x3, y3)
    end

let add c p q =
  match (p, q) with
  | Infinity, r | r, Infinity -> r
  | Affine (x1, y1), Affine (x2, y2) ->
    if B.equal x1 x2 then begin
      if B.equal y1 y2 then double c p else Infinity
    end
    else begin
      let lambda = Fp.div c (Fp.sub c y2 y1) (Fp.sub c x2 x1) in
      let x3 = Fp.sub c (Fp.sub c (Fp.sqr c lambda) x1) x2 in
      let y3 = Fp.sub c (Fp.mul c lambda (Fp.sub c x1 x3)) y1 in
      Affine (x3, y3)
    end

(* Fixed 4-bit-window scalar multiplication: precompute 1P..15P once, then
   one add per nibble instead of per set bit -- a ~25% saving on the long
   exponentiations that dominate pairing-based signing. *)
let window_bits = 4

let mul c k p =
  if B.sign k < 0 then invalid_arg "Curve.mul: negative scalar";
  let nb = B.num_bits k in
  if nb <= window_bits * 2 then begin
    (* Tiny scalars: plain double-and-add beats table setup. *)
    let r = ref Infinity in
    for i = nb - 1 downto 0 do
      r := double c !r;
      if B.testbit k i then r := add c !r p
    done;
    !r
  end
  else begin
    let table = Array.make (1 lsl window_bits) Infinity in
    for i = 1 to (1 lsl window_bits) - 1 do
      table.(i) <- add c table.(i - 1) p
    done;
    let windows = (nb + window_bits - 1) / window_bits in
    let r = ref Infinity in
    for w = windows - 1 downto 0 do
      for _ = 1 to window_bits do
        r := double c !r
      done;
      let nibble = ref 0 in
      for b = window_bits - 1 downto 0 do
        nibble := (!nibble lsl 1) lor (if B.testbit k ((w * window_bits) + b) then 1 else 0)
      done;
      if !nibble <> 0 then r := add c !r table.(!nibble)
    done;
    !r
  end

let hash_to_point c ~domain msg =
  let p = Fp.modulus c in
  let rec try_ctr ctr =
    let x =
      Zkqac_hashing.Hash_to_field.to_zp ~domain:(domain ^ ":h2p") ~p
        (msg ^ ":" ^ string_of_int ctr)
    in
    let rhs = Fp.add c (Fp.mul c (Fp.sqr c x) x) x in
    match Fp.sqrt c rhs with
    | Some y ->
      (* Deterministic sign choice keyed on the counter stream. *)
      let y = if B.testbit x 0 then y else Fp.neg c y in
      Affine (x, y)
    | None -> try_ctr (ctr + 1)
  in
  try_ctr 0

let encoded_size c = 1 + ((B.num_bits (Fp.modulus c) + 7) / 8)

let to_bytes c pt =
  let w = (B.num_bits (Fp.modulus c) + 7) / 8 in
  match pt with
  | Infinity -> String.make (w + 1) '\000'
  | Affine (x, y) ->
    let tag = if B.testbit y 0 then '\003' else '\002' in
    String.make 1 tag ^ B.to_bytes_be_pad w x

let of_bytes c s =
  let w = (B.num_bits (Fp.modulus c) + 7) / 8 in
  if String.length s <> w + 1 then None
  else begin
    match s.[0] with
    | '\000' ->
      (* Canonical encodings only: infinity is the all-zero string, not any
         string with a zero tag. *)
      if String.for_all (Char.equal '\000') s then Some Infinity else None
    | ('\002' | '\003') as tag ->
      let x = B.of_bytes_be (String.sub s 1 w) in
      if B.compare x (Fp.modulus c) >= 0 then None
      else begin
        let rhs = Fp.add c (Fp.mul c (Fp.sqr c x) x) x in
        match Fp.sqrt c rhs with
        | None -> None
        | Some y ->
          let want_odd = tag = '\003' in
          let y = if B.testbit y 0 = want_odd then y else Fp.neg c y in
          Some (Affine (x, y))
      end
    | _ -> None
  end
