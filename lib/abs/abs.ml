module B = Zkqac_bigint.Bigint
module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Msp = Zkqac_policy.Msp
module Drbg = Zkqac_hashing.Drbg
module Htf = Zkqac_hashing.Hash_to_field
module T = Zkqac_telemetry.Telemetry
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module G = P.G

  let order = P.order

  type msk = { a0 : B.t; a : B.t; b : B.t }

  type mvk = {
    g : G.t;
    h0 : G.t;
    h : G.t;
    cap_a0 : G.t; (* A0 = h0^a0 *)
    cap_a : G.t;  (* A  = h^a *)
    cap_b : G.t;  (* B  = h^b *)
    cap_c : G.t;  (* C *)
  }

  module Attr_map = Map.Make (String)

  type signing_key = {
    attrs : Attr.Set.t;
    k_base : G.t;
    k0 : G.t;
    k_u : G.t Attr_map.t;
  }

  type signature = {
    tau : string;
    y : G.t;
    w : G.t;
    s : G.t array;
    p : G.t array;
  }

  (* Attribute names are mapped into Z_order by hashing; zero is remapped so
     that a + b*u is invertible with overwhelming probability. *)
  let attr_scalar a =
    let v = Htf.to_zp ~domain:"zkqac-abs-attr" ~p:order a in
    if B.is_zero v then B.one else v

  let msg_scalar tau msg = Htf.to_zp_list ~domain:"zkqac-abs-msg" ~p:order [ tau; msg ]

  let setup drbg =
    let a0 = P.rand_scalar drbg in
    let a = P.rand_scalar drbg in
    let b = P.rand_scalar drbg in
    let g = P.rand_g drbg in
    let cap_c = P.rand_g drbg in
    let h0 = P.rand_g drbg in
    let h = P.rand_g drbg in
    let mvk =
      {
        g;
        h0;
        h;
        cap_a0 = G.pow h0 a0;
        cap_a = G.pow h a;
        cap_b = G.pow h b;
        cap_c;
      }
    in
    ({ a0; a; b }, mvk)

  let keygen drbg msk attrs =
    let k_base = P.rand_g drbg in
    let k0 = G.pow k_base (B.invmod msk.a0 order) in
    let k_u =
      Attr.Set.fold
        (fun u acc ->
          let d = B.erem (B.add msk.a (B.mul msk.b (attr_scalar u))) order in
          Attr_map.add u (G.pow k_base (B.invmod d order)) acc)
        attrs Attr_map.empty
    in
    { attrs; k_base; k0; k_u }

  let key_attrs sk = sk.attrs

  (* C * g^hash -- the message-binding base of the S components. *)
  let msg_base mvk hash = G.mul mvk.cap_c (G.pow mvk.g hash)

  (* A * B^u -- the attribute base of the P components. *)
  let attr_base mvk u = G.mul mvk.cap_a (G.pow mvk.cap_b (attr_scalar u))

  (* Exponentiation by a possibly-negative small matrix entry. *)
  let pow_entry base entry r =
    match entry with
    | 0 -> G.one
    | 1 -> G.pow base r
    | -1 -> G.inv (G.pow base r)
    | m -> G.pow base (B.erem (B.mul (B.of_int m) r) order)

  let sign drbg mvk sk ~msg ~policy =
    Trace.with_span "abs.sign" @@ fun _ ->
    T.bump T.Abs_sign;
    let msp = Msp.build policy in
    let v =
      match Msp.satisfying_rows msp policy sk.attrs with
      | Some v -> v
      | None -> invalid_arg "Abs.sign: key attributes do not satisfy the policy"
    in
    let tau = Drbg.generate drbg 32 in
    let hash = msg_scalar tau msg in
    let r0 = P.rand_scalar drbg in
    let rr = Array.init msp.Msp.rows (fun _ -> P.rand_scalar drbg) in
    let y = G.pow sk.k_base r0 in
    let w = G.pow sk.k0 r0 in
    let base_c = msg_base mvk hash in
    let s =
      Array.init msp.Msp.rows (fun i ->
          let key_part =
            if v.(i) = 0 then G.one
            else begin
              match Attr_map.find_opt msp.Msp.labels.(i) sk.k_u with
              | Some k -> G.pow k r0
              | None ->
                (* satisfying_rows only selects held attributes *)
                assert false
            end
          in
          G.mul key_part (G.pow base_c rr.(i)))
    in
    let p =
      Array.init msp.Msp.cols (fun j ->
          let acc = ref G.one in
          for i = 0 to msp.Msp.rows - 1 do
            let mij = msp.Msp.matrix.(i).(j) in
            if mij <> 0 then
              acc := G.mul !acc (pow_entry (attr_base mvk msp.Msp.labels.(i)) mij rr.(i))
          done;
          !acc)
    in
    { tau; y; w; s; p }

  (* --- serialization (needed below to commit to sigma in the verifier's
     weight derivation) --- *)

  let put_u16 buf n =
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (n land 0xff))

  let to_bytes sigma =
    let buf = Buffer.create 256 in
    put_u16 buf (String.length sigma.tau);
    Buffer.add_string buf sigma.tau;
    Buffer.add_string buf (G.to_bytes sigma.y);
    Buffer.add_string buf (G.to_bytes sigma.w);
    put_u16 buf (Array.length sigma.s);
    Array.iter (fun x -> Buffer.add_string buf (G.to_bytes x)) sigma.s;
    put_u16 buf (Array.length sigma.p);
    Array.iter (fun x -> Buffer.add_string buf (G.to_bytes x)) sigma.p;
    Buffer.contents buf

  (* Fiat-Shamir-style weights for the combined verification equation:
     [verify] is deterministic and takes no randomness, so the random
     linear-combination coefficients that merge the key-binding and the
     per-column span-program equations into one product are derived from
     the (message, policy, signature) under check. A forger commits to
     sigma before the weights exist, so a combination that cancels a bad
     equation against another is a ~1/order event per attempt — the same
     bound as verifier-sampled small-exponent batching. *)
  let verify_weights ~msg ~policy sigma n =
    let seed =
      String.concat "\x00"
        [ "zkqac-abs-verify-weights"; msg; Expr.to_string policy; to_bytes sigma ]
    in
    let drbg = Drbg.create ~seed in
    Array.init n (fun _ -> P.rand_scalar drbg)

  (* Typed verification: each way ABS.Verify can fail is a distinct
     [Bad_abs_signature] payload, so a client rejection is attributable.

     The acceptance test is one product-of-pairings-equals-one check: with
     weights z_kb (key binding) and z_j (column j),

       e(W^{z_kb}, A0) * e(Y^{-1}, h0^{z_kb} h^{z_0})
         * prod_i e(S_i, (AB^{u(i)})^{sum_j M_ij z_j})
         * prod_j e((C g^{h_m})^{-z_j}, P_j)  =  1

     which is k + l + 2 Miller loops sharing a single accumulator and one
     final exponentiation, versus 2(k + l) + 3 full pairings for the
     one-equation-at-a-time form. Only when the product is not 1 do we
     re-check equation by equation to name the culprit. *)
  let verify_result mvk ~msg ~policy sigma =
    Trace.with_span "abs.verify" @@ fun _ ->
    T.bump T.Abs_verify;
    let fail what = Error (Zkqac_util.Verify_error.Bad_abs_signature what) in
    let msp = Msp.build policy in
    if Array.length sigma.s <> msp.Msp.rows || Array.length sigma.p <> msp.Msp.cols
    then fail "component count does not match the policy's span program"
    else if G.is_one sigma.y then fail "degenerate Y component"
    else begin
      let hash = msg_scalar sigma.tau msg in
      let base_c = msg_base mvk hash in
      let bases = Array.map (fun u -> attr_base mvk u) msp.Msp.labels in
      let ws = verify_weights ~msg ~policy sigma (msp.Msp.cols + 1) in
      let zkb = ws.(msp.Msp.cols) in
      let row_terms = ref [] in
      for i = msp.Msp.rows - 1 downto 0 do
        let c = ref B.zero in
        for j = 0 to msp.Msp.cols - 1 do
          let mij = msp.Msp.matrix.(i).(j) in
          if mij <> 0 then
            c := B.erem (B.add !c (B.mul (B.of_int mij) ws.(j))) order
        done;
        if not (B.is_zero !c) then
          row_terms := (sigma.s.(i), G.pow bases.(i) !c) :: !row_terms
      done;
      let col_terms =
        List.init msp.Msp.cols (fun j ->
            (G.pow base_c (B.neg ws.(j)), sigma.p.(j)))
      in
      let terms =
        (G.pow sigma.w zkb, mvk.cap_a0)
        :: (G.inv sigma.y, G.mul (G.pow mvk.h0 zkb) (G.pow mvk.h ws.(0)))
        :: (!row_terms @ col_terms)
      in
      if P.Gt.is_one (P.e_prod terms) then Ok ()
      else if not (P.Gt.equal (P.e sigma.w mvk.cap_a0) (P.e sigma.y mvk.h0))
      then fail "key-binding pairing equation"
      else begin
        let bad = ref (-1) in
        for j = 0 to msp.Msp.cols - 1 do
          if !bad < 0 then begin
            let lhs = ref P.Gt.one in
            for i = 0 to msp.Msp.rows - 1 do
              let mij = msp.Msp.matrix.(i).(j) in
              if mij <> 0 then
                lhs := P.Gt.mul !lhs (P.e sigma.s.(i) (pow_entry bases.(i) mij B.one))
            done;
            let rhs = P.e base_c sigma.p.(j) in
            let rhs = if j = 0 then P.Gt.mul (P.e sigma.y mvk.h) rhs else rhs in
            if not (P.Gt.equal !lhs rhs) then bad := j
          end
        done;
        if !bad >= 0 then
          fail (Printf.sprintf "span-program equation (column %d)" !bad)
        else
          (* Combined product rejected but every individual equation holds:
             a ~1/order coincidence in the weight derivation. Reject — the
             combined check is the authoritative one. *)
          fail "combined verification equation"
      end
    end

  let verify mvk ~msg ~policy sigma =
    Result.is_ok (verify_result mvk ~msg ~policy sigma)

  (* Batch verification with random exponents. All signatures share one
     policy (hence one span program), so every equation of every signature
     folds into a single product-of-pairings-equals-one check: with
     per-signature weights d_m, per-column weights z_j and a key-binding
     weight z_kb,

       e(prod_m W_m^{d_m z_kb}, A0)
         * e((prod_m Y_m^{d_m})^{-1}, h0^{z_kb} h^{z_0})
         * prod_i e(prod_m S_{m,i}^{d_m}, (AB^{u(i)})^{sum_j M_ij z_j})
         * prod_h e((C g^h)^{-1}, prod_{m : h_m = h} prod_j P_{m,j}^{z_j d_m})
       = 1

     -- k row pairings regardless of the batch size, plus one pairing per
     *distinct* message hash: batches that re-sign the same message (the
     common case for APS entries sharing a region) collapse their C-side
     terms into one Miller loop (the "same-message fast path"), all under
     one shared accumulator and a single final exponentiation. *)
  let verify_batch drbg mvk ~policy sigs =
    Trace.with_span "abs.verify_batch"
      ~attrs:[ ("batch", Trace.Int (List.length sigs)) ]
    @@ fun _ ->
    T.bump T.Abs_verify;
    match sigs with
    | [] -> true
    | [ (msg, sigma) ] -> verify mvk ~msg ~policy sigma
    | _ ->
      let msp = Msp.build policy in
      let shape_ok =
        List.for_all
          (fun (_, s) ->
            Array.length s.s = msp.Msp.rows
            && Array.length s.p = msp.Msp.cols
            && not (G.is_one s.y))
          sigs
      in
      if not shape_ok then false
      else begin
        let weights =
          List.map (fun (msg, s) -> (msg, s, P.rand_scalar drbg)) sigs
        in
        let zs = Array.init msp.Msp.cols (fun _ -> P.rand_scalar drbg) in
        let zkb = P.rand_scalar drbg in
        let w_acc =
          List.fold_left (fun acc (_, s, d) -> G.mul acc (G.pow s.w d)) G.one weights
        in
        let y_acc =
          List.fold_left (fun acc (_, s, d) -> G.mul acc (G.pow s.y d)) G.one weights
        in
        let bases = Array.map (fun u -> attr_base mvk u) msp.Msp.labels in
        (* Row terms: the column weights collapse each row's per-column
           entries into one exponent c_i = sum_j M_ij z_j. *)
        let row_terms = ref [] in
        for i = msp.Msp.rows - 1 downto 0 do
          let c = ref B.zero in
          for j = 0 to msp.Msp.cols - 1 do
            let mij = msp.Msp.matrix.(i).(j) in
            if mij <> 0 then
              c := B.erem (B.add !c (B.mul (B.of_int mij) zs.(j))) order
          done;
          if not (B.is_zero !c) then begin
            let s_acc =
              List.fold_left
                (fun acc (_, s, d) -> G.mul acc (G.pow s.s.(i) d))
                G.one weights
            in
            row_terms := (s_acc, G.pow bases.(i) !c) :: !row_terms
          end
        done;
        (* C-side terms, grouped by message hash (same-message fast path). *)
        let groups : (string, B.t * G.t ref) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (msg, s, d) ->
            let hash = msg_scalar s.tau msg in
            let q = ref G.one in
            for j = 0 to msp.Msp.cols - 1 do
              q := G.mul !q (G.pow s.p.(j) (B.erem (B.mul zs.(j) d) order))
            done;
            let key = B.to_string hash in
            match Hashtbl.find_opt groups key with
            | Some (_, acc) -> acc := G.mul !acc !q
            | None -> Hashtbl.add groups key (hash, ref !q))
          weights;
        let msg_terms =
          Hashtbl.fold
            (fun _ (hash, acc) l -> (G.inv (msg_base mvk hash), !acc) :: l)
            groups []
        in
        let terms =
          (G.pow w_acc zkb, mvk.cap_a0)
          :: (G.inv y_acc, G.mul (G.pow mvk.h0 zkb) (G.pow mvk.h zs.(0)))
          :: (!row_terms @ msg_terms)
        in
        P.Gt.is_one (P.e_prod terms)
      end

  let relaxed_policy keep = Expr.of_attrs_or (Attr.Set.elements keep)

  let relax drbg mvk sigma ~msg ~policy ~keep =
    Trace.with_span "abs.relax" @@ fun _ ->
    T.bump T.Abs_relax;
    match Msp.purge policy ~keep with
    | None -> None
    | Some { Msp.kept_rows; kept_cols } ->
      let msp = Msp.build policy in
      if Array.length sigma.s <> msp.Msp.rows || Array.length sigma.p <> msp.Msp.cols
      then None
      else begin
        let hash = msg_scalar sigma.tau msg in
        let base_c = msg_base mvk hash in
        (* Step 1: collapse the kept columns into a single P component. *)
        let p1 = ref G.one in
        List.iter (fun j -> p1 := G.mul !p1 sigma.p.(j)) kept_cols;
        (* Steps 2-3: one S component per kept attribute, in the canonical
           (sorted) order of the relaxed predicate; duplicates merge by
           multiplication, missing attributes are synthesized. *)
        let attrs_sorted = Attr.Set.elements keep in
        let s =
          List.map
            (fun u ->
              let dup_rows = List.filter (fun i -> Attr.equal msp.Msp.labels.(i) u) kept_rows in
              match dup_rows with
              | [] ->
                let r = P.rand_scalar drbg in
                p1 := G.mul !p1 (G.pow (attr_base mvk u) r);
                G.pow base_c r
              | rows ->
                List.fold_left (fun acc i -> G.mul acc sigma.s.(i)) G.one rows)
            attrs_sorted
        in
        (* Step 4: re-randomize so the result is distributed like a fresh
           signature on the relaxed predicate. *)
        let r = P.rand_scalar drbg in
        Some
          {
            tau = sigma.tau;
            y = G.pow sigma.y r;
            w = G.pow sigma.w r;
            s = Array.of_list (List.map (fun si -> G.pow si r) s);
            p = [| G.pow !p1 r |];
          }
      end

  (* --- deserialization (encoding lives above, with the verifier) --- *)

  let g_size = String.length (G.to_bytes G.g)

  let decode data =
    let pos = ref 0 in
    let len = String.length data in
    let u16 () =
      if !pos + 2 > len then raise Exit;
      let v = (Char.code data.[!pos] lsl 8) lor Char.code data.[!pos + 1] in
      pos := !pos + 2;
      v
    in
    let take n =
      if !pos + n > len then raise Exit;
      let s = String.sub data !pos n in
      pos := !pos + n;
      s
    in
    let elt () = match G.of_bytes (take g_size) with Some e -> e | None -> raise Exit in
    let elts n =
      (* Explicit loop: Array.init has no specified evaluation order. *)
      let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (elt () :: acc) in
      Array.of_list (go n [])
    in
    match
      let tl = u16 () in
      let tau = take tl in
      let y = elt () in
      let w = elt () in
      let s = elts (u16 ()) in
      let p = elts (u16 ()) in
      if !pos <> len then raise Exit;
      { tau; y; w; s; p }
    with
    | sigma -> Ok sigma
    | exception Exit -> Error (Zkqac_util.Verify_error.Malformed { offset = !pos })

  let of_bytes data = Result.to_option (decode data)

  let size sigma = String.length (to_bytes sigma)

  let equal_signature s1 s2 =
    String.equal s1.tau s2.tau
    && G.equal s1.y s2.y && G.equal s1.w s2.w
    && Array.length s1.s = Array.length s2.s
    && Array.length s1.p = Array.length s2.p
    && Array.for_all2 G.equal s1.s s2.s
    && Array.for_all2 G.equal s1.p s2.p

  let mvk_to_bytes mvk =
    String.concat ""
      (List.map G.to_bytes
         [ mvk.g; mvk.h0; mvk.h; mvk.cap_a0; mvk.cap_a; mvk.cap_b; mvk.cap_c ])

  let mvk_of_bytes data =
    if String.length data <> 7 * g_size then None
    else begin
      let elt i = G.of_bytes (String.sub data (i * g_size) g_size) in
      match (elt 0, elt 1, elt 2, elt 3, elt 4, elt 5, elt 6) with
      | Some g, Some h0, Some h, Some cap_a0, Some cap_a, Some cap_b, Some cap_c ->
        Some { g; h0; h; cap_a0; cap_a; cap_b; cap_c }
      | _ -> None
    end
end
