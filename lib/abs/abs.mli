(** Attribute-based signatures with predicate relaxation (Section 5.2).

    This is the paper's variant of the Maji–Prabhakaran–Rosulek ABS
    (Practical Instantiation 4): signatures attest "someone whose attributes
    satisfy Υ signed m", and — the novelty — a signature under Υ can be
    *relaxed* by anyone into a signature under the weaker predicate
    [∨_{a ∈ A'} a] provided [Υ(𝔸∖A') = 0], without the signing key
    (ABS.Relax, Algorithm 2). Relaxation is what lets the service provider
    turn the data owner's APP signature into an APS signature proving
    inaccessibility without revealing the record's policy.

    The module is a functor over the pairing backend; all randomness comes
    from a caller-supplied DRBG. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  type msk
  (** Master signing key (a0, a, b) — held by the data owner only. *)

  type mvk
  (** Master verification key (g, h0, h, A0, A, B, C) — public. *)

  type signing_key
  (** Per-attribute-set signing key (K_base, K0, {K_u}). *)

  type signature

  val setup : Zkqac_hashing.Drbg.t -> msk * mvk

  val keygen : Zkqac_hashing.Drbg.t -> msk -> Zkqac_policy.Attr.Set.t -> signing_key
  (** ABS.KeyGen. The data owner typically calls this once on the full
      attribute universe (including the pseudo role) for itself. *)

  val key_attrs : signing_key -> Zkqac_policy.Attr.Set.t

  val sign :
    Zkqac_hashing.Drbg.t ->
    mvk ->
    signing_key ->
    msg:string ->
    policy:Zkqac_policy.Expr.t ->
    signature
  (** ABS.Sign. @raise Invalid_argument if the key's attributes do not
      satisfy the policy. *)

  val verify : mvk -> msg:string -> policy:Zkqac_policy.Expr.t -> signature -> bool
  (** ABS.Verify: checks Y ≠ 1, the key-binding pairing equation, and the
      span-program equations for every column. Thin wrapper over
      {!verify_result}. *)

  val verify_result :
    mvk ->
    msg:string ->
    policy:Zkqac_policy.Expr.t ->
    signature ->
    (unit, Zkqac_util.Verify_error.t) result
  (** As {!verify}, but a failure names the check that rejected the
      signature (shape mismatch, degenerate Y, key binding, or the first
      failing span-program column) as [Bad_abs_signature]. *)

  val relax :
    Zkqac_hashing.Drbg.t ->
    mvk ->
    signature ->
    msg:string ->
    policy:Zkqac_policy.Expr.t ->
    keep:Zkqac_policy.Attr.Set.t ->
    signature option
  (** ABS.Relax (Algorithm 2): derive a signature under [∨_{a∈keep} a] from
      a signature under [policy]. Returns [None] exactly when
      [Υ(𝔸∖keep) ≠ 0] (the purge step fails), in which case relaxation is
      cryptographically impossible. The output is re-randomized, so — as
      required for perfect privacy — it is distributed identically to a
      fresh signature on the relaxed predicate. *)

  val verify_batch :
    Zkqac_hashing.Drbg.t ->
    mvk ->
    policy:Zkqac_policy.Expr.t ->
    (string * signature) list ->
    bool
  (** Small-exponent batch verification of several signatures under the
      *same* policy — the shape of a VO's APS entries, which all verify
      under the user's one super policy. Each signature is weighted by a
      random scalar so forging any one of them breaks the combined equation
      except with probability ~1/order; shared attribute bases collapse,
      cutting the pairing count from k·(ℓ+2) to about k + ℓ + 2. Returns
      the conjunction of all individual verdicts (sound for accepting; on
      [false], fall back to one-by-one verification to locate the culprit). *)

  val relaxed_policy : Zkqac_policy.Attr.Set.t -> Zkqac_policy.Expr.t
  (** The super-policy shape [∨_{a∈keep} a] that relaxed signatures verify
      under (attributes in canonical order). *)

  val to_bytes : signature -> string
  val of_bytes : string -> signature option

  val decode : string -> (signature, Zkqac_util.Verify_error.t) result
  (** As {!of_bytes}, but a failure carries the byte offset where decoding
      stopped. Trailing bytes are rejected. *)

  val size : signature -> int
  (** Serialized size in bytes (the VO-size unit of the paper's
      experiments). *)

  val equal_signature : signature -> signature -> bool
  (** Structural equality of components (used by privacy tests; two honest
      signatures of the same statement are almost surely unequal because of
      re-randomization). *)

  val mvk_to_bytes : mvk -> string
  val mvk_of_bytes : string -> mvk option
end
