(** The query protocol between [zkqac client] and [zkqac serve].

    One exchange per connection: a single request frame (claimed roles +
    query box), a single typed response frame. Load shedding and deadline
    expiry are explicit response statuses — transient conditions a client
    retries with backoff — while [Bad_request] is terminal. The VO payload
    travels opaque; the client verifies it locally against its own copy of
    the public key, so a compromised server or network can only produce
    typed verification failures, never accepted forgeries. *)

module Box = Zkqac_core.Box

val request_magic : string
val response_magic : string

val max_request_bytes : int
(** Upper bound on an encoded request; bigger frames are refused before
    allocation. *)

type request = { roles : string list; query : Box.t }

val encode_request : request -> string

val decode_request :
  ?limits:Zkqac_util.Wire.limits ->
  string ->
  (request, Zkqac_util.Verify_error.t) result

type response =
  | Vo of string  (** the encoded VO — the client verifies it locally *)
  | Overloaded  (** load-shed: the in-flight bound was hit; retry later *)
  | Deadline  (** the server's query deadline expired; retry later *)
  | Bad_request of string  (** the request failed to decode; never retried *)
  | Server_error of string  (** query execution failed on the server *)

val response_code : response -> string

val encode_response : response -> string

val decode_response :
  ?limits:Zkqac_util.Wire.limits ->
  string ->
  (response, Zkqac_util.Verify_error.t) result
