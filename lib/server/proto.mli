(** The query protocol between [zkqac client] and [zkqac serve].

    One exchange per connection: a single request frame (claimed roles +
    query box), a single typed response frame. Load shedding and deadline
    expiry are explicit response statuses — transient conditions a client
    retries with backoff — while [Bad_request] is terminal. The VO payload
    travels opaque; the client verifies it locally against its own copy of
    the public key, so a compromised server or network can only produce
    typed verification failures, never accepted forgeries.

    Two envelope versions coexist. v2 adds end-to-end correlation: requests
    carry a client-minted 64-bit request id, responses echo it back with a
    server-side timing split. Each version is its own magic string (the
    Wire trailing-byte audit forbids appending fields to v1 frames); both
    decoders accept both versions, and the server answers in the version
    the request arrived in, so old and new peers interoperate in either
    direction. Request ids are correlation-only and never enter VO bytes. *)

module Box = Zkqac_core.Box

val request_magic_v1 : string
val request_magic : string
val response_magic_v1 : string
val response_magic : string

val max_request_bytes : int
(** Upper bound on an encoded request; bigger frames are refused before
    allocation. *)

(** {1 Request ids} *)

val mint_req_id : unit -> int64
(** A fresh non-zero correlation id (splitmix64 over a per-process random
    base + counter): unique within a run, collision-unlikely across
    processes. Ids carry no authority. *)

val req_id_hex : int64 -> string
(** Canonical textual form: exactly 16 lowercase hex digits — what audit
    entries, flight dumps, the slowlog and loadgen reports all print, so
    one grep joins them. *)

val req_id_of_hex : string -> int64 option
(** Inverse of {!req_id_hex}; [None] unless the string is exactly 16 hex
    digits. *)

(** {1 Requests} *)

type request = {
  req_id : int64 option;
      (** [None] encodes (and decodes from) the v1 format — byte-identical
          to the pre-correlation protocol *)
  roles : string list;
  query : Box.t;
}

val encode_request : request -> string

val decode_request :
  ?limits:Zkqac_util.Wire.limits ->
  string ->
  (request, Zkqac_util.Verify_error.t) result

(** {1 Responses} *)

type response =
  | Vo of string  (** the encoded VO — the client verifies it locally *)
  | Overloaded  (** load-shed: the in-flight bound was hit; retry later *)
  | Deadline  (** the server's query deadline expired; retry later *)
  | Bad_request of string  (** the request failed to decode; never retried *)
  | Server_error of string  (** query execution failed on the server *)

val response_code : response -> string

(** Server-side time split, microseconds (clamped into u32): pool queue
    wait, the ABS.Relax batch, the rest of VO construction, VO byte
    encoding, and the whole server-side handling. *)
type timing = {
  queue_us : int;
  relax_us : int;
  prove_us : int;
  encode_us : int;
  total_us : int;
}

val zero_timing : timing

val us_of_ns : int64 -> int
(** Nanoseconds to clamped non-negative microseconds. *)

val timing_json : timing -> Zkqac_telemetry.Json.t

type footer = { f_req_id : int64; f_timing : timing }
(** The v2 response extension: the echoed request id plus the timing
    split. *)

val encode_response : ?footer:footer -> response -> string
(** Without [footer], the v1 format — byte-identical to the
    pre-correlation protocol. *)

val decode_response :
  ?limits:Zkqac_util.Wire.limits ->
  string ->
  (response * footer option, Zkqac_util.Verify_error.t) result
(** [footer] is [None] for v1 responses (an old peer answered). *)
