(** The socket-level fault-injection proxy behind [zkqac chaos].

    Extends the PR 3 adversary registry to the network boundary: the proxy
    forwards {!Proto} frames between client and server and injects one
    named {!Zkqac_adversary.Scenario.network} fault into the first
    [faults] connections — deterministically, so a retrying client that
    outlives the burst reaches the clean upstream.

    Scenarios: [net-stall] (accept, then silence), [net-slowloris]
    (byte-at-a-time trickle within a budget), [net-truncate] (honest
    length prefix, half the payload), [net-disconnect] (cut after
    [cut_after] raw bytes), [net-corrupt] (complete frame, flipped
    payload bytes), [net-refuse] (close on accept). *)

type config = {
  listen_host : string;
  listen_port : int;  (** 0 picks an ephemeral port *)
  upstream_host : string;
  upstream_port : int;
  scenario : string;  (** a {!Zkqac_adversary.Scenario.network} name *)
  faults : int;  (** fault the first [faults] connections, then run clean *)
  stall : float;  (** hold duration for net-stall / slowloris budget *)
  trickle_delay : float;  (** per-byte delay for net-slowloris *)
  cut_after : int;  (** bytes forwarded before net-disconnect cuts *)
  seed : int;  (** drives net-corrupt byte flips *)
}

val default_config : config

type t

val start : config -> (t, string) result
(** Validate the scenario name, bind the listener, spawn the acceptor.
    Returns without blocking. *)

val port : t -> int
(** The bound listen port (useful with [listen_port = 0]). *)

val injected : t -> int
(** Connections that received an injected fault so far. *)

val connections : t -> int

val stop : t -> unit
(** Close the listener and join all handler threads; idempotent. *)
