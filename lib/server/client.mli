(** The verifying, retrying client behind [zkqac client].

    Transient faults — transport errors, garbled envelopes, typed
    [Overloaded]/[Deadline] statuses — are retried with full-jitter
    exponential backoff under a bounded budget. A typed verification
    rejection of a complete response is terminal: soundness failures are
    never retried. *)

type config = {
  host : string;
  port : int;
  connect_timeout : float;
  read_deadline : float;  (** budget for reading the whole response frame *)
  write_deadline : float;
  retries : int;  (** retry budget: attempts beyond the first *)
  base_backoff : float;  (** first backoff cap, seconds *)
  max_backoff : float;
  batch : bool;  (** batch the signature verification *)
}

val default_config : config

type failure =
  | Rejected of Zkqac_util.Verify_error.t
      (** typed verification rejection of a complete response — never
          retried *)
  | Bad_request of string  (** the server refused the request — never retried *)
  | Exhausted of { attempts : int; last : string }
      (** only transient faults occurred, but the retry budget ran out *)

val failure_to_string : failure -> string

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  type success = {
    records : Zkqac_core.Record.t list;
    vo_bytes : int;
    attempts : int;  (** total attempts, 1 = no retry was needed *)
    req_id : int64;  (** the correlation id this query travelled under *)
    server : Proto.timing option;
        (** the server's timing footer (v2 responders only; [None] from an
            old v1 responder) *)
    attempt_ms : float;
        (** wall time of the winning attempt: network + server. Subtracting
            the footer's [total_us] isolates the network share. *)
    verify_ms : float;  (** local decode+verify time *)
  }

  val query :
    ?prng:Zkqac_rng.Prng.t ->
    ?req_id:int64 ->
    config ->
    mvk:Zkqac_abs.Abs.Make(P).mvk ->
    universe:Zkqac_policy.Universe.t ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Zkqac_core.Box.t ->
    unit ->
    (success, failure) result
  (** One authenticated query: send [query] claiming [user]'s roles, read
      the VO, verify it locally against [mvk]. The request carries [req_id]
      (minted here when absent or [0L]) across every retry; a v2 responder
      must echo it in the footer — a mismatch is treated as a transient
      fault. [prng] drives the backoff jitter only — never verification. *)
end
