(* Tail-based trace sampling for the serving daemon.

   Every request records its full span tree (the trace close hook fires per
   span close, independent of the export buffer's retention budget); the
   decision of whether to KEEP the tree is made only after the request
   finishes, when its latency and typed outcome are known. Kept requests —
   incidents — land in a bounded ring exposed live at /slowlog and dumpable
   as one Perfetto file each, so "why was that query slow at 03:12" is
   answerable from a server that has been up for weeks.

   Sampling policy: an incident is a request that either ended in a typed
   non-ok outcome (deadline, overloaded, bad-request, server-error) or was
   slower than the threshold. The threshold is a fixed configured value, or
   — when configured as 0 — the live p99 of all observed request latencies
   (with a floor and a warm-up count, so the first requests of a quiet
   server are not all "slow").

   Cost on the fast path: one hashtable insert/remove per request plus one
   lookup per span close, all under a single mutex per slowlog — a few
   hundred nanoseconds against queries that cost milliseconds of pairing
   arithmetic. Requests that are not sampled leave nothing behind. *)

module Trace = Zkqac_telemetry.Trace
module Histogram = Zkqac_telemetry.Histogram
module Metrics = Zkqac_telemetry.Metrics
module Json = Zkqac_telemetry.Json

let m_sampled =
  Metrics.counter ~name:"zkqac_slowlog_sampled_total"
    ~help:"Requests kept by the tail sampler, by reason (slow | error)."

let m_observed =
  Metrics.counter ~name:"zkqac_slowlog_observed_total"
    ~help:"Requests observed by the tail sampler (sampled or not)."

type incident = {
  i_req_id : int64;
  i_minted : bool;  (** the server minted the id (v1 client sent none) *)
  i_conn : int;
  i_time : float;  (** Unix wall-clock time the request finished *)
  i_outcome : string;  (** typed response code *)
  i_reason : string;  (** why it was kept: "slow" or "error" *)
  i_total_ms : float;
  i_timing : Proto.timing option;
  i_spans : Trace.info list;  (** complete span tree, root included *)
}

type pending = {
  p_req_id : int64;
  mutable p_spans : Trace.info list; (* reverse close order *)
  mutable p_count : int;
}

type t = {
  cap : int;
  threshold_ms : float; (* > 0 fixed; 0 = dynamic p99 *)
  max_spans : int;
  lock : Mutex.t;
  ring : incident option array;
  mutable next : int;
  mutable sampled : int; (* incidents ever kept *)
  mutable observed : int; (* requests ever observed *)
  lat : Histogram.t; (* request latencies, ns — feeds the dynamic threshold *)
  tracked : (int, pending) Hashtbl.t; (* root span id -> collector *)
}

(* The trace layer has one process-wide close hook; slowlogs register here
   and a single dispatcher fans each closing span out to whichever live
   slowlog tracks its root. Reading [!live] without the lock is sound: OCaml
   ref reads are atomic, and a stale list only costs one span. *)
let live : t list ref = ref []
let live_lock = Mutex.create ()

let on_close (info : Trace.info) =
  let root = info.Trace.span_root in
  if root <> 0 then
    List.iter
      (fun t ->
        Mutex.lock t.lock;
        (match Hashtbl.find_opt t.tracked root with
        | Some p when p.p_count < t.max_spans ->
          p.p_spans <- info :: p.p_spans;
          p.p_count <- p.p_count + 1
        | Some _ | None -> ());
        Mutex.unlock t.lock)
      !live

let register t =
  Mutex.lock live_lock;
  live := t :: !live;
  Trace.set_close_hook (Some on_close);
  Mutex.unlock live_lock

let close t =
  Mutex.lock live_lock;
  live := List.filter (fun t' -> not (t' == t)) !live;
  if !live = [] then Trace.set_close_hook None;
  Mutex.unlock live_lock

(* Dynamic mode needs enough observations for a meaningful p99, and a floor
   keeps a microsecond-fast fixture server from flagging its own noise. *)
let dynamic_warmup = 64
let dynamic_floor_ms = 1.0

let create ?(cap = 64) ?(threshold_ms = 0.0) ?(max_spans = 4096) () =
  if cap < 1 then invalid_arg "Slowlog.create: cap < 1";
  let t =
    {
      cap;
      threshold_ms;
      max_spans;
      lock = Mutex.create ();
      ring = Array.make cap None;
      next = 0;
      sampled = 0;
      observed = 0;
      lat = Histogram.create ();
      tracked = Hashtbl.create 64;
    }
  in
  register t;
  t

(* Caller holds [t.lock]. *)
let threshold_now_locked t =
  if t.threshold_ms > 0.0 then t.threshold_ms
  else if t.observed < dynamic_warmup then infinity
  else Float.max dynamic_floor_ms (Histogram.quantile t.lat 0.99 /. 1e6)

let threshold_ms_now t =
  Mutex.lock t.lock;
  let v = threshold_now_locked t in
  Mutex.unlock t.lock;
  v

let track t ~root ~req_id =
  if root <> 0 then begin
    Mutex.lock t.lock;
    Hashtbl.replace t.tracked root
      { p_req_id = req_id; p_spans = []; p_count = 0 };
    Mutex.unlock t.lock
  end

let observe t ~root ~req_id ~minted ~conn ~outcome ~total_ms ?timing () =
  Mutex.lock t.lock;
  let spans =
    match Hashtbl.find_opt t.tracked root with
    | Some p ->
      Hashtbl.remove t.tracked root;
      (* Close order is children-before-parents; flip to start order. *)
      List.rev p.p_spans
    | None -> []
  in
  (* The decision threshold is computed before this request's latency joins
     the histogram, so one slow request cannot hide itself by dragging the
     p99 up in its own observation. *)
  let threshold = threshold_now_locked t in
  t.observed <- t.observed + 1;
  Histogram.record t.lat (int_of_float (total_ms *. 1e6));
  let reason =
    if outcome <> "ok" then Some "error"
    else if total_ms > threshold then Some "slow"
    else None
  in
  (match reason with
  | None -> ()
  | Some reason ->
    let inc =
      {
        i_req_id = req_id;
        i_minted = minted;
        i_conn = conn;
        i_time = Unix.gettimeofday ();
        i_outcome = outcome;
        i_reason = reason;
        i_total_ms = total_ms;
        i_timing = timing;
        i_spans = spans;
      }
    in
    t.ring.(t.next) <- Some inc;
    t.next <- (t.next + 1) mod t.cap;
    t.sampled <- t.sampled + 1);
  Mutex.unlock t.lock;
  Metrics.inc m_observed [];
  match reason with
  | None -> false
  | Some reason ->
    Metrics.inc m_sampled [ ("reason", reason) ];
    true

let incidents t =
  Mutex.lock t.lock;
  (* Oldest first: the ring wraps at [next]. *)
  let out = ref [] in
  for k = t.cap - 1 downto 0 do
    match t.ring.((t.next + k) mod t.cap) with
    | Some inc -> out := inc :: !out
    | None -> ()
  done;
  let v = List.rev !out in
  Mutex.unlock t.lock;
  v

let sampled t =
  Mutex.lock t.lock;
  let v = t.sampled in
  Mutex.unlock t.lock;
  v

let observed t =
  Mutex.lock t.lock;
  let v = t.observed in
  Mutex.unlock t.lock;
  v

(* --- export --- *)

let value_json = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let span_json (s : Trace.info) =
  Json.Obj
    [ ("id", Json.Int s.Trace.span_id);
      ("parent", Json.Int s.Trace.span_parent);
      ("root", Json.Int s.Trace.span_root);
      ("name", Json.Str s.Trace.span_name);
      ("tid", Json.Int s.Trace.span_tid);
      ("start_ns", Json.Float (Int64.to_float s.Trace.start_ns));
      ("dur_ns", Json.Float (Int64.to_float s.Trace.dur_ns));
      ( "attrs",
        Json.Obj (List.map (fun (k, v) -> (k, value_json v)) s.Trace.span_attrs)
      ) ]

let incident_json inc =
  Json.Obj
    ([ ("req_id", Json.Str (Proto.req_id_hex inc.i_req_id));
       ("minted", Json.Bool inc.i_minted);
       ("conn", Json.Int inc.i_conn);
       ("time", Json.Float inc.i_time);
       ("outcome", Json.Str inc.i_outcome);
       ("reason", Json.Str inc.i_reason);
       ("total_ms", Json.Float inc.i_total_ms) ]
    @ (match inc.i_timing with
      | Some tm -> [ ("timing", Proto.timing_json tm) ]
      | None -> [])
    @ [ ("spans", Json.Arr (List.map span_json inc.i_spans)) ])

let to_json t =
  let incs = incidents t in
  Mutex.lock t.lock;
  let observed = t.observed and sampled = t.sampled in
  let threshold = threshold_now_locked t in
  Mutex.unlock t.lock;
  Json.Obj
    [ ("slowlog", Json.Int 1);
      ("observed", Json.Int observed);
      ("sampled", Json.Int sampled);
      ( "threshold_ms",
        if Float.is_finite threshold then Json.Float threshold
        else Json.Str "warming-up" );
      ("retained", Json.Int (List.length incs));
      ("incidents", Json.Arr (List.map incident_json incs)) ]

(* Per-incident Perfetto files are capped so a misbehaving hour cannot fill
   the disk with trace files; the newest incidents win. *)
let max_perfetto_dumps = 16

let dump t ~dir =
  let put path data =
    match Zkqac_durable.Durable.replace ~path data with
    | Ok () -> true
    | Error _ -> false
  in
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let written = ref 0 in
  let slowlog_path =
    Filename.concat dir (Printf.sprintf "slowlog-%d.json" (Unix.getpid ()))
  in
  if put slowlog_path (Json.to_string (to_json t) ^ "\n") then incr written;
  let incs = incidents t in
  let newest_first = List.rev incs in
  List.iteri
    (fun k inc ->
      if k < max_perfetto_dumps && inc.i_spans <> [] then begin
        let path =
          Filename.concat dir
            (Printf.sprintf "incident-%s.trace.json" (Proto.req_id_hex inc.i_req_id))
        in
        if put path (Json.to_string (Trace.chrome_json_of_spans inc.i_spans) ^ "\n")
        then incr written
      end)
    newest_first;
  !written
