(* A minimal HTTP/1.0 responder exposing the process-wide Metrics registry
   at GET /metrics, liveness at GET /healthz, and readiness at GET /readyz —
   enough for `curl`, a Prometheus scrape, and a supervisor's wait loop,
   nothing more. Used by `zkqac loadgen` and embedded by the server daemon;
   the daemon's readiness callback flips only after crash recovery
   completes, so harnesses can wait on /readyz instead of sleeping. *)

module Metrics = Zkqac_telemetry.Metrics

type t = {
  listen_fd : Unix.file_descr;
  ready : unit -> bool;
  extra : (string * (unit -> string)) list;
      (* additional GET routes (e.g. the server's /slowlog), served as
         application/json; bodies are produced per request *)
  mutable acceptor : Thread.t option;
  stopping : bool Atomic.t;
}

let respond t fd =
  let deadline = Sockio.deadline_after 2.0 in
  match
    (* Read until the blank line; cap the header block so a hostile peer
       cannot feed us forever. *)
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 256 in
    let rec slurp () =
      let left = Sockio.remaining_s deadline in
      if Buffer.length buf > 4096 || left <= 0.0 then Buffer.contents buf
      else begin
        match Unix.select [ fd ] [] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ()
        | [], _, _ -> Buffer.contents buf
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Buffer.contents buf
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            let s = Buffer.contents buf in
            if
              String.length s >= 4
              && String.sub s (String.length s - 4) 4 = "\r\n\r\n"
            then s
            else slurp ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ())
      end
    in
    slurp ()
  with
  | exception _ -> ()
  | request ->
    let has_path p =
      let probe = "GET " ^ p in
      let pl = String.length probe in
      String.length request >= pl && String.equal (String.sub request 0 pl) probe
    in
    let text = "text/plain; version=0.0.4" in
    let status, ctype, body =
      if has_path "/metrics" then ("200 OK", text, Metrics.to_prometheus ())
      else if has_path "/healthz" then ("200 OK", text, "ok\n")
      else if has_path "/readyz" then
        if t.ready () then ("200 OK", text, "ready\n")
        else ("503 Service Unavailable", text, "starting\n")
      else
        match List.find_opt (fun (p, _) -> has_path p) t.extra with
        | Some (_, produce) -> (
          (* A failing producer must not kill the endpoint thread. *)
          match produce () with
          | body -> ("200 OK", "application/json", body)
          | exception _ -> ("500 Internal Server Error", text, "error\n"))
        | None -> ("404 Not Found", text, "not found\n")
    in
    let head =
      Printf.sprintf
        "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n"
        status ctype (String.length body)
    in
    (try Sockio.write_all fd ~deadline (head ^ body) with _ -> ())

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        (* Serial service is plenty: a scrape is one small read + write. *)
        Fun.protect ~finally:(fun () -> Sockio.close_noerr fd) (fun () ->
            respond t fd))
  done;
  Unix.close t.listen_fd

let start ?(host = "127.0.0.1") ?(ready = fun () -> true) ?(extra = []) ~port
    () =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 16;
    fd
  with
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "metrics listen: %s: %s" fn (Unix.error_message e))
  | listen_fd ->
    let t =
      { listen_fd; ready; extra; acceptor = None; stopping = Atomic.make false }
    in
    t.acceptor <- Some (Thread.create accept_loop t);
    Ok t

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> 0

let stop t =
  if not (Atomic.exchange t.stopping true) then
    match t.acceptor with Some th -> Thread.join th | None -> ()
