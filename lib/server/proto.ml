(* The query protocol spoken between `zkqac client` and `zkqac serve`.

   One exchange per connection: the client sends a single request frame
   (claimed roles + query box), the server answers with a single response
   frame, both length-prefixed by Sockio and encoded with the
   resource-bounded Wire readers. Responses are typed: besides the VO
   payload there are explicit Overloaded / Deadline statuses, so shedding
   and expiry are protocol outcomes the client can act on (retry with
   backoff) — never a silent hang. *)

module Wire = Zkqac_util.Wire
module Box = Zkqac_core.Box

let request_magic = "ZKQAC-REQ-1"
let response_magic = "ZKQAC-RSP-1"

(* A request is small: role names and 2·dims u32 corners. Anything bigger
   than this bound is hostile and is refused before allocation. *)
let max_request_bytes = 1 lsl 16

type request = { roles : string list; query : Box.t }

let encode_box w (b : Box.t) =
  let dims = Array.length b.Box.lo in
  Wire.u8 w dims;
  Array.iter (fun v -> Wire.u32 w v) b.Box.lo;
  Array.iter (fun v -> Wire.u32 w v) b.Box.hi

let decode_box r =
  let dims = Wire.ru8 r in
  let corner () = Array.init dims (fun _ -> Wire.ru32 r) in
  let lo = corner () in
  let hi = corner () in
  (* Box.make re-checks the invariants; Invalid_argument becomes Malformed
     through Wire.decode. *)
  Box.make ~lo ~hi

let encode_request { roles; query } =
  let w = Wire.writer () in
  Wire.bytes w request_magic;
  Wire.u32 w (List.length roles);
  List.iter (fun role -> Wire.bytes w role) roles;
  encode_box w query;
  Wire.contents w

let decode_request ?limits data =
  Wire.decode ?limits data @@ fun r ->
  if not (String.equal (Wire.rbytes r) request_magic) then raise Wire.Malformed;
  let n = Wire.rcount r in
  let roles = List.init n (fun _ -> Wire.rbytes r) in
  let query = decode_box r in
  { roles; query }

type response =
  | Vo of string  (** the encoded VO — the client verifies it locally *)
  | Overloaded  (** load-shed: the in-flight bound was hit; retry later *)
  | Deadline  (** the server's query deadline expired; retry later *)
  | Bad_request of string  (** the request failed to decode; never retried *)
  | Server_error of string  (** query execution failed on the server *)

let response_code = function
  | Vo _ -> "ok"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Bad_request _ -> "bad-request"
  | Server_error _ -> "server-error"

let encode_response resp =
  let w = Wire.writer () in
  Wire.bytes w response_magic;
  (match resp with
  | Vo vo ->
    Wire.u8 w 0;
    Wire.bytes w vo
  | Overloaded -> Wire.u8 w 1
  | Deadline -> Wire.u8 w 2
  | Bad_request detail ->
    Wire.u8 w 3;
    Wire.bytes w detail
  | Server_error detail ->
    Wire.u8 w 4;
    Wire.bytes w detail);
  Wire.contents w

let decode_response ?limits data =
  Wire.decode ?limits data @@ fun r ->
  if not (String.equal (Wire.rbytes r) response_magic) then raise Wire.Malformed;
  match Wire.ru8 r with
  | 0 -> Vo (Wire.rbytes r)
  | 1 -> Overloaded
  | 2 -> Deadline
  | 3 -> Bad_request (Wire.rbytes r)
  | 4 -> Server_error (Wire.rbytes r)
  | _ -> raise Wire.Malformed
