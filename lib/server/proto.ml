(* The query protocol spoken between `zkqac client` and `zkqac serve`.

   One exchange per connection: the client sends a single request frame
   (claimed roles + query box), the server answers with a single response
   frame, both length-prefixed by Sockio and encoded with the
   resource-bounded Wire readers. Responses are typed: besides the VO
   payload there are explicit Overloaded / Deadline statuses, so shedding
   and expiry are protocol outcomes the client can act on (retry with
   backoff) — never a silent hang.

   Versioning. The Wire decoders enforce a trailing-byte audit, so the v2
   correlation extension (a client-minted 64-bit request id on requests, a
   request-id + server-timing footer on responses) could not be appended to
   the v1 frames; instead each extension is a new magic string and both
   decoders accept both versions. The server mirrors the requester: a v1
   request gets a v1 response, so an old client never sees bytes it cannot
   parse, and a new client treats a footerless response as "old peer"
   rather than an error. Request ids are correlation-only: they are never
   hashed into, signed over, or carried inside VO bytes. *)

module Wire = Zkqac_util.Wire
module Box = Zkqac_core.Box

let request_magic_v1 = "ZKQAC-REQ-1"
let request_magic = "ZKQAC-REQ-2"
let response_magic_v1 = "ZKQAC-RSP-1"
let response_magic = "ZKQAC-RSP-2"

(* A request is small: role names and 2·dims u32 corners (plus 8 id bytes
   in v2). Anything bigger than this bound is hostile and is refused before
   allocation. *)
let max_request_bytes = 1 lsl 16

(* --- request ids --- *)

let req_id_hex id = Printf.sprintf "%016Lx" id

let req_id_of_hex s =
  if String.length s <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v -> Some v
    | None -> None

(* Minting: a splitmix64 step over a per-process random base plus an atomic
   counter — unique within a process run and collision-unlikely across
   processes, which is all a correlation id needs (it carries no authority
   and never enters VO bytes). *)
let splitmix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mint_base =
  Int64.logxor
    (Int64.of_float (Unix.gettimeofday () *. 1e6))
    (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40)

let mint_ctr = Atomic.make 1

let mint_req_id () =
  let k = Atomic.fetch_and_add mint_ctr 1 in
  let id = splitmix64 (Int64.add mint_base (Int64.of_int k)) in
  (* 0 means "no id" everywhere (flight events, slowlog); never mint it. *)
  if id = 0L then 1L else id

(* --- requests --- *)

type request = { req_id : int64 option; roles : string list; query : Box.t }

let encode_box w (b : Box.t) =
  let dims = Array.length b.Box.lo in
  Wire.u8 w dims;
  Array.iter (fun v -> Wire.u32 w v) b.Box.lo;
  Array.iter (fun v -> Wire.u32 w v) b.Box.hi

let decode_box r =
  let dims = Wire.ru8 r in
  let corner () = Array.init dims (fun _ -> Wire.ru32 r) in
  let lo = corner () in
  let hi = corner () in
  (* Box.make re-checks the invariants; Invalid_argument becomes Malformed
     through Wire.decode. *)
  Box.make ~lo ~hi

(* A request without an id is encoded byte-identically to the v1 format, so
   "encode with [req_id = None]" doubles as the old-peer emulation the
   compatibility tests exercise. *)
let encode_request { req_id; roles; query } =
  let w = Wire.writer () in
  (match req_id with
  | None -> Wire.bytes w request_magic_v1
  | Some id ->
    Wire.bytes w request_magic;
    Wire.u64 w id);
  Wire.u32 w (List.length roles);
  List.iter (fun role -> Wire.bytes w role) roles;
  encode_box w query;
  Wire.contents w

let decode_request ?limits data =
  Wire.decode ?limits data @@ fun r ->
  let magic = Wire.rbytes r in
  let req_id =
    if String.equal magic request_magic then Some (Wire.ru64 r)
    else if String.equal magic request_magic_v1 then None
    else raise Wire.Malformed
  in
  let n = Wire.rcount r in
  let roles = List.init n (fun _ -> Wire.rbytes r) in
  let query = decode_box r in
  { req_id; roles; query }

(* --- responses --- *)

type response =
  | Vo of string  (** the encoded VO — the client verifies it locally *)
  | Overloaded  (** load-shed: the in-flight bound was hit; retry later *)
  | Deadline  (** the server's query deadline expired; retry later *)
  | Bad_request of string  (** the request failed to decode; never retried *)
  | Server_error of string  (** query execution failed on the server *)

let response_code = function
  | Vo _ -> "ok"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Bad_request _ -> "bad-request"
  | Server_error _ -> "server-error"

(* Server-side time split, microseconds, clamped into u32 (a stage longer
   than ~71 minutes saturates rather than wraps). [queue_us] is pool queue
   wait, [relax_us] the ABS.Relax batch, [prove_us] the rest of VO
   construction (traversal + direct entries), [encode_us] VO byte encoding,
   [total_us] the whole server-side handling of the request. *)
type timing = {
  queue_us : int;
  relax_us : int;
  prove_us : int;
  encode_us : int;
  total_us : int;
}

let zero_timing =
  { queue_us = 0; relax_us = 0; prove_us = 0; encode_us = 0; total_us = 0 }

let us_of_ns ns =
  if Int64.compare ns 0L <= 0 then 0
  else
    let us = Int64.div ns 1_000L in
    if Int64.compare us (Int64.of_int Wire.max_u32) >= 0 then Wire.max_u32
    else Int64.to_int us

type footer = { f_req_id : int64; f_timing : timing }

let encode_timing w t =
  Wire.u32 w t.queue_us;
  Wire.u32 w t.relax_us;
  Wire.u32 w t.prove_us;
  Wire.u32 w t.encode_us;
  Wire.u32 w t.total_us

let decode_timing r =
  let queue_us = Wire.ru32 r in
  let relax_us = Wire.ru32 r in
  let prove_us = Wire.ru32 r in
  let encode_us = Wire.ru32 r in
  let total_us = Wire.ru32 r in
  { queue_us; relax_us; prove_us; encode_us; total_us }

let timing_json t =
  Zkqac_telemetry.Json.Obj
    [ ("queue_us", Zkqac_telemetry.Json.Int t.queue_us);
      ("relax_us", Zkqac_telemetry.Json.Int t.relax_us);
      ("prove_us", Zkqac_telemetry.Json.Int t.prove_us);
      ("encode_us", Zkqac_telemetry.Json.Int t.encode_us);
      ("total_us", Zkqac_telemetry.Json.Int t.total_us) ]

let encode_response ?footer resp =
  let w = Wire.writer () in
  (match footer with
  | None -> Wire.bytes w response_magic_v1
  | Some { f_req_id; f_timing } ->
    Wire.bytes w response_magic;
    Wire.u64 w f_req_id;
    encode_timing w f_timing);
  (match resp with
  | Vo vo ->
    Wire.u8 w 0;
    Wire.bytes w vo
  | Overloaded -> Wire.u8 w 1
  | Deadline -> Wire.u8 w 2
  | Bad_request detail ->
    Wire.u8 w 3;
    Wire.bytes w detail
  | Server_error detail ->
    Wire.u8 w 4;
    Wire.bytes w detail);
  Wire.contents w

let decode_response ?limits data =
  Wire.decode ?limits data @@ fun r ->
  let magic = Wire.rbytes r in
  let footer =
    if String.equal magic response_magic then begin
      let f_req_id = Wire.ru64 r in
      let f_timing = decode_timing r in
      Some { f_req_id; f_timing }
    end
    else if String.equal magic response_magic_v1 then None
    else raise Wire.Malformed
  in
  let resp =
    match Wire.ru8 r with
    | 0 -> Vo (Wire.rbytes r)
    | 1 -> Overloaded
    | 2 -> Deadline
    | 3 -> Bad_request (Wire.rbytes r)
    | 4 -> Server_error (Wire.rbytes r)
    | _ -> raise Wire.Malformed
  in
  (resp, footer)
