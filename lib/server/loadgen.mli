(** The load generator behind [zkqac loadgen].

    N simulated users replay the TPC-H Q6-style range-query mix against a
    running server through the retrying {!Client}, so every response is
    verified, not just received. Closed loop (no [qps]: next query starts
    when the previous completes) or open loop ([qps]: exponential
    interarrival at the offered rate, the mode that exercises shedding).
    Latency lands in per-user histograms merged into the {!report};
    outcomes also feed the process-wide {!Zkqac_telemetry.Metrics}
    registry for a live [/metrics] endpoint ({!Metrics_http}). *)

type config = {
  client : Client.config;
  users : int;
  qps : float option;  (** [None] = closed loop; total offered rate otherwise *)
  duration : float;  (** wall-clock budget, seconds *)
  max_queries : int;  (** stop earlier after this many sends (0 = no cap) *)
  frac : float;  (** query box covers ~[frac] of the keyspace *)
  roles : string list;  (** claimed roles; [[]] = every role in the universe *)
  seed : int;
}

val default_config : config

type slow_query = {
  s_req_id : int64;
      (** loadgen-minted correlation id — greps straight into the server's
          audit log, /slowlog, and flight dump *)
  s_outcome : string;
  s_total_ms : float;
  s_server_ms : float option;  (** from the v2 timing footer; [None] on v1 *)
  s_network_ms : float option;  (** winning attempt wall minus server share *)
  s_attempts : int;  (** 0 = unknown (the failure does not carry it) *)
}

type report = {
  wall : float;  (** seconds the run actually took *)
  sent : int;
  ok : int;
  rejected : int;
      (** typed verification rejections — must be 0 against an honest server *)
  bad_request : int;
  exhausted : int;  (** retry budget ran out on transients *)
  retries : int;
  records : int;  (** result records returned across all verified responses *)
  latency : Zkqac_telemetry.Histogram.t;
      (** per-query wall latency, retries included *)
  server_lat : Zkqac_telemetry.Histogram.t;
      (** server-reported totals from v2 timing footers *)
  network_lat : Zkqac_telemetry.Histogram.t;
      (** winning-attempt wall minus the server-reported share *)
  verify_lat : Zkqac_telemetry.Histogram.t;  (** local decode+verify *)
  slowest : slow_query list;
      (** worst queries of the run, errors ranked first, bounded *)
}

val report_to_json : report -> Zkqac_telemetry.Json.t

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  val run : config -> ads:string -> (report, string) result
  (** Load the ADS checkpoint at [ads] (for the public key and universe the
      client verifies against), run the configured users to completion, and
      merge their tallies. *)
end
