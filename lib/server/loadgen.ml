(* The load generator behind `zkqac loadgen --users N --qps Q`.

   N simulated users replay the TPC-H Q6-style range-query mix against a
   running server through the retrying client — so every response is
   *verified*, not just received, and the generator doubles as an
   end-to-end correctness check under load. Two pacing modes:

   - closed loop (no --qps): each user issues its next query the moment the
     previous one completes — the classic saturation probe;
   - open loop (--qps Q): users issue on exponential interarrival times at
     Q/N per user, so offered load stays fixed while the server degrades —
     the mode that actually exercises shedding.

   Latency lands in per-user HDR histograms (merged in the report, no
   cross-thread contention on the hot path); outcomes, retries, sheds and
   timeouts are counted both in the report and in the process-wide Metrics
   registry, which an optional /metrics endpoint exposes live. *)

module Prng = Zkqac_rng.Prng
module Histogram = Zkqac_telemetry.Histogram
module Metrics = Zkqac_telemetry.Metrics
module Monotonic_clock = Zkqac_parallel.Monotonic_clock
module Workload = Zkqac_tpch.Workload
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Json = Zkqac_telemetry.Json

let m_queries =
  Metrics.counter ~name:"zkqac_loadgen_queries_total"
    ~help:"Queries issued by the load generator, by outcome."

type config = {
  client : Client.config;
  users : int;
  qps : float option;  (** None = closed loop; total offered rate otherwise *)
  duration : float;  (** wall-clock budget, seconds *)
  max_queries : int;  (** stop earlier after this many sends (0 = no cap) *)
  frac : float;  (** query box covers ~[frac] of the keyspace *)
  roles : string list;  (** claimed roles; [] = every role in the universe *)
  seed : int;
}

let default_config =
  {
    client = Client.default_config;
    users = 4;
    qps = None;
    duration = 10.0;
    max_queries = 0;
    frac = 0.001;
    roles = [];
    seed = 42;
  }

(* The client-side half of the correlation story: each query's id plus the
   latency split the server's timing footer makes possible. Errors rank
   above slow successes so a storm of failures is never crowded out. *)
type slow_query = {
  s_req_id : int64;
  s_outcome : string;
  s_total_ms : float;
  s_server_ms : float option;  (** from the v2 timing footer; [None] on v1 *)
  s_network_ms : float option;  (** winning attempt wall minus server share *)
  s_attempts : int;  (** 0 = unknown (the failure does not carry it) *)
}

let slowest_kept = 8

type report = {
  wall : float;  (** seconds the run actually took *)
  sent : int;
  ok : int;
  rejected : int;  (** typed verification rejections — must be 0 vs an honest server *)
  bad_request : int;
  exhausted : int;  (** retry budget ran out on transients *)
  retries : int;
  records : int;  (** result records returned across all verified responses *)
  latency : Histogram.t;  (** per-query wall latency, retries included *)
  server_lat : Histogram.t;  (** server-reported total, v2 footers only *)
  network_lat : Histogram.t;  (** winning-attempt wall minus server share *)
  verify_lat : Histogram.t;  (** local decode+verify *)
  slowest : slow_query list;  (** errors first, then slowest, bounded *)
}

let slow_query_json s =
  Json.Obj
    ([
       ("req_id", Json.Str (Proto.req_id_hex s.s_req_id));
       ("outcome", Json.Str s.s_outcome);
       ("total_ms", Json.Float s.s_total_ms);
     ]
    @ (match s.s_server_ms with
      | Some v -> [ ("server_ms", Json.Float v) ]
      | None -> [])
    @ (match s.s_network_ms with
      | Some v -> [ ("network_ms", Json.Float v) ]
      | None -> [])
    @ [ ("attempts", Json.Int s.s_attempts) ])

let report_to_json (r : report) =
  Json.Obj
    [
      ("wall_s", Json.Float r.wall);
      ("sent", Json.Int r.sent);
      ("ok", Json.Int r.ok);
      ("rejected", Json.Int r.rejected);
      ("bad_request", Json.Int r.bad_request);
      ("exhausted", Json.Int r.exhausted);
      ("retries", Json.Int r.retries);
      ("records", Json.Int r.records);
      ("latency", Histogram.to_json r.latency);
      ("server_latency", Histogram.to_json r.server_lat);
      ("network_latency", Histogram.to_json r.network_lat);
      ("verify_latency", Histogram.to_json r.verify_lat);
      ("slowest", Json.Arr (List.map slow_query_json r.slowest));
    ]

(* Errors outrank slow successes; ties break toward the slower query. *)
let slow_priority s = ((if s.s_outcome = "ok" then 0 else 1), s.s_total_ms)

let top_slow l =
  let sorted =
    List.sort (fun a b -> compare (slow_priority b) (slow_priority a)) l
  in
  List.filteri (fun i _ -> i < slowest_kept) sorted

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Cl = Client.Make (P)
  module Ap2g = Zkqac_core.Ap2g.Make (P)
  module Ads_io = Zkqac_core.Ads_io.Make (P)

  type user_tally = {
    hist : Histogram.t;
    server_hist : Histogram.t;
    network_hist : Histogram.t;
    verify_hist : Histogram.t;
    mutable u_sent : int;
    mutable u_ok : int;
    mutable u_rejected : int;
    mutable u_bad_request : int;
    mutable u_exhausted : int;
    mutable u_retries : int;
    mutable u_records : int;
    mutable u_slow : slow_query list;  (* bounded by [slowest_kept] *)
  }

  let fresh_tally () =
    {
      hist = Histogram.create ();
      server_hist = Histogram.create ();
      network_hist = Histogram.create ();
      verify_hist = Histogram.create ();
      u_sent = 0;
      u_ok = 0;
      u_rejected = 0;
      u_bad_request = 0;
      u_exhausted = 0;
      u_retries = 0;
      u_records = 0;
      u_slow = [];
    }

  let note_slow tally sq = tally.u_slow <- top_slow (sq :: tally.u_slow)

  let user_loop cfg ~mvk ~universe ~hierarchy ~space ~user ~stop_at ~sent_total
      ~uid tally =
    let prng = Prng.create (cfg.seed + (7919 * uid)) in
    let backoff_prng = Prng.split prng in
    let per_user_rate =
      match cfg.qps with
      | None -> None
      | Some q -> Some (Float.max 1e-6 (q /. float_of_int (max 1 cfg.users)))
    in
    let under_cap () =
      cfg.max_queries = 0
      ||
      (* fetch_and_add reserves a send slot; overshoot by at most one
         in-flight query per user. *)
      Atomic.fetch_and_add sent_total 1 < cfg.max_queries
    in
    let rec loop () =
      if Monotonic_clock.now_ns () < stop_at && under_cap () then begin
        (match per_user_rate with
        | None -> ()
        | Some rate ->
          (* Exponential interarrival: open-loop users do not wait for the
             previous response before the clock of the next one starts,
             but a single thread can only have one outstanding query — an
             accepted simplification at these rates. *)
          let u = Float.max 1e-9 (Prng.float prng 1.0) in
          let dt = -.Float.log u /. rate in
          Unix.sleepf (Float.min dt 5.0));
        let query = Workload.range_query prng ~space ~frac:cfg.frac in
        (* The generator mints each query's correlation id itself so it can
           name the query in the report whatever the outcome — the id the
           server logged is the id the report prints. *)
        let rid =
          match Prng.int64 prng with 0L -> 1L | id -> id
        in
        let t0 = Monotonic_clock.now_ns () in
        let outcome =
          Cl.query ~prng:backoff_prng ~req_id:rid cfg.client ~mvk ~universe
            ?hierarchy ~user ~query ()
        in
        let ns = Int64.to_int (Int64.sub (Monotonic_clock.now_ns ()) t0) in
        Histogram.record tally.hist ns;
        tally.u_sent <- tally.u_sent + 1;
        let total_ms = float_of_int ns /. 1e6 in
        (match outcome with
        | Ok s ->
          tally.u_ok <- tally.u_ok + 1;
          tally.u_retries <- tally.u_retries + (s.Cl.attempts - 1);
          tally.u_records <- tally.u_records + List.length s.Cl.records;
          Histogram.record tally.verify_hist
            (int_of_float (s.Cl.verify_ms *. 1e6));
          let server_ms, network_ms =
            match s.Cl.server with
            | None -> (None, None) (* v1 responder: no split available *)
            | Some tm ->
              let srv = float_of_int tm.Proto.total_us /. 1e3 in
              let net = Float.max 0.0 (s.Cl.attempt_ms -. srv) in
              Histogram.record tally.server_hist (int_of_float (srv *. 1e6));
              Histogram.record tally.network_hist (int_of_float (net *. 1e6));
              (Some srv, Some net)
          in
          note_slow tally
            {
              s_req_id = rid;
              s_outcome = "ok";
              s_total_ms = total_ms;
              s_server_ms = server_ms;
              s_network_ms = network_ms;
              s_attempts = s.Cl.attempts;
            };
          Metrics.inc m_queries [ ("outcome", "ok") ]
        | Error failure ->
          let code, attempts =
            match failure with
            | Client.Rejected _ ->
              tally.u_rejected <- tally.u_rejected + 1;
              ("rejected", 0)
            | Client.Bad_request _ ->
              tally.u_bad_request <- tally.u_bad_request + 1;
              ("bad-request", 0)
            | Client.Exhausted { attempts; _ } ->
              tally.u_exhausted <- tally.u_exhausted + 1;
              tally.u_retries <- tally.u_retries + (attempts - 1);
              ("exhausted", attempts)
          in
          note_slow tally
            {
              s_req_id = rid;
              s_outcome = code;
              s_total_ms = total_ms;
              s_server_ms = None;
              s_network_ms = None;
              s_attempts = attempts;
            };
          Metrics.inc m_queries [ ("outcome", code) ]);
        loop ()
      end
    in
    loop ()

  let run cfg ~ads =
    match Ads_io.load ~path:ads with
    | Error e -> Error e
    | Ok (mvk, tree) ->
      let universe = Ap2g.universe tree in
      let hierarchy = Ap2g.hierarchy tree in
      let space = Ap2g.space tree in
      let user =
        match cfg.roles with
        | [] ->
          (* Every real role; the implicit pseudo role is never claimable. *)
          Attr.Set.remove Attr.pseudo_role (Universe.attrs universe)
        | roles -> Attr.set_of_list roles
      in
      let t0 = Monotonic_clock.now_ns () in
      let stop_at =
        Int64.add t0 (Int64.of_float (cfg.duration *. 1e9))
      in
      let sent_total = Atomic.make 0 in
      let tallies = Array.init (max 1 cfg.users) (fun _ -> fresh_tally ()) in
      let threads =
        Array.mapi
          (fun uid tally ->
            Thread.create
              (fun () ->
                user_loop cfg ~mvk ~universe ~hierarchy ~space ~user ~stop_at
                  ~sent_total ~uid tally)
              ())
          tallies
      in
      Array.iter Thread.join threads;
      let wall =
        Int64.to_float (Int64.sub (Monotonic_clock.now_ns ()) t0) /. 1e9
      in
      let merged f =
        Array.fold_left
          (fun acc t -> Histogram.merge acc (f t))
          (Histogram.create ()) tallies
      in
      let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
      Ok
        {
          wall;
          sent = sum (fun t -> t.u_sent);
          ok = sum (fun t -> t.u_ok);
          rejected = sum (fun t -> t.u_rejected);
          bad_request = sum (fun t -> t.u_bad_request);
          exhausted = sum (fun t -> t.u_exhausted);
          retries = sum (fun t -> t.u_retries);
          records = sum (fun t -> t.u_records);
          latency = merged (fun t -> t.hist);
          server_lat = merged (fun t -> t.server_hist);
          network_lat = merged (fun t -> t.network_hist);
          verify_lat = merged (fun t -> t.verify_hist);
          slowest =
            top_slow
              (Array.fold_left (fun acc t -> t.u_slow @ acc) [] tallies);
        }
end
