(* The verifying client behind `zkqac client`.

   Completeness survives transient failures; soundness never does. The two
   halves of that sentence are the whole design:

   - transport faults (refused, timeout, reset, short read, a garbled
     protocol envelope) and typed transient server statuses (Overloaded,
     Deadline) are retried with full-jitter exponential backoff under a
     bounded retry budget — a flaky network costs attempts, not answers;
   - a typed verification rejection of a complete, decoded response is
     TERMINAL. A VO that fails ABS verification, a completeness gap, a
     digest mismatch — retrying those could only help an adversary probe
     for an accepting run, so the rejection is surfaced immediately. *)

module Wire = Zkqac_util.Wire
module VE = Zkqac_util.Verify_error
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics
module Box = Zkqac_core.Box
module Record = Zkqac_core.Record

let m_attempts =
  Metrics.counter ~name:"zkqac_client_attempts_total"
    ~help:"Query attempts made by the retrying client, by final-attempt flag."

let m_retries =
  Metrics.counter ~name:"zkqac_client_retries_total"
    ~help:"Retries performed by the client, by the transient fault that caused them."

type config = {
  host : string;
  port : int;
  connect_timeout : float;
  read_deadline : float;  (** budget for reading the whole response frame *)
  write_deadline : float;
  retries : int;  (** retry budget: attempts beyond the first *)
  base_backoff : float;  (** first backoff cap, seconds *)
  max_backoff : float;
  batch : bool;  (** batch the signature verification (CLI default) *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7499;
    connect_timeout = 2.0;
    read_deadline = 10.0;
    write_deadline = 5.0;
    retries = 4;
    base_backoff = 0.05;
    max_backoff = 2.0;
    batch = true;
  }

type failure =
  | Rejected of VE.t
      (** typed verification rejection of a complete response — never
          retried *)
  | Bad_request of string  (** the server refused the request — never retried *)
  | Exhausted of { attempts : int; last : string }
      (** only transient faults occurred, but the retry budget ran out *)

let failure_to_string = function
  | Rejected e -> Printf.sprintf "verification FAILED [%s]: %s" (VE.code e) (VE.to_string e)
  | Bad_request d -> "server refused the request: " ^ d
  | Exhausted { attempts; last } ->
    Printf.sprintf "no complete response after %d attempt(s); last fault: %s"
      attempts last

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Ap2g = Zkqac_core.Ap2g.Make (P)
  module Vo = Zkqac_core.Vo.Make (P)
  module Abs = Zkqac_abs.Abs.Make (P)

  type success = {
    records : Record.t list;
    vo_bytes : int;
    attempts : int;  (** total attempts, 1 = no retry was needed *)
  }

  (* One attempt: connect, send the request, read and decode one response
     frame. [`Transient] faults feed the retry loop; everything else is a
     final outcome. *)
  let attempt cfg request =
    match
      Sockio.connect ~host:cfg.host ~port:cfg.port ~timeout:cfg.connect_timeout
    with
    | exception Sockio.Fault f -> `Transient ("connect-" ^ Sockio.fault_code f)
    | fd ->
      Fun.protect
        ~finally:(fun () -> Sockio.close_noerr fd)
        (fun () ->
          match
            let wdl = Sockio.deadline_after cfg.write_deadline in
            Sockio.write_frame fd ~deadline:wdl request;
            let rdl = Sockio.deadline_after cfg.read_deadline in
            Sockio.read_frame fd ~deadline:rdl
              ~max_bytes:Wire.default_limits.Wire.max_bytes
          with
          | exception Sockio.Fault f -> `Transient (Sockio.fault_code f)
          | frame -> (
            match Proto.decode_response ~limits:Wire.default_limits frame with
            | Error _ ->
              (* A complete frame that is not even a protocol envelope is
                 line noise or a mid-frame cut dressed as one; retrying is
                 sound because acceptance still requires full VO
                 verification. *)
              `Transient "garbled-response"
            | Ok (Proto.Vo vo) -> `Vo vo
            | Ok Proto.Overloaded -> `Transient "overloaded"
            | Ok Proto.Deadline -> `Transient "server-deadline"
            | Ok (Proto.Bad_request d) -> `Bad_request d
            | Ok (Proto.Server_error _) -> `Transient "server-error"))

  let verify cfg ~mvk ~universe ?hierarchy ~user ~query vo_payload =
    let batch =
      if cfg.batch then
        (* Weights derived from the received bytes: the producer committed
           to the VO before the weights existed. *)
        Some (Drbg.create ~seed:("zkqac-client-batch:" ^ vo_payload))
      else None
    in
    match Vo.decode vo_payload with
    | Error e -> Error e
    | Ok vo ->
      Ap2g.verify ?batch:batch ~mvk ~t_universe:universe ?hierarchy ~user ~query
        vo

  let query ?(prng = Prng.create 1) cfg ~mvk ~universe ?hierarchy ~user
      ~query:box () =
    let request =
      Proto.encode_request
        { Proto.roles = Attr.Set.elements user; query = box }
    in
    let max_attempts = 1 + max 0 cfg.retries in
    let rec go k last =
      if k >= max_attempts then Error (Exhausted { attempts = k; last })
      else begin
        if k > 0 then begin
          (* Full jitter: uniform in [0, min(max, base·2^(k-1))]. Decorrelates
             a thundering herd of retrying clients after a shed burst. *)
          let cap =
            Float.min cfg.max_backoff
              (cfg.base_backoff *. Float.pow 2.0 (float_of_int (k - 1)))
          in
          Metrics.inc m_retries [ ("reason", last) ];
          Flight.record ~cat:"client" ~detail:last ~v:k "client.retry";
          Unix.sleepf (Prng.float prng cap)
        end;
        Metrics.inc m_attempts [];
        match attempt cfg request with
        | `Transient fault -> go (k + 1) fault
        | `Bad_request d -> Error (Bad_request d)
        | `Vo vo_payload -> (
          match verify cfg ~mvk ~universe ?hierarchy ~user ~query:box vo_payload with
          | Ok records ->
            Ok { records; vo_bytes = String.length vo_payload; attempts = k + 1 }
          | Error e ->
            (* Soundness: a typed rejection is terminal, whatever the retry
               budget has left. *)
            Flight.record ~cat:"client" ~detail:(VE.code e) "client.rejected";
            Error (Rejected e))
      end
    in
    go 0 "none"
end
