(* The verifying client behind `zkqac client`.

   Completeness survives transient failures; soundness never does. The two
   halves of that sentence are the whole design:

   - transport faults (refused, timeout, reset, short read, a garbled
     protocol envelope) and typed transient server statuses (Overloaded,
     Deadline) are retried with full-jitter exponential backoff under a
     bounded retry budget — a flaky network costs attempts, not answers;
   - a typed verification rejection of a complete, decoded response is
     TERMINAL. A VO that fails ABS verification, a completeness gap, a
     digest mismatch — retrying those could only help an adversary probe
     for an accepting run, so the rejection is surfaced immediately. *)

module Wire = Zkqac_util.Wire
module VE = Zkqac_util.Verify_error
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Monotonic_clock = Zkqac_parallel.Monotonic_clock
module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics
module Box = Zkqac_core.Box
module Record = Zkqac_core.Record

let m_attempts =
  Metrics.counter ~name:"zkqac_client_attempts_total"
    ~help:"Query attempts made by the retrying client, by final-attempt flag."

let m_retries =
  Metrics.counter ~name:"zkqac_client_retries_total"
    ~help:"Retries performed by the client, by the transient fault that caused them."

type config = {
  host : string;
  port : int;
  connect_timeout : float;
  read_deadline : float;  (** budget for reading the whole response frame *)
  write_deadline : float;
  retries : int;  (** retry budget: attempts beyond the first *)
  base_backoff : float;  (** first backoff cap, seconds *)
  max_backoff : float;
  batch : bool;  (** batch the signature verification (CLI default) *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7499;
    connect_timeout = 2.0;
    read_deadline = 10.0;
    write_deadline = 5.0;
    retries = 4;
    base_backoff = 0.05;
    max_backoff = 2.0;
    batch = true;
  }

type failure =
  | Rejected of VE.t
      (** typed verification rejection of a complete response — never
          retried *)
  | Bad_request of string  (** the server refused the request — never retried *)
  | Exhausted of { attempts : int; last : string }
      (** only transient faults occurred, but the retry budget ran out *)

let failure_to_string = function
  | Rejected e -> Printf.sprintf "verification FAILED [%s]: %s" (VE.code e) (VE.to_string e)
  | Bad_request d -> "server refused the request: " ^ d
  | Exhausted { attempts; last } ->
    Printf.sprintf "no complete response after %d attempt(s); last fault: %s"
      attempts last

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Ap2g = Zkqac_core.Ap2g.Make (P)
  module Vo = Zkqac_core.Vo.Make (P)
  module Abs = Zkqac_abs.Abs.Make (P)

  type success = {
    records : Record.t list;
    vo_bytes : int;
    attempts : int;  (** total attempts, 1 = no retry was needed *)
    req_id : int64;  (** the correlation id this query travelled under *)
    server : Proto.timing option;
        (** the server's timing footer (v2 responders only) *)
    attempt_ms : float;  (** wall time of the winning attempt (network+server) *)
    verify_ms : float;  (** local decode+verify time *)
  }

  (* One attempt: connect, send the request, read and decode one response
     frame. [`Transient] faults feed the retry loop; everything else is a
     final outcome. [rid] is the id the request carries: a v2 footer that
     echoes a different id is a confused or broken responder, and the
     attempt is retried like any transport fault. *)
  let attempt cfg ~rid request =
    let a0 = Monotonic_clock.now_ns () in
    match
      Sockio.connect ~host:cfg.host ~port:cfg.port ~timeout:cfg.connect_timeout
    with
    | exception Sockio.Fault f -> `Transient ("connect-" ^ Sockio.fault_code f)
    | fd ->
      Fun.protect
        ~finally:(fun () -> Sockio.close_noerr fd)
        (fun () ->
          match
            let wdl = Sockio.deadline_after cfg.write_deadline in
            Sockio.write_frame fd ~deadline:wdl request;
            let rdl = Sockio.deadline_after cfg.read_deadline in
            Sockio.read_frame fd ~deadline:rdl
              ~max_bytes:Wire.default_limits.Wire.max_bytes
          with
          | exception Sockio.Fault f -> `Transient (Sockio.fault_code f)
          | frame -> (
            match Proto.decode_response ~limits:Wire.default_limits frame with
            | Error _ ->
              (* A complete frame that is not even a protocol envelope is
                 line noise or a mid-frame cut dressed as one; retrying is
                 sound because acceptance still requires full VO
                 verification. *)
              `Transient "garbled-response"
            | Ok (_, Some f) when f.Proto.f_req_id <> rid ->
              `Transient "req-id-mismatch"
            | Ok (resp, footer) -> (
              match resp with
              | Proto.Vo vo ->
                let ms = Monotonic_clock.elapsed_since a0 *. 1000.0 in
                `Vo (vo, footer, ms)
              | Proto.Overloaded -> `Transient "overloaded"
              | Proto.Deadline -> `Transient "server-deadline"
              | Proto.Bad_request d -> `Bad_request d
              | Proto.Server_error _ -> `Transient "server-error")))

  let verify cfg ~mvk ~universe ?hierarchy ~user ~query vo_payload =
    let batch =
      if cfg.batch then
        (* Weights derived from the received bytes: the producer committed
           to the VO before the weights existed. *)
        Some (Drbg.create ~seed:("zkqac-client-batch:" ^ vo_payload))
      else None
    in
    match Vo.decode vo_payload with
    | Error e -> Error e
    | Ok vo ->
      Ap2g.verify ?batch:batch ~mvk ~t_universe:universe ?hierarchy ~user ~query
        vo

  let query ?(prng = Prng.create 1) ?req_id cfg ~mvk ~universe ?hierarchy ~user
      ~query:box () =
    (* The client mints the correlation id unless the caller (loadgen, a
       test) supplies one; the same id rides every retry of this query, so
       all its attempts join server-side under one grep. *)
    let rid =
      match req_id with
      | Some id when id <> 0L -> id
      | Some _ | None -> Proto.mint_req_id ()
    in
    let request =
      Proto.encode_request
        { Proto.req_id = Some rid; roles = Attr.Set.elements user; query = box }
    in
    let max_attempts = 1 + max 0 cfg.retries in
    let rec go k last =
      if k >= max_attempts then Error (Exhausted { attempts = k; last })
      else begin
        if k > 0 then begin
          (* Full jitter: uniform in [0, min(max, base·2^(k-1))]. Decorrelates
             a thundering herd of retrying clients after a shed burst. *)
          let cap =
            Float.min cfg.max_backoff
              (cfg.base_backoff *. Float.pow 2.0 (float_of_int (k - 1)))
          in
          Metrics.inc m_retries [ ("reason", last) ];
          Flight.record ~cat:"client" ~req_id:rid ~detail:last ~v:k
            "client.retry";
          Unix.sleepf (Prng.float prng cap)
        end;
        Metrics.inc m_attempts [];
        match attempt cfg ~rid request with
        | `Transient fault -> go (k + 1) fault
        | `Bad_request d -> Error (Bad_request d)
        | `Vo (vo_payload, footer, attempt_ms) -> (
          let v0 = Monotonic_clock.now_ns () in
          match verify cfg ~mvk ~universe ?hierarchy ~user ~query:box vo_payload with
          | Ok records ->
            Ok
              {
                records;
                vo_bytes = String.length vo_payload;
                attempts = k + 1;
                req_id = rid;
                server = Option.map (fun f -> f.Proto.f_timing) footer;
                attempt_ms;
                verify_ms = Monotonic_clock.elapsed_since v0 *. 1000.0;
              }
          | Error e ->
            (* Soundness: a typed rejection is terminal, whatever the retry
               budget has left. *)
            Flight.record ~cat:"client" ~req_id:rid ~detail:(VE.code e)
              "client.rejected";
            Error (Rejected e))
      end
    in
    go 0 "none"
end
