(* Deadline-bounded socket I/O.

   Every read and write the serving stack performs carries an *absolute*
   monotonic deadline, not a per-syscall timeout: SO_RCVTIMEO alone would let
   a slowloris peer dribble one byte per almost-timeout forever, while an
   absolute deadline bounds the whole exchange. Before each syscall the
   remaining budget is recomputed and installed as the socket timeout, so a
   stalled peer costs at most the budget and a dribbling peer no more. *)

module Clock = Zkqac_parallel.Monotonic_clock

type fault =
  | Timeout  (** the deadline expired before the exchange completed *)
  | Closed  (** the peer closed or reset the connection mid-exchange *)
  | Refused  (** the connection attempt was refused *)
  | Too_large of { length : int; limit : int }
      (** a frame header announced more bytes than the reader allows *)
  | Io of string  (** any other OS-level failure *)

exception Fault of fault

let fault_to_string = function
  | Timeout -> "deadline expired"
  | Closed -> "connection closed by peer"
  | Refused -> "connection refused"
  | Too_large { length; limit } ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" length limit
  | Io msg -> "i/o error: " ^ msg

let fault_code = function
  | Timeout -> "timeout"
  | Closed -> "closed"
  | Refused -> "refused"
  | Too_large _ -> "too-large"
  | Io _ -> "io"

let deadline_after seconds =
  Int64.add (Clock.now_ns ()) (Int64.of_float (seconds *. 1e9))

let remaining_s deadline =
  Int64.to_float (Int64.sub deadline (Clock.now_ns ())) /. 1e9

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A write to a peer-closed socket must surface as the typed Closed fault
   (EPIPE), not kill the process: Linux offers no per-fd opt-out that the
   OCaml Unix module exposes, so linking this module neutralizes SIGPIPE
   process-wide. *)
let () =
  match Sys.os_type with
  | "Unix" -> (
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ | Sys_error _ -> ())
  | _ -> ()

(* Clamp the per-syscall timeout away from 0: SO_RCVTIMEO = 0 means "block
   forever", the opposite of an expired deadline. *)
let arm fd opt deadline =
  let rem = remaining_s deadline in
  if rem <= 0.0 then raise (Fault Timeout);
  (try Unix.setsockopt_float fd opt (Float.max rem 0.005)
   with Unix.Unix_error _ -> ())

let classify = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> Fault Timeout
  | Unix.ECONNRESET | Unix.EPIPE | Unix.ESHUTDOWN -> Fault Closed
  | Unix.ECONNREFUSED -> Fault Refused
  | e -> Fault (Io (Unix.error_message e))

let read_exact fd ~deadline n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.unsafe_to_string buf
    else begin
      arm fd Unix.SO_RCVTIMEO deadline;
      match Unix.read fd buf off (n - off) with
      | 0 -> raise (Fault Closed)
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> raise (classify e)
    end
  in
  go 0

let write_all fd ~deadline s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      arm fd Unix.SO_SNDTIMEO deadline;
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> raise (classify e)
    end
  in
  go 0

(* Frames are u32-BE length + payload. The length is checked against the
   caller's bound before any allocation — the network face of the Wire
   reader's max_bytes discipline. *)

let frame_header n =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((n lsr (8 * (3 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string b

let write_frame fd ~deadline payload =
  write_all fd ~deadline (frame_header (String.length payload) ^ payload)

let read_frame fd ~deadline ~max_bytes =
  let hdr = read_exact fd ~deadline 4 in
  let n = ref 0 in
  String.iter (fun c -> n := (!n lsl 8) lor Char.code c) hdr;
  if !n > max_bytes then raise (Fault (Too_large { length = !n; limit = max_bytes }));
  read_exact fd ~deadline !n

let connect ~host ~port ~timeout =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ -> (
      try Unix.inet_addr_of_string host
      with Failure _ -> raise (Fault (Io ("cannot resolve " ^ host))))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
    (* Wait for writability, then read the real outcome from SO_ERROR. *)
    (match Unix.select [] [ fd ] [] timeout with
    | _, [], _ -> raise (Fault Timeout)
    | _ -> ());
    (match Unix.getsockopt_error fd with
    | None -> ()
    | Some e -> raise (classify e));
    Unix.clear_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  with
  | () -> fd
  | exception e ->
    close_noerr fd;
    (match e with
    | Unix.Unix_error (ue, _, _) -> raise (classify ue)
    | e -> raise e)
