(* The long-lived SP daemon behind `zkqac serve`.

   Robustness-first serving of the existing query pipeline:

   - every connection carries absolute read/write deadlines (Sockio), so a
     stalled or dribbling peer is bounded by its budget, never by patience;
   - at most [max_in_flight] connections are served concurrently; beyond
     that the acceptor sheds load with a typed Overloaded response (counted
     in zkqac_server_shed_total) instead of queueing without bound or
     hanging the client;
   - query execution runs on a persistent worker-domain Pool; a query that
     exceeds its deadline yields a typed Deadline response while the worker
     finishes in the background (domains cannot be cancelled; the in-flight
     bound already limits how much abandoned work can pile up);
   - SIGTERM/SIGINT initiate a graceful drain: stop accepting, let in-flight
     requests finish inside their own deadlines, shut the pool down when
     safe, flush the audit tail, dump the flight recorder, return so the
     CLI can exit 0. *)

module Wire = Zkqac_util.Wire
module VE = Zkqac_util.Verify_error
module Attr = Zkqac_policy.Attr
module Drbg = Zkqac_hashing.Drbg
module Pool = Zkqac_parallel.Pool
module Monotonic_clock = Zkqac_parallel.Monotonic_clock
module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics
module Trace = Zkqac_telemetry.Trace
module Json = Zkqac_telemetry.Json
module Audit = Zkqac_audit.Audit
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Crashpoint = Zkqac_durable.Crashpoint

(* Registered once at module init, not per functor application: a process
   instantiates the server for one backend but may do so more than once. *)
let m_connections =
  Metrics.counter ~name:"zkqac_server_connections_total"
    ~help:"TCP connections accepted by zkqac serve."

let m_shed =
  Metrics.counter ~name:"zkqac_server_shed_total"
    ~help:
      "Connections answered with a typed Overloaded response because the in-flight bound was reached."

let m_requests =
  Metrics.counter ~name:"zkqac_server_requests_total"
    ~help:"Requests answered by zkqac serve, by typed outcome."

let m_faults =
  Metrics.counter ~name:"zkqac_server_faults_total"
    ~help:"Connection-level transport faults observed by zkqac serve, by kind."

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (tests); see {!port} *)
  metrics_port : int option;  (** [Some 0] likewise *)
  threads : int;  (** worker domains in the persistent pool *)
  max_in_flight : int;  (** concurrent connections before shedding *)
  read_deadline : float;  (** budget for reading one request frame *)
  write_deadline : float;  (** budget for writing one response frame *)
  query_deadline : float;  (** budget for executing one query *)
  drain_deadline : float;  (** budget for the whole graceful drain *)
  checkpoint_every : float;
      (** seconds between epoch checkpoints of the served tree; 0 disables *)
  slow_threshold_ms : float;
      (** tail-sampling slow threshold; 0 = dynamic p99 (see {!Slowlog}) *)
  slowlog_cap : int;  (** incidents retained by the tail sampler *)
  slow_inject : (float * int) option;
      (** test/harness hook: delay (seconds) injected into the Nth decoded
          request (1-based), once — so CI can force exactly one slow
          incident. [ZKQAC_SLOW_INJECT=MS[:N]] sets the default. *)
}

(* ZKQAC_SLOW_INJECT=MS[:N]: delay the Nth decoded request by MS
   milliseconds (N defaults to 1). The crashpoint idiom: armed from the
   environment so a shell harness can force a deterministic slow incident
   without touching the CLI surface; nonsense values fail loudly. *)
let slow_inject_of_env () =
  match Sys.getenv_opt "ZKQAC_SLOW_INJECT" with
  | None -> None
  | Some raw -> (
    let s = String.trim raw in
    if s = "" then None
    else
      let ms_s, nth_s =
        match String.index_opt s ':' with
        | None -> (s, "1")
        | Some i ->
          (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      in
      match (float_of_string_opt ms_s, int_of_string_opt nth_s) with
      | Some ms, Some n when ms >= 0.0 && n >= 1 -> Some (ms /. 1000.0, n)
      | _ ->
        invalid_arg
          (Printf.sprintf "ZKQAC_SLOW_INJECT=%S is not MS[:N] with MS >= 0, N >= 1" raw))

let default_config =
  {
    host = "127.0.0.1";
    port = 7499;
    metrics_port = None;
    threads = 2;
    max_in_flight = 16;
    read_deadline = 5.0;
    write_deadline = 5.0;
    query_deadline = 30.0;
    drain_deadline = 45.0;
    checkpoint_every = 0.0;
    slow_threshold_ms = 0.0;
    slowlog_cap = 64;
    slow_inject = slow_inject_of_env ();
  }

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Ap2g = Zkqac_core.Ap2g.Make (P)
  module Vo = Zkqac_core.Vo.Make (P)
  module Abs = Zkqac_abs.Abs.Make (P)
  module Ads_io = Zkqac_core.Ads_io.Make (P)

  type t = {
    cfg : config;
    ads_path : string;
    listen_fd : Unix.file_descr;
    mh : Metrics_http.t option;
    slowlog : Slowlog.t;
    req_seq : int Atomic.t;  (* decoded requests, for slow_inject ordinals *)
    pool : Pool.pool;
    tree : Ap2g.t;
    mvk : Abs.mvk;
    space : Keyspace.t;
    recovered_epoch : int;
    ready : bool Atomic.t;
    in_flight : int Atomic.t;
    running_queries : int Atomic.t;
    conn_seq : int Atomic.t;
    served : int Atomic.t;
    draining : bool Atomic.t;
    mutable acceptor : Thread.t option;
    mutable checkpointer : Thread.t option;
    mutable handlers : Thread.t list;
    handlers_lock : Mutex.t;
  }

  let port t =
    match Unix.getsockname t.listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> t.cfg.port

  let metrics_port t = Option.map Metrics_http.port t.mh
  let ready t = Atomic.get t.ready
  let recovered_epoch t = t.recovered_epoch

  let listen_on host port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 128;
    fd

  let respond t fd ?footer resp =
    let deadline = Sockio.deadline_after t.cfg.write_deadline in
    Sockio.write_frame fd ~deadline (Proto.encode_response ?footer resp)

  let audit_request ~conn ~rid ~minted ~roles ~query ~outcome ~vo_bytes ~ms =
    if Audit.enabled () then
      Audit.record ~kind:"serve"
        (Json.Obj
           [ ("conn", Json.Int conn);
             ("req_id", Json.Str (Proto.req_id_hex rid));
             ("minted", Json.Bool minted);
             ("roles", Json.Arr (List.map (fun r -> Json.Str r) roles));
             ("query", Json.Str (Box.to_string query));
             ("outcome", Json.Str outcome);
             ("vo_bytes", Json.Int vo_bytes);
             ("ms", Json.Float ms) ])

  (* One request per connection: read, decode, execute on the pool with a
     deadline, respond with a typed status. Transport faults are counted
     and recorded but never propagate — a hostile peer can cost this
     handler its deadline budget, nothing more.

     Correlation: the request id (client-minted for v2 requests,
     server-minted otherwise) is threaded into the root span and its
     pool.worker child, the audit entry, the flight event, the tail
     sampler, and — for v2 requests — the response footer, always as the
     same 16-hex-digit string. The response version mirrors the request's:
     an old client never receives v2 bytes. *)
  let handle_conn t fd conn_id =
    let t0 = Monotonic_clock.now_ns () in
    (* Called after the request's root span (if any) has closed, so the
       tail sampler sees the complete tree. The slowlog is consulted before
       the response bytes leave: once the client has its answer, /slowlog
       already knows about the incident. *)
    let finish ?(roles = []) ?query ?(rid = 0L) ?(minted = true) ?(v2 = false)
        ?(root = 0) ?(timing = Proto.zero_timing) resp =
      let outcome = Proto.response_code resp in
      Metrics.inc m_requests [ ("outcome", outcome) ];
      let vo_bytes = match resp with Proto.Vo vo -> String.length vo | _ -> 0 in
      let ms = Monotonic_clock.elapsed_since t0 *. 1000.0 in
      let timing =
        { timing with Proto.total_us = Proto.us_of_ns (Int64.of_float (ms *. 1e6)) }
      in
      (match query with
      | Some query ->
        audit_request ~conn:conn_id ~rid ~minted ~roles ~query ~outcome
          ~vo_bytes ~ms
      | None -> ());
      Flight.record ~cat:"server" ~req_id:rid ~detail:outcome ~v:vo_bytes
        "server.request";
      if rid <> 0L then
        ignore
          (Slowlog.observe t.slowlog ~root ~req_id:rid ~minted ~conn:conn_id
             ~outcome ~total_ms:ms ~timing ()
            : bool);
      let footer =
        if v2 then Some { Proto.f_req_id = rid; f_timing = timing } else None
      in
      respond t fd ?footer resp
    in
    match
      let deadline = Sockio.deadline_after t.cfg.read_deadline in
      Sockio.read_frame fd ~deadline ~max_bytes:Proto.max_request_bytes
    with
    | exception Sockio.Fault f ->
      Metrics.inc m_faults [ ("kind", "read-" ^ Sockio.fault_code f) ];
      Flight.record ~cat:"server"
        ~detail:(Printf.sprintf "conn=%d %s" conn_id (Sockio.fault_code f))
        "server.read_fault";
      (* An oversized frame header is a protocol violation worth a typed
         per-connection limit record and answer; pure transport faults get
         nothing (the peer is gone or stalled). *)
      (match f with
      | Sockio.Too_large { length; limit } ->
        Flight.record ~cat:"server"
          ~detail:(Printf.sprintf "conn=%d frame bytes %d" conn_id length)
          ~v:limit "server.wire_limit";
        finish ~rid:(Proto.mint_req_id ()) (Proto.Bad_request "limit-exceeded")
      | _ -> ())
    | frame -> (
      match Proto.decode_request ~limits:Wire.default_limits frame with
      | Error e ->
        (* Per-connection record of reader-limit hits: the wire layer logs
           the limit itself; this names the connection that tripped it. *)
        (match e with
        | VE.Limit_exceeded { what; limit } ->
          Flight.record ~cat:"server"
            ~detail:(Printf.sprintf "conn=%d %s" conn_id what)
            ~v:limit "server.wire_limit"
        | _ -> ());
        finish ~rid:(Proto.mint_req_id ()) (Proto.Bad_request (VE.code e))
      | Ok { Proto.req_id; roles; query } ->
        (* Crash-harness hook: die with a decoded request in hand, after the
           client committed to the exchange but before any response bytes. *)
        Crashpoint.maybe "serve-request";
        let minted = req_id = None in
        let rid =
          match req_id with Some id -> id | None -> Proto.mint_req_id ()
        in
        let v2 = not minted in
        let n_req = Atomic.fetch_and_add t.req_seq 1 + 1 in
        let rid_attr = Trace.Str (Proto.req_id_hex rid) in
        let timing = ref Proto.zero_timing in
        let root_id = ref 0 in
        let resp =
          (* Handler threads share domain 0, so the request root is an
             explicit root (~parent:none) and every child names its parent
             explicitly — interleaved requests must not adopt each other's
             spans. *)
          Trace.with_span "server.request" ~parent:Trace.none
            ~attrs:
              [ ("req_id", rid_attr);
                ("conn", Trace.Int conn_id);
                ("minted", Trace.Bool minted) ]
          @@ fun root ->
          root_id := Trace.ctx_id root;
          Slowlog.track t.slowlog ~root:!root_id ~req_id:rid;
          (match t.cfg.slow_inject with
          | Some (delay_s, at) when n_req = at ->
            (* The injected stall is its own span, so the forced incident's
               tree shows where the time went even in a harness run. *)
            Trace.with_span "server.slow_inject" ~parent:root
              ~attrs:[ ("delay_s", Trace.Float delay_s) ]
              (fun _ -> Unix.sleepf delay_s)
          | _ -> ());
          if not (Box.contains_box (Keyspace.whole t.space) query) then
            Proto.Bad_request "query-outside-space"
          else begin
            let submitted = Monotonic_clock.now_ns () in
            let queue_ns = ref 0L
            and relax_ns = ref 0L
            and prove_ns = ref 0L
            and encode_ns = ref 0L in
            let fut =
              Pool.submit ~ctx:root
                ~attrs:[ ("req_id", rid_attr); ("conn", Trace.Int conn_id) ]
                t.pool
                (fun () ->
                  queue_ns := Int64.sub (Monotonic_clock.now_ns ()) submitted;
                  Atomic.incr t.running_queries;
                  Fun.protect
                    ~finally:(fun () -> Atomic.decr t.running_queries)
                    (fun () ->
                      let drbg =
                        Drbg.create
                          ~seed:(Printf.sprintf "zkqac-serve:%d" conn_id)
                      in
                      let user = Attr.set_of_list roles in
                      (* The relax share of proving is measured where it
                         runs: the pmap hook wraps the ABS.Relax batch. *)
                      let pmap jobs =
                        let r0 = Monotonic_clock.now_ns () in
                        let out = List.map (fun j -> j ()) jobs in
                        relax_ns :=
                          Int64.add !relax_ns
                            (Int64.sub (Monotonic_clock.now_ns ()) r0);
                        out
                      in
                      let p0 = Monotonic_clock.now_ns () in
                      let vo, _stats =
                        Ap2g.range_vo ~pmap drbg ~mvk:t.mvk t.tree ~user query
                      in
                      prove_ns :=
                        Int64.sub
                          (Int64.sub (Monotonic_clock.now_ns ()) p0)
                          !relax_ns;
                      let e0 = Monotonic_clock.now_ns () in
                      let bytes = Vo.to_bytes vo in
                      encode_ns := Int64.sub (Monotonic_clock.now_ns ()) e0;
                      bytes))
            in
            match Pool.await_timeout fut t.cfg.query_deadline with
            | None ->
              Flight.record ~cat:"server" ~req_id:rid
                ~detail:(Printf.sprintf "conn=%d" conn_id)
                "server.query_deadline";
              Proto.Deadline
            | Some (Error (e, _bt)) ->
              Proto.Server_error (Printexc.to_string e)
            | Some (Ok vo_bytes) ->
              Atomic.incr t.served;
              (* The future was fulfilled under its mutex, so the worker's
                 writes to the stage refs are visible here. On the deadline
                 path they are never read: the job may still be running. *)
              timing :=
                {
                  Proto.queue_us = Proto.us_of_ns !queue_ns;
                  relax_us = Proto.us_of_ns !relax_ns;
                  prove_us = Proto.us_of_ns !prove_ns;
                  encode_us = Proto.us_of_ns !encode_ns;
                  total_us = 0 (* filled by [finish] *);
                };
              Proto.Vo vo_bytes
          end
        in
        finish ~roles ~query ~rid ~minted ~v2 ~root:!root_id ~timing:!timing
          resp)

  let guarded_handle t fd conn_id =
    (match handle_conn t fd conn_id with
    | () -> ()
    | exception Sockio.Fault f ->
      (* A fault while writing the response: the peer vanished or stalled
         mid-VO. Typed, counted, and over. *)
      Metrics.inc m_faults [ ("kind", "write-" ^ Sockio.fault_code f) ];
      Flight.record ~cat:"server"
        ~detail:(Printf.sprintf "conn=%d %s" conn_id (Sockio.fault_code f))
        "server.write_fault"
    | exception e ->
      Metrics.inc m_faults [ ("kind", "handler-exception") ];
      Flight.trip ~reason:("server-handler:" ^ Printexc.to_string e));
    Sockio.close_noerr fd;
    Atomic.decr t.in_flight

  let shed t fd conn_id =
    Metrics.inc m_shed [];
    Flight.record ~cat:"server" "server.shed";
    (* Shed connections never reach the request decoder, so there is no id
       to correlate — but the tail sampler still counts them and keeps the
       typed outcome, so /slowlog shows overload storms. *)
    ignore
      (Slowlog.observe t.slowlog ~root:0 ~req_id:0L ~minted:true ~conn:conn_id
         ~outcome:"overloaded" ~total_ms:0.0 ()
        : bool);
    (* Best-effort typed refusal with a tight budget: a peer that will not
       read its Overloaded frame forfeits it. *)
    (try
       let deadline = Sockio.deadline_after 1.0 in
       Sockio.write_frame fd ~deadline (Proto.encode_response Proto.Overloaded)
     with Sockio.Fault _ -> ());
    Sockio.close_noerr fd

  let accept_loop t =
    while not (Atomic.get t.draining) do
      match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ()
        | exception Unix.Unix_error _ -> Thread.delay 0.01
        | fd, _ ->
          let conn_id = Atomic.fetch_and_add t.conn_seq 1 in
          Metrics.inc m_connections [];
          if Atomic.get t.in_flight >= t.cfg.max_in_flight then
            shed t fd conn_id
          else begin
            Atomic.incr t.in_flight;
            let th = Thread.create (fun () -> guarded_handle t fd conn_id) () in
            Mutex.lock t.handlers_lock;
            t.handlers <- th :: t.handlers;
            Mutex.unlock t.handlers_lock
          end)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    (* Drain: stop accepting, give in-flight requests their own deadlines
       to finish, then stop the pool once no query is still running. *)
    Sockio.close_noerr t.listen_fd;
    let deadline = Sockio.deadline_after t.cfg.drain_deadline in
    while Atomic.get t.in_flight > 0 && Sockio.remaining_s deadline > 0.0 do
      Thread.delay 0.01
    done;
    Mutex.lock t.handlers_lock;
    let handlers = t.handlers in
    t.handlers <- [];
    Mutex.unlock t.handlers_lock;
    if Atomic.get t.in_flight = 0 then List.iter Thread.join handlers;
    (* Abandoned (deadline-expired) queries may still hold worker domains;
       Pool.shutdown joins them, so it only runs when none is left. The
       drain must exit within its deadline even if a worker is stuck. *)
    while Atomic.get t.running_queries > 0 && Sockio.remaining_s deadline > 0.0 do
      Thread.delay 0.01
    done;
    if Atomic.get t.running_queries = 0 then Pool.shutdown t.pool
    else
      Flight.record ~cat:"server" ~v:(Atomic.get t.running_queries)
        "server.drain_stragglers";
    if Audit.enabled () then
      Audit.record ~kind:"drain"
        (Json.Obj
           [ ("served", Json.Int (Atomic.get t.served));
             ("connections", Json.Int (Atomic.get t.conn_seq));
             ("clean", Json.Bool (Atomic.get t.running_queries = 0)) ]);
    Flight.record ~cat:"server" ~v:(Atomic.get t.served) "server.drained";
    (* Release the trace close hook; retained incidents stay readable for
       any post-drain dump. *)
    Slowlog.close t.slowlog

  (* Periodic epoch checkpoints of the served tree: each one is an atomic,
     footer-committed sibling file, so the next restart resumes from the
     newest epoch that fully reached the disk. Sleeps in small steps so the
     drain is prompt. *)
  let checkpoint_loop t =
    let next = ref (t.recovered_epoch + 1) in
    let rec nap left =
      if left > 0.0 && not (Atomic.get t.draining) then begin
        Thread.delay (Float.min left 0.05);
        nap (left -. 0.05)
      end
    in
    while not (Atomic.get t.draining) do
      nap t.cfg.checkpoint_every;
      if not (Atomic.get t.draining) then begin
        match Ads_io.save_epoch ~path:t.ads_path ~mvk:t.mvk ~epoch:!next t.tree with
        | () ->
          Flight.record ~cat:"server" ~v:!next "server.checkpoint";
          if Audit.enabled () then
            Audit.record ~kind:"checkpoint" (Json.Obj [ ("epoch", Json.Int !next) ]);
          incr next
        | exception Sys_error m ->
          Flight.record ~cat:"server" ~detail:m ~v:!next "server.checkpoint_failed"
      end
    done

  let start cfg ~ads =
    (* Health plane first: /healthz answers and /readyz reports "starting"
       while checkpoint recovery below runs, so a supervisor can tell a
       recovering server from a dead one. *)
    let ready = Atomic.make false in
    (* Tail sampling needs span trees; a daemon run turns tracing on if the
       embedder has not already. The slowlog exists before the metrics
       endpoint so /slowlog can be mounted alongside /metrics. *)
    if not (Trace.enabled ()) then Trace.enable ();
    let slowlog =
      Slowlog.create ~cap:cfg.slowlog_cap ~threshold_ms:cfg.slow_threshold_ms ()
    in
    let mh =
      match cfg.metrics_port with
      | None -> Ok None
      | Some p -> (
        match
          Metrics_http.start ~host:cfg.host
            ~ready:(fun () -> Atomic.get ready)
            ~extra:
              [ ("/slowlog", fun () -> Json.to_string (Slowlog.to_json slowlog))
              ]
            ~port:p ()
        with
        | Ok m -> Ok (Some m)
        | Error e -> Error e)
    in
    match mh with
    | Error e ->
      Slowlog.close slowlog;
      Error e
    | Ok mh -> (
      let fail e =
        Option.iter Metrics_http.stop mh;
        Slowlog.close slowlog;
        Error e
      in
      match Ads_io.load_recover ~path:ads with
      | Error e -> fail e
      | Ok rc -> (
        match listen_on cfg.host cfg.port with
        | exception Unix.Unix_error (e, _, _) ->
          fail
            (Printf.sprintf "cannot listen on %s:%d: %s" cfg.host cfg.port
               (Unix.error_message e))
        | listen_fd ->
          let t =
            {
              cfg;
              ads_path = ads;
              listen_fd;
              mh;
              slowlog;
              req_seq = Atomic.make 0;
              pool = Pool.create ~threads:cfg.threads ();
              tree = rc.Ads_io.r_tree;
              mvk = rc.Ads_io.r_mvk;
              space = Ap2g.space rc.Ads_io.r_tree;
              recovered_epoch = rc.Ads_io.r_epoch;
              ready;
              in_flight = Atomic.make 0;
              running_queries = Atomic.make 0;
              conn_seq = Atomic.make 0;
              served = Atomic.make 0;
              draining = Atomic.make false;
              acceptor = None;
              checkpointer = None;
              handlers = [];
              handlers_lock = Mutex.create ();
            }
          in
          (* The recovered entry makes every (re)start part of the audited
             record: which epoch resumed, from which file, and whether any
             newer checkpoint had to be skipped as unreadable. *)
          if Audit.enabled () then
            Audit.record ~kind:"recovered"
              (Json.Obj
                 [ ("epoch", Json.Int rc.Ads_io.r_epoch);
                   ("source", Json.Str rc.Ads_io.r_source);
                   ("skipped", Json.Int (List.length rc.Ads_io.r_skipped)) ]);
          t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
          if cfg.checkpoint_every > 0.0 then
            t.checkpointer <- Some (Thread.create (fun () -> checkpoint_loop t) ());
          Atomic.set ready true;
          Ok t))

  let begin_drain t = Atomic.set t.draining true

  let wait t =
    Option.iter Thread.join t.acceptor;
    Option.iter Thread.join t.checkpointer;
    Option.iter Metrics_http.stop t.mh

  let served t = Atomic.get t.served
  let connections t = Atomic.get t.conn_seq
  let pool t = t.pool
  let slowlog t = t.slowlog

  (* The slowlog dumps next to the flight recorder (same SIGUSR1, same
     directory): one signal produces one joined forensic snapshot. *)
  let dump_slowlog t =
    match Flight.dump_dir () with
    | Some dir -> Slowlog.dump t.slowlog ~dir
    | None -> 0
end
