(* The fault-injection proxy behind `zkqac chaos`.

   PR 3's adversary registry enumerated what a malicious SP can do to a VO;
   this module extends the same registry to the network boundary: what a
   malicious (or merely broken) network can do to the bytes in flight. The
   proxy sits between client and server, forwards frames, and injects one
   named fault from Scenario.network into the first [faults] connections —
   deterministically, so a retrying client that outlives the burst reaches
   the clean upstream and the whole exchange still verifies.

   The contract under test is the resilience layer's: every injected fault
   must surface as a typed client error or a successful retry — never a
   crash, never an accepted tamper, never a hang past the deadlines. *)

module Scenario = Zkqac_adversary.Scenario
module Prng = Zkqac_rng.Prng
module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics

let m_injected =
  Metrics.counter ~name:"zkqac_chaos_injected_total"
    ~help:"Connections faulted by the chaos proxy, by scenario."

type config = {
  listen_host : string;
  listen_port : int;  (** 0 picks an ephemeral port *)
  upstream_host : string;
  upstream_port : int;
  scenario : string;  (** a {!Scenario.network} name *)
  faults : int;  (** fault the first [faults] connections, then run clean *)
  stall : float;  (** hold duration for net-stall / slowloris budget *)
  trickle_delay : float;  (** per-byte delay for net-slowloris *)
  cut_after : int;  (** bytes forwarded before net-disconnect cuts *)
  seed : int;  (** drives net-corrupt byte flips *)
}

let default_config =
  {
    listen_host = "127.0.0.1";
    listen_port = 0;
    upstream_host = "127.0.0.1";
    upstream_port = 7499;
    scenario = "net-corrupt";
    faults = 1;
    stall = 30.0;
    trickle_delay = 0.25;
    cut_after = 12;
    seed = 7;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable acceptor : Thread.t option;
  stopping : bool Atomic.t;
  conn_seq : int Atomic.t;
  injected_n : int Atomic.t;
  handlers : Thread.t list ref;
  handlers_lock : Mutex.t;
}

(* Generous internal budgets: the proxy must never fault on its own account,
   only by design. *)
let proxy_deadline () = Sockio.deadline_after 60.0

let frame_bytes payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let inject t name =
  Atomic.incr t.injected_n;
  Metrics.inc m_injected [ ("scenario", name) ];
  Flight.record ~cat:"chaos" ~detail:name "chaos.injected"

(* Read the request frame from the client, relay it upstream, return the
   upstream's response payload. Raises Sockio.Fault on any leg. *)
let relay_request t client_fd =
  let request =
    Sockio.read_frame client_fd ~deadline:(proxy_deadline ())
      ~max_bytes:Proto.max_request_bytes
  in
  let up =
    Sockio.connect ~host:t.cfg.upstream_host ~port:t.cfg.upstream_port
      ~timeout:10.0
  in
  Fun.protect
    ~finally:(fun () -> Sockio.close_noerr up)
    (fun () ->
      Sockio.write_frame up ~deadline:(proxy_deadline ()) request;
      Sockio.read_frame up ~deadline:(proxy_deadline ())
        ~max_bytes:Zkqac_util.Wire.default_limits.Zkqac_util.Wire.max_bytes)

let handle t conn_id client_fd =
  let faulty = conn_id < t.cfg.faults in
  let scenario = t.cfg.scenario in
  let finish () = Sockio.close_noerr client_fd in
  Fun.protect ~finally:finish @@ fun () ->
  match (faulty, scenario) with
  | true, "net-refuse" ->
    (* A refusal burst: the connection dies before a single byte. *)
    inject t scenario
  | true, "net-stall" ->
    (* Accept, then say nothing at all: the peer's read deadline is the
       only thing that ends this. *)
    inject t scenario;
    Unix.sleepf t.cfg.stall
  | _ -> (
    match relay_request t client_fd with
    | exception Sockio.Fault f ->
      (* Upstream trouble on a clean connection is just passed on as a
         dead client connection; the client classifies it as transport. *)
      Flight.record ~cat:"chaos" ~detail:(Sockio.fault_code f)
        "chaos.relay_fault"
    | response ->
      if not faulty then
        Sockio.write_frame client_fd ~deadline:(proxy_deadline ()) response
      else begin
        inject t scenario;
        let raw = frame_bytes response in
        match scenario with
        | "net-truncate" ->
          (* A complete length prefix promising more than arrives: the
             classic mid-VO cut. *)
          let keep = 4 + (String.length response / 2) in
          Sockio.write_all client_fd ~deadline:(proxy_deadline ())
            (String.sub raw 0 keep)
        | "net-disconnect" ->
          let keep = min t.cfg.cut_after (String.length raw) in
          Sockio.write_all client_fd ~deadline:(proxy_deadline ())
            (String.sub raw 0 keep)
        | "net-corrupt" ->
          (* Flip a few payload bytes but keep the framing honest: the
             client receives a complete frame whose contents lie. *)
          let prng = Prng.create (t.cfg.seed + conn_id) in
          let b = Bytes.of_string raw in
          let n = Bytes.length b in
          if n > 4 then
            for _ = 1 to 3 do
              let i = 4 + Prng.int prng (n - 4) in
              Bytes.set b i
                (Char.chr (Char.code (Bytes.get b i) lxor (1 + Prng.int prng 255)))
            done;
          Sockio.write_all client_fd ~deadline:(proxy_deadline ())
            (Bytes.to_string b)
        | "net-slowloris" ->
          (* Trickle the response a byte at a time within a total budget:
             enough progress to defeat naive per-read timeouts, never
             enough to finish before an absolute deadline. *)
          let budget = Sockio.deadline_after t.cfg.stall in
          let n = String.length raw in
          (try
             for i = 0 to n - 1 do
               if Sockio.remaining_s budget <= 0.0 then raise Exit;
               Sockio.write_all client_fd ~deadline:budget
                 (String.sub raw i 1);
               Unix.sleepf t.cfg.trickle_delay
             done
           with Exit | Sockio.Fault _ -> ())
        | other ->
          (* Unknown scenario on a faulty connection: forward clean rather
             than invent behaviour (start has already validated, so this
             is unreachable in practice). *)
          Flight.record ~cat:"chaos" ~detail:other "chaos.unknown_scenario";
          Sockio.write_frame client_fd ~deadline:(proxy_deadline ()) response
      end)

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        let conn_id = Atomic.fetch_and_add t.conn_seq 1 in
        let th =
          Thread.create
            (fun () ->
              try handle t conn_id fd
              with exn ->
                Sockio.close_noerr fd;
                Flight.record ~cat:"chaos"
                  ~detail:(Printexc.to_string exn)
                  "chaos.handler_exn")
            ()
        in
        Mutex.lock t.handlers_lock;
        t.handlers := th :: !(t.handlers);
        Mutex.unlock t.handlers_lock)
  done;
  Unix.close t.listen_fd

let start cfg =
  if not (List.mem cfg.scenario Scenario.network_names) then
    Error
      (Printf.sprintf "unknown network scenario %S (expected one of: %s)"
         cfg.scenario
         (String.concat ", " Scenario.network_names))
  else
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.listen_host, cfg.listen_port));
      Unix.listen fd 128;
      fd
    with
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "chaos listen: %s: %s" fn (Unix.error_message e))
    | listen_fd ->
      let t =
        {
          cfg;
          listen_fd;
          acceptor = None;
          stopping = Atomic.make false;
          conn_seq = Atomic.make 0;
          injected_n = Atomic.make 0;
          handlers = ref [];
          handlers_lock = Mutex.create ();
        }
      in
      t.acceptor <- Some (Thread.create accept_loop t);
      Ok t

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> t.cfg.listen_port

let injected t = Atomic.get t.injected_n
let connections t = Atomic.get t.conn_seq

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    let hs =
      Mutex.lock t.handlers_lock;
      let hs = !(t.handlers) in
      t.handlers := [];
      Mutex.unlock t.handlers_lock;
      hs
    in
    List.iter Thread.join hs
  end
