(** Tail-based trace sampling: the server's slow-query forensics plane.

    Every request's full span tree is collected while it runs (via the
    {!Zkqac_telemetry.Trace} close hook, which fires regardless of the
    export buffer's retention budget); whether to {e keep} the tree is
    decided only when the request finishes, from its typed outcome and
    latency. Kept requests — incidents — sit in a bounded ring, exposed
    live as JSON at the server's [/slowlog] endpoint and dumpable as one
    Perfetto trace file per incident.

    Sampling policy: keep every request with a non-[ok] typed outcome
    (reason ["error"]), and every request slower than the threshold (reason
    ["slow"]). The threshold is either fixed ([threshold_ms > 0]) or — at
    [threshold_ms = 0] — the live p99 of observed request latencies, with a
    1 ms floor and a 64-request warm-up during which nothing is "slow".

    Fast successful requests leave nothing behind; the constant per-request
    cost is bounded by one hashtable insert/remove plus one lookup per span
    close. *)

type t

type incident = {
  i_req_id : int64;
  i_minted : bool;  (** the server minted the id (the client sent none) *)
  i_conn : int;
  i_time : float;  (** Unix wall-clock time the request finished *)
  i_outcome : string;  (** typed response code *)
  i_reason : string;  (** why it was kept: ["slow"] or ["error"] *)
  i_total_ms : float;
  i_timing : Proto.timing option;
  i_spans : Zkqac_telemetry.Trace.info list;
      (** complete span tree, root included, in start order *)
}

val create : ?cap:int -> ?threshold_ms:float -> ?max_spans:int -> unit -> t
(** A live slowlog holding at most [cap] incidents (default 64; oldest
    evicted). [threshold_ms = 0] (default) selects the dynamic p99
    threshold; positive values are fixed. [max_spans] bounds the spans
    collected per request (default 4096). Creating a slowlog installs the
    trace close hook; {!close} releases it. Tracing must be enabled for
    span trees to be collected. *)

val close : t -> unit
(** Deregister from the trace close hook (the last live slowlog clears
    it). Retained incidents stay readable. *)

val track : t -> root:int -> req_id:int64 -> unit
(** Start collecting spans whose {!Zkqac_telemetry.Trace.info.span_root}
    equals [root] (the request's root span id, from
    {!Zkqac_telemetry.Trace.ctx_id}). No-op for [root = 0]. *)

val observe :
  t ->
  root:int ->
  req_id:int64 ->
  minted:bool ->
  conn:int ->
  outcome:string ->
  total_ms:float ->
  ?timing:Proto.timing ->
  unit ->
  bool
(** Finish the request started with {!track} (call {e after} its root span
    closed, so the tree is complete) and decide retention; returns whether
    it was kept. Requests never tracked (e.g. shed connections) may be
    observed with [root = 0] — they carry no spans but still count and can
    still be kept by outcome. *)

val incidents : t -> incident list
(** Retained incidents, oldest first. *)

val sampled : t -> int
(** Incidents ever kept (including ones the ring has evicted). *)

val observed : t -> int

val threshold_ms_now : t -> float
(** The currently effective slow threshold ([infinity] while a dynamic
    threshold is warming up). *)

val to_json : t -> Zkqac_telemetry.Json.t
(** The [/slowlog] payload: counters, the effective threshold, and every
    retained incident with its timing split and span tree. Request ids are
    16-hex-digit strings ({!Proto.req_id_hex}). *)

val dump : t -> dir:string -> int
(** Write [slowlog-<pid>.json] plus one [incident-<req_id>.trace.json]
    Perfetto file per retained incident (newest 16; atomic
    {!Zkqac_durable.Durable.replace}, so a dump taken at crash time is
    whole or absent). Returns the number of files written. Wired to
    SIGUSR1 by [zkqac serve]. *)
