(** A minimal [GET /metrics] HTTP/1.0 endpoint over the process-wide
    {!Zkqac_telemetry.Metrics} registry, for watching a live [zkqac
    loadgen] (or any long-running subcommand) from outside. *)

type t

val start : ?host:string -> port:int -> unit -> (t, string) result
(** Bind and spawn the acceptor; [port = 0] picks an ephemeral port.
    Returns without blocking. *)

val port : t -> int
val stop : t -> unit
