(** A minimal HTTP/1.0 health-and-metrics endpoint: [GET /metrics] over the
    process-wide {!Zkqac_telemetry.Metrics} registry, [GET /healthz]
    liveness (always 200 while the process runs), and [GET /readyz]
    readiness (200 once the [ready] callback returns true, 503 before —
    the server daemon flips it only after crash recovery completes, so
    harnesses wait on it instead of sleeping). Extra GET routes can be
    mounted alongside — the server daemon mounts [/slowlog] there. *)

type t

val start :
  ?host:string ->
  ?ready:(unit -> bool) ->
  ?extra:(string * (unit -> string)) list ->
  port:int ->
  unit ->
  (t, string) result
(** Bind and spawn the acceptor; [port = 0] picks an ephemeral port.
    [ready] backs [/readyz] and defaults to always-ready. Each [extra]
    route is a path (e.g. ["/slowlog"]) and a body producer, served as
    [application/json]; a producer that raises answers 500 without killing
    the endpoint. Returns without blocking. *)

val port : t -> int
val stop : t -> unit
