(* Restart-loop supervision for the serve daemon (`zkqac supervise`).

   The supervisor is deliberately dumb: fork+exec the child command, write
   its pid where a harness can SIGKILL it, wait, and — when the child dies
   without being asked to — restart it after an exponential backoff. All
   recovery intelligence lives in the child (checkpoint epoch selection,
   Audit.recover, /readyz); the supervisor only guarantees there is always
   a child trying. A child that exits 0 ended a graceful drain, and the
   supervisor ends with it. *)

module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics
module Durable = Zkqac_durable.Durable

let m_restarts =
  Metrics.counter ~name:"zkqac_supervisor_restarts_total"
    ~help:"Child restarts performed by zkqac supervise, by exit cause."

type config = {
  max_restarts : int;  (** give up (exit nonzero) after this many restarts *)
  base_backoff : float;  (** first restart delay, seconds *)
  max_backoff : float;  (** backoff ceiling, seconds *)
  pid_file : string option;  (** where to publish the child pid *)
}

let default_config =
  { max_restarts = 1000; base_backoff = 0.1; max_backoff = 5.0; pid_file = None }

type t = {
  cfg : config;
  stopping : bool Atomic.t;
  child : int Atomic.t;  (** 0 when no child is alive *)
  restarts : int Atomic.t;
}

let create cfg =
  { cfg; stopping = Atomic.make false; child = Atomic.make 0; restarts = Atomic.make 0 }

let restarts t = Atomic.get t.restarts

(* Forward the stop request to the live child so it can drain gracefully;
   the wait loop then sees a clean exit. Callable from a signal handler. *)
let stop t =
  Atomic.set t.stopping true;
  match Atomic.get t.child with
  | 0 -> ()
  | pid -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())

(* WSIGNALED carries OCaml's internal signal numbers (Sys.sigkill = -7,
   not 9); name the common ones so logs and metric labels read as the
   conventional signal, not a negative encoding. *)
let signal_name s =
  if s = Sys.sigkill then "kill"
  else if s = Sys.sigterm then "term"
  else if s = Sys.sigint then "int"
  else if s = Sys.sigsegv then "segv"
  else if s = Sys.sigabrt then "abrt"
  else if s = Sys.sigbus then "bus"
  else if s = Sys.sigquit then "quit"
  else if s = Sys.sighup then "hup"
  else Printf.sprintf "%d" s

let cause_of = function
  | Unix.WEXITED n -> Printf.sprintf "exit-%d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal-%s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped-%s" (signal_name s)

let rec wait_child pid =
  match Unix.waitpid [] pid with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_child pid
  | _, status -> status

let publish_pid t pid =
  match t.cfg.pid_file with
  | None -> ()
  | Some path -> (
    (* Atomic so a harness never reads a half-written pid. *)
    match Durable.replace ~fsync_directory:false ~path (string_of_int pid ^ "\n") with
    | Ok () | Error _ -> ())

(* Sleep in small steps so a stop request cuts the backoff short. *)
let backoff_nap t seconds =
  let rec go left =
    if left > 0.0 && not (Atomic.get t.stopping) then begin
      Thread.delay (Float.min left 0.05);
      go (left -. 0.05)
    end
  in
  go seconds

let run t ~argv =
  if Array.length argv = 0 then invalid_arg "Supervise.run: empty argv";
  let rec loop () =
    let pid =
      Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
    in
    Atomic.set t.child pid;
    publish_pid t pid;
    (* A stop that raced the spawn must still reach the new child. *)
    if Atomic.get t.stopping then (
      try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let status = wait_child pid in
    Atomic.set t.child 0;
    match status with
    | Unix.WEXITED 0 -> 0
    | status when Atomic.get t.stopping -> (
      (* We asked it to stop; a non-zero end under SIGTERM forwarding is
         still a supervised shutdown, not a crash to restart. *)
      match status with Unix.WEXITED n -> n | _ -> 0)
    | status ->
      let n = Atomic.get t.restarts in
      if n >= t.cfg.max_restarts then begin
        Printf.eprintf "supervise: child %s; restart budget (%d) exhausted\n%!"
          (cause_of status) t.cfg.max_restarts;
        1
      end
      else begin
        Atomic.incr t.restarts;
        Metrics.inc m_restarts [ ("cause", cause_of status) ];
        let delay =
          Float.min t.cfg.max_backoff
            (t.cfg.base_backoff *. Float.pow 2.0 (float_of_int n))
        in
        Flight.record ~cat:"supervise" ~detail:(cause_of status) ~v:(n + 1)
          "supervise.restart";
        Printf.eprintf "supervise: child %s; restart #%d in %.2fs\n%!"
          (cause_of status) (n + 1) delay;
        backoff_nap t delay;
        if Atomic.get t.stopping then 0 else loop ()
      end
  in
  loop ()
