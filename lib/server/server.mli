(** The long-lived SP daemon behind [zkqac serve].

    Serves range queries over a loaded ADS checkpoint, speaking {!Proto}
    over TCP, robustness-first:

    - per-connection absolute read/write deadlines ({!Sockio});
    - a bounded in-flight set with typed load shedding
      ([zkqac_server_shed_total]) — overload answers [Overloaded], never
      queues without bound, never hangs;
    - query execution on a persistent worker-domain pool
      ({!Zkqac_parallel.Pool}) with a per-query deadline — expiry answers
      [Deadline] while the abandoned worker finishes in the background;
    - graceful drain ({!begin_drain}, wired to SIGTERM by the CLI): stop
      accepting, let in-flight requests finish within their own deadlines,
      shut the pool down when no query is left running, append a [drain]
      audit entry, and return within [drain_deadline] even if a worker is
      stuck;
    - an optional live [GET /metrics] HTTP endpoint fed by the
      {!Zkqac_telemetry.Metrics} registry. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (tests); see {!Make.port} *)
  metrics_port : int option;  (** [Some 0] likewise *)
  threads : int;  (** worker domains in the persistent pool *)
  max_in_flight : int;  (** concurrent connections before shedding *)
  read_deadline : float;  (** budget for reading one request frame *)
  write_deadline : float;  (** budget for writing one response frame *)
  query_deadline : float;  (** budget for executing one query *)
  drain_deadline : float;  (** budget for the whole graceful drain *)
  checkpoint_every : float;
      (** seconds between epoch checkpoints of the served tree; 0 disables *)
}

val default_config : config

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Ap2g : module type of Zkqac_core.Ap2g.Make (P)
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  type t

  val start : config -> ads:string -> (t, string) result
  (** Recover the newest valid ADS checkpoint epoch
      ({!Zkqac_core.Ads_io.Make.load_recover}), bind the listener(s), spawn
      the persistent pool and the acceptor (and, when [checkpoint_every] is
      positive, a periodic epoch checkpointer), emit a [recovered] audit
      entry, and flip [/readyz] to ready. The health endpoint comes up
      {e before} recovery so a supervisor can watch it. Returns without
      blocking. *)

  val port : t -> int
  (** The bound query port (useful with [port = 0]). *)

  val metrics_port : t -> int option

  val ready : t -> bool
  (** True once startup recovery completed (what [/readyz] reports). *)

  val recovered_epoch : t -> int
  (** The checkpoint epoch this server resumed from. *)

  val begin_drain : t -> unit
  (** Initiate graceful drain; idempotent, callable from a signal handler. *)

  val wait : t -> unit
  (** Block until the drain completes (acceptor and metrics threads done). *)

  val served : t -> int
  (** Queries answered with a VO so far. *)

  val connections : t -> int
  (** Connections accepted (including shed ones). *)

  val pool : t -> Zkqac_parallel.Pool.pool
end
