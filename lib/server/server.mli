(** The long-lived SP daemon behind [zkqac serve].

    Serves range queries over a loaded ADS checkpoint, speaking {!Proto}
    over TCP, robustness-first:

    - per-connection absolute read/write deadlines ({!Sockio});
    - a bounded in-flight set with typed load shedding
      ([zkqac_server_shed_total]) — overload answers [Overloaded], never
      queues without bound, never hangs;
    - query execution on a persistent worker-domain pool
      ({!Zkqac_parallel.Pool}) with a per-query deadline — expiry answers
      [Deadline] while the abandoned worker finishes in the background;
    - graceful drain ({!begin_drain}, wired to SIGTERM by the CLI): stop
      accepting, let in-flight requests finish within their own deadlines,
      shut the pool down when no query is left running, append a [drain]
      audit entry, and return within [drain_deadline] even if a worker is
      stuck;
    - an optional live [GET /metrics] HTTP endpoint fed by the
      {!Zkqac_telemetry.Metrics} registry, with the tail sampler's
      [GET /slowlog] mounted alongside;
    - end-to-end request correlation: every request's id (client-minted
      for v2 requests, server-minted otherwise) appears identically in the
      root trace span, its [pool.worker] child, the [serve] audit entry,
      the flight event, the {!Slowlog} incident, and — for v2 requests —
      the response footer's timing split. The response version always
      mirrors the request's, so old peers interoperate. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (tests); see {!Make.port} *)
  metrics_port : int option;  (** [Some 0] likewise *)
  threads : int;  (** worker domains in the persistent pool *)
  max_in_flight : int;  (** concurrent connections before shedding *)
  read_deadline : float;  (** budget for reading one request frame *)
  write_deadline : float;  (** budget for writing one response frame *)
  query_deadline : float;  (** budget for executing one query *)
  drain_deadline : float;  (** budget for the whole graceful drain *)
  checkpoint_every : float;
      (** seconds between epoch checkpoints of the served tree; 0 disables *)
  slow_threshold_ms : float;
      (** tail-sampling slow threshold; 0 = dynamic p99 (see {!Slowlog}) *)
  slowlog_cap : int;  (** incidents retained by the tail sampler *)
  slow_inject : (float * int) option;
      (** test/harness hook: delay (seconds) injected into the Nth decoded
          request (1-based), once — so a harness can force exactly one slow
          incident. [default_config] arms it from [ZKQAC_SLOW_INJECT=MS[:N]]. *)
}

val default_config : config

val slow_inject_of_env : unit -> (float * int) option
(** Parse [ZKQAC_SLOW_INJECT=MS[:N]] (milliseconds, 1-based ordinal
    defaulting to 1); [None] when unset or empty, [Invalid_argument] on
    nonsense — a misspelled harness knob must fail loudly. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Ap2g : module type of Zkqac_core.Ap2g.Make (P)
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  type t

  val start : config -> ads:string -> (t, string) result
  (** Recover the newest valid ADS checkpoint epoch
      ({!Zkqac_core.Ads_io.Make.load_recover}), bind the listener(s), spawn
      the persistent pool and the acceptor (and, when [checkpoint_every] is
      positive, a periodic epoch checkpointer), emit a [recovered] audit
      entry, and flip [/readyz] to ready. The health endpoint comes up
      {e before} recovery so a supervisor can watch it. Returns without
      blocking. *)

  val port : t -> int
  (** The bound query port (useful with [port = 0]). *)

  val metrics_port : t -> int option

  val ready : t -> bool
  (** True once startup recovery completed (what [/readyz] reports). *)

  val recovered_epoch : t -> int
  (** The checkpoint epoch this server resumed from. *)

  val begin_drain : t -> unit
  (** Initiate graceful drain; idempotent, callable from a signal handler. *)

  val wait : t -> unit
  (** Block until the drain completes (acceptor and metrics threads done). *)

  val served : t -> int
  (** Queries answered with a VO so far. *)

  val connections : t -> int
  (** Connections accepted (including shed ones). *)

  val pool : t -> Zkqac_parallel.Pool.pool

  val slowlog : t -> Slowlog.t
  (** The live tail sampler backing [/slowlog]. *)

  val dump_slowlog : t -> int
  (** Dump the slowlog JSON plus per-incident Perfetto files into the
      flight recorder's dump directory ([ZKQAC_FLIGHT_DIR]); returns files
      written, 0 when no dump directory is configured. Wired to SIGUSR1 by
      [zkqac serve], next to the flight dump. *)
end
