(** Restart-loop supervision for the serve daemon ([zkqac supervise]).

    Runs a child command under fork+exec, restarting it with exponential
    backoff whenever it dies without being asked to (counted in
    [zkqac_supervisor_restarts_total{cause}]). A child exiting 0 — a
    completed graceful drain — ends supervision with exit 0; {!stop}
    (wired to SIGTERM by the CLI) forwards the signal to the child so the
    drain happens first. The child pid is published atomically to
    [pid_file] so a crash harness can SIGKILL the server, not the
    supervisor. *)

type config = {
  max_restarts : int;  (** give up (exit nonzero) after this many restarts *)
  base_backoff : float;  (** first restart delay, seconds *)
  max_backoff : float;  (** backoff ceiling, seconds *)
  pid_file : string option;  (** where to publish the child pid *)
}

val default_config : config
(** 1000 restarts, 0.1 s base, 5 s ceiling, no pid file. *)

type t

val create : config -> t

val run : t -> argv:string array -> int
(** Spawn and supervise [argv] (resolved via [argv.(0)]; use an absolute
    path or rely on exec search). Blocks until the child exits cleanly,
    the restart budget is exhausted, or {!stop} was requested; returns
    the exit code the supervisor should end with. *)

val stop : t -> unit
(** Request shutdown: SIGTERM the live child and end the loop after it
    exits. Callable from a signal handler. Idempotent. *)

val restarts : t -> int
(** Restarts performed so far. *)
