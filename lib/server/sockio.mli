(** Deadline-bounded socket I/O for the serving stack.

    Reads and writes carry an {e absolute} monotonic deadline rather than a
    per-syscall timeout: a slowloris peer that dribbles one byte per
    almost-timeout defeats SO_RCVTIMEO but not an absolute bound on the
    whole exchange. Every failure mode is a typed {!fault} — the serving
    layers never see a raw [Unix_error] from a hostile peer. *)

type fault =
  | Timeout  (** the deadline expired before the exchange completed *)
  | Closed  (** the peer closed or reset the connection mid-exchange *)
  | Refused  (** the connection attempt was refused *)
  | Too_large of { length : int; limit : int }
      (** a frame header announced more bytes than the reader allows *)
  | Io of string  (** any other OS-level failure *)

exception Fault of fault

val fault_to_string : fault -> string

val fault_code : fault -> string
(** Stable kebab-case tag for metrics labels and flight-recorder details. *)

val deadline_after : float -> int64
(** [deadline_after s] is the absolute monotonic deadline [s] seconds from
    now, to pass to the I/O calls below. *)

val remaining_s : int64 -> float
(** Seconds left until a deadline (negative once expired). *)

val connect : host:string -> port:int -> timeout:float -> Unix.file_descr
(** Open a TCP connection (non-blocking connect + select, so the timeout is
    honored even for black-hole addresses). Sets TCP_NODELAY.
    @raise Fault on refusal, timeout, or resolution failure. *)

val read_exact : Unix.file_descr -> deadline:int64 -> int -> string
val write_all : Unix.file_descr -> deadline:int64 -> string -> unit

val read_frame : Unix.file_descr -> deadline:int64 -> max_bytes:int -> string
(** Read one [u32-BE length ++ payload] frame. A length above [max_bytes]
    raises [Fault (Too_large _)] {e before} any allocation. *)

val write_frame : Unix.file_descr -> deadline:int64 -> string -> unit

val close_noerr : Unix.file_descr -> unit
