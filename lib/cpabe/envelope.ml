module Aes = Zkqac_symmetric.Aes128
module Sha256 = Zkqac_hashing.Sha256
module Hmac = Zkqac_hashing.Hmac
module Wire = Zkqac_util.Wire

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module C = Cpabe.Make (P)

  type sealed = {
    kem : C.ciphertext;   (* CP-ABE encryption of the KEM element *)
    nonce : string;
    body : string;        (* AES-CTR encrypted payload *)
    tag : string;         (* HMAC-SHA256 over nonce || body *)
  }

  (* Derive AES and MAC keys from the KEM group element. *)
  let keys_of_element elt =
    let seed = Sha256.digest_list [ "zkqac-envelope"; P.Gt.to_bytes elt ] in
    let enc = String.sub (Sha256.digest_list [ "enc"; seed ]) 0 16 in
    let mac = Sha256.digest_list [ "mac"; seed ] in
    (enc, mac)

  let seal drbg pp ~policy payload =
    Zkqac_telemetry.Telemetry.span "envelope.seal" (fun () ->
        let m = C.random_message drbg pp in
        let kem = C.encrypt drbg pp m ~policy in
        let enc_key, mac_key = keys_of_element m in
        let nonce = Zkqac_hashing.Drbg.generate drbg 12 in
        let body = Aes.ctr ~key:enc_key ~nonce payload in
        let tag = Hmac.mac ~key:mac_key (nonce ^ body) in
        { kem; nonce; body; tag })

  let open_result pp sk sealed =
    Zkqac_telemetry.Telemetry.span "envelope.open" (fun () ->
        match C.decrypt pp sk sealed.kem with
        | None ->
          Error
            (Zkqac_util.Verify_error.Envelope_open_failed
               "roles do not satisfy the sealing policy")
        | Some m ->
          let enc_key, mac_key = keys_of_element m in
          let expect = Hmac.mac ~key:mac_key (sealed.nonce ^ sealed.body) in
          if not (String.equal expect sealed.tag) then
            Error (Zkqac_util.Verify_error.Digest_mismatch "envelope HMAC tag")
          else Ok (Aes.ctr ~key:enc_key ~nonce:sealed.nonce sealed.body))

  let open_ pp sk sealed = Result.to_option (open_result pp sk sealed)

  let to_bytes sealed =
    let w = Wire.writer () in
    Wire.bytes w (C.ciphertext_to_bytes sealed.kem);
    Wire.bytes w sealed.nonce;
    Wire.bytes w sealed.body;
    Wire.bytes w sealed.tag;
    Wire.contents w

  let decode ?limits data =
    Wire.decode ?limits data @@ fun r ->
    let kem =
      match C.ciphertext_of_bytes (Wire.rbytes r) with
      | Some k -> k
      | None -> raise Wire.Malformed
    in
    let nonce = Wire.rbytes r in
    let body = Wire.rbytes r in
    let tag = Wire.rbytes r in
    { kem; nonce; body; tag }

  let of_bytes data = Result.to_option (decode data)

  let size sealed =
    C.ciphertext_size sealed.kem + String.length sealed.nonce
    + String.length sealed.body + String.length sealed.tag
end
