module B = Zkqac_bigint.Bigint
module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Drbg = Zkqac_hashing.Drbg
module Wire = Zkqac_util.Wire
module T = Zkqac_telemetry.Telemetry
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module G = P.G
  module Gt = P.Gt

  let order = P.order

  type mk = { beta : B.t; g_alpha : G.t }

  type pp = {
    g : G.t;
    h : G.t;            (* g^beta *)
    egg_alpha : Gt.t;   (* e(g,g)^alpha *)
  }

  module Attr_map = Map.Make (String)

  type secret_key = {
    attrs : Attr.Set.t;
    d : G.t;                         (* g^((alpha + r)/beta) *)
    dj : (G.t * G.t) Attr_map.t;     (* D_j = g^r * H(j)^rj,  D'_j = g^rj *)
  }

  (* Ciphertext leaves are indexed by DFS position because the same attribute
     may appear at several leaves of the policy tree. *)
  type ciphertext = {
    policy : Expr.t;
    c_tilde : Gt.t;                  (* M * e(g,g)^(alpha s) *)
    c : G.t;                         (* h^s *)
    leaves : (Attr.t * G.t * G.t) array; (* attr, C_y = g^qy, C'_y = H(attr)^qy *)
  }

  let hash_attr a = G.hash_to ("cpabe-attr:" ^ a)

  (* Leaf attribute names in DFS order — the order [share] emits shares
     and [decrypt] consumes ciphertext components. *)
  let policy_leaves expr =
    let out = ref [] in
    let rec go = function
      | Expr.Leaf a -> out := a :: !out
      | Expr.Or cs | Expr.And cs | Expr.Threshold (_, cs) -> List.iter go cs
    in
    go expr;
    Array.of_list (List.rev !out)

  let setup drbg =
    let alpha = P.rand_scalar drbg in
    let beta = P.rand_scalar drbg in
    let g = P.rand_g drbg in
    let pp =
      { g; h = G.pow g beta; egg_alpha = P.Gt.pow (P.e g g) alpha }
    in
    ({ beta; g_alpha = G.pow g alpha }, pp)

  let keygen drbg mk pp attrs =
    let r = P.rand_scalar drbg in
    let d =
      G.pow (G.mul mk.g_alpha (G.pow pp.g r)) (B.invmod mk.beta order)
    in
    let g_r = G.pow pp.g r in
    let dj =
      Attr.Set.fold
        (fun a acc ->
          let rj = P.rand_scalar drbg in
          Attr_map.add a (G.mul g_r (G.pow (hash_attr a) rj), G.pow pp.g rj) acc)
        attrs Attr_map.empty
    in
    { attrs; d; dj }

  let random_message drbg pp =
    Gt.pow (P.e pp.g pp.g) (P.rand_scalar drbg)

  (* Secret sharing down the policy tree: a k-of-n threshold gate shares the
     secret with a degree k-1 polynomial; AND is the n-of-n special case, OR
     the 1-of-n one. Children are indexed 1..n. *)
  let share drbg secret expr =
    let leaves = ref [] in
    let share_poly secret degree children go =
      if degree = 0 then List.iter (fun c -> go c secret) children
      else begin
        (* q(0) = secret; q(x) = secret + c1 x + ... + c_degree x^degree. *)
        let coeffs = Array.init degree (fun _ -> P.rand_scalar drbg) in
        let eval x =
          let acc = ref B.zero in
          for k = Array.length coeffs - 1 downto 0 do
            acc := B.erem (B.mul (B.add !acc coeffs.(k)) (B.of_int x)) order
          done;
          B.erem (B.add !acc secret) order
        in
        List.iteri (fun i c -> go c (eval (i + 1))) children
      end
    in
    let rec go expr secret =
      match expr with
      | Expr.Leaf a -> leaves := (a, secret) :: !leaves
      | Expr.Or children -> share_poly secret 0 children go
      | Expr.And children -> share_poly secret (List.length children - 1) children go
      | Expr.Threshold (k, children) -> share_poly secret (k - 1) children go
    in
    go expr secret;
    Array.of_list (List.rev !leaves)

  let encrypt drbg pp m ~policy =
    Trace.with_span "cpabe.encrypt" @@ fun _ ->
    T.bump T.Cpabe_encrypt;
    let s = P.rand_scalar drbg in
    let shares = share drbg s policy in
    {
      policy;
      c_tilde = Gt.mul m (Gt.pow pp.egg_alpha s);
      c = G.pow pp.h s;
      leaves =
        Array.map
          (fun (a, q) -> (a, G.pow pp.g q, G.pow (hash_attr a) q))
          shares;
    }

  (* Lagrange coefficient Delta_{i,S}(0) over Z_order. *)
  let lagrange i s =
    List.fold_left
      (fun acc j ->
        if j = i then acc
        else begin
          let num = B.erem (B.of_int (-j)) order in
          let den = B.invmod (B.erem (B.of_int (i - j)) order) order in
          B.erem (B.mul acc (B.mul num den)) order
        end)
      B.one s

  let decrypt _pp sk ct =
    Trace.with_span "cpabe.open" @@ fun _ ->
    T.bump T.Cpabe_decrypt;
    if not (Expr.eval ct.policy sk.attrs) then None
    else begin
      (* Recursive DecryptNode; leaf_idx tracks DFS position to find the
         matching ciphertext components. Lagrange-interpolate any k decrypted
         children of a k-of-n gate at 0. *)
      let idx = ref 0 in
      let combine k results =
        let indexed =
          List.mapi (fun i r -> (i + 1, r)) results
          |> List.filter_map (fun (i, r) -> Option.map (fun v -> (i, v)) r)
        in
        if List.length indexed < k then None
        else begin
          let chosen = List.filteri (fun j _ -> j < k) indexed in
          let s = List.map fst chosen in
          let acc = ref Gt.one in
          List.iter
            (fun (i, v) -> acc := Gt.mul !acc (Gt.pow v (lagrange i s)))
            chosen;
          Some !acc
        end
      in
      let rec node expr : Gt.t option =
        match expr with
        | Expr.Leaf a ->
          let i = !idx in
          incr idx;
          (match Attr_map.find_opt a sk.dj with
           | None -> None
           | Some (dj, dj') ->
             let _, cy, cy' = ct.leaves.(i) in
             (* e(D_j, C_y) / e(D'_j, C'_y) = e(g,g)^(r * q_y(0)) *)
             Some (Gt.mul (P.e dj cy) (Gt.inv (P.e dj' cy'))))
        | Expr.Or children ->
          (* Evaluate every child to keep idx in sync; use the first
             success. *)
          let results = List.map node children in
          List.find_opt Option.is_some results |> Option.join
        | Expr.And children -> combine (List.length children) (List.map node children)
        | Expr.Threshold (k, children) -> combine k (List.map node children)
      in
      match node ct.policy with
      | None -> None
      | Some a ->
        (* M = C~ * A / e(C, D);  e(C,D) = e(g,g)^(s(alpha + r)), A = e(g,g)^(rs). *)
        let ecd = P.e ct.c sk.d in
        Some (Gt.mul ct.c_tilde (Gt.mul a (Gt.inv ecd)))
    end

  let ciphertext_to_bytes ct =
    let w = Wire.writer () in
    Wire.bytes w (Expr.to_string ct.policy);
    Wire.bytes w (Gt.to_bytes ct.c_tilde);
    Wire.bytes w (G.to_bytes ct.c);
    Wire.u32 w (Array.length ct.leaves);
    Array.iter
      (fun (a, cy, cy') ->
        Wire.bytes w a;
        Wire.bytes w (G.to_bytes cy);
        Wire.bytes w (G.to_bytes cy'))
      ct.leaves;
    Wire.contents w

  let ciphertext_of_bytes data =
    match
      let r = Wire.reader data in
      let policy =
        let s = Wire.rbytes r in
        match Expr.of_string s with
        | p -> p
        | exception (Invalid_argument _ | Failure _) -> raise Wire.Malformed
      in
      let gt () = match Gt.of_bytes (Wire.rbytes r) with Some x -> x | None -> raise Wire.Malformed in
      let g () = match G.of_bytes (Wire.rbytes r) with Some x -> x | None -> raise Wire.Malformed in
      let c_tilde = gt () in
      let c = g () in
      let n = Wire.rcount r in
      let rec go k acc =
        if k = 0 then List.rev acc
        else begin
          let a = Wire.rbytes r in
          let cy = g () in
          let cy' = g () in
          go (k - 1) ((a, cy, cy') :: acc)
        end
      in
      let leaves = Array.of_list (go n []) in
      if not (Wire.at_end r) then raise Wire.Malformed;
      (* [decrypt] indexes components by the policy's DFS leaf order and
         never reads the serialized attribute names; require them to agree
         with the policy so those bytes are not silently malleable. *)
      let expected = policy_leaves policy in
      if Array.length leaves <> Array.length expected then raise Wire.Malformed;
      Array.iteri
        (fun i (a, _, _) ->
          if not (String.equal a expected.(i)) then raise Wire.Malformed)
        leaves;
      { policy; c_tilde; c; leaves }
    with
    | ct -> Some ct
    | exception (Wire.Malformed | Wire.Limit _ | Invalid_argument _) -> None

  let ciphertext_size ct =
    let gsz = String.length (G.to_bytes ct.c) in
    let gtsz = String.length (Gt.to_bytes ct.c_tilde) in
    let policy_sz = String.length (Expr.to_string ct.policy) in
    policy_sz + gtsz + gsz
    + Array.fold_left
        (fun acc (a, _, _) -> acc + String.length a + (2 * gsz))
        0 ct.leaves
end
