(** Hybrid CP-ABE/AES encryption of byte payloads.

    Implements the transport step of Algorithms 1 and 3: the payload
    (query results + VO) is encrypted with AES-128-CTR under a fresh key,
    and that key is derived from a random pairing-target element wrapped
    with CP-ABE under a policy (for query responses: the AND of the user's
    claimed roles, so only a user genuinely holding those roles can open
    it). An HMAC tag authenticates the payload against accidental
    corruption. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module C : module type of Cpabe.Make (P)

  type sealed

  val seal :
    Zkqac_hashing.Drbg.t ->
    C.pp ->
    policy:Zkqac_policy.Expr.t ->
    string ->
    sealed

  val open_ : C.pp -> C.secret_key -> sealed -> string option
  (** [None] if the key does not satisfy the policy or the payload fails
      authentication. Thin wrapper over {!open_result}. *)

  val open_result :
    C.pp ->
    C.secret_key ->
    sealed ->
    (string, Zkqac_util.Verify_error.t) result
  (** As {!open_}, but distinguishes [Envelope_open_failed] (the key does
      not satisfy the sealing policy) from [Digest_mismatch] (the HMAC tag
      over the payload is wrong). *)

  val size : sealed -> int
  val to_bytes : sealed -> string
  val of_bytes : string -> sealed option

  val decode :
    ?limits:Zkqac_util.Wire.limits ->
    string ->
    (sealed, Zkqac_util.Verify_error.t) result
  (** As {!of_bytes}, with typed failures and reader resource limits. *)
end
