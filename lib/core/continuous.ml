module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Sha256 = Zkqac_hashing.Sha256

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Vo.Make (P)

  let pseudo_policy = Expr.Leaf Attr.pseudo_role

  let bound_str = function None -> "inf" | Some v -> string_of_int v

  let gap_message ~lo ~hi =
    Sha256.digest_list [ "zkqac-gap"; bound_str lo; bound_str hi ]

  type signed_record = { record : Record.t; app : Abs.signature }
  type signed_gap = { lo : int option; hi : int option; gap_app : Abs.signature }

  type t = {
    universe : Universe.t;
    records : signed_record array;  (* sorted by key *)
    gaps : signed_gap array;        (* gaps.(i) precedes records.(i); last gap after *)
  }

  type entry =
    | Rec_accessible of { record : Record.t; app : Abs.signature }
    | Rec_inaccessible of { key : int; value_hash : string; aps : Abs.signature }
    | Gap of { lo : int option; hi : int option; aps : Abs.signature }

  type vo = entry list

  let build drbg ~mvk ~sk ~universe records =
    List.iter
      (fun (r : Record.t) ->
        if Array.length r.Record.key <> 1 then
          invalid_arg "Continuous.build: need 1-D keys")
      records;
    let sorted =
      List.sort_uniq
        (fun (a : Record.t) (b : Record.t) -> compare a.Record.key.(0) b.Record.key.(0))
        records
    in
    if List.length sorted <> List.length records then
      invalid_arg "Continuous.build: duplicate keys";
    let signed =
      Array.of_list
        (List.map
           (fun (r : Record.t) ->
             { record = r;
               app = Abs.sign drbg mvk sk ~msg:(Record.message_of r) ~policy:r.Record.policy })
           sorted)
    in
    let n = Array.length signed in
    let gap_bounds i =
      let lo = if i = 0 then None else Some signed.(i - 1).record.Record.key.(0) in
      let hi = if i = n then None else Some signed.(i).record.Record.key.(0) in
      (lo, hi)
    in
    let gaps =
      Array.init (n + 1) (fun i ->
          let lo, hi = gap_bounds i in
          { lo; hi;
            gap_app = Abs.sign drbg mvk sk ~msg:(gap_message ~lo ~hi) ~policy:pseudo_policy })
    in
    { universe; records = signed; gaps }

  let num_signatures t = Array.length t.records + Array.length t.gaps

  let keep_of t ~user = Expr.attrs (Universe.super_policy t.universe ~user)

  let relax_exn drbg ~mvk ~signature ~msg ~policy ~keep =
    match Abs.relax drbg mvk signature ~msg ~policy ~keep with
    | Some s -> s
    | None -> invalid_arg "Continuous: relaxation failed"

  let record_entry drbg ~mvk ~keep ~user (sr : signed_record) =
    let r = sr.record in
    if Expr.eval r.Record.policy user then Rec_accessible { record = r; app = sr.app }
    else begin
      let value_hash = Record.value_hash r.Record.value in
      let aps =
        relax_exn drbg ~mvk ~signature:sr.app
          ~msg:(Record.message ~key:r.Record.key ~value_hash)
          ~policy:r.Record.policy ~keep
      in
      Rec_inaccessible { key = r.Record.key.(0); value_hash; aps }
    end

  let gap_entry drbg ~mvk ~keep (g : signed_gap) =
    let aps =
      relax_exn drbg ~mvk ~signature:g.gap_app
        ~msg:(gap_message ~lo:g.lo ~hi:g.hi) ~policy:pseudo_policy ~keep
    in
    Gap { lo = g.lo; hi = g.hi; aps }

  let equality_vo drbg ~mvk t ~user key =
    let keep = keep_of t ~user in
    let n = Array.length t.records in
    let rec bsearch lo hi =
      if lo >= hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let k = t.records.(mid).record.Record.key.(0) in
        if k = key then Some mid
        else if k < key then bsearch (mid + 1) hi
        else bsearch lo mid
      end
    in
    match bsearch 0 n with
    | Some i -> record_entry drbg ~mvk ~keep ~user t.records.(i)
    | None ->
      (* Find the gap containing the key. *)
      let idx = ref 0 in
      while
        !idx < n && t.records.(!idx).record.Record.key.(0) < key
      do
        incr idx
      done;
      gap_entry drbg ~mvk ~keep t.gaps.(!idx)

  let range_vo drbg ~mvk t ~user ~lo ~hi =
    let keep = keep_of t ~user in
    let out = ref [] in
    Array.iter
      (fun (sr : signed_record) ->
        let k = sr.record.Record.key.(0) in
        if k >= lo && k <= hi then
          out := record_entry drbg ~mvk ~keep ~user sr :: !out)
      t.records;
    Array.iter
      (fun (g : signed_gap) ->
        (* The open interval (g.lo, g.hi) intersects [lo, hi]? *)
        let glo = match g.lo with None -> min_int | Some v -> v in
        let ghi = match g.hi with None -> max_int | Some v -> v in
        if glo < hi && ghi > lo && glo + 1 <= ghi - 1 && glo + 1 <= hi && ghi - 1 >= lo
        then out := gap_entry drbg ~mvk ~keep g :: !out)
      t.gaps;
    List.rev !out

  let rec verify_range ?batch ~mvk ~t_universe ~user ~lo ~hi vo =
    let ( let* ) = Result.bind in
    let super_policy = Universe.super_policy t_universe ~user in
    (* Soundness of each entry (signatures deferred to one batch when a
       batching DRBG is supplied). *)
    let check entry =
      match entry with
      | Rec_accessible { record; app } ->
        if record.Record.key.(0) < lo || record.Record.key.(0) > hi then
          Error (Vo.Record_outside_query record.Record.key)
        else if not (Expr.eval record.Record.policy user) then
          Error (Vo.Policy_not_satisfied record.Record.key)
        else if batch <> None then Ok ()
        else if
          Abs.verify mvk ~msg:(Record.message_of record) ~policy:record.Record.policy
            app
        then Ok ()
        else Error (Vo.Bad_abs_signature "continuous record APP")
      | Rec_inaccessible { key; value_hash; aps } ->
        if batch <> None then Ok ()
        else if
          Abs.verify mvk
            ~msg:(Record.message ~key:[| key |] ~value_hash)
            ~policy:super_policy aps
        then Ok ()
        else Error (Vo.Bad_aps_signature "continuous record APS")
      | Gap { lo = glo; hi = ghi; aps } ->
        if batch <> None then Ok ()
        else if
          Abs.verify mvk ~msg:(gap_message ~lo:glo ~hi:ghi) ~policy:super_policy aps
        then Ok ()
        else Error (Vo.Bad_aps_signature "continuous gap APS")
    in
    let* () =
      List.fold_left (fun acc e -> Result.bind acc (fun () -> check e)) (Ok ()) vo
    in
    let* () =
      match batch with
      | None -> Ok ()
      | Some drbg ->
        (* Accessible APPs batch per record policy; inaccessible-record and
           gap APSes share the super-policy batch. On rejection, the
           sequential pass names the culprit with its precise typed error. *)
        let app_groups :
            (string, Expr.t * (string * Abs.signature) list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        let aps_entries = ref [] in
        List.iter
          (function
            | Rec_accessible { record; app } ->
              let key = Expr.to_string record.Record.policy in
              let item = (Record.message_of record, app) in
              (match Hashtbl.find_opt app_groups key with
               | Some (_, l) -> l := item :: !l
               | None ->
                 Hashtbl.add app_groups key (record.Record.policy, ref [ item ]))
            | Rec_inaccessible { key; value_hash; aps } ->
              aps_entries :=
                (Record.message ~key:[| key |] ~value_hash, aps) :: !aps_entries
            | Gap { lo = glo; hi = ghi; aps } ->
              aps_entries := (gap_message ~lo:glo ~hi:ghi, aps) :: !aps_entries)
          vo;
        let batches_ok =
          Abs.verify_batch drbg mvk ~policy:super_policy (List.rev !aps_entries)
          && Hashtbl.fold
               (fun _ (policy, sigs) acc ->
                 acc && Abs.verify_batch drbg mvk ~policy (List.rev !sigs))
               app_groups true
        in
        if batches_ok then Ok ()
        else begin
          match verify_range ~mvk ~t_universe ~user ~lo ~hi vo with
          | Error e -> Error e
          | Ok _ -> Error (Vo.Bad_aps_signature "batched APS verification")
        end
    in
    (* Completeness: points and open gaps must cover every integer of
       [lo, hi]. Collect covered intervals and sweep. *)
    let intervals =
      List.filter_map
        (fun e ->
          match e with
          | Rec_accessible { record; _ } ->
            Some (record.Record.key.(0), record.Record.key.(0))
          | Rec_inaccessible { key; _ } -> Some (key, key)
          | Gap { lo = glo; hi = ghi; _ } ->
            let a = match glo with None -> min_int / 2 | Some v -> v + 1 in
            let b = match ghi with None -> max_int / 2 | Some v -> v - 1 in
            if a > b then None else Some (a, b))
        vo
      |> List.sort compare
    in
    let rec sweep pos = function
      | [] -> pos > hi
      | (a, b) :: rest ->
        if a > pos then false
        else sweep (max pos (if b = max_int then b else b + 1)) rest
    in
    let* () = if sweep lo intervals then Ok () else Error Vo.Completeness_gap in
    Ok
      (List.filter_map
         (function Rec_accessible { record; _ } -> Some record | _ -> None)
         vo)
end
