(** Verification objects for range (and equality) queries, with the
    client-side soundness + completeness checks of Algorithm 3.

    A VO is the complete query response: accessible records travel inside it
    together with their APP signatures; inaccessible leaves and pruned
    subtrees travel as APS signatures. Every entry carries the region of key
    space it accounts for, and verification checks that the regions tile the
    query box exactly ("one and only one entry per indexing space"). *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  type entry =
    | Accessible of {
        region : Box.t;
        record : Record.t;
        app : Abs.signature;
      }  (** a query result, with the DO's original APP signature *)
    | Inaccessible_leaf of {
        region : Box.t;
        key : int array;
        value_hash : string;
        aps : Abs.signature;
      }  (** a single record (real or pseudo) proven out of reach *)
    | Inaccessible_node of {
        region : Box.t;
        aps : Abs.signature;
      }  (** a whole pruned subtree proven out of reach *)

  type t = entry list

  val entry_region : entry -> Box.t

  (** How leaf messages are bound. [`Plain] is the AP²G-tree convention
      (hash(o)|hash(v): the region of a record is derivable from its key).
      [`Boxed] additionally binds the region box into every leaf message —
      required by the AP²kd-tree, whose leaf regions are data-dependent and
      would otherwise be forgeable. *)
  type binding = [ `Plain | `Boxed ]

  (** Verification failures. This is {!Zkqac_util.Verify_error.t} re-exported
      with its constructors, so [Vo.Completeness_gap] and friends pattern-match
      directly and errors flow unchanged into telemetry attributes and CLI
      exit codes. *)
  type error = Zkqac_util.Verify_error.t =
    | Completeness_gap
    | Bad_abs_signature of string
    | Bad_aps_signature of string
    | Bad_aps_policy of string
    | Record_outside_query of int array
    | Policy_not_satisfied of int array
    | Malformed of { offset : int }
    | Limit_exceeded of { what : string; limit : int }
    | Digest_mismatch of string
    | Envelope_open_failed of string
    | Query_mismatch
    | Invalid_shape of string

  val error_to_string : error -> string

  val leaf_message : binding -> region:Box.t -> key:int array -> value_hash:string -> string
  val node_aps_message : region:Box.t -> string

  val verify :
    ?clip:bool ->
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    binding:binding ->
    super_policy:Zkqac_policy.Expr.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    t ->
    (Record.t list, error) result
  (** The user-side check: soundness (every signature valid, results inside
      the query and readable by the user, inaccessibility proven under
      exactly the user's super policy) and completeness (regions tile the
      query). Returns the accessible result records on success.

      When [batch] supplies a DRBG, all APS signatures are verified in one
      small-exponent batch and the accessible entries' APP signatures are
      batched too, grouped by record policy (one shared span program per
      batch). Structural checks are unchanged. If any batch rejects, the
      verifier falls back to one-by-one verification, so the returned typed
      error (and exit code) is identical to the unbatched path. *)

  val size : t -> int
  (** Serialized size in bytes — the "VO size" metric of the paper. *)

  val to_bytes : t -> string
  val of_bytes : string -> t option

  val decode :
    ?limits:Zkqac_util.Wire.limits ->
    string ->
    (t, Zkqac_util.Verify_error.t) result
  (** As {!of_bytes}, with typed failures ([Malformed] carrying the reader
      offset, [Limit_exceeded] when a resource bound trips) and reader
      resource limits. Rejects trailing bytes. *)
end
