(** The access-policy-preserving grid tree (AP²G-tree, Section 6.1).

    A complete 2^dims-ary tree over the whole keyspace: every level halves
    every dimension, every leaf is a unit cell holding exactly one record
    (real, or a pseudo record with policy Role_∅), so the tree shape is
    data-independent and leaks nothing. Non-leaf nodes carry the OR of their
    children's policies and an APP signature over the grid box
    (Definitions 6.1/6.2); a user who can access no record below a node can
    be answered with one relaxed signature for the whole subtree. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)
  module Vo : module type of Vo.Make (P)

  type t

  type build_stats = {
    leaf_signatures : int;   (** record APP signatures (incl. pseudo) *)
    node_signatures : int;   (** non-leaf APP signatures *)
    sign_time : float;       (** seconds spent in ABS.Sign *)
    structure_bytes : int;   (** boxes + policies *)
    signature_bytes : int;   (** serialized APP signatures *)
  }

  val build :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    sk:Abs.signing_key ->
    space:Keyspace.t ->
    universe:Zkqac_policy.Universe.t ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    pseudo_seed:string ->
    Record.t list ->
    t
  (** DO-side ADS generation (the first half of Algorithm 3). Records must
      have distinct, valid keys. When a hierarchy is supplied, record
      policies are augmented with implied ancestors (Section 8.1). *)

  val stats : t -> build_stats
  val space : t -> Keyspace.t
  val universe : t -> Zkqac_policy.Universe.t
  val hierarchy : t -> Zkqac_policy.Hierarchy.t option
  val num_records : t -> int

  val super_policy_for : t -> user:Zkqac_policy.Attr.Set.t -> Zkqac_policy.Expr.t
  (** The inaccessibility predicate used for this tree's VOs: the plain super
      policy, or the hierarchy-reduced one when the tree was built with a
      hierarchy. *)

  type query_stats = {
    relax_calls : int;
    nodes_visited : int;
    sp_time : float;
  }

  val range_vo :
    ?pmap:((unit -> Vo.entry) list -> Vo.entry list) ->
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t ->
    user:Zkqac_policy.Attr.Set.t ->
    Box.t ->
    Vo.t * query_stats
  (** SP-side VO construction (the BFS of Algorithm 3). [pmap] lets the
      caller parallelize the ABS.Relax jobs (Section 8.2); the default runs
      them sequentially. *)

  val verify :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t_universe:Zkqac_policy.Universe.t ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    Vo.t ->
    (Record.t list, Vo.error) result
  (** User-side verification; a convenience wrapper over {!Vo.verify} that
      computes the user's super policy exactly as the SP must have. *)

  val to_bytes : t -> string
  (** Versioned binary encoding of the whole outsourced ADS (structure,
      policies, signatures). *)

  val of_bytes : string -> t option

  val decode :
    ?limits:Zkqac_util.Wire.limits ->
    string ->
    (t, Zkqac_util.Verify_error.t) result
  (** As {!of_bytes}, with typed failures and reader resource limits (the
      recursive tree structure is depth-guarded). Rejects trailing bytes. *)

  (** Internal access for the join algorithm. *)
  type node
  val root : t -> node
  val node_box : node -> Box.t
  val node_policy : node -> Zkqac_policy.Expr.t
  val node_children : node -> node list
  (** Empty for leaves. *)

  val node_entry_inaccessible :
    Zkqac_hashing.Drbg.t -> mvk:Abs.mvk -> t -> user:Zkqac_policy.Attr.Set.t -> node -> Vo.entry
  (** The APS entry proving this node's subtree (or leaf) is out of reach. *)

  val node_leaf_record : node -> Record.t option
  val node_leaf_app : t -> node -> Abs.signature option
  val node_accessible : t -> user:Zkqac_policy.Attr.Set.t -> node -> bool
end
