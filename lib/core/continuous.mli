(** Continuous query attributes under relaxed confidentiality (Section 9.2).

    When zero-knowledge is relaxed to access-policy confidentiality, the DO
    can treat the gaps between consecutive (1-D, continuous) keys as pseudo
    *regions* with policy Role_∅ instead of discretizing the whole domain:
    the DO signs one APP signature per gap — (-∞, o₁), (o₁, o₂), …,
    (o_n, +∞) — and the SP proves emptiness of any queried gap with a
    relaxed signature. This discloses the distribution of the keys (which
    gap boundaries exist) but nothing about inaccessible contents or
    policies. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  type t

  type entry =
    | Rec_accessible of { record : Record.t; app : Abs.signature }
    | Rec_inaccessible of { key : int; value_hash : string; aps : Abs.signature }
    | Gap of { lo : int option; hi : int option; aps : Abs.signature }
        (** the open interval (lo, hi); [None] encodes ±∞ *)

  type vo = entry list

  val build :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    sk:Abs.signing_key ->
    universe:Zkqac_policy.Universe.t ->
    Record.t list ->
    t
  (** Records must have 1-D distinct keys (arbitrary ints — no keyspace
      bound: the domain is "continuous"). *)

  val num_signatures : t -> int

  val equality_vo :
    Zkqac_hashing.Drbg.t -> mvk:Abs.mvk -> t -> user:Zkqac_policy.Attr.Set.t -> int -> entry

  val range_vo :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t ->
    user:Zkqac_policy.Attr.Set.t ->
    lo:int ->
    hi:int ->
    vo

  val verify_range :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t_universe:Zkqac_policy.Universe.t ->
    user:Zkqac_policy.Attr.Set.t ->
    lo:int ->
    hi:int ->
    vo ->
    (Record.t list, Vo.Make(P).error) result
  (** Soundness per entry plus gap-chain completeness: the returned records
      and open gaps must jointly cover every integer of [lo, hi]. *)
end
