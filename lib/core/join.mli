(** Authenticated equi-join queries (Section 6.2, Algorithm 4).

    For [R ⋈_{R.o = S.o} S ∧ R.o ∈ [α, β]] over two AP²G-trees built on the
    same keyspace, the SP descends R's tree; an accessible R region is joined
    against the smallest covering S node, and whichever side is inaccessible
    contributes one APS signature proving that the region cannot contribute
    join results. Completeness is the *union* coverage check: result cells
    and APS regions together cover the query range (APS regions from the S
    tree may overlap each other, unlike in Algorithm 3). *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)
  module Vo : module type of Vo.Make (P)
  module Ap2g : module type of Ap2g.Make (P)

  type entry =
    | Pair of {
        r_record : Record.t;
        r_app : Abs.signature;
        s_record : Record.t;
        s_app : Abs.signature;
      }  (** a join result: matching accessible records from both tables *)
    | R_side of Vo.entry  (** inaccessibility proof from R's tree *)
    | S_side of Vo.entry  (** inaccessibility proof from S's tree *)

  type t = entry list

  type stats = { relax_calls : int; nodes_visited : int; sp_time : float }

  val join_vo :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    r:Ap2g.t ->
    s:Ap2g.t ->
    user:Zkqac_policy.Attr.Set.t ->
    Box.t ->
    t * stats
  (** SP-side construction (Algorithm 4). Both trees must share keyspace and
      universe. *)

  val verify :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t_universe:Zkqac_policy.Universe.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    t ->
    ((Record.t * Record.t) list, Vo.error) result
  (** User-side soundness (signatures; matching keys; accessibility; no
      duplicated pair) and completeness (union coverage) checks; returns the
      verified join pairs. *)

  val size : t -> int
  (** Serialized size in bytes, i.e. [String.length (to_bytes vo)]. *)

  val to_bytes : t -> string
  val of_bytes : string -> t option

  val decode :
    ?limits:Zkqac_util.Wire.limits ->
    string ->
    (t, Zkqac_util.Verify_error.t) result
  (** As {!of_bytes}, with typed failures and reader resource limits.
      Rejects trailing bytes. *)
end
