(** The full three-party protocol of Figure 2: data owner (DO), service
    provider (SP), and users, wired end-to-end.

    - the DO encrypts record contents with CP-ABE under each record's policy
      (content confidentiality), signs the AP²G-tree ADS, and hands
      everything to the SP;
    - the SP answers range queries with a result+VO payload, sealed with
      AES + CP-ABE under the AND of the user's claimed roles (so an impostor
      claiming roles it lacks cannot even read the response);
    - the user opens the envelope, verifies soundness + completeness, and
      decrypts the contents of its accessible records. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)
  module Cpabe : module type of Zkqac_cpabe.Cpabe.Make (P)
  module Envelope : module type of Zkqac_cpabe.Envelope.Make (P)
  module Ap2g : module type of Ap2g.Make (P)
  module Vo : module type of Vo.Make (P)

  type owner
  type server
  type user

  type plain_record = {
    key : int array;
    content : string;
    policy : Zkqac_policy.Expr.t;
  }

  val setup :
    seed:string ->
    space:Keyspace.t ->
    roles:Zkqac_policy.Attr.t list ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    plain_record list ->
    owner * server
  (** DO-side system setup: key generation, CP-ABE encryption of contents,
      ADS generation; returns the outsourced SP state. *)

  val register_user : owner -> Zkqac_policy.Attr.Set.t -> user
  (** Issue a user its role set: CP-ABE decryption key + public verification
      material. @raise Invalid_argument on roles outside the universe. *)

  type response
  (** The sealed payload the SP sends back. *)

  val range_query :
    ?pmap:((unit -> Vo.entry) list -> Vo.entry list) ->
    server ->
    claimed_roles:Zkqac_policy.Attr.Set.t ->
    Box.t ->
    response
  (** SP-side query processing: constructs the VO and seals it under the
      claimed roles. [pmap] runs the independent relax jobs (default:
      sequential; pass [Zkqac_parallel.Pool.map ~threads] to fan out).
      When tracing is enabled the whole call records one
      [system.range_query] root span. *)

  val response_size : response -> int

  type verified = {
    results : (int array * string) list;  (** key, decrypted content *)
    vo_entries : int;
    vo_size : int;
  }

  val open_and_verify_v :
    ?batch:bool ->
    user ->
    query:Box.t ->
    response ->
    (verified, Zkqac_util.Verify_error.t) result
  (** User side: open the envelope (fails for impostors), verify the VO
      (fails on any tampering or omission), decrypt accessible contents.
      Failures carry the typed {!Zkqac_util.Verify_error.t} taxonomy; the
      error code is also recorded as a [verify_error] span attribute.

      [batch] (default [true]) verifies the VO's signatures with
      small-exponent batching (weights derived deterministically from the
      decrypted payload, which the server committed to before the weights
      existed). A rejected batch falls back to one-by-one verification, so
      the typed error is identical either way. *)

  val open_and_verify :
    ?batch:bool -> user -> query:Box.t -> response -> (verified, string) result
  (** {!open_and_verify_v} with errors rendered to strings. *)

  val user_roles : user -> Zkqac_policy.Attr.Set.t
  val universe : owner -> Zkqac_policy.Universe.t
end
