module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy

module T = Zkqac_telemetry.Telemetry
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Vo.Make (P)

  type node = {
    box : Box.t;
    policy : Expr.t;
    signature : Abs.signature;
    content : content;
  }

  and content =
    | Leaf of Record.t  (* real or pseudo record in this unit cell *)
    | Children of node list

  type build_stats = {
    leaf_signatures : int;
    node_signatures : int;
    sign_time : float;
    structure_bytes : int;
    signature_bytes : int;
  }

  type t = {
    space : Keyspace.t;
    universe : Universe.t;
    hierarchy : Hierarchy.t option;
    root : node;
    num_records : int;
    stats : build_stats;
  }

  module Key_map = Map.Make (struct
    type t = int list

    let compare = Stdlib.compare
  end)

  let build drbg ~mvk ~sk ~space ~universe ?hierarchy ~pseudo_seed records =
    T.span "ads.build" @@ fun () ->
    let augment =
      match hierarchy with
      | None -> Fun.id
      | Some h -> Hierarchy.augment_policy h
    in
    let by_key =
      List.fold_left
        (fun acc (r : Record.t) ->
          if not (Keyspace.valid_key space r.Record.key) then
            invalid_arg "Ap2g.build: key outside space";
          let k = Array.to_list r.Record.key in
          if Key_map.mem k acc then invalid_arg "Ap2g.build: duplicate key";
          Key_map.add k { r with Record.policy = augment r.Record.policy } acc)
        Key_map.empty records
    in
    let leaf_sigs = ref 0 and node_sigs = ref 0 in
    let sign_time = ref 0.0 in
    let structure_bytes = ref 0 and signature_bytes = ref 0 in
    let timed_sign ~msg ~policy =
      let t0 = Unix.gettimeofday () in
      let s = Abs.sign drbg mvk sk ~msg ~policy in
      sign_time := !sign_time +. (Unix.gettimeofday () -. t0);
      signature_bytes := !signature_bytes + Abs.size s;
      s
    in
    let rec build_node box =
      structure_bytes := !structure_bytes + String.length (Box.encode box);
      if Keyspace.is_unit box then begin
        let key = Keyspace.key_of_unit box in
        let record =
          match Key_map.find_opt (Array.to_list key) by_key with
          | Some r -> r
          | None -> Record.pseudo ~seed:pseudo_seed ~key
        in
        incr leaf_sigs;
        structure_bytes :=
          !structure_bytes + String.length (Expr.to_string record.Record.policy);
        let signature =
          timed_sign ~msg:(Record.message_of record) ~policy:record.Record.policy
        in
        { box; policy = record.Record.policy; signature; content = Leaf record }
      end
      else begin
        let children = List.map build_node (Keyspace.children_boxes space box) in
        (* OR of the children's policies, with duplicates collapsed: the
           disjunction is semantically unchanged and signing stays cheap for
           the (common) all-pseudo subtrees. *)
        let distinct =
          List.sort_uniq Expr.compare
            (List.map (fun c -> Expr.canonical c.policy) children)
        in
        let policy = Expr.disj distinct in
        incr node_sigs;
        structure_bytes := !structure_bytes + String.length (Expr.to_string policy);
        let signature = timed_sign ~msg:(Record.node_message box) ~policy in
        { box; policy; signature; content = Children children }
      end
    in
    let root = build_node (Keyspace.whole space) in
    {
      space;
      universe;
      hierarchy;
      root;
      num_records = List.length records;
      stats =
        {
          leaf_signatures = !leaf_sigs;
          node_signatures = !node_sigs;
          sign_time = !sign_time;
          structure_bytes = !structure_bytes;
          signature_bytes = !signature_bytes;
        };
    }

  let stats t = t.stats
  let space t = t.space
  let universe t = t.universe
  let hierarchy t = t.hierarchy
  let num_records t = t.num_records

  let effective_user t ~user =
    match t.hierarchy with
    | None -> user
    | Some h -> Hierarchy.close_user h user

  let super_policy_for t ~user =
    match t.hierarchy with
    | None -> Universe.super_policy t.universe ~user
    | Some h -> Hierarchy.super_policy h t.universe ~user

  let keep_set t ~user = Expr.attrs (super_policy_for t ~user)

  type query_stats = { relax_calls : int; nodes_visited : int; sp_time : float }

  let relax_exn drbg ~mvk ~signature ~msg ~policy ~keep =
    match Abs.relax drbg mvk signature ~msg ~policy ~keep with
    | Some s -> s
    | None ->
      (* The tree invariant (node policy = OR of subtree policies) makes an
         inaccessible node always relaxable; failure is a construction bug. *)
      invalid_arg "Ap2g: relaxation failed on an inaccessible node"

  let node_inaccessible_entry_job drbg ~mvk ~keep node =
    (* Fork a per-job DRBG at job creation (sequential) so the thunks are
       self-contained and can run on any domain (Section 8.2). *)
    let job_drbg =
      Zkqac_hashing.Drbg.create ~seed:(Zkqac_hashing.Drbg.generate drbg 32)
    in
    match node.content with
    | Leaf record ->
      let key = record.Record.key in
      let value_hash = Record.value_hash record.Record.value in
      fun () ->
        let aps =
          relax_exn job_drbg ~mvk ~signature:node.signature
            ~msg:(Record.message ~key ~value_hash)
            ~policy:node.policy ~keep
        in
        Vo.Inaccessible_leaf { region = node.box; key; value_hash; aps }
    | Children _ ->
      fun () ->
        let aps =
          relax_exn job_drbg ~mvk ~signature:node.signature
            ~msg:(Record.node_message node.box) ~policy:node.policy ~keep
        in
        Vo.Inaccessible_node { region = node.box; aps }

  let range_vo ?(pmap = List.map (fun job -> job ())) drbg ~mvk t ~user query =
    Trace.with_span "sp.query"
      ~attrs:
        [ ("op", Trace.Str "ap2g.range");
          ("tree_depth", Trace.Int (Keyspace.depth t.space)) ]
    @@ fun ctx ->
    let t0 = Unix.gettimeofday () in
    let user = effective_user t ~user in
    let keep = keep_set t ~user in
    let visited = ref 0 in
    let direct = ref [] in
    let jobs = ref [] in
    (* Breadth-first search of Algorithm 3 (a queue; recursion order does not
       affect the result set, only traversal bookkeeping). *)
    let queue = Queue.create () in
    Queue.add t.root queue;
    while not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr visited;
      if Box.contains_box query node.box then begin
        if Expr.eval node.policy user then begin
          match node.content with
          | Leaf record ->
            if Expr.eval record.Record.policy user then
              direct :=
                Vo.Accessible { region = node.box; record; app = node.signature }
                :: !direct
            else
              (* Node accessible but this particular record is not: happens
                 only at leaves whose siblings make the parent accessible. *)
              jobs := node_inaccessible_entry_job drbg ~mvk ~keep node :: !jobs
          | Children children -> List.iter (fun c -> Queue.add c queue) children
        end
        else jobs := node_inaccessible_entry_job drbg ~mvk ~keep node :: !jobs
      end
      else begin
        match Box.intersect query node.box with
        | None -> ()
        | Some _ ->
          (match node.content with
           | Children children -> List.iter (fun c -> Queue.add c queue) children
           | Leaf _ ->
             (* A unit cell partially intersecting an aligned query cannot
                happen: unit cells are atomic. *)
             assert false)
      end
    done;
    let relax_jobs = List.rev !jobs in
    let relaxed =
      Trace.with_span "sp.relax" ~parent:ctx (fun _ -> pmap relax_jobs)
    in
    let vo = List.rev_append !direct relaxed in
    Trace.set_attrs ctx
      [ ("nodes_visited", Trace.Int !visited);
        ("relax_calls", Trace.Int (List.length relax_jobs));
        ("vo_entries", Trace.Int (List.length vo)) ];
    ( vo,
      {
        relax_calls = List.length relax_jobs;
        nodes_visited = !visited;
        sp_time = Unix.gettimeofday () -. t0;
      } )

  let verify ?batch ~mvk ~t_universe ?hierarchy ~user ~query vo =
    let super_policy =
      match hierarchy with
      | None -> Universe.super_policy t_universe ~user
      | Some h -> Hierarchy.super_policy h t_universe ~user
    in
    let user =
      match hierarchy with None -> user | Some h -> Hierarchy.close_user h user
    in
    Vo.verify ?batch ~mvk ~binding:`Plain ~super_policy ~user ~query vo

  (* --- node access for the join algorithm --- *)

  let root t = t.root
  let node_box n = n.box
  let node_policy n = n.policy
  let node_children n = match n.content with Leaf _ -> [] | Children c -> c

  let node_entry_inaccessible drbg ~mvk t ~user node =
    let user = effective_user t ~user in
    let keep = keep_set t ~user in
    node_inaccessible_entry_job drbg ~mvk ~keep node ()

  let node_leaf_record n = match n.content with Leaf r -> Some r | Children _ -> None

  let node_leaf_app _t n =
    match n.content with Leaf _ -> Some n.signature | Children _ -> None

  let node_accessible t ~user n =
    let user = effective_user t ~user in
    match n.content with
    | Leaf r -> Expr.eval r.Record.policy user
    | Children _ -> Expr.eval n.policy user

  (* --- ADS serialization (the "outsource everything to the SP" step) --- *)

  module Wire = Zkqac_util.Wire

  let magic = "ZKQAC-AP2G-v1"

  let to_bytes t =
    let w = Wire.writer () in
    Wire.bytes w magic;
    Wire.u8 w (Keyspace.dims t.space);
    Wire.u8 w (Keyspace.depth t.space);
    let roles =
      List.filter
        (fun a -> not (Attr.equal a Attr.pseudo_role))
        (Universe.to_list t.universe)
    in
    Wire.u32 w (List.length roles);
    List.iter (Wire.bytes w) roles;
    (match t.hierarchy with
     | None -> Wire.u32 w 0
     | Some h ->
       let edges = Hierarchy.edges h in
       Wire.u32 w (List.length edges);
       List.iter
         (fun (c, p) ->
           Wire.bytes w c;
           Wire.bytes w p)
         edges);
    Wire.u32 w t.num_records;
    let rec put_node node =
      Wire.bytes w (Expr.to_string node.policy);
      Wire.bytes w (Abs.to_bytes node.signature);
      match node.content with
      | Leaf record ->
        Wire.u8 w 0;
        Wire.bytes w record.Record.value
      | Children children ->
        Wire.u8 w 1;
        List.iter put_node children
    in
    put_node t.root;
    Wire.contents w

  let decode ?limits data =
    Wire.decode ?limits data @@ fun r ->
    if not (String.equal (Wire.rbytes r) magic) then raise Wire.Malformed;
    let dims = Wire.ru8 r in
    let depth = Wire.ru8 r in
    let space = Keyspace.create ~dims ~depth in
    let n_roles = Wire.rcount r in
    let rec take k acc =
      if k = 0 then List.rev acc else take (k - 1) (Wire.rbytes r :: acc)
    in
    let roles = take n_roles [] in
    let universe = Universe.create roles in
    let n_edges = Wire.rcount r in
    let rec take_edges k acc =
      if k = 0 then List.rev acc
      else begin
        let c = Wire.rbytes r in
        let p = Wire.rbytes r in
        take_edges (k - 1) ((c, p) :: acc)
      end
    in
    let hierarchy =
      if n_edges = 0 then None else Some (Hierarchy.create (take_edges n_edges []))
    in
    let num_records = Wire.ru32 r in
    let sig_bytes = ref 0 and struct_bytes = ref 0 in
    let leaf_sigs = ref 0 and node_sigs = ref 0 in
    let rec get_node box =
      Wire.nested r @@ fun () ->
      let policy =
        let s = Wire.rbytes r in
        match Expr.of_string s with
        | p -> p
        | exception (Invalid_argument _ | Failure _) -> raise Wire.Malformed
      in
      let sig_data = Wire.rbytes r in
      let signature =
        match Abs.of_bytes sig_data with
        | Some s -> s
        | None -> raise Wire.Malformed
      in
      sig_bytes := !sig_bytes + String.length sig_data;
      struct_bytes :=
        !struct_bytes + String.length (Box.encode box)
        + String.length (Expr.to_string policy);
      match Wire.ru8 r with
      | 0 ->
        let value = Wire.rbytes r in
        if not (Keyspace.is_unit box) then raise Wire.Malformed;
        incr leaf_sigs;
        let record = Record.make ~key:(Keyspace.key_of_unit box) ~value ~policy in
        { box; policy; signature; content = Leaf record }
      | 1 ->
        incr node_sigs;
        let children = List.map get_node (Keyspace.children_boxes space box) in
        { box; policy; signature; content = Children children }
      | _ -> raise Wire.Malformed
    in
    let root = get_node (Keyspace.whole space) in
    {
      space;
      universe;
      hierarchy;
      root;
      num_records;
      stats =
        {
          leaf_signatures = !leaf_sigs;
          node_signatures = !node_sigs;
          sign_time = 0.0;
          structure_bytes = !struct_bytes;
          signature_bytes = !sig_bytes;
        };
    }

  let of_bytes data = Result.to_option (decode data)
end
