(** Equality-query authentication (Algorithm 1) over a flat signed-record
    ADS, and the paper's "Basic" range baseline (one equality proof per
    discrete key of the range — the strawman AP²G-tree is compared against
    in Figures 7–11).

    Every key of the keyspace carries exactly one signed record — real, or a
    pseudo record with policy Role_∅ — so an equality query always has one
    matching record and the two negative outcomes ("none exists" /
    "inaccessible to you") are indistinguishable. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)
  module Vo : module type of Vo.Make (P)
  module Ap2g : module type of Ap2g.Make (P)

  type t

  val build :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    sk:Abs.signing_key ->
    space:Keyspace.t ->
    universe:Zkqac_policy.Universe.t ->
    pseudo_seed:string ->
    Record.t list ->
    t
  (** Sign every key of the space (Algorithm 1's ADS generation). *)

  val of_ap2g : Ap2g.t -> t
  (** Reuse the leaf signatures of an AP²G-tree (they are the same ADS), so
      benches comparing the two approaches pay the signing cost once. *)

  val universe : t -> Zkqac_policy.Universe.t
  val space : t -> Keyspace.t

  type outcome =
    | Result of Record.t  (** accessible: the record itself *)
    | Denied
        (** inaccessible or non-existent — indistinguishable by design *)

  val query_vo :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t ->
    user:Zkqac_policy.Attr.Set.t ->
    int array ->
    Vo.entry
  (** SP-side response for one key. *)

  val verify_equality :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t_universe:Zkqac_policy.Universe.t ->
    user:Zkqac_policy.Attr.Set.t ->
    key:int array ->
    Vo.entry ->
    (outcome, Vo.error) result

  val range_vo :
    ?pmap:((unit -> Vo.entry) list -> Vo.entry list) ->
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t ->
    user:Zkqac_policy.Attr.Set.t ->
    Box.t ->
    Vo.t * Ap2g.query_stats
  (** The Basic baseline: one entry per key in the box. *)

  val verify_range :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t_universe:Zkqac_policy.Universe.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    Vo.t ->
    (Record.t list, Vo.error) result
end
