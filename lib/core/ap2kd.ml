module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Kd_split = Zkqac_policy.Kd_split

module T = Zkqac_telemetry.Telemetry
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Vo.Make (P)

  type node = {
    box : Box.t;
    policy : Expr.t;
    signature : Abs.signature;
    content : content;
  }

  and content =
    | Record_leaf of Record.t
    | Pseudo_region  (* an empty region: policy Role_∅, one signature *)
    | Children of node * node

  type build_stats = {
    leaf_signatures : int;
    node_signatures : int;
    pseudo_regions : int;
    sign_time : float;
    structure_bytes : int;
    signature_bytes : int;
  }

  type t = {
    space : Keyspace.t;
    universe : Universe.t;
    root : node;
    stats : build_stats;
  }

  (* Pick the split plane: dimension cycles with depth; position from
     Algorithm 7 over the records ordered along that dimension, falling back
     to the midpoint when the objective split is degenerate (all records on
     one side) or when the depth bound of Section 9.1 is exceeded. *)
  let choose_split ~strategy ~depth_bound box depth (records : Record.t list) =
    let dims = Box.dims box in
    let try_dim d =
      let dim = (depth + d) mod dims in
      let lo = box.Box.lo.(dim) and hi = box.Box.hi.(dim) in
      if hi - lo < 2 then None
      else begin
        let sorted =
          List.sort
            (fun (a : Record.t) (b : Record.t) ->
              compare a.Record.key.(dim) b.Record.key.(dim))
            records
        in
        let position =
          match strategy with
          | `Midpoint -> lo + ((hi - lo) / 2)
          | `Clause_objective ->
            if depth > depth_bound || List.length sorted < 2 then lo + ((hi - lo) / 2)
            else begin
              let policies =
                Array.of_list (List.map (fun (r : Record.t) -> r.Record.policy) sorted)
              in
              let x = Kd_split.split policies in
              let arr = Array.of_list sorted in
              let c = arr.(x).Record.key.(dim) in
              (* The plane must strictly separate box space; if the chosen
                 record sits at the region edge, fall back to midpoint. *)
              if c > lo && c < hi then c else lo + ((hi - lo) / 2)
            end
        in
        Some (dim, position)
      end
    in
    let rec first d = if d = dims then None else (match try_dim d with Some s -> Some s | None -> first (d + 1)) in
    first 0

  let build drbg ~mvk ~sk ~space ~universe ?(split = `Clause_objective) records =
    T.span "ads.build" @@ fun () ->
    List.iter
      (fun (r : Record.t) ->
        if not (Keyspace.valid_key space r.Record.key) then
          invalid_arg "Ap2kd.build: key outside space")
      records;
    let leaf_sigs = ref 0 and node_sigs = ref 0 and pseudo = ref 0 in
    let sign_time = ref 0.0 in
    let structure_bytes = ref 0 and signature_bytes = ref 0 in
    let timed_sign ~msg ~policy =
      let t0 = Unix.gettimeofday () in
      let s = Abs.sign drbg mvk sk ~msg ~policy in
      sign_time := !sign_time +. (Unix.gettimeofday () -. t0);
      signature_bytes := !signature_bytes + Abs.size s;
      s
    in
    let depth_bound = Keyspace.dims space * Keyspace.depth space in
    let pseudo_policy = Expr.Leaf Attr.pseudo_role in
    let rec build_node box depth (records : Record.t list) =
      structure_bytes := !structure_bytes + String.length (Box.encode box);
      match records with
      | [] ->
        incr pseudo;
        let signature = timed_sign ~msg:(Record.node_message box) ~policy:pseudo_policy in
        { box; policy = pseudo_policy; signature; content = Pseudo_region }
      | [ record ] ->
        incr leaf_sigs;
        let msg =
          Vo.leaf_message `Boxed ~region:box ~key:record.Record.key
            ~value_hash:(Record.value_hash record.Record.value)
        in
        let signature = timed_sign ~msg ~policy:record.Record.policy in
        structure_bytes :=
          !structure_bytes + String.length (Expr.to_string record.Record.policy);
        { box; policy = record.Record.policy; signature; content = Record_leaf record }
      | _ ->
        (match choose_split ~strategy:split ~depth_bound box depth records with
         | None ->
           (* Cannot split further: distinct keys in a unit box is impossible,
              so this is unreachable for valid input. *)
           invalid_arg "Ap2kd.build: duplicate keys"
         | Some (dim, position) ->
           let left_box =
             Box.make ~lo:box.Box.lo
               ~hi:(Array.mapi (fun i h -> if i = dim then position else h) box.Box.hi)
           in
           let right_box =
             Box.make
               ~lo:(Array.mapi (fun i l -> if i = dim then position else l) box.Box.lo)
               ~hi:box.Box.hi
           in
           let left_recs, right_recs =
             List.partition (fun (r : Record.t) -> r.Record.key.(dim) < position) records
           in
           let left = build_node left_box (depth + 1) left_recs in
           let right = build_node right_box (depth + 1) right_recs in
           let distinct =
             List.sort_uniq Expr.compare
               [ Expr.canonical left.policy; Expr.canonical right.policy ]
           in
           let policy = Expr.disj distinct in
           incr node_sigs;
           structure_bytes := !structure_bytes + String.length (Expr.to_string policy);
           let signature = timed_sign ~msg:(Record.node_message box) ~policy in
           { box; policy; signature; content = Children (left, right) })
    in
    let root = build_node (Keyspace.whole space) 0 records in
    {
      space;
      universe;
      root;
      stats =
        {
          leaf_signatures = !leaf_sigs;
          node_signatures = !node_sigs;
          pseudo_regions = !pseudo;
          sign_time = !sign_time;
          structure_bytes = !structure_bytes;
          signature_bytes = !signature_bytes;
        };
    }

  let stats t = t.stats
  let space t = t.space
  let universe t = t.universe

  type query_stats = { relax_calls : int; nodes_visited : int; sp_time : float }

  let relax_exn drbg ~mvk ~signature ~msg ~policy ~keep =
    match Abs.relax drbg mvk signature ~msg ~policy ~keep with
    | Some s -> s
    | None -> invalid_arg "Ap2kd: relaxation failed on an inaccessible node"

  let inaccessible_job drbg ~mvk ~keep node =
    let job_drbg =
      Zkqac_hashing.Drbg.create ~seed:(Zkqac_hashing.Drbg.generate drbg 32)
    in
    match node.content with
    | Record_leaf record ->
      let key = record.Record.key in
      let value_hash = Record.value_hash record.Record.value in
      let msg = Vo.leaf_message `Boxed ~region:node.box ~key ~value_hash in
      fun () ->
        let aps =
          relax_exn job_drbg ~mvk ~signature:node.signature ~msg ~policy:node.policy
            ~keep
        in
        Vo.Inaccessible_leaf { region = node.box; key; value_hash; aps }
    | Pseudo_region | Children _ ->
      fun () ->
        let aps =
          relax_exn job_drbg ~mvk ~signature:node.signature
            ~msg:(Record.node_message node.box) ~policy:node.policy ~keep
        in
        Vo.Inaccessible_node { region = node.box; aps }

  let range_vo ?(pmap = List.map (fun job -> job ())) drbg ~mvk t ~user query =
    Trace.with_span "sp.query" ~attrs:[ ("op", Trace.Str "ap2kd.range") ]
    @@ fun ctx ->
    let t0 = Unix.gettimeofday () in
    let keep = Expr.attrs (Universe.super_policy t.universe ~user) in
    let visited = ref 0 in
    let direct = ref [] and jobs = ref [] in
    let queue = Queue.create () in
    Queue.add t.root queue;
    while not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr visited;
      if Box.intersects query node.box then begin
        let fully = Box.contains_box query node.box in
        if not (Expr.eval node.policy user) then
          (* Inaccessible region: one APS regardless of partial overlap (its
             region is clipped by the verifier). *)
          jobs := inaccessible_job drbg ~mvk ~keep node :: !jobs
        else begin
          match node.content with
          | Children (l, r) ->
            Queue.add l queue;
            Queue.add r queue
          | Pseudo_region ->
            (* Policy is Role_∅: unreachable in the accessible branch. *)
            assert false
          | Record_leaf record ->
            if fully || Box.contains_point query record.Record.key then
              direct :=
                Vo.Accessible { region = node.box; record; app = node.signature }
                :: !direct
            else
              (* The leaf's region overlaps the query but its record lies
                 outside: still return it (accessible) as the region
                 witness; the verifier excludes it from results. *)
              direct :=
                Vo.Accessible { region = node.box; record; app = node.signature }
                :: !direct
        end
      end
    done;
    let relax_jobs = List.rev !jobs in
    let relaxed =
      Trace.with_span "sp.relax" ~parent:ctx (fun _ -> pmap relax_jobs)
    in
    let vo = List.rev_append !direct relaxed in
    Trace.set_attrs ctx
      [ ("nodes_visited", Trace.Int !visited);
        ("relax_calls", Trace.Int (List.length relax_jobs));
        ("vo_entries", Trace.Int (List.length vo)) ];
    ( vo,
      {
        relax_calls = List.length relax_jobs;
        nodes_visited = !visited;
        sp_time = Unix.gettimeofday () -. t0;
      } )

  let verify ?batch ~mvk ~t_universe ~user ~query vo =
    let super_policy = Universe.super_policy t_universe ~user in
    Vo.verify ~clip:true ?batch ~mvk ~binding:`Boxed ~super_policy ~user ~query vo
end
