module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Sha256 = Zkqac_hashing.Sha256
module Wire = Zkqac_util.Wire

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Vo.Make (P)
  module Ap2g = Ap2g.Make (P)

  module Key_map = Map.Make (struct
    type t = int list

    let compare = Stdlib.compare
  end)

  (* --- ZK treatment --- *)

  let merge_same_policy records =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (r : Record.t) ->
        let pk = Expr.to_string (Expr.canonical r.Record.policy) in
        let k = (Array.to_list r.Record.key, pk) in
        match Hashtbl.find_opt tbl k with
        | Some prev -> Hashtbl.replace tbl k { prev with Record.value = prev.Record.value ^ "\n" ^ r.Record.value }
        | None ->
          Hashtbl.add tbl k r;
          order := k :: !order)
      records;
    List.rev_map (Hashtbl.find tbl) !order

  let lift ~space records =
    let records = merge_same_policy records in
    let dims = Keyspace.dims space in
    let depth = Keyspace.depth space in
    let lifted = Keyspace.create ~dims:(dims + 1) ~depth in
    let side = Keyspace.side space in
    let counters = Hashtbl.create 64 in
    let lifted_records =
      List.map
        (fun (r : Record.t) ->
          let k = Array.to_list r.Record.key in
          let x = try Hashtbl.find counters k with Not_found -> 0 in
          if x >= side then
            invalid_arg "Duplicates.lift: too many duplicates for the virtual axis";
          Hashtbl.replace counters k (x + 1);
          { r with Record.key = Array.append r.Record.key [| x |] })
        records
    in
    (lifted, lifted_records)

  let lift_query ~lifted_space box =
    let side = Keyspace.side lifted_space in
    Box.make
      ~lo:(Array.append box.Box.lo [| 0 |])
      ~hi:(Array.append box.Box.hi [| side |])

  let strip_key key = Array.sub key 0 (Array.length key - 1)

  (* --- non-ZK treatment --- *)

  type entry =
    | Dup_accessible of {
        key : int array;
        dup_num : int;
        dup_id : int;
        value : string;
        policy : Expr.t;
        app : Abs.signature;
      }
    | Dup_inaccessible of {
        key : int array;
        dup_num : int;
        dup_id : int;
        value_hash : string;
        aps : Abs.signature;
      }
    | Cell_inaccessible of { region : Box.t; aps : Abs.signature }

  type vo = entry list

  let dup_message ~key ~value_hash ~dup_num ~dup_id =
    Record.message ~key ~value_hash
    ^ Sha256.digest_list [ "dup"; string_of_int dup_num; string_of_int dup_id ]

  type dup = { record : Record.t; dup_id : int; app : Abs.signature }

  type node = {
    box : Box.t;
    policy : Expr.t;
    agg_sig : Abs.signature;  (* over node_message box, for whole-cell/subtree APS *)
    content : content;
  }

  and content = Group of dup list | Children of node list

  type t = { space : Keyspace.t; universe : Universe.t; root : node }

  let build drbg ~mvk ~sk ~space ~universe ~pseudo_seed records =
    let groups =
      List.fold_left
        (fun acc (r : Record.t) ->
          if not (Keyspace.valid_key space r.Record.key) then
            invalid_arg "Duplicates.build: key outside space";
          let k = Array.to_list r.Record.key in
          Key_map.update k
            (function None -> Some [ r ] | Some l -> Some (r :: l))
            acc)
        Key_map.empty records
    in
    let rec build_node box =
      if Keyspace.is_unit box then begin
        let key = Keyspace.key_of_unit box in
        let group =
          match Key_map.find_opt (Array.to_list key) groups with
          | Some rs -> List.rev rs
          | None -> [ Record.pseudo ~seed:pseudo_seed ~key ]
        in
        let dup_num = List.length group in
        let dups =
          List.mapi
            (fun dup_id (r : Record.t) ->
              let msg =
                dup_message ~key ~value_hash:(Record.value_hash r.Record.value)
                  ~dup_num ~dup_id
              in
              { record = r; dup_id; app = Abs.sign drbg mvk sk ~msg ~policy:r.Record.policy })
            group
        in
        let distinct =
          List.sort_uniq Expr.compare
            (List.map (fun d -> Expr.canonical d.record.Record.policy) dups)
        in
        let policy = Expr.disj distinct in
        let agg_sig = Abs.sign drbg mvk sk ~msg:(Record.node_message box) ~policy in
        { box; policy; agg_sig; content = Group dups }
      end
      else begin
        let children = List.map build_node (Keyspace.children_boxes space box) in
        let distinct =
          List.sort_uniq Expr.compare (List.map (fun c -> Expr.canonical c.policy) children)
        in
        let policy = Expr.disj distinct in
        let agg_sig = Abs.sign drbg mvk sk ~msg:(Record.node_message box) ~policy in
        { box; policy; agg_sig; content = Children children }
      end
    in
    { space; universe; root = build_node (Keyspace.whole space) }

  let range_vo drbg ~mvk t ~user query =
    let t0 = Unix.gettimeofday () in
    let keep = Expr.attrs (Universe.super_policy t.universe ~user) in
    let visited = ref 0 and relaxed = ref 0 in
    let out = ref [] in
    let relax_exn ~signature ~msg ~policy =
      incr relaxed;
      match Abs.relax drbg mvk signature ~msg ~policy ~keep with
      | Some s -> s
      | None -> invalid_arg "Duplicates: relaxation failed"
    in
    let queue = Queue.create () in
    Queue.add t.root queue;
    while not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr visited;
      if Box.contains_box query node.box then begin
        if not (Expr.eval node.policy user) then begin
          let aps =
            relax_exn ~signature:node.agg_sig
              ~msg:(Record.node_message node.box) ~policy:node.policy
          in
          out := Cell_inaccessible { region = node.box; aps } :: !out
        end
        else begin
          match node.content with
          | Children children -> List.iter (fun c -> Queue.add c queue) children
          | Group dups ->
            let dup_num = List.length dups in
            List.iter
              (fun d ->
                let r = d.record in
                if Expr.eval r.Record.policy user then
                  out :=
                    Dup_accessible
                      {
                        key = r.Record.key;
                        dup_num;
                        dup_id = d.dup_id;
                        value = r.Record.value;
                        policy = r.Record.policy;
                        app = d.app;
                      }
                    :: !out
                else begin
                  let value_hash = Record.value_hash r.Record.value in
                  let msg =
                    dup_message ~key:r.Record.key ~value_hash ~dup_num
                      ~dup_id:d.dup_id
                  in
                  let aps = relax_exn ~signature:d.app ~msg ~policy:r.Record.policy in
                  out :=
                    Dup_inaccessible
                      { key = r.Record.key; dup_num; dup_id = d.dup_id; value_hash; aps }
                    :: !out
                end)
              dups
        end
      end
      else if Box.intersects query node.box then begin
        match node.content with
        | Children children -> List.iter (fun c -> Queue.add c queue) children
        | Group _ -> assert false
      end
    done;
    ( List.rev !out,
      {
        Ap2g.relax_calls = !relaxed;
        nodes_visited = !visited;
        sp_time = Unix.gettimeofday () -. t0;
      } )

  let verify ~mvk ~t_universe ~user ~query vo =
    let ( let* ) = Result.bind in
    let super_policy = Universe.super_policy t_universe ~user in
    (* Group per-dup entries by key. *)
    let by_key = Hashtbl.create 64 in
    let cells = ref [] in
    List.iter
      (fun e ->
        match e with
        | Dup_accessible { key; _ } | Dup_inaccessible { key; _ } ->
          let k = Array.to_list key in
          Hashtbl.replace by_key k (e :: (try Hashtbl.find by_key k with Not_found -> []))
        | Cell_inaccessible { region; aps } -> cells := (region, aps) :: !cells)
      vo;
    (* Completeness: dup-group cells + inaccessible regions tile the query. *)
    let group_regions =
      Hashtbl.fold (fun k _ acc -> Box.of_point (Array.of_list k) :: acc) by_key []
    in
    let* () =
      if Box.covers_exactly query (group_regions @ List.map fst !cells) then Ok ()
      else Error Vo.Completeness_gap
    in
    (* Inaccessible regions. *)
    let* () =
      List.fold_left
        (fun acc (region, aps) ->
          Result.bind acc (fun () ->
              if
                Abs.verify mvk ~msg:(Record.node_message region) ~policy:super_policy
                  aps
              then Ok ()
              else Error (Vo.Bad_aps_signature "duplicate cell APS")))
        (Ok ()) !cells
    in
    (* Per-key duplicate groups: consistent counts, complete ids, valid
       signatures. *)
    let check_group _k entries acc =
      Result.bind acc (fun results ->
          let dup_nums =
            List.sort_uniq compare
              (List.map
                 (function
                   | Dup_accessible { dup_num; _ } | Dup_inaccessible { dup_num; _ } ->
                     dup_num
                   | Cell_inaccessible _ -> assert false)
                 entries)
          in
          match dup_nums with
          | [ n ] when List.length entries = n ->
            let ids =
              List.sort compare
                (List.map
                   (function
                     | Dup_accessible { dup_id; _ } | Dup_inaccessible { dup_id; _ } ->
                       dup_id
                     | Cell_inaccessible _ -> assert false)
                   entries)
            in
            if ids <> List.init n Fun.id then
              Error (Vo.Invalid_shape "duplicate ids incomplete")
            else begin
              List.fold_left
                (fun acc e ->
                  Result.bind acc (fun results ->
                      match e with
                      | Dup_accessible { key; dup_num; dup_id; value; policy; app } ->
                        if not (Box.contains_point query key) then
                          Error (Vo.Record_outside_query key)
                        else if not (Expr.eval policy user) then
                          Error (Vo.Policy_not_satisfied key)
                        else begin
                          let msg =
                            dup_message ~key ~value_hash:(Record.value_hash value)
                              ~dup_num ~dup_id
                          in
                          if Abs.verify mvk ~msg ~policy app then
                            Ok (Record.make ~key ~value ~policy :: results)
                          else Error (Vo.Bad_abs_signature "duplicate APP")
                        end
                      | Dup_inaccessible { key; dup_num; dup_id; value_hash; aps } ->
                        let msg = dup_message ~key ~value_hash ~dup_num ~dup_id in
                        if Abs.verify mvk ~msg ~policy:super_policy aps then Ok results
                        else Error (Vo.Bad_aps_signature "duplicate APS")
                      | Cell_inaccessible _ -> assert false))
                (Ok results) entries
            end
          | _ -> Error (Vo.Invalid_shape "inconsistent duplicate counts"))
    in
    let* results = Hashtbl.fold check_group by_key (Ok []) in
    Ok results

  let size vo =
    let w = Wire.writer () in
    List.iter
      (fun e ->
        match e with
        | Dup_accessible { key; dup_num; dup_id; value; policy; app } ->
          Wire.u8 w 0;
          Wire.int_array w key;
          Wire.u32 w dup_num;
          Wire.u32 w dup_id;
          Wire.bytes w value;
          Wire.bytes w (Expr.to_string policy);
          Wire.bytes w (Abs.to_bytes app)
        | Dup_inaccessible { key; dup_num; dup_id; value_hash; aps } ->
          Wire.u8 w 1;
          Wire.int_array w key;
          Wire.u32 w dup_num;
          Wire.u32 w dup_id;
          Wire.bytes w value_hash;
          Wire.bytes w (Abs.to_bytes aps)
        | Cell_inaccessible { region; aps } ->
          Wire.u8 w 2;
          Wire.bytes w (Box.encode region);
          Wire.bytes w (Abs.to_bytes aps))
      vo;
    String.length (Wire.contents w)
end
