module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe

module T = Zkqac_telemetry.Telemetry
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Vo.Make (P)
  module Ap2g = Ap2g.Make (P)

  module Key_map = Map.Make (struct
    type t = int list

    let compare = Stdlib.compare
  end)

  type t = {
    space : Keyspace.t;
    universe : Universe.t;
    entries : (Record.t * Abs.signature) Key_map.t;
  }

  let build drbg ~mvk ~sk ~space ~universe ~pseudo_seed records =
    T.span "ads.build" @@ fun () ->
    let by_key =
      List.fold_left
        (fun acc (r : Record.t) ->
          if not (Keyspace.valid_key space r.Record.key) then
            invalid_arg "Equality.build: key outside space";
          let k = Array.to_list r.Record.key in
          if Key_map.mem k acc then invalid_arg "Equality.build: duplicate key";
          Key_map.add k r acc)
        Key_map.empty records
    in
    (* Enumerate every key of the space; non-existent ones become signed
       pseudo records. *)
    let dims = Keyspace.dims space in
    let side = Keyspace.side space in
    let entries = ref Key_map.empty in
    let key = Array.make dims 0 in
    let rec enumerate d =
      if d = dims then begin
        let k = Array.to_list key in
        let record =
          match Key_map.find_opt k by_key with
          | Some r -> r
          | None -> Record.pseudo ~seed:pseudo_seed ~key:(Array.copy key)
        in
        let signature =
          Abs.sign drbg mvk sk ~msg:(Record.message_of record)
            ~policy:record.Record.policy
        in
        entries := Key_map.add k (record, signature) !entries
      end
      else
        for v = 0 to side - 1 do
          key.(d) <- v;
          enumerate (d + 1)
        done
    in
    enumerate 0;
    { space; universe; entries = !entries }

  let of_ap2g tree =
    let entries = ref Key_map.empty in
    let rec walk node =
      match Ap2g.node_children node with
      | [] ->
        let record = Option.get (Ap2g.node_leaf_record node) in
        let signature = Option.get (Ap2g.node_leaf_app tree node) in
        entries :=
          Key_map.add (Array.to_list record.Record.key) (record, signature) !entries
      | children -> List.iter walk children
    in
    walk (Ap2g.root tree);
    { space = Ap2g.space tree; universe = Ap2g.universe tree; entries = !entries }

  let universe t = t.universe
  let space t = t.space

  type outcome = Result of Record.t | Denied

  let entry_for drbg ~mvk t ~keep ~user (record, signature) =
    let drbg =
      Zkqac_hashing.Drbg.create ~seed:(Zkqac_hashing.Drbg.generate drbg 32)
    in
    if Expr.eval record.Record.policy user then
      Vo.Accessible
        { region = Box.of_point record.Record.key; record; app = signature }
    else begin
      let key = record.Record.key in
      let value_hash = Record.value_hash record.Record.value in
      let aps =
        match
          Abs.relax drbg mvk signature
            ~msg:(Record.message ~key ~value_hash)
            ~policy:record.Record.policy ~keep
        with
        | Some s -> s
        | None -> invalid_arg "Equality: relaxation failed on inaccessible record"
      in
      ignore t;
      Vo.Inaccessible_leaf { region = Box.of_point key; key; value_hash; aps }
    end

  let query_vo drbg ~mvk t ~user key =
    if not (Keyspace.valid_key t.space key) then
      invalid_arg "Equality.query_vo: key outside space";
    Trace.with_span "sp.query" ~attrs:[ ("op", Trace.Str "equality.point") ]
    @@ fun _ ->
    let keep = Expr.attrs (Universe.super_policy t.universe ~user) in
    let record, signature = Key_map.find (Array.to_list key) t.entries in
    entry_for drbg ~mvk t ~keep ~user (record, signature)

  let verify_equality ?batch ~mvk ~t_universe ~user ~key entry =
    let super_policy = Universe.super_policy t_universe ~user in
    let query = Box.of_point key in
    match Vo.verify ?batch ~mvk ~binding:`Plain ~super_policy ~user ~query [ entry ] with
    | Error e -> Error e
    | Ok [] -> Ok Denied
    | Ok [ r ] -> Ok (Result r)
    | Ok _ -> Error (Vo.Invalid_shape "equality VO returned more than one record")

  let range_vo ?(pmap = List.map (fun job -> job ())) drbg ~mvk t ~user query =
    Trace.with_span "sp.query" ~attrs:[ ("op", Trace.Str "equality.range") ]
    @@ fun ctx ->
    let t0 = Unix.gettimeofday () in
    let keep = Expr.attrs (Universe.super_policy t.universe ~user) in
    let jobs = ref [] in
    let count = ref 0 in
    Key_map.iter
      (fun klist entry ->
        let key = Array.of_list klist in
        if Box.contains_point query key then begin
          incr count;
          (* Fork the DRBG per job *now* (sequentially) so the thunk is safe
             to run on any domain. *)
          let job_drbg =
            Zkqac_hashing.Drbg.create ~seed:(Zkqac_hashing.Drbg.generate drbg 32)
          in
          jobs := (fun () -> entry_for job_drbg ~mvk t ~keep ~user entry) :: !jobs
        end)
      t.entries;
    let relax_calls =
      List.length
        (List.filter
           (fun (r, _) -> not (Expr.eval r.Record.policy user))
           (List.filter_map
              (fun (k, e) ->
                if Box.contains_point query (Array.of_list k) then Some e else None)
              (Key_map.bindings t.entries)))
    in
    let vo =
      Trace.with_span "sp.relax" ~parent:ctx (fun _ -> pmap (List.rev !jobs))
    in
    Trace.set_attrs ctx
      [ ("nodes_visited", Trace.Int !count);
        ("relax_calls", Trace.Int relax_calls);
        ("vo_entries", Trace.Int (List.length vo)) ];
    ( vo,
      {
        Ap2g.relax_calls;
        nodes_visited = !count;
        sp_time = Unix.gettimeofday () -. t0;
      } )

  let verify_range ?batch ~mvk ~t_universe ~user ~query vo =
    let super_policy = Universe.super_policy t_universe ~user in
    Vo.verify ?batch ~mvk ~binding:`Plain ~super_policy ~user ~query vo
end
