module Expr = Zkqac_policy.Expr
module Wire = Zkqac_util.Wire
module Attr = Zkqac_policy.Attr
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)

  type entry =
    | Accessible of { region : Box.t; record : Record.t; app : Abs.signature }
    | Inaccessible_leaf of {
        region : Box.t;
        key : int array;
        value_hash : string;
        aps : Abs.signature;
      }
    | Inaccessible_node of { region : Box.t; aps : Abs.signature }

  type t = entry list

  let entry_region = function
    | Accessible { region; _ } | Inaccessible_leaf { region; _ }
    | Inaccessible_node { region; _ } ->
      region

  type binding = [ `Plain | `Boxed ]

  (* Re-exported so [Vo.Completeness_gap] etc. pattern-match and unify with
     the shared taxonomy used across every verifier and the CLI. *)
  type error = Zkqac_util.Verify_error.t =
    | Completeness_gap
    | Bad_abs_signature of string
    | Bad_aps_signature of string
    | Bad_aps_policy of string
    | Record_outside_query of int array
    | Policy_not_satisfied of int array
    | Malformed of { offset : int }
    | Limit_exceeded of { what : string; limit : int }
    | Digest_mismatch of string
    | Envelope_open_failed of string
    | Query_mismatch
    | Invalid_shape of string

  let error_to_string = Zkqac_util.Verify_error.to_string

  let leaf_message binding ~region ~key ~value_hash =
    let base = Record.message ~key ~value_hash in
    match binding with
    | `Plain -> base
    | `Boxed -> Record.node_message region ^ base

  let node_aps_message ~region = Record.node_message region

  let rec verify ?(clip = false) ?batch ~mvk ~binding ~super_policy ~user ~query vo =
    Trace.with_span "client.verify"
      ~attrs:[ ("vo_entries", Trace.Int (List.length vo)) ]
    @@ fun vctx ->
    let ( let* ) = Result.bind in
    (* Completeness: the regions tile the query box exactly (clipped to the
       query first in kd-tree mode, where leaf regions are data-dependent and
       may spill outside). *)
    let regions = List.map entry_region vo in
    let regions =
      if clip then List.filter_map (Box.intersect query) regions else regions
    in
    let fail e =
      Trace.set_attr vctx "verify_error"
        (Trace.Str (Zkqac_util.Verify_error.code e));
      Error e
    in
    let* () =
      if Box.covers_exactly query regions then Ok () else fail Completeness_gap
    in
    (* Soundness: each entry's signature. *)
    let check_entry entry =
      match entry with
      | Accessible { region; record; app } ->
        if binding = `Plain && not (Box.equal region (Box.of_point record.Record.key))
        then fail (Bad_abs_signature "accessible region is not the record's unit cell")
        else if not (Box.contains_point region record.Record.key) then
          fail (Bad_abs_signature "accessible key outside its region")
        else if (not clip) && not (Box.contains_point query record.Record.key) then
          fail (Record_outside_query record.Record.key)
        else if not (Expr.eval record.Record.policy user) then
          fail (Policy_not_satisfied record.Record.key)
        else if batch <> None then Ok () (* checked below in one batch *)
        else begin
          let msg =
            leaf_message binding ~region ~key:record.Record.key
              ~value_hash:(Record.value_hash record.Record.value)
          in
          match Abs.verify_result mvk ~msg ~policy:record.Record.policy app with
          | Ok () -> Ok ()
          | Error e -> fail e
        end
      | Inaccessible_leaf { region; key; value_hash; aps } ->
        if binding = `Plain && not (Box.equal region (Box.of_point key)) then
          fail (Bad_aps_policy "inaccessible leaf region is not the key's unit cell")
        else if batch <> None then Ok () (* checked below in one batch *)
        else begin
          let msg = leaf_message binding ~region ~key ~value_hash in
          match Abs.verify_result mvk ~msg ~policy:super_policy aps with
          | Ok () -> Ok ()
          | Error e -> fail (Zkqac_util.Verify_error.as_aps e)
        end
      | Inaccessible_node { region; aps } ->
        if batch <> None then Ok ()
        else begin
          match
            Abs.verify_result mvk ~msg:(node_aps_message ~region)
              ~policy:super_policy aps
          with
          | Ok () -> Ok ()
          | Error e -> fail (Zkqac_util.Verify_error.as_aps e)
        end
    in
    let* () =
      List.fold_left
        (fun acc entry -> Result.bind acc (fun () -> check_entry entry))
        (Ok ()) vo
    in
    let* () =
      match batch with
      | None -> Ok ()
      | Some drbg ->
        let aps_entries =
          List.filter_map
            (function
              | Inaccessible_leaf { region; key; value_hash; aps } ->
                Some (leaf_message binding ~region ~key ~value_hash, aps)
              | Inaccessible_node { region; aps } ->
                Some (node_aps_message ~region, aps)
              | Accessible _ -> None)
            vo
        in
        (* Accessible APP signatures batch too, grouped by record policy:
           [Abs.verify_batch] needs one shared span program per batch. *)
        let app_groups :
            (string, Expr.t * (string * Abs.signature) list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        List.iter
          (function
            | Accessible { region; record; app } ->
              let msg =
                leaf_message binding ~region ~key:record.Record.key
                  ~value_hash:(Record.value_hash record.Record.value)
              in
              let key = Expr.to_string record.Record.policy in
              (match Hashtbl.find_opt app_groups key with
               | Some (_, l) -> l := (msg, app) :: !l
               | None ->
                 Hashtbl.add app_groups key (record.Record.policy, ref [ (msg, app) ]))
            | Inaccessible_leaf _ | Inaccessible_node _ -> ())
          vo;
        let batches_ok =
          Abs.verify_batch drbg mvk ~policy:super_policy aps_entries
          && Hashtbl.fold
               (fun _ (policy, sigs) acc ->
                 acc && Abs.verify_batch drbg mvk ~policy (List.rev !sigs))
               app_groups true
        in
        if batches_ok then Ok ()
        else begin
          (* A batch rejected: fall back to one-by-one verification to
             locate the culprit, so callers get the same precise typed
             error (and exit code) as the unbatched path. The blanket
             error below is only reachable if the sequential pass accepts
             what the batch rejected — a ~1/order coincidence. *)
          Zkqac_telemetry.Metrics.batch_fallback ();
          Zkqac_telemetry.Flight.record ~cat:"verdict" ~detail:"batch-rejected"
            "vo.batch_fallback";
          match verify ~clip ~mvk ~binding ~super_policy ~user ~query vo with
          | Error e -> fail e
          | Ok _ -> fail (Bad_aps_signature "batched APS verification")
        end
    in
    let records =
      List.filter_map
        (function
          | Accessible { record; _ }
            when Box.contains_point query record.Record.key ->
            Some record
          | Accessible _ | Inaccessible_leaf _ | Inaccessible_node _ -> None)
        vo
    in
    Trace.set_attr vctx "result_rows" (Trace.Int (List.length records));
    Ok records

  (* --- codec --- *)

  let put_box w box =
    Wire.int_array w box.Box.lo;
    Wire.int_array w box.Box.hi

  let get_box r =
    let lo = Wire.rint_array r in
    let hi = Wire.rint_array r in
    Box.make ~lo ~hi

  (* Untrusted input: any parse failure (including e.g. int_of_string
     overflow inside the policy parser) is a malformed VO, never an
     escaping exception. *)
  let policy_of_wire r =
    let s = Wire.rbytes r in
    match Expr.of_string s with
    | policy -> policy
    | exception (Invalid_argument _ | Failure _) -> raise Wire.Malformed

  let put_entry w = function
    | Accessible { region; record; app } ->
      Wire.u8 w 0;
      put_box w region;
      Wire.int_array w record.Record.key;
      Wire.bytes w record.Record.value;
      Wire.bytes w (Expr.to_string record.Record.policy);
      Wire.bytes w (Abs.to_bytes app)
    | Inaccessible_leaf { region; key; value_hash; aps } ->
      Wire.u8 w 1;
      put_box w region;
      Wire.int_array w key;
      Wire.bytes w value_hash;
      Wire.bytes w (Abs.to_bytes aps)
    | Inaccessible_node { region; aps } ->
      Wire.u8 w 2;
      put_box w region;
      Wire.bytes w (Abs.to_bytes aps)

  let get_entry r =
    match Wire.ru8 r with
    | 0 ->
      let region = get_box r in
      let key = Wire.rint_array r in
      let value = Wire.rbytes r in
      let policy = policy_of_wire r in
      let app =
        match Abs.of_bytes (Wire.rbytes r) with
        | Some s -> s
        | None -> raise Wire.Malformed
      in
      Accessible { region; record = Record.make ~key ~value ~policy; app }
    | 1 ->
      let region = get_box r in
      let key = Wire.rint_array r in
      let value_hash = Wire.rbytes r in
      let aps =
        match Abs.of_bytes (Wire.rbytes r) with
        | Some s -> s
        | None -> raise Wire.Malformed
      in
      Inaccessible_leaf { region; key; value_hash; aps }
    | 2 ->
      let region = get_box r in
      let aps =
        match Abs.of_bytes (Wire.rbytes r) with
        | Some s -> s
        | None -> raise Wire.Malformed
      in
      Inaccessible_node { region; aps }
    | _ -> raise Wire.Malformed

  let to_bytes vo =
    Trace.with_span "vo.encode" @@ fun ctx ->
    let w = Wire.writer () in
    Wire.u32 w (List.length vo);
    List.iter (put_entry w) vo;
    let bytes = Wire.contents w in
    Trace.set_attr ctx "vo_bytes" (Trace.Int (String.length bytes));
    bytes

  let decode ?limits data =
    Trace.with_span "vo.decode"
      ~attrs:[ ("vo_bytes", Trace.Int (String.length data)) ]
    @@ fun _ ->
    Wire.decode ?limits data @@ fun r ->
    let n = Wire.rcount r in
    let rec go k acc =
      if k = 0 then List.rev acc else go (k - 1) (get_entry r :: acc)
    in
    go n []

  let of_bytes data = Result.to_option (decode data)

  let size vo = String.length (to_bytes vo)
end
