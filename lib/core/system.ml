module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy
module Drbg = Zkqac_hashing.Drbg
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Cpabe = Zkqac_cpabe.Cpabe.Make (P)
  module Envelope = Zkqac_cpabe.Envelope.Make (P)
  module Ap2g = Ap2g.Make (P)
  module Vo = Vo.Make (P)

  type owner = {
    drbg : Drbg.t;
    abs_msk : Abs.msk;
    abs_mvk : Abs.mvk;
    cpabe_mk : Cpabe.mk;
    cpabe_pp : Cpabe.pp;
    universe : Universe.t;
    hierarchy : Hierarchy.t option;
  }

  type server = {
    sp_drbg : Drbg.t;
    tree : Ap2g.t;
    mvk : Abs.mvk;
    pp : Cpabe.pp;
  }

  type user = {
    roles : Attr.Set.t;
    user_mvk : Abs.mvk;
    user_pp : Cpabe.pp;
    cpabe_sk : Cpabe.secret_key;
    user_universe : Universe.t;
    user_hierarchy : Hierarchy.t option;
  }

  type plain_record = { key : int array; content : string; policy : Expr.t }

  let setup ~seed ~space ~roles ?hierarchy plain_records =
    Zkqac_telemetry.Telemetry.span "do.setup" @@ fun () ->
    let drbg = Drbg.create ~seed:("zkqac-system:" ^ seed) in
    let abs_msk, abs_mvk = Abs.setup drbg in
    let cpabe_mk, cpabe_pp = Cpabe.setup drbg in
    let universe = Universe.create roles in
    let sk = Abs.keygen drbg abs_msk (Universe.attrs universe) in
    (* Content confidentiality: encrypt each value with CP-ABE under the
       record's own policy before it ever reaches the SP. *)
    let records =
      List.map
        (fun { key; content; policy } ->
          let sealed = Envelope.seal drbg cpabe_pp ~policy content in
          Record.make ~key ~value:(Envelope.to_bytes sealed) ~policy)
        plain_records
    in
    let tree =
      Ap2g.build drbg ~mvk:abs_mvk ~sk ~space ~universe ?hierarchy
        ~pseudo_seed:(seed ^ ":pseudo") records
    in
    let owner = { drbg; abs_msk; abs_mvk; cpabe_mk; cpabe_pp; universe; hierarchy } in
    let server =
      {
        sp_drbg = Drbg.create ~seed:("zkqac-sp:" ^ seed);
        tree;
        mvk = abs_mvk;
        pp = cpabe_pp;
      }
    in
    (owner, server)

  let register_user owner roles =
    Universe.validate_user owner.universe roles;
    let roles_closed =
      match owner.hierarchy with
      | None -> roles
      | Some h -> Hierarchy.close_user h roles
    in
    {
      roles = roles_closed;
      user_mvk = owner.abs_mvk;
      user_pp = owner.cpabe_pp;
      cpabe_sk = Cpabe.keygen owner.drbg owner.cpabe_mk owner.cpabe_pp roles_closed;
      user_universe = owner.universe;
      user_hierarchy = owner.hierarchy;
    }

  type response = { sealed : Envelope.sealed; query : Box.t }

  let range_query ?pmap server ~claimed_roles query =
    Trace.with_span "system.range_query" ~parent:Trace.none @@ fun ctx ->
    let vo, _stats =
      Ap2g.range_vo ?pmap server.sp_drbg ~mvk:server.mvk server.tree
        ~user:claimed_roles query
    in
    let payload = Vo.to_bytes vo in
    (* Seal under the AND of the claimed roles: only a user actually holding
       them can open the response. *)
    let policy = Expr.of_attrs_and (Attr.Set.elements claimed_roles) in
    let sealed = Envelope.seal server.sp_drbg server.pp ~policy payload in
    Trace.set_attrs ctx
      [ ("vo_entries", Trace.Int (List.length vo));
        ("vo_bytes", Trace.Int (String.length payload)) ];
    { sealed; query }

  let response_size r = Envelope.size r.sealed

  type verified = {
    results : (int array * string) list;
    vo_entries : int;
    vo_size : int;
  }

  let open_and_verify_v ?(batch = true) user ~query response =
    Trace.with_span "system.open_and_verify" ~parent:Trace.none @@ fun ctx ->
    let module Tel = Zkqac_telemetry.Telemetry in
    let module Flight = Zkqac_telemetry.Flight in
    let module Metrics = Zkqac_telemetry.Metrics in
    let module Json = Zkqac_telemetry.Json in
    let module Audit = Zkqac_audit.Audit in
    let t_start = Tel.now_ns () in
    let open_ms = ref 0.0 and decode_ms = ref 0.0 and verify_ms = ref 0.0 in
    let timed cell f =
      let t0 = Tel.now_ns () in
      let r = f () in
      cell := Int64.to_float (Int64.sub (Tel.now_ns ()) t0) /. 1e6;
      r
    in
    let fallbacks0 = Metrics.batch_fallbacks () in
    (* Every decision — acceptance or typed rejection — leaves a verdict in
       the flight recorder and, when a sink is enabled, one hash-chained
       audit entry carrying the evidence an offline auditor needs: what was
       verified, under which batch path, and how long each stage took. *)
    let conclude ~outcome ~vo_digest ~vo_bytes ~vo_entries ~rows =
      let total_ms = Int64.to_float (Int64.sub (Tel.now_ns ()) t_start) /. 1e6 in
      Flight.record ~cat:"verdict" ~detail:outcome ~v:rows "system.open_and_verify";
      if Audit.enabled () then begin
        let path =
          if not batch then "sequential"
          else if Metrics.batch_fallbacks () > fallbacks0 then "batch-fallback"
          else "batch"
        in
        Audit.record ~kind:"verify"
          (Json.Obj
             [ ("query", Json.Str (Box.to_string query));
               ("vo_digest", Json.Str vo_digest);
               ("vo_bytes", Json.Int vo_bytes);
               ("vo_entries", Json.Int vo_entries);
               ("path", Json.Str path);
               ("outcome", Json.Str outcome);
               ("rows", Json.Int rows);
               ( "stages_ms",
                 Json.Obj
                   [ ("envelope_open", Json.Float !open_ms);
                     ("vo_decode", Json.Float !decode_ms);
                     ("vo_verify", Json.Float !verify_ms);
                     ("total", Json.Float total_ms) ] ) ])
      end
    in
    let fail ?(vo_digest = "") ?(vo_bytes = 0) ?(vo_entries = 0) e =
      let code = Zkqac_util.Verify_error.code e in
      Trace.set_attr ctx "verify_error" (Trace.Str code);
      Metrics.rejection code;
      conclude ~outcome:code ~vo_digest ~vo_bytes ~vo_entries ~rows:0;
      Flight.trip ~reason:("verify-error:" ^ code);
      Error e
    in
    if not (Box.equal query response.query) then
      fail Zkqac_util.Verify_error.Query_mismatch
    else begin
      match
        timed open_ms (fun () ->
            Envelope.open_result user.user_pp user.cpabe_sk response.sealed)
      with
      | Error e -> fail e
      | Ok payload ->
        let vo_digest = Zkqac_hashing.Sha256.hex payload in
        let vo_bytes = String.length payload in
        (match timed decode_ms (fun () -> Vo.decode payload) with
         | Error e -> fail ~vo_digest ~vo_bytes e
         | Ok vo ->
           let vo_entries = List.length vo in
           (* Batch weights may be derived deterministically from the
              payload: the server commits to the VO before the weights
              exist, which is the soundness requirement of small-exponent
              batching. *)
           let batch_drbg =
             if batch then
               Some (Drbg.create ~seed:("zkqac-system-batch:" ^ payload))
             else None
           in
           (match
              timed verify_ms (fun () ->
                  Ap2g.verify ?batch:batch_drbg ~mvk:user.user_mvk
                    ~t_universe:user.user_universe ?hierarchy:user.user_hierarchy
                    ~user:user.roles ~query vo)
            with
            | Error e -> fail ~vo_digest ~vo_bytes ~vo_entries e
            | Ok records ->
              let results =
                List.map
                  (fun (r : Record.t) ->
                    match Envelope.of_bytes r.Record.value with
                    | None -> (r.Record.key, "<malformed content>")
                    | Some sealed ->
                      (match Envelope.open_ user.user_pp user.cpabe_sk sealed with
                       | Some content -> (r.Record.key, content)
                       | None -> (r.Record.key, "<undecryptable content>")))
                  records
              in
              Trace.set_attr ctx "result_rows" (Trace.Int (List.length results));
              conclude ~outcome:"ok" ~vo_digest ~vo_bytes ~vo_entries
                ~rows:(List.length results);
              Ok { results; vo_entries; vo_size = vo_bytes }))
    end

  let open_and_verify ?batch user ~query response =
    Result.map_error Zkqac_util.Verify_error.to_string
      (open_and_verify_v ?batch user ~query response)

  let user_roles u = u.roles
  let universe o = o.universe
end
