module Sha256 = Zkqac_hashing.Sha256
module Wire = Zkqac_util.Wire

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Ap2g = Ap2g.Make (P)
  module Abs = Zkqac_abs.Abs.Make (P)

  let tree_to_bytes = Ap2g.to_bytes
  let tree_of_bytes = Ap2g.of_bytes

  let file_magic = "ZKQAC-ADS-FILE-v1"

  let save ~path ~mvk tree =
    let w = Wire.writer () in
    Wire.bytes w file_magic;
    Wire.bytes w (Abs.mvk_to_bytes mvk);
    let body = Ap2g.to_bytes tree in
    Wire.bytes w (Sha256.digest body);
    Wire.bytes w body;
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Wire.contents w))

  (* Decode a checkpoint's bytes with every failure mode mapped to a typed
     [Verify_error]: a truncated or bit-flipped file on disk is exactly the
     hostile-input case the wire layer guards against, and a raw exception
     escaping here would crash a server that restarts from checkpoints. The
     final catch-all covers parsers embedded in [mvk_of_bytes]/[Ap2g.decode]
     whose exceptions are not already translated. *)
  let decode_typed data : (_, Zkqac_util.Verify_error.t) result =
    let module E = Zkqac_util.Verify_error in
    match
      let r = Wire.reader data in
      if not (String.equal (Wire.rbytes r) file_magic) then
        Error (E.Invalid_shape "not a zkqac ADS file")
      else begin
        match Abs.mvk_of_bytes (Wire.rbytes r) with
        | None -> Error (E.Malformed { offset = Wire.pos r })
        | Some mvk ->
          let checksum = Wire.rbytes r in
          let body = Wire.rbytes r in
          if not (Wire.at_end r) then Error (E.Malformed { offset = Wire.pos r })
          else if not (String.equal checksum (Sha256.digest body)) then
            Error (E.Digest_mismatch "ADS body checksum")
          else
            Result.map (fun tree -> (mvk, tree)) (Ap2g.decode body)
      end
    with
    | result -> result
    | exception (Wire.Malformed | End_of_file) -> Error (E.Malformed { offset = -1 })
    | exception Wire.Limit { what; limit } -> Error (E.Limit_exceeded { what; limit })
    | exception _ -> Error (E.Malformed { offset = -1 })

  let load_typed ~path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | data -> Result.map_error (fun e -> `Bad e) (decode_typed data)
    | exception Sys_error e -> Error (`Io e)
    | exception End_of_file -> Error (`Io "unexpected end of file")

  let load ~path =
    match load_typed ~path with
    | Ok v -> Ok v
    | Error (`Io msg) -> Error (Printf.sprintf "ADS checkpoint %s: %s" path msg)
    | Error (`Bad e) ->
      Error
        (Printf.sprintf "ADS checkpoint %s: %s [%s]" path
           (Zkqac_util.Verify_error.to_string e)
           (Zkqac_util.Verify_error.code e))
end
