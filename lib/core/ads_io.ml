module Sha256 = Zkqac_hashing.Sha256
module Wire = Zkqac_util.Wire

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Ap2g = Ap2g.Make (P)
  module Abs = Zkqac_abs.Abs.Make (P)

  let tree_to_bytes = Ap2g.to_bytes
  let tree_of_bytes = Ap2g.of_bytes

  let file_magic = "ZKQAC-ADS-FILE-v1"

  let save ~path ~mvk tree =
    let w = Wire.writer () in
    Wire.bytes w file_magic;
    Wire.bytes w (Abs.mvk_to_bytes mvk);
    let body = Ap2g.to_bytes tree in
    Wire.bytes w (Sha256.digest body);
    Wire.bytes w body;
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Wire.contents w))

  let load ~path =
    match
      let ic = open_in_bin path in
      let data =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let r = Wire.reader data in
      if not (String.equal (Wire.rbytes r) file_magic) then Error "not a zkqac ADS file"
      else begin
        match Abs.mvk_of_bytes (Wire.rbytes r) with
        | None -> Error "corrupt verification key"
        | Some mvk ->
          let checksum = Wire.rbytes r in
          let body = Wire.rbytes r in
          if not (Wire.at_end r) then Error "trailing bytes in ADS file"
          else if not (String.equal checksum (Sha256.digest body)) then
            Error "checksum mismatch"
          else begin
            match Ap2g.decode body with
            | Error e ->
              Error
                ("corrupt ADS body: " ^ Zkqac_util.Verify_error.to_string e)
            | Ok tree -> Ok (mvk, tree)
          end
      end
    with
    | result -> result
    | exception Sys_error e -> Error e
    | exception (Wire.Malformed | End_of_file) -> Error "truncated ADS file"
    | exception Wire.Limit { what; limit } ->
      Error (Printf.sprintf "ADS file exceeds reader limit (%s > %d)" what limit)
end
