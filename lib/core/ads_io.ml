module Sha256 = Zkqac_hashing.Sha256
module Wire = Zkqac_util.Wire
module Durable = Zkqac_durable.Durable
module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics

(* The newest epoch this process has saved or recovered, exported as the
   [zkqac_checkpoint_epoch] gauge. -1 means "no checkpoint touched yet" and
   suppresses the sample so expositions from checkpoint-free runs are
   unchanged. *)
let epoch_gauge = Atomic.make (-1)
let note_epoch e = if e > Atomic.get epoch_gauge then Atomic.set epoch_gauge e
let reset_epoch_gauge () = Atomic.set epoch_gauge (-1)

let () =
  Metrics.register_gauge ~name:"zkqac_checkpoint_epoch"
    ~help:"Epoch of the newest ADS checkpoint saved or recovered by this process."
    (fun () ->
      match Atomic.get epoch_gauge with
      | e when e >= 0 -> [ ([], float_of_int e) ]
      | _ -> [])

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Ap2g = Ap2g.Make (P)
  module Abs = Zkqac_abs.Abs.Make (P)

  let tree_to_bytes = Ap2g.to_bytes
  let tree_of_bytes = Ap2g.of_bytes

  let file_magic_v1 = "ZKQAC-ADS-FILE-v1"
  let file_magic = "ZKQAC-ADS-FILE-v2"

  (* The commit footer is what makes a checkpoint self-certifying against
     torn writes: a digest of every preceding byte followed by a marker that
     is the last thing to reach the disk. A file missing or failing the
     footer was not completely written; one passing it is bit-for-bit the
     file [save] produced. *)
  let commit_magic = "ZKQAC-ADS-COMMIT-v2"

  let encode ~mvk ~epoch tree =
    let w = Wire.writer () in
    Wire.bytes w file_magic;
    Wire.u32 w epoch;
    Wire.bytes w (Abs.mvk_to_bytes mvk);
    let body = Ap2g.to_bytes tree in
    Wire.bytes w (Sha256.digest body);
    Wire.bytes w body;
    let payload = Wire.contents w in
    let f = Wire.writer () in
    Wire.bytes f (Sha256.digest payload);
    Wire.bytes f commit_magic;
    payload ^ Wire.contents f

  let save ?(epoch = 0) ~path ~mvk tree =
    match Durable.replace ~path (encode ~mvk ~epoch tree) with
    | Ok () -> note_epoch epoch
    | Error e -> raise (Sys_error (Durable.error_to_string e))

  (* Decode a checkpoint's bytes with every failure mode mapped to a typed
     [Verify_error]: a truncated or bit-flipped file on disk is exactly the
     hostile-input case the wire layer guards against, and a raw exception
     escaping here would crash a server that restarts from checkpoints. The
     final catch-all covers parsers embedded in [mvk_of_bytes]/[Ap2g.decode]
     whose exceptions are not already translated. *)
  let decode_typed data : (_, Zkqac_util.Verify_error.t) result =
    let module E = Zkqac_util.Verify_error in
    match
      let r = Wire.reader data in
      let magic = Wire.rbytes r in
      if String.equal magic file_magic_v1 then begin
        (* v1 files predate epochs and the commit footer; treat as epoch 0. *)
        match Abs.mvk_of_bytes (Wire.rbytes r) with
        | None -> Error (E.Malformed { offset = Wire.pos r })
        | Some mvk ->
          let checksum = Wire.rbytes r in
          let body = Wire.rbytes r in
          if not (Wire.at_end r) then Error (E.Malformed { offset = Wire.pos r })
          else if not (String.equal checksum (Sha256.digest body)) then
            Error (E.Digest_mismatch "ADS body checksum")
          else Result.map (fun tree -> (mvk, tree, 0)) (Ap2g.decode body)
      end
      else if String.equal magic file_magic then begin
        let epoch = Wire.ru32 r in
        match Abs.mvk_of_bytes (Wire.rbytes r) with
        | None -> Error (E.Malformed { offset = Wire.pos r })
        | Some mvk ->
          let checksum = Wire.rbytes r in
          let body = Wire.rbytes r in
          let payload_end = Wire.pos r in
          let footer = Wire.rbytes r in
          let marker = Wire.rbytes r in
          if not (Wire.at_end r) then Error (E.Malformed { offset = Wire.pos r })
          else if not (String.equal marker commit_magic) then
            Error (E.Invalid_shape "checkpoint commit marker missing (torn write)")
          else if not (String.equal footer (Sha256.digest (String.sub data 0 payload_end)))
          then Error (E.Digest_mismatch "checkpoint payload digest")
          else if not (String.equal checksum (Sha256.digest body)) then
            Error (E.Digest_mismatch "ADS body checksum")
          else Result.map (fun tree -> (mvk, tree, epoch)) (Ap2g.decode body)
      end
      else Error (E.Invalid_shape "not a zkqac ADS file")
    with
    | result -> result
    | exception (Wire.Malformed | End_of_file) -> Error (E.Malformed { offset = -1 })
    | exception Wire.Limit { what; limit } -> Error (E.Limit_exceeded { what; limit })
    | exception _ -> Error (E.Malformed { offset = -1 })

  let load_typed ~path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | data -> Result.map_error (fun e -> `Bad e) (decode_typed data)
    | exception Sys_error e -> Error (`Io e)
    | exception End_of_file -> Error (`Io "unexpected end of file")

  let load ~path =
    match load_typed ~path with
    | Ok (mvk, tree, _epoch) -> Ok (mvk, tree)
    | Error (`Io msg) -> Error (Printf.sprintf "ADS checkpoint %s: %s" path msg)
    | Error (`Bad e) ->
      Error
        (Printf.sprintf "ADS checkpoint %s: %s [%s]" path
           (Zkqac_util.Verify_error.to_string e)
           (Zkqac_util.Verify_error.code e))

  (* --- epoch siblings: <path>.e<N> --- *)

  let epoch_path path epoch = Printf.sprintf "%s.e%d" path epoch

  let epoch_files path =
    let dir = Filename.dirname path and base = Filename.basename path in
    let prefix = base ^ ".e" in
    let pl = String.length prefix in
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             if String.length n > pl && String.equal (String.sub n 0 pl) prefix then
               match int_of_string_opt (String.sub n pl (String.length n - pl)) with
               | Some e when e >= 0 -> Some (e, Filename.concat dir n)
               | _ -> None
             else None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)

  let keep_epochs = 2

  let save_epoch ~path ~mvk ~epoch tree =
    let file = epoch_path path epoch in
    (match Durable.replace ~path:file (encode ~mvk ~epoch tree) with
    | Ok () -> ()
    | Error e -> raise (Sys_error (Durable.error_to_string e)));
    note_epoch epoch;
    (* Keep the newest [keep_epochs] siblings so recovery can fall back one
       epoch; prune the rest. The base file is never pruned. *)
    epoch_files path
    |> List.filteri (fun i _ -> i >= keep_epochs)
    |> List.iter (fun (_, p) -> try Sys.remove p with Sys_error _ -> ())

  type recovered = {
    r_mvk : Abs.mvk;
    r_tree : Ap2g.t;
    r_epoch : int;
    r_source : string;
    r_skipped : (string * string) list;
        (** candidates rejected during selection: (path, typed error code or
            io message) *)
  }

  (* Pick the newest valid epoch among the base checkpoint and its epoch
     siblings. Candidates are decoded newest-first; every rejected candidate
     that was newer than the chosen one is a fallback — flight-logged and
     counted — because it means a checkpoint this process once claimed to
     have written could not be read back. *)
  let load_recover ~path =
    let candidates =
      (* The base file's epoch is only known after decoding; order it first
         so a same-epoch sibling never shadows it, then newest siblings. *)
      (if Sys.file_exists path then [ path ] else [])
      @ List.map snd (epoch_files path)
    in
    let decoded =
      List.map
        (fun p ->
          match load_typed ~path:p with
          | Ok (mvk, tree, epoch) -> (p, Ok (mvk, tree, epoch))
          | Error (`Io m) -> (p, Error m)
          | Error (`Bad e) -> (p, Error (Zkqac_util.Verify_error.code e)))
        candidates
    in
    let best =
      List.fold_left
        (fun acc (p, r) ->
          match (r, acc) with
          | Ok (mvk, tree, epoch), None -> Some (p, mvk, tree, epoch)
          | Ok (mvk, tree, epoch), Some (_, _, _, e) when epoch > e ->
            Some (p, mvk, tree, epoch)
          | _ -> acc)
        None decoded
    in
    match best with
    | None ->
      Metrics.recovery "checkpoint-failed";
      Error
        (Printf.sprintf "no valid ADS checkpoint at %s (%d candidate(s) rejected)"
           path (List.length decoded))
    | Some (src, mvk, tree, epoch) ->
      let skipped =
        List.filter_map
          (fun (p, r) -> match r with Error m -> Some (p, m) | Ok _ -> None)
          decoded
      in
      List.iter
        (fun (p, m) ->
          Flight.record ~cat:"recover" ~detail:(p ^ ": " ^ m) "checkpoint.fallback")
        skipped;
      Metrics.recovery (if skipped = [] then "checkpoint-ok" else "checkpoint-fallback");
      Flight.record ~cat:"recover" ~detail:src ~v:epoch "checkpoint.recovered";
      note_epoch epoch;
      Ok { r_mvk = mvk; r_tree = tree; r_epoch = epoch; r_source = src; r_skipped = skipped }
end
