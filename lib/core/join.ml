module Expr = Zkqac_policy.Expr
module Wire = Zkqac_util.Wire
module Universe = Zkqac_policy.Universe
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Vo.Make (P)
  module Ap2g = Ap2g.Make (P)

  type entry =
    | Pair of {
        r_record : Record.t;
        r_app : Abs.signature;
        s_record : Record.t;
        s_app : Abs.signature;
      }
    | R_side of Vo.entry
    | S_side of Vo.entry

  type t = entry list

  type stats = { relax_calls : int; nodes_visited : int; sp_time : float }

  (* The smallest node under [start] whose box still covers [box]. *)
  let rec smallest_covering start box =
    let covering_child =
      List.find_opt
        (fun c -> Box.contains_box (Ap2g.node_box c) box)
        (Ap2g.node_children start)
    in
    match covering_child with
    | Some c -> smallest_covering c box
    | None -> start

  let join_vo drbg ~mvk ~r ~s ~user query =
    if not (Keyspace.num_leaves (Ap2g.space r) = Keyspace.num_leaves (Ap2g.space s))
    then invalid_arg "Join.join_vo: trees over different keyspaces";
    Trace.with_span "sp.query" ~attrs:[ ("op", Trace.Str "join") ] @@ fun ctx ->
    let t0 = Unix.gettimeofday () in
    let visited = ref 0 and relaxed = ref 0 in
    let out = ref [] in
    let queue = Queue.create () in
    Queue.add (Ap2g.root r, Ap2g.root s) queue;
    while not (Queue.is_empty queue) do
      let nr, ns = Queue.pop queue in
      incr visited;
      let rbox = Ap2g.node_box nr in
      if Box.contains_box query rbox then begin
        if Ap2g.node_accessible r ~user nr then begin
          let ns = smallest_covering ns rbox in
          if Ap2g.node_accessible s ~user ns then begin
            match Ap2g.node_leaf_record nr with
            | Some r_record ->
              (* nr is a unit cell, so the smallest covering accessible S
                 node is the matching unit leaf. *)
              let s_record = Option.get (Ap2g.node_leaf_record ns) in
              let r_app = Option.get (Ap2g.node_leaf_app r nr) in
              let s_app = Option.get (Ap2g.node_leaf_app s ns) in
              out := Pair { r_record; r_app; s_record; s_app } :: !out
            | None ->
              List.iter (fun c -> Queue.add (c, ns) queue) (Ap2g.node_children nr)
          end
          else begin
            incr relaxed;
            out := S_side (Ap2g.node_entry_inaccessible drbg ~mvk s ~user ns) :: !out
          end
        end
        else begin
          incr relaxed;
          out := R_side (Ap2g.node_entry_inaccessible drbg ~mvk r ~user nr) :: !out
        end
      end
      else if Box.intersects query rbox then
        List.iter (fun c -> Queue.add (c, ns) queue) (Ap2g.node_children nr)
    done;
    Trace.set_attrs ctx
      [ ("nodes_visited", Trace.Int !visited);
        ("relax_calls", Trace.Int !relaxed);
        ("vo_entries", Trace.Int (List.length !out)) ];
    ( List.rev !out,
      {
        relax_calls = !relaxed;
        nodes_visited = !visited;
        sp_time = Unix.gettimeofday () -. t0;
      } )

  let rec verify ?batch ~mvk ~t_universe ~user ~query vo =
    Trace.with_span "client.verify"
      ~attrs:
        [ ("op", Trace.Str "join"); ("vo_entries", Trace.Int (List.length vo)) ]
    @@ fun vctx ->
    let ( let* ) = Result.bind in
    let fail e =
      Trace.set_attr vctx "verify_error"
        (Trace.Str (Zkqac_util.Verify_error.code e));
      Error e
    in
    let super_policy = Universe.super_policy t_universe ~user in
    (* Completeness: pair cells and APS regions together cover the range. *)
    let regions =
      List.map
        (function
          | Pair { r_record; _ } -> Box.of_point r_record.Record.key
          | R_side e | S_side e -> Vo.entry_region e)
        vo
    in
    let* () =
      if Box.covers_union query regions then Ok () else fail Vo.Completeness_gap
    in
    (* A duplicated pair would smuggle the same result row in twice (the
       coverage union above is insensitive to repetition). *)
    let* () =
      let keys =
        List.filter_map
          (function
            | Pair { r_record; _ } -> Some (Array.to_list r_record.Record.key)
            | R_side _ | S_side _ -> None)
          vo
      in
      if List.length (List.sort_uniq Stdlib.compare keys) = List.length keys
      then Ok ()
      else fail (Vo.Invalid_shape "duplicate join pair key")
    in
    let check_entry entry =
      match entry with
      | Pair { r_record; r_app; s_record; s_app } ->
        if r_record.Record.key <> s_record.Record.key then
          fail (Vo.Invalid_shape "join pair keys differ")
        else if not (Box.contains_point query r_record.Record.key) then
          fail (Vo.Record_outside_query r_record.Record.key)
        else if
          not
            (Expr.eval r_record.Record.policy user
             && Expr.eval s_record.Record.policy user)
        then fail (Vo.Policy_not_satisfied r_record.Record.key)
        else if batch <> None then Ok () (* checked below in one batch *)
        else begin
          let check record app =
            Abs.verify_result mvk ~msg:(Record.message_of record)
              ~policy:record.Record.policy app
          in
          match check r_record r_app with
          | Error e -> fail e
          | Ok () ->
            (match check s_record s_app with
             | Error e -> fail e
             | Ok () -> Ok ())
        end
      | R_side e | S_side e ->
        (match e with
         | Vo.Accessible _ ->
           fail (Vo.Invalid_shape "accessible entry in join APS slot")
         | Vo.Inaccessible_leaf { region; key; value_hash; aps } ->
           (* In [`Plain] binding the APS message does not include the
              region, so the claimed region must be pinned structurally —
              otherwise a widened region could mask dropped rows in the
              coverage union above. *)
           if not (Box.equal region (Box.of_point key)) then
             fail
               (Vo.Bad_aps_policy
                  "inaccessible leaf region is not the key's unit cell")
           else if batch <> None then Ok ()
           else
             let msg = Vo.leaf_message `Plain ~region ~key ~value_hash in
             (match Abs.verify_result mvk ~msg ~policy:super_policy aps with
              | Ok () -> Ok ()
              | Error e -> fail (Zkqac_util.Verify_error.as_aps e))
         | Vo.Inaccessible_node { region; aps } ->
           if batch <> None then Ok ()
           else
             (match
                Abs.verify_result mvk ~msg:(Vo.node_aps_message ~region)
                  ~policy:super_policy aps
              with
              | Ok () -> Ok ()
              | Error e -> fail (Zkqac_util.Verify_error.as_aps e)))
    in
    let* () =
      List.fold_left
        (fun acc e -> Result.bind acc (fun () -> check_entry e))
        (Ok ()) vo
    in
    let* () =
      match batch with
      | None -> Ok ()
      | Some drbg ->
        (* Pair APPs batch per record policy; side APSes batch under the
           super-policy. On rejection, fall back to the sequential pass so
           the caller sees the same precise typed error as unbatched. *)
        let app_groups :
            (string, Expr.t * (string * Abs.signature) list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        let aps_entries = ref [] in
        List.iter
          (function
            | Pair { r_record; r_app; s_record; s_app } ->
              let add record app =
                let key = Expr.to_string record.Record.policy in
                let item = (Record.message_of record, app) in
                match Hashtbl.find_opt app_groups key with
                | Some (_, l) -> l := item :: !l
                | None ->
                  Hashtbl.add app_groups key (record.Record.policy, ref [ item ])
              in
              add r_record r_app;
              add s_record s_app
            | R_side e | S_side e ->
              (match e with
               | Vo.Accessible _ -> ()
               | Vo.Inaccessible_leaf { region; key; value_hash; aps } ->
                 aps_entries :=
                   (Vo.leaf_message `Plain ~region ~key ~value_hash, aps)
                   :: !aps_entries
               | Vo.Inaccessible_node { region; aps } ->
                 aps_entries :=
                   (Vo.node_aps_message ~region, aps) :: !aps_entries))
          vo;
        let batches_ok =
          Abs.verify_batch drbg mvk ~policy:super_policy (List.rev !aps_entries)
          && Hashtbl.fold
               (fun _ (policy, sigs) acc ->
                 acc && Abs.verify_batch drbg mvk ~policy (List.rev !sigs))
               app_groups true
        in
        if batches_ok then Ok ()
        else begin
          match verify ~mvk ~t_universe ~user ~query vo with
          | Error e -> fail e
          | Ok _ -> fail (Vo.Bad_aps_signature "batched APS verification")
        end
    in
    let pairs =
      List.filter_map
        (function
          | Pair { r_record; s_record; _ } -> Some (r_record, s_record)
          | R_side _ | S_side _ -> None)
        vo
    in
    Trace.set_attr vctx "result_rows" (Trace.Int (List.length pairs));
    Ok pairs

  (* --- codec --- *)

  let put_record w (r : Record.t) =
    Wire.int_array w r.Record.key;
    Wire.bytes w r.Record.value;
    Wire.bytes w (Expr.to_string r.Record.policy)

  let get_record r =
    let key = Wire.rint_array r in
    let value = Wire.rbytes r in
    let policy =
      let s = Wire.rbytes r in
      match Expr.of_string s with
      | p -> p
      | exception (Invalid_argument _ | Failure _) -> raise Wire.Malformed
    in
    Record.make ~key ~value ~policy

  let to_bytes vo =
    let w = Wire.writer () in
    Wire.u32 w (List.length vo);
    List.iter
      (fun entry ->
        match entry with
        | Pair { r_record; r_app; s_record; s_app } ->
          Wire.u8 w 0;
          put_record w r_record;
          Wire.bytes w (Abs.to_bytes r_app);
          put_record w s_record;
          Wire.bytes w (Abs.to_bytes s_app)
        | R_side e ->
          Wire.u8 w 1;
          Wire.bytes w (Vo.to_bytes [ e ])
        | S_side e ->
          Wire.u8 w 2;
          Wire.bytes w (Vo.to_bytes [ e ]))
      vo;
    Wire.contents w

  let decode ?limits data =
    Wire.decode ?limits data @@ fun r ->
    let get_sig () =
      match Abs.of_bytes (Wire.rbytes r) with
      | Some s -> s
      | None -> raise Wire.Malformed
    in
    let get_side () =
      match Vo.of_bytes (Wire.rbytes r) with
      | Some [ e ] -> e
      | Some _ | None -> raise Wire.Malformed
    in
    let n = Wire.rcount r in
    let rec go k acc =
      if k = 0 then List.rev acc
      else begin
        let entry =
          match Wire.ru8 r with
          | 0 ->
            let r_record = get_record r in
            let r_app = get_sig () in
            let s_record = get_record r in
            let s_app = get_sig () in
            Pair { r_record; r_app; s_record; s_app }
          | 1 -> R_side (get_side ())
          | 2 -> S_side (get_side ())
          | _ -> raise Wire.Malformed
        in
        go (k - 1) (entry :: acc)
      end
    in
    go n []

  let of_bytes data = Result.to_option (decode data)
  let size vo = String.length (to_bytes vo)
end
