module Expr = Zkqac_policy.Expr
module Wire = Zkqac_util.Wire
module Universe = Zkqac_policy.Universe
module Trace = Zkqac_telemetry.Trace

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)
  module Vo = Vo.Make (P)
  module Ap2g = Ap2g.Make (P)

  type entry =
    | Pair of {
        r_record : Record.t;
        r_app : Abs.signature;
        s_record : Record.t;
        s_app : Abs.signature;
      }
    | R_side of Vo.entry
    | S_side of Vo.entry

  type t = entry list

  type stats = { relax_calls : int; nodes_visited : int; sp_time : float }

  (* The smallest node under [start] whose box still covers [box]. *)
  let rec smallest_covering start box =
    let covering_child =
      List.find_opt
        (fun c -> Box.contains_box (Ap2g.node_box c) box)
        (Ap2g.node_children start)
    in
    match covering_child with
    | Some c -> smallest_covering c box
    | None -> start

  let join_vo drbg ~mvk ~r ~s ~user query =
    if not (Keyspace.num_leaves (Ap2g.space r) = Keyspace.num_leaves (Ap2g.space s))
    then invalid_arg "Join.join_vo: trees over different keyspaces";
    Trace.with_span "sp.query" ~attrs:[ ("op", Trace.Str "join") ] @@ fun ctx ->
    let t0 = Unix.gettimeofday () in
    let visited = ref 0 and relaxed = ref 0 in
    let out = ref [] in
    let queue = Queue.create () in
    Queue.add (Ap2g.root r, Ap2g.root s) queue;
    while not (Queue.is_empty queue) do
      let nr, ns = Queue.pop queue in
      incr visited;
      let rbox = Ap2g.node_box nr in
      if Box.contains_box query rbox then begin
        if Ap2g.node_accessible r ~user nr then begin
          let ns = smallest_covering ns rbox in
          if Ap2g.node_accessible s ~user ns then begin
            match Ap2g.node_leaf_record nr with
            | Some r_record ->
              (* nr is a unit cell, so the smallest covering accessible S
                 node is the matching unit leaf. *)
              let s_record = Option.get (Ap2g.node_leaf_record ns) in
              let r_app = Option.get (Ap2g.node_leaf_app r nr) in
              let s_app = Option.get (Ap2g.node_leaf_app s ns) in
              out := Pair { r_record; r_app; s_record; s_app } :: !out
            | None ->
              List.iter (fun c -> Queue.add (c, ns) queue) (Ap2g.node_children nr)
          end
          else begin
            incr relaxed;
            out := S_side (Ap2g.node_entry_inaccessible drbg ~mvk s ~user ns) :: !out
          end
        end
        else begin
          incr relaxed;
          out := R_side (Ap2g.node_entry_inaccessible drbg ~mvk r ~user nr) :: !out
        end
      end
      else if Box.intersects query rbox then
        List.iter (fun c -> Queue.add (c, ns) queue) (Ap2g.node_children nr)
    done;
    Trace.set_attrs ctx
      [ ("nodes_visited", Trace.Int !visited);
        ("relax_calls", Trace.Int !relaxed);
        ("vo_entries", Trace.Int (List.length !out)) ];
    ( List.rev !out,
      {
        relax_calls = !relaxed;
        nodes_visited = !visited;
        sp_time = Unix.gettimeofday () -. t0;
      } )

  let verify ~mvk ~t_universe ~user ~query vo =
    Trace.with_span "client.verify"
      ~attrs:
        [ ("op", Trace.Str "join"); ("vo_entries", Trace.Int (List.length vo)) ]
    @@ fun vctx ->
    let ( let* ) = Result.bind in
    let super_policy = Universe.super_policy t_universe ~user in
    (* Completeness: pair cells and APS regions together cover the range. *)
    let regions =
      List.map
        (function
          | Pair { r_record; _ } -> Box.of_point r_record.Record.key
          | R_side e | S_side e -> Vo.entry_region e)
        vo
    in
    let* () =
      if Box.covers_union query regions then Ok () else Error Vo.Bad_coverage
    in
    let check_entry entry =
      match entry with
      | Pair { r_record; r_app; s_record; s_app } ->
        if r_record.Record.key <> s_record.Record.key then
          Error (Vo.Bad_signature "join pair keys differ")
        else if not (Box.contains_point query r_record.Record.key) then
          Error (Vo.Record_outside_query r_record.Record.key)
        else if
          not
            (Expr.eval r_record.Record.policy user
             && Expr.eval s_record.Record.policy user)
        then Error (Vo.Policy_not_satisfied r_record.Record.key)
        else if
          not
            (Abs.verify mvk ~msg:(Record.message_of r_record)
               ~policy:r_record.Record.policy r_app)
        then Error (Vo.Bad_signature "join pair R APP")
        else if
          not
            (Abs.verify mvk ~msg:(Record.message_of s_record)
               ~policy:s_record.Record.policy s_app)
        then Error (Vo.Bad_signature "join pair S APP")
        else Ok ()
      | R_side e | S_side e ->
        (match e with
         | Vo.Accessible _ -> Error (Vo.Bad_signature "accessible entry in join APS slot")
         | Vo.Inaccessible_leaf { region; key; value_hash; aps } ->
           let msg = Vo.leaf_message `Plain ~region ~key ~value_hash in
           if Abs.verify mvk ~msg ~policy:super_policy aps then Ok ()
           else Error (Vo.Bad_signature "join APS leaf")
         | Vo.Inaccessible_node { region; aps } ->
           if
             Abs.verify mvk ~msg:(Vo.node_aps_message ~region) ~policy:super_policy
               aps
           then Ok ()
           else Error (Vo.Bad_signature "join APS node"))
    in
    let* () =
      List.fold_left
        (fun acc e -> Result.bind acc (fun () -> check_entry e))
        (Ok ()) vo
    in
    let pairs =
      List.filter_map
        (function
          | Pair { r_record; s_record; _ } -> Some (r_record, s_record)
          | R_side _ | S_side _ -> None)
        vo
    in
    Trace.set_attr vctx "result_rows" (Trace.Int (List.length pairs));
    Ok pairs

  let size vo =
    let w = Wire.writer () in
    List.iter
      (fun entry ->
        match entry with
        | Pair { r_record; r_app; s_record; s_app } ->
          Wire.u8 w 0;
          Wire.int_array w r_record.Record.key;
          Wire.bytes w r_record.Record.value;
          Wire.bytes w (Expr.to_string r_record.Record.policy);
          Wire.bytes w (Abs.to_bytes r_app);
          Wire.bytes w s_record.Record.value;
          Wire.bytes w (Expr.to_string s_record.Record.policy);
          Wire.bytes w (Abs.to_bytes s_app)
        | R_side e | S_side e ->
          Wire.u8 w 1;
          Wire.bytes w (Vo.to_bytes [ e ]))
      vo;
    String.length (Wire.contents w)
end
