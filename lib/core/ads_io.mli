(** Persistence of the outsourced ADS: what the data owner actually ships to
    the service provider (the full AP²G-tree with policies and APP
    signatures), as a versioned binary file.

    This is the "outsource all ⟨o,v,Υ,σ⟩ and ⟨gb,p,sig⟩ to SP" step of
    Algorithm 3 made concrete: [save] on the DO side, [load] on the SP side,
    integrity-tagged with a SHA-256 checksum.

    Since v2 every checkpoint is epoch-stamped and ends in a commit footer
    (SHA-256 of every preceding byte, then a marker written last), written
    through {!Zkqac_durable.Durable.replace}: a crash mid-save leaves the old
    file intact, and a file that passes the footer check is guaranteed to be
    exactly what [save] produced. [load_recover] uses this to resume from the
    newest valid epoch after a kill -9. *)

val reset_epoch_gauge : unit -> unit
(** Forget the process-wide [zkqac_checkpoint_epoch] gauge value (test
    isolation for golden expositions). *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Ap2g : module type of Ap2g.Make (P)
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  val tree_to_bytes : Ap2g.t -> string
  val tree_of_bytes : string -> Ap2g.t option

  val save : ?epoch:int -> path:string -> mvk:Abs.mvk -> Ap2g.t -> unit
  (** Atomically replace [path] with the tree and the public verification
      key, stamped with [epoch] (default 0). Raises [Sys_error] if the
      durable-replace protocol fails; the previous file is then untouched. *)

  val decode_typed :
    string -> (Abs.mvk * Ap2g.t * int, Zkqac_util.Verify_error.t) result
  (** Decode a checkpoint's bytes, treating them as hostile: truncation and
      bit flips map to typed errors ([Malformed], [Digest_mismatch],
      [Limit_exceeded], [Invalid_shape] for a wrong magic or a missing
      commit marker) and no exception escapes — including from parsers
      embedded in the key and tree decoders. Returns the stamped epoch
      (0 for v1 files, which are still accepted). *)

  val load_typed :
    path:string ->
    ( Abs.mvk * Ap2g.t * int,
      [ `Io of string | `Bad of Zkqac_util.Verify_error.t ] )
    result
  (** {!decode_typed} over a file's contents; [`Io] is an OS-level read
      failure (missing file, permissions), [`Bad] a corrupt checkpoint. *)

  val load : path:string -> (Abs.mvk * Ap2g.t, string) result
  (** Read back; fails with a message on version/checksum/shape mismatch.
      The message names the offending path and the typed error code. *)

  (** {1 Epoch checkpoints and crash recovery} *)

  val epoch_path : string -> int -> string
  (** [epoch_path path e] is the sibling file ["<path>.e<e>"]. *)

  val epoch_files : string -> (int * string) list
  (** Existing epoch siblings of [path], newest epoch first. *)

  val save_epoch : path:string -> mvk:Abs.mvk -> epoch:int -> Ap2g.t -> unit
  (** Atomically write the epoch sibling [epoch_path path epoch] and prune
      all but the newest two siblings (the base file is never pruned).
      Raises [Sys_error] on durable-replace failure. *)

  type recovered = {
    r_mvk : Abs.mvk;
    r_tree : Ap2g.t;
    r_epoch : int;
    r_source : string;
    r_skipped : (string * string) list;
        (** candidates rejected during selection: (path, typed error code or
            io message) *)
  }

  val load_recover : path:string -> (recovered, string) result
  (** Select the newest valid epoch among [path] and its epoch siblings.
      Every rejected candidate is flight-logged; the outcome feeds
      [zkqac_recoveries_total{outcome}] ([checkpoint-ok] when nothing was
      skipped, [checkpoint-fallback] otherwise, [checkpoint-failed] when no
      candidate decodes). *)
end
