(** Persistence of the outsourced ADS: what the data owner actually ships to
    the service provider (the full AP²G-tree with policies and APP
    signatures), as a versioned binary file.

    This is the "outsource all ⟨o,v,Υ,σ⟩ and ⟨gb,p,sig⟩ to SP" step of
    Algorithm 3 made concrete: [save] on the DO side, [load] on the SP side,
    integrity-tagged with a SHA-256 checksum. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Ap2g : module type of Ap2g.Make (P)
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  val tree_to_bytes : Ap2g.t -> string
  val tree_of_bytes : string -> Ap2g.t option

  val save : path:string -> mvk:Abs.mvk -> Ap2g.t -> unit
  (** Write the tree and the public verification key. *)

  val decode_typed :
    string -> (Abs.mvk * Ap2g.t, Zkqac_util.Verify_error.t) result
  (** Decode a checkpoint's bytes, treating them as hostile: truncation and
      bit flips map to typed errors ([Malformed], [Digest_mismatch],
      [Limit_exceeded], [Invalid_shape] for a wrong magic) and no exception
      escapes — including from parsers embedded in the key and tree
      decoders. *)

  val load_typed :
    path:string ->
    ( Abs.mvk * Ap2g.t,
      [ `Io of string | `Bad of Zkqac_util.Verify_error.t ] )
    result
  (** {!decode_typed} over a file's contents; [`Io] is an OS-level read
      failure (missing file, permissions), [`Bad] a corrupt checkpoint. *)

  val load : path:string -> (Abs.mvk * Ap2g.t, string) result
  (** Read back; fails with a message on version/checksum/shape mismatch.
      The message names the offending path and the typed error code. *)
end
