(** The access-policy-preserving k-d tree (AP²kd-tree, Section 9.1).

    Usable when zero-knowledge confidentiality is relaxed to access-policy
    confidentiality: the tree shape may (and does) depend on the data. Each
    internal node splits its region into two half-spaces at the hyperplane
    minimizing the DNF clause-set intersection objective (Algorithm 7), so a
    typical user can be pruned with a single APS signature per inaccessible
    half-space. Empty regions become single pseudo-region nodes (the
    Section 9.2 treatment) instead of exponentially many pseudo records.

    Leaf messages bind the leaf's region box in addition to the record
    (the [`Boxed] VO binding) because, unlike the grid tree, a leaf's region
    is data-dependent and must be authenticated for completeness. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)
  module Vo : module type of Vo.Make (P)

  type t

  type build_stats = {
    leaf_signatures : int;
    node_signatures : int;
    pseudo_regions : int;
    sign_time : float;
    structure_bytes : int;
    signature_bytes : int;
  }

  val build :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    sk:Abs.signing_key ->
    space:Keyspace.t ->
    universe:Zkqac_policy.Universe.t ->
    ?split:[ `Clause_objective | `Midpoint ] ->
    Record.t list ->
    t
  (** DO-side construction. [`Clause_objective] (default) uses Algorithm 7;
      [`Midpoint] is the ablation baseline that splits every region in half
      like the grid tree. *)

  val stats : t -> build_stats
  val space : t -> Keyspace.t
  val universe : t -> Zkqac_policy.Universe.t

  type query_stats = { relax_calls : int; nodes_visited : int; sp_time : float }

  val range_vo :
    ?pmap:((unit -> Vo.entry) list -> Vo.entry list) ->
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t ->
    user:Zkqac_policy.Attr.Set.t ->
    Box.t ->
    Vo.t * query_stats

  val verify :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t_universe:Zkqac_policy.Universe.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    Vo.t ->
    (Record.t list, Vo.error) result
end
