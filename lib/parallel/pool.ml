module Trace = Zkqac_telemetry.Trace

let available_cores () = Domain.recommended_domain_count ()

(* ZKQAC_DOMAINS overrides the worker-domain count machine-wide; an unset or
   blank variable falls through to the scheduler's recommendation. Nonsense
   values fail loudly rather than silently serializing a benchmark. *)
let size () =
  match Sys.getenv_opt "ZKQAC_DOMAINS" with
  | None -> available_cores ()
  | Some raw ->
    let s = String.trim raw in
    if s = "" then available_cores ()
    else begin
      match int_of_string_opt s with
      | Some n when n >= 1 && n <= 1024 -> n
      | Some n ->
        invalid_arg
          (Printf.sprintf "ZKQAC_DOMAINS=%d out of range (want 1..1024)" n)
      | None ->
        invalid_arg (Printf.sprintf "ZKQAC_DOMAINS=%S is not an integer" raw)
    end

(* Registered once at library init: the configured fan-out is a property of
   the environment, so exporters always see the value a run would use. *)
let () =
  Zkqac_telemetry.Metrics.register_gauge ~name:"zkqac_worker_domains"
    ~help:"Worker domains a parallel fan-out would use (ZKQAC_DOMAINS or the scheduler's recommendation)."
    (fun () ->
      match size () with
      | n -> [ ([], float_of_int n) ]
      | exception Invalid_argument _ -> [])

exception Job_failed of exn

let map_results ~threads jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let run j =
    match j () with
    | v -> Ok v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Zkqac_telemetry.Flight.record ~cat:"pool"
        ~detail:(Printexc.to_string e) "pool.job_failed";
      Error (e, bt)
  in
  if threads <= 1 || n <= 1 then Array.to_list (Array.map run jobs)
  else begin
    let threads = min threads n in
    Trace.with_span "pool.map"
      ~attrs:[ ("threads", Trace.Int threads); ("jobs", Trace.Int n) ]
    @@ fun ctx ->
    let results = Array.make n None in
    (* Static block partition: domain k takes the contiguous slice
       [k*n/threads, (k+1)*n/threads). A failing job is recorded in place and
       the slice keeps going: callers get every job's outcome. *)
    let worker k () =
      (* Let the runtime-events monitor map this domain's ring slot to its
         id, so its GC pauses are attributed to the right worker. *)
      Zkqac_telemetry.Rte.announce ();
      (* Parent the worker's span on the caller's [pool.map] span so jobs
         running on this domain show up under the query that spawned them. *)
      Trace.with_span "pool.worker" ~parent:ctx
        ~attrs:[ ("worker", Trace.Int k) ]
      @@ fun _ ->
      let lo = k * n / threads and hi = (k + 1) * n / threads in
      for i = lo to hi - 1 do
        results.(i) <- Some (run jobs.(i))
      done
    in
    let domains = List.init threads (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           (* The slices tile [0, n), so every cell was written. *)
           | None -> assert false)
         results)
  end

let map ~threads jobs =
  let results = map_results ~threads jobs in
  (* Re-raise the lowest-index failure: deterministic regardless of how the
     domains were scheduled. *)
  let rec extract acc = function
    | [] -> List.rev acc
    | Ok v :: rest -> extract (v :: acc) rest
    | Error (e, bt) :: _ ->
      (* An uncaught worker exception is exactly the post-mortem the flight
         recorder exists for: dump before the failure propagates. *)
      Zkqac_telemetry.Flight.trip
        ~reason:("pool-job-failure:" ^ Printexc.to_string e);
      Printexc.raise_with_backtrace (Job_failed e) bt
  in
  extract [] results

let time f =
  let t0 = Monotonic_clock.now_ns () in
  let v = f () in
  (v, Monotonic_clock.elapsed_since t0)
