module Trace = Zkqac_telemetry.Trace

let available_cores () = Domain.recommended_domain_count ()

(* ZKQAC_DOMAINS overrides the worker-domain count machine-wide; an unset or
   blank variable falls through to the scheduler's recommendation. Nonsense
   values fail loudly rather than silently serializing a benchmark. *)
let size () =
  match Sys.getenv_opt "ZKQAC_DOMAINS" with
  | None -> available_cores ()
  | Some raw ->
    let s = String.trim raw in
    if s = "" then available_cores ()
    else begin
      match int_of_string_opt s with
      | Some n when n >= 1 && n <= 1024 -> n
      | Some n ->
        invalid_arg
          (Printf.sprintf "ZKQAC_DOMAINS=%d out of range (want 1..1024)" n)
      | None ->
        invalid_arg (Printf.sprintf "ZKQAC_DOMAINS=%S is not an integer" raw)
    end

(* Registered once at library init: the configured fan-out is a property of
   the environment, so exporters always see the value a run would use. *)
let () =
  Zkqac_telemetry.Metrics.register_gauge ~name:"zkqac_worker_domains"
    ~help:"Worker domains a parallel fan-out would use (ZKQAC_DOMAINS or the scheduler's recommendation)."
    (fun () ->
      match size () with
      | n -> [ ([], float_of_int n) ]
      | exception Invalid_argument _ -> [])

exception Job_failed of exn

let map_results ~threads jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let run j =
    match j () with
    | v -> Ok v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Zkqac_telemetry.Flight.record ~cat:"pool"
        ~detail:(Printexc.to_string e) "pool.job_failed";
      Error (e, bt)
  in
  if threads <= 1 || n <= 1 then Array.to_list (Array.map run jobs)
  else begin
    let threads = min threads n in
    Trace.with_span "pool.map"
      ~attrs:[ ("threads", Trace.Int threads); ("jobs", Trace.Int n) ]
    @@ fun ctx ->
    let results = Array.make n None in
    (* Static block partition: domain k takes the contiguous slice
       [k*n/threads, (k+1)*n/threads). A failing job is recorded in place and
       the slice keeps going: callers get every job's outcome. *)
    let worker k () =
      (* Let the runtime-events monitor map this domain's ring slot to its
         id, so its GC pauses are attributed to the right worker. *)
      Zkqac_telemetry.Rte.announce ();
      (* Parent the worker's span on the caller's [pool.map] span so jobs
         running on this domain show up under the query that spawned them. *)
      Trace.with_span "pool.worker" ~parent:ctx
        ~attrs:[ ("worker", Trace.Int k) ]
      @@ fun _ ->
      let lo = k * n / threads and hi = (k + 1) * n / threads in
      for i = lo to hi - 1 do
        results.(i) <- Some (run jobs.(i))
      done
    in
    let domains = List.init threads (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           (* The slices tile [0, n), so every cell was written. *)
           | None -> assert false)
         results)
  end

let map ~threads jobs =
  let results = map_results ~threads jobs in
  (* Re-raise the lowest-index failure: deterministic regardless of how the
     domains were scheduled. *)
  let rec extract acc = function
    | [] -> List.rev acc
    | Ok v :: rest -> extract (v :: acc) rest
    | Error (e, bt) :: _ ->
      (* An uncaught worker exception is exactly the post-mortem the flight
         recorder exists for: dump before the failure propagates. *)
      Zkqac_telemetry.Flight.trip
        ~reason:("pool-job-failure:" ^ Printexc.to_string e);
      Printexc.raise_with_backtrace (Job_failed e) bt
  in
  extract [] results

let time f =
  let t0 = Monotonic_clock.now_ns () in
  let v = f () in
  (v, Monotonic_clock.elapsed_since t0)

(* --- persistent pool ---

   [map] spawns fresh domains per call, which is fine for a one-shot CLI but
   not for a long-lived server answering queries for hours: domain spawn is
   microseconds of setup plus fresh DLS state per call. The persistent pool
   keeps [threads] worker domains alive, feeding them through a bounded-by-
   caller queue; a job whose thunk raises has its failure delivered to the
   waiting future AND retires the worker domain that ran it — a raised
   exception may have left domain-local state (DLS caches, allocation
   buffers) mid-update, so the conservative recovery is a fresh domain. Every
   retirement is counted in [zkqac_pool_respawns_total]. *)

let respawns_family =
  Zkqac_telemetry.Metrics.counter ~name:"zkqac_pool_respawns_total"
    ~help:"Persistent-pool worker domains retired after a job exception and replaced with a fresh domain."

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

type 'a fstate = Pending | Done of 'a outcome

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a fstate;
}

let fulfill fut r =
  Mutex.lock fut.fm;
  fut.state <- Done r;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Done r -> r
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
  in
  let r = wait () in
  Mutex.unlock fut.fm;
  r

(* OCaml's [Condition] has no timed wait, so the deadline path polls the
   future state at millisecond granularity — coarse next to a query that
   takes tens of milliseconds, and only connection-handler threads (of which
   there is a bounded number) ever sit in this loop. *)
let await_timeout fut seconds =
  let t0 = Monotonic_clock.now_ns () in
  let rec poll () =
    Mutex.lock fut.fm;
    let st = fut.state in
    Mutex.unlock fut.fm;
    match st with
    | Done r -> Some r
    | Pending ->
      if Monotonic_clock.elapsed_since t0 >= seconds then None
      else begin
        Unix.sleepf 0.001;
        poll ()
      end
  in
  poll ()

let peek fut =
  Mutex.lock fut.fm;
  let st = fut.state in
  Mutex.unlock fut.fm;
  match st with Done r -> Some r | Pending -> None

type pool = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> bool) Queue.t; (* a task returns false iff its job raised *)
  threads : int;
  mutable workers : unit Domain.t list; (* every domain ever spawned, joined at shutdown *)
  mutable shutting_down : bool;
  mutable respawned : int;
}

let rec worker_loop p =
  Mutex.lock p.lock;
  let rec next () =
    if not (Queue.is_empty p.queue) then Some (Queue.pop p.queue)
    else if p.shutting_down then None
    else begin
      Condition.wait p.nonempty p.lock;
      next ()
    end
  in
  let task = next () in
  Mutex.unlock p.lock;
  match task with
  | None -> ()
  | Some task ->
    if task () then worker_loop p
    else begin
      (* The job raised: its future already holds the failure; retire this
         domain and hand its slot to a fresh one so a crash storm cannot
         bleed the pool dry. During shutdown a replacement is only spawned
         if work is still queued (shutdown runs any leftovers inline). *)
      Mutex.lock p.lock;
      p.respawned <- p.respawned + 1;
      Zkqac_telemetry.Metrics.inc respawns_family [];
      Zkqac_telemetry.Flight.record ~cat:"pool" ~v:p.respawned
        "pool.worker_respawned";
      if (not p.shutting_down) || not (Queue.is_empty p.queue) then
        p.workers <- Domain.spawn (spawn_worker p) :: p.workers;
      Mutex.unlock p.lock
    end

and spawn_worker p () =
  Zkqac_telemetry.Rte.announce ();
  worker_loop p

let create ?threads () =
  let threads = match threads with Some n -> n | None -> size () in
  if threads < 1 then invalid_arg "Pool.create: threads < 1";
  let p =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      threads;
      workers = [];
      shutting_down = false;
      respawned = 0;
    }
  in
  p.workers <- List.init threads (fun _ -> Domain.spawn (spawn_worker p));
  p

let pool_size p = p.threads
let respawns p = p.respawned

let submit ?ctx ?(attrs = []) p f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  (* With a caller context, the job runs under a [pool.worker] span parented
     on it — the same shape [map_results] produces — so per-request spans
     recorded inside the job (sp.query, sp.relax, ...) attach to the
     submitting request's trace even though they run on a worker domain. *)
  let f =
    match ctx with
    | None -> f
    | Some parent ->
      fun () -> Trace.with_span "pool.worker" ~parent ~attrs (fun _ -> f ())
  in
  let task () =
    match f () with
    | v ->
      fulfill fut (Ok v);
      true
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Zkqac_telemetry.Flight.record ~cat:"pool" ~detail:(Printexc.to_string e)
        "pool.job_failed";
      fulfill fut (Error (e, bt));
      false
  in
  Mutex.lock p.lock;
  if p.shutting_down then begin
    Mutex.unlock p.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task p.queue;
  Condition.signal p.nonempty;
  Mutex.unlock p.lock;
  fut

let run p f = await (submit p f)

let shutdown p =
  Mutex.lock p.lock;
  if p.shutting_down then Mutex.unlock p.lock
  else begin
    p.shutting_down <- true;
    Condition.broadcast p.nonempty;
    (* Workers retiring mid-shutdown may still add replacements, so drain
       the handle list until it stays empty. *)
    let rec drain () =
      match p.workers with
      | [] -> ()
      | ds ->
        p.workers <- [];
        Mutex.unlock p.lock;
        List.iter Domain.join ds;
        Mutex.lock p.lock;
        drain ()
    in
    drain ();
    (* If the last workers retired with work still queued, run the leftovers
       inline: every submitted future must be fulfilled. *)
    let leftovers = Queue.fold (fun acc t -> t :: acc) [] p.queue in
    Queue.clear p.queue;
    Mutex.unlock p.lock;
    List.iter (fun t -> ignore (t () : bool)) (List.rev leftovers)
  end
