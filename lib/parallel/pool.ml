module Trace = Zkqac_telemetry.Trace

let available_cores () = Domain.recommended_domain_count ()

(* ZKQAC_DOMAINS overrides the worker-domain count machine-wide; an unset or
   blank variable falls through to the scheduler's recommendation. Nonsense
   values fail loudly rather than silently serializing a benchmark. *)
let size () =
  match Sys.getenv_opt "ZKQAC_DOMAINS" with
  | None -> available_cores ()
  | Some raw ->
    let s = String.trim raw in
    if s = "" then available_cores ()
    else begin
      match int_of_string_opt s with
      | Some n when n >= 1 && n <= 1024 -> n
      | Some n ->
        invalid_arg
          (Printf.sprintf "ZKQAC_DOMAINS=%d out of range (want 1..1024)" n)
      | None ->
        invalid_arg (Printf.sprintf "ZKQAC_DOMAINS=%S is not an integer" raw)
    end

exception Job_failed of exn

let map ~threads jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if threads <= 1 || n <= 1 then
    Array.to_list
      (Array.map
         (fun j ->
           try j ()
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Printexc.raise_with_backtrace (Job_failed e) bt)
         jobs)
  else begin
    let threads = min threads n in
    Trace.with_span "pool.map"
      ~attrs:[ ("threads", Trace.Int threads); ("jobs", Trace.Int n) ]
    @@ fun ctx ->
    let results = Array.make n None in
    (* First failure by job index, kept with its backtrace. Workers race to
       publish via compare-and-set; lower indices win, so which failure is
       reported does not depend on domain scheduling. *)
    let failure = Atomic.make None in
    let record_failure i e bt =
      let rec loop () =
        let cur = Atomic.get failure in
        match cur with
        | Some (j, _, _) when j <= i -> ()
        | _ -> if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then loop ()
      in
      loop ()
    in
    (* Static block partition: domain k takes the contiguous slice
       [k*n/threads, (k+1)*n/threads). *)
    let worker k () =
      (* Parent the worker's span on the caller's [pool.map] span so jobs
         running on this domain show up under the query that spawned them. *)
      Trace.with_span "pool.worker" ~parent:ctx
        ~attrs:[ ("worker", Trace.Int k) ]
      @@ fun _ ->
      let lo = k * n / threads and hi = (k + 1) * n / threads in
      let i = ref lo in
      try
        while !i < hi do
          results.(!i) <- Some (jobs.(!i) ());
          incr i
        done
      with e -> record_failure !i e (Printexc.get_raw_backtrace ())
    in
    let domains = List.init threads (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join domains;
    (match Atomic.get failure with
     | Some (_, e, bt) -> Printexc.raise_with_backtrace (Job_failed e) bt
     | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           (* No failure recorded means every slice ran to completion. *)
           | None -> assert false)
         results)
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)
