(** Monotonic time for measuring durations.

    [Unix.gettimeofday] follows the wall clock, which NTP may step backwards
    mid-measurement; benchmark and SP-time figures must come from a clock
    that only moves forward. This is a thin binding to
    [clock_gettime(CLOCK_MONOTONIC)]. *)

external now_ns : unit -> (int64[@unboxed])
  = "zkqac_monotonic_now_ns_bytecode" "zkqac_monotonic_now_ns_native"
[@@noalloc]
(** Nanoseconds from an arbitrary fixed origin; comparable only against
    other [now_ns] readings in the same process. *)

val elapsed_since : int64 -> float
(** Seconds elapsed since a previous [now_ns] reading. *)
