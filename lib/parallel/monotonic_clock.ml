external now_ns : unit -> (int64[@unboxed])
  = "zkqac_monotonic_now_ns_bytecode" "zkqac_monotonic_now_ns_native"
[@@noalloc]

let elapsed_since t0 = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9
