/* Monotonic clock binding: CLOCK_MONOTONIC is immune to NTP steps and
   wall-clock adjustments, unlike gettimeofday. The native variant returns an
   unboxed int64 and must not allocate. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t zkqac_monotonic_now_ns_native(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * (int64_t)1000000000 + (int64_t)ts.tv_nsec;
}

value zkqac_monotonic_now_ns_bytecode(value unit)
{
  return caml_copy_int64(zkqac_monotonic_now_ns_native(unit));
}
