(** Parallel map over OCaml 5 domains — the Section 8.2 optimization.

    The paper parallelizes the independent ABS.Relax jobs of a query across
    OpenMP threads; this module provides the same fan-out with domains. Jobs
    are deterministic-output thunks; the result order matches the input
    order. *)

exception Job_failed of exn
(** Wraps the exception raised by a failed job. *)

val available_cores : unit -> int

val size : unit -> int
(** The worker-domain count to use by default: the value of the
    [ZKQAC_DOMAINS] environment variable if set and non-blank, else
    {!available_cores}.
    @raise Invalid_argument
      if [ZKQAC_DOMAINS] is set to something that is not an integer in
      [1..1024]. *)

val map_results :
  threads:int ->
  (unit -> 'a) list ->
  ('a, exn * Printexc.raw_backtrace) result list
(** Run the thunks on [threads] domains (static block partitioning, like an
    OpenMP static schedule) and collect every job's outcome in input order.
    [threads <= 1] runs inline. A raising job becomes [Error (e, bt)] in its
    slot and does not stop the other jobs — callers that need partial
    results (or a full failure report) get all of them.

    When tracing is enabled ([Zkqac_telemetry.Trace]), the parallel branch
    records a [pool.map] span and each worker domain a [pool.worker] span
    parented on it, so spans recorded inside jobs attach to the calling
    query's trace even though they run on other domains. *)

val map : threads:int -> (unit -> 'a) list -> 'a list
(** {!map_results} with failures re-raised: if any job raised, the failure
    with the lowest job index is re-raised in the caller as [Job_failed e]
    with the worker's backtrace — deterministic even when several jobs fail
    on different domains. *)

val time : (unit -> 'a) -> 'a * float
(** Timing helper for benches. Durations come from {!Monotonic_clock}, so
    they are immune to wall-clock adjustments. *)

(** {1 Persistent pool}

    {!map} spawns fresh domains per call — fine for a one-shot CLI, wrong
    for a server answering queries for hours. A persistent pool keeps its
    worker domains alive across queries; jobs are submitted individually
    and awaited through futures, optionally with a deadline. A job whose
    thunk raises delivers the failure to its future {e and} retires the
    worker domain that ran it (a fresh domain replaces it, counted in
    {!respawns} and [zkqac_pool_respawns_total]): an escaped exception may
    have left domain-local state mid-update, and domains are cheap relative
    to serving a wrong answer. *)

type pool

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

type 'a future

val create : ?threads:int -> unit -> pool
(** Spawn a pool of [threads] worker domains (default {!size}).
    @raise Invalid_argument if [threads < 1]. *)

val pool_size : pool -> int
(** The configured worker count (live workers, once retirements are
    replaced, always converge back to this). *)

val respawns : pool -> int
(** Worker domains retired after a job exception and replaced so far. *)

val submit :
  ?ctx:Zkqac_telemetry.Trace.ctx ->
  ?attrs:(string * Zkqac_telemetry.Trace.value) list ->
  pool ->
  (unit -> 'a) ->
  'a future
(** Enqueue a job; it runs on the first free worker. When [ctx] is given,
    the job runs inside a [pool.worker] span (with [attrs]) parented on it,
    so spans the job records attach to the submitting request's trace
    across the domain boundary — the {!map_results} behaviour for
    individually submitted jobs.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a outcome
(** Block until the job finishes. A raising job yields [Error (e, bt)]
    with the worker's backtrace. *)

val await_timeout : 'a future -> float -> 'a outcome option
(** [await_timeout fut seconds] waits up to [seconds] (monotonic clock) and
    returns [None] on deadline expiry. The job itself is {e not} cancelled
    — OCaml domains cannot be killed — so an expired job still occupies its
    worker until it returns; callers account for that in their sizing. *)

val peek : 'a future -> 'a outcome option
(** Non-blocking probe. *)

val run : pool -> (unit -> 'a) -> 'a outcome
(** [submit] then [await]. *)

val shutdown : pool -> unit
(** Stop accepting jobs, let workers drain the queue, and join every domain
    the pool ever spawned. Any job still queued when the last worker exits
    is run inline, so every future submitted before shutdown is fulfilled.
    Idempotent; concurrent {!submit}s during shutdown raise. *)
