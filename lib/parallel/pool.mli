(** Parallel map over OCaml 5 domains — the Section 8.2 optimization.

    The paper parallelizes the independent ABS.Relax jobs of a query across
    OpenMP threads; this module provides the same fan-out with domains. Jobs
    are deterministic-output thunks; the result order matches the input
    order. *)

exception Job_failed of exn
(** Wraps the exception raised by a failed job. *)

val available_cores : unit -> int

val size : unit -> int
(** The worker-domain count to use by default: the value of the
    [ZKQAC_DOMAINS] environment variable if set and non-blank, else
    {!available_cores}.
    @raise Invalid_argument
      if [ZKQAC_DOMAINS] is set to something that is not an integer in
      [1..1024]. *)

val map_results :
  threads:int ->
  (unit -> 'a) list ->
  ('a, exn * Printexc.raw_backtrace) result list
(** Run the thunks on [threads] domains (static block partitioning, like an
    OpenMP static schedule) and collect every job's outcome in input order.
    [threads <= 1] runs inline. A raising job becomes [Error (e, bt)] in its
    slot and does not stop the other jobs — callers that need partial
    results (or a full failure report) get all of them.

    When tracing is enabled ([Zkqac_telemetry.Trace]), the parallel branch
    records a [pool.map] span and each worker domain a [pool.worker] span
    parented on it, so spans recorded inside jobs attach to the calling
    query's trace even though they run on other domains. *)

val map : threads:int -> (unit -> 'a) list -> 'a list
(** {!map_results} with failures re-raised: if any job raised, the failure
    with the lowest job index is re-raised in the caller as [Job_failed e]
    with the worker's backtrace — deterministic even when several jobs fail
    on different domains. *)

val time : (unit -> 'a) -> 'a * float
(** Timing helper for benches. Durations come from {!Monotonic_clock}, so
    they are immune to wall-clock adjustments. *)
