(* SHA-256 per FIPS 180-4. 32-bit words are kept in native ints and masked;
   on a 64-bit OCaml this avoids Int32 boxing in the compression loop. *)

let m32 = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array;           (* 8 chaining words *)
  buf : Bytes.t;           (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int;     (* total bytes hashed *)
  w : int array;           (* message schedule scratch *)
  mutable finished : bool;
}

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
    finished = false;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land m32

let compress ctx block off =
  Zkqac_telemetry.Telemetry.(bump Sha256_compress);
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (t * 4) in
    w.(t) <-
      (Char.code (Bytes.get block i) lsl 24)
      lor (Char.code (Bytes.get block (i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (i + 2)) lsl 8)
      lor Char.code (Bytes.get block (i + 3))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land m32
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land m32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land m32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land m32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land m32
  done;
  h.(0) <- (h.(0) + !a) land m32;
  h.(1) <- (h.(1) + !b) land m32;
  h.(2) <- (h.(2) + !c) land m32;
  h.(3) <- (h.(3) + !d) land m32;
  h.(4) <- (h.(4) + !e) land m32;
  h.(5) <- (h.(5) + !f) land m32;
  h.(6) <- (h.(6) + !g) land m32;
  h.(7) <- (h.(7) + !hh) land m32

let update ctx s =
  if ctx.finished then invalid_arg "Sha256.update: finalized context";
  let n = String.length s in
  ctx.total <- ctx.total + n;
  let pos = ref 0 in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) n in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while n - !pos >= 64 do
    Bytes.blit_string s !pos ctx.buf 0 64;
    compress ctx ctx.buf 0;
    pos := !pos + 64
  done;
  if !pos < n then begin
    Bytes.blit_string s !pos ctx.buf 0 (n - !pos);
    ctx.buf_len <- n - !pos
  end

let finalize ctx =
  if ctx.finished then invalid_arg "Sha256.finalize: already finalized";
  ctx.finished <- true;
  let total_bits = ctx.total * 8 in
  let pad_len =
    let r = (ctx.total + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len - 1 - i) (Char.chr ((total_bits lsr (8 * i)) land 0xff))
  done;
  ctx.finished <- false;
  update ctx (Bytes.to_string pad);
  ctx.finished <- true;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let hex s =
  let d = digest s in
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let digest_list parts =
  let ctx = init () in
  List.iter
    (fun p ->
      let n = String.length p in
      let len = Bytes.create 4 in
      for i = 0 to 3 do
        Bytes.set len i (Char.chr ((n lsr (8 * (3 - i))) land 0xff))
      done;
      update ctx (Bytes.to_string len);
      update ctx p)
    parts;
  finalize ctx
