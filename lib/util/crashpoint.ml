(* Deterministic SIGKILL injection for the crash harness.

   A process started with ZKQAC_CRASH_POINT="<name>" (or "<name>:<n>") kills
   itself with SIGKILL the n-th time execution reaches the named point — no
   atexit handlers, no flushing, exactly the torn state a power cut or OOM
   kill would leave behind. The variable is read once, so a point armed at
   exec time stays armed for the life of the process; unset, every check is
   a single branch. *)

let spec =
  lazy
    (match Sys.getenv_opt "ZKQAC_CRASH_POINT" with
    | None | Some "" -> None
    | Some s -> (
      match String.index_opt s ':' with
      | None -> Some (s, ref 1)
      | Some i ->
        let name = String.sub s 0 i in
        let count = String.sub s (i + 1) (String.length s - i - 1) in
        (match int_of_string_opt count with
        | Some k when k >= 1 -> Some (name, ref k)
        | _ -> Some (name, ref 1))))

let kill_now () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* [armed name] consumes one hit of the countdown and reports whether the
   point should fire now. Callers that need to fabricate a torn state first
   (e.g. write half an audit line) use this and call [kill_now] themselves. *)
let armed name =
  match Lazy.force spec with
  | Some (n, count) when String.equal n name ->
    decr count;
    !count <= 0
  | _ -> false

let maybe name = if armed name then kill_now ()
