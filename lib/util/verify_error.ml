type t =
  | Completeness_gap
  | Bad_abs_signature of string
  | Bad_aps_signature of string
  | Bad_aps_policy of string
  | Record_outside_query of int array
  | Policy_not_satisfied of int array
  | Malformed of { offset : int }
  | Limit_exceeded of { what : string; limit : int }
  | Digest_mismatch of string
  | Envelope_open_failed of string
  | Query_mismatch
  | Invalid_shape of string

let key_string key =
  String.concat "," (Array.to_list (Array.map string_of_int key))

let to_string = function
  | Completeness_gap -> "VO regions do not account for the whole query range"
  | Bad_abs_signature what -> "invalid APP signature: " ^ what
  | Bad_aps_signature what -> "invalid APS signature: " ^ what
  | Bad_aps_policy what -> "inconsistent APS entry: " ^ what
  | Record_outside_query key ->
    Printf.sprintf "record (%s) outside the query range" (key_string key)
  | Policy_not_satisfied key ->
    Printf.sprintf "record (%s) returned but not accessible" (key_string key)
  | Malformed { offset } ->
    if offset < 0 then "malformed input"
    else Printf.sprintf "malformed input at byte %d" offset
  | Limit_exceeded { what; limit } ->
    Printf.sprintf "decode limit exceeded: %s > %d" what limit
  | Digest_mismatch what -> "digest mismatch: " ^ what
  | Envelope_open_failed why -> "cannot open response envelope: " ^ why
  | Query_mismatch -> "response is bound to a different query"
  | Invalid_shape what -> "VO shape invalid for this query type: " ^ what

let code = function
  | Completeness_gap -> "completeness-gap"
  | Bad_abs_signature _ -> "bad-abs-signature"
  | Bad_aps_signature _ -> "bad-aps-signature"
  | Bad_aps_policy _ -> "bad-aps-policy"
  | Record_outside_query _ -> "record-outside-query"
  | Policy_not_satisfied _ -> "policy-not-satisfied"
  | Malformed _ -> "malformed"
  | Limit_exceeded _ -> "limit-exceeded"
  | Digest_mismatch _ -> "digest-mismatch"
  | Envelope_open_failed _ -> "envelope-open-failed"
  | Query_mismatch -> "query-mismatch"
  | Invalid_shape _ -> "invalid-shape"

let exit_code = function
  | Completeness_gap -> 10
  | Bad_abs_signature _ -> 11
  | Bad_aps_signature _ -> 12
  | Bad_aps_policy _ -> 13
  | Record_outside_query _ -> 14
  | Policy_not_satisfied _ -> 15
  | Malformed _ -> 16
  | Limit_exceeded _ -> 17
  | Digest_mismatch _ -> 18
  | Envelope_open_failed _ -> 19
  | Query_mismatch -> 20
  | Invalid_shape _ -> 21

let all_codes =
  List.map code
    [ Completeness_gap;
      Bad_abs_signature "";
      Bad_aps_signature "";
      Bad_aps_policy "";
      Record_outside_query [||];
      Policy_not_satisfied [||];
      Malformed { offset = 0 };
      Limit_exceeded { what = ""; limit = 0 };
      Digest_mismatch "";
      Envelope_open_failed "";
      Query_mismatch;
      Invalid_shape "" ]

let as_aps = function Bad_abs_signature w -> Bad_aps_signature w | e -> e
