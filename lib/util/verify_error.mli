(** Typed verification-failure taxonomy.

    Every client-side rejection — decode failures, resource-limit hits,
    signature mismatches, completeness gaps, envelope failures — is one of
    these constructors, so a rejection can be attributed (which check
    failed), monitored (stable {!code} strings as telemetry attributes), and
    acted on (distinct {!exit_code}s from the CLI). The adversarial suite
    ([zkqac attack]) asserts that each tamper scenario is rejected with the
    specific error its attack class predicts, never a generic catch-all. *)

type t =
  | Completeness_gap
      (** The VO regions do not account for the whole query range — a result
          row, boundary node, or pruned subtree was omitted or shrunk. *)
  | Bad_abs_signature of string
      (** An APP signature on an accessible record failed ABS.Verify; the
          payload names the failing component or equation. *)
  | Bad_aps_signature of string
      (** An APS (relaxed) signature failed to verify under the user's super
          policy — the inaccessibility proof is forged or replayed. *)
  | Bad_aps_policy of string
      (** An APS entry is structurally inconsistent with its claimed region
          (e.g. a leaf region that is not the unit cell of its key). *)
  | Record_outside_query of int array
      (** A returned record's key lies outside the query box. *)
  | Policy_not_satisfied of int array
      (** A record was returned as accessible although the verifying user
          does not satisfy its policy. *)
  | Malformed of { offset : int }
      (** Wire decoding failed at byte [offset] ([-1] when the position is
          unknown): truncation, trailing garbage, inflated length field, or
          an unparseable embedded structure. *)
  | Limit_exceeded of { what : string; limit : int }
      (** A reader resource bound ({!Wire.limits}) was hit before decoding
          could go pathological: oversized input, oversized collection count,
          or nesting too deep. *)
  | Digest_mismatch of string
      (** A checksum or MAC over the payload did not match. *)
  | Envelope_open_failed of string
      (** The CP-ABE response envelope could not be opened (the user's roles
          do not satisfy the sealing policy). *)
  | Query_mismatch
      (** The response is bound to a different query than the one issued. *)
  | Invalid_shape of string
      (** The VO decoded but has the wrong shape for the query type (e.g. an
          equality VO with more than one entry, a duplicated join pair). *)

val to_string : t -> string
(** Human-readable one-line description. *)

val code : t -> string
(** Stable kebab-case tag (one per constructor), used as the value of the
    [verify_error] telemetry span attribute and in the attack matrix. *)

val exit_code : t -> int
(** Distinct CLI exit code per constructor, in [10, 21]. [zkqac verify]
    exits with this on rejection; codes below 10 keep their usual CLI
    meanings. *)

val all_codes : string list
(** Every {!code} value, for exhaustiveness tests and documentation. *)

val as_aps : t -> t
(** Reinterpret a signature failure in APS position:
    [Bad_abs_signature w] becomes [Bad_aps_signature w] (other errors pass
    through) — used by verifiers that share [Abs.verify_result] between APP
    and APS checks. *)
