(* Atomic, durable file replacement.

   The only crash-safe way to replace a file on POSIX is the four-step
   protocol: write a temporary sibling, fsync the temporary, rename it over
   the target, fsync the directory. A crash before the rename leaves the old
   file untouched; a crash after it leaves the new file complete; the
   directory fsync makes the rename itself survive a power cut. At no point
   does the final path hold a partial file.

   Every syscall goes through an injectable shim so tests can simulate torn
   writes, short writes, ENOSPC, and fsync failure and prove the protocol
   never exposes a partial file — faults that cannot be produced on demand
   against a real filesystem. *)

type syscalls = {
  openfile : string -> Unix.open_flag list -> Unix.file_perm -> Unix.file_descr;
  write : Unix.file_descr -> bytes -> int -> int -> int;
  fsync : Unix.file_descr -> unit;
  close : Unix.file_descr -> unit;
  rename : string -> string -> unit;
  unlink : string -> unit;
}

let real =
  {
    openfile = Unix.openfile;
    write = Unix.write;
    fsync = Unix.fsync;
    close = Unix.close;
    rename = Unix.rename;
    unlink = Unix.unlink;
  }

let shim = ref real

let with_syscalls sc f =
  let saved = !shim in
  shim := sc;
  Fun.protect ~finally:(fun () -> shim := saved) f

type error = { op : string; path : string; message : string }

let error_to_string e = Printf.sprintf "%s(%s): %s" e.op e.path e.message

(* Directory fsync is what makes a completed rename durable. Failure here is
   reported like any other step: the caller decides whether "the data is on
   disk but the directory entry may not survive a power cut" is acceptable. *)
let fsync_dir dir =
  let sc = !shim in
  match sc.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error { op = "open-dir"; path = dir; message = Unix.error_message e }
  | fd -> (
    let res =
      match sc.fsync fd with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
        Error { op = "fsync-dir"; path = dir; message = Unix.error_message e }
    in
    match sc.close fd with
    | () -> res
    | exception Unix.Unix_error (e, _, _) -> (
      match res with
      | Ok () -> Error { op = "close-dir"; path = dir; message = Unix.error_message e }
      | err -> err))

let replace ?(fsync_directory = true) ~path data =
  let sc = !shim in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fail op message = Error { op; path; message } in
  let cleanup_tmp () = try sc.unlink tmp with Unix.Unix_error _ | Sys_error _ -> () in
  let write_tmp () =
    match
      sc.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
    with
    | exception Unix.Unix_error (e, _, _) -> fail "open" (Unix.error_message e)
    | fd ->
      let buf = Bytes.unsafe_of_string data in
      let n = Bytes.length buf in
      let rec push off =
        if off >= n then Ok ()
        else begin
          Crashpoint.maybe "durable-mid-write";
          match sc.write fd buf off (n - off) with
          | 0 -> Error "write advanced zero bytes"
          | k -> push (off + k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        end
      in
      let res =
        match push 0 with
        | Error m -> fail "write" m
        | Ok () -> (
          match sc.fsync fd with
          | () -> Ok ()
          | exception Unix.Unix_error (e, _, _) -> fail "fsync" (Unix.error_message e))
      in
      (* close errors after a clean fsync still mean the data may not be
         durable (NFS reports deferred write errors here) — surface them. *)
      (match sc.close fd with
      | () -> res
      | exception Unix.Unix_error (e, _, _) -> (
        match res with
        | Ok () -> fail "close" (Unix.error_message e)
        | err -> err))
  in
  match write_tmp () with
  | Error _ as e ->
    cleanup_tmp ();
    e
  | Ok () -> (
    Crashpoint.maybe "durable-pre-rename";
    match sc.rename tmp path with
    | exception Unix.Unix_error (e, _, _) ->
      cleanup_tmp ();
      fail "rename" (Unix.error_message e)
    | () ->
      Crashpoint.maybe "durable-post-rename";
      if fsync_directory then fsync_dir (Filename.dirname path) else Ok ())
