(** Atomic, durable file replacement: write temp → fsync → rename → fsync dir.

    [replace] never exposes a partial file at the final path: until the rename
    the old contents are intact, and after it the new contents are complete.
    All syscalls route through an injectable shim so tests can simulate torn
    writes, short writes, ENOSPC, and fsync failure. *)

type syscalls = {
  openfile : string -> Unix.open_flag list -> Unix.file_perm -> Unix.file_descr;
  write : Unix.file_descr -> bytes -> int -> int -> int;
  fsync : Unix.file_descr -> unit;
  close : Unix.file_descr -> unit;
  rename : string -> string -> unit;
  unlink : string -> unit;
}

val real : syscalls
(** The genuine [Unix] syscalls — the default shim. *)

val with_syscalls : syscalls -> (unit -> 'a) -> 'a
(** [with_syscalls sc f] runs [f] with the shim replaced by [sc], restoring
    the previous shim on return or exception. Test-only fault injection. *)

type error = { op : string; path : string; message : string }

val error_to_string : error -> string

val replace :
  ?fsync_directory:bool -> path:string -> string -> (unit, error) result
(** [replace ~path data] atomically replaces the contents of [path] with
    [data]. On error the temporary sibling is removed and whatever previously
    lived at [path] is untouched. [fsync_directory] (default [true]) controls
    the final directory fsync that makes the rename power-cut durable. *)

val fsync_dir : string -> (unit, error) result
(** fsync a directory, making previously-completed renames/creates in it
    durable. *)
