(* Minimal length-prefixed binary writer/reader used by the VO codecs. *)

type writer = Buffer.t

let writer () = Buffer.create 256

let u8 buf v =
  if v < 0 || v > 0xff then invalid_arg "Wire.u8";
  Buffer.add_char buf (Char.chr v)

let max_u32 = 0xffff_ffff

let u32 buf v =
  (* Out-of-range values must be rejected, not silently truncated: a 2^32
     length would otherwise round-trip as 0 and corrupt every later field. *)
  if v < 0 || v > max_u32 then invalid_arg "Wire.u32";
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let bytes buf s =
  u32 buf (String.length s);
  Buffer.add_string buf s

let int_array buf a =
  u8 buf (Array.length a);
  Array.iter (fun v -> u32 buf v) a

let contents = Buffer.contents

type reader = { data : string; mutable pos : int }

exception Malformed

let reader data = { data; pos = 0 }

let ru8 r =
  if r.pos + 1 > String.length r.data then raise Malformed;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru32 r =
  if r.pos + 4 > String.length r.data then raise Malformed;
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos];
    r.pos <- r.pos + 1
  done;
  !v

let rbytes r =
  let n = ru32 r in
  if r.pos + n > String.length r.data then raise Malformed;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rint_array r =
  let n = ru8 r in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (ru32 r :: acc) in
  Array.of_list (go n [])

let at_end r = r.pos = String.length r.data
