(* Minimal length-prefixed binary writer/reader used by the VO codecs.

   The reader side treats its input as hostile: besides the usual bounds
   checks (raising [Malformed]), every reader carries resource [limits] —
   maximum input size, maximum collection count, maximum nesting depth — so
   that a VO with an inflated length field, a huge element count, or a
   deeply nested structure is rejected up front ([Limit]) instead of driving
   the decoder into pathological allocation or recursion. *)

type writer = Buffer.t

let writer () = Buffer.create 256

let u8 buf v =
  if v < 0 || v > 0xff then invalid_arg "Wire.u8";
  Buffer.add_char buf (Char.chr v)

let max_u32 = 0xffff_ffff

let u32 buf v =
  (* Out-of-range values must be rejected, not silently truncated: a 2^32
     length would otherwise round-trip as 0 and corrupt every later field. *)
  if v < 0 || v > max_u32 then invalid_arg "Wire.u32";
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let u64 buf (v : int64) =
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done

let bytes buf s =
  u32 buf (String.length s);
  Buffer.add_string buf s

let int_array buf a =
  u8 buf (Array.length a);
  Array.iter (fun v -> u32 buf v) a

let contents = Buffer.contents

(* --- reader --- *)

type limits = { max_bytes : int; max_collection : int; max_depth : int }

(* Each bound is overridable via ZKQAC_WIRE_MAX_{BYTES,COLLECTION,DEPTH};
   like ZKQAC_DOMAINS, a nonsense value fails loudly instead of silently
   running with a bound the operator did not ask for. *)
let env_limit name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some raw ->
    let s = String.trim raw in
    if s = "" then default
    else begin
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | Some n -> invalid_arg (Printf.sprintf "%s=%d out of range (want >= 1)" name n)
      | None -> invalid_arg (Printf.sprintf "%s=%S is not an integer" name raw)
    end

let limits_of_env () =
  {
    max_bytes = env_limit "ZKQAC_WIRE_MAX_BYTES" (1 lsl 30);
    max_collection = env_limit "ZKQAC_WIRE_MAX_COLLECTION" (1 lsl 20);
    max_depth = env_limit "ZKQAC_WIRE_MAX_DEPTH" 96;
  }

(* Generous production defaults: a multi-GB VO, a million-entry collection
   or a 96-deep recursion is outside anything the system produces; anything
   beyond is an attack or a bug, and either way must fail cleanly. Read from
   the environment once, at startup — so a daemon serving hostile traffic
   can be tightened without a rebuild. *)
let default_limits = limits_of_env ()

type reader = {
  data : string;
  mutable pos : int;
  limits : limits;
  mutable depth : int;
}

exception Malformed
exception Limit of { what : string; limit : int }

(* Resource-limit hits are the signature of hostile input, so each one goes
   into the always-on flight recorder before the exception unwinds. *)
let limit_hit what limit =
  Zkqac_telemetry.Flight.record ~cat:"wire" ~detail:what ~v:limit "wire.limit";
  raise (Limit { what; limit })

let reader ?(limits = default_limits) data =
  if String.length data > limits.max_bytes then
    limit_hit "input bytes" limits.max_bytes;
  { data; pos = 0; limits; depth = 0 }

let pos r = r.pos
let remaining r = String.length r.data - r.pos

let ru8 r =
  if r.pos + 1 > String.length r.data then raise Malformed;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru32 r =
  if r.pos + 4 > String.length r.data then raise Malformed;
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos];
    r.pos <- r.pos + 1
  done;
  !v

let ru64 r =
  if r.pos + 8 > String.length r.data then raise Malformed;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.pos]));
    r.pos <- r.pos + 1
  done;
  !v

let rbytes r =
  let n = ru32 r in
  if r.pos + n > String.length r.data then raise Malformed;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rint_array r =
  let n = ru8 r in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (ru32 r :: acc) in
  Array.of_list (go n [])

(* A u32 collection count, bounded twice over: by the configured maximum,
   and by the bytes actually remaining (every element costs at least one
   byte), so an inflated count fails before its first iteration. *)
let rcount r =
  let n = ru32 r in
  if n > r.limits.max_collection then
    limit_hit "collection count" r.limits.max_collection;
  if n > remaining r then raise Malformed;
  n

(* Depth-guarded recursion for decoders of tree-shaped structures. *)
let nested r f =
  r.depth <- r.depth + 1;
  if r.depth > r.limits.max_depth then
    limit_hit "nesting depth" r.limits.max_depth;
  let v = f () in
  r.depth <- r.depth - 1;
  v

let at_end r = r.pos = String.length r.data

(* Run a decoding function over hostile bytes, translating every failure
   mode into a typed {!Verify_error.t}: resource bounds to [Limit_exceeded],
   anything else (including exceptions escaping embedded parsers) to
   [Malformed] at the current read position. Trailing bytes are rejected —
   every top-level decoder built on [decode] gets that check for free. *)
let decode ?limits data f =
  match reader ?limits data with
  | exception Limit { what; limit } ->
    Error (Verify_error.Limit_exceeded { what; limit })
  | r -> (
    match f r with
    | v ->
      if at_end r then Ok v
      else Error (Verify_error.Malformed { offset = r.pos })
    | exception Limit { what; limit } ->
      Error (Verify_error.Limit_exceeded { what; limit })
    | exception (Malformed | Invalid_argument _ | Failure _) ->
      Error (Verify_error.Malformed { offset = r.pos }))
