(** SIGKILL self at named execution points, armed via [ZKQAC_CRASH_POINT].

    The variable holds ["name"] or ["name:n"]; the n-th time the named point
    is reached the process SIGKILLs itself, leaving exactly the on-disk state
    a crash at that instant would leave. Unarmed, every check is one branch. *)

val maybe : string -> unit
(** [maybe name] kills the process if the named point's countdown expires. *)

val armed : string -> bool
(** [armed name] consumes one countdown hit and returns [true] when the point
    should fire; the caller fabricates its torn state and calls [kill_now]. *)

val kill_now : unit -> unit
(** Send SIGKILL to the current process. *)
