(** GC pause attribution from the OCaml runtime-events ring.

    A monitor domain consumes [Runtime_events] GC phase events
    ([EV_MINOR], [EV_MAJOR_SLICE]) for the whole process and turns them
    into three views:

    - per-domain pause totals and maxima (exposed as [Metrics] gauges),
    - per-stage pause attribution: {!Trace.with_span} samples
      {!pause_mark} at open and calls {!note_stage} at close, so the GC
      time a span absorbed lands next to its {!Alloc} word attribution,
    - a bounded buffer of raw pause {!slice}s that the Perfetto export
      renders as extra tracks alongside spans.

    Runtime-events ring indices identify ring slots, not domains, and
    slots are reused as domains spawn and die. {!announce} (called from
    {!start} and from every [Pool] worker) writes a user event carrying
    [Domain.self], letting the monitor map each ring to the domain
    currently writing to it; unmapped rings are labelled ["ring<i>"].

    Attribution is asynchronous: totals advance when the monitor polls
    (default every 500 µs), so a mark/note pair around a very short span
    may observe no delta. *)

type slice = {
  sl_ring : int;
  sl_domain : int;  (** -1 when the ring was never announced *)
  sl_gc : string;  (** "minor" or "major" *)
  sl_t0 : int64;  (** absolute runtime-events timestamp, ns *)
  sl_t1 : int64;
}

type dom_stats = {
  label : string;  (** domain id, or ["ring<i>"] for unmapped rings *)
  minor_s : float;
  major_s : float;
  minor_max_s : float;
  major_max_s : float;
  minor_n : int;
  major_n : int;
}

val start : ?poll_us:int -> unit -> unit
(** Start runtime events and the monitor domain. Idempotent. *)

val stop : unit -> unit
(** Drain remaining events and join the monitor domain. Idempotent. *)

val started : unit -> bool

val announce : unit -> unit
(** Tell the monitor which domain writes to the caller's ring slot.
    No-op when not started. *)

val pause_mark : unit -> int64 * int64
(** Current (minor, major) pause totals in ns attributed to the calling
    domain; [(0L, 0L)] when not started. *)

val note_stage : string -> int64 * int64 -> unit
(** [note_stage stage mark] adds the pause time accumulated since [mark]
    to [stage]'s attribution table. *)

val domain_snapshot : unit -> dom_stats list
(** Sorted by label. *)

val stage_snapshot : unit -> (string * (int * float * float)) list
(** [(stage, (spans_with_pauses, minor_s, major_s))], sorted by stage. *)

val slices : unit -> slice list
(** Oldest first; bounded, see {!slices_dropped}. *)

val slices_dropped : unit -> int

val reset : unit -> unit
(** Clear totals, stage table and slices (tests); keeps the monitor and
    ring mappings alive. *)
