(* Log-bucketed latency histograms, HDR-style: 16 linear sub-buckets per
   power-of-two octave, so any recorded value lands in a bucket whose width
   is at most 1/16 of its magnitude (quantile error <= ~6%). Buckets are
   plain int counts, which makes histograms mergeable (and diffable) by
   pointwise addition (subtraction).

   A global registry maps stage names to histograms. Recording goes through
   a per-domain table (domain-local storage), so the hot path takes no lock;
   [snapshot] merges all per-domain tables under a mutex. *)

let sub_bits = 4 (* 16 sub-buckets per octave *)
let sub = 1 lsl sub_bits
let num_buckets = 16 * 60 (* covers durations up to ~2^63 ns *)

type t = {
  counts : int array;
  mutable total : int;
  mutable sum_ns : float;
}

let create () = { counts = Array.make num_buckets 0; total = 0; sum_ns = 0.0 }

let bucket_of_ns ns =
  if ns < sub then max 0 ns
  else begin
    (* e = floor(log2 ns) >= sub_bits *)
    let e = ref sub_bits in
    while ns lsr (!e + 1) > 0 do
      incr e
    done;
    let offset = (ns - (1 lsl !e)) lsr (!e - sub_bits) in
    min (num_buckets - 1) ((sub * (!e - sub_bits + 1)) + offset)
  end

(* Inclusive-lo / exclusive-hi bounds of bucket [b], in ns. *)
let bucket_bounds b =
  if b < sub then (float_of_int b, float_of_int (b + 1))
  else begin
    let g = b / sub and offset = b mod sub in
    let e = g + sub_bits - 1 in
    let step = float_of_int (1 lsl (e - sub_bits)) in
    let lo = float_of_int (1 lsl e) +. (float_of_int offset *. step) in
    (lo, lo +. step)
  end

let record t ns =
  let b = bucket_of_ns ns in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.sum_ns <- t.sum_ns +. float_of_int ns

let count t = t.total
let mean_ns t = if t.total = 0 then 0.0 else t.sum_ns /. float_of_int t.total

(* Min/max are derived from the bucket counts (lower bound of the first /
   last nonempty bucket), so they stay exact under merge and diff at the
   cost of bucket resolution (<= ~6% of the value). *)
let min_ns t =
  let rec find b =
    if b >= num_buckets then 0.0
    else if t.counts.(b) > 0 then fst (bucket_bounds b)
    else find (b + 1)
  in
  find 0

let max_ns t =
  let rec find b =
    if b < 0 then 0.0
    else if t.counts.(b) > 0 then fst (bucket_bounds b)
    else find (b - 1)
  in
  find (num_buckets - 1)

(* Sparse bucket view: (bucket index, count) for nonempty buckets, in
   index order. The inverse [of_buckets] reconstructs a histogram whose
   sum (hence mean) is approximated from bucket midpoints — it is how
   BENCH.json readers recover a resampleable distribution. *)
let buckets t =
  let out = ref [] in
  for b = num_buckets - 1 downto 0 do
    if t.counts.(b) > 0 then out := (b, t.counts.(b)) :: !out
  done;
  !out

let of_buckets sparse =
  let t = create () in
  List.iter
    (fun (b, c) ->
      if b < 0 || b >= num_buckets then
        invalid_arg (Printf.sprintf "Histogram.of_buckets: bucket %d" b);
      if c < 0 then invalid_arg "Histogram.of_buckets: negative count";
      t.counts.(b) <- t.counts.(b) + c;
      t.total <- t.total + c;
      let lo, hi = bucket_bounds b in
      t.sum_ns <- t.sum_ns +. (float_of_int c *. ((lo +. hi) /. 2.0)))
    sparse;
  t

let merge a b =
  {
    counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
    total = a.total + b.total;
    sum_ns = a.sum_ns +. b.sum_ns;
  }

(* [quantile t q] interpolates the q-quantile (q in [0,1]) from the bucket
   counts: the fractional rank q*(n-1) is located in its bucket and mapped
   linearly across the bucket's bounds. *)
let quantile t q =
  if t.total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int (t.total - 1) in
    let rec find b cum_before =
      if b >= num_buckets then fst (bucket_bounds (num_buckets - 1))
      else begin
        let c = t.counts.(b) in
        if c > 0 && rank < float_of_int (cum_before + c) then begin
          let lo, hi = bucket_bounds b in
          let pos = (rank -. float_of_int cum_before +. 0.5) /. float_of_int c in
          lo +. (Float.min 1.0 pos *. (hi -. lo))
        end
        else find (b + 1) (cum_before + c)
      end
    in
    find 0 0
  end

let to_json t =
  let ms ns = ns /. 1e6 in
  Json.Obj
    [ ("count", Json.Int t.total);
      ("mean_ms", Json.Float (ms (mean_ns t)));
      ("min_ms", Json.Float (ms (min_ns t)));
      ("max_ms", Json.Float (ms (max_ns t)));
      ("p50_ms", Json.Float (ms (quantile t 0.5)));
      ("p95_ms", Json.Float (ms (quantile t 0.95)));
      ("p99_ms", Json.Float (ms (quantile t 0.99)));
      ( "buckets",
        Json.Arr
          (List.map
             (fun (b, c) -> Json.Arr [ Json.Int b; Json.Int c ])
             (buckets t)) ) ]

(* --- the per-stage registry --- *)

let registry_lock = Mutex.create ()
let tables : (string, t) Hashtbl.t list ref = ref []

let dls =
  Domain.DLS.new_key (fun () ->
      let tbl : (string, t) Hashtbl.t = Hashtbl.create 16 in
      Mutex.lock registry_lock;
      tables := tbl :: !tables;
      Mutex.unlock registry_lock;
      tbl)

let note name ns =
  let tbl = Domain.DLS.get dls in
  let h =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
      let h = create () in
      Hashtbl.add tbl name h;
      h
  in
  record h ns

let snapshot () =
  Mutex.lock registry_lock;
  let merged : (string, t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt merged name with
          | Some acc -> Hashtbl.replace merged name (merge acc h)
          | None -> Hashtbl.replace merged name (merge (create ()) h))
        tbl)
    !tables;
  Mutex.unlock registry_lock;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])

let diff ~earlier ~later =
  List.filter_map
    (fun (name, (l : t)) ->
      let d =
        match List.assoc_opt name earlier with
        | None -> l
        | Some e ->
          {
            counts = Array.mapi (fun i c -> max 0 (c - e.counts.(i))) l.counts;
            total = max 0 (l.total - e.total);
            sum_ns = Float.max 0.0 (l.sum_ns -. e.sum_ns);
          }
      in
      if d.total = 0 then None else Some (name, d))
    later

let reset () =
  Mutex.lock registry_lock;
  List.iter Hashtbl.reset !tables;
  Mutex.unlock registry_lock

let snapshot_json snap =
  Json.Obj (List.map (fun (name, h) -> (name, to_json h)) snap)
