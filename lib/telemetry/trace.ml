(* Hierarchical query tracing.

   A span is one timed region of one domain, with an explicit parent link —
   either inherited from the innermost open span of the calling domain, or
   passed explicitly (how Pool hands the caller's context to its worker
   domains). Closed spans go into a per-domain buffer; nothing is shared on
   the recording path except one atomic decrement of the global span budget,
   so relax jobs fanned out across domains record without contention.

   The budget bounds retained memory: once [capacity] spans are stored, new
   spans are counted in [dropped] and discarded. Span closes also feed
   {!Histogram} and {!Alloc} (always, when measuring) and the aggregate
   per-stage table that [Telemetry.snapshot] reports (when telemetry is
   enabled). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  id : int;
  parent : int; (* 0 = no parent *)
  root : int; (* id of the root span of this span's tree (= id for roots) *)
  name : string;
  tid : int;
  t0 : int64;
  mutable t1 : int64;
  mutable attrs : (string * value) list;
}

type ctx = span option

let none : ctx = None
let ctx_id : ctx -> int = function Some sp -> sp.id | None -> 0
let ctx_root : ctx -> int = function Some sp -> sp.root | None -> 0
let on = Switch.tracing_on
let enabled () = Atomic.get on

let default_capacity = 1 lsl 16
let capacity = Atomic.make default_capacity
let remaining = Atomic.make 0
let dropped_ctr = Atomic.make 0
let next_id = Atomic.make 1
let now_ns () = Monotonic_clock.now ()
let t_zero = Atomic.make 0L

(* --- per-domain buffers --- *)

type dstate = {
  tid : int;
  dm : Mutex.t;
      (* several sys-threads can share one domain (the server's connection
         handlers all live on domain 0), so the stack and buffer mutations
         below are guarded; the lock is per-domain and almost always
         uncontended. *)
  mutable buf : span array;
  mutable len : int;
  mutable stack : span list; (* open spans, innermost first *)
}

let reg_lock = Mutex.create ()
let states : dstate list ref = ref []

let dls =
  Domain.DLS.new_key (fun () ->
      let d =
        { tid = (Domain.self () :> int);
          dm = Mutex.create ();
          buf = [||];
          len = 0;
          stack = [] }
      in
      Mutex.lock reg_lock;
      states := d :: !states;
      Mutex.unlock reg_lock;
      d)

(* Caller holds [d.dm]. *)
let push d sp =
  if Atomic.fetch_and_add remaining (-1) > 0 then begin
    if d.len = Array.length d.buf then begin
      let grown = Array.make (max 64 (2 * Array.length d.buf)) sp in
      Array.blit d.buf 0 grown 0 d.len;
      d.buf <- grown
    end;
    d.buf.(d.len) <- sp;
    d.len <- d.len + 1
  end
  else Atomic.incr dropped_ctr

(* --- aggregate per-stage stats (what Telemetry.snapshot reports) --- *)

type stage_stat = { calls : int; seconds : float }

let stage_lock = Mutex.create ()
let stage_table : (string, stage_stat) Hashtbl.t = Hashtbl.create 16

let stage_record name dt_s =
  Mutex.lock stage_lock;
  let cur =
    match Hashtbl.find_opt stage_table name with
    | Some s -> s
    | None -> { calls = 0; seconds = 0.0 }
  in
  Hashtbl.replace stage_table name
    { calls = cur.calls + 1; seconds = cur.seconds +. dt_s };
  Mutex.unlock stage_lock

let stage_snapshot () =
  Mutex.lock stage_lock;
  let out = Hashtbl.fold (fun k v acc -> (k, v) :: acc) stage_table [] in
  Mutex.unlock stage_lock;
  out

let stage_reset () =
  Mutex.lock stage_lock;
  Hashtbl.reset stage_table;
  Mutex.unlock stage_lock

(* --- recording --- *)

let current () : ctx =
  let d = Domain.DLS.get dls in
  Mutex.lock d.dm;
  let c = match d.stack with s :: _ -> Some s | [] -> None in
  Mutex.unlock d.dm;
  c

let set_attrs (ctx : ctx) kvs =
  match ctx with None -> () | Some sp -> sp.attrs <- sp.attrs @ kvs

let set_attr ctx k v = set_attrs ctx [ (k, v) ]

(* A closed span, for programmatic consumption (timestamps relative to the
   last enable/reset). Defined here because the close hook below receives
   one. *)
type info = {
  span_id : int;
  span_parent : int;
  span_root : int;
  span_name : string;
  span_tid : int;
  start_ns : int64;
  dur_ns : int64;
  span_attrs : (string * value) list;
}

let info_of_span zero sp =
  {
    span_id = sp.id;
    span_parent = sp.parent;
    span_root = sp.root;
    span_name = sp.name;
    span_tid = sp.tid;
    start_ns = Int64.sub sp.t0 zero;
    dur_ns = Int64.sub sp.t1 sp.t0;
    span_attrs = sp.attrs;
  }

(* One process-wide close hook, fired (when tracing is on) for every span as
   it closes — independent of the retention budget, so a consumer like the
   server's slow-query log still sees complete trees after the export buffer
   has filled up. The hook must be fast and must not raise. *)
let close_hook : (info -> unit) option Atomic.t = Atomic.make None
let set_close_hook h = Atomic.set close_hook h

let with_span ?parent ?(attrs = []) name f =
  let tracing = Atomic.get on in
  if not (tracing || Atomic.get Switch.telemetry_on) then
    if not (Flight.enabled ()) then f none
    else begin
      (* Tracing and telemetry are off, but the flight recorder still wants
         the span close: two clock reads and one ring store per span. *)
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          Flight.record ~cat:"span"
            ~v:(Int64.to_int (Int64.sub (now_ns ()) t0))
            name)
        (fun () -> f none)
    end
  else begin
    let d = Domain.DLS.get dls in
    let parent_sp =
      match parent with
      | Some (Some p : ctx) -> Some p
      | Some None -> None
      | None -> (
        Mutex.lock d.dm;
        let p = match d.stack with s :: _ -> Some s | [] -> None in
        Mutex.unlock d.dm;
        p)
    in
    let id = Atomic.fetch_and_add next_id 1 in
    let sp =
      {
        id;
        parent = (match parent_sp with Some p -> p.id | None -> 0);
        (* A child inherits its tree's root id, so any span can be joined
           back to its request without walking parent links. *)
        root = (match parent_sp with Some p -> p.root | None -> id);
        name;
        tid = d.tid;
        t0 = now_ns ();
        t1 = 0L;
        attrs;
      }
    in
    if tracing then begin
      Mutex.lock d.dm;
      d.stack <- sp :: d.stack;
      Mutex.unlock d.dm
    end;
    (* Domain-local allocation counters (minor, promoted, major words):
       the close-time deltas attribute this span's allocation to its stage
       (inclusive of children, like wall time). *)
    let mi0, pr0, ma0 = Gc.counters () in
    let gc_mark = Rte.pause_mark () in
    Fun.protect
      ~finally:(fun () ->
        sp.t1 <- now_ns ();
        if tracing then begin
          Mutex.lock d.dm;
          (* Interleaved sys-threads on one domain can close out of stack
             order; remove this span wherever it sits. *)
          (match d.stack with
          | s :: rest when s == sp -> d.stack <- rest
          | stack -> d.stack <- List.filter (fun s -> not (s == sp)) stack);
          push d sp;
          Mutex.unlock d.dm
        end;
        let ns = Int64.to_int (Int64.sub sp.t1 sp.t0) in
        Histogram.note name ns;
        let mi1, pr1, ma1 = Gc.counters () in
        Alloc.note name ~minor:(mi1 -. mi0) ~promoted:(pr1 -. pr0)
          ~major:(ma1 -. ma0);
        Rte.note_stage name gc_mark;
        Flight.record ~cat:"span" ~v:ns name;
        if tracing then (
          match Atomic.get close_hook with
          | None -> ()
          | Some h -> ( try h (info_of_span (Atomic.get t_zero) sp) with _ -> ()));
        if Atomic.get Switch.telemetry_on then
          stage_record name (float_of_int ns *. 1e-9))
      (fun () -> f (Some sp))
  end

(* --- switching --- *)

let reset () =
  Mutex.lock reg_lock;
  List.iter
    (fun d ->
      d.len <- 0;
      d.buf <- [||])
    !states;
  Mutex.unlock reg_lock;
  Atomic.set remaining (Atomic.get capacity);
  Atomic.set dropped_ctr 0;
  Atomic.set t_zero (now_ns ())

let enable ?capacity:(cap = default_capacity) () =
  if cap < 1 then invalid_arg "Trace.enable: capacity must be positive";
  Atomic.set capacity cap;
  reset ();
  Atomic.set on true

let disable () = Atomic.set on false
let dropped () = Atomic.get dropped_ctr

(* --- export --- *)

let spans () =
  Mutex.lock reg_lock;
  let collected =
    List.concat_map
      (fun d ->
        let buf = d.buf in
        let len = min d.len (Array.length buf) in
        List.init len (fun i -> buf.(i)))
      !states
  in
  Mutex.unlock reg_lock;
  let zero = Atomic.get t_zero in
  collected
  |> List.map (info_of_span zero)
  |> List.sort (fun a b ->
         match Int64.compare a.start_ns b.start_ns with
         | 0 -> compare a.span_id b.span_id
         | c -> c)

let span_count () =
  Mutex.lock reg_lock;
  let n = List.fold_left (fun acc d -> acc + d.len) 0 !states in
  Mutex.unlock reg_lock;
  n

let value_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

(* Chrome trace-event JSON (the Perfetto / chrome://tracing format): one
   complete ("X") event per span, ts/dur in microseconds, tid = domain id.
   Span ids, root ids and parent links ride along in "args". *)
let chrome_meta sps =
  let tids = List.sort_uniq compare (List.map (fun s -> s.span_tid) sps) in
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.Str "zkqac") ]) ]
  :: List.map
       (fun tid ->
         Json.Obj
           [ ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" tid)) ]) ])
       tids

let chrome_event s =
  Json.Obj
    [ ("name", Json.Str s.span_name);
      ("cat", Json.Str "zkqac");
      ("ph", Json.Str "X");
      ("ts", Json.Float (Int64.to_float s.start_ns /. 1e3));
      ("dur", Json.Float (Int64.to_float s.dur_ns /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int s.span_tid);
      ( "args",
        Json.Obj
          (("id", Json.Int s.span_id)
           :: (if s.span_parent = 0 then []
               else [ ("parent", Json.Int s.span_parent) ])
          @ (if s.span_root = 0 || s.span_root = s.span_id then []
             else [ ("root", Json.Int s.span_root) ])
          @ List.map (fun (k, v) -> (k, value_json v)) s.span_attrs) ) ]

(* Per-incident export: a trace file holding just the given spans (how the
   server's slow-query log writes one Perfetto file per sampled request).
   No GC slices — those are only meaningful against the full trace. *)
let chrome_json_of_spans sps =
  Json.Obj
    [ ("traceEvents", Json.Arr (chrome_meta sps @ List.map chrome_event sps));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("tool", Json.Str "zkqac") ]) ]

let chrome_json () =
  let sps = spans () in
  let meta = chrome_meta sps in
  let event = chrome_event in
  (* GC pause slices from the runtime-events bridge ride along as extra
     tracks (tid 1000+domain), so pauses line up under the spans that
     absorbed them. Both clocks are CLOCK_MONOTONIC, so subtracting the
     trace epoch aligns them; slices from before [enable] are dropped. *)
  let zero = Atomic.get t_zero in
  let gc_slices = List.filter (fun s -> s.Rte.sl_t0 >= zero) (Rte.slices ()) in
  let gc_tid (s : Rte.slice) =
    1000 + (if s.sl_domain >= 0 then s.sl_domain else 100 + s.sl_ring)
  in
  let gc_meta =
    List.sort_uniq compare (List.map gc_tid gc_slices)
    |> List.map (fun tid ->
           Json.Obj
             [ ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "gc (tid %d)" tid)) ]) ])
  in
  let gc_event (s : Rte.slice) =
    Json.Obj
      [ ("name", Json.Str ("gc." ^ s.sl_gc));
        ("cat", Json.Str "gc");
        ("ph", Json.Str "X");
        ("ts", Json.Float (Int64.to_float (Int64.sub s.sl_t0 zero) /. 1e3));
        ("dur", Json.Float (Int64.to_float (Int64.sub s.sl_t1 s.sl_t0) /. 1e3));
        ("pid", Json.Int 1);
        ("tid", Json.Int (gc_tid s));
        ( "args",
          Json.Obj
            [ ("ring", Json.Int s.sl_ring);
              ( "domain",
                if s.sl_domain >= 0 then Json.Int s.sl_domain else Json.Str "unknown" ) ] ) ]
  in
  Json.Obj
    [ ( "traceEvents",
        Json.Arr (meta @ gc_meta @ List.map event sps @ List.map gc_event gc_slices) );
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [ ("tool", Json.Str "zkqac");
            ("dropped_spans", Json.Int (dropped ())) ] ) ]

let write_chrome path = Json.to_file path (chrome_json ())

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let print_tree oc =
  let sps = spans () in
  let ids = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace ids s.span_id ()) sps;
  let children = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if s.span_parent <> 0 && Hashtbl.mem ids s.span_parent then
        Hashtbl.replace children s.span_parent
          (s :: (try Hashtbl.find children s.span_parent with Not_found -> [])))
    sps;
  let attrs_str s =
    if s.span_attrs = [] then ""
    else
      Printf.sprintf " {%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) s.span_attrs))
  in
  let rec print indent s =
    Printf.fprintf oc "%s%-24s %10.3f ms  [tid %d]%s\n" indent s.span_name
      (Int64.to_float s.dur_ns /. 1e6)
      s.span_tid (attrs_str s);
    List.iter (print (indent ^ "  "))
      (List.rev (try Hashtbl.find children s.span_id with Not_found -> []))
  in
  let roots =
    List.filter
      (fun s -> s.span_parent = 0 || not (Hashtbl.mem ids s.span_parent))
      sps
  in
  List.iter (print "") roots;
  let d = dropped () in
  if d > 0 then Printf.fprintf oc "(%d span(s) dropped: ring capacity reached)\n" d
