(* Per-stage GC/allocation attribution.

   [Trace.with_span] samples the domain-local allocation counters
   ([Gc.counters]: minor, promoted, major words — all attributed to the
   calling domain on OCaml 5) around every measured span and feeds the
   deltas here. Like [Histogram], recording goes through a per-domain table
   (domain-local storage) so the hot path takes no lock; snapshots merge
   all per-domain tables under a mutex. Keeping the per-domain tables also
   gives per-worker-domain attribution of the [Pool] fan-out for free. *)

type cell = {
  mutable count : int;
  mutable minor : float; (* words allocated in the minor heap *)
  mutable promoted : float; (* words promoted minor -> major *)
  mutable major : float; (* words allocated directly in the major heap *)
}

let zero () = { count = 0; minor = 0.0; promoted = 0.0; major = 0.0 }

type dstate = { tid : int; tbl : (string, cell) Hashtbl.t }

let reg_lock = Mutex.create ()
let states : dstate list ref = ref []

let dls =
  Domain.DLS.new_key (fun () ->
      let d = { tid = (Domain.self () :> int); tbl = Hashtbl.create 16 } in
      Mutex.lock reg_lock;
      states := d :: !states;
      Mutex.unlock reg_lock;
      d)

(* Negative deltas can only come from counter approximation glitches; clamp
   so a snapshot is always monotone. *)
let note name ~minor ~promoted ~major =
  let d = Domain.DLS.get dls in
  let c =
    match Hashtbl.find_opt d.tbl name with
    | Some c -> c
    | None ->
      let c = zero () in
      Hashtbl.add d.tbl name c;
      c
  in
  c.count <- c.count + 1;
  c.minor <- c.minor +. Float.max 0.0 minor;
  c.promoted <- c.promoted +. Float.max 0.0 promoted;
  c.major <- c.major +. Float.max 0.0 major

let add into c =
  into.count <- into.count + c.count;
  into.minor <- into.minor +. c.minor;
  into.promoted <- into.promoted +. c.promoted;
  into.major <- into.major +. c.major

let snapshot () =
  Mutex.lock reg_lock;
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.iter
        (fun name c ->
          match Hashtbl.find_opt merged name with
          | Some acc -> add acc c
          | None ->
            let acc = zero () in
            add acc c;
            Hashtbl.replace merged name acc)
        d.tbl)
    !states;
  Mutex.unlock reg_lock;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])

let by_domain () =
  Mutex.lock reg_lock;
  let out =
    List.filter_map
      (fun d ->
        let total = zero () in
        Hashtbl.iter (fun _ c -> add total c) d.tbl;
        if total.count = 0 then None else Some (d.tid, total))
      !states
  in
  Mutex.unlock reg_lock;
  List.sort compare out

let diff ~earlier ~later =
  List.filter_map
    (fun (name, (l : cell)) ->
      let d =
        match List.assoc_opt name earlier with
        | None -> l
        | Some e ->
          {
            count = max 0 (l.count - e.count);
            minor = Float.max 0.0 (l.minor -. e.minor);
            promoted = Float.max 0.0 (l.promoted -. e.promoted);
            major = Float.max 0.0 (l.major -. e.major);
          }
      in
      if d.count = 0 then None else Some (name, d))
    later

let reset () =
  Mutex.lock reg_lock;
  List.iter (fun d -> Hashtbl.reset d.tbl) !states;
  Mutex.unlock reg_lock

let cell_json (c : cell) =
  Json.Obj
    [ ("count", Json.Int c.count);
      ("minor_words", Json.Float c.minor);
      ("promoted_words", Json.Float c.promoted);
      ("major_words", Json.Float c.major) ]

let snapshot_json snap =
  Json.Obj (List.map (fun (name, c) -> (name, cell_json c)) snap)
