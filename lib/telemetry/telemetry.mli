(** Op-level cost accounting and stage timing for the whole system.

    The paper (Section 10) and related systems account query-authentication
    costs in group/pairing operations; this module makes those counts — and
    per-stage wall time — observable at runtime without changing any
    protocol code path.

    Design constraint: telemetry is compiled into the production code, so
    the disabled path (the default) must cost a single load-and-branch per
    operation. Counters are {!Atomic} and therefore domain-safe: relax jobs
    fanned out by [Zkqac_parallel.Pool] count correctly. Named spans
    accumulate under a mutex, but spans are only placed at coarse stage
    boundaries (DO setup, ADS build, SP query, relax fan-out, envelope
    seal/open, client verify), never per-op.

    Typical profiling session:
    {[
      Telemetry.enable ();
      let before = Telemetry.snapshot () in
      ... run a query ...
      let cost = Telemetry.diff ~earlier:before ~later:(Telemetry.snapshot ()) in
      Telemetry.print stdout cost
    ]} *)

(** The expensive primitives we count. [G] is the (symmetric) source group,
    [Gt] the target group of the pairing. *)
type counter =
  | Pairing  (** bilinear map evaluations e(·,·) *)
  | G_exp  (** exponentiations in G *)
  | G_mul  (** multiplications (and inversions) in G *)
  | Gt_exp  (** exponentiations in Gt *)
  | Gt_mul  (** multiplications (and inversions) in Gt *)
  | Sha256_compress  (** SHA-256 compression-function invocations *)
  | Abs_sign  (** ABS.Sign calls *)
  | Abs_verify  (** ABS.Verify / ABS.VerifyBatch calls *)
  | Abs_relax  (** ABS.Relax calls *)
  | Cpabe_encrypt  (** CP-ABE encryptions *)
  | Cpabe_decrypt  (** CP-ABE decryption attempts *)
  | Multi_pairing  (** multi-pairing e_prod evaluations (shared Miller loop) *)
  | Multi_pairing_terms  (** total pairing terms folded into e_prod calls *)

val all_counters : counter list

val counter_name : counter -> string
(** Stable snake_case name, used as the JSON key. *)

(** {1 Switching} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run the thunk with telemetry on, restoring the previous state after
    (also on exception). *)

(** {1 Recording (called from instrumented code)} *)

val bump : counter -> unit
(** Increment a counter. When disabled this is one atomic load and branch. *)

val bump_n : counter -> int -> unit

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], attributing its wall time (monotonic clock) to
    [name]. Time is recorded even if [f] raises. Spans with the same name
    accumulate in the aggregate table reported by {!snapshot}, and every
    close also feeds the per-stage {!Histogram} registry. [span] is
    implemented on {!Trace.with_span}, so when tracing is enabled the same
    call additionally records a hierarchical span (parented to the innermost
    open span of this domain). When both telemetry and tracing are disabled,
    [span] is two atomic loads and a branch. *)

val now_ns : unit -> int64
(** The monotonic clock used by spans, in nanoseconds. *)

(** {1 Snapshots} *)

type span_stat = { calls : int; seconds : float }

type snapshot

val snapshot : unit -> snapshot
(** Copy of all counters and spans at this instant. Cheap; safe to take
    concurrently with recording. *)

val diff : earlier:snapshot -> later:snapshot -> snapshot
(** Pointwise subtraction: the cost of the region between two snapshots.
    This is the reset-free way to profile a code region — nothing global is
    cleared, so concurrent profiled regions do not interfere. *)

val reset : unit -> unit
(** Zero all counters, drop all aggregate spans and clear the per-stage
    histograms and allocation tables. Prefer {!snapshot}/{!diff}. *)

val get : counter -> int
(** Current live value of one counter. *)

val ops : snapshot -> (counter * int) list
(** All counters in declaration order. *)

val spans : snapshot -> (string * span_stat) list
(** Spans sorted by name; zero entries (from {!diff}) are dropped. *)

(** {1 Reporting} *)

val ops_json : snapshot -> Json.t
(** Object mapping counter names to counts. *)

val spans_json : snapshot -> Json.t
(** Object mapping span names to [{"calls": n, "seconds": s}]. *)

val to_json : snapshot -> Json.t
(** [{"ops": ..., "spans": ...}]. *)

val print : out_channel -> snapshot -> unit
(** Human-readable cost breakdown (nonzero counters and all spans). *)
