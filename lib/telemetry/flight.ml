(* Always-on flight recorder: per-domain bounded rings of structured events.

   The recording path is deliberately minimal — one atomic fetch-and-add for
   the global sequence number, a DLS lookup, and a ring store — because it
   runs on every span close, verdict, pool failure and wire-limit hit even
   when all other telemetry is off. Rings are registered under [reg_lock]
   (the Trace/Alloc idiom) so dumps can merge them from any domain. *)

type event = {
  seq : int;
  t_ns : int64;
  domain : int;
  cat : string;
  name : string;
  detail : string;
  v : int;
  req_id : int64; (* correlating request id; 0 = not request-scoped *)
}

let env_flag name default =
  match Sys.getenv_opt name with
  | Some ("off" | "0" | "false" | "no") -> false
  | Some _ -> true
  | None -> default

let env_int name default min_v =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n when n >= min_v -> n | _ -> default)
  | None -> default

let on = Atomic.make (env_flag "ZKQAC_FLIGHT" true)
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let cap = env_int "ZKQAC_FLIGHT_CAP" 2048 16
let max_dumps = env_int "ZKQAC_FLIGHT_MAX_DUMPS" 4 0
let capacity () = cap
let next_seq = Atomic.make 1
let overwritten = Atomic.make 0
let trips_ctr = Atomic.make 0
let dumps_ctr = Atomic.make 0
let t0 = Monotonic_clock.now ()

type dstate = {
  domain : int;
  mutable ring : event array; (* [||] until the first event *)
  mutable next : int; (* ring slot for the next event *)
  mutable count : int; (* total events this domain ever recorded *)
}

let reg_lock = Mutex.create ()
let states : dstate list ref = ref []

let dls =
  Domain.DLS.new_key (fun () ->
      let d = { domain = (Domain.self () :> int); ring = [||]; next = 0; count = 0 } in
      Mutex.lock reg_lock;
      states := d :: !states;
      Mutex.unlock reg_lock;
      d)

let record ?(v = 0) ?(req_id = 0L) ?(detail = "") ~cat name =
  if Atomic.get on then begin
    let d = Domain.DLS.get dls in
    let e =
      {
        seq = Atomic.fetch_and_add next_seq 1;
        t_ns = Int64.sub (Monotonic_clock.now ()) t0;
        domain = d.domain;
        cat;
        name;
        detail;
        v;
        req_id;
      }
    in
    if Array.length d.ring = 0 then d.ring <- Array.make cap e
    else begin
      if d.count >= cap then Atomic.incr overwritten;
      d.ring.(d.next) <- e
    end;
    d.next <- (d.next + 1) mod cap;
    d.count <- d.count + 1
  end

let recorded () = Atomic.get next_seq - 1
let dropped () = Atomic.get overwritten
let trips () = Atomic.get trips_ctr
let dumps_written () = Atomic.get dumps_ctr

let events () =
  Mutex.lock reg_lock;
  let collected =
    List.concat_map
      (fun d ->
        let n = min d.count (Array.length d.ring) in
        (* oldest event sits at [next] once the ring has wrapped *)
        let start = if d.count > n then d.next else 0 in
        List.init n (fun i -> d.ring.((start + i) mod cap)))
      !states
  in
  Mutex.unlock reg_lock;
  List.sort (fun a b -> compare a.seq b.seq) collected

let reset () =
  Mutex.lock reg_lock;
  List.iter
    (fun d ->
      d.ring <- [||];
      d.next <- 0;
      d.count <- 0)
    !states;
  Mutex.unlock reg_lock;
  Atomic.set next_seq 1;
  Atomic.set overwritten 0;
  Atomic.set trips_ctr 0;
  Atomic.set dumps_ctr 0

(* --- dumps --- *)

let event_json e =
  Json.Obj
    ([ ("seq", Json.Int e.seq);
       ("t_ns", Json.Float (Int64.to_float e.t_ns));
       ("domain", Json.Int e.domain);
       ("cat", Json.Str e.cat);
       ("name", Json.Str e.name);
       ("detail", Json.Str e.detail);
       ("v", Json.Int e.v) ]
    @
    (* Only request-scoped events carry the field, so dumps from paths that
       have no request in hand stay byte-compatible with older consumers. *)
    if e.req_id = 0L then []
    else [ ("req_id", Json.Str (Printf.sprintf "%016Lx" e.req_id)) ])

let to_json ?(reason = "") () =
  Json.Obj
    [ ("flight", Json.Int 1);
      ("reason", Json.Str reason);
      ("recorded", Json.Int (recorded ()));
      ("dropped", Json.Int (dropped ()));
      ("trips", Json.Int (trips ()));
      ("events", Json.Arr (List.map event_json (events ()))) ]

let to_text () =
  let buf = Buffer.create 1024 in
  let evs = events () in
  Printf.bprintf buf
    "flight recorder: %d event(s) retained, %d recorded, %d dropped, %d trip(s)\n"
    (List.length evs) (recorded ()) (dropped ()) (trips ());
  List.iter
    (fun e ->
      Printf.bprintf buf "  #%-6d %12.3f ms  d%-3d %-8s %-28s %s%s%s\n" e.seq
        (Int64.to_float e.t_ns /. 1e6)
        e.domain e.cat e.name
        (if e.detail = "" then "" else e.detail ^ " ")
        (if e.v = 0 then "" else Printf.sprintf "v=%d " e.v)
        (if e.req_id = 0L then "" else Printf.sprintf "req=%016Lx" e.req_id))
    evs;
  Buffer.contents buf

let print oc = output_string oc (to_text ())

let dir = Atomic.make (Sys.getenv_opt "ZKQAC_FLIGHT_DIR")
let set_dir d = Atomic.set dir d
let dump_dir () = Atomic.get dir
let dump_lock = Mutex.create ()

let write_dump ~reason d =
  Mutex.lock dump_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock dump_lock)
    (fun () ->
      if Atomic.get dumps_ctr < max_dumps then begin
        let k = Atomic.fetch_and_add dumps_ctr 1 in
        (try if not (Sys.file_exists d) then Sys.mkdir d 0o755 with Sys_error _ -> ());
        let base = Filename.concat d (Printf.sprintf "flight-%d-%d" (Unix.getpid ()) k) in
        (* Dumps are written at crash time — the one moment a half-written
           file is most likely and least useful. Atomic replacement means a
           dump either exists whole or not at all. *)
        let put path data =
          match Zkqac_durable.Durable.replace ~path data with
          | Ok () | Error _ -> ()
        in
        put (base ^ ".json") (Json.to_string (to_json ~reason ()) ^ "\n");
        put (base ^ ".txt") (Printf.sprintf "reason: %s\n%s" reason (to_text ()))
      end)

let do_trip ~stderr_fallback ~reason =
  Atomic.incr trips_ctr;
  record ~cat:"trip" ~detail:reason "flight.trip";
  match Atomic.get dir with
  | Some d -> ( try write_dump ~reason d with _ -> ())
  | None ->
      if stderr_fallback then (
        try
          Printf.eprintf "flight dump (%s):\n" reason;
          print stderr;
          flush stderr
        with _ -> ())

let trip ~reason = do_trip ~stderr_fallback:false ~reason
let emergency ~reason = do_trip ~stderr_fallback:true ~reason
