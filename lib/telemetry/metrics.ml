(* Pull-based metrics registry: labelled counters, gauges and per-stage
   summaries over the signals the rest of the telemetry layer already
   collects. Nothing here samples on its own — [collect] pulls the current
   value of every registered source, so an exporter (the `zkqac metrics`
   subcommand, the BENCH.json "metrics" section) always sees one coherent
   snapshot in registration order, which keeps the Prometheus exposition
   byte-stable for golden tests. *)

type labels = (string * string) list
type kind = Counter | Gauge | Summary

type sample = { suffix : string; labels : labels; value : float }
type metric = { name : string; kind : kind; help : string; samples : sample list }

let sample ?(suffix = "") ?(labels = []) value = { suffix; labels; value }

(* --- mutable counter families (push side: rare events like rejections) --- *)

type family = {
  fname : string;
  fhelp : string;
  cells : (labels, int ref) Hashtbl.t;
  lock : Mutex.t;
}

let families : family list ref = ref []
let collectors : (unit -> metric list) list ref = ref []
let registry_lock = Mutex.create ()

let counter ~name ~help =
  let f = { fname = name; fhelp = help; cells = Hashtbl.create 8; lock = Mutex.create () } in
  Mutex.lock registry_lock;
  families := !families @ [ f ];
  let collect () =
    Mutex.lock f.lock;
    let cells = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) f.cells [] in
    Mutex.unlock f.lock;
    [ {
        name = f.fname;
        kind = Counter;
        help = f.fhelp;
        samples =
          List.sort compare cells
          |> List.map (fun (labels, v) -> sample ~labels (float_of_int v));
      } ]
  in
  collectors := !collectors @ [ collect ];
  Mutex.unlock registry_lock;
  f

let inc ?(by = 1) f labels =
  let labels = List.sort compare labels in
  Mutex.lock f.lock;
  (match Hashtbl.find_opt f.cells labels with
   | Some r -> r := !r + by
   | None -> Hashtbl.add f.cells labels (ref by));
  Mutex.unlock f.lock

let get f labels =
  let labels = List.sort compare labels in
  Mutex.lock f.lock;
  let v = match Hashtbl.find_opt f.cells labels with Some r -> !r | None -> 0 in
  Mutex.unlock f.lock;
  v

(* Float counter families: accumulated durations (e.g. fsync seconds) where
   an int cell would lose everything below the unit. Same shape as [family]
   otherwise. *)

type ffamily = {
  ffname : string;
  ffhelp : string;
  fcells : (labels, float ref) Hashtbl.t;
  flock : Mutex.t;
}

let ffamilies : ffamily list ref = ref []

let fcounter ~name ~help =
  let f =
    { ffname = name; ffhelp = help; fcells = Hashtbl.create 8; flock = Mutex.create () }
  in
  Mutex.lock registry_lock;
  ffamilies := !ffamilies @ [ f ];
  let collect () =
    Mutex.lock f.flock;
    let cells = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) f.fcells [] in
    Mutex.unlock f.flock;
    [ {
        name = f.ffname;
        kind = Counter;
        help = f.ffhelp;
        samples = List.sort compare cells |> List.map (fun (labels, v) -> sample ~labels v);
      } ]
  in
  collectors := !collectors @ [ collect ];
  Mutex.unlock registry_lock;
  f

let finc ?(by = 1.0) f labels =
  let labels = List.sort compare labels in
  Mutex.lock f.flock;
  (match Hashtbl.find_opt f.fcells labels with
  | Some r -> r := !r +. by
  | None -> Hashtbl.add f.fcells labels (ref by));
  Mutex.unlock f.flock

let fget f labels =
  let labels = List.sort compare labels in
  Mutex.lock f.flock;
  let v = match Hashtbl.find_opt f.fcells labels with Some r -> !r | None -> 0.0 in
  Mutex.unlock f.flock;
  v

(* --- pull collectors --- *)

let register collect =
  Mutex.lock registry_lock;
  collectors := !collectors @ [ collect ];
  Mutex.unlock registry_lock

let register_gauge ~name ~help f =
  register (fun () ->
      [ {
          name;
          kind = Gauge;
          help;
          samples = List.map (fun (labels, v) -> sample ~labels v) (f ());
        } ])

(* --- built-in sources --- *)

let rejections =
  counter ~name:"zkqac_verify_rejections_total"
    ~help:"Client-side verification rejections by typed Verify_error code."

let rejection code = inc rejections [ ("code", code) ]

let batch_fallbacks_f =
  counter ~name:"zkqac_batch_fallbacks_total"
    ~help:"Batched VO verifications that fell back to the sequential path."

let batch_fallback () = inc batch_fallbacks_f []
let batch_fallbacks () = get batch_fallbacks_f []

let recoveries =
  counter ~name:"zkqac_recoveries_total"
    ~help:
      "Crash-recovery operations by outcome (checkpoint-ok, \
       checkpoint-fallback, audit-clean, audit-truncated)."

let recovery outcome = inc recoveries [ ("outcome", outcome) ]

let () =
  (* Group/scheme operation counts at the PAIRING boundary. *)
  register (fun () ->
      [ {
          name = "zkqac_ops_total";
          kind = Counter;
          help = "Cryptographic operation counts at the PAIRING boundary.";
          samples =
            List.map
              (fun c ->
                sample
                  ~labels:[ ("op", Telemetry.counter_name c) ]
                  (float_of_int (Telemetry.get c)))
              Telemetry.all_counters;
        } ]);
  (* Per-stage latency, as a Prometheus summary per stage label. *)
  register (fun () ->
      let snap = Histogram.snapshot () in
      let samples =
        List.concat_map
          (fun (stage, h) ->
            let s = [ ("stage", stage) ] in
            let sec ns = ns /. 1e9 in
            [ sample ~labels:(s @ [ ("quantile", "0.5") ])
                (sec (Histogram.quantile h 0.5));
              sample ~labels:(s @ [ ("quantile", "0.95") ])
                (sec (Histogram.quantile h 0.95));
              sample ~labels:(s @ [ ("quantile", "0.99") ])
                (sec (Histogram.quantile h 0.99));
              sample ~suffix:"_count" ~labels:s
                (float_of_int (Histogram.count h));
              sample ~suffix:"_sum" ~labels:s
                (sec (Histogram.mean_ns h *. float_of_int (Histogram.count h)));
            ])
          snap
      in
      [ {
          name = "zkqac_stage_latency_seconds";
          kind = Summary;
          help = "Latency of every closed span, by stage name.";
          samples;
        } ]);
  (* Per-stage allocation attribution. *)
  register (fun () ->
      let snap = Alloc.snapshot () in
      let samples =
        List.concat_map
          (fun (stage, (c : Alloc.cell)) ->
            [ sample ~labels:[ ("stage", stage); ("heap", "minor") ] c.Alloc.minor;
              sample ~labels:[ ("stage", stage); ("heap", "promoted") ] c.Alloc.promoted;
              sample ~labels:[ ("stage", stage); ("heap", "major") ] c.Alloc.major;
            ])
          snap
      in
      [ {
          name = "zkqac_stage_alloc_words_total";
          kind = Counter;
          help = "GC words attributed to closed spans, by stage and heap.";
          samples;
        } ]);
  (* Per-domain allocation totals: the worker-domain breakdown of the
     Pool fan-out. *)
  register (fun () ->
      let doms = Alloc.by_domain () in
      let samples =
        List.concat_map
          (fun (tid, (c : Alloc.cell)) ->
            let d = [ ("domain", string_of_int tid) ] in
            [ sample ~labels:(d @ [ ("heap", "minor") ]) c.Alloc.minor;
              sample ~labels:(d @ [ ("heap", "major") ]) c.Alloc.major;
            ])
          doms
      in
      [ {
          name = "zkqac_domain_alloc_words_total";
          kind = Counter;
          help = "GC words attributed to spans, by recording domain and heap.";
          samples;
        } ]);
  (* Trace health: silently dropped spans make traces look complete. *)
  register (fun () ->
      [ {
          name = "zkqac_trace_dropped_spans";
          kind = Gauge;
          help = "Spans discarded because the trace capacity bound was hit.";
          samples = [ sample (float_of_int (Trace.dropped ())) ];
        } ]);
  (* Flight-recorder health. Registered here rather than in Flight so the
     recorder itself stays dependency-free; samples are unconditional
     because the recorder is always on. *)
  register (fun () ->
      [ {
          name = "zkqac_flight_events_total";
          kind = Counter;
          help = "Structured events recorded by the always-on flight recorder.";
          samples = [ sample (float_of_int (Flight.recorded ())) ];
        };
        {
          name = "zkqac_flight_dropped_events_total";
          kind = Counter;
          help = "Flight-recorder events overwritten by ring-buffer wraparound.";
          samples = [ sample (float_of_int (Flight.dropped ())) ];
        };
        {
          name = "zkqac_flight_trips_total";
          kind = Counter;
          help = "Flight-recorder dump triggers (verify errors, pool failures, signals).";
          samples = [ sample (float_of_int (Flight.trips ())) ];
        } ]);
  (* GC pause attribution from the runtime-events bridge. Registered here
     (not in Rte) because Rte cannot depend on Metrics: Metrics pulls from
     Trace, which feeds Rte's stage table. Samples appear only once the
     monitor has observed pauses, so expositions without Rte running are
     unchanged. *)
  register (fun () ->
      let doms = Rte.domain_snapshot () in
      let totals =
        List.concat_map
          (fun (d : Rte.dom_stats) ->
            let l = [ ("domain", d.Rte.label) ] in
            (if d.Rte.minor_n = 0 then []
             else [ sample ~labels:(l @ [ ("gc", "minor") ]) d.Rte.minor_s ])
            @
            if d.Rte.major_n = 0 then []
            else [ sample ~labels:(l @ [ ("gc", "major") ]) d.Rte.major_s ])
          doms
      and maxima =
        List.concat_map
          (fun (d : Rte.dom_stats) ->
            let l = [ ("domain", d.Rte.label) ] in
            (if d.Rte.minor_n = 0 then []
             else [ sample ~labels:(l @ [ ("gc", "minor") ]) d.Rte.minor_max_s ])
            @
            if d.Rte.major_n = 0 then []
            else [ sample ~labels:(l @ [ ("gc", "major") ]) d.Rte.major_max_s ])
          doms
      in
      [ {
          name = "zkqac_gc_pause_seconds_total";
          kind = Counter;
          help = "GC pause time observed via runtime events, by domain and collector.";
          samples = totals;
        };
        {
          name = "zkqac_gc_pause_seconds_max";
          kind = Gauge;
          help = "Longest single GC pause observed, by domain and collector.";
          samples = maxima;
        } ]);
  register (fun () ->
      let samples =
        List.concat_map
          (fun (stage, (_, minor_s, major_s)) ->
            let l = [ ("stage", stage) ] in
            (if minor_s = 0.0 then []
             else [ sample ~labels:(l @ [ ("gc", "minor") ]) minor_s ])
            @
            if major_s = 0.0 then []
            else [ sample ~labels:(l @ [ ("gc", "major") ]) major_s ])
          (Rte.stage_snapshot ())
      in
      [ {
          name = "zkqac_stage_gc_pause_seconds_total";
          kind = Counter;
          help = "GC pause time absorbed by closed spans, by stage and collector.";
          samples;
        } ])

let reset () =
  Mutex.lock registry_lock;
  let fams = !families in
  let ffams = !ffamilies in
  Mutex.unlock registry_lock;
  List.iter
    (fun f ->
      Mutex.lock f.lock;
      Hashtbl.reset f.cells;
      Mutex.unlock f.lock)
    fams;
  List.iter
    (fun f ->
      Mutex.lock f.flock;
      Hashtbl.reset f.fcells;
      Mutex.unlock f.flock)
    ffams

let collect () =
  Mutex.lock registry_lock;
  let cs = !collectors in
  Mutex.unlock registry_lock;
  List.concat_map (fun c -> c ()) cs

(* --- Prometheus text exposition (version 0.0.4) --- *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Summary -> "summary"

(* Metrics with nothing recorded are omitted entirely (no HELP/TYPE
   header): an exposition only shows families that have data. *)
let nonempty () = List.filter (fun m -> m.samples <> []) (collect ())

let to_prometheus () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" m.name (escape_help m.help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.kind));
      List.iter
        (fun s ->
          let labels =
            if s.labels = [] then ""
            else
              "{"
              ^ String.concat ","
                  (List.map
                     (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
                     s.labels)
              ^ "}"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s%s%s %s\n" m.name s.suffix labels
               (fmt_value s.value)))
        m.samples)
    (nonempty ());
  Buffer.contents buf

(* --- JSON export (the BENCH.json "metrics" section) --- *)

let to_json () =
  Json.Obj
    (List.map
       (fun m ->
         ( m.name,
           Json.Obj
             [ ("type", Json.Str (kind_name m.kind));
               ("help", Json.Str m.help);
               ( "samples",
                 Json.Arr
                   (List.map
                      (fun s ->
                        Json.Obj
                          ((if s.suffix = "" then []
                            else [ ("suffix", Json.Str s.suffix) ])
                          @ [ ( "labels",
                                Json.Obj
                                  (List.map
                                     (fun (k, v) -> (k, Json.Str v))
                                     s.labels) );
                              ("value", Json.Float s.value) ]))
                      m.samples) ) ] ))
       (nonempty ()))
