(** Always-on flight recorder.

    A bounded per-domain ring buffer of structured events — span closes,
    verify verdicts, pool job failures, wire-limit hits — recorded
    unconditionally (a few atomic operations plus one ring store per event)
    so that a crash or a one-in-a-million verification failure leaves a
    forensic trail even when tracing and telemetry were off.

    The recorder is enabled by default; set [ZKQAC_FLIGHT=off] in the
    environment (or call {!disable}) to turn it off, e.g. for overhead
    ablations. Ring capacity per domain is [ZKQAC_FLIGHT_CAP] (default
    2048); once full, the oldest events are overwritten and counted in
    {!dropped}.

    {!trip} is the dump-on-demand path: it records a [trip] event and, when
    a dump directory is configured ({!set_dir} or [ZKQAC_FLIGHT_DIR]),
    writes the merged ring as JSON and text files, capped at
    [ZKQAC_FLIGHT_MAX_DUMPS] (default 4) per process. {!emergency}
    additionally prints the text dump to stderr when no directory is
    configured — the last-resort path for SIGUSR1 and uncaught
    exceptions. *)

type event = {
  seq : int;  (** global sequence number, 1-based; total order of events *)
  t_ns : int64;  (** monotonic clock, nanoseconds since recorder start *)
  domain : int;  (** recording domain id *)
  cat : string;  (** event category: "span", "verdict", "pool", "wire", "trip" *)
  name : string;
  detail : string;  (** free-form qualifier, e.g. an error code; "" if none *)
  v : int;  (** numeric payload (duration ns, limit, rows...); 0 if none *)
  req_id : int64;
      (** correlating request id for request-scoped events (the server's
          per-request records); 0 when the event has no request context *)
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val capacity : unit -> int
(** Ring capacity per domain. *)

val record :
  ?v:int -> ?req_id:int64 -> ?detail:string -> cat:string -> string -> unit
(** [record ~cat name] appends one event to the calling domain's ring.
    [req_id] ties the event to a wire-propagated request id; it appears in
    JSON dumps as a 16-hex-digit ["req_id"] field (and [req=...] in text)
    when non-zero. No-op when disabled. Never raises. *)

val recorded : unit -> int
(** Total events recorded since start/reset (including overwritten ones). *)

val dropped : unit -> int
(** Events overwritten by ring wraparound. *)

val trips : unit -> int
(** Number of {!trip}/{!emergency} calls. *)

val dumps_written : unit -> int
(** Dump file pairs written so far (bounded by [ZKQAC_FLIGHT_MAX_DUMPS]). *)

val events : unit -> event list
(** Merged view of all domain rings, sorted by sequence number. *)

val to_json : ?reason:string -> unit -> Json.t
(** Dump shape: [{"flight": 1, "reason", "recorded", "dropped", "trips",
    "events": [{"seq","t_ns","domain","cat","name","detail","v",
    "req_id"?}...]}] — ["req_id"] present only on request-scoped events. *)

val print : out_channel -> unit
(** Human-readable text dump of {!events}. *)

val set_dir : string option -> unit
(** Override the dump directory ([ZKQAC_FLIGHT_DIR] by default). *)

val dump_dir : unit -> string option

val trip : reason:string -> unit
(** Record a [trip] event and write JSON + text dumps if a dump directory
    is configured and the per-process cap is not exhausted. Swallows I/O
    errors: tripping must never turn a typed failure into a crash. *)

val emergency : reason:string -> unit
(** Like {!trip}, but when no dump directory is configured the text dump
    goes to stderr — used by the SIGUSR1 handler and the uncaught-exception
    hook, where losing the dump would defeat the recorder's purpose. *)

val reset : unit -> unit
(** Clear all rings and counters (tests). *)
