(** Per-stage GC/allocation attribution.

    Latency histograms say where the time went; this registry says where
    the *words* went. Every measured span close ([Trace.with_span] with
    telemetry or tracing enabled) samples the domain-local allocation
    counters ([Gc.counters]) and attributes the minor/promoted/major word
    deltas to the span's stage name.

    Attribution is inclusive, like span wall time: a parent span's words
    include its children's. Deltas are exact per domain on OCaml 5
    ([Gc.counters] is domain-local), so relax jobs fanned out by
    [Zkqac_parallel.Pool] attribute to the worker domain that allocated —
    the per-domain tables double as a per-worker breakdown. The sampling
    itself allocates a few words per span close (the counters tuple),
    which is noise at stage granularity. *)

type cell = {
  mutable count : int;  (** spans that contributed *)
  mutable minor : float;  (** words allocated in the minor heap *)
  mutable promoted : float;  (** words promoted from minor to major *)
  mutable major : float;  (** words allocated directly in the major heap *)
}

val note : string -> minor:float -> promoted:float -> major:float -> unit
(** [note stage ~minor ~promoted ~major] attributes one span's allocation
    deltas to [stage] in this domain's table. Lock-free with respect to
    other domains; negative deltas are clamped to 0. *)

val snapshot : unit -> (string * cell) list
(** Merge all domains' tables: every stage observed so far, sorted by
    name. Take it at a quiet point, like {!Histogram.snapshot}. *)

val by_domain : unit -> (int * cell) list
(** Per-domain totals across all stages (domain id, summed cell), sorted
    by domain id; domains that never recorded are omitted. *)

val diff :
  earlier:(string * cell) list ->
  later:(string * cell) list ->
  (string * cell) list
(** Pointwise subtraction of two snapshots; stages with no new spans are
    dropped. *)

val reset : unit -> unit
(** Clear every stage in every domain's table. *)

val cell_json : cell -> Json.t
(** [{"count": n, "minor_words": w, "promoted_words": w, "major_words": w}] *)

val snapshot_json : (string * cell) list -> Json.t
(** Object mapping stage names to {!cell_json} summaries. *)
