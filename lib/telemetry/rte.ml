(* Runtime-events bridge: GC pause attribution per domain and per stage.

   One monitor domain owns a self-process cursor and polls it; everything it
   learns goes into mutable tables under [lock]. Producers only touch the
   tables through [pause_mark]/[note_stage] (span open/close) — both cheap
   hashtable reads/writes — so the GC attribution path adds nothing to the
   uninstrumented fast path. *)

module Re = Runtime_events

type slice = {
  sl_ring : int;
  sl_domain : int;
  sl_gc : string;
  sl_t0 : int64;
  sl_t1 : int64;
}

type dom_stats = {
  label : string;
  minor_s : float;
  major_s : float;
  minor_max_s : float;
  major_max_s : float;
  minor_n : int;
  major_n : int;
}

type totals = {
  mutable minor_ns : int64;
  mutable major_ns : int64;
  mutable minor_max : int64;
  mutable major_max : int64;
  mutable minor_n : int;
  mutable major_n : int;
}

type stage_cell = { mutable s_n : int; mutable s_minor : int64; mutable s_major : int64 }

let lock = Mutex.create ()

(* key: domain id when the ring was announced, -(ring+1) otherwise *)
let dom_tbl : (int, totals) Hashtbl.t = Hashtbl.create 8
let stage_tbl : (string, stage_cell) Hashtbl.t = Hashtbl.create 16
let max_rings = 256
let ring2dom = Array.make max_rings (-1)
let minor_t0 = Array.make max_rings 0L
let major_t0 = Array.make max_rings 0L
let slice_cap = 16384
let slice_buf : slice list ref = ref [] (* newest first *)
let slice_n = ref 0
let slice_drop = ref 0
let is_started = Atomic.make false
let stop_flag = Atomic.make false
let monitor : unit Domain.t option ref = ref None
let started () = Atomic.get is_started

(* Self-identification: rings are slots, not domains, so each domain writes
   its [Domain.self] into the stream and the monitor maps slot -> domain. *)
type Re.User.tag += Domain_id

let domain_evt = lazy (Re.User.register "zkqac.domain_id" Domain_id Re.Type.int)

let announce () =
  if Atomic.get is_started then
    try Re.User.write (Lazy.force domain_evt) (Domain.self () :> int) with _ -> ()

let key_of_ring ring =
  if ring >= 0 && ring < max_rings && ring2dom.(ring) >= 0 then ring2dom.(ring)
  else -(ring + 1)

let label_of_key k = if k >= 0 then string_of_int k else Printf.sprintf "ring%d" (-k - 1)

let find_totals k =
  match Hashtbl.find_opt dom_tbl k with
  | Some t -> t
  | None ->
      let t =
        { minor_ns = 0L; major_ns = 0L; minor_max = 0L; major_max = 0L; minor_n = 0; major_n = 0 }
      in
      Hashtbl.add dom_tbl k t;
      t

let note_pause ring gc t0 t1 =
  let dur = Int64.sub t1 t0 in
  if dur > 0L then begin
    Mutex.lock lock;
    let t = find_totals (key_of_ring ring) in
    (match gc with
    | `Minor ->
        t.minor_ns <- Int64.add t.minor_ns dur;
        if dur > t.minor_max then t.minor_max <- dur;
        t.minor_n <- t.minor_n + 1
    | `Major ->
        t.major_ns <- Int64.add t.major_ns dur;
        if dur > t.major_max then t.major_max <- dur;
        t.major_n <- t.major_n + 1);
    if !slice_n < slice_cap then begin
      let sl_domain = if ring < max_rings && ring >= 0 then ring2dom.(ring) else -1 in
      slice_buf :=
        {
          sl_ring = ring;
          sl_domain;
          sl_gc = (match gc with `Minor -> "minor" | `Major -> "major");
          sl_t0 = t0;
          sl_t1 = t1;
        }
        :: !slice_buf;
      incr slice_n
    end
    else incr slice_drop;
    Mutex.unlock lock
  end

let on_begin ring ts phase =
  if ring >= 0 && ring < max_rings then
    match phase with
    | Re.EV_MINOR -> minor_t0.(ring) <- Re.Timestamp.to_int64 ts
    | Re.EV_MAJOR_SLICE -> major_t0.(ring) <- Re.Timestamp.to_int64 ts
    | _ -> ()

let on_end ring ts phase =
  if ring >= 0 && ring < max_rings then
    let close gc arr =
      let t0 = arr.(ring) in
      if t0 <> 0L then begin
        arr.(ring) <- 0L;
        note_pause ring gc t0 (Re.Timestamp.to_int64 ts)
      end
    in
    match phase with
    | Re.EV_MINOR -> close `Minor minor_t0
    | Re.EV_MAJOR_SLICE -> close `Major major_t0
    | _ -> ()

let on_domain_id ring _ts evt v =
  match Re.User.tag evt with
  | Domain_id ->
      if ring >= 0 && ring < max_rings && v >= 0 then begin
        (* Migrate any pauses already booked under the anonymous ring key to
           the real domain, so early GCs are not split across two labels. *)
        Mutex.lock lock;
        (if ring2dom.(ring) < 0 then
           match Hashtbl.find_opt dom_tbl (-(ring + 1)) with
           | Some old ->
               Hashtbl.remove dom_tbl (-(ring + 1));
               let t = find_totals v in
               t.minor_ns <- Int64.add t.minor_ns old.minor_ns;
               t.major_ns <- Int64.add t.major_ns old.major_ns;
               if old.minor_max > t.minor_max then t.minor_max <- old.minor_max;
               if old.major_max > t.major_max then t.major_max <- old.major_max;
               t.minor_n <- t.minor_n + old.minor_n;
               t.major_n <- t.major_n + old.major_n
           | None -> ());
        ring2dom.(ring) <- v;
        Mutex.unlock lock
      end
  | _ -> ()

let callbacks =
  lazy
    (Re.Callbacks.create ~runtime_begin:on_begin ~runtime_end:on_end ()
    |> Re.Callbacks.add_user_event Re.Type.int on_domain_id)

let monitor_loop poll_us cursor =
  announce ();
  let cbs = Lazy.force callbacks in
  let delay = float_of_int poll_us /. 1e6 in
  while not (Atomic.get stop_flag) do
    ignore (Re.read_poll cursor cbs None);
    Unix.sleepf delay
  done;
  (* final drain so short-lived runs lose nothing *)
  ignore (Re.read_poll cursor cbs None)

let start ?(poll_us = 500) () =
  if Atomic.compare_and_set is_started false true then begin
    Atomic.set stop_flag false;
    Re.start ();
    ignore (Lazy.force domain_evt);
    announce ();
    let cursor = Re.create_cursor None in
    monitor := Some (Domain.spawn (fun () -> monitor_loop poll_us cursor))
  end

let stop () =
  if Atomic.get is_started then begin
    Atomic.set stop_flag true;
    (match !monitor with Some d -> Domain.join d | None -> ());
    monitor := None;
    Atomic.set is_started false
  end

(* --- per-stage attribution (fed by Trace.with_span) --- *)

let pause_mark () =
  if not (Atomic.get is_started) then (0L, 0L)
  else begin
    Mutex.lock lock;
    let r =
      match Hashtbl.find_opt dom_tbl (Domain.self () :> int) with
      | Some t -> (t.minor_ns, t.major_ns)
      | None -> (0L, 0L)
    in
    Mutex.unlock lock;
    r
  end

let note_stage name (mi0, ma0) =
  if Atomic.get is_started then begin
    Mutex.lock lock;
    (match Hashtbl.find_opt dom_tbl (Domain.self () :> int) with
    | Some t ->
        let dmi = Int64.sub t.minor_ns mi0 and dma = Int64.sub t.major_ns ma0 in
        if dmi > 0L || dma > 0L then begin
          let c =
            match Hashtbl.find_opt stage_tbl name with
            | Some c -> c
            | None ->
                let c = { s_n = 0; s_minor = 0L; s_major = 0L } in
                Hashtbl.add stage_tbl name c;
                c
          in
          c.s_n <- c.s_n + 1;
          if dmi > 0L then c.s_minor <- Int64.add c.s_minor dmi;
          if dma > 0L then c.s_major <- Int64.add c.s_major dma
        end
    | None -> ());
    Mutex.unlock lock
  end

(* --- snapshots --- *)

let s_of_ns ns = Int64.to_float ns /. 1e9

let domain_snapshot () =
  Mutex.lock lock;
  let out =
    Hashtbl.fold
      (fun k t acc ->
        {
          label = label_of_key k;
          minor_s = s_of_ns t.minor_ns;
          major_s = s_of_ns t.major_ns;
          minor_max_s = s_of_ns t.minor_max;
          major_max_s = s_of_ns t.major_max;
          minor_n = t.minor_n;
          major_n = t.major_n;
        }
        :: acc)
      dom_tbl []
  in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.label b.label) out

let stage_snapshot () =
  Mutex.lock lock;
  let out =
    Hashtbl.fold
      (fun name c acc -> (name, (c.s_n, s_of_ns c.s_minor, s_of_ns c.s_major)) :: acc)
      stage_tbl []
  in
  Mutex.unlock lock;
  List.sort compare out

let slices () =
  Mutex.lock lock;
  let out = List.rev !slice_buf in
  Mutex.unlock lock;
  out

let slices_dropped () =
  Mutex.lock lock;
  let n = !slice_drop in
  Mutex.unlock lock;
  n

let reset () =
  Mutex.lock lock;
  Hashtbl.reset dom_tbl;
  Hashtbl.reset stage_tbl;
  slice_buf := [];
  slice_n := 0;
  slice_drop := 0;
  Mutex.unlock lock
