(** Log-bucketed, mergeable latency histograms.

    Buckets are HDR-style: 16 linear sub-buckets per power-of-two octave of
    nanoseconds, so quantile extraction is accurate to ~6% of the value.
    Counts are plain ints, so histograms merge (and diff) pointwise — in
    particular histograms recorded on different worker domains combine
    exactly.

    A process-wide registry maps stage names (span names) to histograms.
    {!note} writes through a domain-local table so the recording path takes
    no lock; {!snapshot} merges every domain's table. [Trace.with_span]
    feeds the registry automatically when a span closes. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** [record t ns] adds one observation of [ns] nanoseconds ([ns < 0] is
    clamped to 0). *)

val count : t -> int
val mean_ns : t -> float

val min_ns : t -> float
(** Lower bound of the smallest nonempty bucket — the minimum recorded
    value to bucket resolution (~6%); 0 on an empty histogram. Derived
    from the counts, so it remains correct under {!merge} and {!diff}. *)

val max_ns : t -> float
(** Lower bound of the largest nonempty bucket — the maximum recorded
    value to bucket resolution; 0 on an empty histogram. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0,1]], in nanoseconds, by linear
    interpolation inside the target bucket. 0 on an empty histogram. *)

val merge : t -> t -> t

val bucket_of_ns : int -> int
(** The bucket index an observation falls into (exposed for tests). *)

val bucket_bounds : int -> float * float
(** [(lo, hi)] bounds of a bucket in ns: values [v] with
    [lo <= v < hi] land in it (exposed for tests). *)

val buckets : t -> (int * int) list
(** Sparse bucket view: [(bucket index, count)] for every nonempty
    bucket, in index order — the resampleable form of the distribution
    that BENCH.json carries. *)

val of_buckets : (int * int) list -> t
(** Rebuild a histogram from a sparse bucket list (indices may repeat and
    accumulate). The sum — hence {!mean_ns} — is approximated from bucket
    midpoints.
    @raise Invalid_argument on an out-of-range index or negative count. *)

val to_json : t -> Json.t
(** [{"count": n, "mean_ms": ..., "min_ms": ..., "max_ms": ...,
     "p50_ms": ..., "p95_ms": ..., "p99_ms": ..., "buckets": [[b,c],...]}] *)

(** {1 The per-stage registry} *)

val note : string -> int -> unit
(** [note stage ns] records an observation for [stage] in this domain's
    table. Lock-free with respect to other domains. *)

val snapshot : unit -> (string * t) list
(** Merge all domains' tables: every stage observed so far, sorted by name.
    Taking a snapshot while worker domains are actively recording may miss
    in-flight observations; take it at a quiet point. *)

val diff : earlier:(string * t) list -> later:(string * t) list -> (string * t) list
(** Pointwise subtraction of two snapshots; empty stages are dropped. *)

val reset : unit -> unit
(** Clear every stage in every domain's table. *)

val snapshot_json : (string * t) list -> Json.t
(** Object mapping stage names to {!to_json} summaries. *)
