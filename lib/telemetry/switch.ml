(* The global collection switches, in a leaf module so that both the
   aggregate-counter layer (Telemetry) and the tracing layer (Trace) can
   consult them without depending on each other.

   [telemetry_on] gates op counters, aggregate stage stats and histograms;
   [tracing_on] additionally gates the per-domain span ring buffers. Both
   default to off: the production hot path pays one atomic load + branch. *)

let telemetry_on = Atomic.make false
let tracing_on = Atomic.make false
