(** Hierarchical query tracing with per-domain buffers and Perfetto export.

    Where {!Telemetry} answers "how much did this process spend per stage in
    aggregate", [Trace] answers "where did {e this} query spend its time":
    every {!with_span} produces one timed span with a parent link, so a range
    query becomes a tree — the query root, the traversal, the relax fan-out,
    and each ABS operation — with spans attributed to the OCaml domain that
    ran them ([tid]).

    Parent context is explicit: a span's parent is the innermost span open
    {e on the same domain}, unless a [?parent] context is passed. Crossing a
    domain boundary therefore requires handing the parent context over —
    [Zkqac_parallel.Pool] does this for its workers, which is how relax jobs
    running on worker domains appear under the query that spawned them.

    Recording is domain-safe and bounded: closed spans go into per-domain
    buffers whose total size is capped by the capacity given to {!enable};
    beyond it spans are counted in {!dropped} and discarded, so the hot path
    never allocates unboundedly. When a span closes its duration also feeds
    the per-stage {!Histogram} registry, and (when telemetry is enabled) the
    aggregate stage table reported by [Telemetry.snapshot].

    When both tracing and telemetry are disabled (the default), {!with_span}
    costs two atomic loads and a branch. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type ctx
(** A handle to a span, used as an explicit parent and to attach attributes.
    Contexts may be sent across domains. *)

val none : ctx
(** The empty context: a span with [~parent:none] is a root. *)

val ctx_id : ctx -> int
(** The span id behind a context (0 for {!none}) — what {!info.span_root}
    of every descendant will report for a root context. *)

val ctx_root : ctx -> int
(** The root span id of the context's tree (0 for {!none}). *)

(** {1 Switching} *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Start recording (clears any previous trace). [capacity] bounds the total
    number of retained spans across all domains (default 65536).
    @raise Invalid_argument if [capacity < 1]. *)

val disable : unit -> unit
(** Stop recording. Buffers are retained for export. *)

val reset : unit -> unit
(** Drop all recorded spans and zero the dropped counter; keeps the
    enabled/disabled state and capacity. Timestamps restart near zero. *)

(** {1 Recording} *)

val with_span :
  ?parent:ctx -> ?attrs:(string * value) list -> string -> (ctx -> 'a) -> 'a
(** [with_span name f] times [f], passing it the new span's context. Parent:
    [?parent] if given, else the innermost open span of this domain, else
    none. The span is recorded even if [f] raises. *)

val set_attr : ctx -> string -> value -> unit
(** Attach an attribute (result rows, VO bytes, relax count, ...) to a span
    from inside its [with_span] callback. No-op on {!none}. *)

val set_attrs : ctx -> (string * value) list -> unit

val current : unit -> ctx
(** The innermost open span of the calling domain ({!none} if no span is
    open) — capture this before spawning work on other domains. *)

(** {1 Inspection and export} *)

val span_count : unit -> int
val dropped : unit -> int

(** A closed span, for programmatic consumption (timestamps relative to the
    last {!enable}/{!reset}). *)
type info = {
  span_id : int;
  span_parent : int;  (** 0 = root *)
  span_root : int;  (** id of this span's tree root (= [span_id] for roots) *)
  span_name : string;
  span_tid : int;  (** domain id that ran the span *)
  start_ns : int64;
  dur_ns : int64;
  span_attrs : (string * value) list;
}

val set_close_hook : (info -> unit) option -> unit
(** Install (or clear) the process-wide span-close hook. While tracing is
    enabled, the hook fires once for every span as it closes — including
    spans the retention budget discarded, so a consumer can collect
    complete per-request trees on a long-lived server whose export buffer
    filled long ago. The hook runs on the closing domain's thread: keep it
    fast; exceptions it raises are swallowed. One hook slot exists
    process-wide (latest wins). *)

val spans : unit -> info list
(** All recorded spans merged across domains, sorted by start time. Take at
    a quiet point (no worker domains recording). *)

val chrome_json : unit -> Json.t
(** The trace as Chrome trace-event JSON — loadable in Perfetto
    (https://ui.perfetto.dev) or chrome://tracing. One complete ("X") event
    per span with [ts]/[dur] in microseconds and [tid] = domain id; span ids
    and parent links are in [args]. *)

val chrome_json_of_spans : info list -> Json.t
(** Chrome trace-event JSON for just the given spans — the per-incident
    export used by the server's slow-query log (one Perfetto file per
    sampled request). GC slices are not included. *)

val write_chrome : string -> unit
(** Write {!chrome_json} to a file. *)

val print_tree : out_channel -> unit
(** Plain-text rendering of the span forest, children indented under
    parents, with durations, tids and attributes. *)

(** {1 Aggregate per-stage stats (consumed by [Telemetry])} *)

type stage_stat = { calls : int; seconds : float }

val stage_snapshot : unit -> (string * stage_stat) list
val stage_reset : unit -> unit
