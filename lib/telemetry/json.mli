(** A minimal JSON tree, printer and parser.

    Just enough to emit machine-readable benchmark results, telemetry
    snapshots and trace files — and to read them back — without an external
    dependency. Printing is deterministic (object fields keep their
    construction order) and always produces valid JSON: strings are escaped
    per RFC 8259 and non-finite floats are emitted as [null]. Finite floats
    print in the shortest decimal form that parses back to the identical
    bits ([%.15g], falling back to [%.17g]), so
    [of_string (to_string j) = Ok j] holds for any tree without NaN or
    infinities. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val to_file : string -> t -> unit
(** Write the value to [path] with a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; anything after it
    is an error). Number literals without [.], [e] or [E] become {!Int}
    (degrading to {!Float} beyond the native int range), everything else
    {!Float}. String escapes are decoded, [\uXXXX] (including surrogate
    pairs) to UTF-8. Errors report the byte offset. *)
