(** A minimal JSON tree and printer.

    Just enough to emit machine-readable benchmark results and telemetry
    snapshots without an external dependency. Printing is deterministic
    (object fields keep their construction order) and always produces valid
    JSON: strings are escaped per RFC 8259 and non-finite floats are emitted
    as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val to_file : string -> t -> unit
(** Write the value to [path] with a trailing newline. *)
