type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | Str s -> add_escaped buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')
