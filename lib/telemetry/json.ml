type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* Shortest decimal representation that round-trips to the same
         float, so timings survive the report pipeline bit-exactly. *)
      let s = Printf.sprintf "%.15g" f in
      let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
      Buffer.add_string buf s
    end
    else Buffer.add_string buf "null"
  | Str s -> add_escaped buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* --- parsing --- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  (* Encode a Unicode scalar value as UTF-8. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           let cp = hex4 () in
           (* Combine a surrogate pair when one follows. *)
           if cp >= 0xd800 && cp <= 0xdbff && !pos + 1 < n
              && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
             pos := !pos + 2;
             let lo = hex4 () in
             if lo >= 0xdc00 && lo <= 0xdfff then
               add_utf8 buf (0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00)))
             else begin
               add_utf8 buf cp;
               add_utf8 buf lo
             end
           end
           else add_utf8 buf cp
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some ('0' .. '9') -> true
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_float := true;
        true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "bad number";
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None ->
        (* Integer literal beyond the int range: degrade to float. *)
        (match float_of_string_opt text with
         | Some f -> Float f
         | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)
