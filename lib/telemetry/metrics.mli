(** Process-wide metrics registry with Prometheus and JSON export.

    This is the pull side of the telemetry layer: the op counters
    ({!Telemetry}), per-stage latency histograms ({!Histogram}), per-stage
    and per-domain allocation attribution ({!Alloc}), trace health
    ({!Trace.dropped}) and verification-rejection counts are exposed as one
    registry of named metrics, scraped all at once by {!collect}. Metrics
    appear in registration order and label sets are sorted, so the
    Prometheus exposition is byte-stable for a given set of recorded
    values — golden tests rely on that.

    Built-in metrics:
    - [zkqac_ops_total{op}] — PAIRING-boundary operation counts
    - [zkqac_stage_latency_seconds{stage}] — per-stage summary
      (p50/p95/p99 quantiles, [_count], [_sum])
    - [zkqac_stage_alloc_words_total{stage,heap}] — GC words per stage
    - [zkqac_domain_alloc_words_total{domain,heap}] — GC words per domain
    - [zkqac_trace_dropped_spans] — spans lost to the trace capacity bound
    - [zkqac_verify_rejections_total{code}] — typed verifier rejections
    - [zkqac_batch_fallbacks_total] — batched verifications that re-ran
      sequentially
    - [zkqac_flight_events_total] / [zkqac_flight_dropped_events_total] /
      [zkqac_flight_trips_total] — flight-recorder health ({!Flight})
    - [zkqac_gc_pause_seconds_total{domain,gc}] /
      [zkqac_gc_pause_seconds_max{domain,gc}] /
      [zkqac_stage_gc_pause_seconds_total{stage,gc}] — GC pauses observed
      by the runtime-events bridge ({!Rte}); present only when it ran

    Other libraries may add their own sources with {!register} /
    {!register_gauge} (e.g. [Zkqac_parallel.Pool] registers its
    worker-domain count). *)

type labels = (string * string) list
(** Label key/value pairs. Stored and exported sorted by key. *)

type kind = Counter | Gauge | Summary

type sample = { suffix : string; labels : labels; value : float }
(** One exposition line: [name ^ suffix ^ labels ^ value]. The suffix is
    ["_count"] / ["_sum"] for summary components, [""] otherwise. *)

type metric = { name : string; kind : kind; help : string; samples : sample list }

val sample : ?suffix:string -> ?labels:labels -> float -> sample

(** {1 Counter families (push side)} *)

type family
(** A mutable labelled counter family, for rare discrete events that have
    no existing registry to pull from (e.g. verifier rejections).
    Domain-safe. *)

val counter : name:string -> help:string -> family
(** Create and register a counter family. Call once, at module init. *)

val inc : ?by:int -> family -> labels -> unit
val get : family -> labels -> int

type ffamily
(** A float-valued counter family, for accumulated durations (fsync
    seconds) where integer cells would round everything away. *)

val fcounter : name:string -> help:string -> ffamily
(** Create and register a float counter family. Call once, at module
    init. *)

val finc : ?by:float -> ffamily -> labels -> unit
val fget : ffamily -> labels -> float

(** {1 Pull collectors} *)

val register : (unit -> metric list) -> unit
(** Add a source; it is invoked on every {!collect}, after all earlier
    registrations. *)

val register_gauge :
  name:string -> help:string -> (unit -> (labels * float) list) -> unit
(** Convenience wrapper: a single gauge whose labelled values are read at
    collect time. *)

(** {1 Built-in recording hooks} *)

val rejection : string -> unit
(** [rejection code] counts one verifier rejection under the stable
    [Verify_error] code string (feeds
    [zkqac_verify_rejections_total{code}]). *)

val batch_fallback : unit -> unit
(** Count one batched-verification fallback to the sequential path (feeds
    [zkqac_batch_fallbacks_total]; sampled around [System.open_and_verify]
    to tell the audit log which path produced a verdict). *)

val batch_fallbacks : unit -> int

val recovery : string -> unit
(** [recovery outcome] counts one crash-recovery operation under a stable
    outcome string — [checkpoint-ok] / [checkpoint-fallback] from
    checkpoint selection, [audit-clean] / [audit-truncated] from
    [Audit.recover] (feeds [zkqac_recoveries_total{outcome}]). *)

(** {1 Export} *)

val collect : unit -> metric list
(** Pull every registered source once, in registration order. *)

val to_prometheus : unit -> string
(** Prometheus text exposition (format 0.0.4): [# HELP] / [# TYPE] header
    then one line per sample. Metrics with no samples are omitted
    entirely, as is the whole family when nothing was recorded. *)

val to_json : unit -> Json.t
(** The same snapshot as a JSON object keyed by metric name (the
    BENCH.json ["metrics"] section). *)

val reset : unit -> unit
(** Zero all counter families. Pull collectors reflect their underlying
    registries, which have their own resets ([Telemetry.reset] clears the
    op counters, histograms and allocation tables). *)
