type counter =
  | Pairing
  | G_exp
  | G_mul
  | Gt_exp
  | Gt_mul
  | Sha256_compress
  | Abs_sign
  | Abs_verify
  | Abs_relax
  | Cpabe_encrypt
  | Cpabe_decrypt
  | Multi_pairing
  | Multi_pairing_terms

let all_counters =
  [ Pairing; G_exp; G_mul; Gt_exp; Gt_mul; Sha256_compress; Abs_sign;
    Abs_verify; Abs_relax; Cpabe_encrypt; Cpabe_decrypt; Multi_pairing;
    Multi_pairing_terms ]

let counter_name = function
  | Pairing -> "pairing"
  | G_exp -> "g_exp"
  | G_mul -> "g_mul"
  | Gt_exp -> "gt_exp"
  | Gt_mul -> "gt_mul"
  | Sha256_compress -> "sha256_compress"
  | Abs_sign -> "abs_sign"
  | Abs_verify -> "abs_verify"
  | Abs_relax -> "abs_relax"
  | Cpabe_encrypt -> "cpabe_encrypt"
  | Cpabe_decrypt -> "cpabe_decrypt"
  | Multi_pairing -> "multi_pairings"
  | Multi_pairing_terms -> "multi_pairing_terms"

let index = function
  | Pairing -> 0
  | G_exp -> 1
  | G_mul -> 2
  | Gt_exp -> 3
  | Gt_mul -> 4
  | Sha256_compress -> 5
  | Abs_sign -> 6
  | Abs_verify -> 7
  | Abs_relax -> 8
  | Cpabe_encrypt -> 9
  | Cpabe_decrypt -> 10
  | Multi_pairing -> 11
  | Multi_pairing_terms -> 12

let num_counters = List.length all_counters

(* --- switching --- *)

let on = Switch.telemetry_on
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let with_enabled f =
  let prev = Atomic.get on in
  Atomic.set on true;
  Fun.protect ~finally:(fun () -> Atomic.set on prev) f

(* --- counters --- *)

let counters = Array.init num_counters (fun _ -> Atomic.make 0)

let bump c = if Atomic.get on then Atomic.incr counters.(index c)

let bump_n c n =
  if Atomic.get on then ignore (Atomic.fetch_and_add counters.(index c) n)

let get c = Atomic.get counters.(index c)

(* --- spans --- *)

(* The timing primitive now lives in Trace: one [with_span] feeds the
   aggregate stage table here, the per-stage histograms, and (when tracing
   is enabled) the hierarchical span buffers. *)

type span_stat = Trace.stage_stat = { calls : int; seconds : float }

let now_ns () = Monotonic_clock.now ()
let span name f = Trace.with_span name (fun _ -> f ())

(* --- snapshots --- *)

type snapshot = { ops : int array; span_stats : (string * span_stat) list }

let snapshot () =
  let ops = Array.map Atomic.get counters in
  { ops; span_stats = List.sort compare (Trace.stage_snapshot ()) }

let diff ~earlier ~later =
  let ops = Array.mapi (fun i v -> v - earlier.ops.(i)) later.ops in
  let span_stats =
    List.filter_map
      (fun (name, (l : span_stat)) ->
        let d =
          match List.assoc_opt name earlier.span_stats with
          | None -> l
          | Some e -> { calls = l.calls - e.calls; seconds = l.seconds -. e.seconds }
        in
        if d.calls = 0 && Float.abs d.seconds < 1e-12 then None else Some (name, d))
      later.span_stats
  in
  { ops; span_stats }

let reset () =
  Array.iter (fun c -> Atomic.set c 0) counters;
  Trace.stage_reset ();
  Histogram.reset ();
  Alloc.reset ()

let ops snap = List.map (fun c -> (c, snap.ops.(index c))) all_counters
let spans snap = snap.span_stats

(* --- reporting --- *)

let ops_json snap =
  Json.Obj (List.map (fun (c, n) -> (counter_name c, Json.Int n)) (ops snap))

let spans_json snap =
  Json.Obj
    (List.map
       (fun (name, { calls; seconds }) ->
         (name, Json.Obj [ ("calls", Json.Int calls); ("seconds", Json.Float seconds) ]))
       snap.span_stats)

let to_json snap =
  Json.Obj [ ("ops", ops_json snap); ("spans", spans_json snap) ]

let print oc snap =
  Printf.fprintf oc "telemetry: operation counts\n";
  let nonzero = List.filter (fun (_, n) -> n <> 0) (ops snap) in
  if nonzero = [] then Printf.fprintf oc "  (none recorded)\n"
  else
    List.iter
      (fun (c, n) -> Printf.fprintf oc "  %-16s %12d\n" (counter_name c) n)
      nonzero;
  if snap.span_stats <> [] then begin
    Printf.fprintf oc "telemetry: stage timings\n";
    List.iter
      (fun (name, { calls; seconds }) ->
        Printf.fprintf oc "  %-16s %6d call(s) %10.1f ms\n" name calls
          (seconds *. 1000.))
      snap.span_stats
  end
