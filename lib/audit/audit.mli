(** Append-only, hash-chained audit log.

    Every [System.open_and_verify] decision (and every attack-harness cell)
    can be recorded as one line of an audit log whose integrity is
    verifiable offline — the paper's tamper-evidence mindset applied to our
    own operational record.

    {2 Chain format}

    Line 0 is the header ["# zkqac-audit/1"]. Every subsequent line is

    {v <hash-hex> <json> v}

    where [<json>] is [{"seq": n, "time": unix_seconds, "kind": k,
    "body": ...}] and [<hash-hex>] is
    [sha256_hex (prev_hash_hex ^ "\n" ^ <json>)]; the previous hash of
    entry 0 is [sha256_hex (header_line)]. Hashes cover the exact bytes on
    disk (not a re-serialization), so verification has no canonicalization
    step: flip any byte of any line — hash, payload, or separator — and
    {!verify_file} reports the first entry whose link no longer checks. *)

module Json = Zkqac_telemetry.Json

type entry = {
  seq : int;
  time : float;  (** Unix wall-clock seconds at record time *)
  kind : string;  (** e.g. "verify", "attack", "attack-summary" *)
  body : Json.t;
  hash : string;  (** this entry's chain hash, 64 hex chars *)
}

type broken = {
  entry : int;
      (** 0-based index of the first entry that fails; a corrupted header
          reports entry 0 *)
  reason : string;
}

val magic : string
(** The header line content. *)

(** {1 Global sink} *)

val enable : path:string -> (unit, string) result
(** Open (or create) an audit log at [path] and route {!record} to it. If
    the file exists, its chain is re-verified first and appending resumes
    from the tail hash; a corrupted existing log is refused. *)

val disable : unit -> unit
(** Flush and close the sink. Idempotent. *)

val enabled : unit -> bool
val path : unit -> string option

val record : ?time:float -> kind:string -> Json.t -> unit
(** Append one entry (no-op when no sink is enabled). [time] defaults to
    [Unix.gettimeofday ()]; tests pin it for determinism. Entries are
    flushed line-by-line so a crash loses at most the entry being
    written. *)

(** {1 Offline verification} *)

val verify_file : string -> (entry list, broken) result
(** Walk the whole file, re-deriving every chain hash from the bytes on
    disk, and return the entries oldest-first — or the first broken
    link. *)

val pp_time : float -> string
(** ["YYYY-MM-DDTHH:MM:SSZ"] (UTC), for [zkqac audit show]. *)
