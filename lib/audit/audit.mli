(** Append-only, hash-chained audit log with explicit group-commit
    durability.

    Every [System.open_and_verify] decision (and every attack-harness cell)
    can be recorded as one line of an audit log whose integrity is
    verifiable offline — the paper's tamper-evidence mindset applied to our
    own operational record.

    {2 Chain format}

    Line 0 is the header ["# zkqac-audit/1"]. Every subsequent line is

    {v <hash-hex> <json> v}

    where [<json>] is [{"seq": n, "time": unix_seconds, "kind": k,
    "dur": mode, "body": ...}] and [<hash-hex>] is
    [sha256_hex (prev_hash_hex ^ "\n" ^ <json>)]; the previous hash of
    entry 0 is [sha256_hex (header_line)]. Hashes cover the exact bytes on
    disk (not a re-serialization), so verification has no canonicalization
    step: flip any byte of any line — hash, payload, or separator — and
    {!verify_file} reports the first entry whose link no longer checks.

    {2 Durability}

    Appends are flushed line-by-line; fsync policy is the sink's
    {!durability} mode, recorded in each entry's ["dur"] field. A crash can
    leave at most one torn (newline-less) line at the tail — {!recover}
    truncates exactly that line and nothing else. *)

module Json = Zkqac_telemetry.Json

type entry = {
  seq : int;
  time : float;  (** Unix wall-clock seconds at record time *)
  kind : string;  (** e.g. "verify", "attack", "attack-summary" *)
  body : Json.t;
  hash : string;  (** this entry's chain hash, 64 hex chars *)
  dur : string;  (** durability mode the writer recorded ("" in old logs) *)
}

type broken = {
  entry : int;
      (** 0-based index of the first entry that fails; a corrupted header
          reports entry 0 *)
  reason : string;
}

type durability =
  | Always  (** fsync after every append *)
  | Interval of float
      (** fsync at most every [dt] seconds: a power cut drops at most the
          last interval of acknowledged entries *)
  | Never  (** flush only; the page cache decides *)

val durability_to_string : durability -> string

val durability_of_string : string -> (durability, string) result
(** Parses ["always"], ["never"], ["interval"] (default 0.05 s) or
    ["interval:SECONDS"]. *)

val magic : string
(** The header line content. *)

(** {1 Global sink} *)

val enable : ?durability:durability -> path:string -> unit -> (unit, string) result
(** Open (or create) an audit log at [path] and route {!record} to it. If
    the file exists, its chain is re-verified first and appending resumes
    from the tail hash; a corrupted existing log is refused (run {!recover}
    first after a crash). A freshly created log is fsynced — file and
    directory — before any entry is acknowledged. [durability] defaults to
    {!Always}. *)

val disable : unit -> unit
(** Flush, fsync (unless [Never]) and close the sink. Idempotent. *)

val enabled : unit -> bool
val path : unit -> string option

val durability : unit -> durability option
(** The active sink's durability mode, if enabled. *)

val record : ?time:float -> kind:string -> Json.t -> unit
(** Append one entry (no-op when no sink is enabled). [time] defaults to
    [Unix.gettimeofday ()]; tests pin it for determinism. Entries are
    flushed line-by-line and fsynced per the sink's durability mode, so a
    crash loses at most the entry being written (plus, under [Interval],
    the last unsynced interval). *)

(** {1 Offline verification} *)

val verify_file : string -> (entry list, broken) result
(** Walk the whole file, re-deriving every chain hash from the bytes on
    disk, and return the entries oldest-first — or the first broken
    link. *)

(** {1 Crash recovery} *)

type repair = { kept : int; dropped : string option }

val recover : path:string -> (repair, broken) result
(** Repair the one artifact a crash can legitimately leave: a torn final
    line (no trailing newline) is truncated — atomically, via durable
    replace — and returned in [dropped]; a valid final line that merely
    lost its newline gets it appended; a missing or torn header on an
    otherwise empty log resets the file. Damage anywhere before the final
    line refuses to repair and reports the broken entry, exactly like
    {!verify_file}. A missing file is [Ok { kept = 0; dropped = None }].
    Outcomes feed [zkqac_recoveries_total{outcome}] as [audit-clean] /
    [audit-truncated]. *)

val pp_time : float -> string
(** ["YYYY-MM-DDTHH:MM:SSZ"] (UTC), for [zkqac audit show]. *)
