(* Append-only hash-chained audit log.

   The chain hashes the exact bytes written to disk: each entry line is
   "<hash-hex> <json>" and hash = SHA-256(prev_hash_hex ^ "\n" ^ json).
   Verification therefore needs no JSON canonicalization — it re-hashes the
   payload substring as stored, so any single byte flip (in a hash, a
   payload, a space, a newline) breaks exactly one link and is reported as
   the first broken entry. *)

module Sha256 = Zkqac_hashing.Sha256
module Json = Zkqac_telemetry.Json

type entry = { seq : int; time : float; kind : string; body : Json.t; hash : string }
type broken = { entry : int; reason : string }

let magic = "# zkqac-audit/1"
let genesis = Sha256.hex magic

let payload_string ~seq ~time ~kind body =
  Json.to_string
    (Json.Obj
       [ ("seq", Json.Int seq);
         ("time", Json.Float time);
         ("kind", Json.Str kind);
         ("body", body) ])

let link ~prev payload = Sha256.hex (prev ^ "\n" ^ payload)

(* --- parsing one stored line --- *)

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let parse_line ~index line =
  let fail reason = Error { entry = index; reason } in
  if String.length line < 66 then fail "line too short for a chain entry"
  else
    let hash = String.sub line 0 64 in
    if not (String.for_all is_hex hash) then fail "chain hash is not lowercase hex"
    else if line.[64] <> ' ' then fail "missing separator after chain hash"
    else
      let payload = String.sub line 65 (String.length line - 65) in
      match Json.of_string payload with
      | Error e -> fail ("entry payload is not valid JSON: " ^ e)
      | Ok (Json.Obj fields) -> (
          let find k = List.assoc_opt k fields in
          match (find "seq", find "time", find "kind", find "body") with
          | Some (Json.Int seq), Some t, Some (Json.Str kind), Some body ->
              let time =
                match t with Json.Float f -> f | Json.Int i -> float_of_int i | _ -> nan
              in
              if Float.is_nan time then fail "entry time is not a number"
              else Ok ({ seq; time; kind; body; hash }, payload)
          | _ -> fail "entry payload is missing seq/time/kind/body")
      | Ok _ -> fail "entry payload is not a JSON object"

(* --- offline verification --- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let verify_file path =
  match read_lines path with
  | [] -> Error { entry = 0; reason = "empty file: missing header line" }
  | header :: rest ->
      if header <> magic then
        Error { entry = 0; reason = Printf.sprintf "bad header (expected %S)" magic }
      else
        let rec go index prev acc = function
          | [] -> Ok (List.rev acc)
          | line :: tl -> (
              match parse_line ~index line with
              | Error e -> Error e
              | Ok (e, payload) ->
                  if e.hash <> link ~prev payload then
                    Error
                      {
                        entry = index;
                        reason = "chain hash mismatch: entry or its predecessor was altered";
                      }
                  else if e.seq <> index then
                    Error
                      {
                        entry = index;
                        reason =
                          Printf.sprintf "sequence gap: entry claims seq %d at position %d"
                            e.seq index;
                      }
                  else go (index + 1) e.hash (e :: acc) tl)
        in
        go 0 genesis [] rest

(* --- global sink --- *)

type sink = { oc : out_channel; spath : string; mutable prev : string; mutable next_seq : int }

let sink_lock = Mutex.create ()
let sink : sink option ref = ref None

let disable () =
  Mutex.lock sink_lock;
  (match !sink with
  | Some s ->
      (try close_out s.oc with Sys_error _ -> ());
      sink := None
  | None -> ());
  Mutex.unlock sink_lock

let enable ~path =
  disable ();
  let resume =
    if Sys.file_exists path then
      match verify_file path with
      | Ok entries ->
          let prev = match List.rev entries with e :: _ -> e.hash | [] -> genesis in
          Ok (prev, List.length entries)
      | Error b ->
          Error
            (Printf.sprintf "refusing to append to corrupted audit log %s (entry %d: %s)"
               path b.entry b.reason)
    else Ok (genesis, -1)
  in
  match resume with
  | Error _ as e -> e
  | Ok (prev, n) -> (
      try
        let fresh = n < 0 in
        let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
        if fresh then (
          output_string oc (magic ^ "\n");
          flush oc);
        Mutex.lock sink_lock;
        sink := Some { oc; spath = path; prev; next_seq = max n 0 };
        Mutex.unlock sink_lock;
        Ok ()
      with Sys_error e -> Error ("cannot open audit log: " ^ e))

let enabled () =
  Mutex.lock sink_lock;
  let r = !sink <> None in
  Mutex.unlock sink_lock;
  r

let path () =
  Mutex.lock sink_lock;
  let r = match !sink with Some s -> Some s.spath | None -> None in
  Mutex.unlock sink_lock;
  r

let record ?time ~kind body =
  Mutex.lock sink_lock;
  (match !sink with
  | None -> ()
  | Some s ->
      let time = match time with Some t -> t | None -> Unix.gettimeofday () in
      let payload = payload_string ~seq:s.next_seq ~time ~kind body in
      let h = link ~prev:s.prev payload in
      (try
         output_string s.oc (h ^ " " ^ payload ^ "\n");
         flush s.oc;
         s.prev <- h;
         s.next_seq <- s.next_seq + 1
       with Sys_error _ -> ()));
  Mutex.unlock sink_lock

let pp_time t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
