(* Append-only hash-chained audit log.

   The chain hashes the exact bytes written to disk: each entry line is
   "<hash-hex> <json>" and hash = SHA-256(prev_hash_hex ^ "\n" ^ json).
   Verification therefore needs no JSON canonicalization — it re-hashes the
   payload substring as stored, so any single byte flip (in a hash, a
   payload, a space, a newline) breaks exactly one link and is reported as
   the first broken entry.

   Durability is group-commit: every entry is flushed to the OS, but fsync
   policy is explicit — [Always] (fsync each append), [Interval dt] (fsync
   at most every [dt] seconds, bounding how much acknowledged history a
   power cut can drop), or [Never] (flush only). The mode is recorded in
   each entry so an auditor can see what durability the writer promised. *)

module Sha256 = Zkqac_hashing.Sha256
module Json = Zkqac_telemetry.Json
module Flight = Zkqac_telemetry.Flight
module Metrics = Zkqac_telemetry.Metrics
module Durable = Zkqac_durable.Durable
module Crashpoint = Zkqac_durable.Crashpoint

type entry = {
  seq : int;
  time : float;
  kind : string;
  body : Json.t;
  hash : string;
  dur : string;
}

type broken = { entry : int; reason : string }

type durability = Always | Interval of float | Never

let durability_to_string = function
  | Always -> "always"
  | Interval _ -> "interval"
  | Never -> "never"

let default_interval = 0.05

let durability_of_string s =
  match s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval default_interval)
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.equal (String.sub s 0 i) "interval" -> (
      match float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some dt when dt > 0.0 -> Ok (Interval dt)
      | _ -> Error (Printf.sprintf "bad fsync interval in %S" s))
    | _ ->
      Error
        (Printf.sprintf "unknown durability %S (expected always|interval[:SECONDS]|never)" s))

let magic = "# zkqac-audit/1"
let genesis = Sha256.hex magic

let payload_string ~seq ~time ~kind ~dur body =
  Json.to_string
    (Json.Obj
       [ ("seq", Json.Int seq);
         ("time", Json.Float time);
         ("kind", Json.Str kind);
         ("dur", Json.Str dur);
         ("body", body) ])

let link ~prev payload = Sha256.hex (prev ^ "\n" ^ payload)

(* --- parsing one stored line --- *)

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let parse_line ~index line =
  let fail reason = Error { entry = index; reason } in
  if String.length line < 66 then fail "line too short for a chain entry"
  else
    let hash = String.sub line 0 64 in
    if not (String.for_all is_hex hash) then fail "chain hash is not lowercase hex"
    else if line.[64] <> ' ' then fail "missing separator after chain hash"
    else
      let payload = String.sub line 65 (String.length line - 65) in
      match Json.of_string payload with
      | Error e -> fail ("entry payload is not valid JSON: " ^ e)
      | Ok (Json.Obj fields) -> (
          let find k = List.assoc_opt k fields in
          match (find "seq", find "time", find "kind", find "body") with
          | Some (Json.Int seq), Some t, Some (Json.Str kind), Some body ->
              let time =
                match t with Json.Float f -> f | Json.Int i -> float_of_int i | _ -> nan
              in
              let dur = match find "dur" with Some (Json.Str d) -> d | _ -> "" in
              if Float.is_nan time then fail "entry time is not a number"
              else Ok ({ seq; time; kind; body; hash; dur }, payload)
          | _ -> fail "entry payload is missing seq/time/kind/body")
      | Ok _ -> fail "entry payload is not a JSON object"

(* --- offline verification --- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let verify_file path =
  match read_lines path with
  | [] -> Error { entry = 0; reason = "empty file: missing header line" }
  | header :: rest ->
      if header <> magic then
        Error { entry = 0; reason = Printf.sprintf "bad header (expected %S)" magic }
      else
        let rec go index prev acc = function
          | [] -> Ok (List.rev acc)
          | line :: tl -> (
              match parse_line ~index line with
              | Error e -> Error e
              | Ok (e, payload) ->
                  if e.hash <> link ~prev payload then
                    Error
                      {
                        entry = index;
                        reason = "chain hash mismatch: entry or its predecessor was altered";
                      }
                  else if e.seq <> index then
                    Error
                      {
                        entry = index;
                        reason =
                          Printf.sprintf "sequence gap: entry claims seq %d at position %d"
                            e.seq index;
                      }
                  else go (index + 1) e.hash (e :: acc) tl)
        in
        go 0 genesis [] rest

(* --- crash recovery --- *)

type repair = { kept : int; dropped : string option }

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_prefix_of whole s =
  String.length s <= String.length whole
  && String.equal s (String.sub whole 0 (String.length s))

(* Truncate a torn FINAL line — and only the final line. A line our writer
   produced is committed in one write ending in '\n', so a crash can leave
   at most one newline-less prefix at the tail; anything broken earlier (or
   a complete-but-invalid last line) is damage, not a crash artifact, and
   hard-fails exactly like [verify_file]. A valid final line that merely
   lost its '\n' gets the newline appended so the next append cannot fuse
   two lines. *)
let recover ~path =
  if not (Sys.file_exists path) then Ok { kept = 0; dropped = None }
  else begin
    let raw = try read_raw path with Sys_error _ | End_of_file -> "" in
    let finish repair =
      Metrics.recovery (if repair.dropped = None then "audit-clean" else "audit-truncated");
      (match repair.dropped with
      | Some line ->
        Flight.record ~cat:"recover"
          ~detail:
            (Printf.sprintf "%s: dropped %d-byte torn tail line" path (String.length line))
          "audit.truncated"
      | None -> ());
      Ok repair
    in
    let nl_terminated = String.length raw > 0 && raw.[String.length raw - 1] = '\n' in
    let lines = String.split_on_char '\n' raw in
    let lines = if nl_terminated then List.filteri (fun i _ -> i < List.length lines - 1) lines else lines in
    match lines with
    | [] | [ "" ] ->
      (* Crash between creation and the header reaching the disk: nothing
         was ever durable, so a fresh start is the honest state. *)
      (try Sys.remove path with Sys_error _ -> ());
      finish { kept = 0; dropped = None }
    | header :: entries when String.equal header magic -> (
      let n = List.length entries in
      let rec walk index prev kept = function
        | [] -> `Intact (List.rev kept)
        | line :: tl -> (
          match parse_line ~index line with
          | Ok (e, payload) when String.equal e.hash (link ~prev payload) && e.seq = index
            ->
            walk (index + 1) e.hash (line :: kept) tl
          | Ok (_, _) | Error _ ->
            if index = n - 1 && not nl_terminated then `Torn_tail (List.rev kept, line)
            else
              `Damaged
                {
                  entry = index;
                  reason = "chain broken before the final line: refusing to repair";
                })
      in
      match walk 0 genesis [] entries with
      | `Intact kept_lines ->
        if nl_terminated then finish { kept = List.length kept_lines; dropped = None }
        else begin
          (* Complete, valid tail that lost only its newline. *)
          (try
             let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
             Fun.protect
               ~finally:(fun () -> close_out_noerr oc)
               (fun () ->
                 output_char oc '\n';
                 flush oc;
                 try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ())
           with Sys_error _ -> ());
          finish { kept = List.length kept_lines; dropped = None }
        end
      | `Torn_tail (kept_lines, torn) -> (
        let contents = String.concat "\n" (magic :: kept_lines) ^ "\n" in
        match Durable.replace ~path contents with
        | Ok () -> finish { kept = List.length kept_lines; dropped = Some torn }
        | Error e ->
          Error { entry = n - 1; reason = "cannot rewrite log: " ^ Durable.error_to_string e })
      | `Damaged b -> Error b)
    | torn_header :: [] when (not nl_terminated) && is_prefix_of magic torn_header ->
      (* Torn header write: the log never durably existed. *)
      (try Sys.remove path with Sys_error _ -> ());
      finish { kept = 0; dropped = None }
    | _ -> Error { entry = 0; reason = Printf.sprintf "bad header (expected %S)" magic }
  end

(* --- global sink --- *)

type sink = {
  oc : out_channel;
  spath : string;
  dur : durability;
  mutable prev : string;
  mutable next_seq : int;
  mutable last_fsync : float;
}

let sink_lock = Mutex.create ()
let sink : sink option ref = ref None

let m_fsync =
  Metrics.fcounter ~name:"zkqac_audit_fsync_seconds_total"
    ~help:"Wall-clock seconds spent fsyncing the audit log (group commit)."

let fsync_oc oc =
  let t0 = Unix.gettimeofday () in
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  Metrics.finc m_fsync ~by:(Unix.gettimeofday () -. t0) []

let disable () =
  Mutex.lock sink_lock;
  (match !sink with
  | Some s ->
      (try
         flush s.oc;
         if s.dur <> Never then fsync_oc s.oc;
         close_out s.oc
       with Sys_error _ -> ());
      sink := None
  | None -> ());
  Mutex.unlock sink_lock

let enable ?(durability = Always) ~path () =
  disable ();
  let resume =
    if Sys.file_exists path then
      match verify_file path with
      | Ok entries ->
          let prev = match List.rev entries with e :: _ -> e.hash | [] -> genesis in
          Ok (prev, List.length entries)
      | Error b ->
          Error
            (Printf.sprintf "refusing to append to corrupted audit log %s (entry %d: %s)"
               path b.entry b.reason)
    else Ok (genesis, -1)
  in
  match resume with
  | Error _ as e -> e
  | Ok (prev, n) -> (
      try
        let fresh = n < 0 in
        let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
        if fresh then begin
          output_string oc (magic ^ "\n");
          flush oc;
          (* A log that exists only in the page cache can vanish in the same
             crash its entries are meant to explain: make the header — and,
             via the directory fsync, the file itself — durable before the
             first entry is acknowledged. *)
          if durability <> Never then begin
            fsync_oc oc;
            match Durable.fsync_dir (Filename.dirname path) with
            | Ok () -> ()
            | Error e ->
              Flight.record ~cat:"recover" ~detail:(Durable.error_to_string e)
                "audit.dir-fsync-failed"
          end
        end;
        Mutex.lock sink_lock;
        sink :=
          Some
            {
              oc;
              spath = path;
              dur = durability;
              prev;
              next_seq = max n 0;
              last_fsync = Unix.gettimeofday ();
            };
        Mutex.unlock sink_lock;
        Ok ()
      with Sys_error e -> Error ("cannot open audit log: " ^ e))

let enabled () =
  Mutex.lock sink_lock;
  let r = !sink <> None in
  Mutex.unlock sink_lock;
  r

let path () =
  Mutex.lock sink_lock;
  let r = match !sink with Some s -> Some s.spath | None -> None in
  Mutex.unlock sink_lock;
  r

let durability () =
  Mutex.lock sink_lock;
  let r = match !sink with Some s -> Some s.dur | None -> None in
  Mutex.unlock sink_lock;
  r

let record ?time ~kind body =
  Mutex.lock sink_lock;
  (match !sink with
  | None -> ()
  | Some s ->
      let time = match time with Some t -> t | None -> Unix.gettimeofday () in
      let payload =
        payload_string ~seq:s.next_seq ~time ~kind ~dur:(durability_to_string s.dur) body
      in
      let h = link ~prev:s.prev payload in
      let line = h ^ " " ^ payload ^ "\n" in
      (try
         (* Crash-harness hook: leave exactly half a line on disk, the torn
            state [recover] must truncate. *)
         if Crashpoint.armed "audit-torn" then begin
           output_string s.oc (String.sub line 0 (String.length line / 2));
           flush s.oc;
           Crashpoint.kill_now ()
         end;
         output_string s.oc line;
         flush s.oc;
         (match s.dur with
         | Always -> fsync_oc s.oc
         | Interval dt ->
           let now = Unix.gettimeofday () in
           if now -. s.last_fsync >= dt then begin
             fsync_oc s.oc;
             s.last_fsync <- now
           end
         | Never -> ());
         s.prev <- h;
         s.next_seq <- s.next_seq + 1
       with Sys_error _ -> ()));
  Mutex.unlock sink_lock

let pp_time t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
