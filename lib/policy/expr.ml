type t =
  | Leaf of Attr.t
  | And of t list
  | Or of t list
  | Threshold of int * t list

let leaf a =
  if not (Attr.is_valid a) then invalid_arg ("Expr.leaf: invalid attribute " ^ a);
  Leaf a

let flatten_under ctor children =
  List.concat_map
    (fun c ->
      match (ctor, c) with
      | `And, And xs -> xs
      | `Or, Or xs -> xs
      | _, other -> [ other ])
    children

let conj children =
  match flatten_under `And children with
  | [] -> invalid_arg "Expr.conj: empty"
  | [ x ] -> x
  | xs -> And xs

let disj children =
  match flatten_under `Or children with
  | [] -> invalid_arg "Expr.disj: empty"
  | [ x ] -> x
  | xs -> Or xs

let of_attrs_or attrs = disj (List.map leaf attrs)
let of_attrs_and attrs = conj (List.map leaf attrs)

let threshold k children =
  let n = List.length children in
  if k < 1 || k > n then invalid_arg "Expr.threshold: k out of range";
  if k = 1 then disj children
  else if k = n then conj children
  else Threshold (k, children)

(* All k-element sublists, preserving order. *)
let rec combinations k xs =
  if k = 0 then [ [] ]
  else begin
    match xs with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (combinations (k - 1) rest) @ combinations k rest
  end

let rec expand_thresholds = function
  | Leaf a -> Leaf a
  | And xs -> conj (List.map expand_thresholds xs)
  | Or xs -> disj (List.map expand_thresholds xs)
  | Threshold (k, xs) ->
    let xs = List.map expand_thresholds xs in
    disj (List.map conj (combinations k xs))

let rec eval t attrs =
  match t with
  | Leaf a -> Attr.Set.mem a attrs
  | And xs -> List.for_all (fun x -> eval x attrs) xs
  | Or xs -> List.exists (fun x -> eval x attrs) xs
  | Threshold (k, xs) ->
    List.length (List.filter (fun x -> eval x attrs) xs) >= k

let rec attrs = function
  | Leaf a -> Attr.Set.singleton a
  | And xs | Or xs | Threshold (_, xs) ->
    List.fold_left (fun acc x -> Attr.Set.union acc (attrs x)) Attr.Set.empty xs

let rec compare a b =
  match (a, b) with
  | Leaf x, Leaf y -> Attr.compare x y
  | Leaf _, _ -> -1
  | _, Leaf _ -> 1
  | And xs, And ys -> List.compare compare xs ys
  | And _, _ -> -1
  | _, And _ -> 1
  | Or xs, Or ys -> List.compare compare xs ys
  | Or _, _ -> -1
  | _, Or _ -> 1
  | Threshold (j, xs), Threshold (k, ys) ->
    let c = Stdlib.compare j k in
    if c <> 0 then c else List.compare compare xs ys

let equal a b = compare a b = 0

let rec num_leaves = function
  | Leaf _ -> 1
  | And xs | Or xs | Threshold (_, xs) ->
    List.fold_left (fun acc x -> acc + num_leaves x) 0 xs

(* Printing: '&' binds tighter than '|'; parenthesize an Or under an And. *)
let rec to_string = function
  | Leaf a -> a
  | And xs ->
    String.concat " & "
      (List.map
         (fun x ->
           match x with Or _ -> "(" ^ to_string x ^ ")" | _ -> to_string x)
         xs)
  | Or xs -> String.concat " | " (List.map to_string xs)
  | Threshold (k, xs) ->
    Printf.sprintf "%dof(%s)" k (String.concat ", " (List.map to_string xs))

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Recursive-descent parser for the same syntax. Nesting is capped so a
   hostile policy string of a million open parens fails with
   Invalid_argument instead of exhausting the stack mid-decode. *)
let max_parse_depth = 64

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let depth = ref 0 in
  let peek () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n') do
      incr pos
    done;
    if !pos < n then Some s.[!pos] else None
  in
  let fail msg = invalid_arg (Printf.sprintf "Expr.of_string: %s at offset %d" msg !pos) in
  let ident () =
    let start = !pos in
    while
      !pos < n
      && not (List.mem s.[!pos] [ '&'; '|'; '('; ')'; ','; ' '; '\t'; '\n' ])
    do
      incr pos
    done;
    if !pos = start then fail "expected attribute";
    String.sub s start (!pos - start)
  in
  let rec parse_or () =
    let first = parse_and () in
    let rec more acc =
      match peek () with
      | Some '|' ->
        incr pos;
        more (parse_and () :: acc)
      | _ -> List.rev acc
    in
    match more [ first ] with [ x ] -> x | xs -> disj xs
  and parse_and () =
    let first = parse_atom () in
    let rec more acc =
      match peek () with
      | Some '&' ->
        incr pos;
        more (parse_atom () :: acc)
      | _ -> List.rev acc
    in
    match more [ first ] with [ x ] -> x | xs -> conj xs
  and parse_atom () =
    match peek () with
    | Some '(' ->
      incr pos;
      incr depth;
      if !depth > max_parse_depth then fail "nesting too deep";
      let e = parse_or () in
      (match peek () with
       | Some ')' -> incr pos
       | _ -> fail "expected ')'");
      decr depth;
      e
    | Some (')' | '&' | '|' | ',') -> fail "unexpected operator"
    | Some _ ->
      let name = ident () in
      (* "<k>of(e1, e2, ...)" is a threshold gate. *)
      let is_threshold =
        String.length name > 2
        && String.for_all (fun c -> c >= '0' && c <= '9')
             (String.sub name 0 (String.length name - 2))
        && String.sub name (String.length name - 2) 2 = "of"
        && peek () = Some '('
      in
      if is_threshold then begin
        let k = int_of_string (String.sub name 0 (String.length name - 2)) in
        incr pos;
        incr depth;
        if !depth > max_parse_depth then fail "nesting too deep";
        let rec children acc =
          let e = parse_or () in
          match peek () with
          | Some ',' ->
            incr pos;
            children (e :: acc)
          | Some ')' ->
            incr pos;
            List.rev (e :: acc)
          | _ -> fail "expected ',' or ')'"
        in
        let xs = children [] in
        decr depth;
        (try threshold k xs with Invalid_argument m -> fail m)
      end
      else leaf name
    | None -> fail "unexpected end of input"
  in
  let e = parse_or () in
  match peek () with None -> e | Some _ -> fail "trailing input"

type dnf = Attr.Set.t list

let absorb clauses =
  (* Drop clauses that are supersets of another clause. *)
  let sorted = List.sort (fun a b -> Stdlib.compare (Attr.Set.cardinal a) (Attr.Set.cardinal b)) clauses in
  List.fold_left
    (fun kept c ->
      if List.exists (fun k -> Attr.Set.subset k c) kept then kept else c :: kept)
    [] sorted
  |> List.rev

let rec to_dnf = function
  | Leaf a -> [ Attr.Set.singleton a ]
  | Threshold _ as t -> to_dnf (expand_thresholds t)
  | Or xs -> absorb (List.concat_map to_dnf xs)
  | And xs ->
    let parts = List.map to_dnf xs in
    let cross acc part =
      List.concat_map (fun c1 -> List.map (fun c2 -> Attr.Set.union c1 c2) part) acc
    in
    absorb (List.fold_left cross [ Attr.Set.empty ] parts)

let of_dnf clauses =
  match clauses with
  | [] -> invalid_arg "Expr.of_dnf: empty"
  | _ ->
    disj
      (List.map
         (fun clause ->
           match Attr.Set.elements clause with
           | [] -> invalid_arg "Expr.of_dnf: empty clause"
           | attrs -> of_attrs_and attrs)
         clauses)

let eval_dnf dnf attrs = List.exists (fun clause -> Attr.Set.subset clause attrs) dnf
let dnf_clause_sets t = to_dnf t

let canonical t =
  let dnf = to_dnf t in
  let sorted =
    List.sort
      (fun a b -> List.compare Attr.compare (Attr.Set.elements a) (Attr.Set.elements b))
      dnf
  in
  of_dnf sorted

let random rng ~roles ~or_fanin ~and_fanin =
  if Array.length roles = 0 then invalid_arg "Expr.random: no roles";
  let module Prng = Zkqac_rng.Prng in
  let n_clauses = 1 + Prng.int rng or_fanin in
  let clause () =
    let n_attrs = min (Array.length roles) (1 + Prng.int rng and_fanin) in
    let picked = Array.copy roles in
    Prng.shuffle rng picked;
    of_attrs_and (Array.to_list (Array.sub picked 0 n_attrs))
  in
  disj (List.init n_clauses (fun _ -> clause ()))
