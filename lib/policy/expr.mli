(** Monotone boolean access policies over attributes.

    Policies are the [Υ] of the paper: monotone formulas built from AND/OR
    gates over roles. Monotonicity is guaranteed structurally (there is no
    negation), matching the paper's restriction to monotone span programs. *)

type t =
  | Leaf of Attr.t
  | And of t list
  | Or of t list
  | Threshold of int * t list
      (** [Threshold (k, children)]: at least [k] of the children must be
          satisfied. AND is n-of-n, OR is 1-of-n; thresholds generalize both
          (k-of-n gates are standard in the ABE literature the paper builds
          on). Internally compiled to OR-of-AND combinations where a binary
          gate structure is required. *)

val leaf : Attr.t -> t
val conj : t list -> t
(** N-ary AND; flattens nested ANDs and simplifies singletons.
    @raise Invalid_argument on an empty list. *)

val disj : t list -> t
(** N-ary OR, with the same normalizations. *)

val of_attrs_or : Attr.t list -> t
(** The super-policy shape [a1 ∨ a2 ∨ ... ∨ an]. *)

val of_attrs_and : Attr.t list -> t

val threshold : int -> t list -> t
(** [threshold k children]. Normalizes the degenerate cases k=1 (OR) and
    k=n (AND). @raise Invalid_argument unless [1 <= k <= length children]. *)

val expand_thresholds : t -> t
(** Rewrite every threshold gate into an OR of AND-combinations (exponential
    in gate width; thresholds are expected to be narrow). The result contains
    only Leaf/And/Or. *)

val eval : t -> Attr.Set.t -> bool
(** [eval policy attrs] is [Υ(attrs)]. *)

val attrs : t -> Attr.Set.t
(** All attributes mentioned. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val num_leaves : t -> int
(** Policy length in the paper's sense (number of role occurrences). *)

val to_string : t -> string
(** Concrete syntax, e.g. ["(RoleA & RoleB) | RoleC"]. *)

val of_string : string -> t
(** Parses the syntax of {!to_string}: identifiers, [&], [|], parentheses;
    [&] binds tighter than [|]. @raise Invalid_argument on syntax errors or
    on nesting deeper than 64 levels, so a hostile policy string cannot
    exhaust the parser stack. *)

val pp : Format.formatter -> t -> unit

(** {1 Disjunctive normal form} *)

type dnf = Attr.Set.t list
(** OR of AND-clauses; each clause is the set of attributes that must all be
    held. This is the normalized policy form of Section 3. *)

val to_dnf : t -> dnf
(** Expansion to DNF with absorption (clauses that are supersets of other
    clauses are dropped). Worst-case exponential, as always. *)

val of_dnf : dnf -> t
val eval_dnf : dnf -> Attr.Set.t -> bool
val dnf_clause_sets : t -> Attr.Set.t list
(** The [X] set of Section 9.1: the OR-operand set of the DNF. *)

val canonical : t -> t
(** DNF-based canonical form, usable as a dictionary key for policies. *)

(** {1 Random policy generation (experimental workloads)} *)

val random :
  Zkqac_rng.Prng.t ->
  roles:Attr.t array ->
  or_fanin:int ->
  and_fanin:int ->
  t
(** A random DNF-shaped policy: an OR of at most [or_fanin] clauses, each an
    AND of at most [and_fanin] distinct roles — the generator used throughout
    the paper's experiments (defaults there: 3 and 2). *)
