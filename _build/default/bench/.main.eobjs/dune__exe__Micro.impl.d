bench/micro.ml: Analyze Bechamel Benchmark Float Hashtbl Instance List Measure Printf Report Staged Test Time Toolkit Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
