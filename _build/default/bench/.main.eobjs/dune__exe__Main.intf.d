bench/main.mli:
