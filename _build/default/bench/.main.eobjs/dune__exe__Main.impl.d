bench/main.ml: Array Experiments List Micro Printf Report String Sys Unix Zkqac_group
