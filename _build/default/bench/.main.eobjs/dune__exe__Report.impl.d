bench/report.ml: List Option Printf String Unix
