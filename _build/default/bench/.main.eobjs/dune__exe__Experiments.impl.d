bench/experiments.ml: Array Fun List Option Printf Report Zkqac_abs Zkqac_core Zkqac_group Zkqac_hashing Zkqac_parallel Zkqac_policy Zkqac_rng Zkqac_tpch
