module Sha256 = Zkqac_hashing.Sha256
module Hmac = Zkqac_hashing.Hmac
module Hex = Zkqac_hashing.Hex
module Drbg = Zkqac_hashing.Drbg
module Htf = Zkqac_hashing.Hash_to_field
module B = Zkqac_bigint.Bigint

(* NIST FIPS 180-4 test vectors. *)
let test_sha256_vectors () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  Alcotest.(check string) "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  let whole = Sha256.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  List.iter (Sha256.update ctx)
    [ "the quick "; ""; "brown fox jumps"; " over the lazy dog" ];
  Alcotest.(check string) "incremental" (Hex.encode whole)
    (Hex.encode (Sha256.finalize ctx))

let test_sha256_block_boundaries () =
  (* Exercise all padding paths: lengths around the 55/56/64 byte edges. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.update ctx (String.make 1 c)) s;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Hex.encode (Sha256.digest s))
        (Hex.encode (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128; 1000 ]

let test_digest_list_unambiguous () =
  let d1 = Sha256.digest_list [ "ab"; "c" ] in
  let d2 = Sha256.digest_list [ "a"; "bc" ] in
  Alcotest.(check bool) "different" false (String.equal d1 d2)

(* RFC 4231 test case 2. *)
let test_hmac_vector () =
  Alcotest.(check string) "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hex.encode (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  (* RFC 4231 test case 1. *)
  Alcotest.(check string) "rfc4231 tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hex.encode (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"))

let test_drbg_deterministic () =
  let d1 = Drbg.create ~seed:"seed" in
  let d2 = Drbg.create ~seed:"seed" in
  let d3 = Drbg.create ~seed:"other" in
  let a = Drbg.generate d1 100 in
  let b2 = Drbg.generate d2 100 in
  let c = Drbg.generate d3 100 in
  Alcotest.(check string) "same seed same stream" (Hex.encode a) (Hex.encode b2);
  Alcotest.(check bool) "different seed" false (String.equal a c);
  let next = Drbg.generate d1 100 in
  Alcotest.(check bool) "stream advances" false (String.equal a next)

let test_drbg_bigint_bounds () =
  let d = Drbg.create ~seed:"bounds" in
  let bound = B.of_string "1000003" in
  for _ = 1 to 200 do
    let v = Drbg.bigint d bound in
    Alcotest.(check bool) "in range" true (B.sign v >= 0 && B.compare v bound < 0)
  done;
  for _ = 1 to 50 do
    let v = Drbg.nonzero_bigint d (B.of_int 2) in
    Alcotest.(check bool) "nonzero" true (B.is_one v)
  done

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff random bytes" in
  Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s));
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"))

let test_hash_to_field () =
  let p = B.of_string "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff13" in
  let v1 = Htf.to_zp ~domain:"d1" ~p "hello" in
  let v1' = Htf.to_zp ~domain:"d1" ~p "hello" in
  let v2 = Htf.to_zp ~domain:"d2" ~p "hello" in
  Alcotest.(check bool) "deterministic" true (B.equal v1 v1');
  Alcotest.(check bool) "domain separated" false (B.equal v1 v2);
  Alcotest.(check bool) "in field" true (B.compare v1 p < 0 && B.sign v1 >= 0);
  let l1 = Htf.to_zp_list ~domain:"d" ~p [ "ab"; "c" ] in
  let l2 = Htf.to_zp_list ~domain:"d" ~p [ "a"; "bc" ] in
  Alcotest.(check bool) "list unambiguous" false (B.equal l1 l2)

let suite =
  [
    ( "hashing",
      [
        Alcotest.test_case "sha256 NIST vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
        Alcotest.test_case "sha256 block boundaries" `Quick test_sha256_block_boundaries;
        Alcotest.test_case "digest_list unambiguous" `Quick test_digest_list_unambiguous;
        Alcotest.test_case "hmac RFC4231" `Quick test_hmac_vector;
        Alcotest.test_case "drbg deterministic" `Quick test_drbg_deterministic;
        Alcotest.test_case "drbg bigint bounds" `Quick test_drbg_bigint_bounds;
        Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        Alcotest.test_case "hash to field" `Quick test_hash_to_field;
      ] );
  ]
