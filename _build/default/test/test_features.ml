(* Tests for the extension features: threshold gates, batch verification,
   verified aggregation, ADS persistence, the CLI-facing codecs, and the
   Figure-1 baselines (Schnorr, signature chaining, Merkle hash tree). *)

module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Msp = Zkqac_policy.Msp
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record

let attrs = Attr.set_of_list

module Mock_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Mock_backend)
module Cpabe = Zkqac_cpabe.Cpabe.Make (Mock_backend)
module Ap2g = Zkqac_core.Ap2g.Make (Mock_backend)
module Vo = Zkqac_core.Vo.Make (Mock_backend)
module Aggregate = Zkqac_core.Aggregate.Make (Mock_backend)
module Ads_io = Zkqac_core.Ads_io.Make (Mock_backend)
module Schnorr = Zkqac_baseline.Schnorr.Make (Mock_backend)
module Merkle = Zkqac_baseline.Merkle.Make (Mock_backend)
module Sigchain = Zkqac_baseline.Sigchain.Make (Mock_backend)

let drbg = Drbg.create ~seed:"features"
let msk, mvk = Abs.setup drbg
let roles = [ "RoleA"; "RoleB"; "RoleC"; "RoleD" ]
let universe = Universe.create roles
let sk = Abs.keygen drbg msk (Universe.attrs universe)

(* --- threshold gates --- *)

let test_threshold_eval () =
  let t = Expr.threshold 2 [ Expr.leaf "A"; Expr.leaf "B"; Expr.leaf "C" ] in
  Alcotest.(check bool) "2of3 ab" true (Expr.eval t (attrs [ "A"; "B" ]));
  Alcotest.(check bool) "2of3 ac" true (Expr.eval t (attrs [ "A"; "C" ]));
  Alcotest.(check bool) "2of3 a" false (Expr.eval t (attrs [ "A" ]));
  Alcotest.(check bool) "2of3 abc" true (Expr.eval t (attrs [ "A"; "B"; "C" ]));
  (* Degenerate thresholds normalize. *)
  Alcotest.(check bool) "1ofn = or" true
    (Expr.equal (Expr.threshold 1 [ Expr.leaf "A"; Expr.leaf "B" ])
       (Expr.of_string "A | B"));
  Alcotest.(check bool) "nofn = and" true
    (Expr.equal (Expr.threshold 2 [ Expr.leaf "A"; Expr.leaf "B" ])
       (Expr.of_string "A & B"))

let test_threshold_expand_semantics () =
  let rng = Prng.create 31 in
  let role_arr = [| "A"; "B"; "C"; "D"; "E" |] in
  for _ = 1 to 100 do
    let k = 1 + Prng.int rng 3 in
    let n = k + Prng.int rng (5 - k + 1) in
    let children =
      List.init n (fun i -> Expr.leaf role_arr.(i mod Array.length role_arr))
    in
    let t = Expr.threshold k children in
    let expanded = Expr.expand_thresholds t in
    for mask = 0 to 31 do
      let a =
        attrs
          (List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
             (Array.to_list role_arr))
      in
      if Expr.eval t a <> Expr.eval expanded a then
        Alcotest.failf "expansion mismatch for %s" (Expr.to_string t)
    done
  done

let test_threshold_parser_roundtrip () =
  List.iter
    (fun s ->
      let e = Expr.of_string s in
      let e' = Expr.of_string (Expr.to_string e) in
      Alcotest.(check bool) s true (Expr.equal e e'))
    [ "2of(A, B, C)"; "2of(A & B, C, D | E)"; "A & 2of(B, C, D)";
      "3of(A, B, C, D) | E" ]

let test_threshold_abs_sign_verify () =
  let policy = Expr.of_string "2of(RoleA, RoleB, RoleC)" in
  let sigma = Abs.sign drbg mvk sk ~msg:"t" ~policy in
  Alcotest.(check bool) "verifies" true (Abs.verify mvk ~msg:"t" ~policy sigma);
  (* A user holding only RoleD cannot satisfy it; relaxation works. *)
  let keep = Universe.missing universe ~user:(attrs [ "RoleD" ]) in
  (match Abs.relax drbg mvk sigma ~msg:"t" ~policy ~keep with
   | Some r ->
     Alcotest.(check bool) "relaxed verifies" true
       (Abs.verify mvk ~msg:"t" ~policy:(Abs.relaxed_policy keep) r)
   | None -> Alcotest.fail "threshold relaxation should succeed");
  (* A user holding RoleA+RoleB satisfies it: relaxation must refuse. *)
  let keep2 = Universe.missing universe ~user:(attrs [ "RoleA"; "RoleB" ]) in
  Alcotest.(check bool) "relaxation refused" true
    (Abs.relax drbg mvk sigma ~msg:"t" ~policy ~keep:keep2 = None)

let test_threshold_cpabe () =
  let cp_mk, cp_pp = Cpabe.setup drbg in
  let policy = Expr.threshold 2 [ Expr.leaf "A"; Expr.leaf "B"; Expr.leaf "C" ] in
  let m = Cpabe.random_message drbg cp_pp in
  let ct = Cpabe.encrypt drbg cp_pp m ~policy in
  let check user expected =
    let skx = Cpabe.keygen drbg cp_mk cp_pp (attrs user) in
    match Cpabe.decrypt cp_pp skx ct with
    | Some m' ->
      Alcotest.(check bool) "decrypts" true expected;
      Alcotest.(check bool) "right message" true (Mock_backend.Gt.equal m m')
    | None -> Alcotest.(check bool) "denied" false expected
  in
  check [ "A"; "C" ] true;
  check [ "B"; "C" ] true;
  check [ "A" ] false;
  check [ "D" ] false;
  check [ "A"; "B"; "C" ] true

(* --- batch verification --- *)

let batch_fixture () =
  let user = attrs [ "RoleD" ] in
  let keep = Universe.missing universe ~user in
  let super = Abs.relaxed_policy keep in
  let sigs =
    List.init 8 (fun i ->
        let msg = "batch-" ^ string_of_int i in
        let policy = Expr.of_string (if i mod 2 = 0 then "RoleA & RoleB" else "RoleC") in
        let sigma = Abs.sign drbg mvk sk ~msg ~policy in
        let aps = Option.get (Abs.relax drbg mvk sigma ~msg ~policy ~keep) in
        (msg, aps))
  in
  (super, sigs)

let test_batch_verify_accepts () =
  let super, sigs = batch_fixture () in
  Alcotest.(check bool) "batch accepts" true
    (Abs.verify_batch drbg mvk ~policy:super sigs);
  Alcotest.(check bool) "empty batch" true (Abs.verify_batch drbg mvk ~policy:super []);
  Alcotest.(check bool) "singleton batch" true
    (Abs.verify_batch drbg mvk ~policy:super [ List.hd sigs ])

let test_batch_verify_rejects () =
  let super, sigs = batch_fixture () in
  (* Corrupt one message: the whole batch must fail. *)
  let corrupted =
    List.mapi (fun i (m, s) -> if i = 3 then (m ^ "!", s) else (m, s)) sigs
  in
  Alcotest.(check bool) "batch rejects corruption" false
    (Abs.verify_batch drbg mvk ~policy:super corrupted);
  (* Swap two signatures' messages: also caught. *)
  (match sigs with
   | (m1, s1) :: (m2, s2) :: rest ->
     Alcotest.(check bool) "batch rejects swap" false
       (Abs.verify_batch drbg mvk ~policy:super ((m1, s2) :: (m2, s1) :: rest))
   | _ -> assert false)

let space = Keyspace.create ~dims:2 ~depth:3

let records =
  [ ([| 1; 1 |], "10.5", "RoleA"); ([| 2; 5 |], "20.25", "RoleB");
    ([| 3; 3 |], "30.0", "RoleA & RoleB"); ([| 5; 2 |], "7.5", "RoleA");
    ([| 6; 6 |], "1.0", "RoleC") ]
  |> List.map (fun (k, v, p) -> Record.make ~key:k ~value:v ~policy:(Expr.of_string p))

let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"feat" records

let test_batched_vo_verify () =
  let user = attrs [ "RoleA" ] in
  let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  (match Ap2g.verify ~batch:drbg ~mvk ~t_universe:universe ~user ~query vo with
   | Ok results -> Alcotest.(check int) "batched results" 2 (List.length results)
   | Error e -> Alcotest.failf "batched verify: %s" (Vo.error_to_string e));
  (* Tampering caught in batch mode too. *)
  let tampered =
    List.map
      (function
        | Vo.Inaccessible_leaf { region; key; value_hash; aps } ->
          Vo.Inaccessible_leaf
            { region; key; value_hash = String.map Char.uppercase_ascii value_hash; aps }
        | e -> e)
      vo
  in
  match Ap2g.verify ~batch:drbg ~mvk ~t_universe:universe ~user ~query tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "batched verify must catch tampering"

(* --- aggregation --- *)

let test_aggregate () =
  let user = attrs [ "RoleA" ] in
  let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  let extract (r : Record.t) = float_of_string_opt r.Record.value in
  (match Aggregate.count ~mvk ~tree_universe:universe ~user ~query vo with
   | Ok c ->
     Alcotest.(check int) "count" 2 c.Aggregate.value (* 10.5 and 7.5 records *)
   | Error e -> Alcotest.failf "count: %s" (Vo.error_to_string e));
  (match Aggregate.sum ~mvk ~tree_universe:universe ~user ~query ~extract vo with
   | Ok s -> Alcotest.(check (float 0.001)) "sum" 18.0 s.Aggregate.value
   | Error e -> Alcotest.failf "sum: %s" (Vo.error_to_string e));
  (match Aggregate.min_max ~mvk ~tree_universe:universe ~user ~query ~extract vo with
   | Ok { Aggregate.value = Some (lo, hi); _ } ->
     Alcotest.(check (float 0.001)) "min" 7.5 lo;
     Alcotest.(check (float 0.001)) "max" 10.5 hi
   | Ok { Aggregate.value = None; _ } -> Alcotest.fail "expected min/max"
   | Error e -> Alcotest.failf "minmax: %s" (Vo.error_to_string e));
  (* Aggregation refuses unverifiable input. *)
  let dropped = List.filter (function Vo.Accessible _ -> false | _ -> true) vo in
  match Aggregate.count ~mvk ~tree_universe:universe ~user ~query dropped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "aggregate over tampered VO must fail"

(* --- ADS persistence --- *)

let test_ads_roundtrip () =
  let bytes = Ap2g.to_bytes tree in
  (match Ap2g.of_bytes bytes with
   | None -> Alcotest.fail "tree roundtrip failed"
   | Some tree' ->
     let user = attrs [ "RoleA" ] in
     let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
     let vo, _ = Ap2g.range_vo drbg ~mvk tree' ~user query in
     (match Ap2g.verify ~mvk ~t_universe:(Ap2g.universe tree') ~user ~query vo with
      | Ok results -> Alcotest.(check int) "results from loaded tree" 2 (List.length results)
      | Error e -> Alcotest.failf "loaded tree verify: %s" (Vo.error_to_string e)));
  Alcotest.(check bool) "garbage rejected" true (Ap2g.of_bytes "nope" = None)

let test_ads_file_roundtrip () =
  let path = Filename.temp_file "zkqac-test" ".ads" in
  Ads_io.save ~path ~mvk tree;
  (match Ads_io.load ~path with
   | Error e -> Alcotest.failf "load: %s" e
   | Ok (mvk', tree') ->
     Alcotest.(check int) "records preserved" (Ap2g.num_records tree)
       (Ap2g.num_records tree');
     let user = attrs [ "RoleB" ] in
     let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
     let vo, _ = Ap2g.range_vo drbg ~mvk:mvk' tree' ~user query in
     (match Ap2g.verify ~mvk:mvk' ~t_universe:(Ap2g.universe tree') ~user ~query vo with
      | Ok results -> Alcotest.(check int) "loaded results" 1 (List.length results)
      | Error e -> Alcotest.failf "verify: %s" (Vo.error_to_string e)));
  (* Corruption is detected by the checksum. *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let corrupted = Bytes.of_string data in
  Bytes.set corrupted (Bytes.length corrupted / 2)
    (Char.chr (Char.code (Bytes.get corrupted (Bytes.length corrupted / 2)) lxor 1));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Bytes.to_string corrupted));
  (match Ads_io.load ~path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "corrupted ADS must be rejected");
  Sys.remove path

(* --- Schnorr --- *)

let test_schnorr () =
  let secret, public = Schnorr.keygen drbg in
  let sigma = Schnorr.sign drbg secret "hello" in
  Alcotest.(check bool) "verifies" true (Schnorr.verify public "hello" sigma);
  Alcotest.(check bool) "wrong msg" false (Schnorr.verify public "hell0" sigma);
  let _, public2 = Schnorr.keygen drbg in
  Alcotest.(check bool) "wrong key" false (Schnorr.verify public2 "hello" sigma);
  (match Schnorr.of_bytes (Schnorr.to_bytes sigma) with
   | Some sigma' -> Alcotest.(check bool) "roundtrip" true (Schnorr.verify public "hello" sigma')
   | None -> Alcotest.fail "codec roundtrip")

(* --- Merkle baseline --- *)

let records_1d =
  [ (3, "a"); (7, "b"); (12, "c"); (20, "d"); (28, "e"); (40, "f"); (55, "g") ]
  |> List.map (fun (k, v) ->
         Record.make ~key:[| k |] ~value:v ~policy:(Expr.of_string "RoleA"))

let test_merkle () =
  let secret, public = Schnorr.keygen drbg in
  let mht = Merkle.build drbg secret records_1d in
  Alcotest.(check int) "records" 7 (Merkle.num_records mht);
  List.iter
    (fun (lo, hi, expected) ->
      let vo = Merkle.range_vo mht ~lo ~hi in
      match Merkle.verify ~public ~lo ~hi vo with
      | Ok rs ->
        Alcotest.(check int) (Printf.sprintf "mht [%d,%d]" lo hi) expected
          (List.length rs);
        Alcotest.(check bool) "vo size" true (Merkle.vo_size vo > 0)
      | Error e -> Alcotest.failf "mht [%d,%d]: %s" lo hi e)
    [ (0, 100, 7); (5, 25, 3); (8, 11, 0); (0, 2, 0); (56, 99, 0); (3, 3, 1);
      (28, 55, 3) ]

let test_merkle_omission_detected () =
  let secret, public = Schnorr.keygen drbg in
  let mht = Merkle.build drbg secret records_1d in
  (* Build a VO for a smaller range and try to pass it off for a bigger one:
     the boundary checks must catch it. *)
  let vo_small = Merkle.range_vo mht ~lo:5 ~hi:25 in
  (match Merkle.verify ~public ~lo:5 ~hi:45 vo_small with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "MHT range substitution must be detected")

let test_sigchain () =
  let secret, public = Schnorr.keygen drbg in
  let chain = Sigchain.build drbg secret records_1d in
  Alcotest.(check int) "one signature per record" 7 (Sigchain.num_signatures chain);
  List.iter
    (fun (lo, hi, expected) ->
      let vo = Sigchain.range_vo chain ~lo ~hi in
      match Sigchain.verify ~public ~lo ~hi vo with
      | Ok rs ->
        Alcotest.(check int) (Printf.sprintf "chain [%d,%d]" lo hi) expected
          (List.length rs)
      | Error e -> Alcotest.failf "chain [%d,%d]: %s" lo hi e)
    [ (0, 100, 7); (5, 25, 3); (8, 11, 0); (0, 2, 0); (56, 99, 0) ]

let test_sigchain_gap_detected () =
  let secret, public = Schnorr.keygen drbg in
  let chain = Sigchain.build drbg secret records_1d in
  let vo = Sigchain.range_vo chain ~lo:0 ~hi:100 in
  (* Splice out a middle record: discontinuity detected. *)
  let vo_small = Sigchain.range_vo chain ~lo:0 ~hi:10 in
  ignore vo_small;
  match Sigchain.verify ~public ~lo:0 ~hi:100 (Sigchain.range_vo chain ~lo:20 ~hi:40) with
  | Error _ -> ignore vo
  | Ok _ -> Alcotest.fail "sigchain range substitution must be detected"

(* --- the leakage contrast the paper motivates --- *)

let test_baselines_leak_what_zkqac_hides () =
  (* Same database, a user who can access nothing: the MHT VO necessarily
     contains every record in range (their existence leaks); the AP2G VO
     shows only opaque region proofs. *)
  let secret, public = Schnorr.keygen drbg in
  let hidden =
    List.map
      (fun (r : Record.t) -> { r with Record.policy = Expr.of_string "RoleD" })
      records_1d
  in
  let mht = Merkle.build drbg secret hidden in
  let mvo = Merkle.range_vo mht ~lo:0 ~hi:63 in
  (* MHT verification succeeds and hands the user all 7 hidden records. *)
  (match Merkle.verify ~public ~lo:0 ~hi:63 mvo with
   | Ok rs -> Alcotest.(check int) "mht leaks all" 7 (List.length rs)
   | Error e -> Alcotest.failf "mht: %s" e);
  let space1 = Keyspace.create ~dims:1 ~depth:6 in
  let ztree = Ap2g.build drbg ~mvk ~sk ~space:space1 ~universe ~pseudo_seed:"z" hidden in
  let user = attrs [ "RoleA" ] in
  let query = Box.of_range ~alpha:[| 0 |] ~beta:[| 63 |] in
  let zvo, _ = Ap2g.range_vo drbg ~mvk ztree ~user query in
  match Ap2g.verify ~mvk ~t_universe:universe ~user ~query zvo with
  | Ok rs ->
    Alcotest.(check int) "zkqac returns nothing" 0 (List.length rs);
    List.iter
      (function
        | Vo.Accessible _ -> Alcotest.fail "no record should be exposed"
        | Vo.Inaccessible_leaf _ | Vo.Inaccessible_node _ -> ())
      zvo
  | Error e -> Alcotest.failf "zkqac: %s" (Vo.error_to_string e)

let suite =
  [
    ( "features",
      [
        Alcotest.test_case "threshold eval" `Quick test_threshold_eval;
        Alcotest.test_case "threshold expansion semantics" `Quick
          test_threshold_expand_semantics;
        Alcotest.test_case "threshold parser roundtrip" `Quick
          test_threshold_parser_roundtrip;
        Alcotest.test_case "threshold ABS sign/verify/relax" `Quick
          test_threshold_abs_sign_verify;
        Alcotest.test_case "threshold CP-ABE" `Quick test_threshold_cpabe;
        Alcotest.test_case "batch verify accepts" `Quick test_batch_verify_accepts;
        Alcotest.test_case "batch verify rejects" `Quick test_batch_verify_rejects;
        Alcotest.test_case "batched VO verify" `Quick test_batched_vo_verify;
        Alcotest.test_case "aggregation" `Quick test_aggregate;
        Alcotest.test_case "ads bytes roundtrip" `Quick test_ads_roundtrip;
        Alcotest.test_case "ads file roundtrip" `Quick test_ads_file_roundtrip;
        Alcotest.test_case "schnorr" `Quick test_schnorr;
        Alcotest.test_case "merkle baseline" `Quick test_merkle;
        Alcotest.test_case "merkle omission" `Quick test_merkle_omission_detected;
        Alcotest.test_case "sigchain baseline" `Quick test_sigchain;
        Alcotest.test_case "sigchain gap" `Quick test_sigchain_gap_detected;
        Alcotest.test_case "baselines leak, zkqac hides" `Quick
          test_baselines_leak_what_zkqac_hides;
      ] );
  ]
