module B = Zkqac_bigint.Bigint
module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Msp = Zkqac_policy.Msp
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy
module Kd_split = Zkqac_policy.Kd_split
module Linalg = Zkqac_numth.Zp_linalg
module Prng = Zkqac_rng.Prng

let p_test = B.of_string "0xffffffffffffffffffffffffffffff61" (* any prime-ish large modulus works for span tests *)

(* Use a real prime so field inverses exist. *)
let p_test = Zkqac_numth.Primes.next_prime p_test

let attrs l = Attr.set_of_list l

let test_eval () =
  let e = Expr.of_string "RoleA & RoleB | RoleC" in
  Alcotest.(check bool) "ab" true (Expr.eval e (attrs [ "RoleA"; "RoleB" ]));
  Alcotest.(check bool) "c" true (Expr.eval e (attrs [ "RoleC" ]));
  Alcotest.(check bool) "a" false (Expr.eval e (attrs [ "RoleA" ]));
  Alcotest.(check bool) "empty" false (Expr.eval e (attrs []))

let test_parser_roundtrip () =
  List.iter
    (fun s ->
      let e = Expr.of_string s in
      let e' = Expr.of_string (Expr.to_string e) in
      Alcotest.(check bool) s true (Expr.equal e e'))
    [ "A"; "A & B"; "A | B"; "A & (B | C)"; "(A | B) & (C | D)"; "A & B & C | D";
      "((A))"; "A|B|C|D" ]

let test_parser_errors () =
  List.iter
    (fun s ->
      match Expr.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %S" s)
    [ ""; "A &"; "& A"; "(A"; "A)"; "A B"; "A && B"; "()" ]

let test_dnf () =
  let e = Expr.of_string "A & (B | C)" in
  let dnf = Expr.to_dnf e in
  Alcotest.(check int) "clauses" 2 (List.length dnf);
  Alcotest.(check bool) "same semantics" true
    (List.for_all
       (fun s -> Expr.eval e s = Expr.eval_dnf dnf s)
       [ attrs [ "A" ]; attrs [ "A"; "B" ]; attrs [ "A"; "C" ]; attrs [ "B"; "C" ] ]);
  (* Absorption: A | (A & B) = A *)
  let e2 = Expr.of_string "A | A & B" in
  Alcotest.(check int) "absorbed" 1 (List.length (Expr.to_dnf e2))

let random_roles n = Array.init n (fun i -> Printf.sprintf "R%d" i)

let random_subset rng roles =
  Array.to_list roles
  |> List.filter (fun _ -> Prng.bool rng)
  |> Attr.set_of_list

(* Definition 5.3 against the Gaussian-elimination oracle: eval = span. *)
let test_msp_span_semantics () =
  let rng = Prng.create 42 in
  let roles = random_roles 6 in
  for _ = 1 to 200 do
    let e = Expr.random rng ~roles ~or_fanin:3 ~and_fanin:3 in
    let msp = Msp.build e in
    let a = random_subset rng roles in
    let rows_held =
      List.filter (fun i -> Attr.Set.mem msp.Msp.labels.(i) a)
        (List.init msp.Msp.rows Fun.id)
    in
    let sub = Array.of_list (List.map (fun i -> Array.map (fun x -> B.erem (B.of_int x) p_test) msp.Msp.matrix.(i)) rows_held) in
    let spans = Linalg.spans_e1 ~p:p_test sub ~cols:msp.Msp.cols in
    Alcotest.(check bool)
      (Printf.sprintf "eval=span for %s" (Expr.to_string e))
      (Expr.eval e a) spans
  done

(* The satisfying vector is 0/1, supported on held rows, with v*M = e1. *)
let test_msp_satisfying_rows () =
  let rng = Prng.create 43 in
  let roles = random_roles 6 in
  for _ = 1 to 200 do
    let e = Expr.random rng ~roles ~or_fanin:3 ~and_fanin:3 in
    let msp = Msp.build e in
    let a = random_subset rng roles in
    match Msp.satisfying_rows msp e a with
    | None -> Alcotest.(check bool) "eval false" false (Expr.eval e a)
    | Some v ->
      Alcotest.(check bool) "eval true" true (Expr.eval e a);
      Array.iteri
        (fun i vi ->
          if vi <> 0 then begin
            Alcotest.(check int) "binary" 1 vi;
            Alcotest.(check bool) "held" true (Attr.Set.mem msp.Msp.labels.(i) a)
          end)
        v;
      let bm = Array.map (Array.map (fun x -> B.erem (B.of_int x) p_test)) msp.Msp.matrix in
      let bv = Array.map (fun x -> B.erem (B.of_int x) p_test) v in
      let prod = Linalg.mul_vec_mat ~p:p_test bv bm ~cols:msp.Msp.cols in
      Array.iteri
        (fun j x ->
          Alcotest.(check bool) "vM = e1" true
            (B.equal x (if j = 0 then B.one else B.zero)))
        prod
  done

(* Purge: succeeds iff the relaxation condition holds, and the returned
   column subset has row-sums 1 on kept rows / 0 on dropped rows, with kept
   rows labelled inside the keep set. *)
let test_msp_purge () =
  let rng = Prng.create 44 in
  let roles = random_roles 6 in
  let universe =
    Attr.Set.add Attr.pseudo_role (Attr.set_of_list (Array.to_list roles))
  in
  for _ = 1 to 300 do
    let e = Expr.random rng ~roles ~or_fanin:3 ~and_fanin:3 in
    let msp = Msp.build e in
    let keep = Attr.Set.add Attr.pseudo_role (random_subset rng roles) in
    let expected = Msp.check_purge_condition e ~universe ~keep in
    match Msp.purge e ~keep with
    | None -> Alcotest.(check bool) "purge fails iff condition fails" false expected
    | Some { Msp.kept_rows; kept_cols } ->
      Alcotest.(check bool) "purge succeeds iff condition holds" true expected;
      Alcotest.(check bool) "col 0 kept" true (List.mem 0 kept_cols);
      Alcotest.(check bool) "kept rows nonempty" true (kept_rows <> []);
      List.iter
        (fun i ->
          Alcotest.(check bool) "kept labels in keep set" true
            (Attr.Set.mem msp.Msp.labels.(i) keep))
        kept_rows;
      for i = 0 to msp.Msp.rows - 1 do
        let s =
          List.fold_left (fun acc j -> acc + msp.Msp.matrix.(i).(j)) 0 kept_cols
        in
        let expected_sum = if List.mem i kept_rows then 1 else 0 in
        Alcotest.(check int) "row sum" expected_sum s
      done
  done

let test_universe () =
  let u = Universe.create [ "RoleA"; "RoleB"; "RoleC" ] in
  Alcotest.(check int) "size includes pseudo" 4 (Universe.size u);
  let sp = Universe.super_policy u ~user:(attrs [ "RoleC" ]) in
  Alcotest.(check bool) "super policy" true
    (Expr.equal (Expr.canonical sp)
       (Expr.canonical (Expr.of_string "@empty | RoleA | RoleB")));
  Alcotest.check_raises "pseudo role rejected"
    (Invalid_argument "Universe.validate_user: no user holds the pseudo role")
    (fun () -> ignore (Universe.missing u ~user:(attrs [ Attr.pseudo_role ])))

let test_hierarchy () =
  let h =
    Hierarchy.create
      [ ("RoleA.S", "RoleA"); ("RoleA.P", "RoleA"); ("RoleB.S", "RoleB"); ("RoleB.P", "RoleB") ]
  in
  let u = Universe.create [ "RoleA"; "RoleA.S"; "RoleA.P"; "RoleB"; "RoleB.S"; "RoleB.P" ] in
  (* The paper's example: a RoleB.S user's inaccessible predicate reduces to
     RoleA | RoleB.P (plus the pseudo role). *)
  let sp = Hierarchy.super_policy h u ~user:(attrs [ "RoleB.S" ]) in
  Alcotest.(check bool) "reduced predicate" true
    (Expr.equal (Expr.canonical sp)
       (Expr.canonical (Expr.of_string "@empty | RoleA | RoleB.P")));
  (* Closure adds ancestors. *)
  let closed = Hierarchy.close_user h (attrs [ "RoleA.P" ]) in
  Alcotest.(check bool) "closure" true (Attr.Set.mem "RoleA" closed);
  (* Augmentation: RoleA.P becomes RoleA & RoleA.P. *)
  let aug = Hierarchy.augment_policy h (Expr.of_string "RoleA.P") in
  Alcotest.(check bool) "augment" true
    (Expr.equal (Expr.canonical aug) (Expr.canonical (Expr.of_string "RoleA & RoleA.P")));
  Alcotest.check_raises "cycle" (Invalid_argument "Hierarchy.create: cycle") (fun () ->
      ignore (Hierarchy.create [ ("A", "B"); ("B", "A") ]))

(* Hierarchy + purge interplay: relaxation under the reduced predicate works
   on augmented policies. *)
let test_hierarchy_purge () =
  let h = Hierarchy.create [ ("RoleA.S", "RoleA"); ("RoleA.P", "RoleA") ] in
  let u = Universe.create [ "RoleA"; "RoleA.S"; "RoleA.P"; "RoleB" ] in
  let record_policy = Hierarchy.augment_policy h (Expr.of_string "RoleA.P") in
  let user = attrs [ "RoleB" ] in
  let sp = Hierarchy.super_policy h u ~user in
  let keep = Expr.attrs sp in
  Alcotest.(check bool) "reduced keep set lacks implied role" false
    (Attr.Set.mem "RoleA.P" keep);
  (match Msp.purge record_policy ~keep with
   | Some _ -> ()
   | None -> Alcotest.fail "purge should succeed on augmented policy under reduced predicate")

let test_kd_split () =
  let pol s = Expr.of_string s in
  (* Policies clustered: first three share clauses, last three share others. *)
  let ps =
    [| pol "A"; pol "A | B"; pol "A & B"; pol "C"; pol "C | D"; pol "C & D" |]
  in
  let x = Kd_split.split_exhaustive ps in
  Alcotest.(check int) "objective zero at optimum" 0
    (Kd_split.objective
       (Array.to_list (Array.sub ps 0 x))
       (Array.to_list (Array.sub ps x (Array.length ps - x))));
  let x' = Kd_split.split ps in
  Alcotest.(check bool) "paper recursion returns valid split" true (x' >= 1 && x' <= 5);
  (* Two-policy base case. *)
  Alcotest.(check int) "n=2" 1 (Kd_split.split [| pol "A"; pol "B" |])

let test_random_policy_shape () =
  let rng = Prng.create 7 in
  let roles = random_roles 10 in
  for _ = 1 to 50 do
    let e = Expr.random rng ~roles ~or_fanin:3 ~and_fanin:2 in
    Alcotest.(check bool) "length bounded" true (Expr.num_leaves e <= 6);
    Alcotest.(check bool) "satisfiable with all roles" true
      (Expr.eval e (Attr.set_of_list (Array.to_list roles)))
  done

let suite =
  [
    ( "policy",
      [
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
        Alcotest.test_case "parser errors" `Quick test_parser_errors;
        Alcotest.test_case "dnf" `Quick test_dnf;
        Alcotest.test_case "msp span semantics (oracle)" `Quick test_msp_span_semantics;
        Alcotest.test_case "msp satisfying rows" `Quick test_msp_satisfying_rows;
        Alcotest.test_case "msp purge" `Quick test_msp_purge;
        Alcotest.test_case "universe" `Quick test_universe;
        Alcotest.test_case "hierarchy" `Quick test_hierarchy;
        Alcotest.test_case "hierarchy purge" `Quick test_hierarchy_purge;
        Alcotest.test_case "kd split" `Quick test_kd_split;
        Alcotest.test_case "random policy shape" `Quick test_random_policy_shape;
      ] );
  ]
