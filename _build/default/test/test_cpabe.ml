module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Drbg = Zkqac_hashing.Drbg
module Aes = Zkqac_symmetric.Aes128
module Hex = Zkqac_hashing.Hex

let attrs = Attr.set_of_list

(* FIPS 197 Appendix C.1-equivalent vector for AES-128. *)
let test_aes_fips_vector () =
  let key = Hex.decode "000102030405060708090a0b0c0d0e0f" in
  let pt = Hex.decode "00112233445566778899aabbccddeeff" in
  let k = Aes.expand_key key in
  let ct = Aes.encrypt_block k pt in
  Alcotest.(check string) "encrypt" "69c4e0d86a7b0430d8cdb78070b4c55a" (Hex.encode ct);
  Alcotest.(check string) "decrypt" (Hex.encode pt) (Hex.encode (Aes.decrypt_block k ct))

let test_aes_ctr () =
  let key = "0123456789abcdef" in
  let nonce = "nonce" in
  List.iter
    (fun msg ->
      let ct = Aes.ctr ~key ~nonce msg in
      Alcotest.(check string) "roundtrip" msg (Aes.ctr ~key ~nonce ct);
      if String.length msg > 0 then
        Alcotest.(check bool) "not identity" false (String.equal ct msg))
    [ ""; "x"; "exactly sixteen!"; String.make 100 'q'; String.make 4096 'z' ];
  (* Different nonces give different streams. *)
  let m = String.make 32 'a' in
  Alcotest.(check bool) "nonce matters" false
    (String.equal (Aes.ctr ~key ~nonce:"n1" m) (Aes.ctr ~key ~nonce:"n2" m))

module Make_tests (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module C = Zkqac_cpabe.Cpabe.Make (P)
  module E = Zkqac_cpabe.Envelope.Make (P)

  let drbg = Drbg.create ~seed:("cpabe:" ^ P.name)
  let mk, pp = C.setup drbg

  let test_encrypt_decrypt () =
    List.iter
      (fun (pstr, ok_attrs, bad_attrs) ->
        let policy = Expr.of_string pstr in
        let m = C.random_message drbg pp in
        let ct = C.encrypt drbg pp m ~policy in
        let sk_ok = C.keygen drbg mk pp (attrs ok_attrs) in
        let sk_bad = C.keygen drbg mk pp (attrs bad_attrs) in
        (match C.decrypt pp sk_ok ct with
         | Some m' -> Alcotest.(check bool) (pstr ^ " decrypts") true (P.Gt.equal m m')
         | None -> Alcotest.failf "%s should decrypt" pstr);
        Alcotest.(check bool) (pstr ^ " denied") true (C.decrypt pp sk_bad ct = None))
      [ ("A", [ "A" ], [ "B" ]);
        ("A & B", [ "A"; "B" ], [ "A" ]);
        ("A | B", [ "B" ], [ "C" ]);
        ("A & (B | C)", [ "A"; "C" ], [ "B"; "C" ]);
        ("(A & B) | (C & D)", [ "C"; "D" ], [ "A"; "C" ]);
        ("A & B & C", [ "A"; "B"; "C" ], [ "A"; "B" ]) ]

  (* The same attribute appearing at several leaves must still decrypt. *)
  let test_duplicate_leaves () =
    let policy = Expr.of_string "(A & B) | (A & C)" in
    let m = C.random_message drbg pp in
    let ct = C.encrypt drbg pp m ~policy in
    let sk = C.keygen drbg mk pp (attrs [ "A"; "C" ]) in
    match C.decrypt pp sk ct with
    | Some m' -> Alcotest.(check bool) "decrypts" true (P.Gt.equal m m')
    | None -> Alcotest.fail "should decrypt"

  let test_wrong_user_key_mix () =
    (* Collusion smoke test: two users who jointly satisfy A & B but
       individually do not; each alone must fail. *)
    let policy = Expr.of_string "A & B" in
    let m = C.random_message drbg pp in
    let ct = C.encrypt drbg pp m ~policy in
    let sk_a = C.keygen drbg mk pp (attrs [ "A" ]) in
    let sk_b = C.keygen drbg mk pp (attrs [ "B" ]) in
    Alcotest.(check bool) "A alone fails" true (C.decrypt pp sk_a ct = None);
    Alcotest.(check bool) "B alone fails" true (C.decrypt pp sk_b ct = None)

  let test_envelope () =
    let policy = Expr.of_string "RoleA & RoleB" in
    let payload = "the query results and the verification object" in
    let sealed = E.seal drbg pp ~policy payload in
    let sk = E.C.keygen drbg mk pp (attrs [ "RoleA"; "RoleB" ]) in
    (match E.open_ pp sk sealed with
     | Some p -> Alcotest.(check string) "payload" payload p
     | None -> Alcotest.fail "envelope should open");
    let sk_bad = E.C.keygen drbg mk pp (attrs [ "RoleA" ]) in
    Alcotest.(check bool) "denied" true (E.open_ pp sk_bad sealed = None);
    Alcotest.(check bool) "size positive" true (E.size sealed > String.length payload)

  let suite name =
    [
      Alcotest.test_case (name ^ " encrypt/decrypt") `Quick test_encrypt_decrypt;
      Alcotest.test_case (name ^ " duplicate leaves") `Quick test_duplicate_leaves;
      Alcotest.test_case (name ^ " no collusion") `Quick test_wrong_user_key_mix;
      Alcotest.test_case (name ^ " envelope") `Quick test_envelope;
    ]
end

module Mock_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Typea_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Typea_tiny)
module Mock_tests = Make_tests (Mock_backend)
module Typea_tests = Make_tests (Typea_backend)

let suite =
  [
    ( "cpabe",
      [
        Alcotest.test_case "aes FIPS vector" `Quick test_aes_fips_vector;
        Alcotest.test_case "aes ctr" `Quick test_aes_ctr;
      ]
      @ Mock_tests.suite "mock" @ Typea_tests.suite "typea-tiny" );
  ]
