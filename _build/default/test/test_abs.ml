module B = Zkqac_bigint.Bigint
module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng

let attrs = Attr.set_of_list

module Make_tests (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Abs = Zkqac_abs.Abs.Make (P)

  let drbg = Drbg.create ~seed:("abs-tests:" ^ P.name)
  let msk, mvk = Abs.setup drbg
  let roles = [ "RoleA"; "RoleB"; "RoleC"; "RoleD" ]
  let universe = Universe.create roles
  let do_key = Abs.keygen drbg msk (Universe.attrs universe)

  let test_sign_verify () =
    List.iter
      (fun pstr ->
        let policy = Expr.of_string pstr in
        let sigma = Abs.sign drbg mvk do_key ~msg:"hello" ~policy in
        Alcotest.(check bool) (pstr ^ " verifies") true
          (Abs.verify mvk ~msg:"hello" ~policy sigma);
        Alcotest.(check bool) (pstr ^ " wrong msg") false
          (Abs.verify mvk ~msg:"hello!" ~policy sigma))
      [ "RoleA"; "RoleA & RoleB"; "RoleA | RoleB"; "RoleA & (RoleB | RoleC)";
        "(RoleA & RoleB) | (RoleC & RoleD)"; "RoleA & RoleB & RoleC & RoleD";
        "@empty" ]

  let test_wrong_policy_rejected () =
    let policy = Expr.of_string "RoleA & RoleB" in
    let other = Expr.of_string "RoleA | RoleB" in
    let sigma = Abs.sign drbg mvk do_key ~msg:"m" ~policy in
    Alcotest.(check bool) "verify under different policy" false
      (Abs.verify mvk ~msg:"m" ~policy:other sigma)

  let test_insufficient_key () =
    let weak = Abs.keygen drbg msk (attrs [ "RoleA" ]) in
    let policy = Expr.of_string "RoleA & RoleB" in
    (match Abs.sign drbg mvk weak ~msg:"m" ~policy with
     | exception Invalid_argument _ -> ()
     | _ -> Alcotest.fail "signing without satisfying attributes must fail");
    (* But a satisfied disjunction works. *)
    let policy2 = Expr.of_string "RoleA | RoleB" in
    let sigma = Abs.sign drbg mvk weak ~msg:"m" ~policy:policy2 in
    Alcotest.(check bool) "disjunct ok" true (Abs.verify mvk ~msg:"m" ~policy:policy2 sigma)

  let test_serialization () =
    let policy = Expr.of_string "RoleA & (RoleB | RoleC)" in
    let sigma = Abs.sign drbg mvk do_key ~msg:"ser" ~policy in
    let bytes = Abs.to_bytes sigma in
    Alcotest.(check int) "size = |bytes|" (String.length bytes) (Abs.size sigma);
    (match Abs.of_bytes bytes with
     | None -> Alcotest.fail "roundtrip failed"
     | Some sigma' ->
       Alcotest.(check bool) "roundtrip equal" true (Abs.equal_signature sigma sigma');
       Alcotest.(check bool) "roundtrip verifies" true
         (Abs.verify mvk ~msg:"ser" ~policy sigma'));
    Alcotest.(check bool) "garbage rejected" true (Abs.of_bytes "xx" = None)

  let relax_and_check ~policy_str ~user ~msg =
    let policy = Expr.of_string policy_str in
    let sigma = Abs.sign drbg mvk do_key ~msg ~policy in
    let keep = Universe.missing universe ~user in
    let relaxed = Abs.relax drbg mvk sigma ~msg ~policy ~keep in
    (relaxed, keep)

  let test_relax_success () =
    (* The paper's running example: policy RoleA & RoleB, user holds RoleC.
       The super policy @empty | RoleA | RoleB | RoleD must verify. *)
    let relaxed, keep =
      relax_and_check ~policy_str:"RoleA & RoleB" ~user:(attrs [ "RoleC" ]) ~msg:"m"
    in
    match relaxed with
    | None -> Alcotest.fail "relaxation should succeed"
    | Some r ->
      Alcotest.(check bool) "relaxed verifies under super policy" true
        (Abs.verify mvk ~msg:"m" ~policy:(Abs.relaxed_policy keep) r);
      Alcotest.(check bool) "relaxed fails under wrong msg" false
        (Abs.verify mvk ~msg:"m2" ~policy:(Abs.relaxed_policy keep) r);
      Alcotest.(check bool) "relaxed fails under original policy" false
        (Abs.verify mvk ~msg:"m" ~policy:(Expr.of_string "RoleA & RoleB") r)

  let test_relax_refused () =
    (* Policy RoleA & RoleB, user holds RoleC and RoleD; removing the other
       roles kills it -- but relaxing to just {@empty, RoleC}: the paper's
       counterexample Υ(𝔸∖A') = Υ({RoleA, RoleB, RoleD}) = 1 must abort. *)
    let policy = Expr.of_string "RoleA & RoleB" in
    let sigma = Abs.sign drbg mvk do_key ~msg:"m" ~policy in
    let keep = attrs [ Attr.pseudo_role; "RoleC" ] in
    Alcotest.(check bool) "relaxation refused" true
      (Abs.relax drbg mvk sigma ~msg:"m" ~policy ~keep = None)

  let test_relax_all_users_matrix () =
    (* Exhaustive small matrix: random policies x random user role sets;
       relaxation must succeed exactly when the user cannot satisfy the
       policy, and then verify under the super policy. *)
    let rng = Prng.create 99 in
    let role_arr = Array.of_list roles in
    for _ = 1 to 25 do
      let policy = Expr.random rng ~roles:role_arr ~or_fanin:2 ~and_fanin:2 in
      let sigma = Abs.sign drbg mvk do_key ~msg:"mx" ~policy in
      for mask = 0 to 15 do
        let user =
          attrs (List.filteri (fun i _ -> mask land (1 lsl i) <> 0) roles)
        in
        let keep = Universe.missing universe ~user in
        let expected = not (Expr.eval policy user) in
        match Abs.relax drbg mvk sigma ~msg:"mx" ~policy ~keep with
        | None -> Alcotest.(check bool) "relax fails iff accessible" false expected
        | Some r ->
          Alcotest.(check bool) "relax succeeds iff inaccessible" true expected;
          Alcotest.(check bool) "relaxed verifies" true
            (Abs.verify mvk ~msg:"mx" ~policy:(Abs.relaxed_policy keep) r);
          Alcotest.(check int) "relaxed size = fresh super-policy signature size"
            (Abs.size (Abs.sign drbg mvk do_key ~msg:"mx" ~policy:(Abs.relaxed_policy keep)))
            (Abs.size r)
      done
    done

  let test_relax_rerandomized () =
    let policy = Expr.of_string "RoleA & RoleB" in
    let sigma = Abs.sign drbg mvk do_key ~msg:"m" ~policy in
    let keep = Universe.missing universe ~user:(attrs [ "RoleC" ]) in
    let r1 = Option.get (Abs.relax drbg mvk sigma ~msg:"m" ~policy ~keep) in
    let r2 = Option.get (Abs.relax drbg mvk sigma ~msg:"m" ~policy ~keep) in
    Alcotest.(check bool) "two relaxations differ (re-randomized)" false
      (Abs.equal_signature r1 r2)

  let test_privacy_shape () =
    (* A relaxed signature must look like a fresh signature on the super
       policy: same component counts, regardless of the original policy. *)
    let user = attrs [ "RoleC" ] in
    let keep = Universe.missing universe ~user in
    let sizes =
      List.map
        (fun pstr ->
          let policy = Expr.of_string pstr in
          let sigma = Abs.sign drbg mvk do_key ~msg:"m" ~policy in
          match Abs.relax drbg mvk sigma ~msg:"m" ~policy ~keep with
          | Some r -> Abs.size r
          | None -> Alcotest.failf "relax failed for %s" pstr)
        [ "RoleA & RoleB"; "RoleA & RoleB & RoleD"; "(RoleA & RoleB) | (RoleA & RoleD)";
          "@empty" ]
    in
    (match sizes with
     | s :: rest -> List.iter (fun s' -> Alcotest.(check int) "same size" s s') rest
     | [] -> ());
    (* And a direct DO signature on the super policy has the same size. *)
    let direct =
      Abs.sign drbg mvk do_key ~msg:"m" ~policy:(Abs.relaxed_policy keep)
    in
    Alcotest.(check int) "fresh = relaxed size" (List.hd sizes) (Abs.size direct)

  let test_mvk_serialization () =
    let bytes = Abs.mvk_to_bytes mvk in
    match Abs.mvk_of_bytes bytes with
    | None -> Alcotest.fail "mvk roundtrip"
    | Some mvk' ->
      let policy = Expr.of_string "RoleA" in
      let sigma = Abs.sign drbg mvk' do_key ~msg:"m" ~policy in
      Alcotest.(check bool) "usable after roundtrip" true
        (Abs.verify mvk' ~msg:"m" ~policy sigma)

  let test_tamper_rejected () =
    let policy = Expr.of_string "RoleA & RoleB" in
    let sigma = Abs.sign drbg mvk do_key ~msg:"m" ~policy in
    let bytes = Abs.to_bytes sigma in
    (* Flip a byte inside a group element and check the result either fails
       to parse or fails to verify. *)
    let ok = ref true in
    for trial = 0 to 9 do
      let pos = 40 + (trial * 7) in
      if pos < String.length bytes then begin
        let mutated = Bytes.of_string bytes in
        Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor 0x55));
        match Abs.of_bytes (Bytes.to_string mutated) with
        | None -> ()
        | Some sigma' ->
          if
            (not (Abs.equal_signature sigma sigma'))
            && Abs.verify mvk ~msg:"m" ~policy sigma'
          then ok := false
      end
    done;
    Alcotest.(check bool) "no tampered signature verifies" true !ok

  let suite name =
    [
      Alcotest.test_case (name ^ " sign/verify") `Quick test_sign_verify;
      Alcotest.test_case (name ^ " wrong policy") `Quick test_wrong_policy_rejected;
      Alcotest.test_case (name ^ " insufficient key") `Quick test_insufficient_key;
      Alcotest.test_case (name ^ " serialization") `Quick test_serialization;
      Alcotest.test_case (name ^ " relax success") `Quick test_relax_success;
      Alcotest.test_case (name ^ " relax refused") `Quick test_relax_refused;
      Alcotest.test_case (name ^ " relax matrix") `Quick test_relax_all_users_matrix;
      Alcotest.test_case (name ^ " relax re-randomized") `Quick test_relax_rerandomized;
      Alcotest.test_case (name ^ " privacy shape") `Quick test_privacy_shape;
      Alcotest.test_case (name ^ " mvk serialization") `Quick test_mvk_serialization;
      Alcotest.test_case (name ^ " tamper rejected") `Quick test_tamper_rejected;
    ]
end

module Mock_tests = Make_tests ((val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock))
module Typea_tests = Make_tests ((val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Typea_tiny))

let suite =
  [ ("abs", Mock_tests.suite "mock" @ Typea_tests.suite "typea-tiny") ]
