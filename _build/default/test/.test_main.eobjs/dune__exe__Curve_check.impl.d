test/curve_check.ml: Zkqac_group
