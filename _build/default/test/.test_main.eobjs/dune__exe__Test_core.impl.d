test/test_core.ml: Alcotest Array List Printf String Zkqac_abs Zkqac_bigint Zkqac_core Zkqac_group Zkqac_hashing Zkqac_policy Zkqac_rng
