test/test_typea_e2e.ml: Alcotest List Zkqac_abs Zkqac_core Zkqac_group Zkqac_hashing Zkqac_policy
