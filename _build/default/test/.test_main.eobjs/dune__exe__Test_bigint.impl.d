test/test_bigint.ml: Alcotest List Printf QCheck2 QCheck_alcotest Stdlib String Zkqac_bigint
