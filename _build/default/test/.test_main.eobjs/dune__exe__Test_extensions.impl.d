test/test_extensions.ml: Alcotest Array List Printf String Zkqac_abs Zkqac_core Zkqac_group Zkqac_hashing Zkqac_parallel Zkqac_policy Zkqac_rng Zkqac_tpch Zkqac_util
