test/test_policy.ml: Alcotest Array Fun List Printf Zkqac_bigint Zkqac_numth Zkqac_policy Zkqac_rng
