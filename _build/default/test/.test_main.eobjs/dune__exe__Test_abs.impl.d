test/test_abs.ml: Alcotest Array Bytes Char List Option String Zkqac_abs Zkqac_bigint Zkqac_group Zkqac_hashing Zkqac_policy Zkqac_rng
