test/test_group.ml: Alcotest Curve_check Lazy List String Zkqac_bigint Zkqac_group Zkqac_hashing Zkqac_numth
