test/test_properties.ml: Array Char List Printf QCheck2 QCheck_alcotest Result String Zkqac_abs Zkqac_bigint Zkqac_core Zkqac_group Zkqac_hashing Zkqac_numth Zkqac_policy Zkqac_rng Zkqac_symmetric
