test/test_edges.ml: Alcotest Lazy List Printf Zkqac_abs Zkqac_bigint Zkqac_core Zkqac_group Zkqac_hashing Zkqac_numth Zkqac_policy
