test/test_cpabe.ml: Alcotest List String Zkqac_cpabe Zkqac_group Zkqac_hashing Zkqac_policy Zkqac_symmetric
