test/test_hashing.ml: Alcotest List Printf String Zkqac_bigint Zkqac_hashing
