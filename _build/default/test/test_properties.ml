(* QCheck property suites over the core data structures and protocols:
   random boxes, random policies, random field/group elements, random
   databases — invariants that must hold for *every* input, not just the
   curated cases of the unit suites. *)

module B = Zkqac_bigint.Bigint
module Attr = Zkqac_policy.Attr
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Aes = Zkqac_symmetric.Aes128
module Fp = Zkqac_group.Fp
module Fp2 = Zkqac_group.Fp2

module Mock_backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Mock_backend)
module Ap2g = Zkqac_core.Ap2g.Make (Mock_backend)
module Vo = Zkqac_core.Vo.Make (Mock_backend)

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- generators --- *)

let gen_box =
  QCheck2.Gen.(
    let* dims = int_range 1 3 in
    let* corners =
      list_repeat dims (pair (int_range 0 15) (int_range 0 15))
    in
    let lo = Array.of_list (List.map (fun (a, b) -> min a b) corners) in
    let hi = Array.of_list (List.map (fun (a, b) -> max a b + 1) corners) in
    return (Box.make ~lo ~hi))

let gen_box_pair =
  QCheck2.Gen.(
    let* dims = int_range 1 3 in
    let mk =
      let* corners = list_repeat dims (pair (int_range 0 15) (int_range 0 15)) in
      let lo = Array.of_list (List.map (fun (a, b) -> min a b) corners) in
      let hi = Array.of_list (List.map (fun (a, b) -> max a b + 1) corners) in
      return (Box.make ~lo ~hi)
    in
    pair mk mk)

let roles5 = [| "A"; "B"; "C"; "D"; "E" |]

let gen_policy =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let rng = Prng.create seed in
    return (Expr.random rng ~roles:roles5 ~or_fanin:3 ~and_fanin:3))

let gen_attr_set =
  QCheck2.Gen.(
    let* mask = int_range 0 31 in
    return
      (Attr.set_of_list
         (List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list roles5))))

(* --- box properties --- *)

let box_props =
  [
    qtest "subtract partitions" gen_box_pair (fun (a, b) ->
        let pieces = Box.subtract a b in
        let inter = match Box.intersect a b with None -> 0 | Some i -> Box.volume i in
        List.for_all (fun p -> Box.contains_box a p && Box.disjoint p b) pieces
        && List.fold_left (fun acc p -> acc + Box.volume p) 0 pieces
           = Box.volume a - inter);
    qtest "cover union self" gen_box (fun b -> Box.covers_union b [ b ]);
    qtest "exact cover by halves" gen_box (fun b ->
        (* Split along dim 0 if wide enough. *)
        if b.Box.hi.(0) - b.Box.lo.(0) < 2 then true
        else begin
          let mid = (b.Box.lo.(0) + b.Box.hi.(0)) / 2 in
          let l = Box.make ~lo:b.Box.lo ~hi:(Array.mapi (fun i v -> if i = 0 then mid else v) b.Box.hi) in
          let r = Box.make ~lo:(Array.mapi (fun i v -> if i = 0 then mid else v) b.Box.lo) ~hi:b.Box.hi in
          Box.covers_exactly b [ l; r ]
        end);
    qtest "intersect commutes" gen_box_pair (fun (a, b) ->
        match (Box.intersect a b, Box.intersect b a) with
        | None, None -> true
        | Some x, Some y -> Box.equal x y
        | _ -> false);
  ]

(* --- policy properties --- *)

let policy_props =
  [
    qtest "dnf preserves semantics" (QCheck2.Gen.pair gen_policy gen_attr_set)
      (fun (p, a) -> Expr.eval p a = Expr.eval_dnf (Expr.to_dnf p) a);
    qtest "canonical preserves semantics" (QCheck2.Gen.pair gen_policy gen_attr_set)
      (fun (p, a) -> Expr.eval p a = Expr.eval (Expr.canonical p) a);
    qtest "parser roundtrip" gen_policy (fun p ->
        Expr.equal p (Expr.of_string (Expr.to_string p)));
    qtest "monotonicity" (QCheck2.Gen.pair gen_policy gen_attr_set) (fun (p, a) ->
        (* Adding roles never revokes access. *)
        (not (Expr.eval p a))
        || Expr.eval p (Attr.Set.add "E" (Attr.Set.add "A" a)));
    qtest "full set satisfies random policies" gen_policy (fun p ->
        Expr.eval p (Attr.set_of_list (Array.to_list roles5)));
  ]

(* --- field/group properties --- *)

let p61 = Zkqac_numth.Primes.next_prime (B.of_string "2305843009213693951")
let fp_ctx = Fp.create p61

let gen_fp =
  QCheck2.Gen.(
    let* v = int_range 0 1_000_000_000 in
    let* w = int_range 0 1_000_000_000 in
    return (Fp.of_bigint fp_ctx (B.add (B.mul (B.of_int v) (B.of_int 1_000_000_007)) (B.of_int w))))

let gen_fp2 = QCheck2.Gen.(map (fun (a, b) -> Fp2.make a b) (pair gen_fp gen_fp))

let field_props =
  [
    qtest "fp2 mul assoc" (QCheck2.Gen.triple gen_fp2 gen_fp2 gen_fp2)
      (fun (x, y, z) ->
        Fp2.equal
          (Fp2.mul fp_ctx (Fp2.mul fp_ctx x y) z)
          (Fp2.mul fp_ctx x (Fp2.mul fp_ctx y z)));
    qtest "fp2 distributes" (QCheck2.Gen.triple gen_fp2 gen_fp2 gen_fp2)
      (fun (x, y, z) ->
        Fp2.equal
          (Fp2.mul fp_ctx x (Fp2.add fp_ctx y z))
          (Fp2.add fp_ctx (Fp2.mul fp_ctx x y) (Fp2.mul fp_ctx x z)));
    qtest "fp2 inverse" gen_fp2 (fun x ->
        Fp2.is_zero x || Fp2.is_one (Fp2.mul fp_ctx x (Fp2.inv fp_ctx x)));
    qtest "fp2 sqr = mul self" gen_fp2 (fun x ->
        Fp2.equal (Fp2.sqr fp_ctx x) (Fp2.mul fp_ctx x x));
    qtest "fp2 conj multiplicative" (QCheck2.Gen.pair gen_fp2 gen_fp2) (fun (x, y) ->
        Fp2.equal
          (Fp2.conj fp_ctx (Fp2.mul fp_ctx x y))
          (Fp2.mul fp_ctx (Fp2.conj fp_ctx x) (Fp2.conj fp_ctx y)));
    qtest "fp sqrt squares back" gen_fp (fun x ->
        match Fp.sqrt fp_ctx x with
        | None -> true
        | Some r -> Fp.equal (Fp.sqr fp_ctx r) x);
  ]

(* --- AES / envelope properties --- *)

let crypto_props =
  [
    qtest "aes block roundtrip" QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
      (fun (key, block) ->
        let k = Aes.expand_key key in
        String.equal block (Aes.decrypt_block k (Aes.encrypt_block k block)));
    qtest "aes ctr roundtrip" QCheck2.Gen.(pair (string_size (return 16)) (string_size (int_range 0 200)))
      (fun (key, msg) ->
        String.equal msg (Aes.ctr ~key ~nonce:"n" (Aes.ctr ~key ~nonce:"n" msg)));
    qtest "sha256 avalanche" QCheck2.Gen.(string_size (int_range 1 64)) (fun s ->
        let d1 = Zkqac_hashing.Sha256.digest s in
        let flipped =
          String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s
        in
        not (String.equal d1 (Zkqac_hashing.Sha256.digest flipped)));
  ]

(* --- end-to-end ABS/VO properties over random databases --- *)

let drbg = Drbg.create ~seed:"props"
let msk, mvk = Abs.setup drbg
let universe = Universe.create (Array.to_list roles5)
let sk = Abs.keygen drbg msk (Universe.attrs universe)
let space = Keyspace.create ~dims:2 ~depth:2

let gen_db =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let rng = Prng.create seed in
    let n = Prng.int rng 10 in
    let keys = Array.init 16 (fun i -> [| i / 4; i mod 4 |]) in
    Prng.shuffle rng keys;
    return
      (List.init n (fun i ->
           Record.make ~key:keys.(i)
             ~value:(Printf.sprintf "v%d" i)
             ~policy:(Expr.random rng ~roles:roles5 ~or_fanin:2 ~and_fanin:2))))

let gen_db_user_query =
  QCheck2.Gen.(
    let* db = gen_db in
    let* user = gen_attr_set in
    let* x1 = int_range 0 3 and* y1 = int_range 0 3 in
    let* x2 = int_range 0 3 and* y2 = int_range 0 3 in
    let q =
      Box.of_range
        ~alpha:[| min x1 x2; min y1 y2 |]
        ~beta:[| max x1 x2; max y1 y2 |]
    in
    return (db, user, q))

let protocol_props =
  [
    qtest ~count:40 "range protocol sound and complete" gen_db_user_query
      (fun (db, user, query) ->
        let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"p" db in
        let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
        match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo with
        | Error _ -> false
        | Ok results ->
          let expected =
            List.filter
              (fun (r : Record.t) ->
                Box.contains_point query r.Record.key && Expr.eval r.Record.policy user)
              db
          in
          List.length expected = List.length results
          && List.for_all
               (fun (e : Record.t) ->
                 List.exists
                   (fun (g : Record.t) ->
                     g.Record.key = e.Record.key && g.Record.value = e.Record.value)
                   results)
               expected);
    qtest ~count:40 "vo codec roundtrip verifies" gen_db_user_query
      (fun (db, user, query) ->
        let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"q" db in
        let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
        match Vo.of_bytes (Vo.to_bytes vo) with
        | None -> false
        | Some vo' ->
          Result.is_ok (Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo'));
    qtest ~count:30 "batched verify agrees with plain" gen_db_user_query
      (fun (db, user, query) ->
        let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"r" db in
        let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
        Result.is_ok (Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo)
        = Result.is_ok
            (Ap2g.verify ~batch:drbg ~mvk ~t_universe:universe ~user ~query vo));
    qtest ~count:40 "abs sign/verify over random policies"
      (QCheck2.Gen.pair gen_policy (QCheck2.Gen.string_size (QCheck2.Gen.int_range 0 40)))
      (fun (policy, msg) ->
        let sigma = Abs.sign drbg mvk sk ~msg ~policy in
        Abs.verify mvk ~msg ~policy sigma
        && not (Abs.verify mvk ~msg:(msg ^ "x") ~policy sigma));
    qtest ~count:40 "relax iff inaccessible"
      (QCheck2.Gen.pair gen_policy gen_attr_set)
      (fun (policy, user) ->
        let msg = "m" in
        let sigma = Abs.sign drbg mvk sk ~msg ~policy in
        let keep = Universe.missing universe ~user in
        match Abs.relax drbg mvk sigma ~msg ~policy ~keep with
        | None -> Expr.eval policy user
        | Some r ->
          (not (Expr.eval policy user))
          && Abs.verify mvk ~msg ~policy:(Abs.relaxed_policy keep) r);
  ]

let suite =
  [ ("properties", box_props @ policy_props @ field_props @ crypto_props @ protocol_props) ]
