(* Small helper so tests can reach the curve module through the library. *)
let on_curve fp pt = Zkqac_group.Curve.is_on_curve fp pt
