module B = Zkqac_bigint.Bigint

let b = Alcotest.testable B.pp B.equal

let check_b = Alcotest.check b
let bi = B.of_int
let bs = B.of_string

let test_of_to_int () =
  List.iter
    (fun i -> Alcotest.(check int) (string_of_int i) i (B.to_int (bi i)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; -(1 lsl 30); max_int; min_int; 123456789012345 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (bs s)))
    [ "0"; "1"; "-1"; "123456789"; "340282366920938463463374607431768211455";
      "-999999999999999999999999999999999999";
      "115792089237316195423570985008687907853269984665640564039457584007913129639935" ]

let test_hex () =
  Alcotest.(check string) "hex" "ff" (B.to_hex (bi 255));
  Alcotest.(check string) "hex2" "deadbeef" (B.to_hex (bs "0xdeadbeef"));
  check_b "hex parse" (bi 255) (bs "0xff");
  check_b "hex big" (bs "4276215469") (bs "0xfee1dead")

let test_add_sub () =
  let a = bs "99999999999999999999999999999999" in
  check_b "a+1-1" a B.(sub (add a one) one);
  check_b "a-a" B.zero (B.sub a a);
  check_b "neg" (B.neg a) (B.sub B.zero a);
  check_b "carry" (bs "100000000000000000000000000000000") (B.add a B.one)

let test_mul () =
  let a = bs "123456789123456789123456789" in
  let b2 = bs "987654321987654321" in
  check_b "mul" (bs "121932631356500531469135800347203169112635269")
    (B.mul a b2);
  check_b "mul sign" (B.neg (B.mul a b2)) (B.mul (B.neg a) b2);
  check_b "mul zero" B.zero (B.mul a B.zero)

let test_divmod () =
  let a = bs "121932631356500531469135800347203169112635269" in
  let b2 = bs "987654321987654321" in
  let q, r = B.divmod a b2 in
  check_b "q" (bs "123456789123456789123456789") q;
  check_b "r" B.zero r;
  let q, r = B.divmod (B.add a (bi 17)) b2 in
  check_b "q2" (bs "123456789123456789123456789") q;
  check_b "r2" (bi 17) r;
  (* Euclidean convention: remainder always non-negative. *)
  let q, r = B.divmod (bi (-7)) (bi 3) in
  check_b "eq" (bi (-3)) q;
  check_b "er" (bi 2) r;
  let q, r = B.divmod (bi (-7)) (bi (-3)) in
  check_b "eq2" (bi 3) q;
  check_b "er2" (bi 2) r

let test_shift () =
  check_b "shl" (bs "0x100000000000000000000") (B.shift_left B.one 80);
  check_b "shr" B.one (B.shift_right (bs "0x100000000000000000000") 80);
  check_b "shr2" (bi 5) (B.shift_right (bi 23) 2);
  Alcotest.(check bool) "testbit" true (B.testbit (bi 8) 3);
  Alcotest.(check bool) "testbit0" false (B.testbit (bi 8) 2);
  Alcotest.(check int) "numbits" 4 (B.num_bits (bi 8));
  Alcotest.(check int) "numbits0" 0 (B.num_bits B.zero)

let test_powmod () =
  (* Fermat: 2^(p-1) = 1 mod p for prime p. *)
  let p = bs "115792089237316195423570985008687907853269984665640564039457584007908834671663" in
  check_b "fermat" B.one (B.powmod (bi 2) (B.sub p B.one) p);
  check_b "pow small" (bi 23) (B.powmod (bi 7) (bi 4) (bi 41));
  check_b "pow zero exp" B.one (B.powmod (bi 7) B.zero (bi 41))

let test_invmod () =
  let p = bs "115792089237316195423570985008687907853269984665640564039457584007908834671663" in
  let a = bs "987654321987654321987654321" in
  let inv = B.invmod a p in
  check_b "inv" B.one (B.erem (B.mul a inv) p);
  Alcotest.check_raises "non invertible" Division_by_zero (fun () ->
      ignore (B.invmod (bi 6) (bi 9)))

let test_gcd () =
  check_b "gcd" (bi 6) (B.gcd (bi 54) (bi 24));
  check_b "gcd0" (bi 7) (B.gcd B.zero (bi 7));
  check_b "gcd neg" (bi 6) (B.gcd (bi (-54)) (bi 24))

let test_bytes () =
  let a = bs "0x0102030405" in
  Alcotest.(check string) "be" "\x01\x02\x03\x04\x05" (B.to_bytes_be a);
  check_b "rt" a (B.of_bytes_be "\x01\x02\x03\x04\x05");
  Alcotest.(check string) "pad" "\x00\x00\x00\x01\x02\x03\x04\x05"
    (B.to_bytes_be_pad 8 a);
  check_b "empty" B.zero (B.of_bytes_be "")

(* Property tests against OCaml's native int arithmetic on small values. *)
let small_pair =
  QCheck2.Gen.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))

let qprop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let props =
  [
    qprop "add matches int" small_pair (fun (x, y) ->
        B.to_int (B.add (bi x) (bi y)) = x + y);
    qprop "mul matches int" small_pair (fun (x, y) ->
        B.to_int (B.mul (bi x) (bi y)) = x * y);
    qprop "divmod invariant" small_pair (fun (x, y) ->
        if y = 0 then true
        else begin
          let q, r = B.divmod (bi x) (bi y) in
          B.equal (bi x) (B.add (B.mul q (bi y)) r)
          && B.sign r >= 0
          && B.compare r (B.abs (bi y)) < 0
        end);
    qprop "string roundtrip" QCheck2.Gen.(int_range (-4611686018427387904) 4611686018427387903)
      (fun x -> B.to_int (B.of_string (B.to_string (bi x))) = x);
    qprop "mul big roundtrip via div" small_pair (fun (x, y) ->
        if x = 0 then true
        else begin
          let big = B.mul (bs "340282366920938463463374607431768211455") (bi x) in
          let prod = B.add big (bi (Stdlib.abs y)) in
          let q, _ = B.divmod prod (bi x) in
          ignore q;
          B.equal prod (B.add (B.mul (B.div prod (bi x)) (bi x)) (B.rem prod (bi x)))
        end);
    qprop "powmod matches naive" QCheck2.Gen.(triple (int_range 0 50) (int_range 0 10) (int_range 2 1000))
      (fun (base, e, m) ->
        let naive = ref 1 in
        for _ = 1 to e do naive := !naive * base mod m done;
        B.to_int (B.powmod (bi base) (bi e) (bi m)) = !naive);
    qprop "shift left = mul pow2" QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 40))
      (fun (x, k) ->
        B.equal (B.shift_left (bi x) k) (B.mul (bi x) (B.powmod (bi 2) (bi k) (bs "0x10000000000000000000000000000000000"))));
  ]

let suite =
  [
    ( "bigint",
      [
        Alcotest.test_case "of/to int" `Quick test_of_to_int;
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "hex" `Quick test_hex;
        Alcotest.test_case "add/sub" `Quick test_add_sub;
        Alcotest.test_case "mul" `Quick test_mul;
        Alcotest.test_case "divmod" `Quick test_divmod;
        Alcotest.test_case "shift" `Quick test_shift;
        Alcotest.test_case "powmod" `Quick test_powmod;
        Alcotest.test_case "invmod" `Quick test_invmod;
        Alcotest.test_case "gcd" `Quick test_gcd;
        Alcotest.test_case "bytes" `Quick test_bytes;
      ]
      @ props );
  ]

(* Stress properties with genuinely large operands (multi-limb paths,
   Knuth-D corner cases with normalization shifts and add-back). *)
let big_gen =
  QCheck2.Gen.(
    let* hex_len = int_range 1 60 in
    let* digits = list_repeat hex_len (int_range 0 15) in
    let* neg = bool in
    let s = "0x" ^ String.concat "" (List.map (Printf.sprintf "%x") digits) in
    return (if neg then B.neg (bs s) else bs s))

let big_props =
  [
    qprop "big add/sub inverse" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal x (B.sub (B.add x y) y));
    qprop "big mul commutes" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal (B.mul x y) (B.mul y x));
    qprop "big divmod invariant" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        if B.is_zero y then true
        else begin
          let q, r = B.divmod x y in
          B.equal x (B.add (B.mul q y) r)
          && B.sign r >= 0
          && B.compare r (B.abs y) < 0
        end);
    qprop "big string roundtrip" big_gen (fun x ->
        B.equal x (B.of_string (B.to_string x)));
    qprop "big hex roundtrip" big_gen (fun x ->
        let h = B.to_hex (B.abs x) in
        B.equal (B.abs x) (B.of_string ("0x" ^ h)));
    qprop "big bytes roundtrip" big_gen (fun x ->
        B.equal (B.abs x) (B.of_bytes_be (B.to_bytes_be x)));
    qprop "big shift inverse" QCheck2.Gen.(pair big_gen (int_range 0 200))
      (fun (x, k) ->
        let x = B.abs x in
        B.equal x (B.shift_right (B.shift_left x k) k));
    qprop "big powmod multiplicative"
      QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (a, b, m) ->
        let m = B.add (B.abs m) B.two in
        let e1 = B.of_int 3 and e2 = B.of_int 5 in
        let x = B.erem (B.abs a) m and y = B.erem (B.abs b) m in
        ignore y;
        (* a^3 * a^5 = a^8 mod m *)
        B.equal
          (B.erem (B.mul (B.powmod x e1 m) (B.powmod x e2 m)) m)
          (B.powmod x (B.add e1 e2) m));
  ]

let suite =
  suite
  @ [ ("bigint-stress", big_props) ]
