module B = Zkqac_bigint.Bigint

(* splitmix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
   quality, and trivially splittable -- exactly what reproducible workload
   generation needs. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = Int64.mul s 0xDA942042E4DD58B5L }

let copy t = { state = t.state }

let bits t n =
  if n < 0 || n > 62 then invalid_arg "Prng.bits";
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (int64 t) (64 - n)) land ((1 lsl n) - 1)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  if bound = 1 then 0
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec nbits b acc = if b = 0 then acc else nbits (b lsr 1) (acc + 1) in
    let k = nbits (bound - 1) 0 in
    let rec draw () =
      let v = bits t k in
      if v < bound then v else draw ()
    in
    draw ()
  end

let float t bound =
  let v = bits t 53 in
  bound *. (float_of_int v /. 9007199254740992.0)

let bool t = bits t 1 = 1

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (bits t 8))
  done;
  Bytes.to_string b

let bigint t bound =
  if B.compare bound B.zero <= 0 then invalid_arg "Prng.bigint";
  let nb = B.num_bits bound in
  let nbytes = (nb + 7) / 8 in
  let topbits = nb - ((nbytes - 1) * 8) in
  let rec draw () =
    let s = Bytes.of_string (bytes t nbytes) in
    (* Mask the top byte so rejection succeeds with probability >= 1/2. *)
    let m = (1 lsl topbits) - 1 in
    Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) land m));
    let v = B.of_bytes_be (Bytes.to_string s) in
    if B.compare v bound < 0 then v else draw ()
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
