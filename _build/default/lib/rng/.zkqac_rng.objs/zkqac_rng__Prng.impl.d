lib/rng/prng.ml: Array Bytes Char Int64 Zkqac_bigint
