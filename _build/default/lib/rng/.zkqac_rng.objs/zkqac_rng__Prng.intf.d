lib/rng/prng.mli: Zkqac_bigint
