(** Deterministic, seedable pseudo-random generator (splitmix64).

    Not a cryptographic RNG: used wherever the paper says "pick random" so
    that tests and benchmarks are reproducible. Cryptographic nonces in the
    signature schemes draw from {!Zkqac_hashing.Drbg} instead when a caller
    wants hash-based expansion, but for a reproduction the distinction is
    operational, not security-critical. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator (consumes one draw from the parent). *)

val copy : t -> t

val int64 : t -> int64
(** Next 64 uniformly random bits. *)

val bits : t -> int -> int
(** [bits t n] is a uniform integer in [0, 2^n) for [0 <= n <= 62]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)

val bigint : t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
(** [bigint t bound] is uniform in [0, bound) by rejection sampling.
    @raise Invalid_argument if [bound <= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
