(** The signature-chaining baseline (Figure 1a; Pang & Tan, ICDE'04).

    Each record's signature binds its predecessor and successor keys, so a
    range result's completeness follows from chain continuity plus the two
    boundary signatures. No access control, and the existence of every
    record in range is disclosed — the contrast the paper's schemes fix. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Sig : module type of Schnorr.Make (P)

  type t

  val build : Zkqac_hashing.Drbg.t -> Sig.secret -> Zkqac_core.Record.t list -> t
  (** Records must have distinct 1-D keys. *)

  type vo

  val range_vo : t -> lo:int -> hi:int -> vo

  val verify :
    public:Sig.public -> lo:int -> hi:int -> vo -> (Zkqac_core.Record.t list, string) result

  val vo_size : vo -> int
  val num_signatures : t -> int
end
