lib/baseline/sigchain.ml: Array List Schnorr String Zkqac_core Zkqac_group Zkqac_hashing Zkqac_util
