lib/baseline/schnorr.mli: Zkqac_group Zkqac_hashing
