lib/baseline/merkle.ml: Array List Option Schnorr String Zkqac_core Zkqac_group Zkqac_hashing Zkqac_util
