lib/baseline/sigchain.mli: Schnorr Zkqac_core Zkqac_group Zkqac_hashing
