lib/baseline/schnorr.ml: String Zkqac_bigint Zkqac_group Zkqac_hashing
