module B = Zkqac_bigint.Bigint
module Htf = Zkqac_hashing.Hash_to_field

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module G = P.G

  type secret = B.t
  type public = G.t
  type signature = { s : B.t; e : B.t }

  let challenge commitment public msg =
    Htf.to_zp_list ~domain:"zkqac-schnorr" ~p:P.order
      [ G.to_bytes commitment; G.to_bytes public; msg ]

  let keygen drbg =
    let x = P.rand_scalar drbg in
    (x, G.pow G.g x)

  let sign drbg x msg =
    let k = P.rand_scalar drbg in
    let r = G.pow G.g k in
    let public = G.pow G.g x in
    let e = challenge r public msg in
    let s = B.erem (B.sub k (B.mul x e)) P.order in
    { s; e }

  let verify public msg { s; e } =
    (* r' = g^s * y^e; accept iff H(r', y, m) = e. *)
    let r' = G.mul (G.pow G.g s) (G.pow public e) in
    B.equal (challenge r' public msg) e

  let scalar_width = (B.num_bits P.order + 7) / 8

  let to_bytes { s; e } =
    B.to_bytes_be_pad scalar_width s ^ B.to_bytes_be_pad scalar_width e

  let of_bytes data =
    if String.length data <> 2 * scalar_width then None
    else begin
      let s = B.of_bytes_be (String.sub data 0 scalar_width) in
      let e = B.of_bytes_be (String.sub data scalar_width scalar_width) in
      if B.compare s P.order < 0 && B.compare e P.order < 0 then Some { s; e }
      else None
    end

  let signature_size sigma = String.length (to_bytes sigma)
end
