(** The Merkle-hash-tree baseline (Figure 1b, Merkle B-tree style).

    Classic query authentication *without* access control: a binary MHT over
    the records sorted by key, the root digest signed by the owner. Range
    VOs carry the result records, the two boundary records, and the sibling
    digests to reconstruct the root. Used by tests and benches to quantify
    what the paper's schemes add — and by the leakage demos to show what an
    MHT reveals (every record in range, access-controlled or not). *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Sig : module type of Schnorr.Make (P)

  type t

  val build : Zkqac_hashing.Drbg.t -> Sig.secret -> Zkqac_core.Record.t list -> t
  (** Records must have distinct 1-D keys. *)

  val root_digest : t -> string
  val num_records : t -> int

  type vo

  val range_vo : t -> lo:int -> hi:int -> vo
  (** All records with key in [lo, hi], plus boundaries and copath. *)

  val verify :
    public:Sig.public -> lo:int -> hi:int -> vo -> (Zkqac_core.Record.t list, string) result

  val vo_size : vo -> int
end
