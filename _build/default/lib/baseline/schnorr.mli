(** Schnorr signatures over the pairing group G.

    The classical baselines of Figure 1 (signature chaining and Merkle hash
    trees) need an ordinary digital signature; Schnorr over the same group
    infrastructure keeps the comparison apples-to-apples. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  type secret
  type public
  type signature

  val keygen : Zkqac_hashing.Drbg.t -> secret * public
  val sign : Zkqac_hashing.Drbg.t -> secret -> string -> signature
  val verify : public -> string -> signature -> bool
  val signature_size : signature -> int
  val to_bytes : signature -> string
  val of_bytes : string -> signature option
end
