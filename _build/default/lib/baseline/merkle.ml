module Sha256 = Zkqac_hashing.Sha256
module Record = Zkqac_core.Record
module Wire = Zkqac_util.Wire

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Sig = Schnorr.Make (P)

  let leaf_digest (r : Record.t) =
    Sha256.digest_list
      [ "mht-leaf"; Record.key_bytes r.Record.key; r.Record.value ]

  let node_digest l r = Sha256.digest_list [ "mht-node"; l; r ]

  type t = {
    records : Record.t array;  (* sorted by key *)
    levels : string array array;  (* levels.(0) = leaf digests *)
    root_sig : Sig.signature;
    n : int;
  }

  let build_levels leaves =
    let rec go acc level =
      if Array.length level <= 1 then List.rev (level :: acc)
      else begin
        let m = Array.length level in
        let next =
          Array.init ((m + 1) / 2) (fun i ->
              if (2 * i) + 1 < m then node_digest level.(2 * i) level.((2 * i) + 1)
              else level.(2 * i) (* odd node promoted *))
        in
        go (level :: acc) next
      end
    in
    Array.of_list (go [] leaves)

  let signed_message ~root ~n = Sha256.digest_list [ "mht-root"; root; string_of_int n ]

  let build drbg secret records =
    let records =
      Array.of_list
        (List.sort
           (fun (a : Record.t) b -> compare a.Record.key.(0) b.Record.key.(0))
           records)
    in
    Array.iteri
      (fun i (r : Record.t) ->
        if Array.length r.Record.key <> 1 then invalid_arg "Merkle.build: need 1-D keys";
        if i > 0 && records.(i - 1).Record.key.(0) = r.Record.key.(0) then
          invalid_arg "Merkle.build: duplicate keys")
      records;
    if Array.length records = 0 then invalid_arg "Merkle.build: empty";
    let leaves = Array.map leaf_digest records in
    let levels = build_levels leaves in
    let root = levels.(Array.length levels - 1).(0) in
    let n = Array.length records in
    { records; levels; root_sig = Sig.sign drbg secret (signed_message ~root ~n); n }

  let root_digest t = t.levels.(Array.length t.levels - 1).(0)
  let num_records t = t.n

  type vo = {
    segment : Record.t list;  (* contiguous run: boundaries + results *)
    start : int;              (* index of the first segment record *)
    total : int;              (* n, as signed *)
    fringes : (string option * string option) list;  (* per level: left, right *)
    signature : Sig.signature;
  }

  let range_vo t ~lo ~hi =
    (* Contiguous segment: every record in range plus one boundary record on
       each side (when one exists). *)
    let first_in = ref t.n and last_in = ref (-1) in
    Array.iteri
      (fun i (r : Record.t) ->
        let k = r.Record.key.(0) in
        if k >= lo && k <= hi then begin
          if i < !first_in then first_in := i;
          last_in := i
        end)
      t.records;
    let i0, j0 =
      if !last_in < 0 then begin
        (* Empty range: return the two records straddling it. *)
        let succ = ref t.n in
        Array.iteri
          (fun i (r : Record.t) ->
            if r.Record.key.(0) > hi && i < !succ then succ := i)
          t.records;
        (max 0 (!succ - 1), min (t.n - 1) !succ)
      end
      else (max 0 (!first_in - 1), min (t.n - 1) (!last_in + 1))
    in
    (* Collect per-level fringe digests for the segment [i0, j0]. *)
    let fringes = ref [] in
    let i = ref i0 and j = ref j0 in
    for level = 0 to Array.length t.levels - 2 do
      let row = t.levels.(level) in
      let left = if !i mod 2 = 1 then Some row.(!i - 1) else None in
      let right =
        if !j mod 2 = 0 && !j + 1 < Array.length row then Some row.(!j + 1) else None
      in
      fringes := (left, right) :: !fringes;
      i := !i / 2;
      j := !j / 2
    done;
    {
      segment = Array.to_list (Array.sub t.records i0 (j0 - i0 + 1));
      start = i0;
      total = t.n;
      fringes = List.rev !fringes;
      signature = t.root_sig;
    }

  let verify ~public ~lo ~hi vo =
    let seg = Array.of_list vo.segment in
    let len = Array.length seg in
    if len = 0 then Error "empty VO"
    else begin
      (* Keys strictly increasing. *)
      let sorted = ref true in
      for i = 1 to len - 1 do
        if seg.(i - 1).Record.key.(0) >= seg.(i).Record.key.(0) then sorted := false
      done;
      if not !sorted then Error "segment keys not increasing"
      else begin
        (* Boundary conditions: the segment must provably bracket the
           range. *)
        let first = seg.(0).Record.key.(0) and last = seg.(len - 1).Record.key.(0) in
        let left_ok = first < lo || vo.start = 0 in
        let right_ok = last > hi || vo.start + len = vo.total in
        if not (left_ok && right_ok) then Error "boundaries do not bracket the range"
        else begin
          (* Rebuild the root from the segment and fringes. *)
          let digests = ref (Array.to_list (Array.map leaf_digest seg)) in
          let i = ref vo.start and j = ref (vo.start + len - 1) in
          List.iter
            (fun (lfringe, rfringe) ->
              let row = !digests in
              let row = match lfringe with Some d -> d :: row | None -> row in
              let row = row @ (match rfringe with Some d -> [ d ] | None -> []) in
              let i' = (!i - match lfringe with Some _ -> 1 | None -> 0) / 2 in
              let rec pair = function
                | a :: b :: rest -> node_digest a b :: pair rest
                | [ a ] -> [ a ]
                | [] -> []
              in
              (* Alignment: the first element of [row] sits at an even
                 position by construction (we added the left sibling when the
                 index was odd). *)
              digests := pair row;
              i := i';
              j := !j / 2)
            vo.fringes;
          match !digests with
          | [ root ] ->
            if Sig.verify public (signed_message ~root ~n:vo.total) vo.signature then
              Ok
                (List.filter
                   (fun (r : Record.t) ->
                     r.Record.key.(0) >= lo && r.Record.key.(0) <= hi)
                   vo.segment)
            else Error "root signature invalid"
          | _ -> Error "fringe reconstruction failed"
        end
      end
    end

  let vo_size vo =
    let w = Wire.writer () in
    List.iter
      (fun (r : Record.t) ->
        Wire.bytes w (Record.key_bytes r.Record.key);
        Wire.bytes w r.Record.value)
      vo.segment;
    Wire.u32 w vo.start;
    Wire.u32 w vo.total;
    List.iter
      (fun (l, r) ->
        Wire.bytes w (Option.value ~default:"" l);
        Wire.bytes w (Option.value ~default:"" r))
      vo.fringes;
    Wire.bytes w (Sig.to_bytes vo.signature);
    String.length (Wire.contents w)
end
