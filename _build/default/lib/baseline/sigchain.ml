module Sha256 = Zkqac_hashing.Sha256
module Record = Zkqac_core.Record
module Wire = Zkqac_util.Wire

module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Sig = Schnorr.Make (P)

  (* Sentinel-bounded chain: prev/next of the end records are +-infinity. *)
  let bound_str = function None -> "inf" | Some k -> string_of_int k

  let chained_message ~prev (r : Record.t) ~next =
    Sha256.digest_list
      [ "sigchain"; bound_str prev; Record.key_bytes r.Record.key; r.Record.value;
        bound_str next ]

  type link = {
    record : Record.t;
    prev : int option;
    next : int option;
    signature : Sig.signature;
  }

  type t = { links : link array }

  let build drbg secret records =
    let arr =
      Array.of_list
        (List.sort
           (fun (a : Record.t) b -> compare a.Record.key.(0) b.Record.key.(0))
           records)
    in
    Array.iteri
      (fun i (r : Record.t) ->
        if Array.length r.Record.key <> 1 then invalid_arg "Sigchain.build: need 1-D keys";
        if i > 0 && arr.(i - 1).Record.key.(0) = r.Record.key.(0) then
          invalid_arg "Sigchain.build: duplicate keys")
      arr;
    let n = Array.length arr in
    let links =
      Array.mapi
        (fun i r ->
          let prev = if i = 0 then None else Some arr.(i - 1).Record.key.(0) in
          let next = if i = n - 1 then None else Some arr.(i + 1).Record.key.(0) in
          { record = r; prev; next;
            signature = Sig.sign drbg secret (chained_message ~prev r ~next) })
        arr
    in
    { links }

  let num_signatures t = Array.length t.links

  type vo = { chain : link list }

  let range_vo t ~lo ~hi =
    (* The in-range links plus one boundary link each side (to pin the chain
       against the range ends). *)
    let n = Array.length t.links in
    let first_in = ref n and last_in = ref (-1) in
    Array.iteri
      (fun i l ->
        let k = l.record.Record.key.(0) in
        if k >= lo && k <= hi then begin
          if i < !first_in then first_in := i;
          last_in := i
        end)
      t.links;
    let i0, j0 =
      if !last_in < 0 then begin
        let succ = ref n in
        Array.iteri
          (fun i l -> if l.record.Record.key.(0) > hi && i < !succ then succ := i)
          t.links;
        (max 0 (!succ - 1), min (n - 1) !succ)
      end
      else (max 0 (!first_in - 1), min (n - 1) (!last_in + 1))
    in
    { chain = Array.to_list (Array.sub t.links i0 (j0 - i0 + 1)) }

  let verify ~public ~lo ~hi vo =
    match vo.chain with
    | [] -> Error "empty chain"
    | first :: _ ->
      let rec walk = function
        | [] -> Ok ()
        | [ l ] ->
          if Sig.verify public (chained_message ~prev:l.prev l.record ~next:l.next)
               l.signature
          then Ok ()
          else Error "chain signature invalid"
        | l :: (l2 :: _ as rest) ->
          if
            not
              (Sig.verify public
                 (chained_message ~prev:l.prev l.record ~next:l.next)
                 l.signature)
          then Error "chain signature invalid"
          else if l.next <> Some l2.record.Record.key.(0) then
            Error "chain discontinuity"
          else walk rest
      in
      (match walk vo.chain with
       | Error e -> Error e
       | Ok () ->
         let last = List.nth vo.chain (List.length vo.chain - 1) in
         (* Boundary conditions: the chain must extend past both range ends
            (or hit the global ends of the table). *)
         let left_ok = first.record.Record.key.(0) < lo || first.prev = None in
         let right_ok = last.record.Record.key.(0) > hi || last.next = None in
         if not (left_ok && right_ok) then Error "chain does not bracket the range"
         else
           Ok
             (List.filter_map
                (fun l ->
                  let k = l.record.Record.key.(0) in
                  if k >= lo && k <= hi then Some l.record else None)
                vo.chain))

  let vo_size vo =
    let w = Wire.writer () in
    List.iter
      (fun l ->
        Wire.bytes w (Record.key_bytes l.record.Record.key);
        Wire.bytes w l.record.Record.value;
        Wire.bytes w (Sig.to_bytes l.signature))
      vo.chain;
    String.length (Wire.contents w)
end
