module Sha256 = Zkqac_hashing.Sha256
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr

type t = { key : int array; value : string; policy : Expr.t }

let make ~key ~value ~policy = { key; value; policy }

let value_hash v = Sha256.digest_list [ "zkqac-value"; v ]

let key_bytes key =
  let buf = Buffer.create 16 in
  Buffer.add_char buf (Char.chr (Array.length key));
  Array.iter
    (fun k ->
      for i = 7 downto 0 do
        Buffer.add_char buf (Char.chr ((k lsr (8 * i)) land 0xff))
      done)
    key;
  Buffer.contents buf

let message ~key ~value_hash =
  Sha256.digest_list [ "zkqac-key"; key_bytes key ] ^ value_hash

let message_of r = message ~key:r.key ~value_hash:(value_hash r.value)

let node_message box = Sha256.digest_list [ "zkqac-node"; Box.encode box ]

let pseudo_value ~seed ~key =
  Zkqac_hashing.Hmac.mac ~key:("zkqac-pseudo:" ^ seed) (key_bytes key)

let pseudo ~seed ~key =
  { key; value = pseudo_value ~seed ~key; policy = Expr.Leaf Attr.pseudo_role }
