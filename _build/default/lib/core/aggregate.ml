module Make (P : Zkqac_group.Pairing_intf.PAIRING) = struct
  module Ap2g = Ap2g.Make (P)
  module Vo = Vo.Make (P)

  type 'a verified = { value : 'a; over : int }

  let verified_records ?batch ~mvk ~tree_universe ?hierarchy ~user ~query vo =
    Ap2g.verify ?batch ~mvk ~t_universe:tree_universe ?hierarchy ~user ~query vo

  let fold ?batch ~mvk ~tree_universe ?hierarchy ~user ~query ~extract ~combine
      ~init vo =
    match verified_records ?batch ~mvk ~tree_universe ?hierarchy ~user ~query vo with
    | Error e -> Error e
    | Ok records ->
      let value =
        List.fold_left
          (fun acc r -> match extract r with Some v -> combine acc v | None -> acc)
          init records
      in
      Ok { value; over = List.length records }

  let count ?batch ~mvk ~tree_universe ?hierarchy ~user ~query vo =
    match verified_records ?batch ~mvk ~tree_universe ?hierarchy ~user ~query vo with
    | Error e -> Error e
    | Ok records ->
      let n = List.length records in
      Ok { value = n; over = n }

  let sum ?batch ~mvk ~tree_universe ?hierarchy ~user ~query ~extract vo =
    fold ?batch ~mvk ~tree_universe ?hierarchy ~user ~query ~extract
      ~combine:( +. ) ~init:0.0 vo

  let min_max ?batch ~mvk ~tree_universe ?hierarchy ~user ~query ~extract vo =
    fold ?batch ~mvk ~tree_universe ?hierarchy ~user ~query ~extract
      ~combine:(fun acc v ->
        match acc with
        | None -> Some (v, v)
        | Some (lo, hi) -> Some (Float.min lo v, Float.max hi v))
      ~init:None vo
end
