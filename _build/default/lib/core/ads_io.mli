(** Persistence of the outsourced ADS: what the data owner actually ships to
    the service provider (the full AP²G-tree with policies and APP
    signatures), as a versioned binary file.

    This is the "outsource all ⟨o,v,Υ,σ⟩ and ⟨gb,p,sig⟩ to SP" step of
    Algorithm 3 made concrete: [save] on the DO side, [load] on the SP side,
    integrity-tagged with a SHA-256 checksum. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Ap2g : module type of Ap2g.Make (P)
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  val tree_to_bytes : Ap2g.t -> string
  val tree_of_bytes : string -> Ap2g.t option

  val save : path:string -> mvk:Abs.mvk -> Ap2g.t -> unit
  (** Write the tree and the public verification key. *)

  val load : path:string -> (Abs.mvk * Ap2g.t, string) result
  (** Read back; fails with a message on version/checksum/shape mismatch. *)
end
