(** The discrete query-attribute space the AP²G-tree is built over.

    The space is a [dims]-dimensional hypercube of side [2^depth]; a record
    key is a point in it. A full AP²G-tree halves every dimension at each
    level, so a tree node is identified by its level and cell coordinates and
    every leaf is a unit cell. The tree shape is therefore a pure function of
    the keyspace — never of the data — which is the property that keeps the
    index structure leak-free (Section 6.1). *)

type t

val create : dims:int -> depth:int -> t
(** @raise Invalid_argument if [dims < 1], [depth < 0], or the total leaf
    count overflows. *)

val dims : t -> int
val depth : t -> int
val side : t -> int
(** Points per dimension, [2^depth]. *)

val num_leaves : t -> int
val whole : t -> Box.t
val valid_key : t -> int array -> bool

val children_boxes : t -> Box.t -> Box.t list
(** The [2^dims] sub-cells of a grid cell (in deterministic order). A unit
    cell has no children. @raise Invalid_argument if the box is not a grid
    cell of this space. *)

val is_unit : Box.t -> bool
val key_of_unit : Box.t -> int array
val clamp_box : t -> Box.t -> Box.t option
(** Intersection with the whole space. *)

val random_key : Zkqac_rng.Prng.t -> t -> int array
