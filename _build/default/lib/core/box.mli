(** Axis-aligned integer boxes over the discrete query-attribute space.

    A box is the paper's "grid box" [gb]: inclusive lower and exclusive upper
    corners, one pair per dimension. Query ranges [α, β] (inclusive points)
    are converted to boxes with [of_range]. *)

type t = { lo : int array; hi : int array }
(** Invariant: [Array.length lo = Array.length hi] and [lo.(d) <= hi.(d)];
    the box is the product of half-open intervals [lo.(d), hi.(d)). *)

val make : lo:int array -> hi:int array -> t
(** @raise Invalid_argument on mismatched dimensions or inverted bounds. *)

val of_range : alpha:int array -> beta:int array -> t
(** Inclusive query corners [α, β] → half-open box. *)

val of_point : int array -> t
(** The unit cell containing a key. *)

val dims : t -> int
val equal : t -> t -> bool
val is_empty : t -> bool
val volume : t -> int
val contains_point : t -> int array -> bool
val contains_box : t -> t -> bool
(** [contains_box outer inner]. *)

val intersect : t -> t -> t option
val intersects : t -> t -> bool
val disjoint : t -> t -> bool

val subtract : t -> t -> t list
(** [subtract a b] decomposes [a ∖ b] into disjoint boxes (possibly empty). *)

val covers_union : t -> t list -> bool
(** Whether the union of the boxes (overlap allowed) contains the target —
    the weaker completeness check used by join verification (Section 6.2). *)

val covers_exactly : t -> t list -> bool
(** Whether the given pairwise-disjoint boxes tile the target exactly — the
    completeness check of Algorithm 3. Returns [false] if the boxes overlap,
    spill outside the target, or leave gaps. *)

val to_string : t -> string
val encode : t -> string
(** Canonical byte encoding, hashed into APP signatures of tree nodes. *)
