(** Data records ⟨o_i, v_i, Υ_i⟩ and the byte messages their APP signatures
    bind (Definition 5.1).

    A record couples a discrete, distinct query key with an opaque content
    value and an access policy. Pseudo records (Section 5) are derived
    deterministically from a data-owner secret so they never need to be
    stored: any party holding the seed can re-derive the pseudo value for a
    key, and nobody else can distinguish it from a real encrypted value. *)

type t = {
  key : int array;         (** query attribute o_i (a point in the keyspace) *)
  value : string;          (** content attribute v_i (possibly CP-ABE ciphertext) *)
  policy : Zkqac_policy.Expr.t;  (** access policy Υ_i *)
}

val make : key:int array -> value:string -> policy:Zkqac_policy.Expr.t -> t

val value_hash : string -> string
(** hash(v_i). *)

val key_bytes : int array -> string
(** Canonical encoding of a key. *)

val message : key:int array -> value_hash:string -> string
(** The signed message [hash(o_i) | hash(v_i)]: reconstructible by a verifier
    who knows the key and is given only the value hash — exactly what the
    inaccessible branch of Algorithm 1 requires. *)

val message_of : t -> string

val node_message : Box.t -> string
(** [hash(gb_i)], the message of a non-leaf AP²G-tree node (Definition 6.1). *)

val pseudo_value : seed:string -> key:int array -> string
(** The random content of the pseudo record at [key], derived by PRF from
    the data-owner seed. 32 bytes. *)

val pseudo : seed:string -> key:int array -> t
(** The full pseudo record: derived value, policy [Role_∅]. *)
