lib/core/equality.ml: Ap2g Array Box Keyspace List Map Option Record Stdlib Unix Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
