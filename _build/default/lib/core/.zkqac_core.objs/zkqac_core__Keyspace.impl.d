lib/core/keyspace.ml: Array Box List Zkqac_rng
