lib/core/box.mli:
