lib/core/vo.mli: Box Record Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
