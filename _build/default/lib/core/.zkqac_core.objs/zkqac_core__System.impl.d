lib/core/system.ml: Ap2g Box List Record String Vo Zkqac_abs Zkqac_cpabe Zkqac_group Zkqac_hashing Zkqac_policy
