lib/core/aggregate.mli: Ap2g Box Record Vo Zkqac_group Zkqac_hashing Zkqac_policy
