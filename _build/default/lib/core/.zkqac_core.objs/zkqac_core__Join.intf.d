lib/core/join.mli: Ap2g Box Record Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
