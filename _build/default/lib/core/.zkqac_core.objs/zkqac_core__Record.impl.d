lib/core/record.ml: Array Box Buffer Char Zkqac_hashing Zkqac_policy
