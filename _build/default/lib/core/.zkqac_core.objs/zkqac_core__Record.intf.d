lib/core/record.mli: Box Zkqac_policy
