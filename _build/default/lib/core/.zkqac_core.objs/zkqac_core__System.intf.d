lib/core/system.mli: Ap2g Box Keyspace Vo Zkqac_abs Zkqac_cpabe Zkqac_group Zkqac_policy
