lib/core/box.ml: Array Buffer Char List String
