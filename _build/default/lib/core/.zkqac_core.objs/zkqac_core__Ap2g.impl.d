lib/core/ap2g.ml: Array Box Fun Keyspace List Map Queue Record Stdlib String Unix Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy Zkqac_util
