lib/core/duplicates.ml: Ap2g Array Box Fun Hashtbl Keyspace List Map Queue Record Result Stdlib String Unix Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy Zkqac_util
