lib/core/join.ml: Ap2g Box Keyspace List Option Queue Record Result String Unix Vo Zkqac_abs Zkqac_group Zkqac_policy Zkqac_util
