lib/core/continuous.ml: Array List Record Result Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
