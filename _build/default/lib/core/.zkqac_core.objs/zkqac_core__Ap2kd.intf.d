lib/core/ap2kd.mli: Box Keyspace Record Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
