lib/core/continuous.mli: Record Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
