lib/core/keyspace.mli: Box Zkqac_rng
