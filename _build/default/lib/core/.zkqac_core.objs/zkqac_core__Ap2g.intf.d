lib/core/ap2g.mli: Box Keyspace Record Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
