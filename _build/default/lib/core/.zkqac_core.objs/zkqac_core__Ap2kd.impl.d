lib/core/ap2kd.ml: Array Box Keyspace List Queue Record String Unix Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
