lib/core/aggregate.ml: Ap2g Float List Vo Zkqac_group
