lib/core/ads_io.ml: Ap2g Fun String Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_util
