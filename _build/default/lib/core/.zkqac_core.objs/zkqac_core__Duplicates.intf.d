lib/core/duplicates.mli: Ap2g Box Keyspace Record Vo Zkqac_abs Zkqac_group Zkqac_hashing Zkqac_policy
