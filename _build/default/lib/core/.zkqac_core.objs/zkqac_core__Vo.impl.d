lib/core/vo.ml: Box List Printf Record Result String Zkqac_abs Zkqac_group Zkqac_policy Zkqac_util
