lib/core/ads_io.mli: Ap2g Zkqac_abs Zkqac_group
