(** Duplicate query keys (Appendix E).

    Two treatments are provided:

    - {b zero-knowledge}: merge records sharing (key, policy) into
      super-records, then lift the keyspace by one *virtual dimension* and
      spread the remaining same-key records along it; queries extend over
      the whole virtual axis. Everything then runs on the ordinary AP²G-tree
      with distinct keys, and nothing about the duplicate distribution
      leaks.
    - {b non-ZK} ([`embedded`]): keep the base keyspace and embed
      [dup_num | dup_id] into every APP message, so completeness per key is
      checked against the authenticated duplicate count. Cheaper, but the
      duplicate distribution is disclosed. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Abs : module type of Zkqac_abs.Abs.Make (P)

  (** {1 Zero-knowledge treatment: the virtual dimension} *)

  val merge_same_policy : Record.t list -> Record.t list
  (** Merge records sharing both key and (canonical) policy into
      super-records with concatenated values. *)

  val lift :
    space:Keyspace.t ->
    Record.t list ->
    Keyspace.t * Record.t list
  (** Append the virtual dimension (same depth as the base dimensions) and
      assign distinct virtual coordinates within each key group.
      @raise Invalid_argument if some key has more duplicates than the
      virtual axis can hold. *)

  val lift_query : lifted_space:Keyspace.t -> Box.t -> Box.t
  (** Extend a base-space query over the whole virtual axis. *)

  val strip_key : int array -> int array
  (** Drop the virtual coordinate of a result key. *)

  (** {1 Non-ZK treatment: embedded duplicate counts} *)

  type t

  type entry =
    | Dup_accessible of {
        key : int array;
        dup_num : int;
        dup_id : int;
        value : string;
        policy : Zkqac_policy.Expr.t;
        app : Abs.signature;
      }
    | Dup_inaccessible of {
        key : int array;
        dup_num : int;
        dup_id : int;
        value_hash : string;
        aps : Abs.signature;
      }
    | Cell_inaccessible of { region : Box.t; aps : Abs.signature }

  type vo = entry list

  val dup_message :
    key:int array -> value_hash:string -> dup_num:int -> dup_id:int -> string

  val build :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    sk:Abs.signing_key ->
    space:Keyspace.t ->
    universe:Zkqac_policy.Universe.t ->
    pseudo_seed:string ->
    Record.t list ->
    t
  (** Grid tree over the base space whose leaves hold duplicate groups. *)

  val range_vo :
    Zkqac_hashing.Drbg.t ->
    mvk:Abs.mvk ->
    t ->
    user:Zkqac_policy.Attr.Set.t ->
    Box.t ->
    vo * Ap2g.Make(P).query_stats

  val verify :
    mvk:Abs.mvk ->
    t_universe:Zkqac_policy.Universe.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    vo ->
    (Record.t list, Vo.Make(P).error) result

  val size : vo -> int
end
