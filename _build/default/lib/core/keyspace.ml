type t = { dims : int; depth : int }

let create ~dims ~depth =
  if dims < 1 then invalid_arg "Keyspace.create: dims < 1";
  if depth < 0 then invalid_arg "Keyspace.create: depth < 0";
  if dims * depth > 60 then invalid_arg "Keyspace.create: space too large";
  { dims; depth }

let dims t = t.dims
let depth t = t.depth
let side t = 1 lsl t.depth
let num_leaves t = 1 lsl (t.dims * t.depth)

let whole t =
  Box.make ~lo:(Array.make t.dims 0) ~hi:(Array.make t.dims (side t))

let valid_key t key =
  Array.length key = t.dims && Array.for_all (fun k -> k >= 0 && k < side t) key

(* A grid cell has equal power-of-two extent in every dimension and is
   aligned to that extent. *)
let cell_extent t box =
  let e = box.Box.hi.(0) - box.Box.lo.(0) in
  let ok =
    e > 0
    && e land (e - 1) = 0
    && Array.for_all2 (fun l h -> h - l = e && l mod e = 0) box.Box.lo box.Box.hi
    && e <= side t
  in
  if ok then Some e else None

let children_boxes t box =
  match cell_extent t box with
  | None -> invalid_arg "Keyspace.children_boxes: not a grid cell"
  | Some 1 -> []
  | Some e ->
    let half = e / 2 in
    let n = 1 lsl t.dims in
    List.init n (fun mask ->
        let lo =
          Array.mapi
            (fun d l -> if mask land (1 lsl d) <> 0 then l + half else l)
            box.Box.lo
        in
        let hi = Array.map (fun l -> l + half) lo in
        Box.make ~lo ~hi)

let is_unit box = Array.for_all2 (fun l h -> h - l = 1) box.Box.lo box.Box.hi
let key_of_unit box = Array.copy box.Box.lo
let clamp_box t box = Box.intersect (whole t) box

let random_key rng t =
  Array.init t.dims (fun _ -> Zkqac_rng.Prng.int rng (side t))
