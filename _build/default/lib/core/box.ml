type t = { lo : int array; hi : int array }

let make ~lo ~hi =
  let d = Array.length lo in
  if d = 0 || d <> Array.length hi then invalid_arg "Box.make: dimension mismatch";
  Array.iteri
    (fun i l -> if l > hi.(i) then invalid_arg "Box.make: inverted bounds")
    lo;
  { lo = Array.copy lo; hi = Array.copy hi }

let of_range ~alpha ~beta =
  make ~lo:alpha ~hi:(Array.map (fun b -> b + 1) beta)

let of_point key = make ~lo:key ~hi:(Array.map (fun k -> k + 1) key)

let dims t = Array.length t.lo

let equal a b =
  dims a = dims b
  && Array.for_all2 ( = ) a.lo b.lo
  && Array.for_all2 ( = ) a.hi b.hi

let is_empty t = Array.exists2 (fun l h -> l >= h) t.lo t.hi

let volume t =
  if is_empty t then 0
  else begin
    let v = ref 1 in
    Array.iteri (fun i l -> v := !v * (t.hi.(i) - l)) t.lo;
    !v
  end

let contains_point t p =
  Array.length p = dims t
  && Array.for_all2 ( <= ) t.lo p
  && Array.for_all2 ( < ) p t.hi

let contains_box outer inner =
  dims outer = dims inner
  && Array.for_all2 ( <= ) outer.lo inner.lo
  && Array.for_all2 ( >= ) outer.hi inner.hi

let intersect a b =
  if dims a <> dims b then None
  else begin
    let lo = Array.map2 max a.lo b.lo in
    let hi = Array.map2 min a.hi b.hi in
    let r = { lo; hi } in
    if Array.exists2 (fun l h -> l >= h) lo hi then None else Some r
  end

let intersects a b = intersect a b <> None
let disjoint a b = not (intersects a b)

let subtract a b =
  match intersect a b with
  | None -> if is_empty a then [] else [ a ]
  | Some inter ->
    (* Peel slabs off [a] on each side of the intersection, dimension by
       dimension; the slabs are disjoint and their union is a \ b. *)
    let pieces = ref [] in
    let core_lo = Array.copy a.lo and core_hi = Array.copy a.hi in
    for d = 0 to dims a - 1 do
      if core_lo.(d) < inter.lo.(d) then begin
        let lo = Array.copy core_lo and hi = Array.copy core_hi in
        hi.(d) <- inter.lo.(d);
        pieces := { lo; hi } :: !pieces
      end;
      if inter.hi.(d) < core_hi.(d) then begin
        let lo = Array.copy core_lo and hi = Array.copy core_hi in
        lo.(d) <- inter.hi.(d);
        pieces := { lo; hi } :: !pieces
      end;
      core_lo.(d) <- inter.lo.(d);
      core_hi.(d) <- inter.hi.(d)
    done;
    List.filter (fun p -> not (is_empty p)) !pieces

let covers_union target pieces =
  let remaining =
    List.fold_left
      (fun uncovered piece ->
        List.concat_map (fun u -> subtract u piece) uncovered)
      [ target ] pieces
  in
  List.for_all is_empty remaining

let covers_exactly target pieces =
  List.for_all (fun p -> contains_box target p && not (is_empty p)) pieces
  && begin
    (* Pairwise disjoint + total volume = target volume => exact tiling. *)
    let rec pairwise = function
      | [] -> true
      | p :: rest -> List.for_all (disjoint p) rest && pairwise rest
    in
    pairwise pieces
    && List.fold_left (fun acc p -> acc + volume p) 0 pieces = volume target
  end

let to_string t =
  let corner a = "(" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ ")" in
  corner t.lo ^ "-" ^ corner t.hi

let encode t =
  let buf = Buffer.create 32 in
  Buffer.add_char buf (Char.chr (dims t));
  let put v =
    for i = 7 downto 0 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  Array.iter put t.lo;
  Array.iter put t.hi;
  Buffer.contents buf
